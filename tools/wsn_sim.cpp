// wsn_sim — command-line driver for the dsnet simulator.
//
// Builds a paper-style deployment and executes a scenario script (file
// or stdin). With no scenario a small demo workload runs.
//
//   wsn_sim [--nodes N] [--seed S] [--field UNITS] [--range METERS]
//           [--drop P] [--channels K] [--scenario FILE | -]
//           [--quiet]
//
// Exit status: 0 on success with all invariants intact, 1 on any
// invariant violation, 2 on usage/parse errors.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/scenario.hpp"
#include "cluster/export.hpp"

namespace {

struct CliOptions {
  std::size_t nodes = 200;
  std::uint64_t seed = 2007;
  int fieldUnits = 10;
  double range = 50.0;
  double drop = 0.0;
  dsn::Channel channels = 1;
  std::string scenarioPath;
  std::string dotPath;
  bool quiet = false;
};

void usage(std::ostream& os) {
  os << "usage: wsn_sim [--nodes N] [--seed S] [--field UNITS]\n"
        "               [--range METERS] [--drop P] [--channels K]\n"
        "               [--scenario FILE|-] [--dot FILE] [--quiet]\n";
}

bool parseArgs(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--nodes") {
      const char* v = next();
      if (!v) return false;
      opt.nodes = std::strtoul(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--field") {
      const char* v = next();
      if (!v) return false;
      opt.fieldUnits = std::atoi(v);
    } else if (arg == "--range") {
      const char* v = next();
      if (!v) return false;
      opt.range = std::atof(v);
    } else if (arg == "--drop") {
      const char* v = next();
      if (!v) return false;
      opt.drop = std::atof(v);
    } else if (arg == "--channels") {
      const char* v = next();
      if (!v) return false;
      opt.channels = static_cast<dsn::Channel>(std::atoi(v));
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return false;
      opt.scenarioPath = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return false;
      opt.dotPath = v;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

constexpr const char* kDemoScenario = R"(
# demo: churn + every communication primitive
broadcast random icff
broadcast random dfo
gather
leave 3
leave 17
join 480 510
group 5 1
group 9 1
multicast 0 1 pruned
compact
validate
broadcast random icff
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace dsn;

  CliOptions opt;
  if (!parseArgs(argc, argv, opt)) {
    usage(std::cerr);
    return 2;
  }

  NetworkConfig cfg;
  cfg.nodeCount = opt.nodes;
  cfg.seed = opt.seed;
  cfg.field = Field::squareUnits(opt.fieldUnits);
  cfg.range = opt.range;

  SensorNetwork net(cfg);
  if (!opt.quiet) {
    std::cout << toSummary(net.clusterNet()) << "\n";
  }

  std::vector<ScenarioEvent> events;
  try {
    if (opt.scenarioPath.empty()) {
      events = parseScenario(std::string(kDemoScenario));
    } else if (opt.scenarioPath == "-") {
      events = parseScenario(std::cin);
    } else {
      std::ifstream in(opt.scenarioPath);
      if (!in) {
        std::cerr << "cannot open scenario: " << opt.scenarioPath << "\n";
        return 2;
      }
      events = parseScenario(in);
    }
  } catch (const std::exception& ex) {
    std::cerr << "scenario parse error: " << ex.what() << "\n";
    return 2;
  }

  ScenarioOptions sopt;
  sopt.seed = opt.seed ^ 0xCAFE;
  sopt.protocol.dropProbability = opt.drop;
  sopt.protocol.channels = opt.channels;

  ScenarioOutcome outcome;
  try {
    outcome = runScenario(net, events, sopt);
  } catch (const std::exception& ex) {
    std::cerr << "scenario execution error: " << ex.what() << "\n";
    return 2;
  }

  if (!opt.quiet) {
    for (const auto& line : outcome.log) std::cout << "  " << line << "\n";
  }
  if (!opt.dotPath.empty()) {
    std::ofstream dot(opt.dotPath);
    if (!dot) {
      std::cerr << "cannot write dot file: " << opt.dotPath << "\n";
      return 2;
    }
    dot << toDot(net.clusterNet());
    if (!opt.quiet)
      std::cout << "[dot] final topology written to " << opt.dotPath
                << "\n";
  }
  std::cout << "events=" << outcome.eventsExecuted
            << " broadcasts=" << outcome.broadcasts
            << " multicasts=" << outcome.multicasts
            << " gathers=" << outcome.gathers
            << " worst-coverage=" << outcome.worstCoverage
            << " worst-yield=" << outcome.worstYield
            << " valid=" << (outcome.valid ? "yes" : "NO") << "\n";
  if (!outcome.valid) {
    std::cerr << "first violation:\n" << outcome.firstViolation << "\n";
    return 1;
  }
  return 0;
}
