// wsn_sim — command-line driver for the dsnet simulator.
//
// Builds a paper-style deployment and executes a scenario script (file
// or stdin). With no scenario a small demo workload runs.
//
//   wsn_sim [--nodes N] [--seed S] [--field UNITS] [--range METERS]
//           [--drop P] [--channels K] [--threads N] [--deploy KIND]
//           [--protocol SCHEME] [--scenario FILE | -]
//           [--trials T] [--jobs N] [--auto-repair]
//           [--metrics-json FILE] [--trace-out FILE] [--trace-cap N]
//           [--record-trace FILE] [--trace-categories LIST]
//           [--trace-sample N] [--trace-buffer N] [--profile-rounds]
//           [--quiet]
//
// --auto-repair runs the crash-recovery pass immediately after every
// `crash` scenario event instead of waiting for an explicit `repair`
// line (see DESIGN.md §10).
//
// --protocol SCHEME overrides the scheme of every `broadcast` scenario
// event (dfo|cff|icff|flood|gossip|agossip|counter|distance|rlnc), so
// one script can race the whole arena roster without editing it.
// `rbroadcast` events keep their scripted slotted scheme and `arena`
// events still race everyone (DESIGN.md §16).
//
// --threads N routes every protocol run through the spatially sharded
// round engine with N workers (DESIGN.md §14). Every observable output —
// metrics JSON, JSONL trace, .dsntrace stream — is bit-identical at any
// thread count, so the run document deliberately omits the knob.
// --deploy picks the position generator (attach|uniform|grid|line|star;
// default attach). Million-node runs want grid: incremental-attach
// densifies quadratically, the grid deployment is linear.
//
// --metrics-json enables the telemetry layer for the run and writes a
// dsnet-run-v1 JSON document (config, outcome, metrics registry
// snapshot, hierarchical phase timings). --trace-out captures per-round
// radio events from every protocol run into a JSONL file.
//
// --record-trace enables the flight recorder and writes the binary
// .dsntrace event stream for wsn_trace to consume. --trace-categories
// narrows recording to a comma list (round,sched,radio,collision,fault,
// cluster,run — default all); --trace-sample N records round-scoped
// volume events every Nth round only; --trace-buffer sets the ring
// capacity in events (overflow keeps the latest events and counts the
// rest as trace.dropped_events). The recorded stream carries logical
// round numbers only, so it is bit-identical at every --jobs count.
// --profile-rounds feeds per-round wall-time / active-set / resolve-work
// histograms (sim.round_*) into the metrics document; off by default
// because wall-times are machine-dependent.
//
// --trials T replicates the scenario over T independently seeded
// deployments (per-trial streams derived with the same SplitMix64
// chaining rule as ExperimentConfig::trialSeed) and reports aggregate
// outcomes; --jobs N fans the trials across N workers (0 = hardware
// concurrency). Results — including the exported metrics document — are
// identical at every worker count: each trial runs under task-local
// telemetry sinks that are merged back in trial order.
//
// Exit status: 0 on success with all invariants intact, 1 on any
// invariant violation, 2 on usage/parse errors.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "broadcast/runner.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "cluster/export.hpp"
#include "exec/parallel_sweep.hpp"
#include "exec/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/flight_io.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/timer.hpp"
#include "radio/trace.hpp"

namespace {

struct CliOptions {
  std::size_t nodes = 200;
  std::uint64_t seed = 2007;
  int fieldUnits = 10;
  double range = 50.0;
  double drop = 0.0;
  dsn::Channel channels = 1;
  int threads = 0;  ///< > 0: sharded round engine with N workers
  dsn::DeploymentKind deploy = dsn::DeploymentKind::kIncrementalAttach;
  std::optional<dsn::BroadcastScheme> protocol;  ///< broadcast override
  std::string scenarioPath;
  std::string dotPath;
  std::string metricsJsonPath;
  std::string traceOutPath;
  std::size_t traceCap = 1 << 16;  ///< per protocol run
  std::string recordTracePath;
  std::uint32_t traceCategories = dsn::obs::kFrCatAll;
  std::uint32_t traceSample = 1;
  std::size_t traceBuffer = 1 << 20;  ///< flight-recorder ring, in events
  bool profileRounds = false;
  int trials = 1;
  int jobs = 1;  ///< 0 = hardware concurrency
  bool autoRepair = false;
  bool quiet = false;
};

void usage(std::ostream& os) {
  os << "usage: wsn_sim [--nodes N] [--seed S] [--field UNITS]\n"
        "               [--range METERS] [--drop P] [--channels K]\n"
        "               [--threads N] [--deploy KIND]\n"
        "               [--protocol SCHEME]\n"
        "               [--scenario FILE|-] [--dot FILE]\n"
        "               [--trials T] [--jobs N] [--auto-repair]\n"
        "               [--metrics-json FILE] [--trace-out FILE]\n"
        "               [--trace-cap N] [--record-trace FILE]\n"
        "               [--trace-categories LIST] [--trace-sample N]\n"
        "               [--trace-buffer N] [--profile-rounds] [--quiet]\n";
}

bool parseArgs(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--nodes") {
      const char* v = next();
      if (!v) return false;
      opt.nodes = std::strtoul(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--field") {
      const char* v = next();
      if (!v) return false;
      opt.fieldUnits = std::atoi(v);
    } else if (arg == "--range") {
      const char* v = next();
      if (!v) return false;
      opt.range = std::atof(v);
    } else if (arg == "--drop") {
      const char* v = next();
      if (!v) return false;
      opt.drop = std::atof(v);
    } else if (arg == "--channels") {
      const char* v = next();
      if (!v) return false;
      opt.channels = static_cast<dsn::Channel>(std::atoi(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      opt.threads = std::atoi(v);
      if (opt.threads < 0) return false;
    } else if (arg == "--deploy") {
      const char* v = next();
      if (!v) return false;
      const std::string kind = v;
      if (kind == "attach")
        opt.deploy = dsn::DeploymentKind::kIncrementalAttach;
      else if (kind == "uniform")
        opt.deploy = dsn::DeploymentKind::kUniform;
      else if (kind == "grid")
        opt.deploy = dsn::DeploymentKind::kGrid;
      else if (kind == "line")
        opt.deploy = dsn::DeploymentKind::kLine;
      else if (kind == "star")
        opt.deploy = dsn::DeploymentKind::kStar;
      else {
        std::cerr << "bad --deploy (want attach|uniform|grid|line|star)\n";
        return false;
      }
    } else if (arg == "--protocol") {
      const char* v = next();
      dsn::BroadcastScheme scheme{};
      if (!v || !dsn::parseBroadcastScheme(v, scheme)) {
        std::cerr << "bad --protocol (want dfo|cff|icff|flood|gossip|"
                     "agossip|counter|distance|rlnc)\n";
        return false;
      }
      opt.protocol = scheme;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return false;
      opt.scenarioPath = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return false;
      opt.dotPath = v;
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (!v) return false;
      opt.metricsJsonPath = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      opt.traceOutPath = v;
    } else if (arg == "--trials") {
      const char* v = next();
      if (!v) return false;
      opt.trials = std::atoi(v);
      if (opt.trials < 1) return false;
    } else if (arg == "--jobs" || arg == "-j") {
      const char* v = next();
      if (!v) return false;
      opt.jobs = std::atoi(v);
      if (opt.jobs < 0) return false;
    } else if (arg == "--trace-cap") {
      const char* v = next();
      if (!v) return false;
      opt.traceCap = std::strtoul(v, nullptr, 10);
      if (opt.traceCap == 0) return false;
    } else if (arg == "--record-trace") {
      const char* v = next();
      if (!v) return false;
      opt.recordTracePath = v;
    } else if (arg == "--trace-categories") {
      const char* v = next();
      if (!v || !dsn::obs::parseFrCategories(v, opt.traceCategories)) {
        std::cerr << "bad --trace-categories (want comma list of "
                     "round,sched,radio,collision,fault,cluster,run "
                     "or 'all')\n";
        return false;
      }
    } else if (arg == "--trace-sample") {
      const char* v = next();
      if (!v) return false;
      opt.traceSample =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      if (opt.traceSample == 0) return false;
    } else if (arg == "--trace-buffer") {
      const char* v = next();
      if (!v) return false;
      opt.traceBuffer = std::strtoul(v, nullptr, 10);
      if (opt.traceBuffer == 0) return false;
    } else if (arg == "--profile-rounds") {
      opt.profileRounds = true;
    } else if (arg == "--auto-repair") {
      opt.autoRepair = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

constexpr const char* kDemoScenario = R"(
# demo: churn + every communication primitive
broadcast random icff
broadcast random dfo
gather
leave 3
leave 17
join 480 510
group 5 1
group 9 1
multicast 0 1 pruned
compact
validate
broadcast random icff
# robustness: crash two nodes, repair, reliable re-broadcast under loss
crash 11
crash 23
repair
validate
faults drop 0.15
rbroadcast random icff 6
faults none
)";

/// Per-trial deployment/scenario stream for --trials mode: the same
/// SplitMix64 chaining rule as ExperimentConfig::trialSeed, with the
/// node count as the first coordinate.
std::uint64_t trialStreamSeed(const CliOptions& opt, int trial) {
  const std::uint64_t s1 =
      dsn::ExperimentConfig::mix64(dsn::ExperimentConfig::mix64(opt.seed) ^
                                   static_cast<std::uint64_t>(opt.nodes));
  return dsn::ExperimentConfig::mix64(s1 ^
                                      static_cast<std::uint64_t>(trial));
}

dsn::NetworkConfig networkConfigFor(const CliOptions& opt,
                                    std::uint64_t seed) {
  dsn::NetworkConfig cfg;
  cfg.nodeCount = opt.nodes;
  cfg.seed = seed;
  cfg.field = dsn::Field::squareUnits(opt.fieldUnits);
  cfg.range = opt.range;
  cfg.deployment = opt.deploy;
  cfg.autoRepair = opt.autoRepair;
  return cfg;
}

dsn::ScenarioOptions scenarioOptionsFor(const CliOptions& opt,
                                        std::uint64_t seed) {
  dsn::ScenarioOptions sopt;
  sopt.seed = seed ^ 0xCAFE;
  sopt.protocol.dropProbability = opt.drop;
  sopt.protocol.channels = opt.channels;
  sopt.protocol.threads = opt.threads;
  sopt.forceScheme = opt.protocol;
  if (!opt.traceOutPath.empty())
    sopt.protocol.traceCapacity = opt.traceCap;
  return sopt;
}

/// Runs the scenario over `opt.trials` independently seeded deployments
/// (sharded across `opt.jobs` workers) and folds the outcomes in trial
/// order: counts add, coverages/yields take the worst, traces
/// concatenate, and the first violation (by trial index) wins. The
/// telemetry registries end up identical to a serial run of the same
/// trials — each task records into thread-local sinks that
/// exec::forEachIndex merges back deterministically.
dsn::ScenarioOutcome runReplicated(
    const CliOptions& opt, const std::vector<dsn::ScenarioEvent>& events) {
  const std::size_t trials = static_cast<std::size_t>(opt.trials);
  std::vector<dsn::ScenarioOutcome> slots(trials);
  dsn::exec::forEachIndex(trials, opt.jobs, [&](std::size_t t) {
    const std::uint64_t seed =
        trialStreamSeed(opt, static_cast<int>(t));
    dsn::SensorNetwork net(networkConfigFor(opt, seed));
    slots[t] = dsn::runScenario(net, events, scenarioOptionsFor(opt, seed));
  });

  dsn::ScenarioOutcome agg;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto& one = slots[t];
    for (const auto& line : one.log)
      agg.log.push_back("[trial " + std::to_string(t) + "] " + line);
    agg.eventsExecuted += one.eventsExecuted;
    agg.broadcasts += one.broadcasts;
    agg.reliableBroadcasts += one.reliableBroadcasts;
    agg.multicasts += one.multicasts;
    agg.gathers += one.gathers;
    agg.crashes += one.crashes;
    agg.repairs += one.repairs;
    agg.worstCoverage = std::min(agg.worstCoverage, one.worstCoverage);
    agg.worstYield = std::min(agg.worstYield, one.worstYield);
    if (!one.valid && agg.valid) {
      agg.valid = false;
      agg.firstViolation =
          "[trial " + std::to_string(t) + "] " + one.firstViolation;
    }
    agg.traceEvents.insert(agg.traceEvents.end(), one.traceEvents.begin(),
                           one.traceEvents.end());
    agg.traceDropped += one.traceDropped;
  }
  return agg;
}

/// dsnet-run-v1 document: config + outcome + metrics + timing.
std::string runDocumentJson(const CliOptions& opt,
                            const dsn::ScenarioOutcome& outcome) {
  dsn::obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "dsnet-run-v1");
  w.kv("tool", "wsn_sim");
  w.key("config").beginObject();
  w.kv("nodes", static_cast<std::uint64_t>(opt.nodes));
  w.kv("seed", static_cast<std::uint64_t>(opt.seed));
  w.kv("field_units", opt.fieldUnits);
  w.kv("range", opt.range);
  w.kv("drop", opt.drop);
  w.kv("channels", static_cast<std::uint64_t>(opt.channels));
  w.kv("trials", static_cast<std::uint64_t>(opt.trials));
  w.kv("jobs", static_cast<std::uint64_t>(
                   dsn::exec::resolveJobs(opt.jobs)));
  w.kv("scenario",
       opt.scenarioPath.empty() ? "<demo>" : opt.scenarioPath);
  if (opt.protocol) w.kv("protocol", dsn::toString(*opt.protocol));
  w.endObject();
  w.key("outcome").beginObject();
  w.kv("events", static_cast<std::uint64_t>(outcome.eventsExecuted));
  w.kv("broadcasts", static_cast<std::uint64_t>(outcome.broadcasts));
  w.kv("reliable_broadcasts",
       static_cast<std::uint64_t>(outcome.reliableBroadcasts));
  w.kv("multicasts", static_cast<std::uint64_t>(outcome.multicasts));
  w.kv("gathers", static_cast<std::uint64_t>(outcome.gathers));
  w.kv("crashes", static_cast<std::uint64_t>(outcome.crashes));
  w.kv("repairs", static_cast<std::uint64_t>(outcome.repairs));
  w.kv("worst_coverage", outcome.worstCoverage);
  w.kv("worst_yield", outcome.worstYield);
  w.kv("valid", outcome.valid);
  w.kv("trace_events",
       static_cast<std::uint64_t>(outcome.traceEvents.size()));
  w.kv("trace_dropped",
       static_cast<std::uint64_t>(outcome.traceDropped));
  w.endObject();
  w.key("metrics");
  dsn::obs::writeRegistryJson(w, dsn::obs::globalMetrics());
  w.key("timing");
  dsn::obs::writeTimingJson(w, dsn::obs::globalTiming());
  w.endObject();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsn;

  CliOptions opt;
  if (!parseArgs(argc, argv, opt)) {
    usage(std::cerr);
    return 2;
  }

  if (!opt.metricsJsonPath.empty()) {
    obs::setEnabled(true);
    obs::globalMetrics().reset();
    obs::globalTiming().reset();
  }
  if (!opt.recordTracePath.empty()) {
    obs::FrConfig fc;
    fc.capacity = opt.traceBuffer;
    fc.categories = opt.traceCategories;
    fc.sampleEvery = opt.traceSample;
    obs::processRecorder().configure(fc);
  }
  if (opt.profileRounds) obs::setRoundProfiling(true);

  if (opt.trials > 1 && !opt.dotPath.empty()) {
    std::cerr << "--dot requires --trials 1 (no single final topology "
                 "in replicated mode)\n";
    return 2;
  }

  std::vector<ScenarioEvent> events;
  try {
    if (opt.scenarioPath.empty()) {
      events = parseScenario(std::string(kDemoScenario));
    } else if (opt.scenarioPath == "-") {
      events = parseScenario(std::cin);
    } else {
      std::ifstream in(opt.scenarioPath);
      if (!in) {
        std::cerr << "cannot open scenario: " << opt.scenarioPath << "\n";
        return 2;
      }
      events = parseScenario(in);
    }
  } catch (const std::exception& ex) {
    std::cerr << "scenario parse error: " << ex.what() << "\n";
    return 2;
  }

  // Single-trial mode keeps the deployment alive for --dot and the
  // final gauge refresh; replicated mode tears each one down inside its
  // worker task.
  std::unique_ptr<SensorNetwork> net;
  ScenarioOutcome outcome;
  try {
    if (opt.trials == 1) {
      net = std::make_unique<SensorNetwork>(
          networkConfigFor(opt, opt.seed));
      if (!opt.quiet) std::cout << toSummary(net->clusterNet()) << "\n";
      outcome =
          runScenario(*net, events, scenarioOptionsFor(opt, opt.seed));
    } else {
      outcome = runReplicated(opt, events);
    }
  } catch (const std::exception& ex) {
    std::cerr << "scenario execution error: " << ex.what() << "\n";
    return 2;
  }

  // Fold flight-recorder accounting into the metrics registry (and log
  // an overflow warning) before the run document snapshots it.
  if (!opt.recordTracePath.empty()) obs::flushRecorderTelemetry();

  if (!opt.quiet) {
    for (const auto& line : outcome.log) std::cout << "  " << line << "\n";
  }
  if (!opt.dotPath.empty()) {
    std::ofstream dot(opt.dotPath);
    if (!dot) {
      std::cerr << "cannot write dot file: " << opt.dotPath << "\n";
      return 2;
    }
    dot << toDot(net->clusterNet());
    if (!opt.quiet)
      std::cout << "[dot] final topology written to " << opt.dotPath
                << "\n";
  }
  if (!opt.metricsJsonPath.empty()) {
    // Refresh point-in-time gauges so the snapshot describes the final
    // topology even if the last structural op predates churn-free events.
    // Replicated mode skips this: the merged registry already carries the
    // last trial's gauges (merge order is deterministic).
    if (net) {
      obs::globalMetrics()
          .gauge("cluster.backbone_size")
          .set(static_cast<double>(
              net->clusterNet().backboneNodes().size()));
      obs::globalMetrics()
          .gauge("cluster.net_size")
          .set(static_cast<double>(net->clusterNet().netSize()));
      obs::globalMetrics()
          .gauge("cluster.height")
          .set(static_cast<double>(net->clusterNet().height()));
    }
    std::ofstream mj(opt.metricsJsonPath);
    if (!mj) {
      std::cerr << "cannot write metrics file: " << opt.metricsJsonPath
                << "\n";
      return 2;
    }
    mj << runDocumentJson(opt, outcome) << "\n";
    if (!opt.quiet)
      std::cout << "[metrics] run document written to "
                << opt.metricsJsonPath << "\n";
  }
  if (!opt.traceOutPath.empty()) {
    std::ofstream tr(opt.traceOutPath);
    if (!tr) {
      std::cerr << "cannot write trace file: " << opt.traceOutPath << "\n";
      return 2;
    }
    writeTraceJsonl(tr, outcome.traceEvents);
    if (!opt.quiet)
      std::cout << "[trace] " << outcome.traceEvents.size()
                << " events written to " << opt.traceOutPath << " ("
                << outcome.traceDropped << " dropped)\n";
  }
  if (!opt.recordTracePath.empty()) {
    std::ofstream out(opt.recordTracePath, std::ios::binary);
    if (!out || !obs::writeDsnTrace(out, obs::processRecorder(), opt.seed,
                                    opt.nodes)) {
      std::cerr << "cannot write trace file: " << opt.recordTracePath
                << "\n";
      return 2;
    }
    if (!opt.quiet) {
      const auto& rec = obs::processRecorder();
      std::cout << "[dsntrace] " << rec.storedEvents()
                << " events written to " << opt.recordTracePath << " ("
                << rec.droppedEvents() << " dropped)\n";
    }
  }
  std::cout << "events=" << outcome.eventsExecuted
            << " broadcasts=" << outcome.broadcasts
            << " rbroadcasts=" << outcome.reliableBroadcasts
            << " multicasts=" << outcome.multicasts
            << " gathers=" << outcome.gathers
            << " crashes=" << outcome.crashes
            << " repairs=" << outcome.repairs
            << " worst-coverage=" << outcome.worstCoverage
            << " worst-yield=" << outcome.worstYield
            << " valid=" << (outcome.valid ? "yes" : "NO") << "\n";
  if (!outcome.valid) {
    std::cerr << "first violation:\n" << outcome.firstViolation << "\n";
    return 1;
  }
  return 0;
}
