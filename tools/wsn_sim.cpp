// wsn_sim — command-line driver for the dsnet simulator.
//
// Builds a paper-style deployment and executes a scenario script (file
// or stdin). With no scenario a small demo workload runs.
//
//   wsn_sim [--nodes N] [--seed S] [--field UNITS] [--range METERS]
//           [--drop P] [--channels K] [--scenario FILE | -]
//           [--metrics-json FILE] [--trace-out FILE] [--trace-cap N]
//           [--quiet]
//
// --metrics-json enables the telemetry layer for the run and writes a
// dsnet-run-v1 JSON document (config, outcome, metrics registry
// snapshot, hierarchical phase timings). --trace-out captures per-round
// radio events from every protocol run into a JSONL file.
//
// Exit status: 0 on success with all invariants intact, 1 on any
// invariant violation, 2 on usage/parse errors.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/scenario.hpp"
#include "cluster/export.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "radio/trace.hpp"

namespace {

struct CliOptions {
  std::size_t nodes = 200;
  std::uint64_t seed = 2007;
  int fieldUnits = 10;
  double range = 50.0;
  double drop = 0.0;
  dsn::Channel channels = 1;
  std::string scenarioPath;
  std::string dotPath;
  std::string metricsJsonPath;
  std::string traceOutPath;
  std::size_t traceCap = 1 << 16;  ///< per protocol run
  bool quiet = false;
};

void usage(std::ostream& os) {
  os << "usage: wsn_sim [--nodes N] [--seed S] [--field UNITS]\n"
        "               [--range METERS] [--drop P] [--channels K]\n"
        "               [--scenario FILE|-] [--dot FILE]\n"
        "               [--metrics-json FILE] [--trace-out FILE]\n"
        "               [--trace-cap N] [--quiet]\n";
}

bool parseArgs(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--nodes") {
      const char* v = next();
      if (!v) return false;
      opt.nodes = std::strtoul(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--field") {
      const char* v = next();
      if (!v) return false;
      opt.fieldUnits = std::atoi(v);
    } else if (arg == "--range") {
      const char* v = next();
      if (!v) return false;
      opt.range = std::atof(v);
    } else if (arg == "--drop") {
      const char* v = next();
      if (!v) return false;
      opt.drop = std::atof(v);
    } else if (arg == "--channels") {
      const char* v = next();
      if (!v) return false;
      opt.channels = static_cast<dsn::Channel>(std::atoi(v));
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return false;
      opt.scenarioPath = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return false;
      opt.dotPath = v;
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (!v) return false;
      opt.metricsJsonPath = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      opt.traceOutPath = v;
    } else if (arg == "--trace-cap") {
      const char* v = next();
      if (!v) return false;
      opt.traceCap = std::strtoul(v, nullptr, 10);
      if (opt.traceCap == 0) return false;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

constexpr const char* kDemoScenario = R"(
# demo: churn + every communication primitive
broadcast random icff
broadcast random dfo
gather
leave 3
leave 17
join 480 510
group 5 1
group 9 1
multicast 0 1 pruned
compact
validate
broadcast random icff
)";

/// dsnet-run-v1 document: config + outcome + metrics + timing.
std::string runDocumentJson(const CliOptions& opt,
                            const dsn::ScenarioOutcome& outcome) {
  dsn::obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "dsnet-run-v1");
  w.kv("tool", "wsn_sim");
  w.key("config").beginObject();
  w.kv("nodes", static_cast<std::uint64_t>(opt.nodes));
  w.kv("seed", static_cast<std::uint64_t>(opt.seed));
  w.kv("field_units", opt.fieldUnits);
  w.kv("range", opt.range);
  w.kv("drop", opt.drop);
  w.kv("channels", static_cast<std::uint64_t>(opt.channels));
  w.kv("scenario",
       opt.scenarioPath.empty() ? "<demo>" : opt.scenarioPath);
  w.endObject();
  w.key("outcome").beginObject();
  w.kv("events", static_cast<std::uint64_t>(outcome.eventsExecuted));
  w.kv("broadcasts", static_cast<std::uint64_t>(outcome.broadcasts));
  w.kv("multicasts", static_cast<std::uint64_t>(outcome.multicasts));
  w.kv("gathers", static_cast<std::uint64_t>(outcome.gathers));
  w.kv("worst_coverage", outcome.worstCoverage);
  w.kv("worst_yield", outcome.worstYield);
  w.kv("valid", outcome.valid);
  w.kv("trace_events",
       static_cast<std::uint64_t>(outcome.traceEvents.size()));
  w.kv("trace_dropped",
       static_cast<std::uint64_t>(outcome.traceDropped));
  w.endObject();
  w.key("metrics");
  dsn::obs::writeRegistryJson(w, dsn::obs::globalMetrics());
  w.key("timing");
  dsn::obs::writeTimingJson(w, dsn::obs::globalTiming());
  w.endObject();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsn;

  CliOptions opt;
  if (!parseArgs(argc, argv, opt)) {
    usage(std::cerr);
    return 2;
  }

  if (!opt.metricsJsonPath.empty()) {
    obs::setEnabled(true);
    obs::globalMetrics().reset();
    obs::globalTiming().reset();
  }

  NetworkConfig cfg;
  cfg.nodeCount = opt.nodes;
  cfg.seed = opt.seed;
  cfg.field = Field::squareUnits(opt.fieldUnits);
  cfg.range = opt.range;

  SensorNetwork net(cfg);
  if (!opt.quiet) {
    std::cout << toSummary(net.clusterNet()) << "\n";
  }

  std::vector<ScenarioEvent> events;
  try {
    if (opt.scenarioPath.empty()) {
      events = parseScenario(std::string(kDemoScenario));
    } else if (opt.scenarioPath == "-") {
      events = parseScenario(std::cin);
    } else {
      std::ifstream in(opt.scenarioPath);
      if (!in) {
        std::cerr << "cannot open scenario: " << opt.scenarioPath << "\n";
        return 2;
      }
      events = parseScenario(in);
    }
  } catch (const std::exception& ex) {
    std::cerr << "scenario parse error: " << ex.what() << "\n";
    return 2;
  }

  ScenarioOptions sopt;
  sopt.seed = opt.seed ^ 0xCAFE;
  sopt.protocol.dropProbability = opt.drop;
  sopt.protocol.channels = opt.channels;
  if (!opt.traceOutPath.empty())
    sopt.protocol.traceCapacity = opt.traceCap;

  ScenarioOutcome outcome;
  try {
    outcome = runScenario(net, events, sopt);
  } catch (const std::exception& ex) {
    std::cerr << "scenario execution error: " << ex.what() << "\n";
    return 2;
  }

  if (!opt.quiet) {
    for (const auto& line : outcome.log) std::cout << "  " << line << "\n";
  }
  if (!opt.dotPath.empty()) {
    std::ofstream dot(opt.dotPath);
    if (!dot) {
      std::cerr << "cannot write dot file: " << opt.dotPath << "\n";
      return 2;
    }
    dot << toDot(net.clusterNet());
    if (!opt.quiet)
      std::cout << "[dot] final topology written to " << opt.dotPath
                << "\n";
  }
  if (!opt.metricsJsonPath.empty()) {
    // Refresh point-in-time gauges so the snapshot describes the final
    // topology even if the last structural op predates churn-free events.
    obs::globalMetrics()
        .gauge("cluster.backbone_size")
        .set(static_cast<double>(net.clusterNet().backboneNodes().size()));
    obs::globalMetrics()
        .gauge("cluster.net_size")
        .set(static_cast<double>(net.clusterNet().netSize()));
    obs::globalMetrics()
        .gauge("cluster.height")
        .set(static_cast<double>(net.clusterNet().height()));
    std::ofstream mj(opt.metricsJsonPath);
    if (!mj) {
      std::cerr << "cannot write metrics file: " << opt.metricsJsonPath
                << "\n";
      return 2;
    }
    mj << runDocumentJson(opt, outcome) << "\n";
    if (!opt.quiet)
      std::cout << "[metrics] run document written to "
                << opt.metricsJsonPath << "\n";
  }
  if (!opt.traceOutPath.empty()) {
    std::ofstream tr(opt.traceOutPath);
    if (!tr) {
      std::cerr << "cannot write trace file: " << opt.traceOutPath << "\n";
      return 2;
    }
    writeTraceJsonl(tr, outcome.traceEvents);
    if (!opt.quiet)
      std::cout << "[trace] " << outcome.traceEvents.size()
                << " events written to " << opt.traceOutPath << " ("
                << outcome.traceDropped << " dropped)\n";
  }
  std::cout << "events=" << outcome.eventsExecuted
            << " broadcasts=" << outcome.broadcasts
            << " multicasts=" << outcome.multicasts
            << " gathers=" << outcome.gathers
            << " worst-coverage=" << outcome.worstCoverage
            << " worst-yield=" << outcome.worstYield
            << " valid=" << (outcome.valid ? "yes" : "NO") << "\n";
  if (!outcome.valid) {
    std::cerr << "first violation:\n" << outcome.firstViolation << "\n";
    return 1;
  }
  return 0;
}
