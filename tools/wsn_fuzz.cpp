// wsn_fuzz — property-based fuzz harness for the dsnet protocols.
//
// Runs N seeded episodes. Each episode deploys a random connected
// network, executes a random dynamic-op program (joins, leaves, crashes,
// fault flips, repairs, broadcast/multicast requests), and checks the
// oracle battery after every op: differential delivered-set agreement
// across DFO/CFF/iCFF, collision-freedom, the naive first-principles
// reference simulator, reliable-vs-plain supersetness, multicast
// flood/pruned containment, trace consistency against the radio axioms,
// and validator-vs-independent-spec-checker agreement on the structure.
//
//   wsn_fuzz [--episodes N] [--seed S] [--jobs N] [--verify-jobs N]
//            [--min-nodes N] [--max-nodes N] [--field UNITS] [--ops N]
//            [--channels K] [--inject-cff-bug] [--replay-seed S]
//            [--json FILE] [--artifacts DIR] [--no-shrink] [--quiet]
//
// The campaign is deterministically parallel: results (including the
// campaign digest) are bit-identical at every --jobs count.
// --verify-jobs J reruns the whole campaign at a second worker count and
// fails unless the digests match. --replay-seed replays one episode by
// the seed printed in failure reports. --inject-cff-bug corrupts every
// CFF schedule with a deliberate slot-assignment bug; the harness must
// then report failures (this is how the harness tests itself).
//
// On failure, the first failing episode is minimized (op deletion +
// node-count bisection) and, with --artifacts DIR, exported as a
// replayable .wsn scenario plus a seed file. The shrunk program is also
// re-executed with the flight recorder on and the resulting
// shrunk.dsntrace attached, so `wsn_trace summary/dump` can show the
// exact event stream leading into the failure.
//
// Exit status: 0 clean, 1 failures found or digest mismatch, 2 usage.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/flight.hpp"
#include "obs/flight_io.hpp"
#include "testkit/fuzz.hpp"

namespace {

struct CliOptions {
  dsn::testkit::FuzzConfig fuzz;
  int verifyJobs = -1;  ///< < 0 = off
  bool replay = false;
  std::uint64_t replaySeed = 0;
  std::string jsonPath;
  std::string artifactsDir;
  bool quiet = false;
};

void usage(std::ostream& os) {
  os << "usage: wsn_fuzz [--episodes N] [--seed S] [--jobs N]\n"
        "                [--verify-jobs N] [--min-nodes N] [--max-nodes N]\n"
        "                [--field UNITS] [--ops N] [--channels K]\n"
        "                [--inject-cff-bug] [--replay-seed S]\n"
        "                [--json FILE] [--artifacts DIR] [--no-shrink]\n"
        "                [--quiet]\n";
}

bool parseArgs(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--episodes") {
      const char* v = next();
      if (!v) return false;
      opt.fuzz.episodes = std::strtoul(v, nullptr, 10);
      if (opt.fuzz.episodes == 0) return false;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.fuzz.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--jobs" || arg == "-j") {
      const char* v = next();
      if (!v) return false;
      opt.fuzz.jobs = std::atoi(v);
      if (opt.fuzz.jobs < 0) return false;
    } else if (arg == "--verify-jobs") {
      const char* v = next();
      if (!v) return false;
      opt.verifyJobs = std::atoi(v);
      if (opt.verifyJobs < 0) return false;
    } else if (arg == "--min-nodes") {
      const char* v = next();
      if (!v) return false;
      opt.fuzz.knobs.minNodes = std::strtoul(v, nullptr, 10);
      if (opt.fuzz.knobs.minNodes < 2) return false;
    } else if (arg == "--max-nodes") {
      const char* v = next();
      if (!v) return false;
      opt.fuzz.knobs.maxNodes = std::strtoul(v, nullptr, 10);
    } else if (arg == "--field") {
      const char* v = next();
      if (!v) return false;
      opt.fuzz.knobs.fieldUnits = std::atoi(v);
      if (opt.fuzz.knobs.fieldUnits < 1) return false;
    } else if (arg == "--ops") {
      const char* v = next();
      if (!v) return false;
      opt.fuzz.knobs.maxOps = std::strtoul(v, nullptr, 10);
      if (opt.fuzz.knobs.maxOps == 0) return false;
      opt.fuzz.knobs.minOps =
          std::min(opt.fuzz.knobs.minOps, opt.fuzz.knobs.maxOps);
    } else if (arg == "--channels") {
      const char* v = next();
      if (!v) return false;
      opt.fuzz.episode.channels = static_cast<dsn::Channel>(std::atoi(v));
      if (opt.fuzz.episode.channels < 1) return false;
    } else if (arg == "--inject-cff-bug") {
      opt.fuzz.episode.injectCffSlotBug = true;
    } else if (arg == "--replay-seed") {
      const char* v = next();
      if (!v) return false;
      opt.replay = true;
      opt.replaySeed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return false;
      opt.jsonPath = v;
    } else if (arg == "--artifacts") {
      const char* v = next();
      if (!v) return false;
      opt.artifactsDir = v;
    } else if (arg == "--no-shrink") {
      opt.fuzz.shrinkFailures = false;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  if (opt.fuzz.knobs.maxNodes < opt.fuzz.knobs.minNodes) return false;
  return true;
}

void printFailure(const dsn::testkit::FuzzFailure& f) {
  std::cerr << "FAIL episode " << f.episodeIndex << " (seed "
            << f.episodeSeed << ", op " << f.result.failingOp << "): ["
            << f.result.failureClass << "] " << f.result.message << "\n";
  if (f.shrunk) {
    std::cerr << "  shrunk to " << f.shrink.program.ops.size() << " ops / "
              << f.shrink.program.nodeCount << " nodes ("
              << f.shrink.episodesRun << " episodes) — class ["
              << f.shrink.failure.failureClass << "]\n";
  }
}

bool writeArtifacts(const std::string& dir,
                    const dsn::testkit::FuzzFailure& f,
                    const dsn::testkit::EpisodeOptions& episode) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort; open reports
  {
    std::ofstream seedFile(dir + "/failure_seed.txt");
    if (!seedFile) {
      std::cerr << "cannot write artifacts to " << dir << "\n";
      return false;
    }
    seedFile << f.episodeSeed << "\n";
  }
  if (f.shrunk) {
    std::ofstream wsn(dir + "/shrunk.wsn");
    wsn << f.shrink.scenarioText;

    // Replay the minimized episode with the flight recorder on and
    // attach the event stream. A scoped sink keeps the replay out of the
    // process recorder; the rerun is deterministic, so the trace shows
    // exactly the failing execution.
    dsn::obs::FlightRecorder recorder;
    dsn::obs::FrConfig fc;
    fc.capacity = 1 << 16;
    recorder.configure(fc);
    {
      dsn::obs::ScopedRecorderSink sink(recorder);
      dsn::testkit::runEpisode(f.shrink.program, episode);
    }
    std::ofstream traceOut(dir + "/shrunk.dsntrace", std::ios::binary);
    if (traceOut) {
      dsn::obs::writeDsnTrace(traceOut, recorder, f.episodeSeed,
                              f.shrink.program.nodeCount);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!parseArgs(argc, argv, opt)) {
    usage(std::cerr);
    return 2;
  }

  if (opt.replay) {
    const auto r = dsn::testkit::replayEpisode(opt.replaySeed,
                                               opt.fuzz.knobs,
                                               opt.fuzz.episode);
    if (r.ok) {
      std::cout << "episode seed " << opt.replaySeed << ": clean ("
                << r.opsExecuted << " ops, digest " << r.digest << ")\n";
      return 0;
    }
    std::cerr << "episode seed " << opt.replaySeed << " fails at op "
              << r.failingOp << ": [" << r.failureClass << "] " << r.message
              << "\n";
    return 1;
  }

  const dsn::testkit::FuzzReport report = dsn::testkit::runFuzz(opt.fuzz);

  bool digestMismatch = false;
  if (opt.verifyJobs >= 0 && opt.verifyJobs != opt.fuzz.jobs) {
    dsn::testkit::FuzzConfig verify = opt.fuzz;
    verify.jobs = opt.verifyJobs;
    verify.shrinkFailures = false;
    const auto second = dsn::testkit::runFuzz(verify);
    if (second.digest != report.digest) {
      digestMismatch = true;
      std::cerr << "DIGEST MISMATCH: jobs=" << opt.fuzz.jobs << " -> "
                << report.digest << ", jobs=" << opt.verifyJobs << " -> "
                << second.digest << "\n";
    } else if (!opt.quiet) {
      std::cout << "digest verified across jobs=" << opt.fuzz.jobs
                << " and jobs=" << opt.verifyJobs << "\n";
    }
  }

  if (!opt.quiet) {
    std::cout << "fuzz: " << report.episodes << " episodes, "
              << report.failed << " failed, " << report.simRuns
              << " simulator runs, " << report.opsExecuted
              << " ops executed (" << report.opsSkipped
              << " skipped), digest " << report.digest << "\n";
  }
  for (const auto& f : report.failures) printFailure(f);

  if (!opt.jsonPath.empty()) {
    std::ofstream out(opt.jsonPath);
    if (!out) {
      std::cerr << "cannot write " << opt.jsonPath << "\n";
      return 2;
    }
    dsn::testkit::writeFuzzJson(out, opt.fuzz, report);
  }
  if (!opt.artifactsDir.empty() && !report.failures.empty()) {
    if (!writeArtifacts(opt.artifactsDir, report.failures.front(),
                        opt.fuzz.episode))
      return 2;
  }

  return (report.clean() && !digestMismatch) ? 0 : 1;
}
