// wsn_campaign — mobility/churn campaign driver (DESIGN.md §15).
//
// Runs a long mobility campaign: a random-waypoint walk plus sustained
// crash/join/leave churn against one deployment, with CFF/iCFF
// broadcasts admitted every --wave-period rounds and kept in flight
// while the topology changes under them every --churn-period rounds.
//
//   wsn_campaign [--nodes N] [--seed S] [--field UNITS] [--range M]
//                [--rounds R] [--wave-period W] [--churn-period C]
//                [--churn RATE] [--policy incremental|rebuild|adaptive]
//                [--scheme cff|icff] [--speed V] [--walk-period P]
//                [--jobs N | --threads N] [--min-coverage X] [--quiet]
//
// --churn RATE is the expected structural events per churn tick, split
// 40% crashes / 50% joins / 10% voluntary leaves (joins slightly above
// losses so the deployment does not drain). --policy selects the repair
// strategy; adaptive is the Gavalas-style debt-threshold re-cluster.
//
// --jobs/--threads N routes every wave through the spatially sharded
// round engine with N workers. The report — including the campaign
// digest — is bit-identical at every worker count and carries no
// wall-clock, so two runs can be byte-compared (the churn-smoke CI job
// does exactly that).
//
// Exit status: 0 when the structure stayed validator-clean after every
// repair AND settled coverage reached --min-coverage (default 0.99);
// 1 otherwise; 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/sensor_network.hpp"
#include "mobility/campaign.hpp"

namespace {

struct CliOptions {
  std::size_t nodes = 120;
  std::uint64_t seed = 2007;
  int fieldUnits = 4;
  double range = 50.0;
  dsn::Round rounds = 10'000;
  dsn::Round wavePeriod = 200;
  dsn::Round churnPeriod = 8;
  double churn = 0.3;
  dsn::mobility::RepairPolicy policy =
      dsn::mobility::RepairPolicy::kAdaptive;
  dsn::BroadcastScheme scheme = dsn::BroadcastScheme::kImprovedCff;
  double speed = 20.0;
  dsn::Round walkPeriod = 32;
  int threads = 0;
  double minCoverage = 0.99;
  bool quiet = false;
};

void usage(std::ostream& os) {
  os << "usage: wsn_campaign [--nodes N] [--seed S] [--field UNITS]\n"
        "                    [--range METERS] [--rounds R]\n"
        "                    [--wave-period W] [--churn-period C]\n"
        "                    [--churn RATE]\n"
        "                    [--policy incremental|rebuild|adaptive]\n"
        "                    [--scheme cff|icff] [--speed V]\n"
        "                    [--walk-period P] [--jobs N | --threads N]\n"
        "                    [--min-coverage X] [--quiet]\n";
}

bool parseArgs(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--nodes") {
      if (!(v = next())) return false;
      opt.nodes = std::strtoul(v, nullptr, 10);
    } else if (arg == "--seed") {
      if (!(v = next())) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--field") {
      if (!(v = next())) return false;
      opt.fieldUnits = std::atoi(v);
      if (opt.fieldUnits <= 0) return false;
    } else if (arg == "--range") {
      if (!(v = next())) return false;
      opt.range = std::atof(v);
    } else if (arg == "--rounds") {
      if (!(v = next())) return false;
      opt.rounds = std::strtoll(v, nullptr, 10);
      if (opt.rounds <= 0) return false;
    } else if (arg == "--wave-period") {
      if (!(v = next())) return false;
      opt.wavePeriod = std::strtoll(v, nullptr, 10);
      if (opt.wavePeriod <= 0) return false;
    } else if (arg == "--churn-period") {
      if (!(v = next())) return false;
      opt.churnPeriod = std::strtoll(v, nullptr, 10);
      if (opt.churnPeriod <= 0) return false;
    } else if (arg == "--churn") {
      if (!(v = next())) return false;
      opt.churn = std::atof(v);
      if (opt.churn < 0.0) return false;
    } else if (arg == "--policy") {
      if (!(v = next())) return false;
      const std::string p = v;
      if (p == "incremental")
        opt.policy = dsn::mobility::RepairPolicy::kIncremental;
      else if (p == "rebuild")
        opt.policy = dsn::mobility::RepairPolicy::kRebuild;
      else if (p == "adaptive")
        opt.policy = dsn::mobility::RepairPolicy::kAdaptive;
      else
        return false;
    } else if (arg == "--scheme") {
      if (!(v = next())) return false;
      const std::string s = v;
      if (s == "cff")
        opt.scheme = dsn::BroadcastScheme::kCff;
      else if (s == "icff")
        opt.scheme = dsn::BroadcastScheme::kImprovedCff;
      else
        return false;
    } else if (arg == "--speed") {
      if (!(v = next())) return false;
      opt.speed = std::atof(v);
      if (opt.speed <= 0.0) return false;
    } else if (arg == "--walk-period") {
      if (!(v = next())) return false;
      opt.walkPeriod = std::strtoll(v, nullptr, 10);
      if (opt.walkPeriod <= 0) return false;
    } else if (arg == "--jobs" || arg == "-j" || arg == "--threads") {
      if (!(v = next())) return false;
      opt.threads = std::atoi(v);
      if (opt.threads < 0) return false;
    } else if (arg == "--min-coverage") {
      if (!(v = next())) return false;
      opt.minCoverage = std::atof(v);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsn;
  using namespace dsn::mobility;

  CliOptions opt;
  if (!parseArgs(argc, argv, opt)) {
    usage(std::cerr);
    return 2;
  }

  NetworkConfig nc;
  nc.field = Field::squareUnits(opt.fieldUnits);
  nc.range = opt.range;
  nc.nodeCount = opt.nodes;
  nc.seed = opt.seed;
  SensorNetwork net(nc);

  WaypointConfig wc;
  wc.field = nc.field;
  wc.speed = opt.speed;
  wc.period = opt.walkPeriod;
  wc.seed = opt.seed ^ 0x30B11E;
  RandomWaypointModel model(wc);
  for (NodeId v : net.clusterNet().netNodes()) model.track(v, net.position(v));

  ChurnConfig cc;
  cc.crashRate = 0.4 * opt.churn;
  cc.joinRate = 0.5 * opt.churn;
  cc.leaveRate = 0.1 * opt.churn;
  cc.policy = opt.policy;
  cc.field = nc.field;
  cc.seed = opt.seed ^ 0xC0FFEE;
  ChurnEngine engine(net, &model, cc);

  CampaignConfig cfg;
  cfg.rounds = opt.rounds;
  cfg.wavePeriod = opt.wavePeriod;
  cfg.churnPeriod = opt.churnPeriod;
  cfg.scheme = opt.scheme;
  cfg.sourceSeed = opt.seed ^ 0x5EED;
  cfg.protocol.threads = opt.threads;
  if (opt.threads > 0) cfg.protocol.shardSerialThreshold = 0;

  CampaignResult res;
  try {
    res = runMobilityCampaign(net, engine, cfg);
  } catch (const std::exception& ex) {
    std::cerr << "campaign error: " << ex.what() << "\n";
    return 2;
  }

  // The report is deterministic and wall-clock-free on purpose: two runs
  // at different --jobs counts must be byte-identical.
  if (!opt.quiet) {
    std::cout << "campaign: nodes=" << opt.nodes << " seed=" << opt.seed
              << " field=" << opt.fieldUnits << " rounds=" << res.roundsRun
              << " scheme=" << toString(cfg.scheme)
              << " policy=" << toString(opt.policy)
              << " churn=" << opt.churn << "\n";
    std::cout << "waves=" << res.waves
              << " repair_waves=" << res.repairWavesRun
              << " intended=" << res.intended
              << " delivered=" << res.delivered
              << " departed=" << res.departed
              << " displaced=" << res.displaced
              << " settled=" << res.settled
              << " settled_covered=" << res.settledCovered << "\n";
    const ChurnTotals& t = res.churn;
    std::cout << "churn: ticks=" << t.ticks << " moves=" << t.moves
              << " crashes=" << t.crashes << " joins=" << t.joins
              << " leaves=" << t.leaves << " repairs=" << t.repairs
              << " rebuilds=" << t.rebuilds
              << " inc_cost=" << t.incrementalCost
              << " reb_cost=" << t.rebuildCost << "\n";
  }
  std::printf("coverage=%.6f first_wave=%.6f validator=%s digest=%016llx\n",
              res.effectiveCoverage(), res.firstWaveCoverage(),
              res.validatorClean() ? "clean"
                                   : "DIRTY",
              static_cast<unsigned long long>(res.digest));

  const bool ok =
      res.validatorClean() && res.effectiveCoverage() >= opt.minCoverage;
  if (!ok) {
    std::cerr << "campaign gate FAILED: validator "
              << (res.validatorClean() ? "clean" : "dirty") << ", coverage "
              << res.effectiveCoverage() << " vs required " << opt.minCoverage
              << "\n";
    return 1;
  }
  return 0;
}
