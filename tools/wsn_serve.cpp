// wsn_serve — resident batch-serving engine over warm deployment
// snapshots.
//
// Reads a stream of dsnet-job-v1 lines (stdin by default, or --batch
// FILE), runs each scenario job on a worker pool over a warm-state
// cache keyed by deployment fingerprint, and streams one dsnet-run-v1
// (or dsnet-error-v1) record per job to stdout in job order. Output is
// byte-identical at any --jobs count: every record is a pure function
// of its own job line.
//
//   wsn_serve [--batch FILE] [--out FILE] [--jobs N]
//             [--cache-capacity N] [--timing] [--quiet]
//   wsn_serve --emit-demo N [--demo-seed S] [--demo-nodes N]
//             [--demo-deployments K] [--demo-mutating M]
//             [--demo-heavy H] [--out FILE]
//
// --emit-demo writes a deterministic mixed demo workload as job lines
// instead of serving (feed it back in: the CI smoke and the nightly
// serve campaign do exactly that).
//
// Exit status: 0 all jobs ok, 1 any parse error or failed job, 2 usage.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/job.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: wsn_serve [--batch FILE] [--out FILE] [--jobs N]\n"
        "                 [--cache-capacity N] [--timing] [--quiet]\n"
        "       wsn_serve --emit-demo N [--demo-seed S] [--demo-nodes N]\n"
        "                 [--demo-deployments K] [--demo-mutating M]\n"
        "                 [--demo-heavy H] [--out FILE]\n";
}

struct Cli {
  std::string batchPath;
  std::string outPath;
  int jobs = 1;
  std::size_t cacheCapacity = 64;
  bool timing = false;
  bool quiet = false;
  std::size_t emitDemo = 0;
  std::uint64_t demoSeed = 2007;
  std::size_t demoNodes = 200;
  std::size_t demoDeployments = 8;
  std::size_t demoMutating = 16;
  std::size_t demoHeavy = 4;
};

bool parseCli(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--batch") {
      const char* v = next();
      if (!v) return false;
      cli.batchPath = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      cli.outPath = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return false;
      cli.jobs = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--cache-capacity") {
      const char* v = next();
      if (!v) return false;
      cli.cacheCapacity = std::strtoull(v, nullptr, 10);
    } else if (arg == "--timing") {
      cli.timing = true;
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--emit-demo") {
      const char* v = next();
      if (!v) return false;
      cli.emitDemo = std::strtoull(v, nullptr, 10);
      if (cli.emitDemo == 0) return false;
    } else if (arg == "--demo-seed") {
      const char* v = next();
      if (!v) return false;
      cli.demoSeed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--demo-nodes") {
      const char* v = next();
      if (!v) return false;
      cli.demoNodes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--demo-deployments") {
      const char* v = next();
      if (!v) return false;
      cli.demoDeployments = std::strtoull(v, nullptr, 10);
    } else if (arg == "--demo-mutating") {
      const char* v = next();
      if (!v) return false;
      cli.demoMutating = std::strtoull(v, nullptr, 10);
    } else if (arg == "--demo-heavy") {
      const char* v = next();
      if (!v) return false;
      cli.demoHeavy = std::strtoull(v, nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parseCli(argc, argv, cli)) {
    usage(std::cerr);
    return 2;
  }

  std::ofstream outFile;
  std::ostream* out = &std::cout;
  if (!cli.outPath.empty()) {
    outFile.open(cli.outPath);
    if (!outFile) {
      std::cerr << "wsn_serve: cannot open " << cli.outPath << "\n";
      return 2;
    }
    out = &outFile;
  }

  if (cli.emitDemo > 0) {
    const auto jobs =
        dsn::serve::demoJobs(cli.emitDemo, cli.demoSeed, cli.demoNodes,
                             cli.demoDeployments, cli.demoMutating,
                             cli.demoHeavy);
    for (const auto& job : jobs) *out << dsn::serve::formatJobLine(job) << '\n';
    if (!cli.quiet)
      std::cerr << "wsn_serve: emitted " << jobs.size() << " demo jobs\n";
    return 0;
  }

  dsn::obs::setEnabled(true);
  dsn::serve::ServeOptions options;
  options.jobs = cli.jobs;
  options.cacheCapacity = cli.cacheCapacity;
  options.includeTiming = cli.timing;
  dsn::serve::ServeEngine engine(options);

  dsn::serve::ServeReport report;
  if (!cli.batchPath.empty()) {
    std::ifstream in(cli.batchPath);
    if (!in) {
      std::cerr << "wsn_serve: cannot open " << cli.batchPath << "\n";
      return 2;
    }
    report = engine.serveStream(in, *out);
  } else {
    report = engine.serveStream(std::cin, *out);
  }

  if (!cli.quiet) {
    const double secs = report.wallMs / 1000.0;
    std::cerr << "wsn_serve: " << report.jobsRun << " jobs on "
              << report.workers << " workers in " << report.wallMs << " ms";
    if (secs > 0.0)
      std::cerr << " (" << static_cast<double>(report.jobsRun) / secs
                << " jobs/s)";
    std::cerr << "\n  cache: " << report.cache.hits << " hits, "
              << report.cache.misses << " misses, " << report.cache.evictions
              << " evictions (hit rate " << report.cache.hitRate
              << "); csr fresh " << report.cache.csrFresh << ", stale "
              << report.cache.csrStale << "\n";
    if (report.parseErrors > 0 || report.jobsFailed > 0 ||
        report.invalidOutcomes > 0)
      std::cerr << "  problems: " << report.parseErrors << " parse errors, "
                << report.jobsFailed << " failed jobs, "
                << report.invalidOutcomes << " invalid outcomes\n";
  }
  return report.ok() ? 0 : 1;
}
