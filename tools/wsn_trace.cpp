// wsn_trace — inspect, summarize and convert .dsntrace flight-recorder
// files produced by wsn_sim --record-trace / wsn_fuzz / the bench
// runners.
//
//   wsn_trace dump FILE [--type NAME] [--node N] [--round A:B] [--limit N]
//   wsn_trace summary FILE [--json] [--top K]
//   wsn_trace chrome FILE [-o OUT]     Chrome trace_event JSON
//   wsn_trace jsonl FILE [-o OUT]      existing JSONL trace schema
//
// summary prints totals per event type, per-scheme run rollups, a
// per-wave profile (round offset inside the enclosing protocol run — the
// depth proxy: CFF delivers depth d in wave d), and top-k collision
// hotspots / retransmitters. --json emits the same data as a
// dsnet-trace-summary-v1 document for schema validation in CI.
//
// jsonl maps the radio-level categories onto the existing JSONL trace
// schema ({"type","round","node","peer","channel","kind"}); non-radio
// event types extend it with "data"/"aux" fields and a null kind.
//
// Exit status: 0 ok, 1 I/O or parse failure, 2 usage.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/flight_io.hpp"
#include "obs/json.hpp"

namespace {

using dsn::obs::FrEvent;
using dsn::obs::FrRunKind;
using dsn::obs::FrTraceFile;
using dsn::obs::FrType;

void usage(std::ostream& os) {
  os << "usage: wsn_trace dump FILE [--type NAME] [--node N]\n"
        "                       [--round A:B] [--limit N]\n"
        "       wsn_trace summary FILE [--json] [--top K]\n"
        "       wsn_trace chrome FILE [-o OUT]\n"
        "       wsn_trace jsonl FILE [-o OUT]\n";
}

bool parseRoundRange(const std::string& s, std::int64_t& lo,
                     std::int64_t& hi) {
  const std::size_t colon = s.find(':');
  if (colon == std::string::npos) {
    lo = hi = std::strtoll(s.c_str(), nullptr, 10);
    return true;
  }
  lo = colon == 0 ? 0 : std::strtoll(s.substr(0, colon).c_str(), nullptr, 10);
  hi = colon + 1 == s.size()
           ? std::numeric_limits<std::int64_t>::max()
           : std::strtoll(s.substr(colon + 1).c_str(), nullptr, 10);
  return lo <= hi;
}

bool typeFromName(const std::string& name, FrType& out) {
  for (std::uint32_t t = 0; t < dsn::obs::kFrTypeCount; ++t) {
    if (name == dsn::obs::frTypeName(static_cast<FrType>(t))) {
      out = static_cast<FrType>(t);
      return true;
    }
  }
  return false;
}

FrTraceFile load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return dsn::obs::readDsnTrace(in);
}

// ---- dump ----

int cmdDump(const std::string& path, int argc, char** argv, int i) {
  bool haveType = false;
  FrType type = FrType::kRoundBegin;
  std::int64_t node = -1;
  std::int64_t roundLo = 0;
  std::int64_t roundHi = std::numeric_limits<std::int64_t>::max();
  std::uint64_t limit = std::numeric_limits<std::uint64_t>::max();
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--type") {
      const char* v = next();
      if (!v || !typeFromName(v, type)) {
        std::cerr << "unknown event type\n";
        return 2;
      }
      haveType = true;
    } else if (arg == "--node") {
      const char* v = next();
      if (!v) return 2;
      node = std::strtoll(v, nullptr, 10);
    } else if (arg == "--round") {
      const char* v = next();
      if (!v || !parseRoundRange(v, roundLo, roundHi)) return 2;
    } else if (arg == "--limit") {
      const char* v = next();
      if (!v) return 2;
      limit = std::strtoull(v, nullptr, 10);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  const FrTraceFile trace = load(path);
  std::uint64_t shown = 0;
  for (const FrEvent& e : trace.events) {
    if (shown >= limit) break;
    if (haveType && static_cast<FrType>(e.type) != type) continue;
    if (node >= 0 && e.node != static_cast<std::uint64_t>(node)) continue;
    if (e.round < roundLo || e.round > roundHi) continue;
    std::cout << dsn::obs::describeFrEvent(e) << "\n";
    ++shown;
  }
  if (trace.meta.droppedEvents > 0)
    std::cerr << "note: " << trace.meta.droppedEvents
              << " events were dropped before recording\n";
  return 0;
}

// ---- summary ----

struct SchemeRollup {
  std::uint64_t runs = 0;
  std::uint64_t delivered = 0;
  std::uint64_t rounds = 0;
};

struct WaveRollup {
  std::uint64_t transmits = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
};

struct Summary {
  std::uint64_t typeCounts[dsn::obs::kFrTypeCount] = {};
  std::map<std::uint16_t, SchemeRollup> schemes;
  std::map<std::uint32_t, WaveRollup> waves;  ///< keyed by round-in-run
  std::map<std::uint32_t, std::uint64_t> roundEvents;  ///< per-round volume
  std::map<std::uint32_t, std::uint64_t> collisionsByNode;
  std::map<std::uint32_t, std::uint64_t> transmitsByNode;
  std::uint32_t maxRound = 0;
};

Summary summarize(const FrTraceFile& trace) {
  Summary s;
  for (const FrEvent& e : trace.events) {
    if (e.type < dsn::obs::kFrTypeCount) ++s.typeCounts[e.type];
    s.maxRound = std::max(s.maxRound, e.round);
    const FrType t = static_cast<FrType>(e.type);
    if (t != FrType::kRunBegin && t != FrType::kRunEnd &&
        t != FrType::kCrash && t != FrType::kRepair &&
        t != FrType::kSlotRecompute) {
      ++s.roundEvents[e.round];
    }
    switch (t) {
      case FrType::kRunEnd: {
        SchemeRollup& r = s.schemes[e.aux];
        ++r.runs;
        r.delivered += e.node;
        r.rounds += e.data;
        break;
      }
      case FrType::kTransmit:
        ++s.waves[e.round].transmits;
        ++s.transmitsByNode[e.node];
        break;
      case FrType::kDelivery:
        ++s.waves[e.round].deliveries;
        break;
      case FrType::kCollision:
        ++s.waves[e.round].collisions;
        ++s.collisionsByNode[e.node];
        break;
      default:
        break;
    }
  }
  return s;
}

template <typename Map>
std::vector<std::pair<std::uint32_t, std::uint64_t>> topK(const Map& m,
                                                          std::size_t k) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> v(m.begin(),
                                                         m.end());
  std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second
                                : a.first < b.first;
  });
  if (v.size() > k) v.resize(k);
  return v;
}

void summaryJson(const FrTraceFile& trace, const Summary& s,
                 std::size_t top) {
  dsn::obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "dsnet-trace-summary-v1");
  w.key("meta").beginObject();
  w.kv("seed", trace.meta.seed);
  w.kv("nodes", trace.meta.nodes);
  w.kv("sample_every",
       static_cast<std::uint64_t>(trace.meta.sampleEvery));
  w.kv("dropped_events", trace.meta.droppedEvents);
  w.key("categories").beginArray();
  for (std::uint32_t bit = 1; bit <= dsn::obs::kFrCatRun; bit <<= 1)
    if (trace.meta.categories & bit)
      w.value(dsn::obs::frCategoryName(bit));
  w.endArray();
  w.endObject();
  w.kv("events", static_cast<std::uint64_t>(trace.events.size()));
  w.kv("max_round", static_cast<std::uint64_t>(s.maxRound));
  w.key("by_type").beginObject();
  for (std::uint32_t t = 0; t < dsn::obs::kFrTypeCount; ++t)
    if (s.typeCounts[t] > 0)
      w.kv(dsn::obs::frTypeName(static_cast<FrType>(t)),
           s.typeCounts[t]);
  w.endObject();
  w.key("by_scheme").beginObject();
  for (const auto& [kind, r] : s.schemes) {
    w.key(dsn::obs::frRunKindName(static_cast<FrRunKind>(kind)))
        .beginObject();
    w.kv("runs", r.runs);
    w.kv("delivered", r.delivered);
    w.kv("rounds", r.rounds);
    w.endObject();
  }
  w.endObject();
  w.key("waves").beginArray();
  for (const auto& [round, wv] : s.waves) {
    w.beginObject();
    w.kv("round", static_cast<std::uint64_t>(round));
    w.kv("transmits", wv.transmits);
    w.kv("deliveries", wv.deliveries);
    w.kv("collisions", wv.collisions);
    w.endObject();
  }
  w.endArray();
  w.key("collision_hotspots").beginArray();
  for (const auto& [node, count] : topK(s.collisionsByNode, top)) {
    w.beginObject();
    w.kv("node", static_cast<std::uint64_t>(node));
    w.kv("collisions", count);
    w.endObject();
  }
  w.endArray();
  w.key("top_transmitters").beginArray();
  for (const auto& [node, count] : topK(s.transmitsByNode, top)) {
    w.beginObject();
    w.kv("node", static_cast<std::uint64_t>(node));
    w.kv("transmits", count);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  std::cout << w.str() << "\n";
}

void summaryText(const FrTraceFile& trace, const Summary& s,
                 std::size_t top) {
  std::cout << "trace: " << trace.events.size() << " events, seed "
            << trace.meta.seed << ", " << trace.meta.nodes
            << " nodes, sample 1/" << trace.meta.sampleEvery
            << ", dropped " << trace.meta.droppedEvents << "\n";
  std::cout << "\nby type:\n";
  for (std::uint32_t t = 0; t < dsn::obs::kFrTypeCount; ++t)
    if (s.typeCounts[t] > 0)
      std::cout << "  " << dsn::obs::frTypeName(static_cast<FrType>(t))
                << ": " << s.typeCounts[t] << "\n";
  if (!s.schemes.empty()) {
    std::cout << "\nby scheme (from run_end markers):\n";
    for (const auto& [kind, r] : s.schemes)
      std::cout << "  "
                << dsn::obs::frRunKindName(static_cast<FrRunKind>(kind))
                << ": " << r.runs << " runs, " << r.delivered
                << " delivered, " << r.rounds << " rounds\n";
  }
  if (!s.waves.empty()) {
    std::cout << "\nwave profile (round offset in run — depth proxy; "
                 "first "
              << top << "):\n";
    std::size_t shown = 0;
    for (const auto& [round, wv] : s.waves) {
      if (shown++ >= top) break;
      std::cout << "  r" << round << ": tx " << wv.transmits << ", rx "
                << wv.deliveries << ", coll " << wv.collisions << "\n";
    }
  }
  const auto hotspots = topK(s.collisionsByNode, top);
  if (!hotspots.empty()) {
    std::cout << "\ntop collision hotspots (listener nodes):\n";
    for (const auto& [node, count] : hotspots)
      std::cout << "  node " << node << ": " << count << "\n";
  }
  const auto talkers = topK(s.transmitsByNode, top);
  if (!talkers.empty()) {
    std::cout << "\ntop transmitters:\n";
    for (const auto& [node, count] : talkers)
      std::cout << "  node " << node << ": " << count << "\n";
  }
}

int cmdSummary(const std::string& path, int argc, char** argv, int i) {
  bool json = false;
  std::size_t top = 10;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--top") {
      if (i + 1 >= argc) return 2;
      top = std::strtoull(argv[++i], nullptr, 10);
      if (top == 0) return 2;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  const FrTraceFile trace = load(path);
  const Summary s = summarize(trace);
  if (json)
    summaryJson(trace, s, top);
  else
    summaryText(trace, s, top);
  return 0;
}

// ---- converters ----

int withOutput(int argc, char** argv, int i,
               const std::function<bool(std::ostream&)>& writeTo) {
  std::string outPath;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "-o" || arg == "--output") && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (outPath.empty()) return writeTo(std::cout) ? 0 : 1;
  std::ofstream out(outPath, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << outPath << "\n";
    return 1;
  }
  return writeTo(out) ? 0 : 1;
}

const char* jsonlType(FrType t) {
  switch (t) {
    case FrType::kTransmit:
      return "transmit";
    case FrType::kDelivery:
      return "receive";
    case FrType::kCollision:
      return "collision";
    case FrType::kNodeDeath:
      return "node_death";
    case FrType::kDroppedTransmit:
      return "dropped_transmit";
    case FrType::kJammedTransmit:
      return "jammed_transmit";
    default:
      return nullptr;  // not a radio-schema event
  }
}

const char* jsonlKind(std::uint16_t aux) {
  switch (aux) {
    case 0:
      return "data";
    case 1:
      return "token";
    case 2:
      return "control";
    case 3:
      return "nack";
    default:
      return "?";
  }
}

bool writeJsonl(std::ostream& os, const FrTraceFile& trace) {
  for (const FrEvent& e : trace.events) {
    const FrType t = static_cast<FrType>(e.type);
    dsn::obs::JsonWriter w;
    w.beginObject();
    if (const char* mapped = jsonlType(t)) {
      // Radio events reuse the existing trace schema verbatim.
      w.kv("type", mapped);
      w.kv("round", static_cast<std::uint64_t>(e.round));
      w.kv("node", static_cast<std::uint64_t>(e.node));
      if (t == FrType::kDelivery) {
        w.kv("peer", static_cast<std::uint64_t>(e.data));
      } else {
        w.key("peer").null();
      }
      w.kv("channel", static_cast<std::uint64_t>(e.channel));
      if (t == FrType::kCollision || t == FrType::kNodeDeath) {
        w.kv("kind", "data");
      } else {
        w.kv("kind", jsonlKind(e.aux));
      }
    } else {
      // Extended events: same keys plus raw data/aux, null kind.
      w.kv("type", dsn::obs::frTypeName(t));
      w.kv("round", static_cast<std::uint64_t>(e.round));
      w.kv("node", static_cast<std::uint64_t>(e.node));
      w.key("peer").null();
      w.kv("channel", static_cast<std::uint64_t>(e.channel));
      w.key("kind").null();
      w.kv("data", static_cast<std::uint64_t>(e.data));
      w.kv("aux", static_cast<std::uint64_t>(e.aux));
    }
    w.endObject();
    os << w.str() << "\n";
  }
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage(std::cerr);
    return 2;
  }
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  try {
    if (cmd == "dump") return cmdDump(path, argc, argv, 3);
    if (cmd == "summary") return cmdSummary(path, argc, argv, 3);
    if (cmd == "chrome") {
      const FrTraceFile trace = load(path);
      return withOutput(argc, argv, 3, [&](std::ostream& os) {
        return dsn::obs::writeChromeTrace(os, trace);
      });
    }
    if (cmd == "jsonl") {
      const FrTraceFile trace = load(path);
      return withOutput(argc, argv, 3, [&](std::ostream& os) {
        return writeJsonl(os, trace);
      });
    }
  } catch (const std::exception& ex) {
    std::cerr << "wsn_trace: " << ex.what() << "\n";
    return 1;
  }
  usage(std::cerr);
  return 2;
}
