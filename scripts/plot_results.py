#!/usr/bin/env python3
"""Render dsnet bench results as standalone SVG line charts.

Dependency-free (no matplotlib): reads every results/*.csv and every
structured results/BENCH_*.json record (schema dsnet-bench-v1) the
bench binaries wrote, takes the first column as the x axis and each
remaining column as a series, and emits one SVG per result. When a
bench produced both a CSV and a JSON record the JSON is skipped (same
table, one figure).

Usage:
    python3 scripts/plot_results.py [results-dir] [output-dir]

Defaults: build/results -> build/figures.
"""

import csv
import json
import pathlib
import sys

WIDTH, HEIGHT = 640, 420
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 64, 24, 40, 48
PALETTE = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
    "#9467bd", "#8c564b", "#17becf", "#7f7f7f",
]


def nice_ticks(lo, hi, count=5):
    """Evenly spaced ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / max(count - 1, 1)
    return [lo + i * step for i in range(count)]


def fmt(v):
    return f"{v:.0f}" if abs(v - round(v)) < 1e-9 else f"{v:.2f}"


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    if len(rows) < 2:
        return None
    header, data = rows[0], rows[1:]
    try:
        values = [[float(cell) for cell in row] for row in data]
    except ValueError:
        return None
    return header, values


def read_bench_json(path):
    """Extract (header, rows) from a dsnet-bench-v1 record."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if doc.get("schema") != "dsnet-bench-v1":
        return None
    header = doc.get("columns")
    rows = doc.get("rows")
    if not isinstance(header, list) or not isinstance(rows, list):
        return None
    try:
        values = [[float(cell) for cell in row] for row in rows]
    except (TypeError, ValueError):
        return None
    if not values:
        return None
    return header, values


def plot(path, out_dir, parsed=None, stem=None):
    if parsed is None:
        parsed = read_csv(path)
    if not parsed:
        return None
    header, values = parsed
    if len(header) < 2:
        return None
    stem = stem or path.stem

    xs = [row[0] for row in values]
    series = [(header[c], [row[c] for row in values])
              for c in range(1, len(header))]

    x_lo, x_hi = min(xs), max(xs)
    all_y = [v for _, ys in series for v in ys]
    y_lo, y_hi = min(all_y + [0.0]), max(all_y)

    def sx(x):
        span = (x_hi - x_lo) or 1.0
        return MARGIN_L + (x - x_lo) / span * (WIDTH - MARGIN_L - MARGIN_R)

    def sy(y):
        span = (y_hi - y_lo) or 1.0
        return (HEIGHT - MARGIN_B) - (y - y_lo) / span * (
            HEIGHT - MARGIN_T - MARGIN_B)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{WIDTH / 2}" y="20" text-anchor="middle" '
        f'font-size="14">{stem}</text>',
    ]

    # Axes + grid.
    for yt in nice_ticks(y_lo, y_hi):
        y = sy(yt)
        parts.append(
            f'<line x1="{MARGIN_L}" y1="{y:.1f}" x2="{WIDTH - MARGIN_R}" '
            f'y2="{y:.1f}" stroke="#dddddd"/>')
        parts.append(
            f'<text x="{MARGIN_L - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{fmt(yt)}</text>')
    for xt in nice_ticks(x_lo, x_hi):
        x = sx(xt)
        parts.append(
            f'<line x1="{x:.1f}" y1="{MARGIN_T}" x2="{x:.1f}" '
            f'y2="{HEIGHT - MARGIN_B}" stroke="#eeeeee"/>')
        parts.append(
            f'<text x="{x:.1f}" y="{HEIGHT - MARGIN_B + 18}" '
            f'text-anchor="middle">{fmt(xt)}</text>')
    parts.append(
        f'<line x1="{MARGIN_L}" y1="{HEIGHT - MARGIN_B}" '
        f'x2="{WIDTH - MARGIN_R}" y2="{HEIGHT - MARGIN_B}" '
        f'stroke="black"/>')
    parts.append(
        f'<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" '
        f'y2="{HEIGHT - MARGIN_B}" stroke="black"/>')
    parts.append(
        f'<text x="{WIDTH / 2}" y="{HEIGHT - 8}" '
        f'text-anchor="middle">{header[0]}</text>')

    # Series.
    for i, (name, ys) in enumerate(series):
        color = PALETTE[i % len(PALETTE)]
        points = " ".join(
            f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>')
        for x, y in zip(xs, ys):
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" '
                f'fill="{color}"/>')
        ly = MARGIN_T + 14 * i
        parts.append(
            f'<line x1="{WIDTH - MARGIN_R - 130}" y1="{ly}" '
            f'x2="{WIDTH - MARGIN_R - 110}" y2="{ly}" stroke="{color}" '
            f'stroke-width="2"/>')
        parts.append(
            f'<text x="{WIDTH - MARGIN_R - 104}" y="{ly + 4}">'
            f'{name}</text>')

    parts.append("</svg>")

    out = out_dir / (stem + ".svg")
    out.write_text("\n".join(parts))
    return out


def main():
    results = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else "build/results")
    out_dir = pathlib.Path(
        sys.argv[2] if len(sys.argv) > 2 else "build/figures")
    if not results.is_dir():
        print(f"no results directory at {results}", file=sys.stderr)
        return 1
    out_dir.mkdir(parents=True, exist_ok=True)
    written = 0
    csv_stems = set()
    for path in sorted(results.glob("*.csv")):
        out = plot(path, out_dir)
        if out:
            csv_stems.add(path.stem)
            print(f"  {out}")
            written += 1
    for path in sorted(results.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        if name in csv_stems:
            continue  # same table already rendered from the CSV
        out = plot(path, out_dir, parsed=read_bench_json(path), stem=name)
        if out:
            print(f"  {out}")
            written += 1
    print(f"{written} figures written to {out_dir}")
    return 0 if written else 1


if __name__ == "__main__":
    sys.exit(main())
