// T5 — slot-policy ablation (DESIGN.md §4(1)) and the §6 observation
// that measured slots sit far below the Lemma-3 bounds.
//
// Compares SlotPolicy::kStrict (leaf interference = all backbone
// neighbors; provably collision-free leaf hop) against kPaperLocal (the
// literal Time-Slot Condition 2), reporting slot magnitudes and the
// measured Algorithm-2 delivery under each. Expected: kPaperLocal slots
// are slightly smaller, but its leaf hop can drop receivers when a
// cross-depth backbone neighbor shares the provider's l-slot.
#include "bench/bench_common.hpp"
#include "broadcast/improved_cff.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("T5", "slot policy ablation: strict vs paper-local",
                     cfg);

  std::vector<std::vector<double>> rows;
  for (std::size_t n : cfg.nodeCounts) {
    for (SlotPolicy policy :
         {SlotPolicy::kStrict, SlotPolicy::kPaperLocal}) {
      ExperimentConfig ecfg = cfg;
      ecfg.cluster.slotPolicy = policy;
      const auto table = exec::runTrials(
          ecfg, n,
          [](SensorNetwork& net, Rng& rng, MetricTable& t) {
            const auto s = net.stats();
            t.add("Delta", static_cast<double>(s.maxLSlot));
            t.add("delta", static_cast<double>(s.maxBSlot));
            t.add("Delta_bound", static_cast<double>(s.lSlotBound()));
            const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                           net.randomNode(rng), 1);
            t.add("coverage", run.coverage());
            t.add("collisions", static_cast<double>(run.collisions));
          },
          jobs);
      rows.push_back({static_cast<double>(n),
                      policy == SlotPolicy::kStrict ? 1.0 : 0.0,
                      table.mean("Delta"), table.mean("delta"),
                      table.mean("Delta_bound"), table.mean("coverage"),
                      table.mean("collisions")});
    }
  }
  bench::emitBench("tbl_ablation_slots",
      "T5 — slot policy ablation (strict=1 / paper-local=0)",
      {"n", "strict", "Delta", "delta", "Lemma3 bound", "coverage",
       "collisions"},
            rows, cfg, 3);
  return 0;
}
