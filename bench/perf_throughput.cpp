// Perf — macro simulator throughput: rounds/sec and deliveries/sec of a
// CFF (Algorithm 1) broadcast under the active-set scheduler vs the
// full-scan reference, at n = 500 / 2000 / 5000.
//
// Both schedulers produce bit-identical runs (the differential suite in
// tests/radio enforces it), so the full-scan column doubles as an
// in-process calibration reference: CI compares the measured
// active/full-scan ratio against the committed baseline in
// bench/baselines/BENCH_perf.json, which cancels out host speed.
//
// Field area scales with n (the paper's max density, 5 nodes per unit
// square) so the 2000- and 5000-node points stress round count and node
// count rather than degenerate into a dense clique.
#include <chrono>
#include <cmath>

#include "bench/bench_common.hpp"
#include "broadcast/runner.hpp"

namespace {

struct Throughput {
  double roundsPerSec = 0.0;
  double deliveriesPerSec = 0.0;
};

Throughput measure(const dsn::SensorNetwork& net, dsn::NodeId source,
                   dsn::SimScheduling scheduling, int minReps) {
  dsn::ProtocolOptions opts;
  opts.scheduling = scheduling;
  net.broadcast(dsn::BroadcastScheme::kCff, source, 1, opts);  // warm-up

  // Time-targeted: a single small-n broadcast runs in microseconds, so a
  // fixed rep count yields cache/frequency noise that would destabilize
  // the CI gate's calibrated ratio. Repeat until the cell has measured a
  // meaningful wall-clock span (bounded, in case a run is pathologically
  // slow already).
  constexpr double kMinSeconds = 0.15;
  double rounds = 0.0;
  double deliveries = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  double secs = 0.0;
  for (int done = 0;;) {
    const auto run =
        net.broadcast(dsn::BroadcastScheme::kCff, source, 1, opts);
    rounds += static_cast<double>(run.sim.rounds);
    deliveries += static_cast<double>(run.delivered);
    ++done;
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count();
    if (done >= minReps && (secs >= kMinSeconds || done >= minReps * 200))
      break;
  }
  return {rounds / secs, deliveries / secs};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  bench::jobsArg(argc, argv);  // accepted for CI symmetry; timing is serial
  cfg.nodeCounts = {500, 2000, 5000};
  bench::printHeader("Perf", "simulator throughput, active-set vs full-scan",
                     cfg);

  std::vector<std::vector<double>> rows;
  for (std::size_t n : cfg.nodeCounts) {
    // 5 nodes per unit square — the paper's densest operating point.
    const int fieldUnits = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(n) / 5.0)));
    NetworkConfig nc;
    nc.field = Field::squareUnits(fieldUnits, cfg.unitMeters);
    nc.range = cfg.range;
    nc.nodeCount = n;
    nc.seed = cfg.trialSeed(n, 0);
    const SensorNetwork net(nc);

    Rng rng(cfg.trialSeed(n, 1));
    const NodeId source = net.randomNode(rng);

    const Throughput active =
        measure(net, source, SimScheduling::kActiveSet, cfg.trials);
    const Throughput full =
        measure(net, source, SimScheduling::kFullScan, cfg.trials);
    rows.push_back({static_cast<double>(n), active.roundsPerSec,
                    active.deliveriesPerSec, full.roundsPerSec,
                    full.deliveriesPerSec,
                    active.roundsPerSec / full.roundsPerSec});
  }

  bench::emitBench(
      "perf", "Perf — simulator throughput (CFF broadcast)",
      {"n", "active r/s", "active dlv/s", "fullscan r/s", "fullscan dlv/s",
       "speedup"},
      rows, cfg, 1);
  return 0;
}
