// Perf — macro simulator throughput: rounds/sec and deliveries/sec of a
// CFF (Algorithm 1) broadcast under the active-set scheduler vs the
// full-scan reference, at n = 500 / 2000 / 5000.
//
// Both schedulers produce bit-identical runs (the differential suite in
// tests/radio enforces it), so the full-scan column doubles as an
// in-process calibration reference: CI compares the measured
// active/full-scan ratio against the committed baseline in
// bench/baselines/BENCH_perf.json, which cancels out host speed.
//
// Field area scales with n (the paper's max density, 5 nodes per unit
// square) so the 2000- and 5000-node points stress round count and node
// count rather than degenerate into a dense clique.
//
// --trace-overhead switches the binary into a separate mode that
// measures flight-recorder cost at n = 2000 (recorder off vs sampled vs
// every-round) and emits results/BENCH_perf_trace.json. It never touches
// the "perf" record, so the CI perf gate's column contract is unchanged.
#include <chrono>
#include <cmath>
#include <cstring>

#include "bench/bench_common.hpp"
#include "broadcast/runner.hpp"
#include "obs/flight.hpp"

namespace {

struct Throughput {
  double roundsPerSec = 0.0;
  double deliveriesPerSec = 0.0;
};

Throughput measure(const dsn::SensorNetwork& net, dsn::NodeId source,
                   const dsn::ProtocolOptions& opts, int minReps,
                   double minSeconds = 0.15) {
  net.broadcast(dsn::BroadcastScheme::kCff, source, 1, opts);  // warm-up

  // Time-targeted: a single small-n broadcast runs in microseconds, so a
  // fixed rep count yields cache/frequency noise that would destabilize
  // the CI gate's calibrated ratio. Repeat until the cell has measured a
  // meaningful wall-clock span (bounded, in case a run is pathologically
  // slow already).
  double rounds = 0.0;
  double deliveries = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  double secs = 0.0;
  for (int done = 0;;) {
    const auto run =
        net.broadcast(dsn::BroadcastScheme::kCff, source, 1, opts);
    rounds += static_cast<double>(run.sim.rounds);
    deliveries += static_cast<double>(run.delivered);
    ++done;
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count();
    if (done >= minReps && (secs >= minSeconds || done >= minReps * 200))
      break;
  }
  return {rounds / secs, deliveries / secs};
}

Throughput measure(const dsn::SensorNetwork& net, dsn::NodeId source,
                   dsn::SimScheduling scheduling, int minReps) {
  dsn::ProtocolOptions opts;
  opts.scheduling = scheduling;
  return measure(net, source, opts, minReps);
}

}  // namespace

namespace {

// The --trace-overhead mode: one 2000-node CFF cell timed with the
// flight recorder off, sampled (every 8th round), and on every round.
int runTraceOverhead(dsn::ExperimentConfig cfg) {
  using namespace dsn;
  constexpr std::size_t n = 2000;
  cfg.nodeCounts = {n};
  bench::printHeader("PerfTrace",
                     "flight-recorder overhead, off vs sampled vs full",
                     cfg);

  const int fieldUnits = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(n) / 5.0)));
  NetworkConfig nc;
  nc.field = Field::squareUnits(fieldUnits, cfg.unitMeters);
  nc.range = cfg.range;
  nc.nodeCount = n;
  nc.seed = cfg.trialSeed(n, 0);
  const SensorNetwork net(nc);
  Rng rng(cfg.trialSeed(n, 1));
  const NodeId source = net.randomNode(rng);

  auto timed = [&](std::uint32_t sampleEvery) {
    if (sampleEvery > 0) {
      obs::FrConfig fc;
      fc.capacity = 1 << 20;
      fc.sampleEvery = sampleEvery;
      obs::processRecorder().configure(fc);
    }
    const Throughput t =
        measure(net, source, SimScheduling::kActiveSet, cfg.trials);
    obs::processRecorder().configure({});  // recorder off again
    return t;
  };
  const Throughput off = timed(0);
  const Throughput sampled = timed(8);
  const Throughput full = timed(1);

  std::vector<std::vector<double>> rows;
  rows.push_back({static_cast<double>(n), off.roundsPerSec,
                  sampled.roundsPerSec,
                  sampled.roundsPerSec / off.roundsPerSec,
                  full.roundsPerSec, full.roundsPerSec / off.roundsPerSec});
  bench::emitBench(
      "perf_trace", "PerfTrace — flight-recorder overhead (CFF broadcast)",
      {"n", "off r/s", "sampled r/s", "sampled ratio", "full r/s",
       "full ratio"},
      rows, cfg, 3);
  return 0;
}

// The --scale mode: one grid-deployed CFF cell at n = 100k (or 1M with
// --big), timed under the serial active-set engine (threads = 0) and the
// sharded engine at 1/2/4/8 workers. Grid deployment keeps network
// construction linear in n; the speedup column is relative to the
// sharded engine's own single-thread run so CI can gate thread scaling
// without a committed wall-clock number. Emits
// results/BENCH_perf_scale.json, never the "perf" record.
int runScale(dsn::ExperimentConfig cfg, std::size_t n) {
  using namespace dsn;
  cfg.nodeCounts = {n};
  bench::printHeader("PerfScale",
                     "sharded thread scaling, grid CFF broadcast", cfg);

  const int fieldUnits = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(n) / 5.0)));
  NetworkConfig nc;
  nc.field = Field::squareUnits(fieldUnits, cfg.unitMeters);
  nc.range = cfg.range;
  nc.nodeCount = n;
  nc.seed = cfg.trialSeed(n, 0);
  nc.deployment = DeploymentKind::kGrid;
  const SensorNetwork net(nc);
  Rng rng(cfg.trialSeed(n, 1));
  const NodeId source = net.randomNode(rng);

  auto shardedOpts = [](int threads) {
    ProtocolOptions o;
    o.threads = threads;
    return o;
  };
  // One rep minimum, half a second target: a single run at these sizes
  // already lasts long enough to time, and the cell count is what makes
  // this bench expensive.
  constexpr double kScaleSeconds = 0.5;
  const Throughput serial =
      measure(net, source, ProtocolOptions{}, 1, kScaleSeconds);
  const Throughput one =
      measure(net, source, shardedOpts(1), 1, kScaleSeconds);
  std::vector<std::vector<double>> rows;
  rows.push_back({static_cast<double>(n), 0.0, serial.roundsPerSec,
                  serial.deliveriesPerSec,
                  serial.roundsPerSec / one.roundsPerSec});
  rows.push_back({static_cast<double>(n), 1.0, one.roundsPerSec,
                  one.deliveriesPerSec, 1.0});
  for (const int t : {2, 4, 8}) {
    const Throughput m =
        measure(net, source, shardedOpts(t), 1, kScaleSeconds);
    rows.push_back({static_cast<double>(n), static_cast<double>(t),
                    m.roundsPerSec, m.deliveriesPerSec,
                    m.roundsPerSec / one.roundsPerSec});
  }
  bench::emitBench(
      "perf_scale", "PerfScale — sharded thread scaling (grid CFF broadcast)",
      {"n", "threads", "r/s", "dlv/s", "speedup"}, rows, cfg, 2);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  bench::jobsArg(argc, argv);  // accepted for CI symmetry; timing is serial
  bool scale = false;
  bool big = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-overhead") == 0)
      return runTraceOverhead(cfg);
    if (std::strcmp(argv[i], "--scale") == 0) scale = true;
    if (std::strcmp(argv[i], "--big") == 0) big = true;
  }
  if (scale) return runScale(cfg, big ? 1'000'000 : 100'000);
  cfg.nodeCounts = {500, 2000, 5000};
  bench::printHeader("Perf", "simulator throughput, active-set vs full-scan",
                     cfg);

  std::vector<std::vector<double>> rows;
  for (std::size_t n : cfg.nodeCounts) {
    // 5 nodes per unit square — the paper's densest operating point.
    const int fieldUnits = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(n) / 5.0)));
    NetworkConfig nc;
    nc.field = Field::squareUnits(fieldUnits, cfg.unitMeters);
    nc.range = cfg.range;
    nc.nodeCount = n;
    nc.seed = cfg.trialSeed(n, 0);
    const SensorNetwork net(nc);

    Rng rng(cfg.trialSeed(n, 1));
    const NodeId source = net.randomNode(rng);

    const Throughput active =
        measure(net, source, SimScheduling::kActiveSet, cfg.trials);
    const Throughput full =
        measure(net, source, SimScheduling::kFullScan, cfg.trials);
    rows.push_back({static_cast<double>(n), active.roundsPerSec,
                    active.deliveriesPerSec, full.roundsPerSec,
                    full.deliveriesPerSec,
                    active.roundsPerSec / full.roundsPerSec});
  }

  bench::emitBench(
      "perf", "Perf — simulator throughput (CFF broadcast)",
      {"n", "active r/s", "active dlv/s", "fullscan r/s", "fullscan dlv/s",
       "speedup"},
      rows, cfg, 1);
  return 0;
}
