// T4 — reconfiguration cost (Theorems 2 and 3): measured rounds per
// node-move-in and node-move-out across network sizes, split into the
// paper's cost components, against the theoretical envelopes
// O(d_new + 2h + 2d + D) and O(h + |T| D^2).
#include "bench/bench_common.hpp"
#include "cluster/backbone.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("T4", "node-move-in / node-move-out round cost", cfg);

  const auto sweep = exec::runSweep(
      cfg,
      [](SensorNetwork& net, Rng& rng, MetricTable& t) {
          auto& cnet = net.clusterNet();
          const auto statsBefore = net.stats();
          t.add("bound_in",
                static_cast<double>(statsBefore.degreeG) +
                    2.0 * statsBefore.cnetHeight +
                    2.0 * static_cast<double>(statsBefore.degreeBackbone) +
                    static_cast<double>(statsBefore.degreeG));

          // Ten joins near random survivors.
          cnet.resetCosts();
          std::int64_t joinRounds = 0;
          int joins = 0;
          for (int i = 0; i < 10; ++i) {
            const NodeId anchor = net.randomNode(rng);
            const auto before = cnet.costs();
            bool joined = false;
            net.addSensor({net.position(anchor).x + rng.uniformReal(-30, 30),
                           net.position(anchor).y + rng.uniformReal(-30, 30)},
                          &joined);
            if (joined) {
              joinRounds += (cnet.costs() - before).total();
              ++joins;
            }
          }
          if (joins > 0)
            t.add("move_in",
                  static_cast<double>(joinRounds) / joins);

          // Ten departures.
          std::int64_t outRounds = 0;
          std::int64_t subtree = 0;
          for (int i = 0; i < 10; ++i) {
            const auto report = net.removeSensor(net.randomNode(rng));
            outRounds += report.cost.total();
            subtree += static_cast<std::int64_t>(report.subtreeSize);
          }
          t.add("move_out", static_cast<double>(outRounds) / 10.0);
          t.add("avg_subtree", static_cast<double>(subtree) / 10.0);
      },
      jobs);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < sweep.nodeCounts.size(); ++i) {
    const auto& table = sweep.tables[i];
    rows.push_back({static_cast<double>(sweep.nodeCounts[i]),
                    table.mean("move_in"), table.mean("bound_in"),
                    table.mean("move_out"), table.mean("avg_subtree")});
  }
  bench::emitBench("tbl_reconfig", "T4 — reconfiguration cost (rounds)",
            {"n", "move-in avg", "Thm2 envelope", "move-out avg",
             "avg |T|"},
            rows, cfg, 1);
  return 0;
}
