// Figure 9 — number of rounds a node needs to stay awake during one
// broadcast: CFF (Algorithm 2) vs DFO. Reported as the worst-case node
// (the paper's metric) plus the network mean, and abstract energy under
// the linear radio model.
//
// Expected shape: CFF awake-rounds stay nearly flat in n (bounded by
// 2δ + Δ); DFO grows linearly (nodes idle-listen while the token tours).
#include "bench/bench_common.hpp"
#include "broadcast/runner.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  const auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("Fig. 9", "awake rounds per broadcast, CFF vs DFO",
                     cfg);

  const auto sweep = exec::runSweep(
      cfg,
      [](SensorNetwork& net, Rng& rng, MetricTable& t) {
        const NodeId source = net.randomNode(rng);
        const auto cff =
            net.broadcast(BroadcastScheme::kImprovedCff, source, 1);
        const auto dfo = net.broadcast(BroadcastScheme::kDfo, source, 1);
        t.add("cff_max_awake", static_cast<double>(cff.maxAwakeRounds));
        t.add("dfo_max_awake", static_cast<double>(dfo.maxAwakeRounds));
        t.add("cff_mean_awake", cff.meanAwakeRounds);
        t.add("dfo_mean_awake", dfo.meanAwakeRounds);
      },
      jobs);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < sweep.nodeCounts.size(); ++i) {
    const auto& table = sweep.tables[i];
    rows.push_back({static_cast<double>(sweep.nodeCounts[i]),
                    table.mean("cff_max_awake"),
                    table.mean("dfo_max_awake"),
                    table.mean("cff_mean_awake"),
                    table.mean("dfo_mean_awake")});
  }
  bench::emitBench("fig09_awake_energy", "Fig. 9 — awake rounds per node",
            {"n", "CFF max", "DFO max", "CFF mean", "DFO mean"},
            rows, cfg, 2);
  return 0;
}
