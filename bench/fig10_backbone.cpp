// Figure 10 — size and height of the backbone BT(G) as the network
// grows.
//
// Expected shape: backbone size grows roughly linearly with n at a fixed
// field; height grows much more slowly and flattens (it is bounded by
// the field diameter in hops).
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  const auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("Fig. 10", "backbone size and height vs n", cfg);

  const auto sweep = exec::runSweep(
      cfg,
      [](SensorNetwork& net, Rng&, MetricTable& t) {
        const auto s = net.stats();
        t.add("bt_size", static_cast<double>(s.backboneSize));
        t.add("bt_height", static_cast<double>(s.backboneHeight));
        t.add("clusters", static_cast<double>(s.clusterCount));
        t.add("cnet_height", static_cast<double>(s.cnetHeight));
      },
      jobs);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < sweep.nodeCounts.size(); ++i) {
    const auto& table = sweep.tables[i];
    rows.push_back({static_cast<double>(sweep.nodeCounts[i]),
                    table.mean("bt_size"), table.mean("bt_height"),
                    table.mean("clusters"), table.mean("cnet_height")});
  }
  bench::emitBench("fig10_backbone", "Fig. 10 — backbone size and height",
            {"n", "|BT| size", "BT height", "clusters", "h (CNet)"},
            rows, cfg, 1);
  return 0;
}
