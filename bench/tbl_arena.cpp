// T11 (DESIGN.md §16) — the broadcast arena: every scheme in the
// roster (the paper's DFO/CFF/iCFF plus the six flat-graph rivals:
// blind flooding, fixed/adaptive gossip, counter- and distance-based
// suppression, RLNC) races from the structure root across fault regimes
// and densities. One row per (regime, n, scheme) cell.
//
// Regimes (first column):
//   0 clean  — no faults
//   1 drop   — i.i.d. loss p = 0.1
//   2 burst  — Gilbert-Elliott (enter .05, exit .3, good .02, burst .9)
//   3 jam    — 150 m jam disk at the field center, always on
//   4 crash  — ~5% of non-root nodes crash before the wave; structure
//              repaired, so every scheme races the same survivor graph
//
// Schemes (third column, roster order):
//   0=DFO 1=CFF 2=ICFF 3=FLOOD 4=GOSSIP 5=AGOSSIP 6=COUNTER
//   7=DISTANCE 8=RLNC
//
// Expected shape: in the clean regime iCFF finishes in fewer rounds
// than every flat rival at every density (the collision-free slot
// schedule against contention backoff) — CI's arena-smoke job gates on
// that claim against the committed baseline. The rivals' advantage is
// needing no structure: they keep partial coverage under regime 4
// before the repair finishes, which the in-flight engine (§15) studies.
//
// `--tiny` shrinks the grid to n = 80 for smoke runs; `-j N` selects
// sweep workers (bit-identical output at every N).
#include <cstring>

#include "bench/bench_common.hpp"
#include "broadcast/runner.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bool tiny = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  cfg.nodeCounts = tiny ? std::vector<std::size_t>{80}
                        : std::vector<std::size_t>{150, 300, 450};

  bench::printHeader(
      "T11", "broadcast arena: all schemes x fault regimes x density", cfg);
  std::cout << "# regimes: 0=clean 1=drop(0.1) 2=burst 3=jam(center,150m) "
               "4=crash(5%)\n"
            << "# schemes: 0=DFO 1=CFF 2=ICFF 3=FLOOD 4=GOSSIP 5=AGOSSIP "
               "6=COUNTER 7=DISTANCE 8=RLNC\n";

  struct Regime {
    double id;
    void (*apply)(SensorNetwork&, Rng&, ProtocolOptions&,
                  const ExperimentConfig&);
  };
  const Regime regimes[] = {
      {0.0,
       [](SensorNetwork&, Rng&, ProtocolOptions&, const ExperimentConfig&) {
       }},
      {1.0,
       [](SensorNetwork&, Rng&, ProtocolOptions& o,
          const ExperimentConfig&) { o.dropProbability = 0.1; }},
      {2.0,
       [](SensorNetwork&, Rng&, ProtocolOptions& o,
          const ExperimentConfig&) {
         o.burst.pEnterBurst = 0.05;
         o.burst.pExitBurst = 0.3;
         o.burst.dropGood = 0.02;
         o.burst.dropBurst = 0.9;
       }},
      {3.0,
       [](SensorNetwork&, Rng&, ProtocolOptions& o,
          const ExperimentConfig& c) {
         JamZone z;
         const double side = c.fieldUnits * c.unitMeters;
         z.center = {side / 2.0, side / 2.0};
         z.radius = 150.0;
         o.jamZones.push_back(z);
       }},
      {4.0,
       [](SensorNetwork& net, Rng& rng, ProtocolOptions&,
          const ExperimentConfig&) {
         std::vector<NodeId> victims = net.clusterNet().netNodes();
         std::erase(victims, net.clusterNet().root());
         const std::size_t kills =
             std::max<std::size_t>(1, victims.size() * 5 / 100);
         for (std::size_t i = 0; i < kills && !victims.empty(); ++i) {
           const std::size_t pick = rng.pickIndex(victims);
           net.crashSensor(victims[pick]);
           victims.erase(victims.begin() +
                         static_cast<std::ptrdiff_t>(pick));
         }
         net.repairAfterFailures();
       }},
  };

  std::vector<std::vector<double>> rows;
  for (const Regime& regime : regimes) {
    const auto sweep = exec::runSweep(
        cfg,
        [&cfg, &regime](SensorNetwork& net, Rng& rng, MetricTable& t) {
          ProtocolOptions opts;
          regime.apply(net, rng, opts, cfg);
          opts.failureSeed = rng.next();
          opts.arena.seed = rng.next();

          const NodeId source = net.clusterNet().root();
          for (const BroadcastScheme scheme : kAllBroadcastSchemes) {
            const std::string tag(toString(scheme));
            const auto run = net.broadcast(scheme, source, 1, opts);
            t.add("cov_" + tag, run.coverage());
            // The Fig. 8 race metric: rounds until the broadcast
            // *completes*. A run that never reaches every intended node
            // has not completed — charging it only up to its last lucky
            // delivery would reward giving up early, so it is charged the
            // full simulated span instead.
            t.add("done_" + tag,
                  static_cast<double>(run.allDelivered()
                                          ? run.lastDeliveryRound + 1
                                          : run.sim.rounds));
            t.add("rounds_" + tag, static_cast<double>(run.sim.rounds));
            t.add("tx_" + tag, static_cast<double>(run.transmissions));
            t.add("coll_" + tag, static_cast<double>(run.collisions));
            t.add("awake_" + tag, run.meanAwakeRounds);
            t.add("decfail_" + tag,
                  static_cast<double>(run.decodeFailures));
          }
        },
        jobs);
    for (const std::size_t n : cfg.nodeCounts) {
      const MetricTable& t = sweep.at(n);
      for (std::size_t s = 0; s < kAllBroadcastSchemes.size(); ++s) {
        const std::string tag(toString(kAllBroadcastSchemes[s]));
        rows.push_back({regime.id, static_cast<double>(n),
                        static_cast<double>(s), t.mean("cov_" + tag),
                        t.mean("done_" + tag), t.mean("rounds_" + tag),
                        t.mean("tx_" + tag), t.mean("coll_" + tag),
                        t.mean("awake_" + tag), t.mean("decfail_" + tag)});
      }
    }
  }
  bench::emitBench(
      "tbl_arena",
      "T11 — broadcast arena: scheme x fault regime x density",
      {"regime", "n", "scheme", "coverage", "broadcast rounds",
       "sim rounds", "tx", "collisions", "mean awake", "decode fail"},
      rows, cfg, 3);
  return 0;
}
