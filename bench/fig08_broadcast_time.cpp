// Figure 8 — time (number of rounds) to complete a broadcast:
// collision-free flooding (CFF, Algorithm 2) vs depth-first-order (DFO)
// on the 10x10-unit field, n = 100..500.
//
// Expected shape (paper): CFF far below DFO, gap widening with n (DFO
// grows with the backbone size; CFF with δ·h + Δ).
#include "bench/bench_common.hpp"
#include "broadcast/runner.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  const auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("Fig. 8", "broadcast completion rounds, CFF vs DFO",
                     cfg);

  const auto sweep = exec::runSweep(
      cfg,
      [](SensorNetwork& net, Rng& rng, MetricTable& t) {
        const NodeId source = net.randomNode(rng);
        const auto cff =
            net.broadcast(BroadcastScheme::kImprovedCff, source, 1);
        const auto dfo = net.broadcast(BroadcastScheme::kDfo, source, 1);
        t.add("cff_rounds", static_cast<double>(cff.sim.rounds));
        t.add("dfo_rounds", static_cast<double>(dfo.sim.rounds));
        t.add("cff_coverage", cff.coverage());
        t.add("dfo_coverage", dfo.coverage());
      },
      jobs);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < sweep.nodeCounts.size(); ++i) {
    const auto& table = sweep.tables[i];
    rows.push_back({static_cast<double>(sweep.nodeCounts[i]),
                    table.mean("cff_rounds"), table.mean("dfo_rounds"),
                    table.mean("dfo_rounds") / table.mean("cff_rounds"),
                    table.mean("cff_coverage"),
                    table.mean("dfo_coverage")});
  }
  bench::emitBench("fig08_broadcast_time", "Fig. 8 — broadcast time (rounds)",
            {"n", "CFF rounds", "DFO rounds", "DFO/CFF", "CFF cov",
             "DFO cov"},
            rows, cfg, 2);
  return 0;
}
