// T2 — multicast vs broadcast (§3.4 "a multicast will be much faster
// than a broadcast"): transmissions, rounds and delivery for group sizes
// from one cluster up to half the network, pruned relay-lists vs full
// flooding, n = 300.
//
// Expected shape: pruned multicast needs a small fraction of the
// broadcast's transmissions for localized groups, converging toward the
// broadcast cost as the group approaches the whole network. Pruned
// delivery may dip fractionally below 1.0 — the relay-pruning soundness
// gap documented in DESIGN.md §4.
#include "bench/bench_common.hpp"
#include "broadcast/improved_cff.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader(
      "T2", "multicast (pruned vs flood) against broadcast (n = 300)",
      cfg);

  const std::size_t n = 300;
  constexpr GroupId kGroup = 1;
  std::vector<std::vector<double>> rows;
  for (double fraction : {0.02, 0.05, 0.1, 0.25, 0.5}) {
    const auto table = exec::runTrials(
        cfg, n,
        [fraction](SensorNetwork& net, Rng& rng, MetricTable& t) {
          // Localized group: grow membership outward from a random seed
          // member so the group occupies one region of the field.
          auto& cnet = net.clusterNet();
          const auto nodes = cnet.netNodes();
          const NodeId seed = nodes[rng.pickIndex(nodes)];
          const auto want = static_cast<std::size_t>(
              fraction * static_cast<double>(nodes.size()));
          // BFS from the seed over the flat graph.
          std::vector<NodeId> frontier{seed};
          std::size_t joined = 0;
          std::vector<bool> seen(net.graph().size(), false);
          seen[seed] = true;
          while (!frontier.empty() && joined < want) {
            const NodeId v = frontier.front();
            frontier.erase(frontier.begin());
            cnet.joinGroup(v, kGroup);
            ++joined;
            for (NodeId u : net.graph().neighbors(v)) {
              if (!seen[u] && cnet.contains(u)) {
                seen[u] = true;
                frontier.push_back(u);
              }
            }
          }

          const NodeId source = cnet.root();
          const auto pruned = net.multicast(source, kGroup, 1,
                                            MulticastMode::kPrunedRelay);
          const auto flood = net.multicast(source, kGroup, 1,
                                           MulticastMode::kFullFlood);
          const auto bcast =
              net.broadcast(BroadcastScheme::kImprovedCff, source, 1);
          t.add("group", static_cast<double>(joined));
          t.add("pruned_tx", static_cast<double>(pruned.transmissions));
          t.add("flood_tx", static_cast<double>(flood.transmissions));
          t.add("bcast_tx", static_cast<double>(bcast.transmissions));
          t.add("pruned_cov", pruned.coverage());
          t.add("flood_cov", flood.coverage());
          // Tear down group membership for the next trial (fresh nets
          // per trial, so this is belt-and-braces).
        },
        jobs);
    rows.push_back({table.mean("group"), table.mean("pruned_tx"),
                    table.mean("flood_tx"), table.mean("bcast_tx"),
                    table.mean("pruned_cov"), table.mean("flood_cov")});
  }
  bench::emitBench("tbl_multicast", "T2 — multicast vs broadcast (n = 300)",
            {"group size", "pruned tx", "flood tx", "bcast tx",
             "pruned cov", "flood cov"},
            rows, cfg, 3);
  return 0;
}
