// A1 — ablation: Algorithm 1 (flood the entire CNet, one slot space)
// vs Algorithm 2 (backbone flood + single leaf window).
//
// Expected shape: Algorithm 2 wins on rounds because its per-depth
// windows use δ (backbone-only interference, small) instead of the
// whole-network window, and members wake only for the final Δ window.
#include "bench/bench_common.hpp"
#include "broadcast/runner.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  const auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("A1", "Algorithm 1 vs Algorithm 2", cfg);

  const auto sweep = exec::runSweep(
      cfg,
      [](SensorNetwork& net, Rng& rng, MetricTable& t) {
        const NodeId source = net.randomNode(rng);
        const auto a1 = net.broadcast(BroadcastScheme::kCff, source, 1);
        const auto a2 =
            net.broadcast(BroadcastScheme::kImprovedCff, source, 1);
        t.add("a1_rounds", static_cast<double>(a1.sim.rounds));
        t.add("a2_rounds", static_cast<double>(a2.sim.rounds));
        t.add("a1_awake", static_cast<double>(a1.maxAwakeRounds));
        t.add("a2_awake", static_cast<double>(a2.maxAwakeRounds));
        t.add("a1_tx", static_cast<double>(a1.transmissions));
        t.add("a2_tx", static_cast<double>(a2.transmissions));
      },
      jobs);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < sweep.nodeCounts.size(); ++i) {
    const auto& table = sweep.tables[i];
    rows.push_back({static_cast<double>(sweep.nodeCounts[i]),
                    table.mean("a1_rounds"), table.mean("a2_rounds"),
                    table.mean("a1_awake"), table.mean("a2_awake"),
                    table.mean("a1_tx"), table.mean("a2_tx")});
  }
  bench::emitBench("tbl_alg1_vs_alg2", "A1 — Algorithm 1 vs Algorithm 2",
            {"n", "A1 rounds", "A2 rounds", "A1 awake", "A2 awake",
             "A1 tx", "A2 tx"},
            rows, cfg, 1);
  return 0;
}
