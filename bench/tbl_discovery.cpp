// T10 (validation of Theorem 2(1)'s assumption) — the randomized attach
// handshake of [19] executed on the radio: rounds to discover all
// d_new neighbors, vs d_new. The paper (and our RoundCost meter) charge
// O(d_new) expected rounds; this measures the hidden constant.
#include "bench/bench_common.hpp"
#include "broadcast/neighbor_discovery.hpp"
#include "graph/deploy.hpp"
#include "graph/unit_disk.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("T10", "neighbor-discovery handshake vs degree",
                     cfg);

  std::vector<std::vector<double>> rows;
  for (std::size_t degree : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const std::size_t trials = static_cast<std::size_t>(cfg.trials) * 4;
    std::vector<double> roundSlot(trials), completeSlot(trials);
    exec::forEachIndex(trials, jobs, [&](std::size_t trial) {
      // Star of `degree` leaves: the joiner is the hub.
      Graph g(degree + 1);
      for (NodeId v = 1; v <= degree; ++v) g.addEdge(0, v);
      DiscoveryConfig dc;
      dc.seed = cfg.trialSeed(degree, static_cast<int>(trial));
      const auto result = runNeighborDiscovery(g, 0, dc);
      roundSlot[trial] = static_cast<double>(result.rounds);
      completeSlot[trial] = result.complete ? 1.0 : 0.0;
    });
    Samples rounds, complete;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      rounds.add(roundSlot[trial]);
      complete.add(completeSlot[trial]);
    }
    rows.push_back({static_cast<double>(degree), rounds.mean(),
                    rounds.mean() / static_cast<double>(degree),
                    rounds.max(), complete.mean()});
  }
  bench::emitBench("tbl_discovery", "T10 — randomized neighbor discovery (O(d) handshake)",
            {"d_new", "rounds mean", "rounds/d", "rounds max",
             "complete"},
            rows, cfg, 2);
  return 0;
}
