// Figure 11 — D, d, Δ, δ vs n: the maximum degree of G (D), of the
// backbone-induced subgraph G(V_BT) (d), and the largest assigned
// l-time-slot (Δ) and b-time-slot (δ).
//
// Expected shape (paper §6): d << D; measured Δ and δ below (even
// "smaller than") D and d respectively, and far under the Lemma-3 bounds
// D(D+1)/2+1 and d(d+1)/2+1.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  const auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("Fig. 11", "degrees (D, d) and slots (Delta, delta)",
                     cfg);

  const auto sweep = exec::runSweep(
      cfg,
      [](SensorNetwork& net, Rng&, MetricTable& t) {
        const auto s = net.stats();
        t.add("D", static_cast<double>(s.degreeG));
        t.add("d", static_cast<double>(s.degreeBackbone));
        t.add("Delta", static_cast<double>(s.maxLSlot));
        t.add("delta", static_cast<double>(s.maxBSlot));
        t.add("Delta_bound", static_cast<double>(s.lSlotBound()));
        t.add("delta_bound", static_cast<double>(s.bSlotBound()));
      },
      jobs);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < sweep.nodeCounts.size(); ++i) {
    const auto& table = sweep.tables[i];
    rows.push_back({static_cast<double>(sweep.nodeCounts[i]),
                    table.mean("D"), table.mean("d"),
                    table.mean("Delta"), table.mean("delta"),
                    table.mean("Delta_bound"),
                    table.mean("delta_bound")});
  }
  bench::emitBench("fig11_degrees_slots", "Fig. 11 — degrees and time-slots",
            {"n", "D", "d", "Delta", "delta", "D(D+1)/2+1", "d(d+1)/2+1"},
            rows, cfg, 1);
  return 0;
}
