// T10 (DESIGN.md §10) — crash-fault recovery and reliable broadcast:
// after ~15% of the backbone crashes uncooperatively and
// repairAfterFailures() restores the invariants, how much coverage does
// a plain iCFF wave lose under each transient-fault regime, and how much
// does the NACK-driven reliable mode buy back (and at what round cost)?
//
// Regimes (first column):
//   0 none   — clean channel
//   1 drop   — i.i.d. loss p = 0.1
//   2 burst  — Gilbert-Elliott (enter .05, exit .3, good .02, burst .9)
//   3 jam    — 150 m jam disk at the field center, always on
//
// Expected shape: plain and reliable match at regime 0 (the repaired
// structure floods collision-free); under loss the reliable mode closes
// most of the coverage gap for a bounded number of extra repair waves.
#include "bench/bench_common.hpp"
#include "broadcast/reliable.hpp"
#include "broadcast/runner.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader(
      "T10", "recovery + reliable iCFF under fault regimes (n = 200)", cfg);
  std::cout << "# regimes: 0=none 1=drop(0.1) 2=burst 3=jam(center,150m)\n";

  const std::size_t n = 200;

  struct Regime {
    double id;
    void (*apply)(ProtocolOptions&, const ExperimentConfig&);
  };
  const Regime regimes[] = {
      {0.0, [](ProtocolOptions&, const ExperimentConfig&) {}},
      {1.0,
       [](ProtocolOptions& o, const ExperimentConfig&) {
         o.dropProbability = 0.1;
       }},
      {2.0,
       [](ProtocolOptions& o, const ExperimentConfig&) {
         o.burst.pEnterBurst = 0.05;
         o.burst.pExitBurst = 0.3;
         o.burst.dropGood = 0.02;
         o.burst.dropBurst = 0.9;
       }},
      {3.0,
       [](ProtocolOptions& o, const ExperimentConfig& c) {
         JamZone z;
         const double side = c.fieldUnits * c.unitMeters;
         z.center = {side / 2.0, side / 2.0};
         z.radius = 150.0;
         o.jamZones.push_back(z);
       }},
  };

  std::vector<std::vector<double>> rows;
  for (const Regime& regime : regimes) {
    const auto table = exec::runTrials(
        cfg, n,
        [&cfg, &regime](SensorNetwork& net, Rng& rng, MetricTable& t) {
          // Crash ~15% of the non-root backbone, then run the repair
          // pass so both waves flood a valid structure.
          std::vector<NodeId> backbone = net.clusterNet().backboneNodes();
          std::erase(backbone, net.clusterNet().root());
          const std::size_t kills =
              std::max<std::size_t>(1, backbone.size() * 15 / 100);
          for (std::size_t i = 0; i < kills && !backbone.empty(); ++i) {
            const std::size_t pick = rng.pickIndex(backbone);
            net.crashSensor(backbone[pick]);
            backbone.erase(backbone.begin() +
                           static_cast<std::ptrdiff_t>(pick));
          }
          const RecoveryReport rec = net.repairAfterFailures();
          t.add("pruned", static_cast<double>(rec.staleRemoved));

          ProtocolOptions opts;
          opts.failureSeed = rng.next();
          regime.apply(opts, cfg);

          const NodeId source = net.clusterNet().root();
          const auto plain = net.broadcast(BroadcastScheme::kImprovedCff,
                                           source, 1, opts);
          ReliableOptions ro;
          ro.base = opts;
          ro.maxRepairRounds = 8;
          const auto reliable = net.reliableBroadcast(
              BroadcastScheme::kImprovedCff, source, 1, ro);

          t.add("plain_cov", plain.coverage());
          t.add("rel_cov", reliable.coverage());
          t.add("plain_rounds", static_cast<double>(plain.sim.rounds));
          t.add("rel_rounds",
                static_cast<double>(reliable.totalRounds));
          t.add("repair_waves",
                static_cast<double>(reliable.repairRoundsUsed));
        },
        jobs);
    rows.push_back({regime.id, table.mean("plain_cov"),
                    table.mean("rel_cov"), table.mean("plain_rounds"),
                    table.mean("rel_rounds"), table.mean("repair_waves"),
                    table.mean("pruned")});
  }
  bench::emitBench(
      "tbl_recovery",
      "T10 — plain vs reliable iCFF after backbone crashes + repair",
      {"regime", "plain cov", "reliable cov", "plain rounds",
       "reliable rounds", "repair waves", "pruned"},
      rows, cfg, 3);
  return 0;
}
