// PerfServe — batch-serving throughput: jobs/sec of the resident serve
// engine over a 500-job mixed demo workload (10 deployments; light
// slotted-broadcast / validation queries as the common case, a heavy
// reliable / gather / rival-scheme request every 10th job, a mutating
// churn job every 100th), warm-cache serving vs per-job cold setup.
//
// "cold" runs the same engine with cacheCapacity 0, so every job pays
// deployment + clustering + CSR build before its scenario; "warm" is
// the resident configuration, where read-only jobs share one prebuilt
// snapshot per deployment fingerprint. Both modes emit byte-identical
// records (construction telemetry is routed to the process registries
// in both), so the ratio isolates setup cost — and being an in-process
// ratio it cancels host speed, which lets CI gate it against the
// committed baseline in bench/baselines/BENCH_perf_serve.json.
//
// Each mode does one untimed pass (for warm, that also populates the
// cache — the resident steady state) and then a timed pass. Per-job
// latency percentiles come from inter-emit gaps, meaningful at jobs 1
// where records are emitted inline as each job finishes.
#include <algorithm>
#include <chrono>
#include <vector>

#include "bench/bench_common.hpp"
#include "serve/engine.hpp"
#include "serve/job.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Measure {
  double jobsPerSec = 0.0;
  double p50Ms = 0.0;
  double p95Ms = 0.0;
};

double percentile(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

Measure measure(const std::vector<dsn::serve::ServeJob>& jobs, int workers,
                std::size_t cacheCapacity) {
  dsn::serve::ServeOptions options;
  options.jobs = workers;
  options.cacheCapacity = cacheCapacity;
  dsn::serve::ServeEngine engine(options);

  const auto discard = [](std::string_view) {};
  engine.serveJobs(jobs, discard);  // untimed pass: allocator, cache, freq

  std::vector<double> latenciesMs;
  latenciesMs.reserve(jobs.size());
  Clock::time_point last = Clock::now();
  const auto t0 = last;
  const auto report = engine.serveJobs(jobs, [&](std::string_view) {
    const Clock::time_point now = Clock::now();
    latenciesMs.push_back(
        std::chrono::duration<double, std::milli>(now - last).count());
    last = now;
  });
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();

  Measure m;
  m.jobsPerSec = static_cast<double>(report.jobsRun) / secs;
  m.p50Ms = percentile(latenciesMs, 0.50);
  m.p95Ms = percentile(latenciesMs, 0.95);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  bench::jobsArg(argc, argv);  // accepted for CI symmetry
  constexpr std::size_t kJobs = 500;
  cfg.nodeCounts = {kJobs};
  bench::printHeader("PerfServe",
                     "batch serving, warm snapshots vs per-job cold setup",
                     cfg);

  const auto jobs = serve::demoJobs(kJobs, 2007, /*nodes=*/200,
                                    /*deployments=*/10,
                                    /*mutatingEvery=*/100,
                                    /*heavyEvery=*/10);

  const Measure cold = measure(jobs, 1, /*cacheCapacity=*/0);
  const Measure warm = measure(jobs, 1, /*cacheCapacity=*/64);
  const Measure warm4 = measure(jobs, 4, /*cacheCapacity=*/64);

  // mode: 0 = cold (cache bypass), 1 = warm cache. ratio is vs the
  // cold single-worker row — the CI serve gate's calibration column.
  std::vector<std::vector<double>> rows;
  rows.push_back({0.0, 1.0, cold.jobsPerSec, cold.p50Ms, cold.p95Ms, 1.0});
  rows.push_back({1.0, 1.0, warm.jobsPerSec, warm.p50Ms, warm.p95Ms,
                  warm.jobsPerSec / cold.jobsPerSec});
  rows.push_back({1.0, 4.0, warm4.jobsPerSec, warm4.p50Ms, warm4.p95Ms,
                  warm4.jobsPerSec / cold.jobsPerSec});
  bench::emitBench(
      "perf_serve", "PerfServe — batch serving throughput (500 mixed jobs)",
      {"mode", "jobs", "jobs/s", "p50 ms", "p95 ms", "ratio"}, rows, cfg, 3);
  return 0;
}
