// T7 (extension) — convergecast data gathering: rounds, awake-rounds and
// transmissions per exact-sum wave vs n; the dual of Fig. 8/9.
//
// Expected shape: rounds grow with h·W (W stays small, so nearly with
// the tree height alone); awake-rounds stay flat; exactly n-1 frames.
#include "bench/bench_common.hpp"
#include "broadcast/convergecast.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  const auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("T7", "convergecast gather wave vs n", cfg);

  const auto sweep = exec::runSweep(
      cfg,
      [](SensorNetwork& net, Rng&, MetricTable& t) {
        std::vector<std::uint64_t> values(net.graph().size(), 1);
        const auto result = runConvergecast(net.clusterNet(), values);
        t.add("rounds", static_cast<double>(result.sim.rounds));
        t.add("awake", static_cast<double>(result.maxAwakeRounds));
        t.add("tx", static_cast<double>(result.transmissions));
        t.add("yield", result.yield());
        t.add("W", static_cast<double>(net.clusterNet().rootMaxUpSlot()));
      },
      jobs);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < sweep.nodeCounts.size(); ++i) {
    const auto& table = sweep.tables[i];
    rows.push_back({static_cast<double>(sweep.nodeCounts[i]),
                    table.mean("rounds"), table.mean("awake"),
                    table.mean("tx"), table.mean("yield"),
                    table.mean("W")});
  }
  bench::emitBench("tbl_gather", "T7 — convergecast (exact sum to the sink)",
            {"n", "rounds", "max awake", "tx", "yield", "W"},
            rows, cfg, 2);
  return 0;
}
