// T3 — robustness (§3.3): delivery coverage under transient relay
// failures, CFF (Algorithm 2) vs DFO, n = 200.
//
// Expected shape: DFO collapses as soon as drops are likely within one
// tour (a lost token stalls everything downstream); CFF degrades
// gracefully (only subtrees behind the failed transmission miss out).
#include "bench/bench_common.hpp"
#include "broadcast/runner.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("T3", "coverage under relay-drop failures (n = 200)",
                     cfg);

  const std::size_t n = 200;
  std::vector<std::vector<double>> rows;
  for (double p : {0.0, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    const auto table = exec::runTrials(
        cfg, n,
        [p](SensorNetwork& net, Rng& rng, MetricTable& t) {
          ProtocolOptions opts;
          opts.dropProbability = p;
          opts.failureSeed = rng.next();
          const NodeId source = net.randomNode(rng);
          const auto cff = net.broadcast(BroadcastScheme::kImprovedCff,
                                         source, 1, opts);
          const auto dfo =
              net.broadcast(BroadcastScheme::kDfo, source, 1, opts);
          t.add("cff_cov", cff.coverage());
          t.add("dfo_cov", dfo.coverage());
        },
        jobs);
    rows.push_back(
        {p, table.mean("cff_cov"), table.mean("dfo_cov"),
         table.mean("cff_cov") - table.mean("dfo_cov")});
  }
  bench::emitBench("tbl_robustness", "T3 — robustness: coverage vs relay-drop probability",
            {"drop p", "CFF coverage", "DFO coverage", "CFF - DFO"},
            rows, cfg, 3);
  return 0;
}
