// C1 (extension) — TDM window drift under churn and the effect of slot
// compaction: the root's scheduled windows (δ, Δ, W_up) vs the true
// maxima, before and after a compaction sweep.
//
// Expected shape: the incremental discipline (report increases only,
// paper §5.1) lets the scheduled windows drift above the true need as
// churn accumulates; compaction restores exact minima at an O(n·D)
// metered cost.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("C1", "window drift under churn + compaction", cfg);

  const std::size_t n = 250;
  std::vector<std::vector<double>> rows;
  for (int removals : {0, 50, 100, 150}) {
    const auto table = exec::runTrials(
        cfg, n,
        [removals](SensorNetwork& net, Rng& rng, MetricTable& t) {
          for (int i = 0; i < removals; ++i) {
            const auto nodes = net.clusterNet().netNodes();
            if (nodes.size() <= 10) break;
            net.removeSensor(nodes[rng.pickIndex(nodes)]);
          }
          auto& cnet = net.clusterNet();
          t.add("sched_L", static_cast<double>(cnet.rootMaxLSlot()));
          t.add("true_L", static_cast<double>(cnet.trueMaxLSlot()));
          t.add("sched_up", static_cast<double>(cnet.rootMaxUpSlot()));
          t.add("true_up", static_cast<double>(cnet.trueMaxUpSlot()));
          const auto rounds = cnet.compactSlots();
          t.add("compact_rounds", static_cast<double>(rounds));
          t.add("after_L", static_cast<double>(cnet.rootMaxLSlot()));
          t.add("after_up", static_cast<double>(cnet.rootMaxUpSlot()));
        },
        jobs);
    rows.push_back(
        {static_cast<double>(removals), table.mean("sched_L"),
         table.mean("true_L"), table.mean("after_L"),
         table.mean("sched_up"), table.mean("after_up"),
         table.mean("compact_rounds")});
  }
  bench::emitBench("tbl_compaction", "C1 — window drift and compaction (n = 250)",
            {"removals", "sched Delta", "true Delta", "Delta after",
             "sched W_up", "W_up after", "compact rounds"},
            rows, cfg, 2);
  return 0;
}
