// T11 (extension) — network lifetime: what the paper's "energy saving"
// buys end-to-end. Every epoch one broadcast runs and its measured
// per-node listen/transmit rounds drain finite batteries (no recharge);
// exhausted nodes withdraw.
//
// Lifetime = epochs until the first battery death and until the net has
// lost half its nodes.
//
// Expected shape: under DFO every node idle-listens for the whole tour,
// so the entire network drains in lock-step and dies early; under
// Algorithm 2 nodes sleep except for ~2δ+Δ rounds, stretching lifetime
// by roughly the awake-round ratio (an order of magnitude, cf. Fig. 9).
#include "bench/bench_common.hpp"
#include "broadcast/runner.hpp"
#include "core/battery.hpp"

namespace {

using namespace dsn;

struct Lifetime {
  int firstDeathEpochs = 0;  ///< first battery-driven withdrawal
  int halfNetEpochs = 0;     ///< net size < half the deployment
};

Lifetime measure(BroadcastScheme scheme, std::size_t n,
                 std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = seed;
  SensorNetwork net(cfg);
  Rng rng(seed ^ 0x11FE);

  BatteryConfig bc;
  bc.capacity = 3000.0;           // abstract units; same for both schemes
  bc.withdrawThreshold = 10.0;
  bc.rejoinThreshold = 1e9;       // no recharge: resting = dead for good
  bc.rechargePerTick = 0.0;
  bc.idleDrainPerTick = 1.0;
  BatteryManager batteries(net, bc);

  Lifetime life;
  const std::size_t half = n / 2;
  const int kMaxEpochs = 5000;
  for (int epoch = 1; epoch <= kMaxEpochs; ++epoch) {
    if (net.clusterNet().netSize() < 3) {
      if (life.halfNetEpochs == 0) life.halfNetEpochs = epoch;
      break;
    }
    const auto run = net.broadcast(scheme, net.randomNode(rng), 1);
    batteries.drainFromRun(run);
    const auto report = batteries.tick();

    if (life.firstDeathEpochs == 0 && !report.withdrawn.empty())
      life.firstDeathEpochs = epoch;
    if (life.halfNetEpochs == 0 && net.clusterNet().netSize() < half)
      life.halfNetEpochs = epoch;
    if (life.firstDeathEpochs && life.halfNetEpochs) break;
  }
  if (life.firstDeathEpochs == 0) life.firstDeathEpochs = kMaxEpochs;
  if (life.halfNetEpochs == 0) life.halfNetEpochs = kMaxEpochs;
  return life;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader(
      "T11", "network lifetime under a broadcast-per-epoch load (n=150)",
      cfg);

  const std::size_t n = 150;
  std::vector<std::vector<double>> rows;
  for (auto scheme :
       {BroadcastScheme::kDfo, BroadcastScheme::kImprovedCff}) {
    const std::size_t trials = static_cast<std::size_t>(cfg.trials);
    std::vector<Lifetime> slot(trials);
    exec::forEachIndex(trials, jobs, [&](std::size_t trial) {
      slot[trial] =
          measure(scheme, n, cfg.trialSeed(n, static_cast<int>(trial)));
    });
    Samples firstDeath, halfLife;
    for (const Lifetime& life : slot) {
      firstDeath.add(life.firstDeathEpochs);
      halfLife.add(life.halfNetEpochs);
    }
    rows.push_back({scheme == BroadcastScheme::kDfo ? 0.0 : 1.0,
                    firstDeath.mean(), halfLife.mean(),
                    halfLife.min()});
  }
  // Lifetime ratio ICFF/DFO on the half-net metric.
  if (rows.size() == 2 && rows[0][2] > 0)
    for (auto& row : rows) row.push_back(row[2] / rows[0][2]);
  bench::emitBench("tbl_lifetime", "T11 — network lifetime (0 = DFO, 1 = Algorithm 2)",
            {"scheme", "first death", "epochs to half net", "min",
             "vs DFO"},
            rows, cfg, 1);
  return 0;
}
