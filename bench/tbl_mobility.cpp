// T5 — mobility campaigns: repair-policy x churn-rate grid under a
// random-waypoint walk, with CFF/iCFF broadcasts in flight during every
// reconfiguration (DESIGN.md §15).
//
// Each cell runs one long campaign (default 1e5 rounds; the positional
// argument overrides the round count) and reports the degraded-coverage
// split plus the maintenance bill. The acceptance gate of the mobility
// work is read directly off this table: every policy must stay
// validator-clean at >= 99% settled coverage, and the incremental
// policy's total maintenance cost must be strictly below the rebuild
// baseline's at every churn rate. The binary exits non-zero when a gate
// fails, and the whole grid is bit-identical at every -j value.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "mobility/campaign.hpp"

namespace {

struct Cell {
  dsn::mobility::RepairPolicy policy;
  double churn;
};

dsn::mobility::CampaignResult runCell(const Cell& cell, dsn::Round rounds,
                                      std::uint64_t seed) {
  using namespace dsn;
  using namespace dsn::mobility;

  NetworkConfig nc;
  nc.field = Field::squareUnits(4);
  nc.nodeCount = 120;
  nc.seed = seed;
  SensorNetwork net(nc);

  WaypointConfig wc;
  wc.field = nc.field;
  wc.speed = 20.0;
  wc.period = 32;
  wc.seed = seed ^ 0x30B11E;
  RandomWaypointModel model(wc);
  for (NodeId v : net.clusterNet().netNodes()) model.track(v, net.position(v));

  ChurnConfig cc;
  cc.crashRate = 0.4 * cell.churn;
  cc.joinRate = 0.5 * cell.churn;
  cc.leaveRate = 0.1 * cell.churn;
  cc.policy = cell.policy;
  cc.field = nc.field;
  cc.seed = seed ^ 0xC0FFEE;
  ChurnEngine engine(net, &model, cc);

  CampaignConfig cfg;
  cfg.rounds = rounds;
  cfg.wavePeriod = 200;
  cfg.churnPeriod = 8;
  cfg.sourceSeed = seed ^ 0x5EED;
  return runMobilityCampaign(net, engine, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsn;
  using namespace dsn::mobility;

  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  // The positional argument scales the campaign length, not the trial
  // count: each cell is already one deterministic 1e5-round campaign.
  Round rounds = 100'000;
  {
    int ignoredJobs = 0;
    for (int i = 1; i < argc; ++i) {
      if (bench::consumeJobsFlag(argc, argv, i, ignoredJobs)) continue;
      const long r = std::atol(argv[i]);
      if (r > 0) {
        rounds = r;
        break;
      }
    }
  }
  cfg.fieldUnits = 4;
  cfg.trials = 1;
  cfg.nodeCounts = {120};
  bench::printHeader("T5", "mobility campaigns (policy x churn rate)", cfg);
  std::cout << "# " << rounds << " rounds per cell, waypoint speed 20 m "
            << "every 32 rounds, waves every 200 rounds, churn every 8\n"
            << "# policy: 0 = incremental, 1 = rebuild, 2 = adaptive\n";

  const std::vector<Cell> grid = {
      {RepairPolicy::kIncremental, 0.15}, {RepairPolicy::kRebuild, 0.15},
      {RepairPolicy::kAdaptive, 0.15},    {RepairPolicy::kIncremental, 0.45},
      {RepairPolicy::kRebuild, 0.45},     {RepairPolicy::kAdaptive, 0.45},
  };
  std::vector<CampaignResult> results(grid.size());
  exec::forEachIndex(grid.size(), jobs, [&](std::size_t i) {
    // Same seed within a churn rate so policies face the same stream.
    results[i] = runCell(grid[i], rounds,
                         cfg.baseSeed ^ (grid[i].churn > 0.3 ? 0x45 : 0x15));
  });

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const CampaignResult& r = results[i];
    const ChurnTotals& t = r.churn;
    rows.push_back({static_cast<double>(grid[i].policy == RepairPolicy::kIncremental
                                            ? 0
                                            : grid[i].policy == RepairPolicy::kRebuild
                                                  ? 1
                                                  : 2),
                    grid[i].churn, static_cast<double>(r.waves),
                    r.effectiveCoverage(), r.firstWaveCoverage(),
                    static_cast<double>(t.moves),
                    static_cast<double>(t.crashes + t.joins + t.leaves),
                    static_cast<double>(t.repairs),
                    static_cast<double>(t.rebuilds),
                    static_cast<double>(t.incrementalCost + t.rebuildCost),
                    static_cast<double>(t.validationFailures)});
  }
  bench::emitBench(
      "tbl_mobility", "T5 — mobility campaigns (policy x churn rate)",
      {"policy", "churn", "waves", "eff cov", "1st-wave cov", "moves",
       "events", "repairs", "rebuilds", "maint cost", "val fails"},
      rows, cfg, 3);

  // Acceptance gates, enforced so a regression fails loudly.
  bool ok = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const CampaignResult& r = results[i];
    if (!r.validatorClean()) {
      std::printf("[gate] FAIL: cell %zu not validator-clean (%zu failures)\n",
                  i, r.churn.validationFailures);
      ok = false;
    }
    if (r.effectiveCoverage() < 0.99) {
      std::printf("[gate] FAIL: cell %zu coverage %.4f < 0.99\n", i,
                  r.effectiveCoverage());
      ok = false;
    }
  }
  for (std::size_t base = 0; base < grid.size(); base += 3) {
    const auto cost = [&](std::size_t i) {
      return results[i].churn.incrementalCost + results[i].churn.rebuildCost;
    };
    const auto inc = cost(base), reb = cost(base + 1), ada = cost(base + 2);
    std::printf(
        "[gate] churn %.2f maintenance rounds: incremental %lld, rebuild "
        "%lld, adaptive %lld\n",
        grid[base].churn, static_cast<long long>(inc),
        static_cast<long long>(reb), static_cast<long long>(ada));
    if (inc >= reb) {
      std::printf("[gate] FAIL: incremental cost not below rebuild\n");
      ok = false;
    }
  }
  std::printf("[gate] %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
