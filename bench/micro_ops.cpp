// M1 — micro-benchmarks (google-benchmark): wall-clock cost of the core
// operations so regressions in the structural machinery are visible.
#include <benchmark/benchmark.h>

#include "broadcast/runner.hpp"
#include "core/sensor_network.hpp"
#include "exec/lease_pool.hpp"
#include "graph/deploy.hpp"
#include "graph/unit_disk.hpp"
#include "obs/flight.hpp"
#include "radio/channel.hpp"
#include "util/rng.hpp"

namespace dsn {
namespace {

std::vector<Point2D> paperPoints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return deployIncrementalAttach(
      {Field::squareUnits(10), 50.0, n}, rng);
}

void BM_UnitDiskBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = paperPoints(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildUnitDiskGraph(pts, 50.0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnitDiskBuild)->Arg(100)->Arg(500);

void BM_ClusterNetConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = paperPoints(n, 2);
  for (auto _ : state) {
    Graph g = buildUnitDiskGraph(pts, 50.0);
    ClusterNet net(g);
    for (NodeId v = 0; v < pts.size(); ++v) net.moveIn(v);
    benchmark::DoNotOptimize(net.netSize());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ClusterNetConstruction)->Arg(100)->Arg(500);

void BM_MoveOutMoveIn(benchmark::State& state) {
  NetworkConfig cfg;
  cfg.nodeCount = 300;
  cfg.seed = 3;
  SensorNetwork net(cfg);
  Rng rng(4);
  for (auto _ : state) {
    const NodeId anchor = net.randomNode(rng);
    const Point2D p{net.position(anchor).x + rng.uniformReal(-20, 20),
                    net.position(anchor).y + rng.uniformReal(-20, 20)};
    net.removeSensor(net.randomNode(rng));
    net.addSensor(p);
  }
}
BENCHMARK(BM_MoveOutMoveIn)->Iterations(200);

void BM_IcffBroadcast(benchmark::State& state) {
  NetworkConfig cfg;
  cfg.nodeCount = static_cast<std::size_t>(state.range(0));
  cfg.seed = 5;
  SensorNetwork net(cfg);
  Rng rng(6);
  for (auto _ : state) {
    const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                   net.randomNode(rng), 1);
    benchmark::DoNotOptimize(run.delivered);
  }
}
BENCHMARK(BM_IcffBroadcast)->Arg(100)->Arg(500);

void BM_DfoBroadcast(benchmark::State& state) {
  NetworkConfig cfg;
  cfg.nodeCount = static_cast<std::size_t>(state.range(0));
  cfg.seed = 7;
  SensorNetwork net(cfg);
  Rng rng(8);
  for (auto _ : state) {
    const auto run =
        net.broadcast(BroadcastScheme::kDfo, net.randomNode(rng), 1);
    benchmark::DoNotOptimize(run.delivered);
  }
}
BENCHMARK(BM_DfoBroadcast)->Arg(100)->Arg(500);

void BM_AdjacencyIteration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = buildUnitDiskGraph(paperPoints(n, 9), 50.0);
  for (auto _ : state) {
    std::size_t sum = 0;
    for (NodeId v = 0; v < g.size(); ++v)
      for (NodeId u : g.neighbors(v)) sum += u;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * g.edgeCount()));
}
BENCHMARK(BM_AdjacencyIteration)->Arg(100)->Arg(500);

void BM_CsrIteration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = buildUnitDiskGraph(paperPoints(n, 9), 50.0);
  const CsrView& csr = g.csrView();
  for (auto _ : state) {
    std::size_t sum = 0;
    for (NodeId v = 0; v < g.size(); ++v)
      for (NodeId u : csr.neighbors(v)) sum += u;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(csr.arcCount()));
}
BENCHMARK(BM_CsrIteration)->Arg(100)->Arg(500);

// One resolution round where 10% of the nodes transmit and the rest
// listen wide-band — a dense mid-flood round.
std::vector<Action> resolveActions(const Graph& g, std::vector<NodeId>* tx) {
  std::vector<Action> actions(g.size(), Action::sleep());
  for (NodeId v = 0; v < g.size(); ++v) {
    if (v % 10 == 0) {
      Message m;
      m.sender = v;
      actions[v] = Action::transmit(m, 0);
      if (tx) tx->push_back(v);
    } else {
      actions[v] = Action::listen(kAllChannels);
    }
  }
  return actions;
}

// Per-task vs pooled ResolveScratch: the serve engine's reason for
// leasing scratch from an exec::LeasePool instead of letting every job
// construct its own. Each iteration is one "job": an ICFF broadcast
// whose active-set engine uses an externally supplied scratch
// (ProtocolOptions::resolveScratch). The per-task variant pays
// construction plus on-demand table growth inside the run; the pooled
// variant leases a pre-prepared scratch and the run stays
// allocation-free.
void BM_ScratchPerTask(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = 21;
  SensorNetwork net(cfg);
  Rng rng(22);
  for (auto _ : state) {
    ResolveScratch scratch;
    ProtocolOptions opts;
    opts.resolveScratch = &scratch;
    const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                   net.randomNode(rng), 1, opts);
    benchmark::DoNotOptimize(run.delivered);
  }
}
BENCHMARK(BM_ScratchPerTask)->Arg(100)->Arg(500);

void BM_ScratchPooled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = 21;
  SensorNetwork net(cfg);
  Rng rng(22);
  exec::LeasePool<ResolveScratch> pool;
  pool.warmUp(1, [&](ResolveScratch& s) { s.prepare(n, 1); });
  for (auto _ : state) {
    auto lease = pool.acquire();
    ProtocolOptions opts;
    opts.resolveScratch = lease.get();
    const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                   net.randomNode(rng), 1, opts);
    benchmark::DoNotOptimize(run.delivered);
  }
}
BENCHMARK(BM_ScratchPooled)->Arg(100)->Arg(500);

void BM_ResolveFullScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = buildUnitDiskGraph(paperPoints(n, 10), 50.0);
  const auto actions = resolveActions(g, nullptr);
  for (auto _ : state) {
    const ChannelOutcome& out = resolveRound(g, actions, 1);
    benchmark::DoNotOptimize(out.deliveries.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ResolveFullScan)->Arg(100)->Arg(500);

void BM_ResolveTransmitterDriven(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = buildUnitDiskGraph(paperPoints(n, 10), 50.0);
  std::vector<NodeId> transmitters;
  const auto actions = resolveActions(g, &transmitters);
  const CsrView& csr = g.csrView();
  ResolveScratch scratch;
  scratch.prepare(g.size(), 1);
  for (auto _ : state) {
    const ChannelOutcome& out =
        resolveRoundActive(csr, actions, transmitters, 1, scratch);
    benchmark::DoNotOptimize(out.deliveries.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ResolveTransmitterDriven)->Arg(100)->Arg(500);

// Flight-recorder event cost, ns/event: the full record() path with the
// category enabled, the masked path (recorderFor returns nullptr after
// one runtime-mask check), and the unconfigured path (recording off —
// what every instrumented site pays in a normal run).
void BM_FlightRecordEnabled(benchmark::State& state) {
  obs::FlightRecorder recorder;
  obs::FrConfig cfg;
  cfg.capacity = 1 << 16;
  recorder.configure(cfg);
  obs::ScopedRecorderSink sink(recorder);
  obs::FrEvent e;
  e.type = static_cast<std::uint8_t>(obs::FrType::kTransmit);
  std::uint32_t round = 0;
  for (auto _ : state) {
    e.round = round++;
    if (obs::FlightRecorder* fr = obs::recorderFor<obs::kFrCatRadio>())
      fr->record(e);
    benchmark::DoNotOptimize(recorder);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecordEnabled);

void BM_FlightRecordMaskedCategory(benchmark::State& state) {
  obs::FlightRecorder recorder;
  obs::FrConfig cfg;
  cfg.capacity = 1 << 16;
  cfg.categories = obs::kFrCatRun;  // radio masked out at runtime
  recorder.configure(cfg);
  obs::ScopedRecorderSink sink(recorder);
  obs::FrEvent e;
  e.type = static_cast<std::uint8_t>(obs::FrType::kTransmit);
  for (auto _ : state) {
    obs::FlightRecorder* fr = obs::recorderFor<obs::kFrCatRadio>();
    benchmark::DoNotOptimize(fr);
    if (fr) fr->record(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecordMaskedCategory);

void BM_FlightRecordDisabled(benchmark::State& state) {
  obs::FlightRecorder recorder;  // never configured: recording off
  obs::ScopedRecorderSink sink(recorder);
  obs::FrEvent e;
  e.type = static_cast<std::uint8_t>(obs::FrType::kTransmit);
  for (auto _ : state) {
    obs::FlightRecorder* fr = obs::recorderFor<obs::kFrCatRadio>();
    benchmark::DoNotOptimize(fr);
    if (fr) fr->record(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecordDisabled);

}  // namespace
}  // namespace dsn
