// T8 (extension) — the broadcast-storm motivation (paper §1, [16]):
// structure-free probabilistic flooding vs the structured CFF broadcast
// at n = 250, sweeping the flood's contention window.
//
// Expected shape: small windows collide themselves into partial
// coverage; large windows cover but take many more rounds and always
// ~n transmissions — CFF needs only the backbone's ~2·|BT| frames and a
// few TDM windows.
#include "bench/bench_common.hpp"
#include "broadcast/flooding_baseline.hpp"
#include "broadcast/runner.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("T8", "flooding storm vs structured CFF (n = 250)",
                     cfg);

  const std::size_t n = 250;
  std::vector<std::vector<double>> rows;
  for (int window : {1, 2, 4, 8, 16, 32}) {
    const auto table = exec::runTrials(
        cfg, n,
        [window](SensorNetwork& net, Rng& rng, MetricTable& t) {
          FloodingConfig fc;
          fc.contentionWindow = window;
          fc.seed = rng.next();
          const NodeId source = net.randomNode(rng);
          const auto storm =
              runFloodingBroadcast(net.graph(), source, 1, fc);
          t.add("storm_cov", storm.coverage());
          t.add("storm_tx", static_cast<double>(storm.transmissions));
          t.add("storm_done",
                static_cast<double>(storm.completionRounds()));
          const auto cff =
              net.broadcast(BroadcastScheme::kImprovedCff, source, 1);
          t.add("cff_tx", static_cast<double>(cff.transmissions));
          t.add("cff_rounds", static_cast<double>(cff.sim.rounds));
        },
        jobs);
    rows.push_back({static_cast<double>(window), table.mean("storm_cov"),
                    table.mean("storm_tx"), table.mean("storm_done"),
                    table.mean("cff_tx"), table.mean("cff_rounds")});
  }
  bench::emitBench("tbl_storm", "T8 — broadcast storm vs CFF (n = 250)",
            {"window", "storm cov", "storm tx", "storm last-rx",
             "CFF tx", "CFF rounds"},
            rows, cfg, 2);
  return 0;
}
