// T1 — k-channel scaling (Theorem 1(3) / §3.3 "Multi-Channels"):
// broadcast rounds and awake-rounds for k = 1, 2, 4, 8 at n = 300.
//
// Expected shape: both metrics shrink ≈ 1/k (window rounding limits the
// gain once ceil(δ/k) bottoms out at 1).
#include "bench/bench_common.hpp"
#include "broadcast/runner.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  // A denser deployment than the Fig. 8 default: at paper density the
  // TDM windows are so small (delta ~ 2) that ceil(delta/k) bottoms out
  // immediately; a 5x5-unit field with 60 m range gives windows wide
  // enough to show the 1/k shape before saturation.
  cfg.fieldUnits = 5;
  cfg.range = 60.0;
  bench::printHeader("T1", "k-channel scaling of Algorithm 2 (n = 300)",
                     cfg);

  const std::size_t n = 300;
  std::vector<std::vector<double>> rows;
  for (Channel k : {1u, 2u, 4u, 8u}) {
    const auto table = exec::runTrials(
        cfg, n,
        [k](SensorNetwork& net, Rng& rng, MetricTable& t) {
          ProtocolOptions opts;
          opts.channels = k;
          const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                         net.randomNode(rng), 1, opts);
          t.add("rounds", static_cast<double>(run.sim.rounds));
          t.add("max_awake", static_cast<double>(run.maxAwakeRounds));
          t.add("coverage", run.coverage());
        },
        jobs);
    rows.push_back({static_cast<double>(k), table.mean("rounds"),
                    table.mean("max_awake"), table.mean("coverage")});
  }
  // Add the ideal 1/k reference relative to k=1.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].push_back(rows[0][1] / rows[i][0]);
  }
  bench::emitBench("tbl_multichannel", "T1 — multi-channel scaling (Theorem 1(3))",
            {"k", "rounds", "max awake", "coverage", "ideal rounds/k"},
            rows, cfg, 2);
  return 0;
}
