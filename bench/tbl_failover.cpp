// T9 (extension of paper §2) — multi-sink replication: coverage of a
// single cluster-net vs failover across 2 and 3 replicas when the area
// around the primary sink is destroyed.
//
// Expected shape: a single structure loses everything the moment its
// root's neighborhood dies; replicas rooted far apart restore coverage
// at the cost of extra maintained state.
#include "bench/bench_common.hpp"
#include "core/replicated_network.hpp"
#include "graph/deploy.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("T9", "multi-sink failover under sink-area loss",
                     cfg);

  const std::size_t n = 200;
  std::vector<std::vector<double>> rows;
  for (std::size_t replicas : {std::size_t{1}, std::size_t{2},
                               std::size_t{3}}) {
    // Trials are independent; run them through the parallel engine and
    // fold the per-trial slots back in trial order so the Samples (and
    // the telemetry) match a serial run exactly.
    std::vector<double> covSlot(static_cast<std::size_t>(cfg.trials));
    std::vector<double> triedSlot(static_cast<std::size_t>(cfg.trials));
    exec::forEachIndex(
        static_cast<std::size_t>(cfg.trials), jobs,
        [&](std::size_t t) {
      const int trial = static_cast<int>(t);
      Rng rng(cfg.trialSeed(n, trial));
      const auto pts = deployIncrementalAttach(
          {Field::squareUnits(cfg.fieldUnits, cfg.unitMeters), cfg.range,
           n},
          rng);
      ReplicatedConfig rc;
      rc.replicaCount = replicas;
      ReplicatedNetwork net(pts, cfg.range, rc);

      // Destroy the primary sink and its 1-hop neighborhood at round 0.
      const NodeId root0 = net.replica(0).root();
      ProtocolOptions opts;
      opts.deaths.emplace_back(root0, 0);
      for (NodeId u : net.graph().neighbors(root0))
        opts.deaths.emplace_back(u, 0);

      // Source: a node far from the blast (the last replica's root, or
      // any distant node when only one replica exists).
      NodeId source = net.replica(replicas - 1).root();
      if (source == root0) source = net.replica(0).netNodes().back();

      const auto failover = net.broadcastWithFailover(
          BroadcastScheme::kImprovedCff, source, 1, opts, 0.9);
      covSlot[t] = failover.run.coverage();
      triedSlot[t] = static_cast<double>(failover.replicasTried);
    });
    Samples coverage, tried;
    for (int trial = 0; trial < cfg.trials; ++trial) {
      coverage.add(covSlot[static_cast<std::size_t>(trial)]);
      tried.add(triedSlot[static_cast<std::size_t>(trial)]);
    }
    rows.push_back({static_cast<double>(replicas), coverage.mean(),
                    coverage.min(), tried.mean()});
  }
  bench::emitBench("tbl_failover", "T9 — failover coverage after sink-area destruction (n=200)",
            {"replicas", "coverage mean", "coverage min",
             "replicas tried"},
            rows, cfg, 3);
  return 0;
}
