// T9 (extension of paper §2) — multi-sink replication: coverage of a
// single cluster-net vs failover across 2 and 3 replicas when the area
// around the primary sink is destroyed.
//
// Expected shape: a single structure loses everything the moment its
// root's neighborhood dies; replicas rooted far apart restore coverage
// at the cost of extra maintained state.
#include "bench/bench_common.hpp"
#include "core/replicated_network.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto cfg = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("T9", "multi-sink failover under sink-area loss",
                     cfg);

  const std::size_t n = 200;
  std::vector<std::vector<double>> rows;
  for (std::size_t replicas : {std::size_t{1}, std::size_t{2},
                               std::size_t{3}}) {
    // The engine deploys the same incremental-attach point sequence the
    // old hand-rolled loop produced (both derive it from
    // Rng(trialSeed(n, trial))), so rebuilding the replicated structure
    // from initialPoints() keeps the rows bit-identical.
    const auto table = exec::runTrials(
        cfg, n,
        [&cfg, replicas](SensorNetwork& net, Rng&, MetricTable& t) {
          ReplicatedConfig rc;
          rc.replicaCount = replicas;
          ReplicatedNetwork rnet(net.initialPoints(), cfg.range, rc);

          // Destroy the primary sink and its 1-hop neighborhood at
          // round 0.
          const NodeId root0 = rnet.replica(0).root();
          ProtocolOptions opts;
          opts.deaths.emplace_back(root0, 0);
          for (NodeId u : rnet.graph().neighbors(root0))
            opts.deaths.emplace_back(u, 0);

          // Source: a node far from the blast (the last replica's root,
          // or any distant node when only one replica exists).
          NodeId source = rnet.replica(replicas - 1).root();
          if (source == root0) source = rnet.replica(0).netNodes().back();

          const auto failover = rnet.broadcastWithFailover(
              BroadcastScheme::kImprovedCff, source, 1, opts, 0.9);
          t.add("coverage", failover.run.coverage());
          t.add("tried", static_cast<double>(failover.replicasTried));
        },
        jobs);
    rows.push_back({static_cast<double>(replicas),
                    table.mean("coverage"),
                    table.samples("coverage").min(),
                    table.mean("tried")});
  }
  bench::emitBench("tbl_failover", "T9 — failover coverage after sink-area destruction (n=200)",
            {"replicas", "coverage mean", "coverage min",
             "replicas tried"},
            rows, cfg, 3);
  return 0;
}
