// T6 — field-scale sweep (§6: 8x8, 10x10 and 12x12 unit fields): the
// Fig. 8 / Fig. 9 comparison across all three field sizes at n = 300.
//
// Expected shape: the CFF advantage holds at every density; sparser
// fields (12x12) raise heights (more rounds for both) while denser
// fields (8x8) raise degrees/slots.
#include "bench/bench_common.hpp"
#include "broadcast/runner.hpp"

int main(int argc, char** argv) {
  using namespace dsn;
  auto base = bench::defaultConfig(argc, argv);
  const int jobs = bench::jobsArg(argc, argv);
  bench::printHeader("T6", "field scale sweep at n = 300", base);

  const std::size_t n = 300;
  std::vector<std::vector<double>> rows;
  for (int units : {8, 10, 12}) {
    ExperimentConfig cfg = base;
    cfg.fieldUnits = units;
    const auto table = exec::runTrials(
        cfg, n,
        [](SensorNetwork& net, Rng& rng, MetricTable& t) {
          const NodeId source = net.randomNode(rng);
          const auto cff =
              net.broadcast(BroadcastScheme::kImprovedCff, source, 1);
          const auto dfo = net.broadcast(BroadcastScheme::kDfo, source, 1);
          const auto s = net.stats();
          t.add("cff_rounds", static_cast<double>(cff.sim.rounds));
          t.add("dfo_rounds", static_cast<double>(dfo.sim.rounds));
          t.add("cff_awake", static_cast<double>(cff.maxAwakeRounds));
          t.add("dfo_awake", static_cast<double>(dfo.maxAwakeRounds));
          t.add("height", static_cast<double>(s.cnetHeight));
          t.add("D", static_cast<double>(s.degreeG));
        },
        jobs);
    rows.push_back({static_cast<double>(units), table.mean("cff_rounds"),
                    table.mean("dfo_rounds"), table.mean("cff_awake"),
                    table.mean("dfo_awake"), table.mean("height"),
                    table.mean("D")});
  }
  bench::emitBench("tbl_field_scale", "T6 — field scale (units per side, n = 300)",
            {"field", "CFF rounds", "DFO rounds", "CFF awake",
             "DFO awake", "height", "D"},
            rows, base, 1);
  return 0;
}
