// Shared scaffolding for the figure/table reproduction binaries.
//
// Every binary:
//   * sweeps the paper's settings (10x10-unit field of 100 m units,
//     range 50 m, n = 100..500, averaged over seeded trials),
//   * prints a paper-style aligned table to stdout,
//   * writes the same series to results/<name>.csv,
//   * writes a machine-readable results/BENCH_<name>.json record
//     (dsnet-bench-v1: config + columns/rows + exec metadata + telemetry
//     snapshot) that scripts/plot_results.py and perf trackers can
//     ingest,
//   * accepts an optional positional argument overriding the trial
//     count (e.g. `fig08_broadcast_time 20` for tighter averages) and a
//     `-j N` / `--jobs N` flag selecting the worker count for the
//     parallel sweep engine (default: hardware concurrency; results are
//     bit-identical at every N, see src/exec/parallel_sweep.hpp).
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "exec/parallel_sweep.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"

namespace dsn::bench {

/// True when argv[i] is the jobs flag; advances i past its value.
inline bool consumeJobsFlag(int argc, char** argv, int& i, int& jobs) {
  const std::string arg = argv[i];
  if (arg != "-j" && arg != "--jobs") return false;
  if (i + 1 < argc) {
    const int j = std::atoi(argv[++i]);
    if (j > 0) jobs = j;
  }
  return true;
}

/// Worker count from `-j N` / `--jobs N`; 0 (auto) when absent.
inline int jobsArg(int argc, char** argv) {
  int jobs = 0;
  for (int i = 1; i < argc; ++i) consumeJobsFlag(argc, argv, i, jobs);
  return jobs;
}

inline ExperimentConfig defaultConfig(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.trials = 5;
  int ignoredJobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (consumeJobsFlag(argc, argv, i, ignoredJobs)) continue;
    const int t = std::atoi(argv[i]);
    if (t > 0) {
      cfg.trials = t;
      break;
    }
  }
  // Benches measure protocol rounds, not wall-clock, so keeping the
  // telemetry layer on costs them nothing observable and makes every
  // BENCH_*.json carry the sim/cluster/broadcast registry snapshot.
  // (micro_ops does not use defaultConfig and stays uninstrumented.)
  obs::setEnabled(true);
  return cfg;
}

inline std::string csvPath(const std::string& name) {
  return "results/" + name + ".csv";
}

inline std::string benchJsonPath(const std::string& name) {
  return "results/BENCH_" + name + ".json";
}

/// Writes the dsnet-bench-v1 record: sweep configuration, the table as
/// columns/rows, and a snapshot of the global metrics registry and phase
/// timings accumulated while the bench ran.
inline void writeBenchJson(const std::string& name,
                           const std::string& title,
                           const ExperimentConfig& cfg,
                           const std::vector<std::string>& header,
                           const std::vector<std::vector<double>>& rows) {
  namespace fs = std::filesystem;
  const fs::path p = fs::absolute(benchJsonPath(name));
  if (p.has_parent_path()) fs::create_directories(p.parent_path());
  std::ofstream out(p);
  if (!out) {
    std::cerr << "cannot write bench record: " << p.string() << "\n";
    return;
  }
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "dsnet-bench-v1");
  w.kv("bench", name);
  w.kv("title", title);
  w.key("config").beginObject();
  w.kv("field_units", cfg.fieldUnits);
  w.kv("unit_meters", cfg.unitMeters);
  w.kv("range", cfg.range);
  w.kv("trials", cfg.trials);
  w.kv("base_seed", static_cast<std::uint64_t>(cfg.baseSeed));
  w.key("node_counts").beginArray();
  for (const std::size_t n : cfg.nodeCounts)
    w.value(static_cast<std::uint64_t>(n));
  w.endArray();
  w.endObject();
  // How the sweep engine ran this bench: worker count and wall-clock,
  // so two runs of the same bench at different -j values document the
  // parallel speedup directly in their records.
  const exec::SweepStats es = exec::sweepStats();
  w.key("exec").beginObject();
  w.kv("jobs", static_cast<std::uint64_t>(es.lastWorkers));
  w.kv("sweeps", es.sweeps);
  w.kv("tasks", es.tasks);
  w.kv("wall_ms", es.wallMs);
  w.endObject();
  w.key("columns").beginArray();
  for (const auto& h : header) w.value(h);
  w.endArray();
  w.key("rows").beginArray();
  for (const auto& row : rows) {
    w.beginArray();
    for (const double v : row) w.value(v);
    w.endArray();
  }
  w.endArray();
  // Fold flight-recorder accounting (recorded/stored/dropped event
  // counters) into the snapshot when a bench ran with recording on.
  obs::flushRecorderTelemetry();
  w.key("metrics");
  obs::writeRegistryJson(w, obs::globalMetrics());
  w.key("timing");
  obs::writeTimingJson(w, obs::globalTiming());
  w.endObject();
  out << w.str() << "\n";
  std::cout << "[json] " << p.string() << "\n";
}

/// The standard bench epilogue: paper-style table + results/<name>.csv +
/// results/BENCH_<name>.json.
inline void emitBench(const std::string& name, const std::string& title,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<double>>& rows,
                      const ExperimentConfig& cfg, int precision = 1) {
  emitTable(title, header, rows, csvPath(name), precision);
  writeBenchJson(name, title, cfg, header, rows);
}

inline void printHeader(const std::string& id, const std::string& what,
                        const ExperimentConfig& cfg) {
  std::cout << "# " << id << ": " << what << "\n"
            << "# field " << cfg.fieldUnits << "x" << cfg.fieldUnits
            << " units of " << cfg.unitMeters << " m, range " << cfg.range
            << " m, " << cfg.trials << " trials per point\n";
}

}  // namespace dsn::bench
