// Shared scaffolding for the figure/table reproduction binaries.
//
// Every binary:
//   * sweeps the paper's settings (10x10-unit field of 100 m units,
//     range 50 m, n = 100..500, averaged over seeded trials),
//   * prints a paper-style aligned table to stdout,
//   * writes the same series to results/<name>.csv,
//   * accepts an optional first argument overriding the trial count
//     (e.g. `fig08_broadcast_time 20` for tighter averages).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace dsn::bench {

inline ExperimentConfig defaultConfig(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.trials = 5;
  if (argc > 1) {
    const int t = std::atoi(argv[1]);
    if (t > 0) cfg.trials = t;
  }
  return cfg;
}

inline std::string csvPath(const std::string& name) {
  return "results/" + name + ".csv";
}

inline void printHeader(const std::string& id, const std::string& what,
                        const ExperimentConfig& cfg) {
  std::cout << "# " << id << ": " << what << "\n"
            << "# field " << cfg.fieldUnits << "x" << cfg.fieldUnits
            << " units of " << cfg.unitMeters << " m, range " << cfg.range
            << " m, " << cfg.trials << " trials per point\n";
}

}  // namespace dsn::bench
