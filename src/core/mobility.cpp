#include "core/mobility.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dsn {

RandomWaypointMobility::RandomWaypointMobility(Field field, double maxStep,
                                               std::uint64_t seed)
    : field_(field), maxStep_(maxStep), rng_(seed) {
  DSN_REQUIRE(field.width > 0 && field.height > 0,
              "mobility field must have positive area");
  DSN_REQUIRE(maxStep > 0, "mobility step must be positive");
}

Point2D RandomWaypointMobility::drawWaypoint() {
  return Point2D{rng_.uniformReal(0.0, field_.width),
                 rng_.uniformReal(0.0, field_.height)};
}

Point2D RandomWaypointMobility::advance(NodeId v, const Point2D& current) {
  auto it = waypoint_.find(v);
  if (it == waypoint_.end())
    it = waypoint_.emplace(v, drawWaypoint()).first;

  const double dist = distance(current, it->second);
  if (dist <= maxStep_) {
    const Point2D arrived = it->second;
    it->second = drawWaypoint();
    return arrived;
  }
  const double f = maxStep_ / dist;
  return Point2D{current.x + (it->second.x - current.x) * f,
                 current.y + (it->second.y - current.y) * f};
}

void RandomWaypointMobility::forget(NodeId v) { waypoint_.erase(v); }

}  // namespace dsn
