#include "core/battery.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsn {

BatteryManager::BatteryManager(SensorNetwork& net, BatteryConfig config)
    : net_(net), cfg_(config) {
  DSN_REQUIRE(cfg_.capacity > 0, "battery capacity must be positive");
  DSN_REQUIRE(cfg_.withdrawThreshold < cfg_.rejoinThreshold,
              "withdraw threshold must be below the rejoin threshold");
  for (NodeId v : net.clusterNet().netNodes()) {
    charge_[v] = cfg_.capacity;
    resting_[v] = false;
  }
}

void BatteryManager::drainFromRun(const BroadcastRun& run) {
  for (auto& [v, charge] : charge_) {
    if (resting_[v]) continue;
    if (v < run.listenRounds.size()) {
      charge -= cfg_.model.listenCost *
                    static_cast<double>(run.listenRounds[v]) +
                cfg_.model.transmitCost *
                    static_cast<double>(run.transmitRounds[v]);
    }
    charge = std::max(charge, 0.0);
  }
}

void BatteryManager::drain(NodeId v, double amount) {
  const auto it = charge_.find(v);
  DSN_REQUIRE(it != charge_.end(), "drain: unmanaged node");
  DSN_REQUIRE(amount >= 0, "drain amount must be non-negative");
  it->second = std::max(it->second - amount, 0.0);
}

void BatteryManager::adopt(NodeId v) {
  charge_[v] = cfg_.capacity;
  resting_[v] = false;
}

void BatteryManager::forget(NodeId v) {
  charge_.erase(v);
  resting_.erase(v);
}

BatteryTickReport BatteryManager::tick() {
  BatteryTickReport report;

  for (auto& [v, charge] : charge_) {
    if (resting_[v]) {
      charge = std::min(charge + cfg_.rechargePerTick, cfg_.capacity);
    } else {
      charge = std::max(charge - cfg_.idleDrainPerTick, 0.0);
    }
  }

  // Withdraw exhausted active nodes (keep the net non-trivial).
  for (auto& [v, charge] : charge_) {
    if (resting_[v] || charge > cfg_.withdrawThreshold) continue;
    if (!net_.clusterNet().contains(v)) continue;
    if (net_.clusterNet().netSize() <= 3) break;
    net_.withdrawSensor(v);
    resting_[v] = true;
    report.withdrawn.push_back(v);
  }

  // Rejoin recovered resting nodes.
  for (auto& [v, charge] : charge_) {
    if (!resting_[v] || charge < cfg_.rejoinThreshold) continue;
    if (net_.rejoinSensor(v)) {
      resting_[v] = false;
      report.rejoined.push_back(v);
    }
    // else: still unreachable; keep resting and try next tick.
  }

  // Orphan recovery: a withdrawal can disconnect bystanders from the
  // net; they are active (not resting) but outside — pull them back in
  // as soon as they can reach the structure again.
  for (auto& [v, charge] : charge_) {
    if (resting_[v] || net_.clusterNet().contains(v)) continue;
    if (!net_.graph().isAlive(v)) continue;
    if (net_.rejoinSensor(v)) report.orphansRecovered.push_back(v);
  }

  double sum = 0.0;
  report.minCharge = charge_.empty() ? 0.0 : cfg_.capacity;
  for (const auto& [v, charge] : charge_) {
    sum += charge;
    report.minCharge = std::min(report.minCharge, charge);
    if (resting_[v]) ++report.resting;
  }
  report.meanCharge =
      charge_.empty() ? 0.0 : sum / static_cast<double>(charge_.size());
  return report;
}

double BatteryManager::charge(NodeId v) const {
  const auto it = charge_.find(v);
  DSN_REQUIRE(it != charge_.end(), "charge: unmanaged node");
  return it->second;
}

bool BatteryManager::isResting(NodeId v) const {
  const auto it = resting_.find(v);
  DSN_REQUIRE(it != resting_.end(), "isResting: unmanaged node");
  return it->second;
}

}  // namespace dsn
