#include "core/sensor_network.hpp"

#include <cstring>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

std::vector<Point2D> makePoints(const NetworkConfig& cfg) {
  Rng rng(cfg.seed);
  const DeployConfig dc{cfg.field, cfg.range, cfg.nodeCount};
  switch (cfg.deployment) {
    case DeploymentKind::kIncrementalAttach:
      return deployIncrementalAttach(dc, rng);
    case DeploymentKind::kUniform:
      return deployUniform(dc, rng);
    case DeploymentKind::kGrid:
      return deployGrid(dc);
    case DeploymentKind::kLine:
      return deployLine(cfg.nodeCount, cfg.range);
    case DeploymentKind::kStar:
      return deployStar(cfg.nodeCount, cfg.range);
  }
  DSN_CHECK(false, "unknown deployment kind");
  return {};
}

}  // namespace

SensorNetwork::SensorNetwork(const NetworkConfig& config)
    : points_(makePoints(config)),
      range_(config.range),
      index_(config.range),
      autoRepair_(config.autoRepair) {
  buildFromPoints(config.cluster);
}

SensorNetwork::SensorNetwork(std::vector<Point2D> points, double range,
                             ClusterNetConfig clusterConfig)
    : points_(std::move(points)), range_(range), index_(range) {
  buildFromPoints(clusterConfig);
}

void SensorNetwork::buildFromPoints(const ClusterNetConfig& clusterConfig) {
  DSN_REQUIRE(range_ > 0.0, "communication range must be positive");
  DSN_TIMED_PHASE("cnet.build");
  graph_ = std::make_unique<Graph>(buildUnitDiskGraph(points_, range_));
  net_ = std::make_unique<ClusterNet>(*graph_, clusterConfig);
  for (NodeId v = 0; v < points_.size(); ++v) index_.insert(v, points_[v]);

  // Self-construction: move nodes in one by one; a node is insertable
  // once it has a neighbor inside the net. Deployment order works for
  // incremental-attach layouts; for arbitrary layouts keep sweeping until
  // no progress (covers exactly the component of the first node).
  std::vector<NodeId> pending;
  for (NodeId v = 0; v < points_.size(); ++v) pending.push_back(v);
  bool progress = true;
  bool first = true;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<NodeId> still;
    for (NodeId v : pending) {
      bool attachable = first;
      first = false;
      if (!attachable) {
        for (NodeId u : graph_->neighbors(v)) {
          if (net_->contains(u)) {
            attachable = true;
            break;
          }
        }
      }
      if (attachable) {
        net_->moveIn(v);
        progress = true;
      } else {
        still.push_back(v);
      }
    }
    pending.swap(still);
  }
}

NodeId SensorNetwork::addSensor(const Point2D& p, bool* joined) {
  const NodeId v = graph_->addNode();
  for (NodeId u : index_.queryNeighbors(p)) {
    if (graph_->isAlive(u)) graph_->addEdge(v, u);
  }
  index_.insert(v, p);

  bool canJoin = net_->netSize() == 0;
  for (NodeId u : graph_->neighbors(v)) {
    if (net_->contains(u)) {
      canJoin = true;
      break;
    }
  }
  if (canJoin) net_->moveIn(v);
  if (joined) *joined = canJoin;
  return v;
}

bool SensorNetwork::moveSensor(NodeId v, const Point2D& newPosition) {
  DSN_REQUIRE(graph_->isAlive(v), "moveSensor: node not deployed");

  // 1. Leave the structure (if inside); the subtree re-homes through the
  //    regular node-move-out machinery, but the node stays deployed.
  if (net_->contains(v)) net_->withdraw(v);

  // 2. Re-wire the radio neighborhood. The node currently carries no
  //    slots (withdraw cleared them), so edge changes cannot invalidate
  //    anyone's TDM conditions. The index keeps the id and migrates it
  //    between grid cells in place; self-edges are skipped because the
  //    query runs while v still sits at its old position.
  for (NodeId u : std::vector<NodeId>(graph_->neighbors(v)))
    graph_->removeEdge(v, u);
  index_.updatePosition(v, newPosition);
  for (NodeId u : index_.queryNeighbors(newPosition)) {
    if (u != v && graph_->isAlive(u)) graph_->addEdge(v, u);
  }

  // 3. Re-join at the new spot when the net is reachable.
  bool canJoin = net_->netSize() == 0;
  for (NodeId u : graph_->neighbors(v)) {
    if (net_->contains(u)) {
      canJoin = true;
      break;
    }
  }
  if (canJoin) net_->moveIn(v);
  return canJoin;
}

RoundCost SensorNetwork::rebuildStructure() {
  DSN_TIMED_PHASE("cnet.rebuild");
  // Capture group memberships; the fresh structure starts without them.
  std::vector<std::pair<NodeId, GroupId>> memberships;
  for (NodeId v : net_->netNodes()) {
    for (GroupId g : net_->groupsOf(v)) memberships.emplace_back(v, g);
  }

  auto fresh = std::make_unique<ClusterNet>(*graph_, net_->config());
  // Progress-sweep self-construction over the live deployment, exactly
  // like initial construction: a node enters once it can reach the net,
  // sweeping until no progress (covers the component of the first
  // attachable node).
  std::vector<NodeId> pending;
  for (NodeId v : graph_->liveNodes()) pending.push_back(v);
  bool progress = true;
  bool first = true;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<NodeId> still;
    for (NodeId v : pending) {
      bool attachable = first;
      first = false;
      if (!attachable) {
        for (NodeId u : graph_->neighbors(v)) {
          if (fresh->contains(u)) {
            attachable = true;
            break;
          }
        }
      }
      if (attachable) {
        fresh->moveIn(v);
        progress = true;
      } else {
        still.push_back(v);
      }
    }
    pending.swap(still);
  }
  for (const auto& [v, g] : memberships) {
    if (fresh->contains(v)) fresh->joinGroup(v, g);
  }
  net_ = std::move(fresh);
  if (obs::enabled())
    obs::globalMetrics().counter("cluster.churn.rebuilds").increment();
  return net_->costs();
}

MoveOutReport SensorNetwork::removeSensor(NodeId v) {
  DSN_REQUIRE(net_->contains(v), "removeSensor: node not in the net");
  index_.remove(v);
  return net_->moveOut(v);  // also removes v from the graph
}

MoveOutReport SensorNetwork::withdrawSensor(NodeId v) {
  DSN_REQUIRE(net_->contains(v), "withdrawSensor: node not in the net");
  return net_->withdraw(v);
}

void SensorNetwork::crashSensor(NodeId v) {
  DSN_REQUIRE(graph_->isAlive(v), "crashSensor: node not deployed");
  // No move-out protocol: the node just disappears from the radio field.
  // The cluster structure is untouched and now references a dead node.
  if (index_.contains(v)) index_.remove(v);
  graph_->removeNode(v);
  if (obs::enabled()) obs::globalMetrics().counter("core.crashes").increment();
  if (autoRepair_) repairAfterFailures();
}

bool SensorNetwork::rejoinSensor(NodeId v) {
  DSN_REQUIRE(graph_->isAlive(v), "rejoinSensor: node not deployed");
  DSN_REQUIRE(!net_->contains(v), "rejoinSensor: node already in net");
  bool canJoin = net_->netSize() == 0;
  for (NodeId u : graph_->neighbors(v)) {
    if (net_->contains(u)) {
      canJoin = true;
      break;
    }
  }
  if (canJoin) net_->moveIn(v);
  return canJoin;
}

ProtocolOptions SensorNetwork::withPositions(
    const ProtocolOptions& options, bool force) const {
  // Jam zones need positions for the radio model; the sharded scheduler
  // (threads > 0) wants them for its spatial tile partition; the
  // distance-based suppression rival needs them for its protocol logic.
  const bool needsPositions =
      force || !options.jamZones.empty() || options.threads > 0;
  if (!needsPositions || !options.nodePositions.empty()) return options;
  ProtocolOptions filled = options;
  filled.nodePositions.resize(graph_->size());
  for (NodeId v = 0; v < graph_->size(); ++v) {
    if (index_.contains(v)) filled.nodePositions[v] = index_.position(v);
  }
  if (filled.threads > 0 && filled.tileMinEdge <= 0.0)
    filled.tileMinEdge = range_;
  return filled;
}

BroadcastRun SensorNetwork::broadcast(BroadcastScheme scheme, NodeId source,
                                      std::uint64_t payload,
                                      const ProtocolOptions& options) const {
  return runBroadcast(
      scheme, *net_, source, payload,
      withPositions(options, scheme == BroadcastScheme::kDistance));
}

BroadcastRun SensorNetwork::multicast(NodeId source, GroupId group,
                                      std::uint64_t payload,
                                      MulticastMode mode,
                                      const ProtocolOptions& options) const {
  return runMulticast(*net_, source, group, payload, mode,
                      withPositions(options));
}

ReliableBroadcastRun SensorNetwork::reliableBroadcast(
    BroadcastScheme scheme, NodeId source, std::uint64_t payload,
    const ReliableOptions& options) const {
  ReliableOptions filled = options;
  filled.base = withPositions(options.base);
  return runReliableBroadcast(scheme, *net_, source, payload, filled);
}

NodeId SensorNetwork::randomNode(Rng& rng) const {
  const auto nodes = net_->netNodes();
  DSN_REQUIRE(!nodes.empty(), "randomNode: empty network");
  return nodes[rng.pickIndex(nodes)];
}

std::uint64_t deploymentFingerprint(const NetworkConfig& config) {
  DSN_REQUIRE(!config.cluster.score,
              "deploymentFingerprint: score callbacks cannot be "
              "fingerprinted — pass a config without one");
  // SplitMix64 chaining (the ExperimentConfig::trialSeed rule): fold
  // each field's raw bits through the finalizer so every field
  // perturbs every output bit. Doubles go in by bit pattern — configs
  // compare by exact value, not approximate geometry.
  const auto mix = [](std::uint64_t z) {
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  const auto bits = [](double v) {
    std::uint64_t out;
    static_assert(sizeof(out) == sizeof(v));
    std::memcpy(&out, &v, sizeof(out));
    return out;
  };
  std::uint64_t h = mix(0xD5CE7F1A6B0A11ull);
  h = mix(h ^ bits(config.field.width));
  h = mix(h ^ bits(config.field.height));
  h = mix(h ^ bits(config.range));
  h = mix(h ^ static_cast<std::uint64_t>(config.nodeCount));
  h = mix(h ^ config.seed);
  h = mix(h ^ static_cast<std::uint64_t>(config.deployment));
  h = mix(h ^ static_cast<std::uint64_t>(config.cluster.slotPolicy));
  h = mix(h ^ static_cast<std::uint64_t>(config.cluster.attachPreference));
  h = mix(h ^ config.cluster.attachSeed);
  h = mix(h ^ static_cast<std::uint64_t>(config.autoRepair ? 1 : 0));
  return h;
}

}  // namespace dsn
