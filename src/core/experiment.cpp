#include "core/experiment.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsn {

void MetricTable::add(const std::string& name, double value) {
  for (auto& [key, samples] : metrics_) {
    if (key == name) {
      samples.add(value);
      return;
    }
  }
  metrics_.emplace_back(name, Samples{});
  metrics_.back().second.add(value);
}

void MetricTable::merge(const MetricTable& other) {
  for (const auto& [key, samples] : other.metrics_)
    for (const double v : samples.values()) add(key, v);
}

const Samples& MetricTable::samples(const std::string& name) const {
  for (const auto& [key, samples] : metrics_) {
    if (key == name) return samples;
  }
  throw PreconditionError("unknown metric: " + name);
}

double MetricTable::mean(const std::string& name) const {
  return samples(name).mean();
}

double MetricTable::max(const std::string& name) const {
  return samples(name).max();
}

std::vector<std::string> MetricTable::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [key, samples] : metrics_) out.push_back(key);
  return out;
}

MetricTable runTrials(
    const ExperimentConfig& cfg, std::size_t nodeCount,
    const std::function<void(SensorNetwork&, Rng&, MetricTable&)>& probe) {
  DSN_REQUIRE(cfg.trials > 0, "need at least one trial");
  MetricTable table;
  for (int t = 0; t < cfg.trials; ++t) {
    SensorNetwork net(cfg.networkFor(nodeCount, t));
    Rng rng(cfg.trialSeed(nodeCount, t) ^ 0xABCDEF);
    probe(net, rng, table);
  }
  return table;
}

}  // namespace dsn
