// SensorNetwork — the library's top-level facade.
//
// Bundles a deployment (node positions), the flat unit-disk WSN graph,
// and the self-constructing / self-reconfiguring cluster architecture,
// and exposes the paper's operations as a cohesive API:
//
//   SensorNetwork net(NetworkConfig{.nodeCount = 300, .seed = 7});
//   auto run = net.broadcast(BroadcastScheme::kImprovedCff,
//                            net.randomNode(rng), 0xDA7A);
//   net.addSensor({120.0, 480.0});       // node-move-in
//   net.removeSensor(42);                // node-move-out
//
// The facade keeps the unit-disk index in sync so dynamic joins get their
// radio edges automatically.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "broadcast/reliable.hpp"
#include "broadcast/runner.hpp"
#include "cluster/backbone.hpp"
#include "cluster/cnet.hpp"
#include "cluster/recovery.hpp"
#include "cluster/validate.hpp"
#include "graph/deploy.hpp"
#include "graph/unit_disk.hpp"
#include "util/rng.hpp"

namespace dsn {

/// How the initial node positions are produced.
enum class DeploymentKind : std::uint8_t {
  kIncrementalAttach,  ///< default; connected by construction (paper)
  kUniform,            ///< i.i.d. uniform (may be disconnected)
  kGrid,
  kLine,
  kStar,
};

struct NetworkConfig {
  Field field = Field::squareUnits(10);  ///< paper: 10x10 units of 100 m
  double range = 50.0;                   ///< paper: 50 m
  std::size_t nodeCount = 0;
  std::uint64_t seed = 1;
  DeploymentKind deployment = DeploymentKind::kIncrementalAttach;
  ClusterNetConfig cluster;
  /// Run repairAfterFailures() automatically after every crashSensor().
  /// Off by default: batching several crashes into one repair pass is
  /// both cheaper and the realistic failure-detection cadence.
  bool autoRepair = false;
};

/// 64-bit fingerprint over every NetworkConfig field that shapes the
/// constructed SensorNetwork: field dimensions, range, node count, seed,
/// deployment kind, cluster policy knobs, and autoRepair. Two configs
/// with equal fingerprints build bit-identical networks (SplitMix64
/// chaining over the raw field bits; collisions are as likely as a
/// 64-bit hash collision). The warm-state serve cache keys on this.
/// The cluster `score` callback cannot be fingerprinted and MUST be
/// empty — callers that set one cannot share warm state.
std::uint64_t deploymentFingerprint(const NetworkConfig& config);

class SensorNetwork {
 public:
  /// Deploys `nodeCount` sensors and self-constructs the cluster net by
  /// moving nodes in one by one (in deployment order). With kUniform the
  /// structure covers the connected component of node 0; remaining nodes
  /// stay deployed but outside the net.
  explicit SensorNetwork(const NetworkConfig& config);

  /// Builds from explicit positions (inserted in vector order where
  /// attachable).
  SensorNetwork(std::vector<Point2D> points, double range,
                ClusterNetConfig clusterConfig = {});

  SensorNetwork(const SensorNetwork&) = delete;
  SensorNetwork& operator=(const SensorNetwork&) = delete;

  // ---- Dynamics (paper Section 5) ----

  /// Deploys a new sensor at `p`: allocates a node, wires its unit-disk
  /// edges, and move-ins it when it can reach the net. Returns the node
  /// id; `joined` (optional out) reports whether it entered the net.
  NodeId addSensor(const Point2D& p, bool* joined = nullptr);

  /// node-move-out + removal from the deployment.
  MoveOutReport removeSensor(NodeId v);

  /// Temporary withdrawal: leaves the structure (subtree re-homes) but
  /// stays deployed — the low-battery scenario of the paper's
  /// introduction. Re-enter with rejoinSensor().
  MoveOutReport withdrawSensor(NodeId v);

  /// Re-joins a deployed, withdrawn sensor where reachable; returns
  /// whether it entered the net.
  bool rejoinSensor(NodeId v);

  // ---- Crash faults & recovery (DESIGN.md §10) ----

  /// Uncooperative death: the sensor vanishes from the deployment and the
  /// graph *without* the move-out protocol running — the cluster
  /// structure keeps referencing it and goes stale (validate() fails)
  /// until repairAfterFailures() runs. With NetworkConfig::autoRepair the
  /// repair pass follows immediately.
  void crashSensor(NodeId v);

  /// True while the structure references crashed (graph-dead) nodes.
  bool hasStaleStructure() const {
    return RecoveryManager(*net_).hasStaleEntries();
  }

  /// Heartbeat-detect + prune + re-attach + slot-repair pass; afterwards
  /// validate() passes again. See RecoveryManager.
  RecoveryReport repairAfterFailures() {
    return RecoveryManager(*net_).repair();
  }

  /// Relocates a deployed sensor: withdraws it from the structure
  /// (its subtree re-homes), rewires its unit-disk edges for the new
  /// position, and re-joins it where possible. Returns whether the node
  /// is inside the net afterwards. This is the paper's "dynamic"
  /// scenario taken literally — a moving node is a move-out followed by
  /// a move-in at the new location.
  bool moveSensor(NodeId v, const Point2D& newPosition);

  /// Discards the cluster structure and re-runs self-construction over
  /// the current deployment (progress-sweep move-in, covering the
  /// component of the first attachable node). Group memberships are
  /// re-applied. Returns the round cost of the rebuild — the number the
  /// adaptive churn policy compares against accumulated incremental
  /// repair cost (Gavalas-style full re-cluster).
  RoundCost rebuildStructure();

  // ---- Communication ----

  BroadcastRun broadcast(BroadcastScheme scheme, NodeId source,
                         std::uint64_t payload,
                         const ProtocolOptions& options = {}) const;

  BroadcastRun multicast(NodeId source, GroupId group,
                         std::uint64_t payload,
                         MulticastMode mode = MulticastMode::kPrunedRelay,
                         const ProtocolOptions& options = {}) const;

  /// Reliable broadcast: the plain wave followed by NACK-driven repair
  /// rounds until every reachable node holds the payload or the retry
  /// budget is spent (DESIGN.md §10). Scheme must be a flooding scheme
  /// (CFF/iCFF), not the token tour.
  ReliableBroadcastRun reliableBroadcast(
      BroadcastScheme scheme, NodeId source, std::uint64_t payload,
      const ReliableOptions& options = {}) const;

  void joinGroup(NodeId v, GroupId g) { net_->joinGroup(v, g); }
  void leaveGroup(NodeId v, GroupId g) { net_->leaveGroup(v, g); }

  // ---- Introspection ----

  const Graph& graph() const { return *graph_; }
  const ClusterNet& clusterNet() const { return *net_; }
  ClusterNet& clusterNet() { return *net_; }
  const std::vector<Point2D>& initialPoints() const { return points_; }
  const Point2D& position(NodeId v) const { return index_.position(v); }
  const UnitDiskIndex& index() const { return index_; }
  double range() const { return range_; }
  std::size_t size() const { return net_->netSize(); }

  BackboneStats stats() const { return computeBackboneStats(*net_); }
  ValidationReport validate() const {
    return ClusterNetValidator::validate(*net_);
  }

  /// Uniformly random node currently in the net.
  NodeId randomNode(Rng& rng) const;

 private:
  std::vector<Point2D> points_;
  double range_;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<ClusterNet> net_;
  UnitDiskIndex index_;
  bool autoRepair_ = false;

  void buildFromPoints(const ClusterNetConfig& clusterConfig);
  /// Copies `options`, filling nodePositions from the deployment when jam
  /// zones are present (or `force` — used for the distance-based arena
  /// rival) but positions were not supplied.
  ProtocolOptions withPositions(const ProtocolOptions& options,
                                bool force = false) const;
};

}  // namespace dsn
