// Result reporting: paper-style console tables + CSV artifacts.
#pragma once

#include <string>
#include <vector>

#include "util/table.hpp"

namespace dsn {

/// Writes `rows` (with `header`) to a CSV file at `path`, creating parent
/// directories as needed. Returns the absolute path written.
std::string writeCsv(const std::string& path,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows);

/// Prints a table to stdout and, when `csvPath` is non-empty, also writes
/// the numeric rows as CSV.
void emitTable(const std::string& title,
               const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows,
               const std::string& csvPath = "", int precision = 1);

}  // namespace dsn
