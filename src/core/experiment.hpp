// Experiment harness: multi-trial averaging over seeded deployments.
//
// Every figure/table in the paper is an average over random WSNs of a
// given size; this harness fixes the seeding discipline (base seed +
// trial index) so each bench row is exactly reproducible.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/sensor_network.hpp"
#include "util/stats.hpp"

namespace dsn {

/// One experiment's sweep settings (paper Section 6 defaults).
struct ExperimentConfig {
  std::vector<std::size_t> nodeCounts{100, 200, 300, 400, 500};
  int fieldUnits = 10;          ///< 10x10 units
  double unitMeters = 100.0;
  double range = 50.0;
  int trials = 5;
  std::uint64_t baseSeed = 0xD5AE;
  ClusterNetConfig cluster;

  NetworkConfig networkFor(std::size_t n, int trial) const {
    NetworkConfig nc;
    nc.field = Field::squareUnits(fieldUnits, unitMeters);
    nc.range = range;
    nc.nodeCount = n;
    nc.seed = trialSeed(n, trial);
    nc.cluster = cluster;
    return nc;
  }

  std::uint64_t trialSeed(std::size_t n, int trial) const {
    // Distinct streams per (n, trial) pair; stable across runs.
    return baseSeed ^ (static_cast<std::uint64_t>(n) << 20) ^
           (static_cast<std::uint64_t>(trial) *
            std::uint64_t{0x9E3779B97F4A7C15ull});
  }
};

/// Aggregated metric values keyed by name; each key holds the per-trial
/// samples so benches can report mean and spread.
class MetricTable {
 public:
  void add(const std::string& name, double value);
  const Samples& samples(const std::string& name) const;
  double mean(const std::string& name) const;
  double max(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, Samples>> metrics_;
};

/// Builds a network per trial and feeds it to `probe`, which records
/// whatever metrics it wants into the table.
MetricTable runTrials(
    const ExperimentConfig& cfg, std::size_t nodeCount,
    const std::function<void(SensorNetwork&, Rng&, MetricTable&)>& probe);

}  // namespace dsn
