// Experiment harness: multi-trial averaging over seeded deployments.
//
// Every figure/table in the paper is an average over random WSNs of a
// given size; this harness fixes the seeding discipline (base seed +
// trial index) so each bench row is exactly reproducible.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/sensor_network.hpp"
#include "util/stats.hpp"

namespace dsn {

/// One experiment's sweep settings (paper Section 6 defaults).
struct ExperimentConfig {
  std::vector<std::size_t> nodeCounts{100, 200, 300, 400, 500};
  int fieldUnits = 10;          ///< 10x10 units
  double unitMeters = 100.0;
  double range = 50.0;
  int trials = 5;
  std::uint64_t baseSeed = 0xD5AE;
  ClusterNetConfig cluster;

  NetworkConfig networkFor(std::size_t n, int trial) const {
    NetworkConfig nc;
    nc.field = Field::squareUnits(fieldUnits, unitMeters);
    nc.range = range;
    nc.nodeCount = n;
    nc.seed = trialSeed(n, trial);
    nc.cluster = cluster;
    return nc;
  }

  /// SplitMix64 finalizer: every input bit avalanches into every output
  /// bit. The building block of the stream-derivation rule below.
  static std::uint64_t mix64(std::uint64_t z) {
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Stream-derivation rule: one finalizer step per coordinate,
  ///
  ///   s0 = mix64(baseSeed)
  ///   s1 = mix64(s0 ^ n)
  ///   seed(n, trial) = mix64(s1 ^ trial)
  ///
  /// so every (n, trial) pair names an independent, fully-mixed stream
  /// that is stable across runs, platforms and thread counts. The
  /// previous rule (`baseSeed ^ (n << 20) ^ trial * GAMMA`) ignored the
  /// multiplier at trial 0 and left structured inputs weakly mixed;
  /// chained finalization fixes both (collision regression test in
  /// tests/core/experiment_test.cpp covers the paper's sweep grid).
  std::uint64_t trialSeed(std::size_t n, int trial) const {
    const std::uint64_t s1 =
        mix64(mix64(baseSeed) ^ static_cast<std::uint64_t>(n));
    return mix64(s1 ^ static_cast<std::uint64_t>(trial));
  }
};

/// Aggregated metric values keyed by name; each key holds the per-trial
/// samples so benches can report mean and spread.
class MetricTable {
 public:
  void add(const std::string& name, double value);
  /// Appends every sample of `other` in its (name, insertion) order.
  /// Merging per-trial tables in trial order reproduces exactly the
  /// sample sequences — and therefore the means, bit for bit — that a
  /// serial run recording into one shared table would produce.
  void merge(const MetricTable& other);
  const Samples& samples(const std::string& name) const;
  double mean(const std::string& name) const;
  double max(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, Samples>> metrics_;
};

/// Builds a network per trial and feeds it to `probe`, which records
/// whatever metrics it wants into the table. Serial reference
/// implementation; exec/parallel_sweep.hpp provides the multi-threaded
/// drivers that are bit-identical to this one.
MetricTable runTrials(
    const ExperimentConfig& cfg, std::size_t nodeCount,
    const std::function<void(SensorNetwork&, Rng&, MetricTable&)>& probe);

}  // namespace dsn
