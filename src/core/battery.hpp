// Battery management: the paper's motivating lifecycle, automated.
//
// "A power-trained sensor node withdraws its connection from its network
// when its battery voltage is low and comes back to the network when it
// is recharged." (paper Section 1.)
//
// BatteryManager tracks per-node charge, drains it from the measured
// radio usage of each protocol run (per-node listen/transmit rounds in
// BroadcastRun) plus a per-epoch idle cost, withdraws nodes whose charge
// falls under the threshold, recharges them while they rest, and
// re-joins them once recovered. One `tick()` per epoch.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/sensor_network.hpp"
#include "radio/energy.hpp"

namespace dsn {

struct BatteryConfig {
  double capacity = 100.0;
  /// Withdraw when charge falls to/below this level.
  double withdrawThreshold = 15.0;
  /// Rejoin when a resting node recovers to/above this level.
  double rejoinThreshold = 80.0;
  /// Charge gained per tick while resting.
  double rechargePerTick = 25.0;
  /// Charge lost per tick just for being deployed and in the net.
  double idleDrainPerTick = 0.2;
  /// Radio energy model (per-round costs).
  EnergyModel model;
};

struct BatteryTickReport {
  std::vector<NodeId> withdrawn;
  std::vector<NodeId> rejoined;
  /// Nodes that were orphaned by someone else's withdrawal and were
  /// brought back into the net this tick.
  std::vector<NodeId> orphansRecovered;
  std::size_t resting = 0;
  double minCharge = 0.0;
  double meanCharge = 0.0;
};

class BatteryManager {
 public:
  /// Registers every node currently in the net at full capacity. The
  /// network must outlive the manager.
  BatteryManager(SensorNetwork& net, BatteryConfig config = {});

  /// Drains charge according to a run's measured per-node radio usage.
  void drainFromRun(const BroadcastRun& run);

  /// Manual drain (e.g. sensing or CPU load outside the radio model).
  void drain(NodeId v, double amount);

  /// Registers a newly deployed node at full charge.
  void adopt(NodeId v);
  /// Drops a node that left the deployment for good.
  void forget(NodeId v);

  /// One epoch: idle drain for active nodes, recharge for resting ones,
  /// withdraw the exhausted, rejoin the recovered.
  BatteryTickReport tick();

  double charge(NodeId v) const;
  bool isResting(NodeId v) const;
  std::size_t managedCount() const { return charge_.size(); }

 private:
  SensorNetwork& net_;
  BatteryConfig cfg_;
  std::unordered_map<NodeId, double> charge_;
  std::unordered_map<NodeId, bool> resting_;
};

}  // namespace dsn
