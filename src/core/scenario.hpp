// Scenario engine: scripted network workloads.
//
// A scenario is a list of timed events — joins, departures, moves, group
// changes, broadcasts, multicasts, gather waves, compactions — executed
// against one SensorNetwork with continuous validation. The text format
// (one event per line) drives the `wsn_sim` command-line tool and the
// scenario regression tests:
//
//   # comments and blank lines are ignored
//   join 120.5 480.0            # deploy + move-in at (x, y)
//   leave 42                    # node-move-out
//   move 17 300 250             # relocate node 17
//   group 17 3                  # node 17 joins multicast group 3
//   ungroup 17 3
//   broadcast 0 icff            # source 0; schemes: dfo | cff | icff |
//                               #   flood | gossip | agossip | counter |
//                               #   distance | rlnc (DESIGN.md §16)
//   broadcast random dfo        # uniformly random source
//   arena 0                     # race every scheme from one source
//   arena random
//   rbroadcast 0 icff 8         # reliable broadcast (budget optional;
//                               #   slotted schemes only: cff | icff)
//   multicast 0 3 pruned        # source, group, pruned | flood
//   gather                      # convergecast wave (value = node id)
//   compact                     # slot compaction sweep
//   validate                    # explicit invariant check
//   crash 42                    # uncooperative death (structure stale)
//   crash 42 7                  # radio death at round 7 of later runs
//   faults drop 0.1             # i.i.d. transmission loss
//   faults burst 0.05 0.5 0.9   # Gilbert-Elliott (+ optional dropGood)
//   faults jam 500 500 120      # jam disk (+ optional from to rounds)
//   faults none                 # clear all fault regimes
//   repair                      # heartbeat + prune + re-attach pass
//   waypoint 5 25               # 5 random-waypoint ticks, 25 units/tick
//   churn 2.5                   # one tick of ~2.5 crash/join/leave events
//   churn 2.5 10                # ten such ticks (repaired per tick)
//
// While crashed nodes leave the structure stale, the implicit per-event
// validation is suspended (an explicit `validate` line still reports the
// violation); a `repair` event restores the invariants.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/sensor_network.hpp"

namespace dsn {

struct ScenarioEvent {
  enum class Kind {
    kJoin,
    kLeave,
    kMove,
    kJoinGroup,
    kLeaveGroup,
    kBroadcast,
    kArena,  ///< one source, every scheme in kAllBroadcastSchemes
    kReliableBroadcast,
    kMulticast,
    kGather,
    kCompact,
    kValidate,
    kCrash,
    kFaults,
    kRepair,
    kWaypoint,
    kChurn,
  };

  /// Which fault regime a kFaults event installs.
  enum class FaultKind { kNone, kDrop, kBurst, kJam };

  Kind kind{};
  NodeId node = kInvalidNode;  ///< kInvalidNode on broadcast = random
  Point2D position{};
  GroupId group = kNoGroup;
  BroadcastScheme scheme = BroadcastScheme::kImprovedCff;
  MulticastMode multicastMode = MulticastMode::kPrunedRelay;
  /// kCrash: 0 = immediate structural crash; > 0 = radio-level death at
  /// this round of every later communication event.
  Round round = 0;
  /// kReliableBroadcast: repair-round budget.
  int repairBudget = 8;
  /// kWaypoint / kChurn: mobility ticks to run.
  int steps = 1;
  /// kWaypoint: per-tick step distance; kChurn: expected events per tick.
  double magnitude = 0.0;
  // kFaults payload:
  FaultKind faultKind = FaultKind::kNone;
  double dropProbability = 0.0;
  BurstLossParams burst;
  JamZone jam;
  int sourceLine = 0;  ///< for error reporting
};

/// Parses the text format. Throws PreconditionError with the offending
/// line number on malformed input.
std::vector<ScenarioEvent> parseScenario(std::istream& in);
std::vector<ScenarioEvent> parseScenario(const std::string& text);

/// Inverse of parseScenario: renders one event as a single scenario
/// line (no trailing newline). Doubles print with %.17g so a
/// format/parse round trip is value-exact; optional tails (rbroadcast
/// budget, crash round, jam interval) are emitted only when they differ
/// from the parse defaults. The shrinker uses this to export minimized
/// fuzz programs as replayable `.wsn` files.
std::string formatScenarioEvent(const ScenarioEvent& event);

/// Renders a whole program, one event per line, each line terminated
/// with '\n'. parseScenario(formatScenario(events)) reproduces `events`
/// (up to sourceLine numbering).
std::string formatScenario(const std::vector<ScenarioEvent>& events);

/// Aggregate outcome of a scenario run.
struct ScenarioOutcome {
  /// One line per executed event (human-readable).
  std::vector<std::string> log;
  std::size_t eventsExecuted = 0;
  std::size_t broadcasts = 0;
  /// kArena events executed (each runs every scheme once).
  std::size_t arenas = 0;
  std::size_t reliableBroadcasts = 0;
  std::size_t multicasts = 0;
  std::size_t gathers = 0;
  std::size_t crashes = 0;
  std::size_t repairs = 0;
  double worstCoverage = 1.0;
  double worstYield = 1.0;
  /// False when any (implicit or explicit) validation failed; the first
  /// failure message is kept.
  bool valid = true;
  std::string firstViolation;
  /// Per-round event streams captured from every simulator run the
  /// scenario executed (broadcasts, multicasts, gathers), concatenated
  /// in execution order. Empty unless
  /// ScenarioOptions::protocol.traceCapacity > 0.
  std::vector<TraceEvent> traceEvents;
  /// Events lost to the per-run trace capacity caps.
  std::size_t traceDropped = 0;
};

struct ScenarioOptions {
  /// Validate invariants after every event (in addition to explicit
  /// `validate` lines).
  bool validateEachStep = true;
  /// Seed for `broadcast random` source draws.
  std::uint64_t seed = 0x5CEA;
  /// Radio options applied to every communication event.
  ProtocolOptions protocol;
  /// When set, overrides the scheme of every kBroadcast event (the
  /// `wsn_sim --protocol` plumbing). Reliable broadcasts keep their
  /// scripted slotted scheme, and arena events still race everyone.
  std::optional<BroadcastScheme> forceScheme;
};

/// True when running `event` can mutate the SensorNetwork itself —
/// joins, departures, moves, group changes, crashes, repairs, mobility
/// and churn ticks, slot compaction. Communication events (broadcast,
/// arena, rbroadcast, multicast, gather), validation, and fault-regime
/// changes only read the structure: faults accumulate into the run's
/// local ProtocolOptions, never into the network. The serve engine uses
/// this split to run read-only jobs concurrently over one shared warm
/// deployment while mutating jobs get a private build.
bool scenarioEventMutatesNetwork(const ScenarioEvent& event);

/// True when any event of `events` mutates the network.
bool scenarioMutatesNetwork(const std::vector<ScenarioEvent>& events);

/// Executes `events` against `net` in order.
ScenarioOutcome runScenario(SensorNetwork& net,
                            const std::vector<ScenarioEvent>& events,
                            const ScenarioOptions& options = {});

}  // namespace dsn
