// Multi-sink replication (paper Section 2): several cluster-nets over
// one deployment, rooted at well-separated sinks, "so that if one
// cluster-net fails others can still be used".
//
// All replicas share the flat unit-disk graph; structural dynamics
// (join/leave) are applied to every replica. A broadcast can be steered
// through any replica, and `broadcastWithFailover` walks the replicas in
// order until one delivers above a threshold — modelling a sink that
// re-issues the message through a surviving structure.
#pragma once

#include <memory>
#include <vector>

#include "broadcast/runner.hpp"
#include "cluster/cnet.hpp"
#include "cluster/validate.hpp"
#include "graph/unit_disk.hpp"
#include "util/geometry.hpp"

namespace dsn {

struct ReplicatedConfig {
  std::size_t replicaCount = 2;
  ClusterNetConfig cluster;
};

/// Outcome of a failover broadcast: the run plus which replica served it.
struct FailoverRun {
  BroadcastRun run;
  std::size_t replicaUsed = 0;
  std::size_t replicasTried = 0;
};

class ReplicatedNetwork {
 public:
  /// Builds `replicaCount` cluster-nets over the unit-disk graph of
  /// `points`. Replica 0 is rooted at node 0; later roots are chosen by
  /// farthest-point spreading, and each replica is constructed in BFS
  /// (gossip) order from its root.
  ReplicatedNetwork(std::vector<Point2D> points, double range,
                    ReplicatedConfig config = {});

  ReplicatedNetwork(const ReplicatedNetwork&) = delete;
  ReplicatedNetwork& operator=(const ReplicatedNetwork&) = delete;

  std::size_t replicaCount() const { return nets_.size(); }
  const ClusterNet& replica(std::size_t i) const { return *nets_.at(i); }
  ClusterNet& replica(std::size_t i) { return *nets_.at(i); }
  const Graph& graph() const { return *graph_; }

  /// Adds a sensor at `p` and joins it into every replica it can reach.
  NodeId addSensor(const Point2D& p);

  /// Withdraws `v` from every replica containing it, then removes it
  /// from the shared graph.
  void removeSensor(NodeId v);

  /// Broadcast via a specific replica.
  BroadcastRun broadcastVia(std::size_t replicaIndex, BroadcastScheme s,
                            NodeId source, std::uint64_t payload,
                            const ProtocolOptions& options = {}) const;

  /// Tries replicas in order (skipping any whose structure no longer
  /// contains the source) until one reaches at least
  /// `coverageThreshold`; returns the successful (or best) run.
  FailoverRun broadcastWithFailover(BroadcastScheme s, NodeId source,
                                    std::uint64_t payload,
                                    const ProtocolOptions& options = {},
                                    double coverageThreshold = 0.999) const;

  /// Validates every replica; returns the first failure (or empty).
  std::string validateAll() const;

 private:
  std::unique_ptr<Graph> graph_;
  UnitDiskIndex index_;
  std::vector<std::unique_ptr<ClusterNet>> nets_;
};

}  // namespace dsn
