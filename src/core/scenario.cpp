#include "core/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "broadcast/convergecast.hpp"
#include "core/mobility.hpp"
#include "obs/flight.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

[[noreturn]] void parseFail(int line, const std::string& what) {
  throw PreconditionError("scenario line " + std::to_string(line) + ": " +
                          what);
}

BroadcastScheme parseScheme(int line, const std::string& word) {
  if (word.empty()) return BroadcastScheme::kImprovedCff;
  BroadcastScheme s{};
  if (parseBroadcastScheme(word, s)) return s;
  parseFail(line, "unknown scheme '" + word +
                      "' (dfo | cff | icff | flood | gossip | agossip | "
                      "counter | distance | rlnc)");
}

MulticastMode parseMode(int line, const std::string& word) {
  if (word.empty() || word == "pruned") return MulticastMode::kPrunedRelay;
  if (word == "flood") return MulticastMode::kFullFlood;
  parseFail(line, "unknown multicast mode '" + word + "'");
}

double parseNumber(int line, const std::string& word, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(word, &used);
    if (used != word.size()) throw std::invalid_argument(word);
    return v;
  } catch (const std::exception&) {
    parseFail(line, std::string("expected ") + what + ", got '" + word +
                        "'");
  }
}

NodeId parseNode(int line, const std::string& word) {
  const double v = parseNumber(line, word, "a node id");
  if (v < 0 || v != static_cast<double>(static_cast<NodeId>(v)))
    parseFail(line, "invalid node id '" + word + "'");
  return static_cast<NodeId>(v);
}

double parseProbability(int line, const std::string& word,
                        const char* what) {
  const double p = parseNumber(line, word, what);
  if (p < 0.0 || p > 1.0)
    parseFail(line, std::string(what) + " must be in [0,1], got '" + word +
                        "'");
  return p;
}

}  // namespace

std::vector<ScenarioEvent> parseScenario(std::istream& in) {
  std::vector<ScenarioEvent> events;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    // Strip comments.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);

    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op)) continue;  // blank line

    ScenarioEvent e;
    e.sourceLine = lineNo;
    std::string a, b, c;

    if (op == "join") {
      e.kind = ScenarioEvent::Kind::kJoin;
      if (!(ls >> a >> b)) parseFail(lineNo, "join needs x y");
      e.position = {parseNumber(lineNo, a, "x"),
                    parseNumber(lineNo, b, "y")};
    } else if (op == "leave") {
      e.kind = ScenarioEvent::Kind::kLeave;
      if (!(ls >> a)) parseFail(lineNo, "leave needs a node id");
      e.node = parseNode(lineNo, a);
    } else if (op == "move") {
      e.kind = ScenarioEvent::Kind::kMove;
      if (!(ls >> a >> b >> c)) parseFail(lineNo, "move needs id x y");
      e.node = parseNode(lineNo, a);
      e.position = {parseNumber(lineNo, b, "x"),
                    parseNumber(lineNo, c, "y")};
    } else if (op == "group" || op == "ungroup") {
      e.kind = op == "group" ? ScenarioEvent::Kind::kJoinGroup
                             : ScenarioEvent::Kind::kLeaveGroup;
      if (!(ls >> a >> b)) parseFail(lineNo, op + " needs id group");
      e.node = parseNode(lineNo, a);
      e.group = static_cast<GroupId>(
          parseNumber(lineNo, b, "a group id"));
    } else if (op == "broadcast") {
      e.kind = ScenarioEvent::Kind::kBroadcast;
      if (!(ls >> a)) parseFail(lineNo, "broadcast needs a source");
      e.node = a == "random" ? kInvalidNode : parseNode(lineNo, a);
      ls >> b;
      e.scheme = parseScheme(lineNo, b);
    } else if (op == "arena") {
      e.kind = ScenarioEvent::Kind::kArena;
      if (!(ls >> a)) parseFail(lineNo, "arena needs a source");
      e.node = a == "random" ? kInvalidNode : parseNode(lineNo, a);
    } else if (op == "multicast") {
      e.kind = ScenarioEvent::Kind::kMulticast;
      if (!(ls >> a >> b)) parseFail(lineNo, "multicast needs source group");
      e.node = parseNode(lineNo, a);
      e.group = static_cast<GroupId>(
          parseNumber(lineNo, b, "a group id"));
      ls >> c;
      e.multicastMode = parseMode(lineNo, c);
    } else if (op == "rbroadcast") {
      e.kind = ScenarioEvent::Kind::kReliableBroadcast;
      if (!(ls >> a)) parseFail(lineNo, "rbroadcast needs a source");
      e.node = a == "random" ? kInvalidNode : parseNode(lineNo, a);
      ls >> b;
      e.scheme = parseScheme(lineNo, b);
      if (!isSlottedScheme(e.scheme))
        parseFail(lineNo, "rbroadcast needs a slotted scheme (cff | icff): "
                          "NACK repair drives the depth-indexed slot "
                          "schedule, which '" + b + "' does not have");
      if (ls >> c) {
        const double budget = parseNumber(lineNo, c, "a repair budget");
        if (budget < 0 || budget != static_cast<double>(
                                        static_cast<int>(budget)))
          parseFail(lineNo, "invalid repair budget '" + c + "'");
        e.repairBudget = static_cast<int>(budget);
      }
    } else if (op == "gather") {
      e.kind = ScenarioEvent::Kind::kGather;
    } else if (op == "compact") {
      e.kind = ScenarioEvent::Kind::kCompact;
    } else if (op == "validate") {
      e.kind = ScenarioEvent::Kind::kValidate;
    } else if (op == "crash") {
      e.kind = ScenarioEvent::Kind::kCrash;
      if (!(ls >> a)) parseFail(lineNo, "crash needs a node id");
      e.node = parseNode(lineNo, a);
      if (ls >> b) {
        const double r = parseNumber(lineNo, b, "a round");
        if (r <= 0 || r != static_cast<double>(static_cast<Round>(r)))
          parseFail(lineNo, "crash round must be a positive integer, got '" +
                                b + "'");
        e.round = static_cast<Round>(r);
      }
    } else if (op == "faults") {
      e.kind = ScenarioEvent::Kind::kFaults;
      if (!(ls >> a)) parseFail(lineNo, "faults needs a regime spec");
      if (a == "none") {
        e.faultKind = ScenarioEvent::FaultKind::kNone;
      } else if (a == "drop") {
        e.faultKind = ScenarioEvent::FaultKind::kDrop;
        if (!(ls >> b)) parseFail(lineNo, "faults drop needs a probability");
        e.dropProbability = parseProbability(lineNo, b, "drop probability");
      } else if (a == "burst") {
        e.faultKind = ScenarioEvent::FaultKind::kBurst;
        std::string w1, w2, w3;
        if (!(ls >> w1 >> w2 >> w3))
          parseFail(lineNo, "faults burst needs pEnter pExit dropBurst");
        e.burst.pEnterBurst = parseProbability(lineNo, w1, "pEnter");
        e.burst.pExitBurst = parseProbability(lineNo, w2, "pExit");
        if (e.burst.pEnterBurst <= 0.0)
          parseFail(lineNo, "pEnter must be positive (use 'faults none' to "
                            "disable)");
        if (e.burst.pExitBurst <= 0.0)
          parseFail(lineNo, "pExit must be positive");
        e.burst.dropBurst = parseProbability(lineNo, w3, "dropBurst");
        if (std::string w4; ls >> w4)
          e.burst.dropGood = parseProbability(lineNo, w4, "dropGood");
      } else if (a == "jam") {
        e.faultKind = ScenarioEvent::FaultKind::kJam;
        std::string w1, w2, w3;
        if (!(ls >> w1 >> w2 >> w3))
          parseFail(lineNo, "faults jam needs x y radius");
        e.jam.center = {parseNumber(lineNo, w1, "x"),
                        parseNumber(lineNo, w2, "y")};
        e.jam.radius = parseNumber(lineNo, w3, "a radius");
        if (e.jam.radius <= 0.0)
          parseFail(lineNo, "jam radius must be positive, got '" + w3 + "'");
        if (std::string w4; ls >> w4) {
          const double from = parseNumber(lineNo, w4, "a start round");
          if (from < 0) parseFail(lineNo, "jam start round must be >= 0");
          e.jam.fromRound = static_cast<Round>(from);
          if (std::string w5; ls >> w5) {
            const double to = parseNumber(lineNo, w5, "an end round");
            if (to <= from)
              parseFail(lineNo, "jam interval must be non-empty");
            e.jam.toRound = static_cast<Round>(to);
          }
        }
      } else {
        parseFail(lineNo, "unknown fault regime '" + a +
                              "' (drop | burst | jam | none)");
      }
    } else if (op == "repair") {
      e.kind = ScenarioEvent::Kind::kRepair;
    } else if (op == "waypoint") {
      e.kind = ScenarioEvent::Kind::kWaypoint;
      if (!(ls >> a >> b)) parseFail(lineNo, "waypoint needs steps maxstep");
      const double steps = parseNumber(lineNo, a, "a tick count");
      if (steps <= 0 ||
          steps != static_cast<double>(static_cast<int>(steps)))
        parseFail(lineNo, "waypoint steps must be a positive integer");
      e.steps = static_cast<int>(steps);
      e.magnitude = parseNumber(lineNo, b, "a step distance");
      if (e.magnitude <= 0.0)
        parseFail(lineNo, "waypoint step distance must be positive");
    } else if (op == "churn") {
      e.kind = ScenarioEvent::Kind::kChurn;
      if (!(ls >> a)) parseFail(lineNo, "churn needs a rate");
      e.magnitude = parseNumber(lineNo, a, "an event rate");
      if (e.magnitude < 0.0) parseFail(lineNo, "churn rate must be >= 0");
      if (ls >> b) {
        const double ticks = parseNumber(lineNo, b, "a tick count");
        if (ticks <= 0 ||
            ticks != static_cast<double>(static_cast<int>(ticks)))
          parseFail(lineNo, "churn ticks must be a positive integer");
        e.steps = static_cast<int>(ticks);
      }
    } else {
      parseFail(lineNo, "unknown event '" + op + "'");
    }

    std::string extra;
    if (ls >> extra)
      parseFail(lineNo, "trailing input '" + extra + "'");
    events.push_back(e);
  }
  return events;
}

std::vector<ScenarioEvent> parseScenario(const std::string& text) {
  std::istringstream in(text);
  return parseScenario(in);
}

namespace {

// %.17g keeps a format/parse round trip value-exact for doubles.
std::string fmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const char* schemeWord(BroadcastScheme s) {
  switch (s) {
    case BroadcastScheme::kDfo: return "dfo";
    case BroadcastScheme::kCff: return "cff";
    case BroadcastScheme::kImprovedCff: return "icff";
    case BroadcastScheme::kFlooding: return "flood";
    case BroadcastScheme::kGossip: return "gossip";
    case BroadcastScheme::kGossipAdaptive: return "agossip";
    case BroadcastScheme::kCounter: return "counter";
    case BroadcastScheme::kDistance: return "distance";
    case BroadcastScheme::kRlnc: return "rlnc";
  }
  return "icff";
}

}  // namespace

std::string formatScenarioEvent(const ScenarioEvent& e) {
  std::ostringstream os;
  switch (e.kind) {
    case ScenarioEvent::Kind::kJoin:
      os << "join " << fmtDouble(e.position.x) << ' '
         << fmtDouble(e.position.y);
      break;
    case ScenarioEvent::Kind::kLeave:
      os << "leave " << e.node;
      break;
    case ScenarioEvent::Kind::kMove:
      os << "move " << e.node << ' ' << fmtDouble(e.position.x) << ' '
         << fmtDouble(e.position.y);
      break;
    case ScenarioEvent::Kind::kJoinGroup:
      os << "group " << e.node << ' ' << e.group;
      break;
    case ScenarioEvent::Kind::kLeaveGroup:
      os << "ungroup " << e.node << ' ' << e.group;
      break;
    case ScenarioEvent::Kind::kBroadcast:
      os << "broadcast ";
      if (e.node == kInvalidNode)
        os << "random";
      else
        os << e.node;
      os << ' ' << schemeWord(e.scheme);
      break;
    case ScenarioEvent::Kind::kArena:
      os << "arena ";
      if (e.node == kInvalidNode)
        os << "random";
      else
        os << e.node;
      break;
    case ScenarioEvent::Kind::kReliableBroadcast:
      os << "rbroadcast ";
      if (e.node == kInvalidNode)
        os << "random";
      else
        os << e.node;
      os << ' ' << schemeWord(e.scheme) << ' ' << e.repairBudget;
      break;
    case ScenarioEvent::Kind::kMulticast:
      os << "multicast " << e.node << ' ' << e.group << ' '
         << (e.multicastMode == MulticastMode::kFullFlood ? "flood"
                                                          : "pruned");
      break;
    case ScenarioEvent::Kind::kGather:
      os << "gather";
      break;
    case ScenarioEvent::Kind::kCompact:
      os << "compact";
      break;
    case ScenarioEvent::Kind::kValidate:
      os << "validate";
      break;
    case ScenarioEvent::Kind::kCrash:
      os << "crash " << e.node;
      if (e.round > 0) os << ' ' << e.round;
      break;
    case ScenarioEvent::Kind::kFaults:
      os << "faults ";
      switch (e.faultKind) {
        case ScenarioEvent::FaultKind::kNone:
          os << "none";
          break;
        case ScenarioEvent::FaultKind::kDrop:
          os << "drop " << fmtDouble(e.dropProbability);
          break;
        case ScenarioEvent::FaultKind::kBurst:
          os << "burst " << fmtDouble(e.burst.pEnterBurst) << ' '
             << fmtDouble(e.burst.pExitBurst) << ' '
             << fmtDouble(e.burst.dropBurst);
          if (e.burst.dropGood != 0.0)
            os << ' ' << fmtDouble(e.burst.dropGood);
          break;
        case ScenarioEvent::FaultKind::kJam:
          os << "jam " << fmtDouble(e.jam.center.x) << ' '
             << fmtDouble(e.jam.center.y) << ' ' << fmtDouble(e.jam.radius);
          if (e.jam.fromRound != 0 ||
              e.jam.toRound != std::numeric_limits<Round>::max()) {
            os << ' ' << e.jam.fromRound;
            if (e.jam.toRound != std::numeric_limits<Round>::max())
              os << ' ' << e.jam.toRound;
          }
          break;
      }
      break;
    case ScenarioEvent::Kind::kRepair:
      os << "repair";
      break;
    case ScenarioEvent::Kind::kWaypoint:
      os << "waypoint " << e.steps << ' ' << fmtDouble(e.magnitude);
      break;
    case ScenarioEvent::Kind::kChurn:
      os << "churn " << fmtDouble(e.magnitude);
      if (e.steps != 1) os << ' ' << e.steps;
      break;
  }
  return os.str();
}

std::string formatScenario(const std::vector<ScenarioEvent>& events) {
  std::string out;
  for (const auto& e : events) {
    out += formatScenarioEvent(e);
    out += '\n';
  }
  return out;
}

bool scenarioEventMutatesNetwork(const ScenarioEvent& event) {
  switch (event.kind) {
    case ScenarioEvent::Kind::kBroadcast:
    case ScenarioEvent::Kind::kArena:
    case ScenarioEvent::Kind::kReliableBroadcast:
    case ScenarioEvent::Kind::kMulticast:
    case ScenarioEvent::Kind::kGather:
    case ScenarioEvent::Kind::kValidate:
    case ScenarioEvent::Kind::kFaults:
      return false;
    case ScenarioEvent::Kind::kJoin:
    case ScenarioEvent::Kind::kLeave:
    case ScenarioEvent::Kind::kMove:
    case ScenarioEvent::Kind::kJoinGroup:
    case ScenarioEvent::Kind::kLeaveGroup:
    case ScenarioEvent::Kind::kCompact:
    case ScenarioEvent::Kind::kCrash:
    case ScenarioEvent::Kind::kRepair:
    case ScenarioEvent::Kind::kWaypoint:
    case ScenarioEvent::Kind::kChurn:
      return true;
  }
  return true;  // unreachable; default to the safe classification
}

bool scenarioMutatesNetwork(const std::vector<ScenarioEvent>& events) {
  for (const ScenarioEvent& e : events)
    if (scenarioEventMutatesNetwork(e)) return true;
  return false;
}

ScenarioOutcome runScenario(SensorNetwork& net,
                            const std::vector<ScenarioEvent>& events,
                            const ScenarioOptions& options) {
  ScenarioOutcome out;
  Rng rng(options.seed);
  // Fault regimes installed by `faults` events (and radio deaths from
  // scheduled `crash` events) accumulate here and apply to every later
  // communication event.
  ProtocolOptions effective = options.protocol;

  auto note = [&out](std::ostringstream& os) {
    out.log.push_back(os.str());
  };
  auto collectTrace = [&out](const Trace& t) {
    if (!t.enabled()) return;
    out.traceEvents.insert(out.traceEvents.end(), t.events().begin(),
                           t.events().end());
    out.traceDropped += t.droppedEvents();
  };
  auto validateNow = [&]() {
    const auto report = net.validate();
    if (!report.ok() && out.valid) {
      out.valid = false;
      out.firstViolation = report.summary();
    }
    return report.ok();
  };

  for (const auto& e : events) {
    std::ostringstream os;
    os << "L" << e.sourceLine << " ";
    switch (e.kind) {
      case ScenarioEvent::Kind::kJoin: {
        bool joined = false;
        const NodeId id = net.addSensor(e.position, &joined);
        os << "join -> node " << id
           << (joined ? " (in net)" : " (out of range)");
        break;
      }
      case ScenarioEvent::Kind::kLeave: {
        DSN_REQUIRE(net.clusterNet().contains(e.node),
                    "scenario: leave of node not in net");
        const auto report = net.removeSensor(e.node);
        os << "leave " << e.node << " -> |T|=" << report.subtreeSize
           << " orphans=" << report.orphaned << " rounds="
           << report.cost.total();
        break;
      }
      case ScenarioEvent::Kind::kMove: {
        const bool inNet = net.moveSensor(e.node, e.position);
        os << "move " << e.node << " -> "
           << (inNet ? "in net" : "out of range");
        break;
      }
      case ScenarioEvent::Kind::kJoinGroup:
        net.joinGroup(e.node, e.group);
        os << "group " << e.node << " += " << e.group;
        break;
      case ScenarioEvent::Kind::kLeaveGroup:
        net.leaveGroup(e.node, e.group);
        os << "group " << e.node << " -= " << e.group;
        break;
      case ScenarioEvent::Kind::kBroadcast: {
        const NodeId source =
            e.node == kInvalidNode ? net.randomNode(rng) : e.node;
        const BroadcastScheme scheme =
            options.forceScheme.value_or(e.scheme);
        const auto run =
            net.broadcast(scheme, source, 0xB0CA57, effective);
        ++out.broadcasts;
        out.worstCoverage = std::min(out.worstCoverage, run.coverage());
        collectTrace(run.trace);
        os << "broadcast " << toString(scheme) << " from " << source
           << " -> coverage " << run.coverage() << " in "
           << run.sim.rounds << " rounds";
        break;
      }
      case ScenarioEvent::Kind::kArena: {
        // Race every scheme from the same source under the same
        // effective fault regime. The comparison is the point, so the
        // outcome folds the BEST coverage achieved (a rival losing
        // nodes is an expected result, not a scenario failure).
        const NodeId source =
            e.node == kInvalidNode ? net.randomNode(rng) : e.node;
        double best = 0.0;
        bool any = false;
        os << "arena from " << source << " ->";
        for (const BroadcastScheme scheme : kAllBroadcastSchemes) {
          const auto run =
              net.broadcast(scheme, source, 0xB0CA57, effective);
          best = std::max(best, run.coverage());
          any = true;
          collectTrace(run.trace);
          os << ' ' << toString(scheme) << ' ' << run.coverage() << '@'
             << run.completionRounds();
        }
        ++out.arenas;
        if (any) out.worstCoverage = std::min(out.worstCoverage, best);
        break;
      }
      case ScenarioEvent::Kind::kMulticast: {
        const auto run = net.multicast(e.node, e.group, 0x0CA57,
                                       e.multicastMode, effective);
        ++out.multicasts;
        out.worstCoverage = std::min(out.worstCoverage, run.coverage());
        collectTrace(run.trace);
        os << "multicast g" << e.group << " from " << e.node
           << " -> coverage " << run.coverage() << " ("
           << run.transmissions << " tx)";
        break;
      }
      case ScenarioEvent::Kind::kGather: {
        std::vector<std::uint64_t> values(net.graph().size(), 0);
        for (NodeId v : net.clusterNet().netNodes()) values[v] = v;
        const auto result =
            runConvergecast(net.clusterNet(), values, effective);
        ++out.gathers;
        out.worstYield = std::min(out.worstYield, result.yield());
        collectTrace(result.trace);
        os << "gather -> yield " << result.yield() << " sum "
           << result.aggregate << " in " << result.sim.rounds
           << " rounds";
        break;
      }
      case ScenarioEvent::Kind::kCompact: {
        const auto rounds = net.clusterNet().compactSlots();
        os << "compact -> " << rounds << " rounds, windows b/l now "
           << net.clusterNet().rootMaxBSlot() << "/"
           << net.clusterNet().rootMaxLSlot();
        break;
      }
      case ScenarioEvent::Kind::kValidate: {
        os << "validate -> " << (validateNow() ? "ok" : "VIOLATION");
        break;
      }
      case ScenarioEvent::Kind::kReliableBroadcast: {
        const NodeId source =
            e.node == kInvalidNode ? net.randomNode(rng) : e.node;
        ReliableOptions ropt;
        ropt.base = effective;
        ropt.maxRepairRounds = e.repairBudget;
        const auto run =
            net.reliableBroadcast(e.scheme, source, 0xB0CA57, ropt);
        ++out.reliableBroadcasts;
        out.worstCoverage = std::min(out.worstCoverage, run.coverage());
        collectTrace(run.wave.trace);
        os << "rbroadcast " << toString(e.scheme) << " from " << source
           << " -> coverage " << run.coverage() << " (wave "
           << run.wave.coverage() << ") in " << run.totalRounds
           << " rounds, " << run.repairRoundsUsed << " repair, "
           << run.retransmissions << " retx";
        break;
      }
      case ScenarioEvent::Kind::kCrash: {
        if (e.round > 0) {
          // Radio-level death: applies inside every later simulator run.
          effective.deaths.emplace_back(e.node, e.round);
          os << "crash " << e.node << " @r" << e.round
             << " (radio deaths now " << effective.deaths.size() << ")";
        } else {
          DSN_REQUIRE(net.graph().isAlive(e.node),
                      "scenario: crash of node not deployed");
          net.crashSensor(e.node);
          if (obs::FlightRecorder* fr =
                  obs::recorderFor<obs::kFrCatFault>()) {
            obs::FrEvent ev;
            ev.node = e.node;
            ev.type = static_cast<std::uint8_t>(obs::FrType::kCrash);
            fr->record(ev);
          }
          ++out.crashes;
          os << "crash " << e.node << " -> structure "
             << (net.hasStaleStructure() ? "stale" : "clean");
        }
        break;
      }
      case ScenarioEvent::Kind::kFaults: {
        switch (e.faultKind) {
          case ScenarioEvent::FaultKind::kNone:
            effective.dropProbability = 0.0;
            effective.burst = BurstLossParams{};
            effective.jamZones.clear();
            effective.nodePositions.clear();
            os << "faults none";
            break;
          case ScenarioEvent::FaultKind::kDrop:
            effective.dropProbability = e.dropProbability;
            os << "faults drop p=" << e.dropProbability;
            break;
          case ScenarioEvent::FaultKind::kBurst:
            effective.burst = e.burst;
            os << "faults burst enter=" << e.burst.pEnterBurst
               << " exit=" << e.burst.pExitBurst;
            break;
          case ScenarioEvent::FaultKind::kJam:
            effective.jamZones.push_back(e.jam);
            os << "faults jam (" << e.jam.center.x << "," << e.jam.center.y
               << ") r=" << e.jam.radius;
            break;
        }
        break;
      }
      case ScenarioEvent::Kind::kRepair: {
        const auto report = net.repairAfterFailures();
        ++out.repairs;
        os << "repair -> pruned " << report.staleRemoved << " reattached "
           << report.reattached << " orphans " << report.orphaned
           << " rounds " << report.cost.total()
           << (report.rootReseeded ? " (root reseeded)" : "");
        break;
      }
      case ScenarioEvent::Kind::kWaypoint: {
        // The walk field is the deployment's bounding box (grown to at
        // least one radio range) — self-contained and deterministic.
        Field f{net.range(), net.range()};
        for (NodeId v : net.graph().liveNodes()) {
          if (!net.index().contains(v)) continue;
          f.width = std::max(f.width, net.position(v).x);
          f.height = std::max(f.height, net.position(v).y);
        }
        RandomWaypointMobility walker(f, e.magnitude, rng.next());
        std::size_t moves = 0;
        for (int s = 0; s < e.steps; ++s) {
          for (NodeId v : net.clusterNet().netNodes()) {
            if (!net.graph().isAlive(v)) continue;
            net.moveSensor(v, walker.advance(v, net.position(v)));
            ++moves;
          }
        }
        os << "waypoint " << e.steps << " ticks -> " << moves << " moves";
        break;
      }
      case ScenarioEvent::Kind::kChurn: {
        Field f{net.range(), net.range()};
        for (NodeId v : net.graph().liveNodes()) {
          if (!net.index().contains(v)) continue;
          f.width = std::max(f.width, net.position(v).x);
          f.height = std::max(f.height, net.position(v).y);
        }
        std::size_t crashes = 0, joins = 0, leaves = 0;
        for (int s = 0; s < e.steps; ++s) {
          const double whole = std::floor(e.magnitude);
          std::size_t k = static_cast<std::size_t>(whole);
          if (rng.chance(e.magnitude - whole)) ++k;
          for (std::size_t i = 0; i < k; ++i) {
            const std::uint64_t pick = rng.uniform(3);
            if (pick == 2) {
              net.addSensor({rng.uniformReal(0.0, f.width),
                             rng.uniformReal(0.0, f.height)});
              ++joins;
              continue;
            }
            if (net.size() <= 2) continue;
            const NodeId v = net.randomNode(rng);
            if (pick == 0) {
              net.crashSensor(v);
              ++crashes;
            } else {
              net.removeSensor(v);
              ++leaves;
            }
          }
          // Crashes are repaired per tick, so the event ends clean and
          // implicit validation stays on.
          if (net.hasStaleStructure()) {
            net.repairAfterFailures();
            ++out.repairs;
          }
        }
        out.crashes += crashes;
        os << "churn " << e.steps << " ticks -> " << crashes << " crashes "
           << joins << " joins " << leaves << " leaves";
        break;
      }
    }
    note(os);
    ++out.eventsExecuted;
    // Implicit validation is suspended while crashes have left the
    // structure stale (every invariant check would fail by design until
    // a `repair` event runs); an explicit `validate` line still reports.
    if (options.validateEachStep &&
        e.kind != ScenarioEvent::Kind::kValidate &&
        !net.hasStaleStructure()) {
      validateNow();
    }
  }
  return out;
}

}  // namespace dsn
