#include "core/scenario.hpp"

#include <sstream>

#include "broadcast/convergecast.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

[[noreturn]] void parseFail(int line, const std::string& what) {
  throw PreconditionError("scenario line " + std::to_string(line) + ": " +
                          what);
}

BroadcastScheme parseScheme(int line, const std::string& word) {
  if (word.empty() || word == "icff") return BroadcastScheme::kImprovedCff;
  if (word == "cff") return BroadcastScheme::kCff;
  if (word == "dfo") return BroadcastScheme::kDfo;
  parseFail(line, "unknown scheme '" + word + "'");
}

MulticastMode parseMode(int line, const std::string& word) {
  if (word.empty() || word == "pruned") return MulticastMode::kPrunedRelay;
  if (word == "flood") return MulticastMode::kFullFlood;
  parseFail(line, "unknown multicast mode '" + word + "'");
}

double parseNumber(int line, const std::string& word, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(word, &used);
    if (used != word.size()) throw std::invalid_argument(word);
    return v;
  } catch (const std::exception&) {
    parseFail(line, std::string("expected ") + what + ", got '" + word +
                        "'");
  }
}

NodeId parseNode(int line, const std::string& word) {
  const double v = parseNumber(line, word, "a node id");
  if (v < 0 || v != static_cast<double>(static_cast<NodeId>(v)))
    parseFail(line, "invalid node id '" + word + "'");
  return static_cast<NodeId>(v);
}

}  // namespace

std::vector<ScenarioEvent> parseScenario(std::istream& in) {
  std::vector<ScenarioEvent> events;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    // Strip comments.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);

    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op)) continue;  // blank line

    ScenarioEvent e;
    e.sourceLine = lineNo;
    std::string a, b, c;

    if (op == "join") {
      e.kind = ScenarioEvent::Kind::kJoin;
      if (!(ls >> a >> b)) parseFail(lineNo, "join needs x y");
      e.position = {parseNumber(lineNo, a, "x"),
                    parseNumber(lineNo, b, "y")};
    } else if (op == "leave") {
      e.kind = ScenarioEvent::Kind::kLeave;
      if (!(ls >> a)) parseFail(lineNo, "leave needs a node id");
      e.node = parseNode(lineNo, a);
    } else if (op == "move") {
      e.kind = ScenarioEvent::Kind::kMove;
      if (!(ls >> a >> b >> c)) parseFail(lineNo, "move needs id x y");
      e.node = parseNode(lineNo, a);
      e.position = {parseNumber(lineNo, b, "x"),
                    parseNumber(lineNo, c, "y")};
    } else if (op == "group" || op == "ungroup") {
      e.kind = op == "group" ? ScenarioEvent::Kind::kJoinGroup
                             : ScenarioEvent::Kind::kLeaveGroup;
      if (!(ls >> a >> b)) parseFail(lineNo, op + " needs id group");
      e.node = parseNode(lineNo, a);
      e.group = static_cast<GroupId>(
          parseNumber(lineNo, b, "a group id"));
    } else if (op == "broadcast") {
      e.kind = ScenarioEvent::Kind::kBroadcast;
      if (!(ls >> a)) parseFail(lineNo, "broadcast needs a source");
      e.node = a == "random" ? kInvalidNode : parseNode(lineNo, a);
      ls >> b;
      e.scheme = parseScheme(lineNo, b);
    } else if (op == "multicast") {
      e.kind = ScenarioEvent::Kind::kMulticast;
      if (!(ls >> a >> b)) parseFail(lineNo, "multicast needs source group");
      e.node = parseNode(lineNo, a);
      e.group = static_cast<GroupId>(
          parseNumber(lineNo, b, "a group id"));
      ls >> c;
      e.multicastMode = parseMode(lineNo, c);
    } else if (op == "gather") {
      e.kind = ScenarioEvent::Kind::kGather;
    } else if (op == "compact") {
      e.kind = ScenarioEvent::Kind::kCompact;
    } else if (op == "validate") {
      e.kind = ScenarioEvent::Kind::kValidate;
    } else {
      parseFail(lineNo, "unknown event '" + op + "'");
    }

    std::string extra;
    if (ls >> extra)
      parseFail(lineNo, "trailing input '" + extra + "'");
    events.push_back(e);
  }
  return events;
}

std::vector<ScenarioEvent> parseScenario(const std::string& text) {
  std::istringstream in(text);
  return parseScenario(in);
}

ScenarioOutcome runScenario(SensorNetwork& net,
                            const std::vector<ScenarioEvent>& events,
                            const ScenarioOptions& options) {
  ScenarioOutcome out;
  Rng rng(options.seed);

  auto note = [&out](std::ostringstream& os) {
    out.log.push_back(os.str());
  };
  auto collectTrace = [&out](const Trace& t) {
    if (!t.enabled()) return;
    out.traceEvents.insert(out.traceEvents.end(), t.events().begin(),
                           t.events().end());
    out.traceDropped += t.droppedEvents();
  };
  auto validateNow = [&]() {
    const auto report = net.validate();
    if (!report.ok() && out.valid) {
      out.valid = false;
      out.firstViolation = report.summary();
    }
    return report.ok();
  };

  for (const auto& e : events) {
    std::ostringstream os;
    os << "L" << e.sourceLine << " ";
    switch (e.kind) {
      case ScenarioEvent::Kind::kJoin: {
        bool joined = false;
        const NodeId id = net.addSensor(e.position, &joined);
        os << "join -> node " << id
           << (joined ? " (in net)" : " (out of range)");
        break;
      }
      case ScenarioEvent::Kind::kLeave: {
        DSN_REQUIRE(net.clusterNet().contains(e.node),
                    "scenario: leave of node not in net");
        const auto report = net.removeSensor(e.node);
        os << "leave " << e.node << " -> |T|=" << report.subtreeSize
           << " orphans=" << report.orphaned << " rounds="
           << report.cost.total();
        break;
      }
      case ScenarioEvent::Kind::kMove: {
        const bool inNet = net.moveSensor(e.node, e.position);
        os << "move " << e.node << " -> "
           << (inNet ? "in net" : "out of range");
        break;
      }
      case ScenarioEvent::Kind::kJoinGroup:
        net.joinGroup(e.node, e.group);
        os << "group " << e.node << " += " << e.group;
        break;
      case ScenarioEvent::Kind::kLeaveGroup:
        net.leaveGroup(e.node, e.group);
        os << "group " << e.node << " -= " << e.group;
        break;
      case ScenarioEvent::Kind::kBroadcast: {
        const NodeId source =
            e.node == kInvalidNode ? net.randomNode(rng) : e.node;
        const auto run =
            net.broadcast(e.scheme, source, 0xB0CA57, options.protocol);
        ++out.broadcasts;
        out.worstCoverage = std::min(out.worstCoverage, run.coverage());
        collectTrace(run.trace);
        os << "broadcast " << toString(e.scheme) << " from " << source
           << " -> coverage " << run.coverage() << " in "
           << run.sim.rounds << " rounds";
        break;
      }
      case ScenarioEvent::Kind::kMulticast: {
        const auto run = net.multicast(e.node, e.group, 0x0CA57,
                                       e.multicastMode,
                                       options.protocol);
        ++out.multicasts;
        out.worstCoverage = std::min(out.worstCoverage, run.coverage());
        collectTrace(run.trace);
        os << "multicast g" << e.group << " from " << e.node
           << " -> coverage " << run.coverage() << " ("
           << run.transmissions << " tx)";
        break;
      }
      case ScenarioEvent::Kind::kGather: {
        std::vector<std::uint64_t> values(net.graph().size(), 0);
        for (NodeId v : net.clusterNet().netNodes()) values[v] = v;
        const auto result =
            runConvergecast(net.clusterNet(), values, options.protocol);
        ++out.gathers;
        out.worstYield = std::min(out.worstYield, result.yield());
        collectTrace(result.trace);
        os << "gather -> yield " << result.yield() << " sum "
           << result.aggregate << " in " << result.sim.rounds
           << " rounds";
        break;
      }
      case ScenarioEvent::Kind::kCompact: {
        const auto rounds = net.clusterNet().compactSlots();
        os << "compact -> " << rounds << " rounds, windows b/l now "
           << net.clusterNet().rootMaxBSlot() << "/"
           << net.clusterNet().rootMaxLSlot();
        break;
      }
      case ScenarioEvent::Kind::kValidate: {
        os << "validate -> " << (validateNow() ? "ok" : "VIOLATION");
        break;
      }
    }
    note(os);
    ++out.eventsExecuted;
    if (options.validateEachStep &&
        e.kind != ScenarioEvent::Kind::kValidate) {
      validateNow();
    }
  }
  return out;
}

}  // namespace dsn
