#include "core/replicated_network.hpp"

#include "cluster/construction.hpp"
#include "util/error.hpp"

namespace dsn {

ReplicatedNetwork::ReplicatedNetwork(std::vector<Point2D> points,
                                     double range,
                                     ReplicatedConfig config)
    : index_(range) {
  DSN_REQUIRE(!points.empty(), "replicated network needs nodes");
  DSN_REQUIRE(config.replicaCount >= 1, "need at least one replica");

  graph_ = std::make_unique<Graph>(buildUnitDiskGraph(points, range));
  for (NodeId v = 0; v < points.size(); ++v) index_.insert(v, points[v]);

  const auto roots =
      selectSpreadRoots(*graph_, /*seed=*/0, config.replicaCount);
  for (NodeId root : roots) {
    auto net = std::make_unique<ClusterNet>(*graph_, config.cluster);
    net->buildAll(bfsConstructionOrder(*graph_, root));
    nets_.push_back(std::move(net));
  }
}

NodeId ReplicatedNetwork::addSensor(const Point2D& p) {
  const NodeId v = graph_->addNode();
  for (NodeId u : index_.queryNeighbors(p)) {
    if (graph_->isAlive(u)) graph_->addEdge(v, u);
  }
  index_.insert(v, p);
  for (auto& net : nets_) {
    bool attachable = net->netSize() == 0;
    for (NodeId u : graph_->neighbors(v)) {
      if (net->contains(u)) {
        attachable = true;
        break;
      }
    }
    if (attachable) net->moveIn(v);
  }
  return v;
}

void ReplicatedNetwork::removeSensor(NodeId v) {
  DSN_REQUIRE(graph_->isAlive(v), "removeSensor: node not deployed");
  for (auto& net : nets_) {
    if (net->contains(v)) net->withdraw(v);
  }
  index_.remove(v);
  graph_->removeNode(v);
}

BroadcastRun ReplicatedNetwork::broadcastVia(
    std::size_t replicaIndex, BroadcastScheme s, NodeId source,
    std::uint64_t payload, const ProtocolOptions& options) const {
  return runBroadcast(s, *nets_.at(replicaIndex), source, payload,
                      options);
}

FailoverRun ReplicatedNetwork::broadcastWithFailover(
    BroadcastScheme s, NodeId source, std::uint64_t payload,
    const ProtocolOptions& options, double coverageThreshold) const {
  FailoverRun best;
  bool haveAny = false;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (!nets_[i]->contains(source)) continue;
    BroadcastRun run = runBroadcast(s, *nets_[i], source, payload, options);
    const bool better = !haveAny || run.coverage() > best.run.coverage();
    const double coverage = run.coverage();
    if (better) {
      best.run = std::move(run);
      best.replicaUsed = i;
    }
    haveAny = true;
    best.replicasTried = i + 1;
    if (coverage >= coverageThreshold) break;
  }
  DSN_REQUIRE(haveAny,
              "broadcastWithFailover: source is in no replica's net");
  return best;
}

std::string ReplicatedNetwork::validateAll() const {
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const auto report = ClusterNetValidator::validate(*nets_[i]);
    if (!report.ok())
      return "replica " + std::to_string(i) + ": " + report.summary();
  }
  return "";
}

}  // namespace dsn
