// Node mobility models.
//
// The classic random-waypoint walker: every node drifts toward a private
// waypoint at a bounded speed and draws a fresh waypoint on arrival.
// Combined with SensorNetwork::moveSensor this produces exactly the
// dynamics the paper's title promises: nodes wander, radio links appear
// and disappear, and the architecture continuously reconfigures through
// node-move-out / node-move-in.
#pragma once

#include <unordered_map>

#include "graph/deploy.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dsn {

class RandomWaypointMobility {
 public:
  /// `maxStep` = distance a node covers per tick (same unit as field).
  RandomWaypointMobility(Field field, double maxStep,
                         std::uint64_t seed = 0x30B11E);

  /// Next position of node `v` currently at `current`.
  Point2D advance(NodeId v, const Point2D& current);

  /// Drops per-node state (for departed nodes).
  void forget(NodeId v);

 private:
  Field field_;
  double maxStep_;
  Rng rng_;
  std::unordered_map<NodeId, Point2D> waypoint_;

  Point2D drawWaypoint();
};

}  // namespace dsn
