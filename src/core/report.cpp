#include "core/report.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace dsn {

std::string writeCsv(const std::string& path,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows) {
  namespace fs = std::filesystem;
  const fs::path p = fs::absolute(path);
  if (p.has_parent_path()) fs::create_directories(p.parent_path());
  std::ofstream out(p);
  DSN_REQUIRE(out.good(), "cannot open CSV output: " + p.string());
  CsvWriter csv(out, header);
  for (const auto& row : rows) csv.rowValues(row);
  return p.string();
}

void emitTable(const std::string& title,
               const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows,
               const std::string& csvPath, int precision) {
  TablePrinter table(title, header);
  for (const auto& row : rows) table.addRowValues(row, precision);
  table.print(std::cout);
  if (!csvPath.empty()) {
    const std::string written = writeCsv(csvPath, header, rows);
    std::cout << "[csv] " << written << "\n";
  }
}

}  // namespace dsn
