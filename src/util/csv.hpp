// Minimal CSV writer for experiment output. Quotes fields per RFC 4180
// only when needed; numeric columns are written with full precision so
// downstream plotting reproduces the series exactly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dsn {

/// Streams rows of a CSV file. Not thread-safe; one writer per stream.
class CsvWriter {
 public:
  /// Binds to an output stream the caller keeps alive. Writes the header
  /// row immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Appends one row. The number of fields must match the header width.
  void row(const std::vector<std::string>& fields);

  /// Convenience: format doubles/ints into a row.
  void rowValues(const std::vector<double>& values);

  std::size_t width() const { return width_; }
  std::size_t rowsWritten() const { return rows_; }

  /// Escapes a single field per RFC 4180 (quote when it contains comma,
  /// quote, or newline).
  static std::string escape(const std::string& field);

  /// Full-precision, round-trippable formatting of a double (drops the
  /// fraction entirely for integral values).
  static std::string formatNumber(double v);

 private:
  std::ostream& out_;
  std::size_t width_;
  std::size_t rows_ = 0;
  void writeRow(const std::vector<std::string>& fields);
};

}  // namespace dsn
