// Lightweight leveled logger. dsnet libraries are silent by default;
// examples and debugging sessions can raise the level. Not a tracing
// system — per-round radio traces live in radio/trace.hpp.
#pragma once

#include <sstream>
#include <string>

namespace dsn {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Process-wide minimum level. Messages below it are dropped cheaply.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emits one line to stderr with a level prefix.
void logMessage(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace dsn

#define DSN_LOG(level)                          \
  if (::dsn::logLevel() < (level)) {            \
  } else                                        \
    ::dsn::detail::LogLine(level)

#define DSN_LOG_ERROR DSN_LOG(::dsn::LogLevel::kError)
#define DSN_LOG_INFO DSN_LOG(::dsn::LogLevel::kInfo)
#define DSN_LOG_WARN DSN_LOG(::dsn::LogLevel::kWarn)
#define DSN_LOG_DEBUG DSN_LOG(::dsn::LogLevel::kDebug)
