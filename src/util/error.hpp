// Error handling helpers.
//
// The libraries use exceptions only for contract violations and impossible
// states (programming errors or corrupted structures), never for ordinary
// control flow. `DSN_REQUIRE` documents preconditions on public entry
// points; `DSN_CHECK` asserts internal invariants that tests rely on.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dsn {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant is found broken; indicates a bug in
/// dsnet itself (or deliberate corruption in a test).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throwPrecondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throwInvariant(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace dsn

/// Validate a public-API precondition; throws dsn::PreconditionError.
#define DSN_REQUIRE(expr, msg)                                          \
  do {                                                                  \
    if (!(expr))                                                        \
      ::dsn::detail::throwPrecondition(#expr, __FILE__, __LINE__, msg); \
  } while (false)

/// Validate an internal invariant; throws dsn::InvariantError.
#define DSN_CHECK(expr, msg)                                         \
  do {                                                               \
    if (!(expr))                                                     \
      ::dsn::detail::throwInvariant(#expr, __FILE__, __LINE__, msg); \
  } while (false)
