// Core identifier and unit types shared across the dsnet libraries.
//
// Every quantity in the round-based radio model gets a distinct vocabulary
// type so that a time-slot cannot be silently passed where a round or a
// node id is expected.
#pragma once

#include <cstdint>
#include <limits>

namespace dsn {

/// Identifier of a sensor node. Node ids are dense indices `0..n-1` inside
/// a single network instance; `kInvalidNode` marks "no node".
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// One synchronous communication round (paper Section 3.1). Rounds start
/// at 0 when a protocol run begins.
using Round = std::int64_t;

/// A TDM transmission time-slot, numbered from 1 (paper Section 3.3).
/// 0 means "unassigned".
using TimeSlot = std::uint32_t;
inline constexpr TimeSlot kNoSlot = 0;

/// Multicast group identifier (paper Section 3.4).
using GroupId = std::uint32_t;

/// Radio channel index, `0..k-1` when k channels are available.
using Channel = std::uint32_t;

/// Depth of a node in CNet(G); the root has depth 0.
using Depth = std::int32_t;
inline constexpr Depth kNoDepth = -1;

}  // namespace dsn
