#include "util/csv.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace dsn {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), width_(header.size()) {
  DSN_REQUIRE(width_ > 0, "CSV header must have at least one column");
  writeRow(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  DSN_REQUIRE(fields.size() == width_, "CSV row width mismatch");
  writeRow(fields);
  ++rows_;
}

void CsvWriter::rowValues(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(formatNumber(v));
  row(fields);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needsQuote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::formatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void CsvWriter::writeRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace dsn
