// Small statistics toolkit used by the experiment harness and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace dsn {

/// Online accumulator for count/mean/variance/min/max (Welford's method).
/// Numerically stable; O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// A batch of samples with quantile access. Keeps all values (meant for
/// per-trial experiment metrics, not high-volume telemetry).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolation quantile, q in [0,1]. Requires non-empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;  // lazily maintained cache
  mutable bool sortedValid_ = false;
  void ensureSorted() const;
};

/// Least-squares slope of y over x. Used by benches to report growth rates
/// (e.g. backbone size vs n). Requires at least two points.
double linearSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace dsn
