#include "util/rng.hpp"

#include <cmath>

namespace dsn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  DSN_REQUIRE(bound > 0, "uniform bound must be positive");
  // Rejection sampling over the top of the range to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  DSN_REQUIRE(lo <= hi, "uniformInt requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniformReal() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double lo, double hi) {
  DSN_REQUIRE(lo <= hi, "uniformReal requires lo <= hi");
  return lo + (hi - lo) * uniformReal();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniformReal() < p;
}

Rng Rng::split() {
  // Mix two outputs into a fresh seed; child stream is independent for all
  // practical purposes.
  const std::uint64_t a = next();
  const std::uint64_t b = next();
  return Rng(a ^ rotl(b, 29) ^ 0xA3C59AC2B7EA264Dull);
}

}  // namespace dsn
