#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dsn {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : 0.0; }

double RunningStats::max() const { return n_ ? max_ : 0.0; }

void Samples::ensureSorted() const {
  if (sortedValid_ && sorted_.size() == values_.size()) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sortedValid_ = true;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  ensureSorted();
  DSN_REQUIRE(!sorted_.empty(), "min of empty sample set");
  return sorted_.front();
}

double Samples::max() const {
  ensureSorted();
  DSN_REQUIRE(!sorted_.empty(), "max of empty sample set");
  return sorted_.back();
}

double Samples::quantile(double q) const {
  ensureSorted();
  DSN_REQUIRE(!sorted_.empty(), "quantile of empty sample set");
  DSN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double linearSlope(const std::vector<double>& x,
                   const std::vector<double>& y) {
  DSN_REQUIRE(x.size() == y.size(), "linearSlope: size mismatch");
  DSN_REQUIRE(x.size() >= 2, "linearSlope: need at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  DSN_REQUIRE(denom != 0.0, "linearSlope: degenerate x values");
  return (n * sxy - sx * sy) / denom;
}

}  // namespace dsn
