// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in dsnet (deployments, attach tie-breaking,
// failure injection, workload generators) flows through `Rng` so that every
// experiment is exactly reproducible from a 64-bit seed. The generator is
// xoshiro256** seeded via SplitMix64 — fast, high quality, and stable
// across platforms (unlike std::mt19937 + std::uniform_*_distribution,
// whose outputs are not portable between standard libraries).
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace dsn {

/// Deterministic, portable PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Uses rejection sampling, so the result is exactly uniform.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniformReal();

  /// Uniform double in [lo, hi).
  double uniformReal(double lo, double hi);

  /// Bernoulli trial: true with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Fisher–Yates shuffle of an index-addressable container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <typename T>
  std::size_t pickIndex(const std::vector<T>& v) {
    DSN_REQUIRE(!v.empty(), "pickIndex on empty container");
    return static_cast<std::size_t>(uniform(v.size()));
  }

  /// Derive an independent child generator (for per-trial streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace dsn
