#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace dsn {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  DSN_REQUIRE(!header_.empty(), "table must have at least one column");
}

void TablePrinter::addRow(std::vector<std::string> fields) {
  DSN_REQUIRE(fields.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(fields));
}

void TablePrinter::addRowValues(const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(formatValue(v, precision));
  addRow(std::move(fields));
}

std::string TablePrinter::formatValue(double v, int precision) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  }
  return buf;
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "");
      // Right-align all columns for numeric readability.
      const std::size_t pad = widths[c] - row[c].size();
      for (std::size_t i = 0; i < pad; ++i) out << ' ';
      out << row[c];
    }
    out << '\n';
  };

  std::size_t total = header_.size() >= 1 ? 2 * (header_.size() - 1) : 0;
  for (auto w : widths) total += w;

  out << "\n== " << title_ << " ==\n";
  printRow(header_);
  for (std::size_t i = 0; i < total; ++i) out << '-';
  out << '\n';
  for (const auto& row : rows_) printRow(row);
  out.flush();
}

}  // namespace dsn
