// Sorted-vector map for small hot-path key/value sets.
//
// Profiling the cluster maintenance loops showed node-local ordered maps
// (a handful of entries, touched on every group join/leave along a root
// path) paying red-black-tree node allocations and pointer chases for
// what is almost always < 8 entries. A FlatMap keeps the entries sorted
// in one contiguous vector: lookups are a branchless binary search over
// one cache line, iteration is a linear scan in key order (the same
// order std::map iterates, so consumers observe identical sequences).
//
// Only the std::map API subset the codebase uses is provided.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace dsn {

/// Map with std::map iteration order and vector storage. Keys need
/// operator<; mutation invalidates iterators (vector semantics).
template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return data_.begin(); }
  iterator end() { return data_.end(); }
  const_iterator begin() const { return data_.begin(); }
  const_iterator end() const { return data_.end(); }

  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }
  void clear() { data_.clear(); }

  iterator find(const Key& key) {
    const auto it = lowerBound(key);
    return it != data_.end() && it->first == key ? it : data_.end();
  }
  const_iterator find(const Key& key) const {
    const auto it = lowerBound(key);
    return it != data_.end() && it->first == key ? it : data_.end();
  }

  std::size_t count(const Key& key) const {
    return find(key) == end() ? 0 : 1;
  }

  /// Inserts a default-constructed value when the key is absent.
  Value& operator[](const Key& key) {
    auto it = lowerBound(key);
    if (it == data_.end() || it->first != key)
      it = data_.insert(it, value_type{key, Value{}});
    return it->second;
  }

  const Value& at(const Key& key) const {
    const auto it = find(key);
    DSN_REQUIRE(it != end(), "FlatMap::at: key not found");
    return it->second;
  }

  void erase(iterator it) { data_.erase(it); }

  bool operator==(const FlatMap& other) const {
    return data_ == other.data_;
  }
  bool operator!=(const FlatMap& other) const { return !(*this == other); }

 private:
  iterator lowerBound(const Key& key) {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }
  const_iterator lowerBound(const Key& key) const {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }

  std::vector<value_type> data_;
};

}  // namespace dsn
