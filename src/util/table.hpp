// Fixed-width console table printer for paper-style result rows.
//
// Bench binaries use this to print each reproduced figure/table as an
// aligned text table, which is the artifact EXPERIMENTS.md quotes.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dsn {

/// Collects rows, then prints an aligned table with a title and header.
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> header);

  void addRow(std::vector<std::string> fields);
  /// Formats numbers with `precision` decimals (integers without any).
  void addRowValues(const std::vector<double>& values, int precision = 1);

  /// Renders the whole table.
  void print(std::ostream& out) const;

  std::size_t rowCount() const { return rows_.size(); }

  static std::string formatValue(double v, int precision);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsn
