#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace dsn {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }

LogLevel logLevel() { return g_level.load(); }

void logMessage(LogLevel level, const std::string& message) {
  if (logLevel() < level) return;
  std::cerr << "[dsn " << levelName(level) << "] " << message << '\n';
}

}  // namespace dsn
