// Plane geometry for node deployments. Distances are in the same unit as
// the deployment field (meters in the paper's setup).
#pragma once

#include <cmath>

namespace dsn {

/// A point in the deployment plane.
struct Point2D {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2D&, const Point2D&) = default;
};

inline double squaredDistance(const Point2D& a, const Point2D& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point2D& a, const Point2D& b) {
  return std::sqrt(squaredDistance(a, b));
}

/// True when two nodes with communication radius `range` can hear each
/// other (unit-disk rule: distance <= range).
inline bool inRange(const Point2D& a, const Point2D& b, double range) {
  return squaredDistance(a, b) <= range * range;
}

}  // namespace dsn
