#include "exec/parallel_sweep.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "exec/thread_pool.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn::exec {

namespace {

/// Everything one grid cell produces, merged back on the caller thread.
struct TaskSlot {
  obs::MetricsRegistry metrics;
  obs::TimingRegistry timing;
  obs::FlightRecorder recorder;  ///< configured only when tracing is on
  std::exception_ptr error;
};

struct GlobalSweepStats {
  std::mutex mu;
  SweepStats stats;
};

GlobalSweepStats& globalSweepStats() {
  static GlobalSweepStats s;
  return s;
}

void recordSweep(std::uint64_t tasks, std::size_t workers,
                 double wallMs) {
  auto& g = globalSweepStats();
  std::lock_guard<std::mutex> lock(g.mu);
  g.stats.sweeps += 1;
  g.stats.tasks += tasks;
  g.stats.lastWorkers = workers;
  g.stats.wallMs += wallMs;
}

/// Runs fn(i) for every index with task-local telemetry sinks, then
/// merges the sinks back in index order. The shared skeleton under
/// forEachIndex / runTrials / runSweep.
void runIndexed(std::size_t count, std::size_t workers,
                const std::function<void(std::size_t)>& fn) {
  std::vector<std::unique_ptr<TaskSlot>> slots;
  slots.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    slots.push_back(std::make_unique<TaskSlot>());

  // Flight-recorder ownership: when the caller's recorder is configured,
  // every task records into a task-local ring with the same
  // configuration, merged back below in index order — the recorded
  // stream is therefore bit-identical at every worker count (both the
  // serial and pooled paths go through the same sinks and the same
  // ordered merge). Resolved on the caller thread so a caller-side
  // ScopedRecorderSink is honored.
  obs::FlightRecorder& parentRecorder = obs::globalRecorder();
  const bool tracing = parentRecorder.configured();
  const obs::FrConfig traceConfig = parentRecorder.config();

  auto runOne = [&](std::size_t i) {
    TaskSlot& slot = *slots[i];
    obs::ScopedMetricsSink metricsScope(slot.metrics);
    obs::ScopedTimingSink timingScope(slot.timing);
    if (tracing) slot.recorder.configure(traceConfig);
    obs::ScopedRecorderSink recorderScope(slot.recorder);
    try {
      fn(i);
    } catch (...) {
      slot.error = std::current_exception();
    }
  };

  if (workers <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) runOne(i);
  } else {
    ThreadPool pool(std::min(workers, count));
    for (std::size_t i = 0; i < count; ++i)
      pool.submit([&runOne, i] { runOne(i); });
    pool.wait();
  }

  for (const auto& slot : slots)
    if (slot->error) std::rethrow_exception(slot->error);
  for (const auto& slot : slots) {
    obs::globalMetrics().mergeFrom(slot->metrics);
    obs::globalTiming().mergeFrom(slot->timing);
    if (tracing) parentRecorder.mergeFrom(slot->recorder);
  }
}

}  // namespace

const MetricTable& SweepResult::at(std::size_t nodeCount) const {
  for (std::size_t i = 0; i < nodeCounts.size(); ++i)
    if (nodeCounts[i] == nodeCount) return tables[i];
  throw PreconditionError("SweepResult::at: nodeCount not in sweep");
}

void forEachIndex(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t workers = std::min(resolveJobs(jobs), count);
  runIndexed(count, workers, fn);
  const std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start;
  recordSweep(count, workers, elapsed.count());
}

SweepResult runSweep(const ExperimentConfig& cfg, const TrialProbe& probe,
                     int jobs) {
  DSN_REQUIRE(cfg.trials > 0, "need at least one trial");
  DSN_REQUIRE(!cfg.nodeCounts.empty(), "need at least one node count");
  const auto start = std::chrono::steady_clock::now();
  DSN_TIMED_PHASE("exec.sweep");

  const std::size_t trials = static_cast<std::size_t>(cfg.trials);
  const std::size_t count = cfg.nodeCounts.size() * trials;
  const std::size_t workers = std::min(resolveJobs(jobs), count);

  // One MetricTable per grid cell, folded per nodeCount in trial order.
  std::vector<MetricTable> cells(count);
  runIndexed(count, workers, [&](std::size_t i) {
    const std::size_t n = cfg.nodeCounts[i / trials];
    const int trial = static_cast<int>(i % trials);
    SensorNetwork net(cfg.networkFor(n, trial));
    Rng rng(cfg.trialSeed(n, trial) ^ 0xABCDEF);
    probe(net, rng, cells[i]);
  });

  SweepResult result;
  result.nodeCounts = cfg.nodeCounts;
  result.workers = workers;
  result.tables.resize(cfg.nodeCounts.size());
  for (std::size_t ni = 0; ni < cfg.nodeCounts.size(); ++ni)
    for (std::size_t t = 0; t < trials; ++t)
      result.tables[ni].merge(cells[ni * trials + t]);

  const std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start;
  result.wallMs = elapsed.count();
  recordSweep(count, workers, result.wallMs);
  return result;
}

MetricTable runTrials(const ExperimentConfig& cfg, std::size_t nodeCount,
                      const TrialProbe& probe, int jobs) {
  ExperimentConfig one = cfg;
  one.nodeCounts = {nodeCount};
  return std::move(runSweep(one, probe, jobs).tables.front());
}

SweepStats sweepStats() {
  auto& g = globalSweepStats();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.stats;
}

}  // namespace dsn::exec
