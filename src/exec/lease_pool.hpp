// A per-worker object pool with RAII leases.
//
// Parallel loops that need heavy reusable state per task — resolve
// scratch, record buffers, task-local registries — construct it once per
// *worker* instead of once per *task* by leasing from a LeasePool: a
// task acquires an idle object (or default-constructs the first time a
// worker shows up), uses it, and the lease's destructor returns it.
// With W workers the pool stabilizes at W objects no matter how many
// tasks run, and once every object's internal tables have grown to the
// workload's high-water mark the acquire/release cycle does zero heap
// allocations (the freelist is a preallocated vector of raw pointers).
//
// The pool is thread-safe; objects are handed out exclusively, so the
// leased object itself needs no synchronization.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace dsn::exec {

template <typename T>
class LeasePool {
 public:
  LeasePool() = default;
  LeasePool(const LeasePool&) = delete;
  LeasePool& operator=(const LeasePool&) = delete;

  /// Pre-creates `count` objects and applies `init` to each — lets a
  /// serve loop pay worker-state construction before arming an
  /// allocation guard.
  template <typename Init>
  void warmUp(std::size_t count, Init&& init) {
    std::lock_guard<std::mutex> lock(mu_);
    while (owned_.size() < count) {
      owned_.push_back(std::make_unique<T>());
      init(*owned_.back());
      idle_.push_back(owned_.back().get());
    }
    idle_.reserve(owned_.size());
  }

  /// RAII handle: returns the object to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(LeasePool* pool, T* obj) : pool_(pool), obj_(obj) {}
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          obj_(std::exchange(other.obj_, nullptr)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        obj_ = std::exchange(other.obj_, nullptr);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    T& operator*() const { return *obj_; }
    T* operator->() const { return obj_; }
    T* get() const { return obj_; }
    explicit operator bool() const { return obj_ != nullptr; }

   private:
    void release() {
      if (pool_ != nullptr && obj_ != nullptr) pool_->put(obj_);
      pool_ = nullptr;
      obj_ = nullptr;
    }

    LeasePool* pool_ = nullptr;
    T* obj_ = nullptr;
  };

  /// Pops an idle object, or constructs a new one when every object is
  /// out on lease (at most once per concurrent worker).
  Lease acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (idle_.empty()) {
      owned_.push_back(std::make_unique<T>());
      idle_.push_back(owned_.back().get());
      idle_.reserve(owned_.size());
    }
    T* obj = idle_.back();
    idle_.pop_back();
    return Lease(this, obj);
  }

  /// Objects ever constructed (== high-water concurrent leases).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return owned_.size();
  }

 private:
  void put(T* obj) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(obj);  // capacity reserved at growth; no allocation
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<T>> owned_;
  std::vector<T*> idle_;
};

}  // namespace dsn::exec
