// Deterministic parallel experiment engine.
//
// Every paper figure/table averages independent seeded trials, so the
// (nodeCount, trial) grid is embarrassingly parallel — the only hazards
// are the shared MetricTable and the global telemetry registries. The
// drivers here shard the grid across a fixed ThreadPool while keeping
// results *bit-identical* to the serial path regardless of thread count:
//
//   * seeds — each task derives its stream from
//     ExperimentConfig::trialSeed(n, trial) exactly as core::runTrials
//     does; nothing about scheduling feeds back into the RNG;
//   * samples — each task records into a task-local MetricTable; the
//     driver folds the locals back in (n, trial) order, reproducing the
//     serial sample sequences (and hence means) exactly;
//   * telemetry — each task installs task-local obs sinks
//     (ScopedMetricsSink / ScopedTimingSink); the driver merges them
//     into the caller's registries in the same deterministic order.
//
// A probe passed to these drivers runs concurrently on several threads:
// it must not touch shared mutable state beyond its own arguments.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/experiment.hpp"

namespace dsn::exec {

using TrialProbe =
    std::function<void(SensorNetwork&, Rng&, MetricTable&)>;

/// Aggregated sweep output: one MetricTable per entry of
/// cfg.nodeCounts, in the same order.
struct SweepResult {
  std::vector<std::size_t> nodeCounts;
  std::vector<MetricTable> tables;
  std::size_t workers = 1;  ///< resolved worker count actually used
  double wallMs = 0.0;      ///< sweep wall-clock, including the merge

  /// Table for an exact nodeCount; throws PreconditionError if absent.
  const MetricTable& at(std::size_t nodeCount) const;
};

/// Runs probe over the full (cfg.nodeCounts x cfg.trials) grid, sharded
/// across `jobs` workers (0 = hardware concurrency). Deterministic: the
/// result — tables, telemetry registry contents, export JSON — is
/// independent of `jobs`.
SweepResult runSweep(const ExperimentConfig& cfg, const TrialProbe& probe,
                     int jobs = 0);

/// Single-nodeCount variant: the parallel counterpart of
/// dsn::runTrials, sharding only the trial axis.
MetricTable runTrials(const ExperimentConfig& cfg, std::size_t nodeCount,
                      const TrialProbe& probe, int jobs = 0);

/// Low-level deterministic parallel-for: invokes fn(i) for i in
/// [0, count) across `jobs` workers, each call under task-local
/// telemetry sinks that are merged back in index order. fn must write
/// its results into caller-provided per-index slots. If any call
/// throws, the telemetry merge is skipped and the exception of the
/// *lowest* index is rethrown after all tasks finish.
void forEachIndex(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn);

/// Process-wide accounting of sweep activity, exported into
/// dsnet-bench-v1 records so perf trajectories can see how a bench ran.
struct SweepStats {
  std::uint64_t sweeps = 0;       ///< driver invocations
  std::uint64_t tasks = 0;        ///< grid cells executed
  std::size_t lastWorkers = 0;    ///< workers used by the latest sweep
  double wallMs = 0.0;            ///< total sweep wall-clock
};
SweepStats sweepStats();

}  // namespace dsn::exec
