// Fixed-size worker pool for independent experiment tasks.
//
// Deliberately work-stealing-free: experiment trials are coarse-grained
// (one seeded deployment plus a protocol run each), so a single shared
// FIFO queue under one mutex is both simple and contention-free at the
// scale dsnet fans out (tens to hundreds of tasks over <= hardware
// threads). Determinism never depends on the pool — callers assign work
// to slots up front and merge results in slot order.
//
// Exception discipline: a task that throws never takes the pool down.
// The worker catches, stores the first exception, and keeps serving;
// wait() rethrows it once the queue drains. Destruction discards tasks
// that have not started, joins the rest, and swallows any stored error
// (destructors must not throw), so unwinding through a live pool —
// e.g. when a sweep aborts — is safe.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsn::exec {

/// Worker count for `jobs` requests: positive values pass through,
/// zero/negative mean "auto" (hardware concurrency, at least 1).
std::size_t resolveJobs(int jobs);

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Rejects (throws PreconditionError) after the pool
  /// has started shutting down.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception a task raised (if any). The pool stays usable for
  /// further submits afterwards.
  void wait();

  std::size_t threadCount() const { return workers_.size(); }

 private:
  void workerLoop();

  mutable std::mutex mu_;
  std::condition_variable hasWork_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr firstError_;
};

}  // namespace dsn::exec
