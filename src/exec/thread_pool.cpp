#include "exec/thread_pool.hpp"

#include "util/error.hpp"

namespace dsn::exec {

std::size_t resolveJobs(int jobs) {
  if (jobs > 0) return static_cast<std::size_t>(jobs);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  DSN_REQUIRE(threads >= 1, "ThreadPool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    queue_.clear();  // discard tasks that never started
  }
  hasWork_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  DSN_REQUIRE(task != nullptr, "ThreadPool::submit: empty task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    DSN_REQUIRE(!stopping_, "ThreadPool::submit after shutdown began");
    queue_.push_back(std::move(task));
  }
  hasWork_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (firstError_) {
    std::exception_ptr err = firstError_;
    firstError_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      hasWork_.wait(lock,
                    [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!firstError_) firstError_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace dsn::exec
