#include "testkit/episode.hpp"

#include <algorithm>
#include <sstream>

#include "graph/algorithms.hpp"
#include "testkit/reference_radio.hpp"
#include "testkit/seeds.hpp"
#include "testkit/spec_check.hpp"

namespace dsn::testkit {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Episode executor: holds the network under test plus the accumulated
/// fault regime, and applies the oracle battery after every op.
class Episode {
 public:
  Episode(const FuzzProgram& program, const EpisodeOptions& options)
      : program_(program), options_(options) {}

  EpisodeResult run() {
    NetworkConfig cfg;
    cfg.field = Field::squareUnits(program_.fieldUnits);
    cfg.range = program_.range;
    cfg.nodeCount = program_.nodeCount;
    cfg.seed = deploySeed(program_.seed);
    cfg.deployment = DeploymentKind::kIncrementalAttach;
    net_ = std::make_unique<SensorNetwork>(cfg);

    checkStructure();
    for (std::size_t i = 0; ok() && i < program_.ops.size(); ++i) {
      opIndex_ = static_cast<int>(i);
      execute(program_.ops[i]);
    }
    return std::move(result_);
  }

 private:
  const FuzzProgram& program_;
  const EpisodeOptions& options_;
  std::unique_ptr<SensorNetwork> net_;
  EpisodeResult result_;
  int opIndex_ = -1;
  // Accumulated fault regime (0 none, 1 drop, 2 burst, 3 jam).
  int faultRegime_ = 0;
  double dropProbability_ = 0.0;
  BurstLossParams burst_{};
  std::vector<JamZone> jams_;

  bool ok() const { return result_.ok; }
  bool faultsActive() const { return faultRegime_ != 0; }

  void fold(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      result_.digest ^= (x >> (8 * i)) & 0xffu;
      result_.digest *= kFnvPrime;
    }
  }

  void foldRun(const BroadcastRun& r) {
    ++result_.simRuns;
    fold(r.intended);
    fold(r.delivered);
    fold(static_cast<std::uint64_t>(r.lastDeliveryRound + 1));
    fold(r.transmissions);
    fold(r.collisions);
    fold(static_cast<std::uint64_t>(r.sim.rounds));
    fold(r.sim.droppedTransmissions);
    fold(r.sim.jammedLosses);
  }

  void fail(std::string cls, std::string message) {
    if (!result_.ok) return;  // keep the first failure
    result_.ok = false;
    result_.failureClass = std::move(cls);
    result_.message = std::move(message);
    result_.failingOp = opIndex_;
  }

  std::vector<NodeId> aliveNetNodes() const {
    std::vector<NodeId> out;
    for (NodeId v : net_->clusterNet().netNodes())
      if (net_->graph().isAlive(v)) out.push_back(v);
    return out;
  }

  /// Modular pick over the current alive net nodes; kInvalidNode when
  /// the net is empty (the op is then skipped).
  NodeId resolve(std::uint64_t pick) const {
    const auto nodes = aliveNetNodes();
    if (nodes.empty()) return kInvalidNode;
    return nodes[pick % nodes.size()];
  }

  ProtocolOptions baseOptions() const {
    ProtocolOptions o;
    o.channels = options_.channels;
    o.traceCapacity = options_.traceCapacity;
    o.threads = options_.threads;
    o.shardSerialThreshold = options_.shardSerialThreshold;
    o.failureSeed =
        failureSeed(program_.seed, static_cast<std::uint64_t>(opIndex_));
    o.arena.seed =
        arenaSeed(program_.seed, static_cast<std::uint64_t>(opIndex_));
    switch (faultRegime_) {
      case 1: o.dropProbability = dropProbability_; break;
      case 2: o.burst = burst_; break;
      case 3: o.jamZones = jams_; break;
      default: break;
    }
    return o;
  }

  std::uint64_t payload() const {
    return std::uint64_t{0xDA7A0000} + static_cast<std::uint64_t>(opIndex_);
  }

  void record(const ScenarioEvent& e) { result_.executed.push_back(e); }

  /// Both the shipping validator and the independent spec checker must
  /// call a non-stale structure clean — and must agree.
  void checkStructure() {
    if (net_->hasStaleStructure()) return;
    const ValidationReport report = net_->validate();
    const auto issues = checkSpec(net_->clusterNet());
    const bool validatorClean = report.ok();
    const bool specClean = issues.empty();
    if (validatorClean && specClean) return;
    std::ostringstream os;
    if (validatorClean != specClean) {
      os << "validator and spec checker disagree: validator says "
         << (validatorClean ? "clean" : "violated") << ", spec checker says "
         << (specClean ? "clean" : "violated") << " — "
         << (validatorClean ? describeIssues(issues) : report.summary());
      fail("oracle-divergence", os.str());
    } else {
      os << "structure violated: " << report.summary();
      fail("structure-violation", os.str());
    }
  }

  void checkTrace(const BroadcastRun& run, const char* what) {
    const auto issues = checkTraceConsistency(run.trace, net_->graph(),
                                              options_.channels);
    if (issues.empty()) return;
    std::ostringstream os;
    os << what << " trace violates the radio axioms: " << issues.front();
    fail("trace-inconsistency", os.str());
  }

  void execute(const FuzzOp& op) {
    switch (op.kind) {
      case OpKind::kJoin: doJoin(op); break;
      case OpKind::kLeave: doLeave(op); break;
      case OpKind::kCrash: doCrash(op); break;
      case OpKind::kFaultFlip: doFaultFlip(op); break;
      case OpKind::kRepair: doRepair(); break;
      case OpKind::kBroadcast: doBroadcast(op); break;
      case OpKind::kReliableBroadcast: doReliableBroadcast(op); break;
      case OpKind::kMulticast: doMulticast(op); break;
      case OpKind::kMove: doMove(op); break;
    }
  }

  void skip() { ++result_.opsSkipped; }

  void doJoin(const FuzzOp& op) {
    if (net_->hasStaleStructure()) return skip();
    bool joined = false;
    net_->addSensor(op.position, &joined);
    ++result_.opsExecuted;
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kJoin;
    e.position = op.position;
    record(e);
    fold(joined ? 1 : 2);
    fold(net_->clusterNet().netSize());
    checkStructure();
  }

  void doLeave(const FuzzOp& op) {
    if (net_->hasStaleStructure()) return skip();
    if (net_->clusterNet().netSize() <= 1) return skip();
    const NodeId v = resolve(op.pick);
    if (v == kInvalidNode) return skip();
    net_->removeSensor(v);
    ++result_.opsExecuted;
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kLeave;
    e.node = v;
    record(e);
    fold(3);
    fold(v);
    fold(net_->clusterNet().netSize());
    checkStructure();
  }

  void doMove(const FuzzOp& op) {
    if (net_->hasStaleStructure()) return skip();
    if (net_->clusterNet().netSize() <= 1) return skip();
    const NodeId v = resolve(op.pick);
    if (v == kInvalidNode) return skip();
    const bool inNet = net_->moveSensor(v, op.position);
    ++result_.opsExecuted;
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kMove;
    e.node = v;
    e.position = op.position;
    record(e);
    fold(7);
    fold(v);
    fold(inNet ? 1 : 2);
    fold(net_->clusterNet().netSize());
    checkStructure();
  }

  void doCrash(const FuzzOp& op) {
    if (net_->clusterNet().netSize() <= 1) return skip();
    const NodeId v = resolve(op.pick);
    if (v == kInvalidNode || v == net_->clusterNet().root()) return skip();
    net_->crashSensor(v);
    ++result_.opsExecuted;
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kCrash;
    e.node = v;
    record(e);
    fold(4);
    fold(v);
  }

  void doFaultFlip(const FuzzOp& op) {
    faultRegime_ = op.faultRegime;
    dropProbability_ = op.dropProbability;
    burst_ = op.burst;
    jams_.clear();
    if (op.faultRegime == 3) jams_.push_back(op.jam);
    ++result_.opsExecuted;
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kFaults;
    switch (op.faultRegime) {
      case 1:
        e.faultKind = ScenarioEvent::FaultKind::kDrop;
        e.dropProbability = op.dropProbability;
        break;
      case 2:
        e.faultKind = ScenarioEvent::FaultKind::kBurst;
        e.burst = op.burst;
        break;
      case 3:
        e.faultKind = ScenarioEvent::FaultKind::kJam;
        e.jam = op.jam;
        break;
      default:
        e.faultKind = ScenarioEvent::FaultKind::kNone;
        break;
    }
    record(e);
    fold(5);
    fold(static_cast<std::uint64_t>(op.faultRegime));
  }

  void doRepair() {
    const RecoveryReport report = net_->repairAfterFailures();
    ++result_.opsExecuted;
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kRepair;
    record(e);
    fold(6);
    fold(report.staleRemoved);
    fold(report.reattached);
    fold(net_->clusterNet().netSize());
    checkStructure();
  }

  void doBroadcast(const FuzzOp& op) {
    const NodeId source = resolve(op.pick);
    if (source == kInvalidNode) return skip();
    ++result_.opsExecuted;
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kBroadcast;
    e.node = source;
    e.scheme = op.scheme;
    record(e);

    const ProtocolOptions opts = baseOptions();
    if (isRandomizedScheme(op.scheme)) {
      rivalBroadcast(op.scheme, source, opts);
      return;
    }
    const bool clean = !faultsActive() && !net_->hasStaleStructure();
    if (!clean) {
      const BroadcastRun run =
          net_->broadcast(op.scheme, source, payload(), opts);
      foldRun(run);
      checkTrace(run, toString(op.scheme).data());
      return;
    }
    differentialBroadcast(source, opts);
  }

  /// Oracle battery for the randomized flat-graph rivals (gossip,
  /// suppression, RLNC). Exact-set differential equality does not apply
  /// — relay decisions are coin flips and partial coverage is a
  /// legitimate outcome — so the battery checks the properties that ARE
  /// hard contracts of the randomized schemes:
  ///   - seed-determinism: an identical re-run is bit-identical in every
  ///     observable (delivery sets/rounds, tx, collisions, energy);
  ///   - budget-superset (coverage monotonicity): doubling the listen
  ///     budget only extends a run — rounds before the shorter budget
  ///     replay identically, so every short-run delivery recurs in the
  ///     long run at the same round, and coverage never shrinks;
  ///   - no phantom deliveries: delivered ⊆ reachable(source), and the
  ///     source reports round 0;
  ///   - decode-completeness (RLNC): a full-rank decode never fails the
  ///     generation consistency check.
  void rivalBroadcast(BroadcastScheme scheme, NodeId source,
                      const ProtocolOptions& opts) {
    const std::uint64_t p = payload();
    const char* name = toString(scheme).data();
    const BroadcastRun run = net_->broadcast(scheme, source, p, opts);
    foldRun(run);
    checkTrace(run, name);
    if (run.decodeFailures != 0) {
      std::ostringstream os;
      os << name << " had " << run.decodeFailures
         << " inconsistent full-rank decodes";
      fail("rlnc-decode", os.str());
    }

    // No phantom deliveries.
    const auto reachable = reachableFrom(net_->graph(), source);
    std::vector<char> mark(net_->graph().size(), 0);
    for (NodeId v : reachable) mark[v] = 1;
    for (std::size_t v = 0; v < run.deliveryRound.size(); ++v) {
      if (run.deliveryRound[v] >= 0 && !mark[v]) {
        std::ostringstream os;
        os << name << " delivered to node " << v
           << " which is unreachable from source " << source;
        fail("rival-phantom-delivery", os.str());
        break;
      }
    }
    if (source < run.deliveryRound.size() &&
        run.deliveryRound[source] != 0) {
      std::ostringstream os;
      os << name << " source " << source << " reports delivery round "
         << run.deliveryRound[source] << " instead of 0";
      fail("rival-phantom-delivery", os.str());
    }

    // Seed-determinism.
    const BroadcastRun again = net_->broadcast(scheme, source, p, opts);
    foldRun(again);
    if (again.delivered != run.delivered ||
        again.lastDeliveryRound != run.lastDeliveryRound ||
        again.transmissions != run.transmissions ||
        again.collisions != run.collisions ||
        again.sim.rounds != run.sim.rounds ||
        again.deliveryRound != run.deliveryRound ||
        again.listenRounds != run.listenRounds ||
        again.transmitRounds != run.transmitRounds) {
      std::ostringstream os;
      os << name << " re-run with identical seeds diverged: delivered "
         << again.delivered << " vs " << run.delivered << ", tx "
         << again.transmissions << " vs " << run.transmissions;
      fail("rival-nondeterminism", os.str());
    }

    // Budget-superset. The runs replay identically up to the shorter
    // budget, so use explicit budgets B and 2B (not the runner default).
    ProtocolOptions shortOpts = opts;
    shortOpts.maxRounds =
        static_cast<Round>(net_->graph().liveCount()) + 8;
    ProtocolOptions longOpts = opts;
    longOpts.maxRounds = 2 * shortOpts.maxRounds;
    const BroadcastRun shortRun =
        net_->broadcast(scheme, source, p, shortOpts);
    const BroadcastRun longRun =
        net_->broadcast(scheme, source, p, longOpts);
    foldRun(longRun);
    if (longRun.delivered < shortRun.delivered) {
      std::ostringstream os;
      os << name << " with a doubled listen budget delivered "
         << longRun.delivered << " < " << shortRun.delivered;
      fail("rival-budget-superset", os.str());
    }
    const std::size_t n = std::min(shortRun.deliveryRound.size(),
                                   longRun.deliveryRound.size());
    for (std::size_t v = 0; v < n; ++v) {
      if (shortRun.deliveryRound[v] >= 0 &&
          longRun.deliveryRound[v] != shortRun.deliveryRound[v]) {
        std::ostringstream os;
        os << name << " budget prefix diverged at node " << v
           << ": delivery round " << shortRun.deliveryRound[v]
           << " with budget " << shortOpts.maxRounds << " vs "
           << longRun.deliveryRound[v] << " with budget "
           << longOpts.maxRounds;
        fail("rival-budget-superset", os.str());
        break;
      }
    }
  }

  /// Fault-free broadcast on a clean structure: the strongest oracle
  /// setting. All three schemes, the plan replica, and the naive
  /// reference simulator must tell one consistent story.
  void differentialBroadcast(NodeId source, const ProtocolOptions& opts) {
    const std::uint64_t p = payload();
    const BroadcastRun dfo =
        net_->broadcast(BroadcastScheme::kDfo, source, p, opts);
    const BroadcastRun cff =
        net_->broadcast(BroadcastScheme::kCff, source, p, opts);
    const BroadcastRun icff =
        net_->broadcast(BroadcastScheme::kImprovedCff, source, p, opts);
    foldRun(dfo);
    foldRun(cff);
    foldRun(icff);

    const auto requireFull = [&](const BroadcastRun& r, const char* name) {
      if (r.allDelivered()) return;
      std::ostringstream os;
      os << name << " fault-free broadcast from " << source << " reached "
         << r.delivered << "/" << r.intended << " nodes";
      fail("coverage", os.str());
    };
    requireFull(dfo, "DFO");
    requireFull(cff, "CFF");
    requireFull(icff, "ICFF");
    // Note: collision *sites* are legitimate even fault-free — the slot
    // conditions guarantee every listener SOME uniquely-slotted provider,
    // not that no two other providers share a slot. Delivery is the
    // invariant; collision counts are only cross-checked differentially
    // (real vs reference simulator below).
    if (dfo.deliveryRound.size() == cff.deliveryRound.size() &&
        cff.deliveryRound.size() == icff.deliveryRound.size()) {
      for (std::size_t v = 0; v < cff.deliveryRound.size(); ++v) {
        const bool a = dfo.deliveryRound[v] >= 0;
        const bool b = cff.deliveryRound[v] >= 0;
        const bool c = icff.deliveryRound[v] >= 0;
        if (a != b || b != c) {
          std::ostringstream os;
          os << "delivered sets diverge at node " << v << ": DFO " << a
             << ", CFF " << b << ", ICFF " << c;
          fail("differential-delivered", os.str());
          break;
        }
      }
    }
    checkTrace(dfo, "DFO");
    checkTrace(cff, "CFF");
    checkTrace(icff, "ICFF");

    // CFF plan leg: the plan replica through the real simulator vs the
    // naive first-principles simulator (and, optionally, the injected
    // slot-assignment bug the acceptance test relies on).
    CffPlan plan = buildCffPlan(net_->clusterNet(), source, p, opts);
    const bool injected =
        options_.injectCffSlotBug &&
        injectCffSlotCollision(plan, net_->clusterNet());
    const BroadcastRun planRun = runCffPlan(net_->clusterNet(), plan, opts);
    const ReferenceRun ref = runCffPlanReference(net_->graph(), plan);
    foldRun(planRun);
    if (planRun.delivered != ref.delivered ||
        planRun.collisions != ref.collisions ||
        planRun.deliveryRound != ref.deliveryRound) {
      std::ostringstream os;
      os << "real simulator and reference simulator disagree on the CFF "
            "plan: delivered "
         << planRun.delivered << " vs " << ref.delivered << ", collisions "
         << planRun.collisions << " vs " << ref.collisions;
      fail("reference-divergence", os.str());
    }
    if (!injected && (planRun.delivered != cff.delivered ||
                      planRun.collisions != cff.collisions)) {
      std::ostringstream os;
      os << "plan replica diverges from runCffBroadcast: delivered "
         << planRun.delivered << " vs " << cff.delivered;
      fail("plan-divergence", os.str());
    }
    if (!planRun.allDelivered()) {
      std::ostringstream os;
      os << "CFF plan covered " << planRun.delivered << "/"
         << planRun.intended << " nodes on a fault-free run";
      fail("cff-plan-coverage", os.str());
    }
  }

  void doReliableBroadcast(const FuzzOp& op) {
    const NodeId source = resolve(op.pick);
    if (source == kInvalidNode) return skip();
    ++result_.opsExecuted;
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kReliableBroadcast;
    e.node = source;
    e.scheme = op.scheme;
    e.repairBudget = op.repairBudget;
    record(e);

    ReliableOptions ro;
    ro.base = baseOptions();
    ro.maxRepairRounds = op.repairBudget;
    const std::uint64_t p = payload();
    const ReliableBroadcastRun rel =
        net_->reliableBroadcast(op.scheme, source, p, ro);
    // Same scheme, base options and failure seed: the plain run below is
    // the very wave `rel` started from, so reliable must deliver a
    // superset of it.
    const BroadcastRun plain = net_->broadcast(op.scheme, source, p, ro.base);
    foldRun(plain);
    ++result_.simRuns;
    fold(rel.delivered);
    fold(static_cast<std::uint64_t>(rel.repairRoundsUsed));
    fold(rel.nacksSent);
    fold(rel.retransmissions);
    fold(static_cast<std::uint64_t>(rel.totalRounds));

    if (rel.delivered < plain.delivered) {
      std::ostringstream os;
      os << "reliable broadcast delivered " << rel.delivered
         << " < its own plain wave's " << plain.delivered;
      fail("reliable-regression", os.str());
    }
    const std::size_t n =
        std::min(rel.deliveryRound.size(), plain.deliveryRound.size());
    for (std::size_t v = 0; v < n; ++v) {
      if (plain.deliveryRound[v] >= 0 && rel.deliveryRound[v] < 0) {
        std::ostringstream os;
        os << "node " << v
           << " covered by the plain wave but not by reliable mode";
        fail("reliable-regression", os.str());
        break;
      }
    }
    if (!faultsActive() && !net_->hasStaleStructure() &&
        !rel.allDelivered()) {
      std::ostringstream os;
      os << "fault-free reliable broadcast left " << rel.residualUncovered
         << " nodes uncovered";
      fail("coverage", os.str());
    }
    checkTrace(plain, "reliable-wave");
  }

  void doMulticast(const FuzzOp& op) {
    if (net_->hasStaleStructure()) return skip();
    const NodeId source = resolve(op.pick);
    if (source == kInvalidNode) return skip();
    // Make the group non-trivial: enroll a deterministic member first.
    const NodeId member = resolve(op.memberPick);
    if (member == kInvalidNode) return skip();
    ++result_.opsExecuted;
    if (!net_->clusterNet().inGroup(member, op.group)) {
      net_->joinGroup(member, op.group);
      ScenarioEvent je;
      je.kind = ScenarioEvent::Kind::kJoinGroup;
      je.node = member;
      je.group = op.group;
      record(je);
    }
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kMulticast;
    e.node = source;
    e.group = op.group;
    e.multicastMode = MulticastMode::kPrunedRelay;
    record(e);

    const ProtocolOptions opts = baseOptions();
    const std::uint64_t p = payload();
    const BroadcastRun pruned = net_->multicast(
        source, op.group, p, MulticastMode::kPrunedRelay, opts);
    const BroadcastRun flood = net_->multicast(
        source, op.group, p, MulticastMode::kFullFlood, opts);
    foldRun(pruned);
    foldRun(flood);

    if (!faultsActive() && !flood.allDelivered()) {
      std::ostringstream os;
      os << "fault-free full-flood multicast reached " << flood.delivered
         << "/" << flood.intended << " members of group " << op.group;
      fail("multicast-flood-coverage", os.str());
    }
    const std::size_t n =
        std::min(pruned.deliveryRound.size(), flood.deliveryRound.size());
    if (!faultsActive()) {
      for (std::size_t v = 0; v < n; ++v) {
        if (pruned.deliveryRound[v] >= 0 && flood.deliveryRound[v] < 0) {
          std::ostringstream os;
          os << "pruned multicast delivered to node " << v
             << " that full-flood missed";
          fail("multicast-pruned-subset", os.str());
          break;
        }
      }
    }
    checkTrace(pruned, "multicast-pruned");
    checkTrace(flood, "multicast-flood");
  }
};

}  // namespace

EpisodeResult runEpisode(const FuzzProgram& program,
                         const EpisodeOptions& options) {
  return Episode(program, options).run();
}

}  // namespace dsn::testkit
