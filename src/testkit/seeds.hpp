// Seed-stream derivation for the fuzz harness.
//
// Every fuzz episode owns a family of independent PRNG streams, all
// derived from (baseSeed, episodeIndex) with the same chained-SplitMix64
// finalization rule as ExperimentConfig::trialSeed — one finalizer step
// per coordinate, with a distinct domain tag per stream family so the
// fuzz streams can never collide with the experiment engine's trial
// streams or with each other (regression class: the PR 2 trial-0
// degeneracy, where a weakly mixed rule made distinct coordinates share
// streams). tests/core/seed_streams_test.cpp checks the families are
// pairwise collision-free over 10^5 draws.
#pragma once

#include <cstdint>

#include "core/experiment.hpp"

namespace dsn::testkit {

/// Domain tags separating the fuzz stream families from each other and
/// from ExperimentConfig::trialSeed (whose chain starts at
/// mix64(baseSeed) with no tag).
inline constexpr std::uint64_t kEpisodeDomain = 0xF0225EED00000001ull;
inline constexpr std::uint64_t kDeployDomain = 0xF0225EED00000002ull;
inline constexpr std::uint64_t kOpsDomain = 0xF0225EED00000003ull;
inline constexpr std::uint64_t kFailureDomain = 0xF0225EED00000004ull;
inline constexpr std::uint64_t kArenaDomain = 0xF0225EED00000005ull;

/// Root seed of episode `index` under fuzz base seed `base`.
inline std::uint64_t episodeSeed(std::uint64_t base, std::uint64_t index) {
  const std::uint64_t s1 =
      ExperimentConfig::mix64(ExperimentConfig::mix64(base) ^
                              kEpisodeDomain);
  return ExperimentConfig::mix64(s1 ^ index);
}

/// Deployment stream of one episode (drives deployIncrementalAttach, so
/// the same episode seed at a smaller node count yields a prefix of the
/// same deployment — the property node-count bisection shrinking needs).
inline std::uint64_t deploySeed(std::uint64_t episode) {
  return ExperimentConfig::mix64(episode ^ kDeployDomain);
}

/// Op-program stream of one episode.
inline std::uint64_t opsSeed(std::uint64_t episode) {
  return ExperimentConfig::mix64(episode ^ kOpsDomain);
}

/// Failure-model stream of communication op `opIndex` of one episode.
inline std::uint64_t failureSeed(std::uint64_t episode,
                                 std::uint64_t opIndex) {
  return ExperimentConfig::mix64(
      ExperimentConfig::mix64(episode ^ kFailureDomain) ^ opIndex);
}

/// Rival-scheme tuning stream (ArenaTuning::seed — relay coins, backoff
/// and RLNC coefficient draws) of communication op `opIndex`.
inline std::uint64_t arenaSeed(std::uint64_t episode,
                               std::uint64_t opIndex) {
  return ExperimentConfig::mix64(
      ExperimentConfig::mix64(episode ^ kArenaDomain) ^ opIndex);
}

}  // namespace dsn::testkit
