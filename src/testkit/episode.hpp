// One fuzz episode: deploy a network, execute an op-program, check every
// oracle after every op.
//
// Oracles applied (see DESIGN.md §11):
//   - structural: after each structure-mutating op on a non-stale net,
//     both the shipping validator and the independent spec checker
//     (testkit/spec_check.hpp) must agree the structure is clean; a
//     one-sided disagreement is itself a failure ("oracle-divergence").
//   - differential: a fault-free broadcast on a clean structure must
//     reach every node under all three schemes with identical delivered
//     sets. (Collision *sites* are legitimate even fault-free: the slot
//     conditions promise each listener some uniquely-slotted provider,
//     not a silent ether.)
//   - reference: the CFF plan run through the real simulator must agree
//     delivery-for-delivery with the naive first-principles simulator.
//   - reliable: reliable broadcast must deliver a superset of its own
//     plain wave (identical base options and failure seed).
//   - multicast: fault-free full-flood multicast reaches every member;
//     pruned-relay delivers a subset of full-flood.
//   - trace: every recorded receive/collision event is justified by the
//     radio axioms (all schemes, all fault regimes).
//
// The executor also records the concrete ScenarioEvents it performed
// (picks resolved to real node ids) so a failing episode can be exported
// as a replayable .wsn file, and folds every run's outcome into an FNV
// digest so cross---jobs determinism is a one-word comparison.
#pragma once

#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "testkit/program.hpp"

namespace dsn::testkit {

/// Execution knobs of one episode.
struct EpisodeOptions {
  Channel channels = 1;
  /// Per-run trace capacity; traces that overflow are skipped by the
  /// consistency oracle rather than judged on a partial view.
  std::size_t traceCapacity = 8192;
  /// Corrupts every CFF plan leg with injectCffSlotCollision before
  /// running it — the deliberate-bug acceptance mode. A vulnerable
  /// episode then fails with class "cff-plan-coverage".
  bool injectCffSlotBug = false;
  /// > 0 routes every broadcast leg through the sharded round engine
  /// with this worker count. The campaign digest must be identical to
  /// the serial engines' — sharding is bit-exact by construction.
  int threads = 0;
  /// Pop-count floor below which a sharded round runs on the caller
  /// thread. Fuzz nets are tiny, so campaigns that want to exercise the
  /// parallel path set this to 0.
  std::size_t shardSerialThreshold = 256;
};

/// Outcome of one episode.
struct EpisodeResult {
  bool ok = true;
  /// Stable kebab-case class of the first failure ("" when ok).
  std::string failureClass;
  std::string message;
  /// Index of the op whose checks failed (-1 = deploy-time checks).
  int failingOp = -1;
  /// FNV-1a digest over every deterministic outcome field, in op order.
  std::uint64_t digest = 0xcbf29ce484222325ull;
  /// Concrete events executed (for .wsn export / replay).
  std::vector<ScenarioEvent> executed;
  std::size_t opsExecuted = 0;
  std::size_t opsSkipped = 0;
  std::size_t simRuns = 0;
};

/// Executes `program` from scratch. Deterministic: same program and
/// options => identical result (including the digest), on any thread.
EpisodeResult runEpisode(const FuzzProgram& program,
                         const EpisodeOptions& options = {});

}  // namespace dsn::testkit
