#include "testkit/fuzz.hpp"

#include <ostream>

#include "exec/parallel_sweep.hpp"
#include "obs/json.hpp"
#include "testkit/seeds.hpp"

namespace dsn::testkit {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fold(std::uint64_t& digest, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    digest ^= (x >> (8 * i)) & 0xffu;
    digest *= kFnvPrime;
  }
}

}  // namespace

EpisodeResult replayEpisode(std::uint64_t episodeSeed,
                            const GeneratorKnobs& knobs,
                            const EpisodeOptions& options) {
  return runEpisode(generateProgram(knobs, episodeSeed), options);
}

FuzzReport runFuzz(const FuzzConfig& config) {
  struct Slot {
    std::uint64_t seed = 0;
    EpisodeResult result;
  };
  std::vector<Slot> slots(config.episodes);

  exec::forEachIndex(config.episodes, config.jobs, [&](std::size_t i) {
    Slot& slot = slots[i];
    slot.seed = episodeSeed(config.seed, i);
    slot.result = replayEpisode(slot.seed, config.knobs, config.episode);
  });

  FuzzReport report;
  report.episodes = config.episodes;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const Slot& slot = slots[i];
    fold(report.digest, slot.result.digest);
    report.opsExecuted += slot.result.opsExecuted;
    report.opsSkipped += slot.result.opsSkipped;
    report.simRuns += slot.result.simRuns;
    if (slot.result.ok) continue;
    ++report.failed;
    if (report.failures.size() < config.maxFailuresKept) {
      FuzzFailure f;
      f.episodeIndex = i;
      f.episodeSeed = slot.seed;
      f.result = slot.result;
      report.failures.push_back(std::move(f));
    }
  }

  if (config.shrinkFailures && !report.failures.empty()) {
    FuzzFailure& first = report.failures.front();
    first.shrink = shrinkProgram(
        generateProgram(config.knobs, first.episodeSeed), config.episode);
    first.shrunk = true;
  }
  return report;
}

void writeFuzzJson(std::ostream& os, const FuzzConfig& config,
                   const FuzzReport& report) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "dsnet-fuzz-v1");
  w.key("config");
  w.beginObject();
  w.kv("episodes", static_cast<std::uint64_t>(config.episodes));
  w.kv("seed", config.seed);
  w.kv("jobs", config.jobs);
  w.kv("min_nodes", static_cast<std::uint64_t>(config.knobs.minNodes));
  w.kv("max_nodes", static_cast<std::uint64_t>(config.knobs.maxNodes));
  w.kv("field_units", config.knobs.fieldUnits);
  w.kv("range", config.knobs.range);
  w.kv("min_ops", static_cast<std::uint64_t>(config.knobs.minOps));
  w.kv("max_ops", static_cast<std::uint64_t>(config.knobs.maxOps));
  w.kv("channels", static_cast<std::uint64_t>(config.episode.channels));
  w.kv("inject_cff_bug", config.episode.injectCffSlotBug);
  w.endObject();
  w.key("result");
  w.beginObject();
  w.kv("episodes", static_cast<std::uint64_t>(report.episodes));
  w.kv("failed", static_cast<std::uint64_t>(report.failed));
  w.kv("digest", report.digest);
  w.kv("ops_executed", static_cast<std::uint64_t>(report.opsExecuted));
  w.kv("ops_skipped", static_cast<std::uint64_t>(report.opsSkipped));
  w.kv("sim_runs", static_cast<std::uint64_t>(report.simRuns));
  w.endObject();
  w.key("failures");
  w.beginArray();
  for (const FuzzFailure& f : report.failures) {
    w.beginObject();
    w.kv("episode", static_cast<std::uint64_t>(f.episodeIndex));
    w.kv("episode_seed", f.episodeSeed);
    w.kv("class", f.result.failureClass);
    w.kv("message", f.result.message);
    w.kv("failing_op", f.result.failingOp);
    if (f.shrunk) {
      w.key("shrunk");
      w.beginObject();
      w.kv("ops", static_cast<std::uint64_t>(f.shrink.program.ops.size()));
      w.kv("nodes",
           static_cast<std::uint64_t>(f.shrink.program.nodeCount));
      w.kv("episodes_run",
           static_cast<std::uint64_t>(f.shrink.episodesRun));
      w.kv("class", f.shrink.failure.failureClass);
      w.kv("scenario", f.shrink.scenarioText);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  os << w.str() << '\n';
}

}  // namespace dsn::testkit
