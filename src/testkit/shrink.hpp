// Failing-episode minimizer.
//
// Given a program whose episode fails an oracle, the shrinker searches
// for a smaller program that still fails:
//
//   1. op deletion — a ddmin-style pass removing chunks of ops (chunk
//      size n/2, n/4, ... 1), iterated to a fixpoint;
//   2. node-count bisection — deployIncrementalAttach draws positions
//      node by node from one seeded stream, so the same deploy seed with
//      a smaller count yields a prefix of the same deployment; the
//      shrinker binary-searches the smallest count that still fails;
//   3. a final single-op deletion sweep.
//
// Any oracle failure counts as "still failing" (the classic shrink
// convention: the minimal reproduction may trip a different — usually
// more fundamental — check than the original).
//
// The result carries a replayable .wsn scenario (concrete node ids, with
// a header documenting the seeds and the wsn_sim replay command) plus
// the minimized program for exact in-harness replay.
#pragma once

#include "testkit/episode.hpp"

namespace dsn::testkit {

struct ShrinkResult {
  /// The minimized program (still failing).
  FuzzProgram program;
  /// Outcome of the minimized program's episode.
  EpisodeResult failure;
  /// Episodes executed while shrinking (the search cost).
  std::size_t episodesRun = 0;
  /// Replayable `.wsn` scenario text of the minimized episode.
  std::string scenarioText;
};

/// Minimizes `failing` (whose episode must fail under `options`;
/// precondition checked). Deterministic.
ShrinkResult shrinkProgram(const FuzzProgram& failing,
                           const EpisodeOptions& options = {});

}  // namespace dsn::testkit
