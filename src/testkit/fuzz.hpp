// Fuzz campaign driver: N seeded episodes, deterministically parallel.
//
// Episodes shard across exec::forEachIndex, each writing into its own
// result slot; the report (failure order, digest, JSON export) is
// assembled from the slots in index order, so the campaign outcome is
// bit-identical at any --jobs count. The campaign digest chains every
// episode digest in order — comparing two digests compares two whole
// campaigns in one word, which is how --verify-jobs works.
#pragma once

#include <iosfwd>

#include "testkit/shrink.hpp"

namespace dsn::testkit {

/// Campaign configuration.
struct FuzzConfig {
  std::size_t episodes = 100;
  std::uint64_t seed = 1;
  /// Worker threads (0 = hardware concurrency, 1 = serial).
  int jobs = 1;
  GeneratorKnobs knobs;
  EpisodeOptions episode;
  /// Minimize the first failing episode (serial, after the sweep).
  bool shrinkFailures = true;
  /// Failing episodes retained in full (beyond counting).
  std::size_t maxFailuresKept = 5;
};

/// One retained failure.
struct FuzzFailure {
  std::size_t episodeIndex = 0;
  std::uint64_t episodeSeed = 0;
  EpisodeResult result;
  bool shrunk = false;
  ShrinkResult shrink;
};

/// Campaign outcome.
struct FuzzReport {
  std::size_t episodes = 0;
  std::size_t failed = 0;
  /// FNV chain over per-episode digests, in episode order.
  std::uint64_t digest = 0xcbf29ce484222325ull;
  std::size_t opsExecuted = 0;
  std::size_t opsSkipped = 0;
  std::size_t simRuns = 0;
  /// First maxFailuresKept failures, in episode order.
  std::vector<FuzzFailure> failures;

  bool clean() const { return failed == 0; }
};

/// Runs the campaign. Deterministic for fixed config (jobs excluded).
FuzzReport runFuzz(const FuzzConfig& config);

/// Replays a single episode by its root seed (the value printed in
/// failure reports and .wsn headers) — the "reproduce from a seed"
/// entry point.
EpisodeResult replayEpisode(std::uint64_t episodeSeed,
                            const GeneratorKnobs& knobs,
                            const EpisodeOptions& options = {});

/// Writes the dsnet-fuzz-v1 JSON document. Contains no wall-clock or
/// host fields, so documents from runs that differ only in --jobs are
/// byte-identical except for the declared "jobs" value.
void writeFuzzJson(std::ostream& os, const FuzzConfig& config,
                   const FuzzReport& report);

}  // namespace dsn::testkit
