// Random op-program generator for the fuzz harness.
//
// A FuzzProgram is a seeded random deployment (connected by
// construction, via deployIncrementalAttach) plus a sequence of dynamic
// ops — joins, leaves, crashes, fault-regime flips, repairs, and
// broadcast/multicast requests. Node references inside ops are stored as
// raw 64-bit picks and resolved `pick % |candidates|` at execution time,
// so deleting ops or shrinking the node count never invalidates a
// program — the key property the shrinker relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "broadcast/runner.hpp"
#include "radio/failure.hpp"
#include "util/geometry.hpp"
#include "util/types.hpp"

namespace dsn::testkit {

enum class OpKind : std::uint8_t {
  kJoin,               ///< node-move-in at a random field position
  kLeave,              ///< node-move-out of a random net node
  kCrash,              ///< uncooperative death (structure goes stale)
  kFaultFlip,          ///< install/clear a failure regime
  kRepair,             ///< heartbeat + prune + re-attach pass
  kBroadcast,          ///< broadcast request (run differentially)
  kReliableBroadcast,  ///< reliable broadcast vs its own plain wave
  kMulticast,          ///< multicast request (flood vs pruned)
  kMove,               ///< relocate a random net node (withdraw+re-join)
};

const char* toString(OpKind k);

/// One dynamic op. Only the fields its kind reads are meaningful.
struct FuzzOp {
  OpKind kind{};
  /// Node selector: resolved against the alive net nodes at execution.
  std::uint64_t pick = 0;
  Point2D position{};  ///< kJoin / kMove
  BroadcastScheme scheme = BroadcastScheme::kImprovedCff;
  /// kFaultFlip: 0 = none, 1 = drop, 2 = burst, 3 = jam.
  int faultRegime = 0;
  double dropProbability = 0.0;
  BurstLossParams burst{};
  JamZone jam{};
  GroupId group = 0;             ///< kMulticast
  std::uint64_t memberPick = 0;  ///< kMulticast: membership fill
  int repairBudget = 4;          ///< kReliableBroadcast
};

/// Size/density/mix knobs of the generator.
struct GeneratorKnobs {
  std::size_t minNodes = 24;
  std::size_t maxNodes = 96;
  /// Field edge in paper units of 100 m. 4 (400 m x 400 m at 50 m range)
  /// keeps small deployments dense enough to grow real multi-depth
  /// backbones.
  int fieldUnits = 4;
  double range = 50.0;
  std::size_t minOps = 6;
  std::size_t maxOps = 28;
};

/// A generated (or shrunk) episode input: deployment + op sequence.
struct FuzzProgram {
  /// Episode seed — root of every derived stream (testkit/seeds.hpp).
  std::uint64_t seed = 0;
  std::size_t nodeCount = 0;
  int fieldUnits = 4;
  double range = 50.0;
  std::vector<FuzzOp> ops;
};

/// Generates the program of the episode with root seed `episodeSeed`.
/// Deterministic: same knobs + seed => identical program.
FuzzProgram generateProgram(const GeneratorKnobs& knobs,
                            std::uint64_t episodeSeed);

}  // namespace dsn::testkit
