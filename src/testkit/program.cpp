#include "testkit/program.hpp"

#include "testkit/seeds.hpp"
#include "util/rng.hpp"

namespace dsn::testkit {

const char* toString(OpKind k) {
  switch (k) {
    case OpKind::kJoin: return "join";
    case OpKind::kLeave: return "leave";
    case OpKind::kCrash: return "crash";
    case OpKind::kFaultFlip: return "faults";
    case OpKind::kRepair: return "repair";
    case OpKind::kBroadcast: return "broadcast";
    case OpKind::kReliableBroadcast: return "rbroadcast";
    case OpKind::kMulticast: return "multicast";
    case OpKind::kMove: return "move";
  }
  return "?";
}

namespace {

BroadcastScheme pickScheme(Rng& rng) {
  // Uniform over the full arena roster: the paper's three structured
  // schemes plus the six flat-graph rivals (which get the randomized-
  // scheme oracle battery instead of exact differential equality).
  return kAllBroadcastSchemes[rng.uniform(kAllBroadcastSchemes.size())];
}

FuzzOp makeFaultFlip(Rng& rng, double fieldMeters, double range) {
  FuzzOp op;
  op.kind = OpKind::kFaultFlip;
  op.faultRegime = static_cast<int>(rng.uniform(4));
  switch (op.faultRegime) {
    case 0:
      break;  // clear all regimes
    case 1:
      op.dropProbability = rng.uniformReal(0.02, 0.3);
      break;
    case 2:
      op.burst.pEnterBurst = rng.uniformReal(0.02, 0.2);
      op.burst.pExitBurst = rng.uniformReal(0.2, 0.8);
      op.burst.dropBurst = rng.uniformReal(0.5, 1.0);
      op.burst.dropGood = rng.chance(0.5) ? rng.uniformReal(0.0, 0.05) : 0.0;
      break;
    case 3:
      op.jam.center = {rng.uniformReal(0.0, fieldMeters),
                       rng.uniformReal(0.0, fieldMeters)};
      op.jam.radius = rng.uniformReal(range * 0.5, range * 2.0);
      break;
  }
  return op;
}

}  // namespace

FuzzProgram generateProgram(const GeneratorKnobs& knobs,
                            std::uint64_t episodeSeed) {
  Rng rng(opsSeed(episodeSeed));

  FuzzProgram p;
  p.seed = episodeSeed;
  p.fieldUnits = knobs.fieldUnits;
  p.range = knobs.range;
  p.nodeCount =
      knobs.minNodes +
      static_cast<std::size_t>(
          rng.uniform(knobs.maxNodes - knobs.minNodes + 1));
  const std::size_t opCount =
      knobs.minOps +
      static_cast<std::size_t>(rng.uniform(knobs.maxOps - knobs.minOps + 1));
  const double fieldMeters = knobs.fieldUnits * 100.0;

  // The generator tracks a coarse stale-structure model: after a crash
  // the net references a dead node until a repair runs, and the
  // structure-mutating ops (join/leave/multicast membership) are only
  // defined on a clean structure. The executor re-checks and skips
  // defensively — shrinking can delete the crash but keep the repair —
  // but a generator that mostly emits runnable ops explores much more
  // behaviour per episode.
  bool stale = false;
  while (p.ops.size() < opCount) {
    FuzzOp op;
    // Weighted mix over the runnable kinds for the current model state.
    const std::uint64_t w = rng.uniform(100);
    if (stale) {
      if (w < 35) {
        op.kind = OpKind::kRepair;
        stale = false;
      } else if (w < 55) {
        op.kind = OpKind::kBroadcast;
        op.pick = rng.next();
        op.scheme = pickScheme(rng);
      } else if (w < 70) {
        op.kind = OpKind::kReliableBroadcast;
        op.pick = rng.next();
        op.scheme = rng.chance(0.5) ? BroadcastScheme::kCff
                                    : BroadcastScheme::kImprovedCff;
        op.repairBudget = static_cast<int>(2 + rng.uniform(5));
      } else if (w < 85) {
        op.kind = OpKind::kCrash;
        op.pick = rng.next();
      } else {
        op = makeFaultFlip(rng, fieldMeters, knobs.range);
      }
    } else {
      if (w < 13) {
        op.kind = OpKind::kJoin;
        op.position = {rng.uniformReal(0.0, fieldMeters),
                       rng.uniformReal(0.0, fieldMeters)};
      } else if (w < 24) {
        op.kind = OpKind::kLeave;
        op.pick = rng.next();
      } else if (w < 33) {
        op.kind = OpKind::kCrash;
        op.pick = rng.next();
        stale = true;
      } else if (w < 43) {
        op = makeFaultFlip(rng, fieldMeters, knobs.range);
      } else if (w < 51) {
        op.kind = OpKind::kMove;
        op.pick = rng.next();
        op.position = {rng.uniformReal(0.0, fieldMeters),
                       rng.uniformReal(0.0, fieldMeters)};
      } else if (w < 72) {
        op.kind = OpKind::kBroadcast;
        op.pick = rng.next();
        op.scheme = pickScheme(rng);
      } else if (w < 84) {
        op.kind = OpKind::kReliableBroadcast;
        op.pick = rng.next();
        op.scheme = rng.chance(0.5) ? BroadcastScheme::kCff
                                    : BroadcastScheme::kImprovedCff;
        op.repairBudget = static_cast<int>(2 + rng.uniform(5));
      } else {
        op.kind = OpKind::kMulticast;
        op.pick = rng.next();
        op.group = static_cast<GroupId>(rng.uniform(3));
        op.memberPick = rng.next();
      }
    }
    p.ops.push_back(op);
  }
  // Never leave an episode stale: a trailing repair makes the final
  // structural cross-check meaningful for every generated program.
  if (stale) {
    FuzzOp op;
    op.kind = OpKind::kRepair;
    p.ops.push_back(op);
  }
  return p;
}

}  // namespace dsn::testkit
