#include "testkit/reference_radio.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "broadcast/runner_detail.hpp"
#include "broadcast/tdm.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn::testkit {

CffPlan buildCffPlan(const ClusterNet& net, NodeId source,
                     std::uint64_t payload,
                     const ProtocolOptions& options) {
  DSN_REQUIRE(net.contains(source), "plan source must be in the net");
  const Graph& g = net.graph();

  std::vector<NodeId> path;
  for (NodeId v = source; v != kInvalidNode; v = net.parent(v))
    path.push_back(v);
  const Round floodStart = static_cast<Round>(path.size()) - 1;

  const TimeSlot window = net.rootMaxUSlot();
  const TdmMap tdm(window == 0 ? 1 : window, options.channels);

  CffPlan plan;
  plan.channels = options.channels;
  plan.scheduleLength =
      floodStart + static_cast<Round>(net.height() + 1) * tdm.windowLength();
  plan.maxRounds =
      options.maxRounds > 0 ? options.maxRounds : plan.scheduleLength + 4;

  for (NodeId v : net.netNodes()) {
    if (!g.isAlive(v)) continue;
    plan.intended.push_back(v);
    CffNodeConfig nc;
    nc.self = v;
    nc.depth = net.depth(v);
    nc.slot = net.isBackbone(v) ? net.uSlot(v) : kNoSlot;
    nc.window = window;
    nc.channels = options.channels;
    nc.floodStart = floodStart;
    nc.isSource = v == source;
    nc.payload = payload;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (path[i] == v && i + 1 < path.size()) {
        nc.pathIndex = static_cast<int>(i);
        nc.pathNext = path[i + 1];
      }
    }
    plan.configs.push_back(nc);
  }
  return plan;
}

BroadcastRun runCffPlan(const ClusterNet& net, const CffPlan& plan,
                        const ProtocolOptions& options) {
  const Graph& g = net.graph();

  SimConfig cfg;
  cfg.channelCount = plan.channels;
  cfg.maxRounds = plan.maxRounds;
  cfg.traceCapacity = options.traceCapacity;
  detail::applyScheduling(cfg, options);

  RadioSimulator sim(g, cfg);
  detail::applyFailures(sim, options);

  std::vector<BroadcastEndpoint*> endpoints(g.size(), nullptr);
  for (const CffNodeConfig& nc : plan.configs) {
    auto p = std::make_unique<CffNodeProtocol>(nc);
    endpoints[nc.self] = p.get();
    sim.setProtocol(nc.self, std::move(p));
  }

  BroadcastRun run;
  run.scheduleLength = plan.scheduleLength;
  run.sim = sim.run();
  detail::collectDeliveryStats(sim, plan.intended, endpoints, run);
  return run;
}

ReferenceRun runCffPlanReference(const Graph& g, const CffPlan& plan) {
  // The reference resolver rescans whole neighborhoods every round; use
  // the flat CSR snapshot (identical neighbor order) for the scan.
  const CsrView& csr = g.csrView();
  std::vector<std::unique_ptr<CffNodeProtocol>> protocols(g.size());
  for (const CffNodeConfig& nc : plan.configs)
    protocols[nc.self] = std::make_unique<CffNodeProtocol>(nc);

  ReferenceRun out;
  out.intended = plan.intended.size();
  out.deliveryRound.assign(g.size(), -1);

  const auto allDone = [&] {
    for (NodeId v = 0; v < g.size(); ++v)
      if (protocols[v] && !protocols[v]->isDone()) return false;
    return true;
  };

  std::vector<Action> actions(g.size());
  for (Round r = 0; r < plan.maxRounds; ++r) {
    if (allDone()) {
      out.completed = true;
      out.rounds = r;
      break;
    }

    for (NodeId v = 0; v < g.size(); ++v) {
      actions[v] = Action::sleep();
      if (protocols[v]) actions[v] = protocols[v]->onRound(r);
      if (actions[v].type == Action::Type::kTransmit) ++out.transmissions;
    }

    // First-principles resolution: for every listener and every channel it
    // is tuned to, walk its whole neighborhood and count transmitters on
    // that channel. Exactly one means delivery; two or more, collision.
    struct Pending {
      NodeId receiver;
      NodeId transmitter;
      Channel channel;
    };
    std::vector<Pending> deliveries;
    for (NodeId v = 0; v < g.size(); ++v) {
      if (actions[v].type != Action::Type::kListen) continue;
      const bool wideBand = actions[v].channel == kAllChannels;
      const Channel lo = wideBand ? 0 : actions[v].channel;
      const Channel hi = wideBand
                             ? static_cast<Channel>(plan.channels - 1)
                             : actions[v].channel;
      for (Channel c = lo; c <= hi; ++c) {
        NodeId only = kInvalidNode;
        std::size_t count = 0;
        for (NodeId u : csr.neighbors(v)) {
          if (actions[u].type == Action::Type::kTransmit &&
              actions[u].channel == c) {
            ++count;
            only = u;
          }
        }
        if (count == 1) deliveries.push_back({v, only, c});
        if (count >= 2) ++out.collisions;
      }
    }
    for (const Pending& d : deliveries)
      protocols[d.receiver]->onReceive(actions[d.transmitter].message, r,
                                       d.channel);

    out.rounds = r + 1;
  }
  if (!out.completed && out.rounds == plan.maxRounds)
    out.completed = allDone();

  for (NodeId v : plan.intended) {
    if (protocols[v] && protocols[v]->hasPayload()) {
      ++out.delivered;
      out.deliveryRound[v] = protocols[v]->payloadRound();
    }
  }
  return out;
}

bool injectCffSlotCollision(CffPlan& plan, const ClusterNet& net) {
  const Graph& g = net.graph();
  std::unordered_map<NodeId, std::size_t> index;
  for (std::size_t i = 0; i < plan.configs.size(); ++i)
    index.emplace(plan.configs[i].self, i);

  for (const CffNodeConfig& nc : plan.configs) {
    // Path relays and the source get the payload outside their flood
    // window; only a pure window listener is guaranteed starved by the
    // corruption.
    if (nc.depth == 0 || nc.isSource || nc.pathIndex >= 0) continue;
    std::vector<std::size_t> providers;
    for (NodeId u : g.neighbors(nc.self)) {
      auto it = index.find(u);
      if (it == index.end()) continue;
      const CffNodeConfig& pc = plan.configs[it->second];
      if (pc.depth == nc.depth - 1 && pc.slot != kNoSlot)
        providers.push_back(it->second);
    }
    if (providers.size() < 2) continue;
    // All providers now share one slot: they transmit in the same round
    // on the same channel, so this listener hears only noise.
    const TimeSlot shared = plan.configs[providers.front()].slot;
    for (std::size_t i : providers) plan.configs[i].slot = shared;
    return true;
  }
  return false;
}

std::vector<std::string> checkTraceConsistency(const Trace& trace,
                                               const Graph& g,
                                               Channel channelCount) {
  std::vector<std::string> issues;
  if (trace.droppedEvents() > 0) return issues;  // partial view: skip

  // (round, transmitter) -> channel of the on-air transmission.
  std::map<std::pair<Round, NodeId>, Channel> onAir;
  for (const TraceEvent& e : trace.events()) {
    if (e.type != TraceEventType::kTransmit) continue;
    if (e.channel >= channelCount) {
      std::ostringstream os;
      os << "transmit by " << e.node << " at round " << e.round
         << " on out-of-range channel " << e.channel;
      issues.push_back(os.str());
    }
    onAir[{e.round, e.node}] = e.channel;
  }

  const auto neighborsOnAir = [&](NodeId v, Round r, Channel c) {
    std::vector<NodeId> hits;
    for (NodeId u : g.neighbors(v)) {
      auto it = onAir.find({r, u});
      if (it != onAir.end() && it->second == c) hits.push_back(u);
    }
    return hits;
  };

  for (const TraceEvent& e : trace.events()) {
    if (e.type == TraceEventType::kReceive) {
      std::ostringstream os;
      if (onAir.count({e.round, e.node})) {
        os << "node " << e.node << " both transmitted and received at round "
           << e.round;
        issues.push_back(os.str());
        continue;
      }
      const auto hits = neighborsOnAir(e.node, e.round, e.channel);
      if (hits.size() != 1) {
        os << "receive at node " << e.node << " round " << e.round
           << " channel " << e.channel << " backed by " << hits.size()
           << " on-air neighbor transmissions (need exactly 1)";
        issues.push_back(os.str());
      } else if (hits.front() != e.peer) {
        os << "receive at node " << e.node << " round " << e.round
           << " names transmitter " << e.peer << " but " << hits.front()
           << " was on air";
        issues.push_back(os.str());
      }
    } else if (e.type == TraceEventType::kCollision) {
      const auto hits = neighborsOnAir(e.node, e.round, e.channel);
      if (hits.size() < 2) {
        std::ostringstream os;
        os << "collision at node " << e.node << " round " << e.round
           << " channel " << e.channel << " backed by only " << hits.size()
           << " on-air neighbor transmissions (need >= 2)";
        issues.push_back(os.str());
      }
    }
  }
  return issues;
}

}  // namespace dsn::testkit
