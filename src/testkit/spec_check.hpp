// Spec-level invariant oracle: the paper's rules re-derived from scratch.
//
// Unlike cluster/validate.cpp (which the library itself ships and which
// leans on ClusterNet's own interference/condition helpers), this checker
// recomputes every structural rule and the TDMA non-conflict conditions
// directly from the primitive queries — graph adjacency, statuses,
// parents/children, depths and raw slot numbers — so a bug in the
// library's derived helpers cannot hide itself from the oracle. The fuzz
// harness runs both and flags any disagreement.
#pragma once

#include <string>
#include <vector>

#include "cluster/cnet.hpp"

namespace dsn::testkit {

/// One spec violation: a stable kebab-case class plus prose.
struct SpecIssue {
  std::string cls;
  NodeId node = kInvalidNode;
  std::string message;
};

/// Classes emitted: "spec-stale", "spec-root", "spec-tree",
/// "spec-status", "spec-head-adjacency", "spec-domination",
/// "spec-slot-presence", "spec-u-conflict", "spec-b-conflict",
/// "spec-l-conflict", "spec-up-conflict", "spec-window".
std::vector<SpecIssue> checkSpec(const ClusterNet& net);

/// Joins issue messages for error reporting ("" when clean).
std::string describeIssues(const std::vector<SpecIssue>& issues);

}  // namespace dsn::testkit
