#include "testkit/spec_check.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dsn::testkit {

namespace {

class SpecChecker {
 public:
  explicit SpecChecker(const ClusterNet& net) : net_(net), g_(net.graph()) {}

  std::vector<SpecIssue> run() {
    nodes_ = net_.netNodes();
    if (nodes_.empty()) {
      if (net_.root() != kInvalidNode)
        add("spec-root", kInvalidNode, "empty net with a root set");
      return std::move(issues_);
    }
    bool stale = false;
    for (NodeId v : nodes_) {
      if (!g_.isAlive(v)) {
        stale = true;
        std::ostringstream os;
        os << "net references graph-dead node " << v;
        add("spec-stale", v, os.str());
      }
    }
    if (stale) return std::move(issues_);
    inNet_.assign(g_.size(), false);
    for (NodeId v : nodes_) inNet_[v] = true;
    checkTree();
    checkStatuses();
    checkProperty1();
    checkSlotPresence();
    checkFloodConflicts();
    checkUpConflicts();
    checkWindows();
    return std::move(issues_);
  }

 private:
  const ClusterNet& net_;
  const Graph& g_;
  std::vector<NodeId> nodes_;
  std::vector<bool> inNet_;
  std::vector<SpecIssue> issues_;

  void add(const char* cls, NodeId node, std::string message) {
    issues_.push_back(SpecIssue{cls, node, std::move(message)});
  }

  // Depth of v re-derived by walking its parent chain (not net.depth).
  // Returns -1 on a cycle or a chain that never reaches the root.
  int chainDepth(NodeId v) const {
    int d = 0;
    NodeId u = v;
    while (u != net_.root()) {
      u = net_.parent(u);
      if (u == kInvalidNode || ++d > static_cast<int>(nodes_.size()))
        return -1;
    }
    return d;
  }

  void checkTree() {
    const NodeId root = net_.root();
    if (root == kInvalidNode || !net_.contains(root)) {
      add("spec-tree", root, "no root in a non-empty net");
      return;
    }
    if (net_.parent(root) != kInvalidNode)
      add("spec-tree", root, "root has a parent");
    for (NodeId v : nodes_) {
      const NodeId p = net_.parent(v);
      if (v != root) {
        if (p == kInvalidNode || !net_.contains(p)) {
          std::ostringstream os;
          os << "non-root node " << v << " has no parent in the net";
          add("spec-tree", v, os.str());
          continue;
        }
        // Parent link must be a real radio edge and must be mirrored in
        // the parent's child list.
        if (!g_.hasEdge(p, v)) {
          std::ostringstream os;
          os << "tree link " << p << "->" << v << " is not an edge of G";
          add("spec-tree", v, os.str());
        }
        const auto& pc = net_.children(p);
        if (std::find(pc.begin(), pc.end(), v) == pc.end()) {
          std::ostringstream os;
          os << "node " << v << " missing from children of its parent "
             << p;
          add("spec-tree", v, os.str());
        }
      }
      for (NodeId c : net_.children(v)) {
        if (!net_.contains(c) || net_.parent(c) != v) {
          std::ostringstream os;
          os << "child list of " << v << " holds " << c
             << " whose parent link disagrees";
          add("spec-tree", v, os.str());
        }
      }
      const int d = chainDepth(v);
      if (d < 0) {
        std::ostringstream os;
        os << "parent chain of " << v << " never reaches the root";
        add("spec-tree", v, os.str());
      } else if (d != net_.depth(v)) {
        std::ostringstream os;
        os << "stored depth of " << v << " (" << net_.depth(v)
           << ") != parent-chain length " << d;
        add("spec-tree", v, os.str());
      }
    }
  }

  void checkStatuses() {
    const NodeId root = net_.root();
    if (net_.status(root) != NodeStatus::kClusterHead)
      add("spec-status", root, "root is not a cluster-head");
    for (NodeId v : nodes_) {
      const NodeStatus s = net_.status(v);
      const NodeId p = net_.parent(v);
      const bool parentHead =
          p != kInvalidNode && net_.status(p) == NodeStatus::kClusterHead;
      std::ostringstream os;
      switch (s) {
        case NodeStatus::kPureMember:
          if (!net_.children(v).empty()) {
            os << "pure-member " << v << " is not a leaf";
            add("spec-status", v, os.str());
          } else if (!parentHead) {
            os << "pure-member " << v << " not hanging off a head";
            add("spec-status", v, os.str());
          }
          break;
        case NodeStatus::kGateway:
          if (!parentHead) {
            os << "gateway " << v << " not hanging off a head";
            add("spec-status", v, os.str());
          }
          for (NodeId c : net_.children(v))
            if (net_.status(c) != NodeStatus::kClusterHead) {
              std::ostringstream o2;
              o2 << "gateway " << v << " has non-head child " << c;
              add("spec-status", v, o2.str());
            }
          break;
        case NodeStatus::kClusterHead:
          if (p != kInvalidNode &&
              net_.status(p) != NodeStatus::kGateway) {
            os << "head " << v << " under non-gateway parent " << p;
            add("spec-status", v, os.str());
          }
          break;
      }
      // Backbone alternation: heads on even depths, gateways on odd.
      if (s == NodeStatus::kClusterHead && net_.depth(v) % 2 != 0) {
        std::ostringstream o3;
        o3 << "head " << v << " at odd depth " << net_.depth(v);
        add("spec-status", v, o3.str());
      }
      if (s == NodeStatus::kGateway && net_.depth(v) % 2 != 1) {
        std::ostringstream o3;
        o3 << "gateway " << v << " at even depth " << net_.depth(v);
        add("spec-status", v, o3.str());
      }
    }
  }

  void checkProperty1() {
    for (NodeId v : nodes_) {
      if (net_.status(v) != NodeStatus::kClusterHead) continue;
      bool dominatedSelf = true;  // heads dominate themselves
      (void)dominatedSelf;
      for (NodeId u : g_.neighbors(v)) {
        if (u > v && inNet_[u] &&
            net_.status(u) == NodeStatus::kClusterHead) {
          std::ostringstream os;
          os << "adjacent heads " << v << " and " << u;
          add("spec-head-adjacency", v, os.str());
        }
      }
    }
    for (NodeId v : nodes_) {
      if (net_.status(v) == NodeStatus::kClusterHead) continue;
      bool dominated = false;
      for (NodeId u : g_.neighbors(v))
        if (inNet_[u] && net_.status(u) == NodeStatus::kClusterHead) {
          dominated = true;
          break;
        }
      if (!dominated) {
        std::ostringstream os;
        os << "node " << v << " has no head neighbor";
        add("spec-domination", v, os.str());
      }
    }
  }

  /// Transmit slots are assigned lazily (a backbone node gets one only
  /// when some listener needs it), so presence is one-directional: pure
  /// members must carry NO transmit slot, and every non-root node must
  /// hold a convergecast up-slot.
  void checkSlotPresence() {
    for (NodeId v : nodes_) {
      if (net_.status(v) == NodeStatus::kPureMember &&
          (net_.bSlot(v) != kNoSlot || net_.lSlot(v) != kNoSlot ||
           net_.uSlot(v) != kNoSlot)) {
        std::ostringstream os;
        os << "pure-member " << v << " carries a transmit slot";
        add("spec-slot-presence", v, os.str());
      }
      if (v != net_.root() && net_.upSlot(v) == kNoSlot) {
        std::ostringstream o2;
        o2 << "non-root node " << v << " has no up-slot";
        add("spec-slot-presence", v, o2.str());
      }
    }
  }

  /// A listener hears collision-free iff some transmitter in its window
  /// holds a slot unique within the transmitter set. Recomputed directly
  /// from adjacency + statuses + depths + raw slots.
  template <typename SlotFn>
  bool uniquelyServed(const std::vector<NodeId>& transmitters,
                      SlotFn slotOf) const {
    for (NodeId t : transmitters) {
      const TimeSlot s = slotOf(t);
      if (s == kNoSlot) continue;
      bool unique = true;
      for (NodeId o : transmitters)
        if (o != t && slotOf(o) == s) {
          unique = false;
          break;
        }
      if (unique) return true;
    }
    return false;
  }

  void checkFloodConflicts() {
    const bool strict = net_.config().slotPolicy == SlotPolicy::kStrict;
    for (NodeId v : nodes_) {
      const Depth d = net_.depth(v);
      const bool backbone = net_.status(v) != NodeStatus::kPureMember;

      // Algorithm 1 (u-slots): every non-root node listens to its
      // previous-depth backbone neighbors.
      if (v != net_.root()) {
        std::vector<NodeId> prev;
        for (NodeId u : g_.neighbors(v))
          if (inNet_[u] && net_.status(u) != NodeStatus::kPureMember &&
              net_.depth(u) == d - 1)
            prev.push_back(u);
        if (prev.empty()) {
          std::ostringstream os;
          os << "node " << v << " has no previous-depth backbone neighbor";
          add("spec-u-conflict", v, os.str());
        } else if (!uniquelyServed(
                       prev, [&](NodeId t) { return net_.uSlot(t); })) {
          std::ostringstream os;
          os << "no uniquely u-slotted provider for listener " << v;
          add("spec-u-conflict", v, os.str());
        }
        // Algorithm 2 step 1 (b-slots): backbone listeners only.
        if (backbone &&
            !uniquelyServed(prev,
                            [&](NodeId t) { return net_.bSlot(t); })) {
          std::ostringstream os;
          os << "no uniquely b-slotted provider for backbone listener "
             << v;
          add("spec-b-conflict", v, os.str());
        }
      }

      // Algorithm 2 step 2 (l-slots): a pure member listens during ONE
      // shared window in which — under the strict policy — every
      // backbone neighbor transmits; under the paper-local policy only
      // the previous-depth ones are considered.
      if (!backbone) {
        std::vector<NodeId> trans;
        for (NodeId u : g_.neighbors(v))
          if (inNet_[u] && net_.status(u) != NodeStatus::kPureMember &&
              (strict || net_.depth(u) == d - 1))
            trans.push_back(u);
        if (trans.empty()) {
          std::ostringstream os;
          os << "member " << v << " has no backbone neighbor";
          add("spec-l-conflict", v, os.str());
        } else if (!uniquelyServed(
                       trans, [&](NodeId t) { return net_.lSlot(t); })) {
          std::ostringstream os;
          os << "no uniquely l-slotted provider for member " << v;
          add("spec-l-conflict", v, os.str());
        }
      }
    }
  }

  /// Convergecast: v's parent must be able to hear v — no other net node
  /// at v's depth within the parent's radio range may share v's up-slot.
  /// (Assignment guards a stronger property over every potential
  /// previous-depth listener, but churn erodes the slack; only the
  /// parent edge is load-bearing for the gather wave.)
  void checkUpConflicts() {
    for (NodeId v : nodes_) {
      if (v == net_.root()) continue;
      const TimeSlot mine = net_.upSlot(v);
      if (mine == kNoSlot) continue;  // reported by checkSlotPresence
      const NodeId p = net_.parent(v);
      if (p == kInvalidNode || !net_.contains(p)) continue;  // spec-tree
      const Depth d = net_.depth(v);
      for (NodeId u : g_.neighbors(p)) {
        if (u == v || !inNet_[u]) continue;
        if (net_.depth(u) == d && net_.upSlot(u) == mine) {
          std::ostringstream os;
          os << "parent " << p << " of " << v << " also hears " << u
             << " on up-slot " << mine;
          add("spec-up-conflict", v, os.str());
          break;
        }
      }
    }
  }

  void checkWindows() {
    TimeSlot maxB = 0, maxL = 0, maxU = 0, maxUp = 0;
    for (NodeId v : nodes_) {
      if (net_.bSlot(v) != kNoSlot) maxB = std::max(maxB, net_.bSlot(v));
      if (net_.lSlot(v) != kNoSlot) maxL = std::max(maxL, net_.lSlot(v));
      if (net_.uSlot(v) != kNoSlot) maxU = std::max(maxU, net_.uSlot(v));
      if (net_.upSlot(v) != kNoSlot)
        maxUp = std::max(maxUp, net_.upSlot(v));
    }
    const auto check = [&](const char* what, TimeSlot rootKnown,
                           TimeSlot trueMax) {
      if (rootKnown < trueMax) {
        std::ostringstream os;
        os << "root window knowledge for " << what << " (" << rootKnown
           << ") below a live slot (" << trueMax << ")";
        add("spec-window", net_.root(), os.str());
      }
    };
    check("b", net_.rootMaxBSlot(), maxB);
    check("l", net_.rootMaxLSlot(), maxL);
    check("u", net_.rootMaxUSlot(), maxU);
    check("up", net_.rootMaxUpSlot(), maxUp);
  }
};

}  // namespace

std::vector<SpecIssue> checkSpec(const ClusterNet& net) {
  return SpecChecker(net).run();
}

std::string describeIssues(const std::vector<SpecIssue>& issues) {
  std::ostringstream os;
  for (std::size_t i = 0; i < issues.size(); ++i) {
    if (i) os << "; ";
    os << issues[i].cls << ": " << issues[i].message;
  }
  return os.str();
}

}  // namespace dsn::testkit
