// Reference radio oracle for the fuzz harness.
//
// Three independent re-derivations of what a CFF broadcast must do:
//
//  1. buildCffPlan / runCffPlan — the Algorithm-1 schedule assembly of
//     runCffBroadcast, split out so a test can corrupt the plan (inject a
//     slot-assignment bug) and run the corrupted plan through the REAL
//     RadioSimulator. This is the seam the "deliberately injected bug is
//     caught and shrunk" acceptance check uses.
//  2. runCffPlanReference — a naive O(V·E)-per-round simulator that drives
//     the same CffNodeProtocol state machines but recomputes every
//     delivery and collision from first principles (scan each listener's
//     neighborhood, count matching transmitters) without touching
//     radio/channel.cpp. Differential against runCffPlan it cross-checks
//     the production collision-resolution core.
//  3. checkTraceConsistency — validates a recorded event trace against
//     the radio axioms: every receive is justified by exactly one on-air
//     neighbor transmission on that (round, channel), every collision by
//     at least two. Scheme- and fault-agnostic.
#pragma once

#include <string>
#include <vector>

#include "broadcast/cff_flooding.hpp"
#include "cluster/cnet.hpp"
#include "radio/trace.hpp"

namespace dsn::testkit {

/// A fully assembled Algorithm-1 broadcast schedule: everything
/// runCffBroadcast derives from the ClusterNet before simulation starts.
struct CffPlan {
  std::vector<CffNodeConfig> configs;  ///< one per intended (alive) node
  std::vector<NodeId> intended;
  Round scheduleLength = 0;
  Round maxRounds = 0;
  Channel channels = 1;
};

/// Replicates runCffBroadcast's plan assembly (source->root path, window
/// size, per-node slots/windows) without running anything.
CffPlan buildCffPlan(const ClusterNet& net, NodeId source,
                     std::uint64_t payload,
                     const ProtocolOptions& options = {});

/// Runs a (possibly corrupted) plan through the real RadioSimulator.
/// With an unmodified plan this is behaviourally identical to
/// runCffBroadcast(net, source, payload, options).
BroadcastRun runCffPlan(const ClusterNet& net, const CffPlan& plan,
                        const ProtocolOptions& options = {});

/// Result of the first-principles reference simulation.
struct ReferenceRun {
  std::size_t intended = 0;
  std::size_t delivered = 0;
  std::size_t transmissions = 0;
  std::size_t collisions = 0;
  bool completed = false;
  Round rounds = 0;
  /// Indexed by node id; -1 = never received (source = 0).
  std::vector<Round> deliveryRound;
};

/// Fault-free naive simulation of `plan` over `g`: per round, per
/// listener, per channel, scan the whole neighborhood and count
/// transmitters. Deliberately shares no code with radio/channel.cpp.
ReferenceRun runCffPlanReference(const Graph& g, const CffPlan& plan);

/// Corrupts `plan` to recreate the classic TDMA bug class: picks a
/// listener with >= 2 previous-depth backbone transmitter neighbors and
/// assigns all of them the same u-slot, so they collide at that listener
/// every time and it can never receive. Returns false (plan untouched)
/// when no vulnerable listener exists. The corruption is detected by the
/// unconditional coverage oracle: the starved listener never receives,
/// so a fault-free plan run reports coverage < 1.
bool injectCffSlotCollision(CffPlan& plan, const ClusterNet& net);

/// Checks a recorded trace against the radio axioms; returns
/// human-readable inconsistencies (empty = consistent). Sound for every
/// scheme and fault regime (jammed/dropped transmissions are distinct
/// event types and never justify a receive). If the trace overflowed its
/// capacity (droppedEvents() > 0) the view is partial and the check is
/// skipped — callers wanting completeness must size traceCapacity so
/// nothing is dropped.
std::vector<std::string> checkTraceConsistency(const Trace& trace,
                                               const Graph& g,
                                               Channel channelCount);

}  // namespace dsn::testkit
