#include "testkit/shrink.hpp"

#include <algorithm>
#include <sstream>

#include "testkit/seeds.hpp"
#include "util/error.hpp"

namespace dsn::testkit {

namespace {

class Shrinker {
 public:
  Shrinker(const FuzzProgram& failing, const EpisodeOptions& options)
      : options_(options), best_(failing) {}

  ShrinkResult run() {
    bestResult_ = episode(best_);
    DSN_REQUIRE(!bestResult_.ok,
                "shrinkProgram: the input program does not fail");

    deletionPass();
    bisectNodeCount();
    deletionPass();  // node removal can unlock further op deletions

    ShrinkResult out;
    out.program = best_;
    out.failure = bestResult_;
    out.episodesRun = episodesRun_;
    out.scenarioText = renderScenario();
    return out;
  }

 private:
  const EpisodeOptions& options_;
  FuzzProgram best_;
  EpisodeResult bestResult_;
  std::size_t episodesRun_ = 0;

  EpisodeResult episode(const FuzzProgram& p) {
    ++episodesRun_;
    return runEpisode(p, options_);
  }

  /// Tries `candidate`; adopts it when it still fails.
  bool tryAdopt(const FuzzProgram& candidate) {
    EpisodeResult r = episode(candidate);
    if (r.ok) return false;
    best_ = candidate;
    bestResult_ = std::move(r);
    return true;
  }

  /// ddmin-style chunked op deletion, iterated to a fixpoint.
  void deletionPass() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t chunk = std::max<std::size_t>(best_.ops.size() / 2, 1);
           chunk >= 1; chunk /= 2) {
        for (std::size_t at = 0; at < best_.ops.size();) {
          FuzzProgram candidate = best_;
          const std::size_t end = std::min(at + chunk, candidate.ops.size());
          candidate.ops.erase(candidate.ops.begin() + static_cast<long>(at),
                              candidate.ops.begin() + static_cast<long>(end));
          if (tryAdopt(candidate)) {
            progress = true;  // same `at` now addresses the next chunk
          } else {
            at += chunk;
          }
        }
        if (chunk == 1) break;
      }
    }
  }

  /// Smallest node count that still fails. Sound because the deployment
  /// at count m is a prefix of the deployment at count n > m (same
  /// deploy seed); non-monotone failures merely make the result
  /// suboptimal, never wrong (every adopted candidate re-ran and failed).
  void bisectNodeCount() {
    std::size_t lo = 2, hi = best_.nodeCount;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      FuzzProgram candidate = best_;
      candidate.nodeCount = mid;
      if (tryAdopt(candidate)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }

  std::string renderScenario() const {
    std::ostringstream os;
    os << "# dsnet fuzz failure (minimized)\n";
    os << "# class: " << bestResult_.failureClass << "\n";
    os << "# " << bestResult_.message << "\n";
    os << "# episode seed: " << best_.seed << "\n";
    os << "# replay: wsn_sim --nodes " << best_.nodeCount << " --seed "
       << deploySeed(best_.seed) << " --field " << best_.fieldUnits
       << " --range " << best_.range << " --scenario <this file>\n";
    os << "# (wsn_sim replays the op sequence; the oracle battery itself\n";
    os << "#  reruns with: wsn_fuzz --replay-seed " << best_.seed << ")\n";
    os << formatScenario(bestResult_.executed);
    return os.str();
  }
};

}  // namespace

ShrinkResult shrinkProgram(const FuzzProgram& failing,
                           const EpisodeOptions& options) {
  return Shrinker(failing, options).run();
}

}  // namespace dsn::testkit
