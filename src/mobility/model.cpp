#include "mobility/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dsn::mobility {

namespace {

/// Moves `from` toward `to` by at most `step`, arriving exactly when the
/// remaining distance is within one step.
Point2D stepToward(const Point2D& from, const Point2D& to, double step) {
  const double dx = to.x - from.x;
  const double dy = to.y - from.y;
  const double dist = std::sqrt(dx * dx + dy * dy);
  if (dist <= step || dist == 0.0) return to;
  const double f = step / dist;
  return Point2D{from.x + dx * f, from.y + dy * f};
}

Point2D clampToField(const Point2D& p, const Field& f) {
  return Point2D{std::clamp(p.x, 0.0, f.width), std::clamp(p.y, 0.0, f.height)};
}

}  // namespace

// ---- RandomWaypointModel ----

RandomWaypointModel::RandomWaypointModel(const WaypointConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  DSN_REQUIRE(cfg_.speed > 0.0, "waypoint speed must be positive");
  if (cfg_.period <= 0) cfg_.period = 1;
}

Point2D RandomWaypointModel::drawTarget() {
  return Point2D{rng_.uniformReal(0.0, cfg_.field.width),
                 rng_.uniformReal(0.0, cfg_.field.height)};
}

void RandomWaypointModel::track(NodeId v, const Point2D& at) {
  if (state_.count(v) != 0) {
    state_[v].at = at;
    return;
  }
  ids_.push_back(v);
  state_[v] = State{at, drawTarget()};
}

void RandomWaypointModel::forget(NodeId v) {
  if (state_.erase(v) != 0)
    ids_.erase(std::remove(ids_.begin(), ids_.end(), v), ids_.end());
}

void RandomWaypointModel::updates(Round now, std::vector<MobilityUpdate>& out) {
  if (now % cfg_.period != 0) return;
  for (NodeId v : ids_) {
    State& s = state_[v];
    if (s.at == s.target) s.target = drawTarget();
    s.at = stepToward(s.at, s.target, cfg_.speed);
    out.push_back(MobilityUpdate{v, s.at});
  }
}

// ---- GroupMobilityModel ----

GroupMobilityModel::GroupMobilityModel(const GroupMobilityConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  DSN_REQUIRE(cfg_.speed > 0.0, "group speed must be positive");
  if (cfg_.period <= 0) cfg_.period = 1;
}

Point2D GroupMobilityModel::drawTarget() {
  return Point2D{rng_.uniformReal(0.0, cfg_.field.width),
                 rng_.uniformReal(0.0, cfg_.field.height)};
}

void GroupMobilityModel::addGroup(
    const std::vector<std::pair<NodeId, Point2D>>& members) {
  DSN_REQUIRE(!members.empty(), "addGroup: empty group");
  Group g;
  for (const auto& [v, p] : members) {
    g.center.x += p.x;
    g.center.y += p.y;
  }
  g.center.x /= static_cast<double>(members.size());
  g.center.y /= static_cast<double>(members.size());
  g.target = drawTarget();
  for (const auto& [v, p] : members)
    g.members.push_back(
        Member{v, Point2D{p.x - g.center.x, p.y - g.center.y}});
  groups_.push_back(std::move(g));
}

void GroupMobilityModel::forget(NodeId v) {
  for (Group& g : groups_) {
    g.members.erase(std::remove_if(g.members.begin(), g.members.end(),
                                   [v](const Member& m) { return m.node == v; }),
                    g.members.end());
  }
}

void GroupMobilityModel::updates(Round now, std::vector<MobilityUpdate>& out) {
  if (now % cfg_.period != 0) return;
  for (Group& g : groups_) {
    if (g.center == g.target) g.target = drawTarget();
    g.center = stepToward(g.center, g.target, cfg_.speed);
    for (const Member& m : g.members) {
      // The jitter draw happens for every member every tick, dead or
      // alive groups aside, purely in tracked order: the RNG stream is a
      // function of the call sequence alone.
      const double jx = rng_.uniformReal(-cfg_.jitter, cfg_.jitter);
      const double jy = rng_.uniformReal(-cfg_.jitter, cfg_.jitter);
      const Point2D p = clampToField(
          Point2D{g.center.x + m.offset.x + jx, g.center.y + m.offset.y + jy},
          cfg_.field);
      out.push_back(MobilityUpdate{m.node, p});
    }
  }
}

// ---- ScriptedMobilityModel ----

void ScriptedMobilityModel::schedule(Round r, NodeId v, const Point2D& to) {
  if (!script_.empty() && r < script_.back().round) sorted_ = false;
  script_.push_back(Entry{r, MobilityUpdate{v, to}});
}

void ScriptedMobilityModel::forget(NodeId v) {
  // Drop every not-yet-emitted move of the departed node.
  const auto begin = script_.begin() + static_cast<std::ptrdiff_t>(cursor_);
  script_.erase(std::remove_if(begin, script_.end(),
                               [v](const Entry& e) {
                                 return e.update.node == v;
                               }),
                script_.end());
}

void ScriptedMobilityModel::updates(Round now,
                                    std::vector<MobilityUpdate>& out) {
  if (!sorted_) {
    std::stable_sort(script_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                     script_.end(), [](const Entry& a, const Entry& b) {
                       return a.round < b.round;
                     });
    sorted_ = true;
  }
  while (cursor_ < script_.size() && script_[cursor_].round <= now) {
    if (script_[cursor_].round == now) out.push_back(script_[cursor_].update);
    ++cursor_;
  }
}

}  // namespace dsn::mobility
