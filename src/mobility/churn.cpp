#include "mobility/churn.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dsn::mobility {

ChurnEngine::ChurnEngine(SensorNetwork& net, MobilityModel* model,
                         ChurnConfig cfg)
    : net_(net), model_(model), cfg_(cfg), rng_(cfg.seed) {
  // Until the first real rebuild, estimate its cost by the structure's
  // own construction cost (costs() accumulates from the initial build).
  rebuildEstimate_ = std::max<double>(
      1.0, static_cast<double>(net_.clusterNet().costs().total()));
}

std::size_t ChurnEngine::sampleCount(double rate) {
  if (rate <= 0.0) return 0;
  const double whole = std::floor(rate);
  std::size_t n = static_cast<std::size_t>(whole);
  if (rng_.chance(rate - whole)) ++n;
  return n;
}

NodeId ChurnEngine::pickNetNode() {
  const auto nodes = net_.clusterNet().netNodes();
  if (nodes.empty()) return kInvalidNode;
  return nodes[rng_.pickIndex(nodes)];
}

ChurnTick ChurnEngine::tick(Round now) {
  ChurnTick t;
  ++totals_.ticks;
  const std::int64_t costBefore = net_.clusterNet().costs().total();
  bool structural = false;

  // 1. Motion: every model update is one incremental withdraw + re-join.
  scratch_.clear();
  if (model_ != nullptr) model_->updates(now, scratch_);
  for (const MobilityUpdate& u : scratch_) {
    if (!net_.graph().isAlive(u.node)) continue;
    net_.moveSensor(u.node, u.to);
    ++t.moves;
    t.disturbed.push_back(u.node);
    structural = true;
  }

  // 2. Voluntary departures: the cooperative node-move-out protocol.
  const std::size_t leaves = sampleCount(cfg_.leaveRate);
  for (std::size_t i = 0; i < leaves; ++i) {
    if (net_.size() <= 2) break;
    const NodeId v = pickNetNode();
    if (v == kInvalidNode || !net_.graph().isAlive(v)) continue;
    if (model_ != nullptr) model_->forget(v);
    net_.removeSensor(v);
    ++t.leaves;
    t.disturbed.push_back(v);
    structural = true;
  }

  // 3. Crashes: uncooperative deaths, repaired below (batched per tick).
  const std::size_t crashes = sampleCount(cfg_.crashRate);
  for (std::size_t i = 0; i < crashes; ++i) {
    if (net_.size() <= 2) break;
    const NodeId v = pickNetNode();
    if (v == kInvalidNode || !net_.graph().isAlive(v)) continue;
    if (model_ != nullptr) model_->forget(v);
    net_.crashSensor(v);
    ++t.crashes;
    t.disturbed.push_back(v);
    structural = true;
  }

  // 4. Fresh deployments: node-move-in at a random field position.
  const std::size_t joins = sampleCount(cfg_.joinRate);
  for (std::size_t i = 0; i < joins; ++i) {
    const Point2D p{rng_.uniformReal(0.0, cfg_.field.width),
                    rng_.uniformReal(0.0, cfg_.field.height)};
    net_.addSensor(p);
    ++t.joins;
    structural = true;
  }

  // 5. Repair per policy. The incremental debt this tick contributed is
  // metered before any rebuild resets the cost baseline.
  if (structural) {
    repair(t);
    const std::int64_t delta =
        net_.clusterNet().costs().total() - costBefore;
    if (!t.rebuilt) {
      totals_.incrementalCost += delta;
      debt_ += static_cast<double>(delta);
    }

    const bool wantRebuild =
        cfg_.policy == RepairPolicy::kRebuild ||
        (cfg_.policy == RepairPolicy::kAdaptive &&
         debt_ > cfg_.debtFactor * rebuildEstimate_);
    if (wantRebuild && !t.rebuilt) {
      const RoundCost rc = net_.rebuildStructure();
      t.rebuilt = true;
      ++totals_.rebuilds;
      totals_.rebuildCost += rc.total();
      rebuildEstimate_ = std::max(1.0, static_cast<double>(rc.total()));
      debt_ = 0.0;
    }
    validateStructure(t);
  }

  totals_.moves += t.moves;
  totals_.leaves += t.leaves;
  totals_.crashes += t.crashes;
  totals_.joins += t.joins;
  bumpCounters(t);
  return t;
}

void ChurnEngine::repair(ChurnTick& t) {
  if (!net_.hasStaleStructure()) return;
  net_.repairAfterFailures();
  t.repaired = true;
  ++totals_.repairs;
}

void ChurnEngine::validateStructure(ChurnTick& t) {
  if (!cfg_.validateAfterRepair) return;
  ++totals_.validations;
  if (!net_.validate().ok()) {
    t.validated = false;
    ++totals_.validationFailures;
  }
}

void ChurnEngine::bumpCounters(const ChurnTick& t) {
  if (!obs::enabled()) return;
  auto& m = obs::globalMetrics();
  if (t.moves != 0) m.counter("cluster.churn.moves").increment(t.moves);
  if (t.crashes != 0) m.counter("cluster.churn.crashes").increment(t.crashes);
  if (t.joins != 0) m.counter("cluster.churn.joins").increment(t.joins);
  if (t.leaves != 0) m.counter("cluster.churn.leaves").increment(t.leaves);
  if (t.repaired) m.counter("cluster.churn.repairs").increment();
  // cluster.churn.rebuilds is metered inside rebuildStructure().
}

}  // namespace dsn::mobility
