#include "mobility/campaign.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace dsn::mobility {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

void fold(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

}  // namespace

CampaignResult runMobilityCampaign(SensorNetwork& net, ChurnEngine& churn,
                                   const CampaignConfig& cfg) {
  CampaignResult res;
  Rng srcRng(cfg.sourceSeed);
  std::uint64_t digest = kFnvOffset;
  std::uint64_t payload = cfg.payloadBase;

  const Round step = std::max<Round>(1, cfg.churnPeriod);
  std::unique_ptr<InFlightBroadcast> wave;
  Round waveStart = 0;
  Round nextWave = 0;

  // Per-wave options; positions are filled when the sharded scheduler
  // (or a jam zone) needs them and refreshed at every resync.
  const auto makeOptions = [&]() {
    ProtocolOptions opt = cfg.protocol;
    const bool needsPositions = opt.threads > 0 || !opt.jamZones.empty();
    if (needsPositions && opt.nodePositions.empty()) {
      const std::size_t n = net.graph().size();
      opt.nodePositions.resize(n);
      for (NodeId v = 0; v < n; ++v)
        if (net.index().contains(v)) opt.nodePositions[v] = net.index().position(v);
      if (opt.threads > 0 && opt.tileMinEdge <= 0.0)
        opt.tileMinEdge = net.range();
    }
    return opt;
  };

  const auto finalizeWave = [&](InFlightBroadcast& w) {
    w.runToCompletion();
    // A receiver that churn severed from the net entirely (orphaned by a
    // repair pass, without moving itself) was disrupted as surely as one
    // that moved: it leaves the settled class. No repair wave can reach
    // a node outside the structure, and the ≥99% gate is over reachable
    // settled receivers.
    for (NodeId v : w.intended()) {
      if (net.graph().isAlive(v) && !net.clusterNet().contains(v))
        w.noteDisplaced(v);
    }
    const InFlightReport r = w.finish();
    ++res.waves;
    res.intended += r.intended;
    res.delivered += r.delivered;
    res.departed += r.departed;
    res.displaced += r.displaced;
    res.settled += r.settled;
    res.settledFirstWave += r.deliveredSettled;

    // Settled receivers the primary wave missed (a relay died or moved
    // out from over them mid-flight).
    std::vector<NodeId> missing;
    for (NodeId v : w.intended()) {
      if (net.graph().isAlive(v) && !w.wasDisplaced(v) && !w.deliveredTo(v))
        missing.push_back(v);
    }

    std::size_t covered = r.deliveredSettled;
    if (cfg.repairWaves) {
      for (std::size_t attempt = 0;
           attempt < cfg.maxRepairWaves && !missing.empty(); ++attempt) {
        // The repaired structure may have dropped some of them (orphaned
        // outside the net); those are unreachable, not retried.
        missing.erase(std::remove_if(missing.begin(), missing.end(),
                                     [&](NodeId v) {
                                       return !net.clusterNet().contains(v);
                                     }),
                      missing.end());
        if (missing.empty() || net.size() < 2) break;
        if (net.hasStaleStructure()) net.repairAfterFailures();
        const NodeId src = net.randomNode(srcRng);
        InFlightBroadcast repairWave(net.clusterNet(), cfg.scheme, src,
                                     payload++, makeOptions());
        repairWave.runToCompletion();
        ++res.repairWavesRun;
        std::vector<NodeId> still;
        for (NodeId v : missing) {
          if (repairWave.deliveredTo(v))
            ++covered;
          else
            still.push_back(v);
        }
        missing.swap(still);
      }
    }
    res.settledCovered += covered;

    fold(digest, r.intended);
    fold(digest, r.delivered);
    fold(digest, r.departed);
    fold(digest, r.displaced);
    fold(digest, r.settled);
    fold(digest, r.deliveredSettled);
    fold(digest, covered);
    fold(digest, static_cast<std::uint64_t>(r.sim.rounds));
    fold(digest, r.transmissions);
    fold(digest, r.collisions);
    fold(digest, static_cast<std::uint64_t>(r.lastDeliveryRound + 1));
  };

  for (Round r = 0; r < cfg.rounds; r += step) {
    // Admit a wave on schedule — on a clean structure, from a random
    // in-net source.
    if (!wave && r >= nextWave) {
      nextWave = r + cfg.wavePeriod;
      if (net.size() >= 2) {
        if (net.hasStaleStructure()) net.repairAfterFailures();
        const NodeId src = net.randomNode(srcRng);
        wave = std::make_unique<InFlightBroadcast>(
            net.clusterNet(), cfg.scheme, src, payload++, makeOptions());
        waveStart = r;
      }
    }

    // Advance the in-flight wave one segment.
    if (wave) {
      wave->advanceTo(r + step - waveStart);
      if (wave->finished()) {
        finalizeWave(*wave);
        wave.reset();
      }
    }

    // Perturb the world, then resync the paused wave through the seam.
    const ChurnTick t = churn.tick(r);
    if (wave) {
      for (NodeId v : t.disturbed) wave->noteDisplaced(v);
      wave->refreshPositions(net.index());
      wave->onTopologyChanged();
    }
  }
  if (wave) {
    finalizeWave(*wave);
    wave.reset();
  }

  res.roundsRun = cfg.rounds;
  res.churn = churn.totals();
  fold(digest, res.churn.moves);
  fold(digest, res.churn.crashes);
  fold(digest, res.churn.joins);
  fold(digest, res.churn.leaves);
  fold(digest, res.churn.repairs);
  fold(digest, res.churn.rebuilds);
  fold(digest, static_cast<std::uint64_t>(res.churn.incrementalCost));
  fold(digest, static_cast<std::uint64_t>(res.churn.rebuildCost));
  fold(digest, res.churn.validationFailures);
  res.digest = digest;
  return res;
}

}  // namespace dsn::mobility
