// The churn engine: sustained motion + membership churn against a live
// SensorNetwork (DESIGN.md §15).
//
// Each tick the engine (1) applies the mobility model's position
// updates through moveSensor — incremental withdraw + re-join per move —
// and (2) samples crash / join / leave events from its own RNG, then
// repairs the structure per the configured policy:
//
//   kIncremental  every event is absorbed by the paper's Section-5
//                 procedures (move-out/move-in) plus the crash-recovery
//                 pass; the structure is never rebuilt.
//   kRebuild      any structural event triggers a full self-
//                 reconstruction (the naive re-cluster baseline).
//   kAdaptive     incremental by default; a running "churn debt" (round
//                 cost of incremental repairs since the last rebuild) is
//                 compared against the measured cost of a full rebuild,
//                 and when debt exceeds debtFactor x rebuild-cost the
//                 engine re-clusters wholesale and resets the debt —
//                 the Gavalas-style adaptive maintenance policy.
//
// Every tick ends validator-clean: crashes are repaired inside the tick
// (batched), and with validateAfterRepair the engine asserts it. The
// whole engine is a deterministic function of (config, model, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "core/sensor_network.hpp"
#include "mobility/model.hpp"
#include "util/rng.hpp"

namespace dsn::mobility {

enum class RepairPolicy : std::uint8_t {
  kIncremental,
  kRebuild,
  kAdaptive,
};

constexpr std::string_view toString(RepairPolicy p) {
  switch (p) {
    case RepairPolicy::kIncremental:
      return "incremental";
    case RepairPolicy::kRebuild:
      return "rebuild";
    case RepairPolicy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

struct ChurnConfig {
  /// Expected events per tick (integer part always fires, fractional
  /// part is a Bernoulli draw).
  double crashRate = 0.0;
  double joinRate = 0.0;
  double leaveRate = 0.0;
  RepairPolicy policy = RepairPolicy::kAdaptive;
  /// kAdaptive: rebuild when debt > debtFactor * measured rebuild cost.
  double debtFactor = 1.0;
  /// Where joiners appear (should match the deployment field).
  Field field;
  std::uint64_t seed = 0xC0FFEE;
  /// Run the full structural validator after every repair/rebuild and
  /// count failures (the campaign acceptance gate).
  bool validateAfterRepair = true;
};

/// What one tick did — `disturbed` lists the node ids whose structural
/// position changed (moved, crashed, left, or was orphaned/re-homed by a
/// repair), for in-flight waves to mark displaced.
struct ChurnTick {
  std::size_t moves = 0;
  std::size_t crashes = 0;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  bool repaired = false;
  bool rebuilt = false;
  bool validated = true;
  std::vector<NodeId> disturbed;
};

/// Campaign-lifetime aggregates.
struct ChurnTotals {
  std::size_t ticks = 0;
  std::size_t moves = 0;
  std::size_t crashes = 0;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t repairs = 0;
  std::size_t rebuilds = 0;
  std::size_t validations = 0;
  std::size_t validationFailures = 0;
  /// Accumulated round cost of incremental maintenance vs. rebuilds —
  /// the pair tbl_mobility compares per policy.
  std::int64_t incrementalCost = 0;
  std::int64_t rebuildCost = 0;
};

class ChurnEngine {
 public:
  /// `model` may be null (pure membership churn, no motion); it is
  /// borrowed and must outlive the engine.
  ChurnEngine(SensorNetwork& net, MobilityModel* model, ChurnConfig cfg);

  /// One churn tick at round `now`. Leaves the structure validator-clean.
  ChurnTick tick(Round now);

  const ChurnTotals& totals() const { return totals_; }
  /// Outstanding adaptive debt (round cost since the last rebuild).
  double debt() const { return debt_; }

 private:
  SensorNetwork& net_;
  MobilityModel* model_;
  ChurnConfig cfg_;
  Rng rng_;
  ChurnTotals totals_;
  double debt_ = 0.0;
  /// Measured cost of a full rebuild (seeded from the live structure's
  /// construction cost estimate until the first real rebuild).
  double rebuildEstimate_ = 0.0;
  std::vector<MobilityUpdate> scratch_;

  std::size_t sampleCount(double rate);
  /// Uniformly random live net node, or kInvalidNode if none.
  NodeId pickNetNode();
  void repair(ChurnTick& t);
  void validateStructure(ChurnTick& t);
  void bumpCounters(const ChurnTick& t);
};

}  // namespace dsn::mobility
