// Mobility campaigns: long-running churn with broadcasts in flight
// (DESIGN.md §15).
//
// runMobilityCampaign drives a global round clock over a SensorNetwork:
// every `wavePeriod` rounds it admits a CFF/iCFF broadcast from a random
// source, and every `churnPeriod` rounds the ChurnEngine perturbs the
// deployment — while the wave is still in flight. Each perturbation
// pauses the wave at a segment boundary, mutates the topology, resyncs
// the simulator through the reconfiguration seam, and resumes; the wave
// completes under whatever network remains.
//
// Coverage accounting follows InFlightReport's three-way split; waves
// that miss settled receivers (for instance when a relay crashed before
// its TDM window) are optionally re-issued against the repaired
// structure ("repair waves", the reliable-broadcast completion story),
// and a settled node counts as covered when any attempt delivered.
//
// The whole campaign is a deterministic function of its config: the
// result digest is bit-identical across scheduling modes, thread counts
// and process runs, which the churn-smoke CI job byte-compares.
#pragma once

#include <cstdint>

#include "broadcast/inflight.hpp"
#include "core/sensor_network.hpp"
#include "mobility/churn.hpp"
#include "mobility/model.hpp"

namespace dsn::mobility {

struct CampaignConfig {
  /// Global rounds to simulate (acceptance campaigns run >= 1e5).
  Round rounds = 100'000;
  /// Admission cadence: a new wave every `wavePeriod` rounds (Δ).
  Round wavePeriod = 200;
  /// Churn/segment cadence: the wave pauses, the world changes, the
  /// engines resync — every `churnPeriod` rounds.
  Round churnPeriod = 8;
  BroadcastScheme scheme = BroadcastScheme::kImprovedCff;
  std::uint64_t payloadBase = 0xDA7A0000;
  /// Re-issue a completed wave that missed settled receivers against the
  /// repaired structure, and credit union coverage.
  bool repairWaves = true;
  std::size_t maxRepairWaves = 2;
  /// Per-wave protocol knobs (threads > 0 runs every wave sharded; the
  /// campaign refreshes the position partition at every resync).
  ProtocolOptions protocol;
  std::uint64_t sourceSeed = 0x5EED;
};

struct CampaignResult {
  std::size_t waves = 0;
  std::size_t repairWavesRun = 0;
  Round roundsRun = 0;
  // Aggregates over all primary waves.
  std::size_t intended = 0;
  std::size_t delivered = 0;
  std::size_t departed = 0;
  std::size_t displaced = 0;
  std::size_t settled = 0;
  /// Settled receivers covered by the primary wave alone.
  std::size_t settledFirstWave = 0;
  /// Settled receivers covered after repair waves (union credit).
  std::size_t settledCovered = 0;
  ChurnTotals churn;
  /// FNV-1a fold of every wave outcome + churn totals; identical across
  /// scheduling modes and thread counts.
  std::uint64_t digest = 0;

  /// The acceptance-gate number: union coverage of settled receivers.
  double effectiveCoverage() const {
    return settled == 0 ? 1.0
                        : static_cast<double>(settledCovered) /
                              static_cast<double>(settled);
  }
  /// Primary-wave coverage, before repair credit.
  double firstWaveCoverage() const {
    return settled == 0 ? 1.0
                        : static_cast<double>(settledFirstWave) /
                              static_cast<double>(settled);
  }
  bool validatorClean() const { return churn.validationFailures == 0; }
};

/// Runs the campaign. `churn` (and its model) drive the perturbations;
/// the engine's totals end up in the result.
CampaignResult runMobilityCampaign(SensorNetwork& net, ChurnEngine& churn,
                                   const CampaignConfig& cfg);

}  // namespace dsn::mobility
