// Deterministic mobility models (DESIGN.md §15).
//
// A MobilityModel decides, round by round, which nodes move where. The
// models own the kinematic state of the nodes they track (waypoints,
// group offsets, script cursors); the ChurnEngine applies their updates
// through SensorNetwork::moveSensor, so every emitted update is one
// incremental withdraw + re-join against the cluster structure.
//
// All models are deterministic functions of (config, seed, call
// sequence): the same campaign replays bit-identically at any thread
// count, which is what lets the churn-smoke CI job byte-compare runs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/deploy.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dsn::mobility {

/// One emitted move: node `node` relocates to `to` this round.
struct MobilityUpdate {
  NodeId node = kInvalidNode;
  Point2D to;
};

/// Round-driven position-update source. Implementations append the moves
/// due at round `now` in a deterministic order (tracked-id order, never
/// hash order).
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual void updates(Round now, std::vector<MobilityUpdate>& out) = 0;
  /// Drops per-node state for a departed node (crash / move-out).
  virtual void forget(NodeId v) = 0;
};

/// Classic random waypoint: each tracked node drifts toward a private
/// uniform waypoint at `speed` per tick and draws a fresh one on
/// arrival. Tick cadence is `period` rounds.
struct WaypointConfig {
  Field field;
  double speed = 10.0;
  Round period = 1;
  std::uint64_t seed = 0x30B11E;
};

class RandomWaypointModel : public MobilityModel {
 public:
  explicit RandomWaypointModel(const WaypointConfig& cfg);

  /// Starts moving node `v` from `at`. Tracked order is insertion order.
  void track(NodeId v, const Point2D& at);
  void updates(Round now, std::vector<MobilityUpdate>& out) override;
  void forget(NodeId v) override;

  std::size_t trackedCount() const { return ids_.size(); }

 private:
  struct State {
    Point2D at;
    Point2D target;
  };
  WaypointConfig cfg_;
  Rng rng_;
  std::vector<NodeId> ids_;  // deterministic iteration order
  std::unordered_map<NodeId, State> state_;

  Point2D drawTarget();
};

/// Reference-point group mobility: each group's virtual center does a
/// random-waypoint walk; members hold their initial offset from the
/// center plus a small per-tick jitter. Clusters of sensors that travel
/// together (a vehicle convoy, a sensor-laden herd).
struct GroupMobilityConfig {
  Field field;
  double speed = 10.0;      ///< center speed per tick
  double jitter = 2.0;      ///< member wobble around its slot, per tick
  Round period = 1;
  std::uint64_t seed = 0x6B0B11E;
};

class GroupMobilityModel : public MobilityModel {
 public:
  explicit GroupMobilityModel(const GroupMobilityConfig& cfg);

  /// Registers a travelling group; the center starts at the members'
  /// centroid and each member keeps its offset from it.
  void addGroup(const std::vector<std::pair<NodeId, Point2D>>& members);
  void updates(Round now, std::vector<MobilityUpdate>& out) override;
  void forget(NodeId v) override;

 private:
  struct Member {
    NodeId node;
    Point2D offset;
  };
  struct Group {
    Point2D center;
    Point2D target;
    std::vector<Member> members;
  };
  GroupMobilityConfig cfg_;
  Rng rng_;
  std::vector<Group> groups_;

  Point2D drawTarget();
};

/// Replayable scripted motion: an explicit (round, node, position) list,
/// emitted verbatim. The scenario runner's `waypoint` events compile to
/// this, and recorded campaigns replay through it.
class ScriptedMobilityModel : public MobilityModel {
 public:
  /// Appends a scripted move. Rounds may arrive out of order; the script
  /// is stably sorted by round before the first emission.
  void schedule(Round r, NodeId v, const Point2D& to);
  void updates(Round now, std::vector<MobilityUpdate>& out) override;
  void forget(NodeId v) override;

  std::size_t pendingCount() const { return script_.size() - cursor_; }

 private:
  struct Entry {
    Round round;
    MobilityUpdate update;
  };
  std::vector<Entry> script_;
  std::size_t cursor_ = 0;
  bool sorted_ = true;
};

}  // namespace dsn::mobility
