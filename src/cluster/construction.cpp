#include "cluster/construction.hpp"

#include <algorithm>
#include <queue>

#include "graph/algorithms.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn {

std::vector<NodeId> bfsConstructionOrder(const Graph& g, NodeId root) {
  DSN_REQUIRE(g.isAlive(root), "construction root must be live");
  DSN_TIMED_PHASE("cnet.order");
  if (obs::enabled())
    obs::globalMetrics().counter("cluster.construction_orders").increment();
  std::vector<bool> seen(g.size(), false);
  std::vector<NodeId> order;
  std::queue<NodeId> q;
  seen[root] = true;
  q.push(root);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    order.push_back(v);
    // Deterministic: visit neighbors in ascending id order.
    std::vector<NodeId> nbrs = g.neighbors(v);
    std::sort(nbrs.begin(), nbrs.end());
    for (NodeId u : nbrs) {
      if (!seen[u]) {
        seen[u] = true;
        q.push(u);
      }
    }
  }
  return order;
}

std::int64_t gossipRounds(const Graph& g) {
  return static_cast<std::int64_t>(g.liveCount());
}

std::vector<NodeId> selectSpreadRoots(const Graph& g, NodeId seed,
                                      std::size_t count) {
  DSN_REQUIRE(g.isAlive(seed), "seed root must be live");
  DSN_REQUIRE(count >= 1, "need at least one root");
  DSN_TIMED_PHASE("cnet.spread_roots");
  std::vector<NodeId> roots{seed};

  // minDist[v] = hop distance from v to the nearest chosen root.
  std::vector<int> minDist = bfsDistances(g, seed);
  while (roots.size() < count) {
    NodeId best = kInvalidNode;
    int bestDist = -1;
    for (NodeId v : g.liveNodes()) {
      if (minDist[v] > bestDist &&
          std::find(roots.begin(), roots.end(), v) == roots.end()) {
        bestDist = minDist[v];
        best = v;
      }
    }
    if (best == kInvalidNode || bestDist <= 0) break;  // graph exhausted
    roots.push_back(best);
    const auto d = bfsDistances(g, best);
    for (NodeId v = 0; v < minDist.size(); ++v) {
      if (d[v] >= 0) minDist[v] = std::min(minDist[v], d[v]);
    }
  }
  return roots;
}

}  // namespace dsn
