// Structure-of-arrays snapshot of the per-node schedule knowledge.
//
// The broadcast runners configure one protocol entry per member from the
// cluster net's per-node records (depth, u/b/l-slots, backbone status).
// Pulling those through the AoS NodeKnowledge accessors costs a pointer
// chase per field per node; at 10^5..10^6 members the runner setup loop
// becomes cache-bound. This view extracts the schedule-relevant columns
// once, in node order, into flat arrays the runners (and the SoA swarm
// protocols) index directly.
//
// The snapshot is immutable and decoupled from the net: structure
// mutations (move-in/out, recovery) after build() are not reflected.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace dsn {

class ClusterNet;

/// Flat schedule columns for every node id, plus the member list.
class ClusterScheduleView {
 public:
  /// Extracts the columns from `net` in one pass over its knowledge
  /// table (ids outside the net get kNoDepth/kNoSlot/non-backbone).
  static ClusterScheduleView build(const ClusterNet& net);

  /// Net members, node-ascending (same order as ClusterNet::netNodes).
  const std::vector<NodeId>& members() const { return members_; }

  Depth depth(NodeId v) const { return depth_[v]; }
  bool isBackbone(NodeId v) const { return backbone_[v] != 0; }
  TimeSlot uSlot(NodeId v) const { return uSlot_[v]; }
  TimeSlot bSlot(NodeId v) const { return bSlot_[v]; }
  TimeSlot lSlot(NodeId v) const { return lSlot_[v]; }

  std::size_t nodeCount() const { return depth_.size(); }

 private:
  std::vector<NodeId> members_;
  std::vector<Depth> depth_;
  std::vector<std::uint8_t> backbone_;
  std::vector<TimeSlot> uSlot_;
  std::vector<TimeSlot> bSlot_;
  std::vector<TimeSlot> lSlot_;
};

}  // namespace dsn
