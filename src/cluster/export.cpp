#include "cluster/export.hpp"

#include <sstream>

#include "cluster/backbone.hpp"

namespace dsn {

std::string toDot(const ClusterNet& net, const DotOptions& options) {
  std::ostringstream os;
  os << "graph cnet {\n"
     << "  layout=twopi;\n"
     << "  node [fontsize=10];\n";

  for (NodeId v : net.netNodes()) {
    os << "  n" << v << " [label=\"" << v << "\\nd" << net.depth(v);
    if (options.includeSlotLabels && net.isBackbone(v)) {
      os << "\\nb" << net.bSlot(v) << " l" << net.lSlot(v) << " u"
         << net.uSlot(v);
    }
    os << "\"";
    switch (net.status(v)) {
      case NodeStatus::kClusterHead:
        os << ", shape=doublecircle";
        break;
      case NodeStatus::kGateway:
        os << ", shape=box";
        break;
      case NodeStatus::kPureMember:
        os << ", shape=circle";
        break;
    }
    if (v == net.root()) os << ", style=filled, fillcolor=lightblue";
    os << "];\n";
  }

  // Tree edges.
  for (NodeId v : net.netNodes()) {
    if (v == net.root()) continue;
    os << "  n" << net.parent(v) << " -- n" << v << ";\n";
  }

  if (options.includeRadioEdges) {
    for (NodeId v : net.netNodes()) {
      for (NodeId u : net.graph().neighbors(v)) {
        if (u <= v || !net.contains(u)) continue;
        // Skip edges already drawn as tree edges.
        if (net.parent(u) == v || net.parent(v) == u) continue;
        os << "  n" << v << " -- n" << u << " [style=dotted];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string toSummary(const ClusterNet& net) {
  const BackboneStats s = computeBackboneStats(net);
  std::ostringstream os;
  os << "CNet(G): " << s.networkSize << " nodes, " << s.clusterCount
     << " clusters, backbone " << s.backboneSize << " (height "
     << s.backboneHeight << "), h=" << s.cnetHeight << ", D=" << s.degreeG
     << ", d=" << s.degreeBackbone << ", Delta=" << s.maxLSlot
     << ", delta=" << s.maxBSlot;
  return os.str();
}

}  // namespace dsn
