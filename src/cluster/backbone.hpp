// Backbone BT(G) views and the metrics of the paper's Figures 10 and 11.
//
// BT(G) = the sub-tree of CNet(G) formed by cluster-heads and gateways
// (Definition 2). `G(V_BT)` is the subgraph of G induced by the backbone
// node set; its maximum degree is the paper's `d`, while `D` is the
// maximum degree of G itself.
#pragma once

#include <cstddef>

#include "cluster/cnet.hpp"
#include "graph/graph.hpp"

namespace dsn {

/// The quantities the paper's evaluation plots per network.
struct BackboneStats {
  std::size_t networkSize = 0;    ///< |V| of the flat WSN (net nodes)
  std::size_t backboneSize = 0;   ///< |BT(G)| (Fig. 10)
  int backboneHeight = 0;         ///< max depth of a backbone node (Fig. 10)
  int cnetHeight = 0;             ///< h — height of CNet(G) (Theorem 1)
  std::size_t clusterCount = 0;   ///< number of cluster heads
  std::size_t degreeG = 0;        ///< D — max degree of G (Fig. 11)
  std::size_t degreeBackbone = 0; ///< d — max degree of G(V_BT) (Fig. 11)
  TimeSlot maxBSlot = 0;          ///< δ — largest assigned b-slot (Fig. 11)
  TimeSlot maxLSlot = 0;          ///< Δ — largest assigned l-slot (Fig. 11)
  TimeSlot maxUSlot = 0;          ///< largest Algorithm-1 unified slot

  /// Lemma 3 theoretical bounds for the measured d and D.
  std::size_t bSlotBound() const {
    return degreeBackbone * (degreeBackbone + 1) / 2 + 1;
  }
  std::size_t lSlotBound() const {
    return degreeG * (degreeG + 1) / 2 + 1;
  }
};

/// G(V_BT): the subgraph of G induced by the backbone nodes, in the same
/// id space as `net.graph()`.
Graph backboneInducedSubgraph(const ClusterNet& net);

/// Computes every Fig. 10 / Fig. 11 quantity for the current structure.
BackboneStats computeBackboneStats(const ClusterNet& net);

}  // namespace dsn
