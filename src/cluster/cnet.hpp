// ClusterNet — the paper's CNet(G) cluster-based architecture.
//
// A rooted spanning tree over the flat WSN graph G in which every node is
// a cluster-head, gateway, or pure-member (Definition 1), built and
// maintained *incrementally* through node-move-in / node-move-out
// (Section 5), with the per-node TDM time-slots of Section 4 kept valid
// across every reconfiguration. The backbone BT(G) (heads + gateways,
// Definition 2) and the multicast relay lists (Section 3.4) are
// maintained alongside.
//
// The class borrows a mutable Graph: move-in expects the node (and its
// radio edges) to already exist in the graph; move-out removes the node
// from both the structure and the graph.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/knowledge.hpp"
#include "cluster/round_cost.hpp"
#include "cluster/status.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dsn {

/// How time-slot interference sets are formed (DESIGN.md §4(1)).
enum class SlotPolicy : std::uint8_t {
  /// Literal Time-Slot Condition 2: a leaf's interference set is its
  /// previous-depth backbone neighbors only. Algorithm 2's leaf hop can
  /// then collide across depths — kept for the T5 ablation.
  kPaperLocal,
  /// Leaf interference set = all backbone neighbors (any depth), which is
  /// the set that actually transmits during Algorithm 2's shared leaf
  /// window. Restores collision-freedom; same asymptotic slot bound.
  kStrict,
};

/// Tie-breaking when several candidates could become the parent of a
/// joining node (the paper allows any application criterion).
enum class AttachPreference : std::uint8_t {
  kLowestId,    ///< deterministic; default
  kRandom,      ///< uniform among candidates (seeded via config)
  kBestScore,   ///< maximize a user score (e.g. remaining battery)
};

struct ClusterNetConfig {
  SlotPolicy slotPolicy = SlotPolicy::kStrict;
  AttachPreference attachPreference = AttachPreference::kLowestId;
  std::uint64_t attachSeed = 0x5EED5EEDull;  ///< used by kRandom
  /// Scoring callback for kBestScore (higher wins; ties to lowest id).
  std::function<double(NodeId)> score;
};

/// Result of one node-move-out (Theorem 3 bookkeeping).
struct MoveOutReport {
  /// Nodes of the detached subtree T that were re-inserted.
  std::size_t subtreeSize = 0;
  /// Nodes of T that became unreachable when the leaver partitioned G
  /// (they are dropped from the structure but stay in the graph).
  std::size_t orphaned = 0;
  /// Boundary receivers whose slot condition needed the repair pass
  /// (DESIGN.md §4 — the step the paper omits).
  std::size_t conditionRepairs = 0;
  /// Rounds consumed by this operation alone.
  RoundCost cost;
};

class ClusterNet {
 public:
  /// Binds to a graph the caller owns; the graph must outlive the net.
  explicit ClusterNet(Graph& graph, ClusterNetConfig config = {});

  ClusterNet(const ClusterNet&) = delete;
  ClusterNet& operator=(const ClusterNet&) = delete;

  // ---- Construction / reconfiguration (paper Section 5) ----

  /// node-move-in: inserts live graph node `v` into CNet(G).
  /// The first insertion makes `v` the root (a cluster-head). Later
  /// insertions require `v` to have at least one neighbor already in the
  /// net (Definition 1). Returns the chosen parent (kInvalidNode for the
  /// root). Updates time-slots, depths, heights, root knowledge and relay
  /// lists, and meters rounds into costs().
  NodeId moveIn(NodeId v);

  /// node-move-out: removes `v` from the structure *and the graph*,
  /// re-inserting its detached subtree (Section 5.2). Root departure
  /// follows DESIGN.md §4(3). Subtree nodes that become disconnected from
  /// the remaining net are dropped from the structure ("orphaned") but
  /// left alive in the graph.
  MoveOutReport moveOut(NodeId v);

  /// Structure-only departure: identical reconfiguration to moveOut but
  /// the node stays alive in the graph (it may re-join later with
  /// moveIn, and other ClusterNets sharing the graph keep seeing it).
  /// This is the primitive behind temporary withdrawals (low battery)
  /// and the multi-sink replication of paper Section 2.
  MoveOutReport withdraw(NodeId v);

  /// Convenience: move-in every id in `order`.
  void buildAll(const std::vector<NodeId>& order);

  /// Slot compaction: recomputes every time-slot from scratch in BFS
  /// order and resets the root's window knowledge to the true maxima.
  /// The incremental maintenance only ever *reports increases* to the
  /// root (paper Section 5.1), so after heavy churn the TDM windows the
  /// root schedules can be larger than any slot still in use; a sweep
  /// restores tight windows. Returns the rounds metered for the sweep.
  std::int64_t compactSlots();

  // ---- Structure queries ----

  bool contains(NodeId v) const;
  std::size_t netSize() const { return netSize_; }
  /// Number of in-net heads + gateways, maintained incrementally —
  /// unlike backboneNodes().size() this is O(1), so per-move-in
  /// telemetry does not turn bulk construction quadratic.
  std::size_t backboneCount() const { return backboneCount_; }
  NodeId root() const { return root_; }

  NodeStatus status(NodeId v) const;
  NodeId parent(NodeId v) const;
  const std::vector<NodeId>& children(NodeId v) const;
  Depth depth(NodeId v) const;
  /// Height of v's subtree (0 for leaves).
  int heightOf(NodeId v) const;
  /// Height of CNet(G) = root subtree height.
  int height() const;

  bool isBackbone(NodeId v) const;
  std::vector<NodeId> backboneNodes() const;
  std::vector<NodeId> pureMembers() const;
  std::vector<NodeId> clusterHeads() const;
  std::vector<NodeId> netNodes() const;
  std::size_t clusterCount() const;

  /// Members of the cluster headed by `head` (excluding the head).
  std::vector<NodeId> clusterMembers(NodeId head) const;

  // ---- Time-slot queries (paper Section 4) ----

  TimeSlot bSlot(NodeId v) const;
  TimeSlot lSlot(NodeId v) const;
  /// Unified Algorithm-1 slot (Time-Slot Condition 1).
  TimeSlot uSlot(NodeId v) const;
  /// Upward convergecast slot (dsnet extension; every non-root node has
  /// one).
  TimeSlot upSlot(NodeId v) const;
  /// δ as known at the root: monotone max over every b-slot ever
  /// reported. Never below the current true maximum.
  TimeSlot rootMaxBSlot() const { return rootMaxB_; }
  /// Δ as known at the root (same discipline for l-slots).
  TimeSlot rootMaxLSlot() const { return rootMaxL_; }
  /// Largest Algorithm-1 slot as known at the root.
  TimeSlot rootMaxUSlot() const { return rootMaxU_; }
  /// Largest convergecast up-slot as known at the root.
  TimeSlot rootMaxUpSlot() const { return rootMaxUp_; }
  /// Largest node degree ever observed while a node was inserted. Slot
  /// magnitudes are bounded by functions of the degree *at assignment
  /// time*, so validation after shrinkage must compare against this
  /// monotone peak, not the current degree.
  std::size_t peakDegree() const { return peakDegree_; }

  /// Exact current maxima (a global scan — used by benches to measure how
  /// far the root's monotone knowledge drifts from the truth).
  TimeSlot trueMaxBSlot() const;
  TimeSlot trueMaxLSlot() const;
  TimeSlot trueMaxUSlot() const;
  TimeSlot trueMaxUpSlot() const;

  /// Set of nodes that transmit in the window where backbone node `v`
  /// listens during the backbone flood: backbone neighbors at depth(v)-1.
  std::vector<NodeId> bInterferers(NodeId v) const;
  /// Set of nodes that transmit while pure-member `v` listens during the
  /// leaf hop. Under kStrict: all backbone neighbors; under kPaperLocal:
  /// backbone neighbors at depth(v)-1.
  std::vector<NodeId> lInterferers(NodeId v) const;

  /// Transmitters in the window where any node `v` listens during the
  /// Algorithm-1 whole-CNet flood: backbone neighbors at depth(v)-1
  /// (evaluated over their u-slots).
  std::vector<NodeId> uInterferers(NodeId v) const;

  /// True when v (a net node at depth > 0 / a pure member) can receive
  /// collision-free per the active policy — i.e. some interferer's slot
  /// is unique within the interferer set.
  bool bConditionHolds(NodeId v) const;
  bool lConditionHolds(NodeId v) const;
  /// Time-Slot Condition 1 at node v (any non-root net node).
  bool uConditionHolds(NodeId v) const;
  /// Convergecast condition at node v (non-root): v's up-slot differs
  /// from the up-slot of every other same-depth node sharing a
  /// previous-depth neighbor with v (so every potential listener hears
  /// v collision-free).
  bool upConditionHolds(NodeId v) const;

  // ---- Multicast lists (paper Section 3.4) ----

  /// Adds v to group g, updating ancestor relay lists (cost metered).
  void joinGroup(NodeId v, GroupId g);
  void leaveGroup(NodeId v, GroupId g);
  bool inGroup(NodeId v, GroupId g) const;
  const std::vector<GroupId>& groupsOf(NodeId v) const;
  /// True when g is in v's relay-list (some strict descendant is in g).
  bool relaysGroup(NodeId v, GroupId g) const;
  std::vector<GroupId> relayListOf(NodeId v) const;

  // ---- Accounting / access ----

  const RoundCost& costs() const { return costs_; }
  void resetCosts() { costs_ = RoundCost{}; }
  const Graph& graph() const { return graph_; }
  const ClusterNetConfig& config() const { return config_; }

  /// Raw knowledge record (read-only; used by validators and protocols).
  const NodeKnowledge& knowledge(NodeId v) const;

 private:
  Graph& graph_;
  ClusterNetConfig config_;
  std::vector<NodeKnowledge> know_;
  NodeId root_ = kInvalidNode;
  std::size_t netSize_ = 0;
  std::size_t backboneCount_ = 0;
  TimeSlot rootMaxB_ = 0;
  TimeSlot rootMaxL_ = 0;
  TimeSlot rootMaxU_ = 0;
  TimeSlot rootMaxUp_ = 0;
  std::size_t peakDegree_ = 0;
  RoundCost costs_;
  Rng attachRng_;

  // -- shared helpers (cnet.cpp) --
  /// Neighbor range of v: the graph's CSR snapshot when it is fresh
  /// (compactSlots freshens it once up front for its whole BFS pass),
  /// else the per-node adjacency vector — never forces an O(V+E) rebuild
  /// inside the incremental mutation path.
  CsrView::Span adj(NodeId v) const {
    if (const CsrView* csr = graph_.csrViewIfFresh())
      return csr->neighbors(v);
    const auto& n = graph_.neighbors(v);
    return CsrView::Span{n.data(), n.data() + n.size()};
  }
  void ensureKnowledgeSize();
  NodeKnowledge& mutableKnowledge(NodeId v);
  void requireInNet(NodeId v, const char* what) const;
  NodeId selectCandidate(const std::vector<NodeId>& candidates);
  /// Net neighbors of v in G (live + inNet).
  std::vector<NodeId> netNeighbors(NodeId v) const;
  /// Recomputes heights bottom-up along the path from `start` to the
  /// root using children's stored heights; meters `pathRounds`.
  void refreshHeightsFrom(NodeId start);
  void reportSlotToRoot(TimeSlot b, TimeSlot l, TimeSlot u = 0);

  // -- time-slot machinery (timeslots.cpp) --
  /// Procedure 1 for b-slots: recalculates y's b-slot from the
  /// constraints of its backbone "children side" C_b(y); meters rounds
  /// and reports the revised slot toward the root.
  void calculateBTimeSlot(NodeId y);
  /// Procedure 1 for l-slots (constrained by pure-member listeners).
  void calculateLTimeSlot(NodeId y);
  /// Procedure 1 for Algorithm-1 unified slots (constrained by every
  /// next-depth neighbor).
  void calculateUTimeSlot(NodeId y);
  /// Assigns the convergecast up-slot of a freshly inserted node.
  void assignUpSlot(NodeId v);
  /// Shared slot-restoration pass used by insertion and compaction.
  void restoreReceiverConditions(NodeId v);
  /// Algorithm 3: restores the slot conditions around freshly inserted
  /// leaf `v` (and its possibly-promoted parent chain).
  void updateTimeSlotsForInsert(NodeId v);
  /// Ensures the relevant condition holds at receiver `v`, recalculating
  /// its parent's slot when not; returns true when a repair ran.
  bool repairReceiver(NodeId v);
  /// Listener sets used by Procedure 1 (inverse of the interferer sets).
  std::vector<NodeId> bConstrainedListeners(NodeId y) const;
  std::vector<NodeId> lConstrainedListeners(NodeId y) const;
  std::vector<NodeId> uConstrainedListeners(NodeId y) const;
  /// Which slot field a procedure reads/writes.
  enum class SlotKind : std::uint8_t { kB, kL, kU };
  /// Slots of `nodes` (only assigned ones), excluding node `except`.
  std::vector<TimeSlot> slotsOf(const std::vector<NodeId>& nodes,
                                SlotKind kind, NodeId except) const;

  // -- move-out machinery (move_out.cpp) --
  std::vector<NodeId> collectSubtree(NodeId top) const;
  void detachNode(NodeId v);
  MoveOutReport withdrawInner(NodeId v);
  MoveOutReport withdrawRoot();

  // -- multicast internals --
  void adjustRelayOnPath(NodeId from, GroupId g, int delta);

  friend class ClusterNetValidator;
  friend class RecoveryManager;
  friend class ClusterScheduleView;
};

}  // namespace dsn
