// node-move-out (paper Section 5.2 + DESIGN.md §4(3)(4)).
//
// Removing node `lev` splits CNet(G_old) into the subtree T rooted at lev
// and the remainder H (H is parent-closed, so it stays a valid cluster
// net). The operation:
//   Step 0  — height refresh along the root path; relay-list decrements
//             for every departing group membership; Eulerian "delete me"
//             tour over T (metered).
//   Step 1/2— the nodes of T \ {lev} re-join H one by one via
//             node-move-in, in an order where each has a neighbor already
//             inside the net (BFS from the H boundary). Nodes that lost
//             all connection to H are orphaned (left out of the net).
//   Repair  — boundary H receivers whose unique-slot provider departed
//             are re-validated and fixed via the Algorithm-3 repair; this
//             pass is required for Condition 1/2 to survive a departure
//             and is the step the paper omits (DESIGN.md §4).
// Root departure re-seeds the structure from the lowest surviving id.

#include <algorithm>
#include <unordered_set>

#include "cluster/cnet.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn {

std::vector<NodeId> ClusterNet::collectSubtree(NodeId top) const {
  requireInNet(top, "collectSubtree");
  std::vector<NodeId> order{top};
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (NodeId c : know_[order[i]].children) order.push_back(c);
  }
  return order;
}

void ClusterNet::detachNode(NodeId v) {
  NodeKnowledge& k = know_[v];
  DSN_CHECK(k.inNet, "detachNode: node not in net");
  if (isBackboneStatus(k.status)) --backboneCount_;
  if (k.parent != kInvalidNode && know_[k.parent].inNet) {
    auto& siblings = know_[k.parent].children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), v),
                   siblings.end());
  }
  k.inNet = false;
  k.parent = kInvalidNode;
  k.children.clear();
  k.depth = kNoDepth;
  k.height = 0;
  k.bSlot = kNoSlot;
  k.lSlot = kNoSlot;
  k.uSlot = kNoSlot;
  k.upSlot = kNoSlot;
  k.status = NodeStatus::kPureMember;
  k.relayCount.clear();
  // k.groups survives: a re-inserted node keeps its memberships.
  --netSize_;
}

namespace {

/// Eulerian-tour transmissions over a tree with `nodes` nodes.
std::int64_t eulerRounds(std::size_t nodes) {
  return nodes > 1 ? 2 * (static_cast<std::int64_t>(nodes) - 1) : 0;
}

}  // namespace

namespace {

/// Shared telemetry for the two departure flavours.
void flushMoveOutMetrics(const char* op, const MoveOutReport& report) {
  if (!dsn::obs::enabled()) return;
  auto& m = dsn::obs::globalMetrics();
  m.counter(op).increment();
  m.counter("cluster.orphaned").increment(report.orphaned);
  m.counter("cluster.condition_repairs")
      .increment(report.conditionRepairs);
  m.histogram("cluster.move_out_subtree",
              dsn::obs::Histogram::exponentialBounds(12))
      .observe(static_cast<double>(report.subtreeSize));
}

}  // namespace

MoveOutReport ClusterNet::moveOut(NodeId lev) {
  requireInNet(lev, "moveOut");
  DSN_TIMED_PHASE("cnet.move_out");
  const MoveOutReport report = withdrawInner(lev);
  graph_.removeNode(lev);
  flushMoveOutMetrics("cluster.move_out", report);
  if (obs::enabled())
    obs::globalMetrics()
        .gauge("cluster.backbone_size")
        .set(static_cast<double>(backboneCount_));
  return report;
}

MoveOutReport ClusterNet::withdraw(NodeId lev) {
  requireInNet(lev, "withdraw");
  DSN_TIMED_PHASE("cnet.withdraw");
  const MoveOutReport report = withdrawInner(lev);
  flushMoveOutMetrics("cluster.withdraw", report);
  if (obs::enabled())
    obs::globalMetrics()
        .gauge("cluster.backbone_size")
        .set(static_cast<double>(backboneCount_));
  return report;
}

MoveOutReport ClusterNet::withdrawInner(NodeId lev) {
  if (lev == root_) return withdrawRoot();

  MoveOutReport report;
  const std::vector<NodeId> subtree = collectSubtree(lev);
  report.subtreeSize = subtree.size() - 1;  // T \ {lev}

  const RoundCost before = costs_;

  // Step 0(i): "I will leave" + height updates travel the root path.
  costs_.rootPath += know_[lev].depth;

  // Relay-list decrements for every group held inside the departing
  // subtree. The decrement path starts at lev's parent and stays inside H
  // (H is parent-closed), so a plain root-path walk is correct.
  const NodeId hParent = know_[lev].parent;
  for (NodeId t : subtree) {
    for (GroupId g : know_[t].groups) adjustRelayOnPath(hParent, g, -1);
  }

  // Step 0(ii): the "delete me and recalculate" Eulerian tour over T.
  costs_.eulerTour += eulerRounds(subtree.size());

  // Boundary H receivers that may have lost their unique-slot provider.
  std::unordered_set<NodeId> inT(subtree.begin(), subtree.end());
  std::vector<NodeId> boundary;
  for (NodeId t : subtree) {
    for (NodeId u : graph_.neighbors(t)) {
      if (!inT.count(u) && contains(u)) boundary.push_back(u);
    }
  }
  std::sort(boundary.begin(), boundary.end());
  boundary.erase(std::unique(boundary.begin(), boundary.end()),
                 boundary.end());

  // Detach T top-down. The leaver stays in the graph (the caller decides
  // whether to remove it); re-insertion ignores it because it is no
  // longer inNet.
  for (NodeId t : subtree) detachNode(t);
  refreshHeightsFrom(hParent);

  // Steps 1 & 2: re-insert T \ {lev} via node-move-in, each node attaching
  // once it has a neighbor inside the net (the paper's tour visits them in
  // an order with the same property). The withdrawn node itself never
  // re-attaches here: it is excluded from `pending`.
  std::vector<NodeId> pending(subtree.begin() + 1, subtree.end());
  costs_.eulerTour += eulerRounds(pending.size() + 1);
  bool progress = true;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<NodeId> still;
    for (NodeId t : pending) {
      if (!netNeighbors(t).empty()) {
        moveIn(t);
        progress = true;
      } else {
        still.push_back(t);
      }
    }
    pending.swap(still);
  }
  report.orphaned = pending.size();

  // Repair pass: re-validate every boundary receiver (plus re-inserted
  // nodes are already validated inside moveIn).
  for (NodeId v : boundary) {
    if (!contains(v)) continue;
    if (v == root_) continue;
    if (repairReceiver(v)) ++report.conditionRepairs;
  }

  report.cost = costs_ - before;
  return report;
}

MoveOutReport ClusterNet::withdrawRoot() {
  // The paper defers the root case to a full paper that never appeared;
  // we re-seed from the lowest surviving id and rebuild incrementally
  // (DESIGN.md §4(3)).
  MoveOutReport report;
  const RoundCost before = costs_;
  const NodeId oldRoot = root_;

  const std::vector<NodeId> subtree = collectSubtree(oldRoot);
  report.subtreeSize = subtree.size() - 1;
  costs_.eulerTour += eulerRounds(subtree.size());

  for (NodeId t : subtree) detachNode(t);
  root_ = kInvalidNode;
  rootMaxB_ = 0;
  rootMaxL_ = 0;
  rootMaxU_ = 0;
  rootMaxUp_ = 0;

  std::vector<NodeId> pending(subtree.begin() + 1, subtree.end());
  if (!pending.empty()) {
    // Seed a fresh root, then grow as in the non-root case.
    const NodeId seed = *std::min_element(pending.begin(), pending.end());
    moveIn(seed);
    pending.erase(std::find(pending.begin(), pending.end(), seed));
    bool progress = true;
    while (progress && !pending.empty()) {
      progress = false;
      std::vector<NodeId> still;
      for (NodeId t : pending) {
        if (!netNeighbors(t).empty()) {
          moveIn(t);
          progress = true;
        } else {
          still.push_back(t);
        }
      }
      pending.swap(still);
    }
  }
  report.orphaned = pending.size();
  report.cost = costs_ - before;
  return report;
}

}  // namespace dsn
