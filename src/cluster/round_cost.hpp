// Round accounting for the structural (non-broadcast) operations.
//
// The paper analyzes node-move-in / node-move-out and the time-slot
// procedures in communication rounds (Lemma 2/3, Theorem 2/3) but never
// interleaves them with broadcast traffic, so dsnet executes these
// operations directly against per-node knowledge and *meters* the rounds
// each message exchange would take, exactly as the procedures prescribe.
// DESIGN.md §2 documents this fidelity split.
#pragma once

#include <cstdint>

namespace dsn {

/// Cumulative round counts, split by the paper's cost components.
struct RoundCost {
  /// Neighbor discovery / attachment from [19]: O(d_new) expected rounds.
  /// We charge exactly d_new (the degree of the joining node).
  std::int64_t attach = 0;
  /// Time-slot recalculations: 1 + |C(y)| rounds per procedure run
  /// (Lemma 2(1)).
  std::int64_t slotUpdate = 0;
  /// Root-path traffic: height updates and carrying the revised largest
  /// b-slot to the root (2h per move-in, Theorem 2(2)).
  std::int64_t rootPath = 0;
  /// Eulerian tours over the detached subtree during node-move-out
  /// (2(|T|-1) transmissions per tour).
  std::int64_t eulerTour = 0;
  /// Condition repairs at the H/T boundary after a move-out — the pass the
  /// paper needs but does not spell out (DESIGN.md §4).
  std::int64_t repair = 0;
  /// Multicast group/relay-list maintenance on the root path.
  std::int64_t groupMaintenance = 0;
  /// Slotted heartbeat rounds on the backbone (failure detection): one
  /// u-slot window of head beacons plus one up-slot window of member
  /// responses per sweep, whether or not anything is found dead.
  std::int64_t heartbeat = 0;

  std::int64_t total() const {
    return attach + slotUpdate + rootPath + eulerTour + repair +
           groupMaintenance + heartbeat;
  }

  RoundCost& operator+=(const RoundCost& o) {
    attach += o.attach;
    slotUpdate += o.slotUpdate;
    rootPath += o.rootPath;
    eulerTour += o.eulerTour;
    repair += o.repair;
    groupMaintenance += o.groupMaintenance;
    heartbeat += o.heartbeat;
    return *this;
  }

  friend RoundCost operator-(RoundCost a, const RoundCost& b) {
    a.attach -= b.attach;
    a.slotUpdate -= b.slotUpdate;
    a.rootPath -= b.rootPath;
    a.eulerTour -= b.eulerTour;
    a.repair -= b.repair;
    a.groupMaintenance -= b.groupMaintenance;
    a.heartbeat -= b.heartbeat;
    return a;
  }
};

}  // namespace dsn
