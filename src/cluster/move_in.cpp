// node-move-in (paper Definition 1 + Section 5.1).
//
// Inserting node `new` with net-neighbor set U:
//   (a) U contains cluster-heads  -> new becomes a pure-member of one;
//   (b) else U contains gateways  -> new becomes a head under one;
//   (c) else (only pure-members)  -> the chosen member is *promoted* to
//       gateway and new becomes a head under it.
// Afterwards: Algorithm 3 restores the time-slot conditions, the depth of
// new is parent+1, heights refresh along the root path, and the largest
// revised slots travel to the root (Theorem 2(2): +2h + 2d + D rounds).

#include <algorithm>

#include "cluster/cnet.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn {

NodeId ClusterNet::moveIn(NodeId v) {
  ensureKnowledgeSize();
  DSN_REQUIRE(graph_.isAlive(v), "moveIn: node must be live in the graph");
  DSN_REQUIRE(!contains(v), "moveIn: node already in the cluster net");
  DSN_TIMED_PHASE("cnet.move_in");
  if (obs::enabled())
    obs::globalMetrics().counter("cluster.move_in").increment();

  NodeKnowledge& kv = mutableKnowledge(v);

  // First node: becomes the root and a cluster-head (Definition 1(1)).
  if (root_ == kInvalidNode) {
    auto groups = std::move(kv.groups);  // survive re-seeding (move-out)
    kv = NodeKnowledge{};
    kv.groups = std::move(groups);
    kv.inNet = true;
    kv.status = NodeStatus::kClusterHead;
    kv.parent = kInvalidNode;
    kv.depth = 0;
    kv.height = 0;
    root_ = v;
    ++netSize_;
    ++backboneCount_;
    if (obs::enabled())
      obs::globalMetrics().gauge("cluster.backbone_size").set(1.0);
    return kInvalidNode;
  }

  const std::vector<NodeId> candidates = netNeighbors(v);
  DSN_REQUIRE(!candidates.empty(),
              "moveIn: node has no neighbor inside the cluster net");

  // Attachment from [19] runs in O(d_new) expected rounds; we charge
  // exactly the degree of the joining node (DESIGN.md §2).
  costs_.attach += static_cast<std::int64_t>(graph_.degree(v));

  // Partition U by status and apply the Definition-1 priority.
  std::vector<NodeId> heads;
  std::vector<NodeId> gateways;
  std::vector<NodeId> members;
  for (NodeId u : candidates) {
    switch (know_[u].status) {
      case NodeStatus::kClusterHead:
        heads.push_back(u);
        break;
      case NodeStatus::kGateway:
        gateways.push_back(u);
        break;
      case NodeStatus::kPureMember:
        members.push_back(u);
        break;
    }
  }

  NodeId w = kInvalidNode;
  if (!heads.empty()) {
    w = selectCandidate(heads);
    kv.status = NodeStatus::kPureMember;
  } else if (!gateways.empty()) {
    w = selectCandidate(gateways);
    kv.status = NodeStatus::kClusterHead;
    ++backboneCount_;
  } else {
    w = selectCandidate(members);
    // Promotion: the only status mutation Definition 1 permits.
    know_[w].status = NodeStatus::kGateway;
    kv.status = NodeStatus::kClusterHead;
    backboneCount_ += 2;
    if (obs::enabled())
      obs::globalMetrics().counter("cluster.promotions").increment();
  }

  kv.inNet = true;
  kv.parent = w;
  kv.depth = know_[w].depth + 1;
  kv.height = 0;
  kv.bSlot = kNoSlot;
  kv.lSlot = kNoSlot;
  kv.uSlot = kNoSlot;
  kv.children.clear();
  kv.relayCount.clear();
  know_[w].children.push_back(v);
  ++netSize_;

  // Degrees only grow through insertions, and only at the new node and
  // its neighbors — this keeps peakDegree() an exact historical maximum.
  peakDegree_ = std::max(peakDegree_, graph_.degree(v));
  for (NodeId u : graph_.neighbors(v))
    peakDegree_ = std::max(peakDegree_, graph_.degree(u));

  // Knowledge (II) upkeep — Algorithm 3 (slot revisions report their new
  // values to the root from inside the procedures) + root-path refresh.
  updateTimeSlotsForInsert(v);
  assignUpSlot(v);
  refreshHeightsFrom(w);

  // Multicast: if v carries groups already (re-insertion during
  // move-out), push them up the new root path.
  for (GroupId g : kv.groups) adjustRelayOnPath(w, g, +1);

  if (obs::enabled())
    obs::globalMetrics()
        .gauge("cluster.backbone_size")
        .set(static_cast<double>(backboneCount_));
  return w;
}

}  // namespace dsn
