#include "cluster/validate.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <sstream>
#include <unordered_set>

#include "cluster/backbone.hpp"
#include "graph/algorithms.hpp"

namespace dsn {

std::string ValidationReport::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) os << '\n';
    os << violations[i].message;
  }
  return os.str();
}

bool ValidationReport::has(std::string_view cls) const {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const ValidationIssue& v) { return v.cls == cls; });
}

std::size_t ValidationReport::countOf(std::string_view cls) const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [&](const ValidationIssue& v) { return v.cls == cls; }));
}

std::vector<NodeId> ValidationReport::nodesOf(std::string_view cls) const {
  std::vector<NodeId> out;
  for (const ValidationIssue& v : violations)
    if (v.cls == cls) out.push_back(v.node);
  return out;
}

namespace {

class Checker {
 public:
  explicit Checker(const ClusterNet& net) : net_(net), g_(net.graph()) {}

  ValidationReport run() {
    nodes_ = net_.netNodes();
    if (nodes_.empty()) {
      if (net_.root() != kInvalidNode)
        fail("empty-net") << "empty net but root is set to " << net_.root();
      flush();
      return std::move(report_);
    }
    // A stale structure — crash-dead nodes still referenced (DESIGN.md
    // §10) — is reported entry by entry and stops here: every downstream
    // check reads the graph view of each net node and assumes it is
    // live. The per-entry issues let recovery tooling (and the fuzz
    // harness) see exactly which ids went stale instead of one opaque
    // first-failure string.
    bool stale = false;
    flushingScope([&] {
      for (NodeId v : nodes_) {
        if (!g_.isAlive(v)) {
          stale = true;
          fail("stale-entry", v)
              << "net entry " << v
              << " is dead in the graph (crash not yet repaired)";
        }
      }
    });
    if (stale) return std::move(report_);
    checkTree();
    checkStatuses();
    checkProperty1();
    checkSlots();
    checkRootKnowledge();
    checkRelayCounts();
    return std::move(report_);
  }

 private:
  const ClusterNet& net_;
  const Graph& g_;
  std::vector<NodeId> nodes_;
  ValidationReport report_;

  // fail() starts a new issue of class `cls` at `node`; the text
  // streamed into the returned stream is committed by the next fail()
  // or scope end.
  std::ostringstream& fail(std::string cls, NodeId node = kInvalidNode) {
    flush();
    active_ = true;
    pendingCls_ = std::move(cls);
    pendingNode_ = node;
    pending_.str("");
    pending_.clear();
    return pending_;
  }
  std::ostringstream pending_;
  std::string pendingCls_;
  NodeId pendingNode_ = kInvalidNode;
  bool active_ = false;
  void flush() {
    if (active_) {
      report_.violations.push_back(
          ValidationIssue{pendingCls_, pendingNode_, pending_.str()});
      active_ = false;
    }
  }

  void checkTree() {
    flushingScope([&] {
      const NodeId root = net_.root();
      if (root == kInvalidNode || !net_.contains(root)) {
        fail("tree") << "root missing or not in net";
        return;
      }
      if (net_.parent(root) != kInvalidNode)
        fail("tree", root) << "root has a parent";
      if (net_.depth(root) != 0) fail("tree", root) << "root depth is not 0";

      std::size_t reached = 0;
      std::queue<NodeId> q;
      std::unordered_set<NodeId> seen{root};
      q.push(root);
      while (!q.empty()) {
        const NodeId v = q.front();
        q.pop();
        ++reached;
        int childHeightMax = -1;
        for (NodeId c : net_.children(v)) {
          if (!net_.contains(c)) {
            fail("tree", c) << "child " << c << " of " << v << " not in net";
            continue;
          }
          if (net_.parent(c) != v)
            fail("tree", c) << "child " << c << " has parent "
                            << net_.parent(c) << " != " << v;
          if (net_.depth(c) != net_.depth(v) + 1)
            fail("tree", c) << "depth of " << c << " is not parent depth + 1";
          if (!g_.hasEdge(v, c))
            fail("tree", c) << "tree edge (" << v << "," << c
                            << ") is not a graph edge";
          if (!seen.insert(c).second) {
            fail("tree", c) << "node " << c << " reached twice (cycle?)";
            continue;
          }
          childHeightMax =
              std::max(childHeightMax, net_.heightOf(c));
          q.push(c);
        }
        if (net_.heightOf(v) != childHeightMax + 1)
          fail("tree", v) << "height of " << v << " is " << net_.heightOf(v)
                          << ", expected " << childHeightMax + 1;
      }
      if (reached != nodes_.size())
        fail("tree") << "only " << reached << " of " << nodes_.size()
                     << " net nodes reachable from root";
    });
  }

  void checkStatuses() {
    flushingScope([&] {
      if (net_.status(net_.root()) != NodeStatus::kClusterHead)
        fail("status", net_.root()) << "root is not a cluster head";
      for (NodeId v : nodes_) {
        const NodeStatus s = net_.status(v);
        const NodeId p = net_.parent(v);
        switch (s) {
          case NodeStatus::kPureMember:
            if (!net_.children(v).empty())
              fail("status", v) << "pure member " << v << " has children";
            if (p == kInvalidNode ||
                net_.status(p) != NodeStatus::kClusterHead)
              fail("status", v) << "pure member " << v
                                << " is not attached to a cluster head";
            break;
          case NodeStatus::kGateway:
            if (p == kInvalidNode ||
                net_.status(p) != NodeStatus::kClusterHead)
              fail("status", v) << "gateway " << v
                                << " is not attached to a cluster head";
            for (NodeId c : net_.children(v))
              if (net_.status(c) != NodeStatus::kClusterHead)
                fail("status", v)
                    << "gateway " << v << " has non-head child " << c;
            // A gateway may legitimately end up childless after a
            // node-move-out re-homed its former subtree.
            break;
          case NodeStatus::kClusterHead:
            if (p != kInvalidNode &&
                net_.status(p) != NodeStatus::kGateway)
              fail("status", v)
                  << "head " << v << " has non-gateway parent " << p;
            break;
        }
        // Backbone alternation by depth parity (paper, after Property 1).
        if (isBackboneStatus(s)) {
          const bool even = net_.depth(v) % 2 == 0;
          if (even && s != NodeStatus::kClusterHead)
            fail("status", v)
                << "backbone node " << v << " at even depth is not a head";
          if (!even && s != NodeStatus::kGateway)
            fail("status", v) << "backbone node " << v
                              << " at odd depth is not a gateway";
        }
      }
    });
  }

  void checkProperty1() {
    flushingScope([&] {
      const auto heads = net_.clusterHeads();
      std::unordered_set<NodeId> headSet(heads.begin(), heads.end());
      for (NodeId h : heads)
        for (NodeId u : g_.neighbors(h))
          if (headSet.count(u) && u > h)
            fail("head-adjacency", h)
                << "heads " << h << " and " << u
                << " are adjacent in G (Property 1(2))";
      // Heads dominate the net nodes.
      for (NodeId v : nodes_) {
        if (headSet.count(v)) continue;
        const bool dominated =
            std::any_of(g_.neighbors(v).begin(), g_.neighbors(v).end(),
                        [&](NodeId u) { return headSet.count(u) != 0; });
        if (!dominated)
          fail("domination", v)
              << "node " << v << " is not dominated by any head";
      }
    });
  }

  void checkSlots() {
    flushingScope([&] {
      const BackboneStats stats = computeBackboneStats(net_);
      // Slots are chosen under the degrees *at assignment time*; after
      // shrinkage the sound bound uses the historical peak degree.
      const std::size_t peak =
          std::max(net_.peakDegree(), stats.degreeG);
      const std::size_t peakPairBound = peak * (peak + 1) / 2 + 1;
      const std::size_t peakSquareBound = peak * peak + 1;
      for (NodeId v : nodes_) {
        const NodeStatus s = net_.status(v);
        if (s == NodeStatus::kPureMember) {
          if (!net_.lConditionHolds(v))
            fail("slot-condition", v)
                << "Time-Slot Condition (l) violated at member " << v;
        } else if (v != net_.root()) {
          if (!net_.bConditionHolds(v))
            fail("slot-condition", v)
                << "Time-Slot Condition (b) violated at backbone node " << v;
        }
        if (v != net_.root() && !net_.uConditionHolds(v))
          fail("slot-condition", v)
              << "Time-Slot Condition 1 (u) violated at node " << v;
        if (v != net_.root()) {
          if (net_.upSlot(v) == kNoSlot)
            fail("slot-condition", v)
                << "node " << v << " has no convergecast up-slot";
          else if (!net_.upConditionHolds(v))
            fail("slot-condition", v)
                << "convergecast up-slot condition violated at node " << v;
          if (net_.upSlot(v) > peakSquareBound)
            fail("slot-bound", v)
                << "up-slot of " << v << " (" << net_.upSlot(v)
                << ") exceeds the D^2+1 bound " << peakSquareBound;
        }
        if (isBackboneStatus(s)) {
          if (net_.bSlot(v) != kNoSlot && net_.bSlot(v) > peakPairBound)
            fail("slot-bound", v)
                << "b-slot of " << v << " (" << net_.bSlot(v)
                << ") exceeds Lemma 3 bound " << peakPairBound;
          if (net_.lSlot(v) != kNoSlot && net_.lSlot(v) > peakPairBound)
            fail("slot-bound", v)
                << "l-slot of " << v << " (" << net_.lSlot(v)
                << ") exceeds Lemma 3 bound " << peakPairBound;
          if (net_.uSlot(v) != kNoSlot && net_.uSlot(v) > peakPairBound)
            fail("slot-bound", v)
                << "u-slot of " << v << " (" << net_.uSlot(v)
                << ") exceeds the D(D+1)/2+1 bound " << peakPairBound;
        } else {
          if (net_.bSlot(v) != kNoSlot || net_.lSlot(v) != kNoSlot ||
              net_.uSlot(v) != kNoSlot)
            fail("slot-bound", v) << "pure member " << v
                                  << " carries a time-slot";
        }
      }
    });
  }

  void checkRootKnowledge() {
    flushingScope([&] {
      if (net_.rootMaxBSlot() < net_.trueMaxBSlot())
        fail("root-knowledge", net_.root())
            << "root's delta (" << net_.rootMaxBSlot()
            << ") below true max b-slot (" << net_.trueMaxBSlot() << ")";
      if (net_.rootMaxLSlot() < net_.trueMaxLSlot())
        fail("root-knowledge", net_.root())
            << "root's Delta (" << net_.rootMaxLSlot()
            << ") below true max l-slot (" << net_.trueMaxLSlot() << ")";
      if (net_.rootMaxUSlot() < net_.trueMaxUSlot())
        fail("root-knowledge", net_.root())
            << "root's Algorithm-1 window (" << net_.rootMaxUSlot()
            << ") below true max u-slot (" << net_.trueMaxUSlot() << ")";
      if (net_.rootMaxUpSlot() < net_.trueMaxUpSlot())
        fail("root-knowledge", net_.root())
            << "root's gather window (" << net_.rootMaxUpSlot()
            << ") below true max up-slot (" << net_.trueMaxUpSlot() << ")";
    });
  }

  void checkRelayCounts() {
    flushingScope([&] {
      // Brute-force recount: descendants' group memberships per node.
      std::map<NodeId, std::map<GroupId, int>> expected;
      for (NodeId v : nodes_) {
        for (GroupId g : net_.groupsOf(v)) {
          NodeId a = net_.parent(v);
          while (a != kInvalidNode) {
            ++expected[a][g];
            a = net_.parent(a);
          }
        }
      }
      for (NodeId v : nodes_) {
        const auto& flat = net_.knowledge(v).relayCount;
        const std::map<GroupId, int> have(flat.begin(), flat.end());
        const auto it = expected.find(v);
        const std::map<GroupId, int> empty;
        const auto& want = it == expected.end() ? empty : it->second;
        if (have != want)
          fail("relay-count", v)
              << "relay counts at node " << v
              << " do not match descendant memberships";
      }
    });
  }

  template <typename F>
  void flushingScope(F&& f) {
    f();
    flush();
  }
};

}  // namespace

ValidationReport ClusterNetValidator::validate(const ClusterNet& net) {
  return Checker(net).run();
}

}  // namespace dsn
