// Crash-fault recovery for CNet(G) (DESIGN.md §10).
//
// The paper's node-move-out assumes a *cooperative* departure: the leaver
// announces itself and the structure is patched on the way out. A crash
// gives no such announcement — the dead node's knowledge record still
// says inNet, its parent still lists it as a child, and every slot
// condition that relied on it silently rots. RecoveryManager closes that
// gap:
//
//   1. Detection — a slotted heartbeat sweep on the backbone: heads
//      beacon in their u-slot window, members answer in their up-slot
//      window. Costed through RoundCost::heartbeat whether or not
//      anything is found dead (detection is not free just because
//      everyone is alive).
//   2. Pruning — every stale entry (inNet but dead in the graph) and
//      every node whose root path crosses a stale entry is detached.
//      The set of survivors is parent-closed, so what remains is a valid
//      (smaller) cluster net. Relay lists of surviving ancestors are
//      decremented first, exactly as in move-out Step 0.
//   3. Re-attachment — orphaned-but-alive subtree nodes re-join through
//      the ordinary move-in attachment rules (same progress loop as
//      move-out Steps 1/2). Nodes with no surviving net neighbor stay
//      out ("orphaned"). A dead root re-seeds from the lowest surviving
//      id, as in DESIGN.md §4(3).
//   4. Slot repair — a global receiver-condition sweep. Unlike move-out,
//      the dead nodes' graph edges are already gone (Graph::removeNode
//      dropped them at crash time), so the affected boundary cannot be
//      enumerated locally; every surviving receiver is re-validated via
//      the Algorithm-3 repair instead.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/round_cost.hpp"
#include "util/types.hpp"

namespace dsn {

class ClusterNet;

/// Outcome of one repair pass (Theorem-3-style bookkeeping).
struct RecoveryReport {
  /// Stale entries pruned (nodes dead in the graph but still in the net).
  std::size_t staleRemoved = 0;
  /// Alive nodes that were detached (their root path crossed a stale
  /// entry) and re-attached through move-in.
  std::size_t reattached = 0;
  /// Alive detached nodes with no surviving net neighbor; they stay out
  /// of the structure (they may re-join later via moveIn).
  std::size_t orphaned = 0;
  /// Receivers whose slot condition needed the Algorithm-3 repair.
  std::size_t conditionRepairs = 0;
  /// The root itself was dead and the structure was re-seeded.
  bool rootReseeded = false;
  /// Rounds consumed by this pass alone (heartbeat + repair work).
  RoundCost cost;

  bool anyDamage() const { return staleRemoved > 0; }
};

/// Detects and repairs crash damage in a ClusterNet. Stateless between
/// calls; borrow-constructed on demand.
class RecoveryManager {
 public:
  explicit RecoveryManager(ClusterNet& net) : net_(net) {}

  /// True when some net entry refers to a node that is dead in the graph
  /// (structure is stale; validate() would fail). Read-only.
  bool hasStaleEntries() const;

  /// Ids of stale entries, ascending (empty when the structure is clean).
  std::vector<NodeId> staleEntries() const;

  /// One full heartbeat-detect + prune + re-attach + slot-repair pass.
  /// Afterwards the net contains only alive nodes and every validate()
  /// invariant holds again. Idempotent: a second call on a clean
  /// structure only charges the heartbeat sweep.
  RecoveryReport repair();

 private:
  ClusterNet& net_;

  void chargeHeartbeat();
};

}  // namespace dsn
