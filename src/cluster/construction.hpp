// Construction orders for CNet(G) (paper Section 5).
//
// The paper names two ways to build the structure: (a) insert nodes one
// by one with node-move-in (any order where each node can already reach
// the net), and (b) run a gossip so every node learns the whole topology
// in O(n) rounds and then build the structure locally, deterministically.
// Both reduce to choosing an insertion order; this header provides the
// canonical ones plus helpers to pick well-separated roots for the
// multi-sink replication of Section 2.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace dsn {

/// Breadth-first insertion order from `root` — the order the gossip
/// construction (Section 5, option b) realizes: every prefix is
/// connected, so buildAll() accepts it. Only nodes reachable from root
/// are included.
std::vector<NodeId> bfsConstructionOrder(const Graph& g, NodeId root);

/// Round cost of the gossip that precedes a local construction:
/// O(n) — we charge exactly n (one flooding slot per node's knowledge).
std::int64_t gossipRounds(const Graph& g);

/// Greedy farthest-point root selection for k replicated cluster-nets
/// (Section 2: "more than one cluster-net may be selected ... from
/// different roots (sinks) so that if one fails others can be used").
/// The first root is the given seed; each next root maximizes the
/// minimum hop distance to the already-chosen roots.
std::vector<NodeId> selectSpreadRoots(const Graph& g, NodeId seed,
                                      std::size_t count);

}  // namespace dsn
