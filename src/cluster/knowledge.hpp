// Per-node local knowledge record.
//
// Mirrors the paper's knowledge (I) + (II) (Section 5): tree links,
// status, depth, subtree height, the two transmission time-slots, and —
// for multicast (Section 3.4) — the group-list and relay-list. All
// algorithms in dsn_cluster read and write only these records (plus the
// neighbor lists of the flat graph), so they remain faithful to the
// distributed model even though they execute inside one process.
#pragma once

#include <vector>

#include "cluster/status.hpp"
#include "util/flat_map.hpp"
#include "util/types.hpp"

namespace dsn {

/// Everything node v knows about itself. "Knowing a neighbor's knowledge"
/// (paper Section 4) corresponds to reading another node's record, which
/// the procedures do only for graph neighbors.
struct NodeKnowledge {
  /// True once the node has been inserted into CNet(G).
  bool inNet = false;

  NodeStatus status = NodeStatus::kPureMember;
  NodeId parent = kInvalidNode;       ///< parent in CNet; invalid at root
  std::vector<NodeId> children;       ///< children in CNet
  Depth depth = kNoDepth;             ///< root has depth 0
  int height = 0;                     ///< height of this node's subtree

  /// Transmission slot for the backbone flood (Algorithm 2, step 1).
  TimeSlot bSlot = kNoSlot;
  /// Transmission slot for the backbone->leaves hop (step 2).
  TimeSlot lSlot = kNoSlot;
  /// Unified slot for Algorithm 1 (flooding the whole CNet depth by
  /// depth under Time-Slot Condition 1). Independent of bSlot/lSlot.
  TimeSlot uSlot = kNoSlot;
  /// Upward slot for convergecast data gathering (dsnet extension, see
  /// DESIGN.md §6): in its depth's gather window the node reports its
  /// aggregate to its parent at this slot. The condition is stronger
  /// than the downward ones — a parent must hear EVERY child, so a
  /// node's up-slot differs from the up-slots of all same-depth nodes
  /// that share any previous-depth neighbor with it.
  TimeSlot upSlot = kNoSlot;

  /// Multicast groups this node belongs to (its group-list).
  std::vector<GroupId> groups;
  /// relayCount[g] = number of descendants (strictly below this node) in
  /// group g; the paper's relay-list is the set of keys with count > 0.
  /// A sorted flat vector: group-maintenance walks touch it on every
  /// root-path hop and the entry count stays tiny.
  FlatMap<GroupId, int> relayCount;
};

}  // namespace dsn
