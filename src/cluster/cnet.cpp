#include "cluster/cnet.hpp"

#include <algorithm>

#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn {

ClusterNet::ClusterNet(Graph& graph, ClusterNetConfig config)
    : graph_(graph),
      config_(std::move(config)),
      attachRng_(config_.attachSeed) {
  if (config_.attachPreference == AttachPreference::kBestScore) {
    DSN_REQUIRE(static_cast<bool>(config_.score),
                "kBestScore attach preference needs a score callback");
  }
  ensureKnowledgeSize();
}

void ClusterNet::ensureKnowledgeSize() {
  if (know_.size() < graph_.size()) know_.resize(graph_.size());
}

NodeKnowledge& ClusterNet::mutableKnowledge(NodeId v) {
  ensureKnowledgeSize();
  DSN_REQUIRE(v < know_.size(), "node id out of range");
  return know_[v];
}

void ClusterNet::requireInNet(NodeId v, const char* what) const {
  DSN_REQUIRE(v < know_.size() && know_[v].inNet,
              std::string(what) + ": node is not in the cluster net");
}

const NodeKnowledge& ClusterNet::knowledge(NodeId v) const {
  requireInNet(v, "knowledge");
  return know_[v];
}

bool ClusterNet::contains(NodeId v) const {
  return v < know_.size() && know_[v].inNet;
}

NodeStatus ClusterNet::status(NodeId v) const {
  requireInNet(v, "status");
  return know_[v].status;
}

NodeId ClusterNet::parent(NodeId v) const {
  requireInNet(v, "parent");
  return know_[v].parent;
}

const std::vector<NodeId>& ClusterNet::children(NodeId v) const {
  requireInNet(v, "children");
  return know_[v].children;
}

Depth ClusterNet::depth(NodeId v) const {
  requireInNet(v, "depth");
  return know_[v].depth;
}

int ClusterNet::heightOf(NodeId v) const {
  requireInNet(v, "heightOf");
  return know_[v].height;
}

int ClusterNet::height() const {
  DSN_REQUIRE(root_ != kInvalidNode, "height: empty cluster net");
  return know_[root_].height;
}

bool ClusterNet::isBackbone(NodeId v) const {
  requireInNet(v, "isBackbone");
  return isBackboneStatus(know_[v].status);
}

std::vector<NodeId> ClusterNet::backboneNodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < know_.size(); ++v)
    if (know_[v].inNet && isBackboneStatus(know_[v].status))
      out.push_back(v);
  return out;
}

std::vector<NodeId> ClusterNet::pureMembers() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < know_.size(); ++v)
    if (know_[v].inNet && know_[v].status == NodeStatus::kPureMember)
      out.push_back(v);
  return out;
}

std::vector<NodeId> ClusterNet::clusterHeads() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < know_.size(); ++v)
    if (know_[v].inNet && know_[v].status == NodeStatus::kClusterHead)
      out.push_back(v);
  return out;
}

std::vector<NodeId> ClusterNet::netNodes() const {
  std::vector<NodeId> out;
  out.reserve(netSize_);
  for (NodeId v = 0; v < know_.size(); ++v)
    if (know_[v].inNet) out.push_back(v);
  return out;
}

std::size_t ClusterNet::clusterCount() const {
  return clusterHeads().size();
}

std::vector<NodeId> ClusterNet::clusterMembers(NodeId head) const {
  requireInNet(head, "clusterMembers");
  DSN_REQUIRE(know_[head].status == NodeStatus::kClusterHead,
              "clusterMembers: node is not a cluster head");
  // A cluster = the head plus its CNet children that are members or
  // gateways (a gateway belongs to the cluster of its head parent;
  // the gateway's own child is the head of the *next* cluster).
  std::vector<NodeId> out;
  for (NodeId c : know_[head].children)
    if (know_[c].status != NodeStatus::kClusterHead) out.push_back(c);
  return out;
}

TimeSlot ClusterNet::bSlot(NodeId v) const {
  requireInNet(v, "bSlot");
  return know_[v].bSlot;
}

TimeSlot ClusterNet::lSlot(NodeId v) const {
  requireInNet(v, "lSlot");
  return know_[v].lSlot;
}

TimeSlot ClusterNet::uSlot(NodeId v) const {
  requireInNet(v, "uSlot");
  return know_[v].uSlot;
}

TimeSlot ClusterNet::trueMaxBSlot() const {
  TimeSlot best = 0;
  for (NodeId v = 0; v < know_.size(); ++v)
    if (know_[v].inNet) best = std::max(best, know_[v].bSlot);
  return best;
}

TimeSlot ClusterNet::trueMaxLSlot() const {
  TimeSlot best = 0;
  for (NodeId v = 0; v < know_.size(); ++v)
    if (know_[v].inNet) best = std::max(best, know_[v].lSlot);
  return best;
}

TimeSlot ClusterNet::trueMaxUSlot() const {
  TimeSlot best = 0;
  for (NodeId v = 0; v < know_.size(); ++v)
    if (know_[v].inNet) best = std::max(best, know_[v].uSlot);
  return best;
}

TimeSlot ClusterNet::upSlot(NodeId v) const {
  requireInNet(v, "upSlot");
  return know_[v].upSlot;
}

TimeSlot ClusterNet::trueMaxUpSlot() const {
  TimeSlot best = 0;
  for (NodeId v = 0; v < know_.size(); ++v)
    if (know_[v].inNet) best = std::max(best, know_[v].upSlot);
  return best;
}

NodeId ClusterNet::selectCandidate(const std::vector<NodeId>& candidates) {
  DSN_CHECK(!candidates.empty(), "selectCandidate with no candidates");
  switch (config_.attachPreference) {
    case AttachPreference::kLowestId:
      return *std::min_element(candidates.begin(), candidates.end());
    case AttachPreference::kRandom:
      return candidates[attachRng_.pickIndex(candidates)];
    case AttachPreference::kBestScore: {
      NodeId best = candidates.front();
      double bestScore = config_.score(best);
      for (NodeId c : candidates) {
        const double s = config_.score(c);
        if (s > bestScore || (s == bestScore && c < best)) {
          best = c;
          bestScore = s;
        }
      }
      return best;
    }
  }
  DSN_CHECK(false, "unreachable attach preference");
  return candidates.front();
}

std::vector<NodeId> ClusterNet::netNeighbors(NodeId v) const {
  std::vector<NodeId> out;
  for (NodeId u : graph_.neighbors(v))
    if (contains(u)) out.push_back(u);
  return out;
}

void ClusterNet::refreshHeightsFrom(NodeId start) {
  // Bottom-up exact recompute along the root path; each hop is one
  // "updating your height" message (paper Section 5.1, step 2).
  NodeId v = start;
  std::int64_t hops = 0;
  while (v != kInvalidNode) {
    NodeKnowledge& k = know_[v];
    int h = 0;
    for (NodeId c : k.children) h = std::max(h, know_[c].height + 1);
    k.height = h;
    v = k.parent;
    ++hops;
  }
  costs_.rootPath += hops;
}

void ClusterNet::reportSlotToRoot(TimeSlot b, TimeSlot l, TimeSlot u) {
  // Carrying the revised maxima to the root costs one message per hop on
  // the root path; we meter the worst-case h (the paper's accounting).
  if (b > rootMaxB_ || l > rootMaxL_ || u > rootMaxU_) {
    rootMaxB_ = std::max(rootMaxB_, b);
    rootMaxL_ = std::max(rootMaxL_, l);
    rootMaxU_ = std::max(rootMaxU_, u);
    costs_.rootPath += root_ != kInvalidNode ? know_[root_].height : 0;
  }
}

void ClusterNet::buildAll(const std::vector<NodeId>& order) {
  DSN_TIMED_PHASE("cnet.build");
  for (NodeId v : order) moveIn(v);
}

// ---- Multicast (paper Section 3.4) ----

void ClusterNet::adjustRelayOnPath(NodeId from, GroupId g, int delta) {
  NodeId v = from;
  std::int64_t hops = 0;
  while (v != kInvalidNode) {
    auto& counts = know_[v].relayCount;
    const auto it = counts.find(g);
    const int next = (it == counts.end() ? 0 : it->second) + delta;
    DSN_CHECK(next >= 0, "relay count went negative");
    if (next == 0) {
      if (it != counts.end()) counts.erase(it);
    } else {
      counts[g] = next;
    }
    v = know_[v].parent;
    ++hops;
  }
  costs_.groupMaintenance += hops;
}

void ClusterNet::joinGroup(NodeId v, GroupId g) {
  requireInNet(v, "joinGroup");
  auto& groups = mutableKnowledge(v).groups;
  if (std::find(groups.begin(), groups.end(), g) != groups.end()) return;
  groups.push_back(g);
  if (know_[v].parent != kInvalidNode)
    adjustRelayOnPath(know_[v].parent, g, +1);
}

void ClusterNet::leaveGroup(NodeId v, GroupId g) {
  requireInNet(v, "leaveGroup");
  auto& groups = mutableKnowledge(v).groups;
  const auto it = std::find(groups.begin(), groups.end(), g);
  if (it == groups.end()) return;
  groups.erase(it);
  if (know_[v].parent != kInvalidNode)
    adjustRelayOnPath(know_[v].parent, g, -1);
}

bool ClusterNet::inGroup(NodeId v, GroupId g) const {
  requireInNet(v, "inGroup");
  const auto& groups = know_[v].groups;
  return std::find(groups.begin(), groups.end(), g) != groups.end();
}

const std::vector<GroupId>& ClusterNet::groupsOf(NodeId v) const {
  requireInNet(v, "groupsOf");
  return know_[v].groups;
}

bool ClusterNet::relaysGroup(NodeId v, GroupId g) const {
  requireInNet(v, "relaysGroup");
  const auto& counts = know_[v].relayCount;
  const auto it = counts.find(g);
  return it != counts.end() && it->second > 0;
}

std::vector<GroupId> ClusterNet::relayListOf(NodeId v) const {
  requireInNet(v, "relayListOf");
  std::vector<GroupId> out;
  for (const auto& [g, count] : know_[v].relayCount)
    if (count > 0) out.push_back(g);
  return out;
}

}  // namespace dsn
