// Structure export for inspection and debugging.
//
// `toDot` renders the cluster architecture as Graphviz: tree edges solid
// (the CNet), non-tree radio edges dotted, heads as double circles,
// gateways as boxes, members as plain circles, with depth/slot labels.
// `toSummary` is a one-screen text digest used by examples.
#pragma once

#include <string>

#include "cluster/cnet.hpp"

namespace dsn {

struct DotOptions {
  bool includeRadioEdges = true;  ///< dotted non-tree G edges
  bool includeSlotLabels = true;  ///< "b/l/u" slot annotations
};

/// Graphviz (dot language) rendering of the structure.
std::string toDot(const ClusterNet& net, const DotOptions& options = {});

/// Short human-readable digest (sizes, heights, degrees, slots).
std::string toSummary(const ClusterNet& net);

}  // namespace dsn
