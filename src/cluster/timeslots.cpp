// Incremental time-slot assignment (paper Section 4).
//
// Three slot families are maintained, one per flood phase:
//  * u-slots — Algorithm 1 floods the whole CNet depth by depth, so in
//    the window a node listens only previous-depth internal (= backbone)
//    nodes transmit. Time-Slot Condition 1 applies to every non-root
//    node.
//  * b-slots — Algorithm 2 step 1 floods only the backbone; receivers
//    are backbone nodes, interferers their previous-depth backbone
//    neighbors.
//  * l-slots — Algorithm 2 step 2 delivers to leaves in ONE shared
//    window where every slotted backbone node transmits. Under
//    SlotPolicy::kStrict a pure-member's interferers are ALL its backbone
//    neighbors; under kPaperLocal only the previous-depth ones (the
//    literal Time-Slot Condition 2, kept for the ablation bench — see
//    DESIGN.md §4(1)).
//
// A receiver's condition holds when some interferer's slot is *unique*
// within the interferer set — that transmitter gets through. Slots are
// assigned lazily and only ever changed through Procedure 1
// (calculateXTimeSlot), which consults every listener constrained by the
// changing node and picks the minimum positive slot that keeps each tight
// listener deliverable; this preserves all conditions inductively.

#include <algorithm>

#include "cluster/cnet.hpp"
#include "obs/flight.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

/// Flight-recorder slot-recompute marker. `kind`: 0 = B, 1 = L, 2 = U,
/// 3 = up (matches the FrType::kSlotRecompute aux contract). Slot
/// assignments are rare relative to radio traffic, so they are recorded
/// whenever the cluster category is live, independent of round sampling.
void recordSlotRecompute(NodeId y, TimeSlot slot, std::uint16_t kind) {
  if (obs::FlightRecorder* fr = obs::recorderFor<obs::kFrCatCluster>()) {
    obs::FrEvent e;
    e.node = y;
    e.data = static_cast<std::uint32_t>(slot);
    e.type = static_cast<std::uint8_t>(obs::FrType::kSlotRecompute);
    e.aux = kind;
    fr->record(e);
  }
}

/// Number of values occurring exactly once in `slots`. (The callers only
/// ever need the count, so no ordered set is materialized — sort the
/// local copy and count singleton runs.)
std::size_t uniqueValueCount(std::vector<TimeSlot> slots) {
  std::sort(slots.begin(), slots.end());
  std::size_t unique = 0;
  for (std::size_t i = 0; i < slots.size();) {
    std::size_t j = i + 1;
    while (j < slots.size() && slots[j] == slots[i]) ++j;
    if (j - i == 1) ++unique;
    i = j;
  }
  return unique;
}

/// Smallest positive integer not contained in `taken` (duplicates fine).
TimeSlot minimumFreeSlot(std::vector<TimeSlot> taken) {
  std::sort(taken.begin(), taken.end());
  TimeSlot candidate = 1;
  for (TimeSlot t : taken) {
    if (t < candidate) continue;
    if (t == candidate)
      ++candidate;
    else
      break;
  }
  return candidate;
}

}  // namespace

// ---- Interferer sets (who transmits while v listens) ----

std::vector<NodeId> ClusterNet::bInterferers(NodeId v) const {
  requireInNet(v, "bInterferers");
  std::vector<NodeId> out;
  const Depth d = know_[v].depth;
  for (NodeId u : adj(v)) {
    if (!contains(u)) continue;
    if (isBackboneStatus(know_[u].status) && know_[u].depth == d - 1)
      out.push_back(u);
  }
  return out;
}

std::vector<NodeId> ClusterNet::uInterferers(NodeId v) const {
  // Same node set as bInterferers (previous-depth backbone neighbors);
  // evaluated over u-slots by the callers.
  return bInterferers(v);
}

std::vector<NodeId> ClusterNet::lInterferers(NodeId v) const {
  requireInNet(v, "lInterferers");
  std::vector<NodeId> out;
  const Depth d = know_[v].depth;
  for (NodeId u : adj(v)) {
    if (!contains(u)) continue;
    if (!isBackboneStatus(know_[u].status)) continue;
    if (config_.slotPolicy == SlotPolicy::kStrict ||
        know_[u].depth == d - 1)
      out.push_back(u);
  }
  return out;
}

// ---- Constrained listener sets (who y must keep deliverable) ----

std::vector<NodeId> ClusterNet::bConstrainedListeners(NodeId y) const {
  requireInNet(y, "bConstrainedListeners");
  std::vector<NodeId> out;
  const Depth d = know_[y].depth;
  for (NodeId u : adj(y)) {
    if (!contains(u)) continue;
    if (isBackboneStatus(know_[u].status) && know_[u].depth == d + 1)
      out.push_back(u);
  }
  return out;
}

std::vector<NodeId> ClusterNet::lConstrainedListeners(NodeId y) const {
  requireInNet(y, "lConstrainedListeners");
  std::vector<NodeId> out;
  const Depth d = know_[y].depth;
  for (NodeId u : adj(y)) {
    if (!contains(u)) continue;
    if (know_[u].status != NodeStatus::kPureMember) continue;
    if (config_.slotPolicy == SlotPolicy::kStrict ||
        know_[u].depth == d + 1)
      out.push_back(u);
  }
  return out;
}

std::vector<NodeId> ClusterNet::uConstrainedListeners(NodeId y) const {
  requireInNet(y, "uConstrainedListeners");
  std::vector<NodeId> out;
  const Depth d = know_[y].depth;
  for (NodeId u : adj(y)) {
    if (contains(u) && know_[u].depth == d + 1) out.push_back(u);
  }
  return out;
}

std::vector<TimeSlot> ClusterNet::slotsOf(const std::vector<NodeId>& nodes,
                                          SlotKind kind,
                                          NodeId except) const {
  std::vector<TimeSlot> out;
  out.reserve(nodes.size());
  for (NodeId u : nodes) {
    if (u == except) continue;
    TimeSlot s = kNoSlot;
    switch (kind) {
      case SlotKind::kB:
        s = know_[u].bSlot;
        break;
      case SlotKind::kL:
        s = know_[u].lSlot;
        break;
      case SlotKind::kU:
        s = know_[u].uSlot;
        break;
    }
    if (s != kNoSlot) out.push_back(s);
  }
  return out;
}

// ---- Conditions ----

bool ClusterNet::bConditionHolds(NodeId v) const {
  requireInNet(v, "bConditionHolds");
  DSN_REQUIRE(isBackboneStatus(know_[v].status) && know_[v].depth > 0,
              "bConditionHolds: needs a non-root backbone node");
  return uniqueValueCount(
             slotsOf(bInterferers(v), SlotKind::kB, kInvalidNode)) > 0;
}

bool ClusterNet::lConditionHolds(NodeId v) const {
  requireInNet(v, "lConditionHolds");
  DSN_REQUIRE(know_[v].status == NodeStatus::kPureMember,
              "lConditionHolds: needs a pure member");
  return uniqueValueCount(
             slotsOf(lInterferers(v), SlotKind::kL, kInvalidNode)) > 0;
}

bool ClusterNet::uConditionHolds(NodeId v) const {
  requireInNet(v, "uConditionHolds");
  DSN_REQUIRE(know_[v].depth > 0,
              "uConditionHolds: the root does not receive");
  return uniqueValueCount(
             slotsOf(uInterferers(v), SlotKind::kU, kInvalidNode)) > 0;
}

// ---- Procedure 1 (paper Section 4) ----

void ClusterNet::calculateBTimeSlot(NodeId y) {
  requireInNet(y, "calculateBTimeSlot");
  DSN_REQUIRE(isBackboneStatus(know_[y].status),
              "calculateBTimeSlot: only backbone nodes carry b-slots");

  const std::vector<NodeId> listeners = bConstrainedListeners(y);
  // Procedure 1(i): one round for y's request, then each listener answers
  // in turn (Lemma 2(1): 1 + |C(y)| rounds).
  costs_.slotUpdate += 1 + static_cast<std::int64_t>(listeners.size());

  std::vector<TimeSlot> forbidden;
  for (NodeId v : listeners) {
    const auto slots = slotsOf(bInterferers(v), SlotKind::kB, y);
    if (uniqueValueCount(slots) >= 2) continue;  // v safe regardless
    forbidden.insert(forbidden.end(), slots.begin(), slots.end());
  }
  know_[y].bSlot = minimumFreeSlot(forbidden);
  recordSlotRecompute(y, know_[y].bSlot, 0);
  reportSlotToRoot(know_[y].bSlot, 0, 0);
}

void ClusterNet::calculateLTimeSlot(NodeId y) {
  requireInNet(y, "calculateLTimeSlot");
  DSN_REQUIRE(isBackboneStatus(know_[y].status),
              "calculateLTimeSlot: only backbone nodes carry l-slots");

  const std::vector<NodeId> listeners = lConstrainedListeners(y);
  costs_.slotUpdate += 1 + static_cast<std::int64_t>(listeners.size());

  std::vector<TimeSlot> forbidden;
  for (NodeId v : listeners) {
    const auto slots = slotsOf(lInterferers(v), SlotKind::kL, y);
    if (uniqueValueCount(slots) >= 2) continue;
    forbidden.insert(forbidden.end(), slots.begin(), slots.end());
  }
  know_[y].lSlot = minimumFreeSlot(forbidden);
  recordSlotRecompute(y, know_[y].lSlot, 1);
  reportSlotToRoot(0, know_[y].lSlot, 0);
}

void ClusterNet::calculateUTimeSlot(NodeId y) {
  requireInNet(y, "calculateUTimeSlot");
  DSN_REQUIRE(isBackboneStatus(know_[y].status),
              "calculateUTimeSlot: only internal nodes carry u-slots");

  const std::vector<NodeId> listeners = uConstrainedListeners(y);
  costs_.slotUpdate += 1 + static_cast<std::int64_t>(listeners.size());

  std::vector<TimeSlot> forbidden;
  for (NodeId v : listeners) {
    const auto slots = slotsOf(uInterferers(v), SlotKind::kU, y);
    if (uniqueValueCount(slots) >= 2) continue;
    forbidden.insert(forbidden.end(), slots.begin(), slots.end());
  }
  know_[y].uSlot = minimumFreeSlot(forbidden);
  recordSlotRecompute(y, know_[y].uSlot, 2);
  reportSlotToRoot(0, 0, know_[y].uSlot);
}

// ---- Convergecast up-slots (dsnet extension, DESIGN.md §6) ----

bool ClusterNet::upConditionHolds(NodeId v) const {
  // What convergecast correctness needs: v's PARENT can hear v — no
  // other same-depth net-neighbor of the parent shares v's up-slot.
  // (assignUpSlot guards the stronger property over every potential
  // previous-depth listener, giving slack for later re-parenting, but
  // only the parent edge is load-bearing.)
  requireInNet(v, "upConditionHolds");
  DSN_REQUIRE(v != root_, "the root reports to no one");
  const TimeSlot mine = know_[v].upSlot;
  if (mine == kNoSlot) return false;
  const Depth d = know_[v].depth;
  const NodeId p = know_[v].parent;
  for (NodeId u : adj(p)) {
    if (u == v || !contains(u)) continue;
    if (know_[u].depth == d && know_[u].upSlot == mine) return false;
  }
  return true;
}

void ClusterNet::assignUpSlot(NodeId v) {
  // Forbidden set: up-slots of every same-depth node that shares a
  // previous-depth neighbor with v — then every potential listener can
  // separate v from all other transmitters in its gather window.
  const Depth d = know_[v].depth;
  std::vector<TimeSlot> forbidden;
  std::int64_t listeners = 0;
  for (NodeId q : adj(v)) {
    if (!contains(q) || know_[q].depth != d - 1) continue;
    ++listeners;
    for (NodeId u : adj(q)) {
      if (u == v || !contains(u)) continue;
      if (know_[u].depth == d && know_[u].upSlot != kNoSlot)
        forbidden.push_back(know_[u].upSlot);
    }
  }
  costs_.slotUpdate += 1 + listeners;
  know_[v].upSlot = minimumFreeSlot(forbidden);
  recordSlotRecompute(v, know_[v].upSlot, 3);
  if (know_[v].upSlot > rootMaxUp_) {
    rootMaxUp_ = know_[v].upSlot;
    costs_.rootPath += root_ != kInvalidNode ? know_[root_].height : 0;
  }
}

// ---- Algorithm 3 (insertion repair) ----

bool ClusterNet::repairReceiver(NodeId v) {
  requireInNet(v, "repairReceiver");
  if (v == root_) return false;

  const NodeId w = know_[v].parent;
  // Procedure 1 repairs v by recalculating the slot of v's PARENT, whose
  // forbidden set ranges over its current graph neighbors — so the
  // repair-restores-the-condition theorem (DSN_CHECK below) holds only
  // while the tree edge is a live radio edge. On a stale structure (the
  // parent crashed, §10) no local repair can succeed; the recovery pass
  // that must follow will detach and re-home v, rebuilding its
  // conditions through a fresh insertion. This arises in practice when a
  // join lands between a crash and the batched repair of the same churn
  // tick and promotes a member whose own parent is the dead node.
  if (!graph_.hasEdge(v, w)) return false;
  bool repaired = false;

  if (know_[v].status == NodeStatus::kPureMember) {
    if (!lConditionHolds(v)) {
      calculateLTimeSlot(w);
      DSN_CHECK(lConditionHolds(v),
                "parent l-slot recalculation failed to restore Condition 2");
      repaired = true;
    }
  } else {
    if (!bConditionHolds(v)) {
      calculateBTimeSlot(w);
      DSN_CHECK(bConditionHolds(v),
                "parent b-slot recalculation failed to restore Condition 1");
      repaired = true;
    }
  }

  // Algorithm-1 slot space: every non-root node is a u-receiver.
  if (!uConditionHolds(v)) {
    calculateUTimeSlot(w);
    DSN_CHECK(uConditionHolds(v),
              "parent u-slot recalculation failed to restore Condition 1");
    repaired = true;
  }
  return repaired;
}

void ClusterNet::restoreReceiverConditions(NodeId v) {
  repairReceiver(v);
}

std::int64_t ClusterNet::compactSlots() {
  if (root_ == kInvalidNode) return 0;
  const RoundCost before = costs_;
  // One O(V+E) snapshot up front; every adj() below then iterates the
  // flat CSR arrays instead of per-node vectors for the whole pass.
  graph_.csrView();

  // Wipe every slot and the root's window knowledge, then re-derive in
  // BFS order: each node's delivery conditions are restored exactly as a
  // fresh insertion would (Algorithm 3), which by construction picks
  // minimum free slots.
  std::vector<NodeId> order{root_};
  for (std::size_t i = 0; i < order.size(); ++i)
    for (NodeId c : know_[order[i]].children) order.push_back(c);

  for (NodeId v : order) {
    know_[v].bSlot = kNoSlot;
    know_[v].lSlot = kNoSlot;
    know_[v].uSlot = kNoSlot;
    know_[v].upSlot = kNoSlot;
  }
  rootMaxB_ = 0;
  rootMaxL_ = 0;
  rootMaxU_ = 0;
  rootMaxUp_ = 0;

  for (NodeId v : order) {
    if (v == root_) continue;
    restoreReceiverConditions(v);
    assignUpSlot(v);
  }
  // Conditions of already-processed nodes cannot have been broken: every
  // assignment went through the listener-consulting procedures.
  return (costs_ - before).total();
}

void ClusterNet::updateTimeSlotsForInsert(NodeId v) {
  // Algorithm 3: the fresh leaf checks its own delivery conditions and,
  // where violated, its parent recalculates the relevant slot. When the
  // attachment promoted the parent (pure-member -> gateway, Definition 1
  // rule (c)), the parent became a backbone-flood receiver itself and its
  // own condition is restored the same way.
  repairReceiver(v);
  const NodeId w = know_[v].parent;
  if (w != root_ && know_[w].status == NodeStatus::kGateway &&
      know_[w].children.size() == 1) {
    // Exactly one child (v) => w was promoted by this insert (or is a
    // childless gateway regaining a child after a move-out; the repair is
    // idempotent and safe in that case too).
    repairReceiver(w);
  }
}

}  // namespace dsn
