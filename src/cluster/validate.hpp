// Whole-structure invariant validation.
//
// Every property the paper states (or that the implementation relies on)
// is checked here against the raw knowledge records. The property-based
// tests run this after construction and after every reconfiguration; the
// examples can run it in debug sessions. A violation report names each
// broken invariant.
#pragma once

#include <string>
#include <vector>

#include "cluster/cnet.hpp"

namespace dsn {

struct ValidationReport {
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
  /// All errors joined with newlines ("" when ok).
  std::string summary() const;
};

class ClusterNetValidator {
 public:
  /// Checks, over the current structure:
  ///  * tree well-formedness: single root, symmetric parent/child links,
  ///    depth = parent depth + 1, all net nodes reachable, tree edges are
  ///    graph edges, exact subtree heights;
  ///  * Definition-1 statuses: members/gateways hang off heads, gateways'
  ///    children are heads, members are leaves, root is a head, backbone
  ///    alternation head/gateway by even/odd depth;
  ///  * Property 1(2): no G-edge between two cluster heads; heads
  ///    dominate the net nodes;
  ///  * Time-Slot Conditions (per the active SlotPolicy) for every
  ///    backbone non-root (b) and every pure member (l);
  ///  * Lemma 2(3)/Lemma 3 slot bounds: b <= d(d+1)/2+1, l <= D(D+1)/2+1;
  ///  * root knowledge: rootMaxB/LSlot >= the true maxima;
  ///  * multicast relay counts == exact descendant-in-group counts.
  static ValidationReport validate(const ClusterNet& net);
};

}  // namespace dsn
