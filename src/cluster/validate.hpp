// Whole-structure invariant validation.
//
// Every property the paper states (or that the implementation relies on)
// is checked here against the raw knowledge records. The property-based
// tests run this after construction and after every reconfiguration; the
// examples can run it in debug sessions; the fuzz harness (src/testkit)
// asserts on violation *classes*, so the report is structured: every
// broken invariant yields a ValidationIssue carrying a stable class tag
// and the offending node id, not just prose.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cluster/cnet.hpp"

namespace dsn {

/// One broken invariant. `cls` is a stable kebab-case tag naming the
/// invariant family (see ValidationReport for the vocabulary); `node` is
/// the primary offender (kInvalidNode for whole-structure violations).
struct ValidationIssue {
  std::string cls;
  NodeId node = kInvalidNode;
  std::string message;
};

/// Structured validation outcome.
///
/// Violation classes emitted by ClusterNetValidator:
///   "empty-net"        net empty but root still set
///   "stale-entry"      net references a graph-dead node (crash, §10)
///   "tree"             root/parent/child/depth/height/reachability
///   "status"           Definition-1 status rules + backbone alternation
///   "head-adjacency"   Property 1(2): two heads adjacent in G
///   "domination"       a net node with no cluster-head neighbor
///   "slot-condition"   a Time-Slot Condition (b/l/u/up) fails
///   "slot-bound"       a slot exceeds its Lemma 2/3 magnitude bound
///   "root-knowledge"   root's window knowledge below the true maxima
///   "relay-count"      multicast relay counts vs exact recount
struct ValidationReport {
  std::vector<ValidationIssue> violations;

  bool ok() const { return violations.empty(); }
  /// All violation messages joined with newlines ("" when ok).
  std::string summary() const;
  /// True when some violation carries class `cls`.
  bool has(std::string_view cls) const;
  /// Number of violations of class `cls`.
  std::size_t countOf(std::string_view cls) const;
  /// Offending node ids of class `cls`, in report order (may repeat).
  std::vector<NodeId> nodesOf(std::string_view cls) const;
};

class ClusterNetValidator {
 public:
  /// Checks, over the current structure:
  ///  * tree well-formedness: single root, symmetric parent/child links,
  ///    depth = parent depth + 1, all net nodes reachable, tree edges are
  ///    graph edges, exact subtree heights;
  ///  * Definition-1 statuses: members/gateways hang off heads, gateways'
  ///    children are heads, members are leaves, root is a head, backbone
  ///    alternation head/gateway by even/odd depth;
  ///  * Property 1(2): no G-edge between two cluster heads; heads
  ///    dominate the net nodes;
  ///  * Time-Slot Conditions (per the active SlotPolicy) for every
  ///    backbone non-root (b) and every pure member (l);
  ///  * Lemma 2(3)/Lemma 3 slot bounds: b <= d(d+1)/2+1, l <= D(D+1)/2+1;
  ///  * root knowledge: rootMaxB/LSlot >= the true maxima;
  ///  * multicast relay counts == exact descendant-in-group counts.
  static ValidationReport validate(const ClusterNet& net);
};

}  // namespace dsn
