#include "cluster/backbone.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace dsn {

Graph backboneInducedSubgraph(const ClusterNet& net) {
  return inducedSubgraph(net.graph(), net.backboneNodes());
}

BackboneStats computeBackboneStats(const ClusterNet& net) {
  BackboneStats s;
  s.networkSize = net.netSize();
  const auto backbone = net.backboneNodes();
  s.backboneSize = backbone.size();
  s.clusterCount = net.clusterCount();
  if (net.netSize() > 0) s.cnetHeight = net.height();

  for (NodeId v : backbone) {
    s.backboneHeight = std::max(s.backboneHeight,
                                static_cast<int>(net.depth(v)));
    s.maxBSlot = std::max(s.maxBSlot, net.bSlot(v));
    s.maxLSlot = std::max(s.maxLSlot, net.lSlot(v));
    s.maxUSlot = std::max(s.maxUSlot, net.uSlot(v));
  }

  // D over net nodes only (orphaned graph nodes are not part of the WSN).
  for (NodeId v : net.netNodes())
    s.degreeG = std::max(s.degreeG, net.graph().degree(v));

  const Graph induced = backboneInducedSubgraph(net);
  s.degreeBackbone = degreeStats(induced).maxDegree;
  return s;
}

}  // namespace dsn
