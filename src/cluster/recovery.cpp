#include "cluster/recovery.hpp"

#include <algorithm>
#include <unordered_set>

#include "cluster/cnet.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

/// Eulerian-tour transmissions over a tree with `nodes` nodes (same
/// accounting as move-out).
std::int64_t eulerRounds(std::size_t nodes) {
  return nodes > 1 ? 2 * (static_cast<std::int64_t>(nodes) - 1) : 0;
}

void flushRecoveryMetrics(const RecoveryReport& report) {
  if (!obs::enabled()) return;
  auto& m = obs::globalMetrics();
  m.counter("cluster.recovery.passes").increment();
  m.counter("cluster.recovery.stale_removed").increment(report.staleRemoved);
  m.counter("cluster.recovery.reattached").increment(report.reattached);
  m.counter("cluster.recovery.orphaned").increment(report.orphaned);
  m.counter("cluster.recovery.condition_repairs")
      .increment(report.conditionRepairs);
  if (report.rootReseeded) m.counter("cluster.recovery.root_reseeds").increment();
}

}  // namespace

bool RecoveryManager::hasStaleEntries() const {
  const ClusterNet& net = net_;
  for (NodeId v = 0; v < net.know_.size(); ++v) {
    if (net.know_[v].inNet && !net.graph_.isAlive(v)) return true;
  }
  return false;
}

std::vector<NodeId> RecoveryManager::staleEntries() const {
  const ClusterNet& net = net_;
  std::vector<NodeId> stale;
  for (NodeId v = 0; v < net.know_.size(); ++v) {
    if (net.know_[v].inNet && !net.graph_.isAlive(v)) stale.push_back(v);
  }
  return stale;
}

void RecoveryManager::chargeHeartbeat() {
  // One beacon window (heads in their u-slots) plus one response window
  // (members in their up-slots). Uses the root's monotone window
  // knowledge — the windows actually scheduled on air.
  net_.costs_.heartbeat += static_cast<std::int64_t>(net_.rootMaxU_) +
                           static_cast<std::int64_t>(net_.rootMaxUp_);
}

RecoveryReport RecoveryManager::repair() {
  DSN_TIMED_PHASE("cnet.recovery");
  ClusterNet& net = net_;
  RecoveryReport report;
  const RoundCost before = net.costs_;

  chargeHeartbeat();

  const std::vector<NodeId> stale = staleEntries();
  report.staleRemoved = stale.size();
  if (stale.empty()) {
    report.cost = net.costs_ - before;
    flushRecoveryMetrics(report);
    return report;
  }

  const bool rootDead = net.root_ != kInvalidNode &&
                        !net.graph_.isAlive(net.root_);
  report.rootReseeded = rootDead;

  // Survivors = nodes reachable from a live root via children links over
  // alive nodes only. Parent-closed by construction, so what survives is
  // itself a valid cluster net.
  std::unordered_set<NodeId> attached;
  if (!rootDead && net.root_ != kInvalidNode) {
    std::vector<NodeId> frontier{net.root_};
    attached.insert(net.root_);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (NodeId c : net.know_[frontier[i]].children) {
        if (net.graph_.isAlive(c)) {
          attached.insert(c);
          frontier.push_back(c);
        }
      }
    }
  }

  // The detach set D = everything in the net but not attached; D is a
  // union of maximal subtrees whose tops hang off surviving parents (or
  // off dead ancestors, or is the whole net when the root died).
  std::vector<NodeId> tops;
  for (NodeId v = 0; v < net.know_.size(); ++v) {
    const NodeKnowledge& k = net.know_[v];
    if (!k.inNet || attached.count(v)) continue;
    if (k.parent == kInvalidNode || attached.count(k.parent))
      tops.push_back(v);
  }
  std::sort(tops.begin(), tops.end());

  std::vector<NodeId> pending;  // alive detached nodes, re-attach later
  for (NodeId top : tops) {
    const std::vector<NodeId> subtree = net.collectSubtree(top);
    const NodeId hParent = net.know_[top].parent;

    // Move-out Step 0: relay-list decrements on the surviving root path,
    // before any record is wiped (the walk needs intact parent links).
    if (hParent != kInvalidNode && attached.count(hParent)) {
      for (NodeId t : subtree) {
        for (GroupId g : net.know_[t].groups)
          net.adjustRelayOnPath(hParent, g, -1);
      }
    }

    // The heartbeat sweep localizes the damage; the "recalculate" tour
    // over each detached subtree is metered as in move-out Step 0(ii).
    net.costs_.eulerTour += eulerRounds(subtree.size());

    for (NodeId t : subtree) {
      net.detachNode(t);
      if (net.graph_.isAlive(t)) pending.push_back(t);
    }
    if (hParent != kInvalidNode && attached.count(hParent))
      net.refreshHeightsFrom(hParent);
  }

  if (rootDead) {
    net.root_ = kInvalidNode;
    net.rootMaxB_ = 0;
    net.rootMaxL_ = 0;
    net.rootMaxU_ = 0;
    net.rootMaxUp_ = 0;
  }

  // Move-out Steps 1/2: survivors re-join one by one, each attaching once
  // it has a neighbor inside the net. A dead root re-seeds from the
  // lowest surviving id (DESIGN.md §4(3)).
  std::sort(pending.begin(), pending.end());
  if (net.root_ == kInvalidNode && !pending.empty()) {
    const NodeId seed = pending.front();
    net.moveIn(seed);
    pending.erase(pending.begin());
    ++report.reattached;
  }
  bool progress = true;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<NodeId> still;
    for (NodeId t : pending) {
      if (!net.netNeighbors(t).empty()) {
        net.moveIn(t);
        ++report.reattached;
        progress = true;
      } else {
        still.push_back(t);
      }
    }
    pending.swap(still);
  }
  report.orphaned = pending.size();

  // Slot repair: the dead nodes' graph edges vanished with removeNode, so
  // the affected boundary cannot be enumerated locally — re-validate every
  // surviving receiver instead. Up-conditions are pairwise-difference
  // based and only improve on removal; b/l/u-conditions are
  // uniqueness-based and can break, which repairReceiver fixes.
  for (NodeId v : net.netNodes()) {
    if (v == net.root_) continue;
    if (net.repairReceiver(v)) ++report.conditionRepairs;
  }

  report.cost = net.costs_ - before;
  if (obs::FlightRecorder* fr = obs::recorderFor<obs::kFrCatCluster>()) {
    obs::FrEvent e;
    e.node = static_cast<std::uint32_t>(report.staleRemoved);
    e.data = static_cast<std::uint32_t>(report.reattached);
    e.type = static_cast<std::uint8_t>(obs::FrType::kRepair);
    e.aux = static_cast<std::uint16_t>(
        std::min<std::size_t>(report.orphaned, 65535));
    fr->record(e);
  }
  flushRecoveryMetrics(report);
  if (obs::enabled())
    obs::globalMetrics()
        .gauge("cluster.backbone_size")
        .set(static_cast<double>(net.backboneCount()));
  return report;
}

}  // namespace dsn
