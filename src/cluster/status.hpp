// Node roles in the cluster-based architecture (paper Definition 1).
#pragma once

#include <cstdint>
#include <string_view>

namespace dsn {

/// Role of a node inside CNet(G). The only legal transition after
/// insertion is kPureMember -> kGateway (Definition 1, rule (c)).
enum class NodeStatus : std::uint8_t {
  kClusterHead,  ///< owns a cluster; connected to all its members
  kGateway,      ///< relay between two adjacent clusters; backbone node
  kPureMember,   ///< ordinary member; always a leaf of CNet(G)
};

/// Heads and gateways form the backbone BT(G) (paper Definition 2).
constexpr bool isBackboneStatus(NodeStatus s) {
  return s == NodeStatus::kClusterHead || s == NodeStatus::kGateway;
}

constexpr std::string_view toString(NodeStatus s) {
  switch (s) {
    case NodeStatus::kClusterHead:
      return "head";
    case NodeStatus::kGateway:
      return "gateway";
    case NodeStatus::kPureMember:
      return "member";
  }
  return "?";
}

}  // namespace dsn
