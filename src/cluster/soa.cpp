#include "cluster/soa.hpp"

#include "cluster/cnet.hpp"

namespace dsn {

ClusterScheduleView ClusterScheduleView::build(const ClusterNet& net) {
  ClusterScheduleView view;
  const std::size_t n = net.know_.size();
  view.members_.reserve(net.netSize());
  view.depth_.assign(n, kNoDepth);
  view.backbone_.assign(n, 0);
  view.uSlot_.assign(n, kNoSlot);
  view.bSlot_.assign(n, kNoSlot);
  view.lSlot_.assign(n, kNoSlot);
  for (NodeId v = 0; v < n; ++v) {
    const NodeKnowledge& k = net.know_[v];
    if (!k.inNet) continue;
    view.members_.push_back(v);
    view.depth_[v] = k.depth;
    view.backbone_[v] = isBackboneStatus(k.status) ? 1 : 0;
    view.uSlot_[v] = k.uSlot;
    view.bSlot_[v] = k.bSlot;
    view.lSlot_[v] = k.lSlot;
  }
  return view;
}

}  // namespace dsn
