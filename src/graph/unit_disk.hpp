// Unit-disk graph construction from node positions.
//
// The paper models a WSN as a unit-disk-style graph: nodes u, v share an
// edge iff their Euclidean distance is at most the communication range
// (paper Section 2, Property 1(3)). The builder uses a uniform spatial
// grid with cell size = range so edge construction is O(n · density)
// rather than O(n²), which matters for the larger benches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "util/geometry.hpp"
#include "util/types.hpp"

namespace dsn {

/// Builds the unit-disk graph over `points` with communication `range`.
/// Node i of the result corresponds to points[i].
Graph buildUnitDiskGraph(const std::vector<Point2D>& points, double range);

/// Incremental unit-disk neighborhood index: a sparse spatial grid that
/// maps a point to the ids of existing points within range. Used by the
/// incremental deployment generator and by dynamic topologies.
class UnitDiskIndex {
 public:
  /// `range` must be positive.
  explicit UnitDiskIndex(double range);

  /// Ids of already-inserted points within `range` of `p`.
  std::vector<NodeId> queryNeighbors(const Point2D& p) const;

  /// Inserts a point under id `id` (caller controls id allocation; ids
  /// must be unique among currently inserted points).
  void insert(NodeId id, const Point2D& p);

  /// Removes a previously inserted id. Precondition: it was inserted.
  void remove(NodeId id);

  /// Moves a previously inserted id to `p` in place. When the new
  /// position stays inside the same grid cell this is a single hash-map
  /// overwrite; otherwise the id migrates between cell buckets. Behaves
  /// exactly like remove(id) + insert(id, p) but without rehashing the
  /// id or reallocating untouched buckets. Precondition: it was inserted.
  void updatePosition(NodeId id, const Point2D& p);

  std::size_t size() const { return positions_.size(); }
  double range() const { return range_; }

  /// Stored position of `id`. Precondition: `id` is present.
  const Point2D& position(NodeId id) const;
  bool contains(NodeId id) const;

 private:
  using CellKey = std::uint64_t;
  static CellKey packKey(std::int64_t cx, std::int64_t cy);
  CellKey cellOf(const Point2D& p) const;

  double range_;
  std::unordered_map<CellKey, std::vector<NodeId>> cells_;
  std::unordered_map<NodeId, Point2D> positions_;
};

}  // namespace dsn
