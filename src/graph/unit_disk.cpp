#include "graph/unit_disk.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dsn {

Graph buildUnitDiskGraph(const std::vector<Point2D>& points, double range) {
  DSN_REQUIRE(range > 0.0, "communication range must be positive");
  Graph g(points.size());
  UnitDiskIndex index(range);
  for (NodeId i = 0; i < points.size(); ++i) {
    for (NodeId j : index.queryNeighbors(points[i])) g.addEdge(i, j);
    index.insert(i, points[i]);
  }
  return g;
}

UnitDiskIndex::UnitDiskIndex(double range) : range_(range) {
  DSN_REQUIRE(range > 0.0, "communication range must be positive");
}

UnitDiskIndex::CellKey UnitDiskIndex::packKey(std::int64_t cx,
                                              std::int64_t cy) {
  // Coordinates are offset into positive space before packing two 32-bit
  // cell indices into one key.
  const auto ux = static_cast<std::uint64_t>(cx + (1ll << 31));
  const auto uy = static_cast<std::uint64_t>(cy + (1ll << 31));
  return (ux << 32) | (uy & 0xFFFFFFFFull);
}

UnitDiskIndex::CellKey UnitDiskIndex::cellOf(const Point2D& p) const {
  // Cell size equals the range, so all neighbors of a point lie in the
  // 3x3 block of cells around it.
  return packKey(static_cast<std::int64_t>(std::floor(p.x / range_)),
                 static_cast<std::int64_t>(std::floor(p.y / range_)));
}

std::vector<NodeId> UnitDiskIndex::queryNeighbors(const Point2D& p) const {
  std::vector<NodeId> out;
  out.reserve(16);
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / range_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / range_));
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      // The neighbor cell key comes straight from the integer cell
      // coordinates — synthesizing a float cell-center and re-flooring it
      // would round-trip through doubles and can land in the wrong cell
      // right at a cell boundary.
      const auto it = cells_.find(packKey(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (NodeId id : it->second) {
        if (inRange(positions_.at(id), p, range_)) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void UnitDiskIndex::insert(NodeId id, const Point2D& p) {
  DSN_REQUIRE(!contains(id), "UnitDiskIndex::insert: duplicate id");
  positions_.emplace(id, p);
  cells_[cellOf(p)].push_back(id);
}

void UnitDiskIndex::remove(NodeId id) {
  const auto it = positions_.find(id);
  DSN_REQUIRE(it != positions_.end(), "UnitDiskIndex::remove: unknown id");
  auto& bucket = cells_[cellOf(it->second)];
  bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
  positions_.erase(it);
}

void UnitDiskIndex::updatePosition(NodeId id, const Point2D& p) {
  const auto it = positions_.find(id);
  DSN_REQUIRE(it != positions_.end(),
              "UnitDiskIndex::updatePosition: unknown id");
  const CellKey oldCell = cellOf(it->second);
  const CellKey newCell = cellOf(p);
  if (oldCell != newCell) {
    auto& bucket = cells_[oldCell];
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
    cells_[newCell].push_back(id);
  }
  it->second = p;
}

const Point2D& UnitDiskIndex::position(NodeId id) const {
  const auto it = positions_.find(id);
  DSN_REQUIRE(it != positions_.end(), "UnitDiskIndex::position: unknown id");
  return it->second;
}

bool UnitDiskIndex::contains(NodeId id) const {
  return positions_.count(id) != 0;
}

}  // namespace dsn
