#include "graph/deploy.hpp"

#include <cmath>
#include <numbers>

#include "graph/unit_disk.hpp"
#include "util/error.hpp"

namespace dsn {

Field Field::squareUnits(int units, double unitMeters) {
  DSN_REQUIRE(units > 0, "field units must be positive");
  DSN_REQUIRE(unitMeters > 0.0, "unit size must be positive");
  const double side = static_cast<double>(units) * unitMeters;
  return Field{side, side};
}

namespace {

void validate(const DeployConfig& cfg) {
  DSN_REQUIRE(cfg.field.width > 0.0 && cfg.field.height > 0.0,
              "deployment field must have positive area");
  DSN_REQUIRE(cfg.range > 0.0, "communication range must be positive");
}

Point2D uniformPoint(const Field& f, Rng& rng) {
  return Point2D{rng.uniformReal(0.0, f.width),
                 rng.uniformReal(0.0, f.height)};
}

bool insideField(const Field& f, const Point2D& p) {
  return p.x >= 0.0 && p.x <= f.width && p.y >= 0.0 && p.y <= f.height;
}

}  // namespace

std::vector<Point2D> deployUniform(const DeployConfig& cfg, Rng& rng) {
  validate(cfg);
  std::vector<Point2D> pts;
  pts.reserve(cfg.nodeCount);
  for (std::size_t i = 0; i < cfg.nodeCount; ++i)
    pts.push_back(uniformPoint(cfg.field, rng));
  return pts;
}

std::vector<Point2D> deployIncrementalAttach(const DeployConfig& cfg,
                                             Rng& rng, int maxRejects) {
  validate(cfg);
  DSN_REQUIRE(maxRejects >= 0, "maxRejects must be non-negative");
  std::vector<Point2D> pts;
  if (cfg.nodeCount == 0) return pts;
  pts.reserve(cfg.nodeCount);

  UnitDiskIndex index(cfg.range);
  pts.push_back(uniformPoint(cfg.field, rng));
  index.insert(0, pts[0]);

  while (pts.size() < cfg.nodeCount) {
    Point2D candidate{};
    bool placed = false;
    for (int attempt = 0; attempt < maxRejects; ++attempt) {
      candidate = uniformPoint(cfg.field, rng);
      if (!index.queryNeighbors(candidate).empty()) {
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Fallback: sample around a random placed node, uniform in the disk
      // of radius `range` (uniform-in-area via sqrt radius), rejecting
      // points that fall outside the field.
      for (;;) {
        const auto anchorIdx = rng.pickIndex(pts);
        const double theta =
            rng.uniformReal(0.0, 2.0 * std::numbers::pi_v<double>);
        const double radius = cfg.range * std::sqrt(rng.uniformReal());
        candidate = Point2D{pts[anchorIdx].x + radius * std::cos(theta),
                            pts[anchorIdx].y + radius * std::sin(theta)};
        if (insideField(cfg.field, candidate)) break;
      }
    }
    const auto id = static_cast<NodeId>(pts.size());
    pts.push_back(candidate);
    index.insert(id, candidate);
  }
  return pts;
}

std::vector<Point2D> deployGrid(const DeployConfig& cfg) {
  validate(cfg);
  std::vector<Point2D> pts;
  if (cfg.nodeCount == 0) return pts;
  pts.reserve(cfg.nodeCount);

  // Choose a column count that fits the field while keeping horizontal
  // spacing within range; spacing is 90% of range so lattice neighbors
  // connect strictly.
  const double spacing = 0.9 * cfg.range;
  auto cols = static_cast<std::size_t>(cfg.field.width / spacing) + 1;
  if (cols == 0) cols = 1;
  for (std::size_t i = 0; i < cfg.nodeCount; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    pts.push_back(Point2D{static_cast<double>(c) * spacing,
                          static_cast<double>(r) * spacing});
  }
  return pts;
}

std::vector<Point2D> deployLine(std::size_t nodeCount, double range) {
  DSN_REQUIRE(range > 0.0, "communication range must be positive");
  std::vector<Point2D> pts;
  pts.reserve(nodeCount);
  const double spacing = 0.9 * range;
  for (std::size_t i = 0; i < nodeCount; ++i)
    pts.push_back(Point2D{static_cast<double>(i) * spacing, 0.0});
  return pts;
}

std::vector<Point2D> deployStar(std::size_t nodeCount, double range) {
  DSN_REQUIRE(range > 0.0, "communication range must be positive");
  std::vector<Point2D> pts;
  if (nodeCount == 0) return pts;
  pts.reserve(nodeCount);
  pts.push_back(Point2D{0.0, 0.0});
  const double radius = 0.9 * range;
  const std::size_t leaves = nodeCount - 1;
  for (std::size_t i = 0; i < leaves; ++i) {
    const double theta = 2.0 * std::numbers::pi_v<double> *
                         static_cast<double>(i) /
                         static_cast<double>(leaves);
    pts.push_back(
        Point2D{radius * std::cos(theta), radius * std::sin(theta)});
  }
  return pts;
}

}  // namespace dsn
