// Undirected graph over dense node ids 0..n-1.
//
// This is the flat WSN `G = (V, E)` of the paper: an edge exists iff two
// nodes are within transmission range of each other. The structure is
// mutable (nodes/edges can be added and removed) because the paper's
// architecture is defined by incremental node-move-in / node-move-out.
//
// Removed nodes keep their id (ids are never recycled) but become
// `!isAlive`; adjacency queries on dead nodes return empty sets. This
// keeps external id maps stable across reconfigurations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/csr.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace dsn {

/// Mutable undirected graph with stable node ids.
class Graph {
 public:
  Graph() = default;
  /// Creates `n` live, isolated nodes with ids 0..n-1.
  explicit Graph(std::size_t n);

  // The CSR cache members make the defaults undefinable; copies/moves
  // carry the adjacency and start with a cold cache.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Adds a new live node; returns its id (== previous size()).
  NodeId addNode();

  /// Removes a node: drops all incident edges and marks it dead.
  /// The id stays allocated and must not be re-added.
  void removeNode(NodeId v);

  /// Adds an undirected edge {u, v}. Both ends must be live and distinct.
  /// Adding an existing edge is a no-op.
  void addEdge(NodeId u, NodeId v);

  /// Removes edge {u, v} if present.
  void removeEdge(NodeId u, NodeId v);

  bool hasEdge(NodeId u, NodeId v) const;

  /// Neighbors of a live node, in insertion order. Empty for dead nodes.
  const std::vector<NodeId>& neighbors(NodeId v) const;

  bool isAlive(NodeId v) const;

  /// Total ids ever allocated (live + dead).
  std::size_t size() const { return adjacency_.size(); }
  /// Number of live nodes.
  std::size_t liveCount() const { return liveCount_; }
  /// Number of undirected edges among live nodes.
  std::size_t edgeCount() const { return edgeCount_; }

  /// Degree of a node (0 for dead nodes).
  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  /// All live node ids, ascending.
  std::vector<NodeId> liveNodes() const;

  /// Bounds-checks an id (live or dead).
  bool isValidId(NodeId v) const {
    return v < adjacency_.size();
  }

  /// Flattened CSR snapshot of the current adjacency, cached per
  /// topology-mutation epoch: the first call after any mutation rebuilds
  /// it (O(V+E)); subsequent calls are a single atomic load. Static read
  /// phases (the radio simulator, slot compaction, the reference radio)
  /// iterate this instead of the per-node vectors. The returned reference
  /// is invalidated by the next mutation; concurrent readers are safe,
  /// concurrent mutation is not (same contract as every other accessor).
  const CsrView& csrView() const;

  /// The cached snapshot if it already matches the current epoch, else
  /// nullptr. Never rebuilds — incremental phases (per-insert slot
  /// updates) use this to avoid paying O(V+E) per mutation batch.
  const CsrView* csrViewIfFresh() const;

  /// Monotonic counter bumped by every topology mutation. Consumers that
  /// cache derived structures key them off this epoch.
  std::uint64_t mutationEpoch() const { return epoch_; }

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<bool> alive_;
  std::size_t liveCount_ = 0;
  std::size_t edgeCount_ = 0;

  /// Starts at 1 so the cold cache (csrEpoch_ == 0) is never "fresh".
  std::uint64_t epoch_ = 1;
  mutable std::mutex csrMutex_;
  mutable CsrView csr_;
  mutable std::atomic<std::uint64_t> csrEpoch_{0};

  void requireLive(NodeId v, const char* what) const;
};

}  // namespace dsn
