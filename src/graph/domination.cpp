#include "graph/domination.hpp"

#include <algorithm>

namespace dsn {

std::vector<NodeId> greedyDominatingSet(const Graph& g) {
  const auto live = g.liveNodes();
  std::vector<bool> covered(g.size(), false);
  std::size_t uncovered = live.size();
  std::vector<NodeId> ds;

  while (uncovered > 0) {
    NodeId best = kInvalidNode;
    std::size_t bestGain = 0;
    for (NodeId v : live) {
      std::size_t gain = covered[v] ? 0u : 1u;
      for (NodeId u : g.neighbors(v))
        if (!covered[u]) ++gain;
      if (gain > bestGain) {
        bestGain = gain;
        best = v;
      }
    }
    DSN_CHECK(best != kInvalidNode, "greedy DS: no progress possible");
    ds.push_back(best);
    if (!covered[best]) {
      covered[best] = true;
      --uncovered;
    }
    for (NodeId u : g.neighbors(best)) {
      if (!covered[u]) {
        covered[u] = true;
        --uncovered;
      }
    }
  }
  std::sort(ds.begin(), ds.end());
  return ds;
}

std::vector<NodeId> greedyMaximalIndependentSet(const Graph& g) {
  std::vector<bool> blocked(g.size(), false);
  std::vector<NodeId> mis;
  for (NodeId v : g.liveNodes()) {
    if (blocked[v]) continue;
    mis.push_back(v);
    blocked[v] = true;
    for (NodeId u : g.neighbors(v)) blocked[u] = true;
  }
  return mis;
}

std::vector<std::vector<NodeId>> greedyCliqueCover(const Graph& g) {
  std::vector<bool> covered(g.size(), false);
  std::vector<std::vector<NodeId>> cliques;
  for (NodeId seed : g.liveNodes()) {
    if (covered[seed]) continue;
    std::vector<NodeId> clique{seed};
    covered[seed] = true;
    // Grow by candidates adjacent to every current member.
    for (NodeId cand : g.neighbors(seed)) {
      if (covered[cand]) continue;
      const bool adjacentToAll =
          std::all_of(clique.begin(), clique.end(), [&](NodeId m) {
            return g.hasEdge(cand, m);
          });
      if (adjacentToAll) {
        clique.push_back(cand);
        covered[cand] = true;
      }
    }
    cliques.push_back(std::move(clique));
  }
  return cliques;
}

bool isDominatingSet(const Graph& g, const std::vector<NodeId>& set) {
  std::vector<bool> dominated(g.size(), false);
  for (NodeId v : set) {
    if (!g.isAlive(v)) return false;
    dominated[v] = true;
    for (NodeId u : g.neighbors(v)) dominated[u] = true;
  }
  for (NodeId v : g.liveNodes())
    if (!dominated[v]) return false;
  return true;
}

bool isIndependentSet(const Graph& g, const std::vector<NodeId>& set) {
  for (std::size_t i = 0; i < set.size(); ++i)
    for (std::size_t j = i + 1; j < set.size(); ++j)
      if (g.hasEdge(set[i], set[j])) return false;
  return true;
}

}  // namespace dsn
