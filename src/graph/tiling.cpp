#include "graph/tiling.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dsn {

namespace {

/// Picks a grid dimension: roughly sqrt-proportional to the target tile
/// count along this axis, but never so fine that a cell edge drops below
/// `minCell`.
std::uint32_t gridDim(double extent, double minCell, double want) {
  double d = std::floor(want);
  if (minCell > 0.0) {
    const double maxCells = std::floor(extent / minCell);
    d = std::min(d, std::max(1.0, maxCells));
  }
  return static_cast<std::uint32_t>(std::max(1.0, d));
}

}  // namespace

TilePartition TilePartition::spatial(const std::vector<Point2D>& points,
                                     double minCellSize,
                                     std::uint32_t targetTiles) {
  DSN_REQUIRE(targetTiles >= 1, "tile partition needs at least one tile");
  const std::size_t n = points.size();
  TilePartition p;
  if (n == 0) {
    p.finalize({}, 1);
    return p;
  }

  double minX = points[0].x, maxX = points[0].x;
  double minY = points[0].y, maxY = points[0].y;
  for (const Point2D& pt : points) {
    minX = std::min(minX, pt.x);
    maxX = std::max(maxX, pt.x);
    minY = std::min(minY, pt.y);
    maxY = std::max(maxY, pt.y);
  }
  const double w = std::max(maxX - minX, 1e-9);
  const double h = std::max(maxY - minY, 1e-9);

  // Split targetTiles across the two axes proportionally to the box
  // aspect, respecting the minimum cell size on each axis.
  const double t = static_cast<double>(targetTiles);
  const std::uint32_t gx =
      gridDim(w, minCellSize, std::sqrt(t * w / h) + 0.5);
  const std::uint32_t gy = gridDim(
      h, minCellSize,
      std::max(1.0, t / static_cast<double>(std::max(1u, gx))) + 0.5);

  const double cellW = w / static_cast<double>(gx);
  const double cellH = h / static_cast<double>(gy);
  std::vector<std::uint32_t> tileOf(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto ix = static_cast<std::uint32_t>((points[v].x - minX) / cellW);
    auto iy = static_cast<std::uint32_t>((points[v].y - minY) / cellH);
    ix = std::min(ix, gx - 1);
    iy = std::min(iy, gy - 1);
    tileOf[v] = iy * gx + ix;
  }
  p.finalize(std::move(tileOf), gx * gy);
  return p;
}

TilePartition TilePartition::blocked(std::size_t nodeCount,
                                     std::uint32_t targetTiles) {
  DSN_REQUIRE(targetTiles >= 1, "tile partition needs at least one tile");
  TilePartition p;
  if (nodeCount == 0) {
    p.finalize({}, 1);
    return p;
  }
  const std::size_t maxTiles =
      std::max<std::size_t>(1, (nodeCount + kMinBlock - 1) / kMinBlock);
  const auto tiles = static_cast<std::uint32_t>(
      std::min<std::size_t>(targetTiles, maxTiles));
  const std::size_t block = (nodeCount + tiles - 1) / tiles;
  std::vector<std::uint32_t> tileOf(nodeCount);
  for (std::size_t v = 0; v < nodeCount; ++v)
    tileOf[v] = static_cast<std::uint32_t>(v / block);
  // The last blocks can be empty when block rounding overshoots; the tile
  // count still reflects the assignment map's range.
  p.finalize(std::move(tileOf), tiles);
  return p;
}

void TilePartition::finalize(std::vector<std::uint32_t> tileOf,
                             std::uint32_t tiles) {
  DSN_REQUIRE(tiles >= 1, "tile partition needs at least one tile");
  tileCount_ = tiles;
  tileOf_ = std::move(tileOf);
  const std::size_t n = tileOf_.size();

  memberOffsets_.assign(tiles + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    DSN_REQUIRE(tileOf_[v] < tiles, "tile assignment out of range");
    ++memberOffsets_[tileOf_[v] + 1];
  }
  maxTileSize_ = 0;
  for (std::uint32_t t = 0; t < tiles; ++t) {
    maxTileSize_ =
        std::max(maxTileSize_, static_cast<std::size_t>(memberOffsets_[t + 1]));
    memberOffsets_[t + 1] += memberOffsets_[t];
  }

  members_.resize(n);
  localIndex_.resize(n);
  std::vector<std::uint32_t> cursor(memberOffsets_.begin(),
                                    memberOffsets_.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t t = tileOf_[v];
    localIndex_[v] = cursor[t] - memberOffsets_[t];
    members_[cursor[t]++] = static_cast<NodeId>(v);
  }
}

}  // namespace dsn
