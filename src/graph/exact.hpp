// Exact solvers for small graphs.
//
// Property 1 of the paper bounds the cluster structure against two
// NP-hard quantities: p, the minimum number of complete subgraphs
// covering G (Property 1(1): #clusters ≤ p, |BT| ≤ 2p−1), and |MDS|,
// the minimum dominating set (Property 1(3), unit-disk case:
// #clusters ≤ 5·|MDS|). The greedy approximations in domination.hpp can
// only sanity-check orders of magnitude; these exact solvers make the
// inequalities testable as stated — for the small n where exhaustive
// search is feasible.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace dsn {

/// Exact minimum dominating set via bounded subset search (iterates
/// cardinality upward, pruned by the greedy upper bound). Feasible for
/// ~25 live nodes and the small optima typical of connected unit-disk
/// graphs. Throws PreconditionError above `maxNodes`.
std::vector<NodeId> exactMinimumDominatingSet(const Graph& g,
                                              std::size_t maxNodes = 26);

/// Exact minimum clique cover (= chromatic number of the complement)
/// via branch-and-bound: nodes are assigned to existing clique classes
/// or open a new one, pruned against the best cover found. Feasible for
/// ~16 live nodes. Throws PreconditionError above `maxNodes`.
std::vector<std::vector<NodeId>> exactMinimumCliqueCover(
    const Graph& g, std::size_t maxNodes = 16);

}  // namespace dsn
