// Deployment generators: node placements that define the flat WSN.
//
// The paper evaluates on square fields of 8x8, 10x10 and 12x12 "units"
// (1 unit = 100 m) with a 50 m communication range, growing the network
// incrementally via node-move-in. See DESIGN.md §4(6) for why the default
// generator attaches each node within range of the existing network:
// a fully uniform scatter at those densities is almost surely
// disconnected, and the architecture itself is defined by incremental
// insertion of connected nodes.
#pragma once

#include <vector>

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace dsn {

/// A rectangular deployment field [0,width] x [0,height].
struct Field {
  double width = 0.0;
  double height = 0.0;

  /// Paper-style field of `units` x `units` squares of `unitMeters` each.
  static Field squareUnits(int units, double unitMeters = 100.0);
};

/// Parameters of a deployment.
struct DeployConfig {
  Field field;
  /// Communication range in the field's length unit (paper: 50 m).
  double range = 50.0;
  /// Number of nodes to place.
  std::size_t nodeCount = 0;
};

/// Uniform i.i.d. placement over the field. May yield a disconnected
/// unit-disk graph at low density.
std::vector<Point2D> deployUniform(const DeployConfig& cfg, Rng& rng);

/// Incremental-attach placement (default for paper experiments): the
/// first node is uniform; each later node is re-sampled uniformly until it
/// lands within `range` of an already-placed node, so the unit-disk graph
/// is connected by construction and the sequence is a valid node-move-in
/// order. To keep the expected number of rejections bounded on sparse
/// fields, after `maxRejects` misses the candidate is drawn from an
/// annulus around a random placed node instead (still uniform in area).
std::vector<Point2D> deployIncrementalAttach(const DeployConfig& cfg,
                                             Rng& rng,
                                             int maxRejects = 64);

/// Evenly spaced grid clipped to `nodeCount` nodes (row-major), spacing
/// chosen so horizontal/vertical neighbors are within range. Deterministic;
/// used by tests for predictable topologies.
std::vector<Point2D> deployGrid(const DeployConfig& cfg);

/// A straight line of nodes spaced `0.9 * range` apart starting at the
/// origin. Produces a path graph; used by tests and worst-case benches.
std::vector<Point2D> deployLine(std::size_t nodeCount, double range);

/// A star: one hub at the origin with `nodeCount - 1` leaves placed on a
/// circle of radius `0.9 * range` (leaves are pairwise out of range when
/// few enough; with many leaves adjacent ones may connect).
std::vector<Point2D> deployStar(std::size_t nodeCount, double range);

}  // namespace dsn
