// Compressed-sparse-row snapshot of a Graph's adjacency.
//
// The mutable Graph stores one std::vector per node, which is the right
// shape for incremental move-in/move-out but costs a pointer chase (and a
// cold cache line) per neighbor list in the hot read phases — the radio
// simulator touches neighbor lists millions of times per bench. A
// CsrView flattens the adjacency into one offsets array and one targets
// array so sequential scans stay in one allocation.
//
// Neighbor order is preserved exactly (insertion order, the same order
// Graph::neighbors returns), so consumers that switch between the two
// representations produce bit-identical results. Dead nodes have empty
// ranges, mirroring Graph::neighbors on dead nodes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace dsn {

/// Immutable flattened adjacency. Rebuilt (not updated) from a Graph;
/// see Graph::csrView() for the epoch-tracked cache.
class CsrView {
 public:
  /// Contiguous neighbor range of one node.
  struct Span {
    const NodeId* first = nullptr;
    const NodeId* last = nullptr;

    const NodeId* begin() const { return first; }
    const NodeId* end() const { return last; }
    std::size_t size() const { return static_cast<std::size_t>(last - first); }
    bool empty() const { return first == last; }
    NodeId operator[](std::size_t i) const { return first[i]; }
  };

  CsrView() = default;

  /// Rebuilds from per-node adjacency vectors, reusing capacity.
  void assign(const std::vector<std::vector<NodeId>>& adjacency) {
    offsets_.resize(adjacency.size() + 1);
    std::size_t total = 0;
    for (std::size_t v = 0; v < adjacency.size(); ++v) {
      offsets_[v] = static_cast<std::uint32_t>(total);
      total += adjacency[v].size();
    }
    DSN_REQUIRE(total <= std::numeric_limits<std::uint32_t>::max(),
                "CSR snapshot: directed edge count exceeds 32-bit offsets");
    offsets_[adjacency.size()] = static_cast<std::uint32_t>(total);
    targets_.resize(total);
    NodeId* out = targets_.data();
    for (const auto& row : adjacency) {
      for (const NodeId u : row) *out++ = u;
    }
  }

  Span neighbors(NodeId v) const {
    const NodeId* base = targets_.data();
    return Span{base + offsets_[v], base + offsets_[v + 1]};
  }

  std::size_t degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Number of node slots covered by the snapshot.
  std::size_t nodeCount() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Total directed edge slots (2E for a live undirected graph).
  std::size_t arcCount() const { return targets_.size(); }

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<NodeId> targets_;
};

}  // namespace dsn
