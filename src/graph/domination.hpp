// Dominating sets, independent sets and clique covers.
//
// Used to check the paper's Property 1 empirically: the cluster-heads of
// CNet(G) form an independent dominating set, the number of clusters is at
// most p (the smallest clique-cover size — approximated here by a greedy
// cover, which upper-bounds p... and therefore also upper-bounds the
// cluster count when the property holds), and on unit-disk graphs the
// cluster count is within a constant factor of a minimum dominating set
// (approximated by the greedy O(log n) algorithm).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace dsn {

/// Greedy minimum-dominating-set approximation (classic O(log n)-factor
/// greedy: repeatedly pick the node covering the most uncovered nodes).
std::vector<NodeId> greedyDominatingSet(const Graph& g);

/// Greedy maximal independent set in ascending id order.
std::vector<NodeId> greedyMaximalIndependentSet(const Graph& g);

/// Greedy clique cover: repeatedly grows a clique from the lowest
/// uncovered id. Returns the cliques; their count upper-bounds p, the
/// minimum number of complete subgraphs covering G (paper Property 1).
std::vector<std::vector<NodeId>> greedyCliqueCover(const Graph& g);

/// True when `set` dominates all live nodes of `g` (every live node is in
/// the set or adjacent to a member).
bool isDominatingSet(const Graph& g, const std::vector<NodeId>& set);

/// True when no two members of `set` are adjacent in `g`.
bool isIndependentSet(const Graph& g, const std::vector<NodeId>& set);

}  // namespace dsn
