// Spatial tile partition over a deployment, for sharded round execution.
//
// The sharded radio scheduler (DESIGN.md §14) splits one round's work
// across worker threads by *tile*: a partition of the node ids into
// contiguous spatial cells (when positions are known) or contiguous id
// blocks (fallback). Correctness never depends on the partition — the
// resolver rechecks tile membership per arc — so any partition is valid;
// a spatial one just keeps most arcs tile-internal, which is what makes
// the shards near-independent for unit-disk graphs.
//
// The partition is a pure function of (positions, minCellSize,
// targetTiles) — never of the worker count — so a run's tile structure,
// and therefore every merge order derived from it, is identical at any
// --threads value.
#pragma once

#include <cstdint>
#include <vector>

#include "util/geometry.hpp"
#include "util/types.hpp"

namespace dsn {

/// An immutable assignment of node ids to tiles, with the per-tile
/// member lists (node-ascending) and local dense indices the per-tile
/// resolve scratch is addressed by.
class TilePartition {
 public:
  TilePartition() = default;

  /// Grid partition over node positions. Tile edges never drop below
  /// `minCellSize` (use the radio range: then a node's neighborhood
  /// spans at most the adjacent tile in each axis), and the grid aims
  /// for ~`targetTiles` tiles over the bounding box of `points`.
  static TilePartition spatial(const std::vector<Point2D>& points,
                               double minCellSize,
                               std::uint32_t targetTiles);

  /// Contiguous id-range partition for runs without position data.
  /// Blocks are at least kMinBlock nodes so tiny graphs do not shatter
  /// into single-node tiles.
  static TilePartition blocked(std::size_t nodeCount,
                               std::uint32_t targetTiles);

  std::uint32_t tileCount() const { return tileCount_; }
  std::size_t nodeCount() const { return tileOf_.size(); }

  std::uint32_t tileOf(NodeId v) const { return tileOf_[v]; }

  /// Dense index of `v` inside its tile's member list; addresses the
  /// per-tile resolve scratch.
  std::uint32_t localIndex(NodeId v) const { return localIndex_[v]; }

  /// Members of tile `t`, node-ascending.
  struct Span {
    const NodeId* first = nullptr;
    const NodeId* last = nullptr;
    const NodeId* begin() const { return first; }
    const NodeId* end() const { return last; }
    std::size_t size() const {
      return static_cast<std::size_t>(last - first);
    }
  };
  Span members(std::uint32_t t) const {
    const NodeId* base = members_.data();
    return Span{base + memberOffsets_[t], base + memberOffsets_[t + 1]};
  }

  /// Largest tile population — the per-tile scratch dimension.
  std::size_t maxTileSize() const { return maxTileSize_; }

  static constexpr std::size_t kMinBlock = 32;

 private:
  /// Builds member lists / local indices from a finished tileOf map.
  void finalize(std::vector<std::uint32_t> tileOf, std::uint32_t tiles);

  std::uint32_t tileCount_ = 0;
  std::vector<std::uint32_t> tileOf_;
  std::vector<std::uint32_t> localIndex_;
  std::vector<std::uint32_t> memberOffsets_;
  std::vector<NodeId> members_;
  std::size_t maxTileSize_ = 0;
};

}  // namespace dsn
