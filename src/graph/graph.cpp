#include "graph/graph.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace dsn {

namespace {
const std::vector<NodeId> kEmptyAdjacency;
}

Graph::Graph(std::size_t n)
    : adjacency_(n), alive_(n, true), liveCount_(n) {}

Graph::Graph(const Graph& other)
    : adjacency_(other.adjacency_),
      alive_(other.alive_),
      liveCount_(other.liveCount_),
      edgeCount_(other.edgeCount_) {}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  adjacency_ = other.adjacency_;
  alive_ = other.alive_;
  liveCount_ = other.liveCount_;
  edgeCount_ = other.edgeCount_;
  ++epoch_;  // cold CSR cache
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : adjacency_(std::move(other.adjacency_)),
      alive_(std::move(other.alive_)),
      liveCount_(other.liveCount_),
      edgeCount_(other.edgeCount_) {}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  adjacency_ = std::move(other.adjacency_);
  alive_ = std::move(other.alive_);
  liveCount_ = other.liveCount_;
  edgeCount_ = other.edgeCount_;
  ++epoch_;
  return *this;
}

NodeId Graph::addNode() {
  adjacency_.emplace_back();
  alive_.push_back(true);
  ++liveCount_;
  ++epoch_;
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::requireLive(NodeId v, const char* what) const {
  DSN_REQUIRE(isValidId(v), std::string(what) + ": node id out of range");
  DSN_REQUIRE(alive_[v], std::string(what) + ": node is not alive");
}

void Graph::removeNode(NodeId v) {
  requireLive(v, "removeNode");
  for (NodeId u : adjacency_[v]) {
    auto& nu = adjacency_[u];
    nu.erase(std::remove(nu.begin(), nu.end(), v), nu.end());
    --edgeCount_;
  }
  adjacency_[v].clear();
  alive_[v] = false;
  --liveCount_;
  ++epoch_;
}

void Graph::addEdge(NodeId u, NodeId v) {
  requireLive(u, "addEdge");
  requireLive(v, "addEdge");
  DSN_REQUIRE(u != v, "addEdge: self loops not allowed");
  if (hasEdge(u, v)) return;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++edgeCount_;
  ++epoch_;
}

void Graph::removeEdge(NodeId u, NodeId v) {
  requireLive(u, "removeEdge");
  requireLive(v, "removeEdge");
  auto& nu = adjacency_[u];
  const auto it = std::find(nu.begin(), nu.end(), v);
  if (it == nu.end()) return;
  nu.erase(it);
  auto& nv = adjacency_[v];
  nv.erase(std::remove(nv.begin(), nv.end(), u), nv.end());
  --edgeCount_;
  ++epoch_;
}

bool Graph::hasEdge(NodeId u, NodeId v) const {
  if (!isValidId(u) || !isValidId(v) || !alive_[u] || !alive_[v])
    return false;
  // Scan the smaller adjacency list.
  const auto& a = adjacency_[u].size() <= adjacency_[v].size()
                      ? adjacency_[u]
                      : adjacency_[v];
  const NodeId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(a.begin(), a.end(), target) != a.end();
}

const std::vector<NodeId>& Graph::neighbors(NodeId v) const {
  DSN_REQUIRE(isValidId(v), "neighbors: node id out of range");
  if (!alive_[v]) return kEmptyAdjacency;
  return adjacency_[v];
}

bool Graph::isAlive(NodeId v) const {
  return isValidId(v) && alive_[v];
}

const CsrView& Graph::csrView() const {
  // Double-checked: the common case (fresh snapshot) is one acquire load.
  // Rebuild is serialized; readers racing a concurrent *mutation* are
  // outside the contract (as for every other accessor).
  if (csrEpoch_.load(std::memory_order_acquire) != epoch_) {
    std::lock_guard<std::mutex> lock(csrMutex_);
    if (csrEpoch_.load(std::memory_order_relaxed) != epoch_) {
      // Rebuilds used to be invisible: a caller holding a stale graph
      // (churn between runs) silently paid O(V+E) here. Meter them so
      // the serve cache can assert its pre-warmed snapshots stay fresh.
      if (obs::enabled())
        obs::globalMetrics().counter("graph.csr.rebuild").increment();
      csr_.assign(adjacency_);
      csrEpoch_.store(epoch_, std::memory_order_release);
    }
  }
  return csr_;
}

const CsrView* Graph::csrViewIfFresh() const {
  return csrEpoch_.load(std::memory_order_acquire) == epoch_ ? &csr_
                                                             : nullptr;
}

std::vector<NodeId> Graph::liveNodes() const {
  std::vector<NodeId> out;
  out.reserve(liveCount_);
  for (NodeId v = 0; v < adjacency_.size(); ++v)
    if (alive_[v]) out.push_back(v);
  return out;
}

}  // namespace dsn
