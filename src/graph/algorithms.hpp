// Classic graph algorithms used for validation and metrics: traversal,
// connectivity, distance/diameter, and degree statistics.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace dsn {

/// BFS distances (hop counts) from `source` over live nodes. Unreachable
/// or dead nodes get -1. Index is node id.
std::vector<int> bfsDistances(const Graph& g, NodeId source);

/// True when all live nodes are mutually reachable (vacuously true for
/// zero or one live node).
bool isConnected(const Graph& g);

/// Connected components over live nodes: component id per node (-1 for
/// dead nodes), ids dense from 0.
std::vector<int> connectedComponents(const Graph& g, int* componentCount);

/// Live node ids reachable from `source` (including itself).
std::vector<NodeId> reachableFrom(const Graph& g, NodeId source);

/// Eccentricity of `source`: max BFS distance to a reachable node.
int eccentricity(const Graph& g, NodeId source);

/// Exact diameter (max pairwise hop distance) over live nodes; requires a
/// connected graph. O(n · (n + m)) — fine at bench scales.
int diameter(const Graph& g);

/// Degree summary over live nodes.
struct DegreeStats {
  std::size_t maxDegree = 0;
  double meanDegree = 0.0;
  std::size_t minDegree = 0;
};
DegreeStats degreeStats(const Graph& g);

/// Induced subgraph over `keep` (live ids): result has the same id space
/// as `g`, with nodes outside `keep` removed. Handy for G(V_BT).
Graph inducedSubgraph(const Graph& g, const std::vector<NodeId>& keep);

}  // namespace dsn
