#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace dsn {

std::vector<int> bfsDistances(const Graph& g, NodeId source) {
  DSN_REQUIRE(g.isAlive(source), "bfsDistances: source must be live");
  std::vector<int> dist(g.size(), -1);
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

bool isConnected(const Graph& g) {
  const auto live = g.liveNodes();
  if (live.size() <= 1) return true;
  const auto dist = bfsDistances(g, live.front());
  return std::all_of(live.begin(), live.end(),
                     [&](NodeId v) { return dist[v] >= 0; });
}

std::vector<int> connectedComponents(const Graph& g, int* componentCount) {
  std::vector<int> comp(g.size(), -1);
  int next = 0;
  for (NodeId start : g.liveNodes()) {
    if (comp[start] >= 0) continue;
    comp[start] = next;
    std::queue<NodeId> q;
    q.push(start);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (NodeId u : g.neighbors(v)) {
        if (comp[u] < 0) {
          comp[u] = next;
          q.push(u);
        }
      }
    }
    ++next;
  }
  if (componentCount) *componentCount = next;
  return comp;
}

std::vector<NodeId> reachableFrom(const Graph& g, NodeId source) {
  const auto dist = bfsDistances(g, source);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < dist.size(); ++v)
    if (dist[v] >= 0) out.push_back(v);
  return out;
}

int eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfsDistances(g, source);
  int ecc = 0;
  for (int d : dist) ecc = std::max(ecc, d);
  return ecc;
}

int diameter(const Graph& g) {
  DSN_REQUIRE(isConnected(g), "diameter requires a connected graph");
  int best = 0;
  for (NodeId v : g.liveNodes()) best = std::max(best, eccentricity(g, v));
  return best;
}

DegreeStats degreeStats(const Graph& g) {
  DegreeStats s;
  const auto live = g.liveNodes();
  if (live.empty()) return s;
  s.minDegree = g.degree(live.front());
  double sum = 0.0;
  for (NodeId v : live) {
    const std::size_t d = g.degree(v);
    s.maxDegree = std::max(s.maxDegree, d);
    s.minDegree = std::min(s.minDegree, d);
    sum += static_cast<double>(d);
  }
  s.meanDegree = sum / static_cast<double>(live.size());
  return s;
}

Graph inducedSubgraph(const Graph& g, const std::vector<NodeId>& keep) {
  std::vector<bool> keepMask(g.size(), false);
  for (NodeId v : keep) {
    DSN_REQUIRE(g.isAlive(v), "inducedSubgraph: keep node must be live");
    keepMask[v] = true;
  }
  // Start from a copy of the id space with all live nodes, then drop the
  // complement so ids stay aligned with `g`.
  Graph sub(g.size());
  for (NodeId v = 0; v < g.size(); ++v) {
    if (!g.isAlive(v) || !keepMask[v]) continue;
    for (NodeId u : g.neighbors(v)) {
      if (u > v && keepMask[u]) sub.addEdge(v, u);
    }
  }
  for (NodeId v = 0; v < g.size(); ++v) {
    if (!g.isAlive(v) || !keepMask[v]) sub.removeNode(v);
  }
  return sub;
}

}  // namespace dsn
