#include "graph/exact.hpp"

#include <algorithm>

#include "graph/domination.hpp"
#include "util/error.hpp"

namespace dsn {
namespace {

using Mask = std::uint64_t;

struct DsSearch {
  const std::vector<NodeId>* nodes;
  std::vector<Mask> closedNeighborhood;  // per index
  Mask all = 0;
  std::size_t best = 0;
  std::vector<std::size_t> current;
  std::vector<std::size_t> bestSet;
  bool found = false;

  // Choose `remaining` more dominators starting from index `from`,
  // given `covered` so far.
  void search(std::size_t from, std::size_t remaining, Mask covered) {
    if (covered == all) {
      bestSet = current;
      found = true;
      return;
    }
    if (found || remaining == 0 || from >= nodes->size()) return;
    // Prune: even covering maximal neighborhoods can't finish in time.
    // (cheap bound: each pick covers at most maxCover bits)
    for (std::size_t i = from; i < nodes->size(); ++i) {
      if (found) return;
      // Skip picks that add nothing.
      if ((closedNeighborhood[i] & ~covered) == 0) continue;
      current.push_back(i);
      search(i + 1, remaining - 1, covered | closedNeighborhood[i]);
      current.pop_back();
    }
  }
};

}  // namespace

std::vector<NodeId> exactMinimumDominatingSet(const Graph& g,
                                              std::size_t maxNodes) {
  const auto live = g.liveNodes();
  DSN_REQUIRE(live.size() <= maxNodes && live.size() <= 64,
              "exact MDS: graph too large for exhaustive search");
  if (live.empty()) return {};

  std::vector<std::size_t> indexOf(g.size(), 0);
  for (std::size_t i = 0; i < live.size(); ++i) indexOf[live[i]] = i;

  DsSearch s;
  s.nodes = &live;
  s.closedNeighborhood.resize(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    Mask m = Mask{1} << i;
    for (NodeId u : g.neighbors(live[i]))
      m |= Mask{1} << indexOf[u];
    s.closedNeighborhood[i] = m;
    s.all |= Mask{1} << i;
  }

  const std::size_t upper = greedyDominatingSet(g).size();
  for (std::size_t k = 1; k <= upper; ++k) {
    s.found = false;
    s.current.clear();
    s.search(0, k, 0);
    if (s.found) {
      std::vector<NodeId> out;
      for (std::size_t i : s.bestSet) out.push_back(live[i]);
      return out;
    }
  }
  DSN_CHECK(false, "greedy DS was not dominating?");
  return {};
}

namespace {

struct CoverSearch {
  const Graph* g;
  const std::vector<NodeId>* nodes;
  std::size_t best;
  std::vector<std::vector<NodeId>> classes;
  std::vector<std::vector<NodeId>> bestClasses;

  bool fitsClass(NodeId v, const std::vector<NodeId>& clique) const {
    return std::all_of(clique.begin(), clique.end(),
                       [&](NodeId u) { return g->hasEdge(u, v); });
  }

  void search(std::size_t idx) {
    if (classes.size() >= best) return;  // bound
    if (idx == nodes->size()) {
      best = classes.size();
      bestClasses = classes;
      return;
    }
    const NodeId v = (*nodes)[idx];
    // Index-based iteration: the recursive call may push a new class and
    // reallocate `classes`, which would dangle a range-for reference.
    const std::size_t openClasses = classes.size();
    for (std::size_t ci = 0; ci < openClasses; ++ci) {
      if (fitsClass(v, classes[ci])) {
        classes[ci].push_back(v);
        search(idx + 1);
        classes[ci].pop_back();
      }
    }
    classes.push_back({v});
    search(idx + 1);
    classes.pop_back();
  }
};

}  // namespace

std::vector<std::vector<NodeId>> exactMinimumCliqueCover(
    const Graph& g, std::size_t maxNodes) {
  const auto live = g.liveNodes();
  DSN_REQUIRE(live.size() <= maxNodes,
              "exact clique cover: graph too large for exhaustive search");
  if (live.empty()) return {};

  CoverSearch s;
  s.g = &g;
  s.nodes = &live;
  s.best = greedyCliqueCover(g).size() + 1;  // strict upper bound
  s.search(0);
  DSN_CHECK(!s.bestClasses.empty(), "cover search found nothing");
  return s.bestClasses;
}

}  // namespace dsn
