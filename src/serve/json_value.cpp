#include "serve/json_value.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace dsn::serve {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != s_.size()) fail("trailing input");
    return v;
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + " at offset " + std::to_string(pos_));
  }
  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(const char* word, std::size_t len) {
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parseValue() {
    skipWs();
    const char c = peek();
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.str = parseString();
      return v;
    }
    JsonValue v;
    if (consume("null", 4)) return v;
    if (consume("true", 4)) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume("false", 5)) {
      v.type = JsonValue::Type::kBool;
      return v;
    }
    return parseNumber();
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("bad escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          const unsigned long code =
              std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Job lines only escape control characters; keep it ASCII.
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parseValue());
      skipWs();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      v.object.emplace(std::move(key), parseValue());
      skipWs();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }
};

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto it = object.find(key);
  if (it == object.end()) throw std::runtime_error("missing key: " + key);
  return it->second;
}

JsonValue parseJson(const std::string& text) { return Parser(text).parse(); }

}  // namespace dsn::serve
