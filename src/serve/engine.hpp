// The resident serve engine: a stream of scenario jobs in, a stream of
// dsnet-run-v1 records out.
//
// Jobs are scheduled on an exec::ThreadPool; each worker leases its
// JobScratch (resolve scratch, record buffer, telemetry registries)
// from a LeasePool, runs the scenario over either the shared warm
// deployment (read-only jobs) or a private build (mutating jobs), and
// renders its record into the worker's reused buffer. A sequencer
// flushes finished records to the sink in job order, incrementally —
// output bytes are a pure function of the job stream at any --jobs
// count, because every record is a pure function of its own job line
// (see job.hpp) and the ordering is by stream position.
//
// Steady-state serving performs zero marginal heap allocations in the
// engine itself at --jobs 1 with telemetry off: warm cache hit (map
// find + refcount), pooled scratch lease (freelist pop), record append
// into retained capacity, to_chars/snprintf into stack buffers. The
// serve alloc-guard pins this down.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "exec/lease_pool.hpp"
#include "radio/channel.hpp"
#include "serve/job.hpp"
#include "serve/warm_cache.hpp"

namespace dsn::serve {

struct ServeOptions {
  /// Worker threads; 0/negative = hardware concurrency, 1 = inline on
  /// the calling thread (the zero-allocation path).
  int jobs = 1;
  /// Warm-cache capacity in deployments; 0 = cold (build per job).
  std::size_t cacheCapacity = 64;
  /// Append a "timing" section (wall-clock phase tree) to each record.
  /// Off by default so records are byte-comparable across runs.
  bool includeTiming = false;
};

struct ServeReport {
  std::size_t jobsRun = 0;
  /// Jobs whose line failed to parse (error record emitted in place).
  std::size_t parseErrors = 0;
  /// Jobs that threw while running (error record emitted in place).
  std::size_t jobsFailed = 0;
  /// Scenario runs that completed but failed an invariant validation.
  std::size_t invalidOutcomes = 0;
  std::size_t workers = 0;
  double wallMs = 0.0;
  WarmStateCache::Stats cache;

  bool ok() const { return parseErrors == 0 && jobsFailed == 0; }
};

/// Per-worker reusable state; leased per job from the engine's pool.
/// (Job-local telemetry registries are NOT pooled: a reused registry
/// would leak instrument *names* from earlier jobs into later records
/// — reset() keeps names registered — breaking the record-is-a-pure-
/// function-of-the-job-line guarantee. With telemetry enabled each job
/// pays a fresh registry; with telemetry off, none is created and the
/// loop stays allocation-free.)
struct JobScratch {
  ResolveScratch scratch;
  std::string record;
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions options = {});

  /// Reads dsnet-job-v1 lines from `in` (blank lines and #-comments
  /// skipped), serves them, writes one record line per job to `out` in
  /// stream order. Returns the aggregate report.
  ServeReport serveStream(std::istream& in, std::ostream& out);

  /// Serves pre-parsed jobs; `emit` receives each record (no trailing
  /// newline) in job-index order, possibly from a worker thread but
  /// never concurrently. Jobs must be indexed 0..n-1 in vector order.
  ServeReport serveJobs(const std::vector<ServeJob>& jobs,
                        const std::function<void(std::string_view)>& emit);

  /// Pre-builds `workers` scratch slots and (optionally) the warm entry
  /// for `config` — lets the alloc-guard pay every one-time cost before
  /// arming its counter.
  void warmUp(const NetworkConfig* config = nullptr);

  WarmStateCache& cache() { return cache_; }
  const ServeOptions& options() const { return options_; }

 private:
  enum class JobStatus : std::uint8_t {
    kOk,
    kInvalidOutcome,  ///< ran, but a scenario validation failed
    kParseError,
    kFailed,  ///< threw while building or running
  };

  /// Runs one job into `scratch.record`; never throws.
  JobStatus runJob(const ServeJob& job, JobScratch& scratch);

  ServeOptions options_;
  WarmStateCache cache_;
  exec::LeasePool<JobScratch> scratchPool_;
  /// Per-call status buffer, reused so steady-state serveJobs calls do
  /// not allocate (serveJobs is not reentrant on one engine).
  std::vector<JobStatus> statuses_;
};

}  // namespace dsn::serve
