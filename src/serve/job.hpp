// The serve job protocol: `dsnet-job-v1`.
//
// One job = one deployment + one scenario, expressed as a single JSON
// line:
//
//   {"schema":"dsnet-job-v1","id":7,"nodes":200,"seed":2007,
//    "field_units":10,"range":50.0,"deploy":"attach","channels":1,
//    "drop":0.0,"protocol":"icff","trace_cap":0,"threads":0,
//    "scenario":"broadcast random icff\ngather"}
//
// Required: `schema`, `nodes`, `scenario` (scenario grammar as in
// core/scenario.hpp, newlines escaped). Everything else defaults to the
// wsn_sim CLI defaults. `id` defaults to the line index; explicit ids
// must be strictly increasing across a stream so "ordered by id" and
// "ordered by arrival" coincide and the emitter never has to buffer
// past a gap it cannot close.
//
// Semantics match a one-shot `wsn_sim` invocation with the same knobs:
// the deployment is a pure function of (nodes, seed, field_units,
// range, deploy), the scenario RNG is seeded with `seed ^ 0xCAFE`, so a
// job's dsnet-run-v1 record is a pure function of the job line —
// regardless of batch position, worker count, or cache state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "broadcast/runner.hpp"
#include "core/scenario.hpp"
#include "core/sensor_network.hpp"

namespace dsn::serve {

struct ServeJob {
  /// Position in the stream (== emit order).
  std::size_t index = 0;
  /// Client-visible id echoed in the run record; defaults to `index`.
  std::uint64_t id = 0;
  std::size_t nodes = 0;
  std::uint64_t seed = 1;
  int fieldUnits = 10;
  double range = 50.0;
  DeploymentKind deploy = DeploymentKind::kIncrementalAttach;
  Channel channels = 1;
  double drop = 0.0;
  std::optional<BroadcastScheme> protocol;
  std::size_t traceCapacity = 0;
  int threads = 0;
  bool autoRepair = false;
  std::string scenarioText;
  /// Parsed form of `scenarioText` (filled by parseJobLine).
  std::vector<ScenarioEvent> events;
  /// True when any event mutates the SensorNetwork — the job then runs
  /// on a private build instead of the shared warm snapshot.
  bool mutates = false;
  /// deploymentFingerprint of networkConfig() (filled by parseJobLine).
  std::uint64_t fingerprint = 0;
  /// Non-empty when the line failed to parse; the engine emits an error
  /// record at this job's position instead of running anything.
  std::string parseError;

  bool failed() const { return !parseError.empty(); }
};

/// NetworkConfig this job deploys (the warm-cache key).
NetworkConfig jobNetworkConfig(const ServeJob& job);

/// ScenarioOptions for running this job (same derivation as wsn_sim:
/// scenario RNG seed = job seed ^ 0xCAFE, protocol knobs copied).
ScenarioOptions jobScenarioOptions(const ServeJob& job);

/// Parses one JSONL line. Never throws: malformed lines come back with
/// `parseError` set (and `index`/`id` filled) so the engine can emit an
/// in-order error record and keep serving. `previousId` is the last
/// explicit or defaulted id handed out, used to enforce strictly
/// increasing ids (pass nullptr for a standalone parse).
ServeJob parseJobLine(const std::string& line, std::size_t index,
                      const std::uint64_t* previousId = nullptr);

/// Renders the job as one dsnet-job-v1 line (no trailing newline).
/// parseJobLine(formatJobLine(j), j.index) reproduces `j`.
std::string formatJobLine(const ServeJob& job);

/// Deterministic mixed demo workload: `count` jobs cycling through
/// `deployments` distinct topologies. The common case is a light query
/// (slotted broadcast / validation probe at `nodes`); every
/// `heavyEvery`-th job (0 = never) is a big request from a rotation of
/// reliable-broadcast-under-loss, gather waves, and the rival schemes
/// at a quarter of the node count; every `mutatingEvery`-th job (0 =
/// never) runs a churn scenario that mutates its network. Used by the
/// perf_serve bench, the CI serve-smoke stream, and `wsn_serve
/// --emit-demo`.
std::vector<ServeJob> demoJobs(std::size_t count, std::uint64_t seed,
                               std::size_t nodes = 200,
                               std::size_t deployments = 8,
                               std::size_t mutatingEvery = 16,
                               std::size_t heavyEvery = 4);

}  // namespace dsn::serve
