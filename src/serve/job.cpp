#include "serve/job.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "serve/json_value.hpp"
#include "util/error.hpp"

namespace dsn::serve {

namespace {

const char* deployWord(DeploymentKind k) {
  switch (k) {
    case DeploymentKind::kIncrementalAttach: return "attach";
    case DeploymentKind::kUniform: return "uniform";
    case DeploymentKind::kGrid: return "grid";
    case DeploymentKind::kLine: return "line";
    case DeploymentKind::kStar: return "star";
  }
  return "attach";
}

bool parseDeployWord(const std::string& word, DeploymentKind& out) {
  if (word == "attach") out = DeploymentKind::kIncrementalAttach;
  else if (word == "uniform") out = DeploymentKind::kUniform;
  else if (word == "grid") out = DeploymentKind::kGrid;
  else if (word == "line") out = DeploymentKind::kLine;
  else if (word == "star") out = DeploymentKind::kStar;
  else return false;
  return true;
}

/// Lowercase scheme word accepted by parseBroadcastScheme (the scenario
/// grammar's spelling, unlike toString's table-header spelling).
const char* schemeWord(BroadcastScheme s) {
  switch (s) {
    case BroadcastScheme::kDfo: return "dfo";
    case BroadcastScheme::kCff: return "cff";
    case BroadcastScheme::kImprovedCff: return "icff";
    case BroadcastScheme::kFlooding: return "flood";
    case BroadcastScheme::kGossip: return "gossip";
    case BroadcastScheme::kGossipAdaptive: return "agossip";
    case BroadcastScheme::kCounter: return "counter";
    case BroadcastScheme::kDistance: return "distance";
    case BroadcastScheme::kRlnc: return "rlnc";
  }
  return "icff";
}

[[noreturn]] void fieldFail(const std::string& key, const char* what) {
  throw std::runtime_error("field '" + key + "': " + what);
}

double numberField(const JsonValue& doc, const std::string& key,
                   double fallback) {
  if (!doc.has(key)) return fallback;
  const JsonValue& v = doc.at(key);
  if (v.type != JsonValue::Type::kNumber) fieldFail(key, "expected a number");
  return v.number;
}

std::uint64_t uintField(const JsonValue& doc, const std::string& key,
                        std::uint64_t fallback) {
  const double d = numberField(doc, key, static_cast<double>(fallback));
  if (d < 0.0 || d != std::floor(d) || d > 1.8e19)
    fieldFail(key, "expected a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

std::string stringField(const JsonValue& doc, const std::string& key,
                        const std::string& fallback) {
  if (!doc.has(key)) return fallback;
  const JsonValue& v = doc.at(key);
  if (v.type != JsonValue::Type::kString) fieldFail(key, "expected a string");
  return v.str;
}

bool boolField(const JsonValue& doc, const std::string& key, bool fallback) {
  if (!doc.has(key)) return fallback;
  const JsonValue& v = doc.at(key);
  if (v.type != JsonValue::Type::kBool) fieldFail(key, "expected a bool");
  return v.boolean;
}

void appendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

NetworkConfig jobNetworkConfig(const ServeJob& job) {
  NetworkConfig cfg;
  cfg.nodeCount = job.nodes;
  cfg.seed = job.seed;
  cfg.field = Field::squareUnits(job.fieldUnits);
  cfg.range = job.range;
  cfg.deployment = job.deploy;
  cfg.autoRepair = job.autoRepair;
  return cfg;
}

ScenarioOptions jobScenarioOptions(const ServeJob& job) {
  ScenarioOptions sopt;
  sopt.seed = job.seed ^ 0xCAFE;  // the wsn_sim derivation
  sopt.protocol.dropProbability = job.drop;
  sopt.protocol.channels = job.channels;
  sopt.protocol.threads = job.threads;
  sopt.protocol.traceCapacity = job.traceCapacity;
  sopt.forceScheme = job.protocol;
  return sopt;
}

ServeJob parseJobLine(const std::string& line, std::size_t index,
                      const std::uint64_t* previousId) {
  ServeJob job;
  job.index = index;
  job.id = static_cast<std::uint64_t>(index);
  try {
    const JsonValue doc = parseJson(line);
    if (doc.type != JsonValue::Type::kObject)
      throw std::runtime_error("job line is not a JSON object");
    const std::string schema = stringField(doc, "schema", "");
    if (schema != "dsnet-job-v1")
      throw std::runtime_error("unsupported schema '" + schema +
                               "' (want dsnet-job-v1)");
    job.id = uintField(doc, "id", job.id);
    if (previousId != nullptr && index > 0 && job.id <= *previousId)
      throw std::runtime_error(
          "job ids must be strictly increasing across the stream (got " +
          std::to_string(job.id) + " after " + std::to_string(*previousId) +
          ")");
    job.nodes = uintField(doc, "nodes", 0);
    if (job.nodes == 0) fieldFail("nodes", "required and must be positive");
    job.seed = uintField(doc, "seed", job.seed);
    job.fieldUnits = static_cast<int>(uintField(
        doc, "field_units", static_cast<std::uint64_t>(job.fieldUnits)));
    if (job.fieldUnits <= 0) fieldFail("field_units", "must be positive");
    job.range = numberField(doc, "range", job.range);
    if (!(job.range > 0.0)) fieldFail("range", "must be positive");
    const std::string deploy = stringField(doc, "deploy", "attach");
    if (!parseDeployWord(deploy, job.deploy))
      fieldFail("deploy", "want attach|uniform|grid|line|star");
    job.channels = static_cast<Channel>(uintField(doc, "channels", 1));
    if (job.channels == 0) fieldFail("channels", "must be positive");
    job.drop = numberField(doc, "drop", 0.0);
    if (job.drop < 0.0 || job.drop >= 1.0)
      fieldFail("drop", "must be in [0, 1)");
    if (doc.has("protocol")) {
      BroadcastScheme scheme{};
      const std::string word = stringField(doc, "protocol", "");
      if (!parseBroadcastScheme(word, scheme))
        fieldFail("protocol",
                  "want dfo|cff|icff|flood|gossip|agossip|counter|"
                  "distance|rlnc");
      job.protocol = scheme;
    }
    job.traceCapacity = uintField(doc, "trace_cap", 0);
    job.threads = static_cast<int>(uintField(doc, "threads", 0));
    job.autoRepair = boolField(doc, "auto_repair", false);
    if (!doc.has("scenario")) fieldFail("scenario", "required");
    job.scenarioText = stringField(doc, "scenario", "");
    job.events = parseScenario(job.scenarioText);
    job.mutates = scenarioMutatesNetwork(job.events);
    job.fingerprint = deploymentFingerprint(jobNetworkConfig(job));
  } catch (const std::exception& e) {
    job.parseError = e.what();
  }
  return job;
}

std::string formatJobLine(const ServeJob& job) {
  std::string out;
  out.reserve(192 + job.scenarioText.size());
  char buf[64];
  out += "{\"schema\":\"dsnet-job-v1\",\"id\":";
  out += std::to_string(job.id);
  out += ",\"nodes\":";
  out += std::to_string(job.nodes);
  out += ",\"seed\":";
  out += std::to_string(job.seed);
  out += ",\"field_units\":";
  out += std::to_string(job.fieldUnits);
  std::snprintf(buf, sizeof(buf), "%.17g", job.range);
  out += ",\"range\":";
  out += buf;
  out += ",\"deploy\":\"";
  out += deployWord(job.deploy);
  out += "\",\"channels\":";
  out += std::to_string(job.channels);
  std::snprintf(buf, sizeof(buf), "%.17g", job.drop);
  out += ",\"drop\":";
  out += buf;
  if (job.protocol) {
    out += ",\"protocol\":\"";
    out += schemeWord(*job.protocol);
    out += "\"";
  }
  if (job.traceCapacity > 0) {
    out += ",\"trace_cap\":";
    out += std::to_string(job.traceCapacity);
  }
  if (job.threads > 0) {
    out += ",\"threads\":";
    out += std::to_string(job.threads);
  }
  if (job.autoRepair) out += ",\"auto_repair\":true";
  out += ",\"scenario\":\"";
  appendEscaped(out, job.scenarioText);
  out += "\"}";
  return out;
}

std::vector<ServeJob> demoJobs(std::size_t count, std::uint64_t seed,
                               std::size_t nodes, std::size_t deployments,
                               std::size_t mutatingEvery,
                               std::size_t heavyEvery) {
  DSN_REQUIRE(deployments > 0, "demoJobs: need at least one deployment");
  // The light rotation models the short query traffic a resident server
  // exists for: slotted broadcasts and validation probes over the full-
  // size deployments. All read-only.
  static const char* const kLight[] = {
      "broadcast random icff\nvalidate",
      "broadcast random cff",
      "validate",
      "broadcast random icff",
      "broadcast random counter",
      "broadcast random cff\nvalidate",
  };
  // The heavy rotation covers every remaining protocol family —
  // reliable broadcast under loss, gather waves, the rival schemes —
  // at a quarter of the node count: these scale superlinearly, and in
  // a mixed stream they are the occasional big request, not the common
  // case. Still read-only.
  static const char* const kHeavy[] = {
      "faults drop 0.1\nrbroadcast random icff 6",
      "gather",
      "broadcast random agossip\ngather",
      "broadcast random rlnc",
      "broadcast random dfo",
      "broadcast random gossip",
      "broadcast random flood",
      "broadcast random distance",
  };
  constexpr std::size_t kLightCount = sizeof(kLight) / sizeof(kLight[0]);
  constexpr std::size_t kHeavyCount = sizeof(kHeavy) / sizeof(kHeavy[0]);
  static const char* const kMutating =
      "churn 1.5 2\nrepair\nvalidate\nbroadcast random icff";
  const std::size_t heavyNodes = nodes / 4 < 50 ? 50 : nodes / 4;

  std::vector<ServeJob> jobs;
  jobs.reserve(count);
  std::size_t lightAt = 0;
  std::size_t heavyAt = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ServeJob job;
    job.index = i;
    job.id = static_cast<std::uint64_t>(i);
    job.nodes = nodes;
    // A few distinct deployments, revisited round-robin: the shape a
    // warm cache exists for. Deployment d differs by seed only, so every
    // light job in the stream exercises the same node count and field.
    const std::size_t d = i % deployments;
    job.seed = seed + 1000 * static_cast<std::uint64_t>(d);
    const bool mutating = mutatingEvery > 0 && (i + 1) % mutatingEvery == 0;
    const bool heavy =
        !mutating && heavyEvery > 0 && (i + 1) % heavyEvery == 0;
    if (mutating) {
      job.scenarioText = kMutating;
    } else if (heavy) {
      job.nodes = heavyNodes;
      job.scenarioText = kHeavy[heavyAt++ % kHeavyCount];
    } else {
      job.scenarioText = kLight[lightAt++ % kLightCount];
    }
    job.events = parseScenario(job.scenarioText);
    job.mutates = scenarioMutatesNetwork(job.events);
    job.fingerprint = deploymentFingerprint(jobNetworkConfig(job));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace dsn::serve
