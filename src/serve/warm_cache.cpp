#include "serve/warm_cache.hpp"

#include <utility>
#include <vector>

#include "obs/timer.hpp"

namespace dsn::serve {

namespace {

std::mutex& processMergeMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

ConstructionTelemetryScope::ConstructionTelemetryScope()
    : metricsSink_(metrics_), timingSink_(timing_) {}

ConstructionTelemetryScope::~ConstructionTelemetryScope() {
  std::lock_guard<std::mutex> lock(processMergeMutex());
  obs::processMetrics().mergeFrom(metrics_);
  obs::processTiming().mergeFrom(timing_);
}

WarmStateCache::WarmStateCache(std::size_t capacity)
    : WarmStateCache(capacity, obs::processMetrics()) {}

WarmStateCache::WarmStateCache(std::size_t capacity,
                               obs::MetricsRegistry& registry)
    : capacity_(capacity),
      cacheCounters_(registry, "serve.cache"),
      csrCounters_(registry, "serve.csr") {}

WarmStateCache::Lease WarmStateCache::lease(const NetworkConfig& config) {
  const std::uint64_t fp = deploymentFingerprint(config);

  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (capacity_ > 0) {
      const auto it = entries_.find(fp);
      if (it != entries_.end()) {
        cacheCounters_.hit();
        entry = it->second;
      } else {
        cacheCounters_.miss();
        entry = std::make_shared<Entry>();
        entry->fingerprint = fp;
        entries_.emplace(fp, entry);
        evictOverflowLocked();
      }
      entry->lastUse = ++tick_;
    } else {
      // Bypass mode: every lease is a private cold build (the perf
      // baseline). Still counted as a miss so hitRate reads 0.
      cacheCounters_.miss();
      entry = std::make_shared<Entry>();
      entry->fingerprint = fp;
    }
  }

  // Build outside the map lock: distinct fingerprints construct in
  // parallel, same-fingerprint leases block on the entry's once_flag.
  // Telemetry from deployment + clustering folds into the process
  // registries — whichever job thread happens to build first must not
  // have its record inflated by construction counters.
  std::call_once(entry->built, [&] {
    ConstructionTelemetryScope buildScope;
    auto net = std::make_unique<SensorNetwork>(config);
    // Pre-warm the CSR snapshot once, here, so no job ever pays the
    // silent O(V+E) rebuild inside its own run.
    net->graph().csrView();
    entry->net = std::move(net);
  });

  // Freshness audit: a stale snapshot at lease time means something
  // mutated the shared network or invalidated the pre-warm — the serve
  // test asserts serve.csr.miss == 0.
  if (entry->net->graph().csrViewIfFresh() != nullptr)
    csrCounters_.hit();
  else
    csrCounters_.miss();

  return Lease(std::move(entry));
}

void WarmStateCache::evictOverflowLocked() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.use_count() > 1) continue;  // on lease — not evictable
      if (victim == entries_.end() ||
          it->second->lastUse < victim->second->lastUse)
        victim = it;
    }
    if (victim == entries_.end()) return;  // everything leased; overflow
    entries_.erase(victim);
    cacheCounters_.evict();
  }
}

std::size_t WarmStateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

WarmStateCache::Stats WarmStateCache::stats() const {
  Stats s;
  s.hits = cacheCounters_.hits();
  s.misses = cacheCounters_.misses();
  s.evictions = cacheCounters_.evictions();
  s.csrFresh = csrCounters_.hits();
  s.csrStale = csrCounters_.misses();
  s.hitRate = cacheCounters_.hitRate();
  return s;
}

}  // namespace dsn::serve
