// Warm deployment state shared across serve jobs.
//
// The cache maps deploymentFingerprint(NetworkConfig) to a fully built,
// clustered SensorNetwork with its CSR snapshot pre-warmed. Jobs that
// share a deployment lease the same entry: setup cost (deploy + unit-
// disk wiring + cluster self-construction + CSR assembly) is paid once
// per unique topology instead of once per job, which is the entire
// perf story of the serve engine.
//
// Exactness argument (DESIGN.md §17): a leased network may be read by
// any number of jobs concurrently but never mutated — the engine only
// leases for jobs whose scenario is classified read-only
// (scenarioMutatesNetwork == false), and every read path on
// SensorNetwork/Graph is const with the CSR snapshot behind its own
// mutex. Since construction is a pure function of the NetworkConfig
// and the fingerprint covers every config field, a cache hit returns a
// network bit-identical to the one a cold build would have produced —
// so records are byte-identical whether or not the cache was warm.
//
// Telemetry: `serve.cache.{hit,miss,evict}` counts lookups and LRU
// evictions; `serve.csr.{hit,miss}` counts leases whose CSR snapshot
// was still fresh (a miss means someone silently rebuilt or mutated —
// the serve engine test asserts this stays at zero). Both families
// live in the process registry, NOT the per-job sinks, so job records
// stay independent of scheduling order.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/sensor_network.hpp"
#include "obs/cache_stats.hpp"
#include "obs/timer.hpp"

namespace dsn::serve {

/// RAII scope for deployment-construction telemetry. Builds can run
/// concurrently on job worker threads, and the process registries are
/// not safe for concurrent recording (instrument registration mutates
/// the name map, the timing registry is a tree) — so a build records
/// into scope-local registries via the thread's sink and the destructor
/// folds them into the process registries under one mutex, following
/// the parallel-sweep merge idiom. Job sinks never see construction
/// costs either way.
class ConstructionTelemetryScope {
 public:
  ConstructionTelemetryScope();
  ~ConstructionTelemetryScope();
  ConstructionTelemetryScope(const ConstructionTelemetryScope&) = delete;
  ConstructionTelemetryScope& operator=(const ConstructionTelemetryScope&) =
      delete;

 private:
  obs::MetricsRegistry metrics_;
  obs::TimingRegistry timing_;
  obs::ScopedMetricsSink metricsSink_;
  obs::ScopedTimingSink timingSink_;
};

class WarmStateCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t csrFresh = 0;
    std::uint64_t csrStale = 0;
    double hitRate = 0.0;
  };

  /// `capacity` bounds the number of resident deployments (0 = bypass:
  /// every lease builds privately — the cold baseline of perf_serve).
  /// Counters register in `registry`, which must outlive the cache.
  explicit WarmStateCache(std::size_t capacity = 64);
  WarmStateCache(std::size_t capacity, obs::MetricsRegistry& registry);

  WarmStateCache(const WarmStateCache&) = delete;
  WarmStateCache& operator=(const WarmStateCache&) = delete;

  /// A refcounted handle on a warm entry. The network stays resident
  /// (never evicted, never destroyed) while any lease is alive.
  class Lease {
   public:
    Lease() = default;
    const SensorNetwork& network() const { return *entry_->net; }
    std::uint64_t fingerprint() const { return entry_->fingerprint; }
    explicit operator bool() const { return entry_ != nullptr; }

   private:
    friend class WarmStateCache;
    struct Entry {
      std::uint64_t fingerprint = 0;
      std::uint64_t lastUse = 0;
      std::once_flag built;
      std::unique_ptr<const SensorNetwork> net;
    };
    explicit Lease(std::shared_ptr<Entry> entry)
        : entry_(std::move(entry)) {}
    std::shared_ptr<Entry> entry_;
  };

  /// Returns a lease on the warm network for `config`, building it on
  /// first use. Concurrent leases of the same fingerprint block on one
  /// build (std::call_once); different fingerprints build in parallel.
  /// Build-time telemetry is redirected to the process registries so
  /// job sinks never observe who happened to build first.
  Lease lease(const NetworkConfig& config);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  using Entry = Lease::Entry;

  /// Evicts least-recently-used unleased entries until size <= capacity.
  /// Entries currently on lease are skipped (the map may transiently
  /// exceed capacity under high fingerprint concurrency).
  void evictOverflowLocked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Entry>> entries_;
  std::uint64_t tick_ = 0;
  obs::CacheCounters cacheCounters_;
  obs::CacheCounters csrCounters_;
};

}  // namespace dsn::serve
