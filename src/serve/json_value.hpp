// Minimal JSON value parser for the serve job protocol.
//
// Parses one `dsnet-job-v1` line into a Value tree: objects, arrays,
// strings, numbers, bools, null — the full subset the suite's own
// exporters emit (tests/obs/minijson.hpp is the same grammar on the
// test side). Throws std::runtime_error with a byte offset on
// malformed input; the job layer wraps that with the stream line
// number. Not a streaming parser: job lines are small (a few hundred
// bytes) and parsed once per job, far off the serve hot path.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace dsn::serve {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const { return object.count(key) > 0; }
  /// Throws std::runtime_error when the key is absent.
  const JsonValue& at(const std::string& key) const;
};

/// Parses a complete JSON document. Trailing non-whitespace is an error.
JsonValue parseJson(const std::string& text);

}  // namespace dsn::serve
