#include "serve/engine.hpp"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <exception>
#include <istream>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <utility>

#include "exec/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "radio/trace.hpp"
#include "util/error.hpp"

namespace dsn::serve {

namespace {

// ---- allocation-free record appenders ----
// The record is built by appending into the worker's retained buffer;
// numbers render through stack buffers (to_chars / snprintf), so once
// the buffer capacity has seen the workload's high-water mark the whole
// emit path never touches the heap. obs::JsonWriter is NOT used here —
// it builds on ostringstream, which allocates per record.

void appendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void appendI64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void appendDouble(std::string& out, double v) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  out.append(buf, static_cast<std::size_t>(n));
}

void appendQuoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

const char* deployWord(DeploymentKind k) {
  switch (k) {
    case DeploymentKind::kIncrementalAttach: return "attach";
    case DeploymentKind::kUniform: return "uniform";
    case DeploymentKind::kGrid: return "grid";
    case DeploymentKind::kLine: return "line";
    case DeploymentKind::kStar: return "star";
  }
  return "attach";
}

const char* schemeWord(BroadcastScheme s) {
  switch (s) {
    case BroadcastScheme::kDfo: return "dfo";
    case BroadcastScheme::kCff: return "cff";
    case BroadcastScheme::kImprovedCff: return "icff";
    case BroadcastScheme::kFlooding: return "flood";
    case BroadcastScheme::kGossip: return "gossip";
    case BroadcastScheme::kGossipAdaptive: return "agossip";
    case BroadcastScheme::kCounter: return "counter";
    case BroadcastScheme::kDistance: return "distance";
    case BroadcastScheme::kRlnc: return "rlnc";
  }
  return "icff";
}

void appendErrorRecord(std::string& out, const ServeJob& job,
                       std::string_view error) {
  out += "{\"schema\":\"dsnet-error-v1\",\"tool\":\"wsn_serve\",\"job\":";
  appendU64(out, job.id);
  out += ",\"line\":";
  appendU64(out, static_cast<std::uint64_t>(job.index) + 1);
  out += ",\"error\":";
  appendQuoted(out, error);
  out += '}';
}

void appendConfig(std::string& out, const ServeJob& job) {
  out += "\"config\":{\"nodes\":";
  appendU64(out, job.nodes);
  out += ",\"seed\":";
  appendU64(out, job.seed);
  out += ",\"field_units\":";
  appendI64(out, job.fieldUnits);
  out += ",\"range\":";
  appendDouble(out, job.range);
  out += ",\"deploy\":\"";
  out += deployWord(job.deploy);
  out += "\",\"drop\":";
  appendDouble(out, job.drop);
  out += ",\"channels\":";
  appendU64(out, job.channels);
  out += ",\"threads\":";
  appendI64(out, job.threads);
  out += ",\"protocol\":";
  if (job.protocol) {
    out += '"';
    out += schemeWord(*job.protocol);
    out += '"';
  } else {
    out += "null";
  }
  out += ",\"trace_cap\":";
  appendU64(out, job.traceCapacity);
  out += ",\"mutates\":";
  out += job.mutates ? "true" : "false";
  out += ",\"fingerprint\":";
  appendU64(out, job.fingerprint);
  out += ",\"scenario\":";
  appendQuoted(out, job.scenarioText);
  out += '}';
}

void appendOutcome(std::string& out, const ScenarioOutcome& o) {
  out += "\"outcome\":{\"events\":";
  appendU64(out, o.eventsExecuted);
  out += ",\"broadcasts\":";
  appendU64(out, o.broadcasts);
  out += ",\"arenas\":";
  appendU64(out, o.arenas);
  out += ",\"reliable_broadcasts\":";
  appendU64(out, o.reliableBroadcasts);
  out += ",\"multicasts\":";
  appendU64(out, o.multicasts);
  out += ",\"gathers\":";
  appendU64(out, o.gathers);
  out += ",\"crashes\":";
  appendU64(out, o.crashes);
  out += ",\"repairs\":";
  appendU64(out, o.repairs);
  out += ",\"worst_coverage\":";
  appendDouble(out, o.worstCoverage);
  out += ",\"worst_yield\":";
  appendDouble(out, o.worstYield);
  out += ",\"valid\":";
  out += o.valid ? "true" : "false";
  if (!o.valid) {
    out += ",\"first_violation\":";
    appendQuoted(out, o.firstViolation);
  }
  out += ",\"trace_events\":";
  appendU64(out, o.traceEvents.size());
  out += ",\"trace_dropped\":";
  appendU64(out, o.traceDropped);
  out += '}';
}

void appendMetrics(std::string& out, const obs::MetricsRegistry& reg) {
  out += "\"metrics\":{\"counters\":{";
  bool first = true;
  reg.visitCounters([&](std::string_view name, std::uint64_t value) {
    if (!first) out += ',';
    first = false;
    appendQuoted(out, name);
    out += ':';
    appendU64(out, value);
  });
  out += "},\"gauges\":{";
  first = true;
  reg.visitGauges([&](std::string_view name, double value) {
    if (!first) out += ',';
    first = false;
    appendQuoted(out, name);
    out += ':';
    appendDouble(out, value);
  });
  out += "},\"histograms\":{";
  first = true;
  reg.visitHistograms([&](std::string_view name, const obs::Histogram& h) {
    if (!first) out += ',';
    first = false;
    appendQuoted(out, name);
    out += ":{\"count\":";
    appendU64(out, h.count());
    out += ",\"sum\":";
    appendDouble(out, h.sum());
    out += ",\"min\":";
    appendDouble(out, h.minValue());
    out += ",\"max\":";
    appendDouble(out, h.maxValue());
    out += ",\"p50\":";
    appendDouble(out, h.percentile(0.50));
    out += ",\"p95\":";
    appendDouble(out, h.percentile(0.95));
    out += '}';
  });
  out += "}}";
}

void appendTrace(std::string& out, const std::vector<TraceEvent>& events) {
  out += "\"trace\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ',';
    out += traceEventJson(events[i]);
  }
  out += ']';
}

/// Reorders completion-order deliveries into job-index order and hands
/// them to the sink incrementally. Records arriving ahead of their turn
/// are copied into the pending map (worker buffers are reused as soon
/// as deliver returns); the in-order common case emits straight from
/// the worker's buffer without a copy.
class Sequencer {
 public:
  explicit Sequencer(const std::function<void(std::string_view)>& emit)
      : emit_(emit) {}

  void deliver(std::size_t index, const std::string& record) {
    std::lock_guard<std::mutex> lock(mu_);
    if (index == next_) {
      emit_(record);
      ++next_;
      while (!pending_.empty() && pending_.begin()->first == next_) {
        emit_(pending_.begin()->second);
        pending_.erase(pending_.begin());
        ++next_;
      }
    } else {
      pending_.emplace(index, record);
    }
  }

 private:
  std::mutex mu_;
  std::size_t next_ = 0;
  std::map<std::size_t, std::string> pending_;
  const std::function<void(std::string_view)>& emit_;
};

}  // namespace

ServeEngine::ServeEngine(ServeOptions options)
    : options_(options), cache_(options.cacheCapacity) {}

void ServeEngine::warmUp(const NetworkConfig* config) {
  const std::size_t workers = exec::resolveJobs(options_.jobs);
  scratchPool_.warmUp(workers, [&](JobScratch& ws) {
    ws.record.reserve(1 << 16);
    if (config != nullptr) ws.scratch.prepare(config->nodeCount, 1);
  });
  if (config != nullptr && options_.cacheCapacity > 0) cache_.lease(*config);
}

ServeEngine::JobStatus ServeEngine::runJob(const ServeJob& job,
                                           JobScratch& ws) {
  ws.record.clear();
  if (job.failed()) {
    appendErrorRecord(ws.record, job, job.parseError);
    return JobStatus::kParseError;
  }
  try {
    ScenarioOptions sopt = jobScenarioOptions(job);
    sopt.protocol.resolveScratch = &ws.scratch;

    // Job-local telemetry: a FRESH registry per job (see JobScratch
    // doc), installed as this thread's sink so every instrumentation
    // site inside the run lands here and nowhere else. Only when
    // telemetry is globally on — the zero-allocation serving
    // configuration must not even construct the registries (an empty
    // registry still owns deque blocks).
    const bool metered = obs::enabled();
    std::optional<obs::MetricsRegistry> jobMetrics;
    std::optional<obs::TimingRegistry> jobTiming;
    if (metered) jobMetrics.emplace();
    if (metered || options_.includeTiming) jobTiming.emplace();
    ScenarioOutcome outcome;
    {
      // Acquire the network BEFORE installing the job sinks: deployment
      // construction is infrastructure, attributed to the process
      // registry exactly like a cache-miss build, so a record never
      // depends on whether its network came warm from the cache or was
      // built on demand (warm and cold serves emit identical bytes).
      std::optional<SensorNetwork> privateNet;
      std::optional<WarmStateCache::Lease> lease;
      SensorNetwork* net = nullptr;
      if (job.mutates || options_.cacheCapacity == 0) {
        // Private build: the scenario reconfigures the network (or the
        // cache is bypassed — the cold baseline). Pre-warm the CSR
        // snapshot like the cache does, so its rebuild counter is part
        // of construction, not of the job's metrics. Builds on several
        // workers record concurrently, so the telemetry goes through
        // the same merge scope as a cache-miss build.
        {
          ConstructionTelemetryScope buildScope;
          privateNet.emplace(jobNetworkConfig(job));
          privateNet->graph().csrView();
        }
        net = &*privateNet;
      } else {
        lease.emplace(cache_.lease(jobNetworkConfig(job)));
        DSN_CHECK(!job.mutates,
                  "mutating job must not run on a shared warm network");
        // Scenario classified read-only: every event drives const paths
        // of SensorNetwork, so the shared warm instance is safe under
        // concurrent leases. runScenario's signature is non-const
        // because of the mutating event kinds this job cannot contain.
        net = const_cast<SensorNetwork*>(&lease->network());
      }

      std::optional<obs::ScopedMetricsSink> metricsSink;
      std::optional<obs::ScopedTimingSink> timingSink;
      if (metered) {
        metricsSink.emplace(*jobMetrics);
        timingSink.emplace(*jobTiming);
      }
      outcome = runScenario(*net, job.events, sopt);
    }

    ws.record += "{\"schema\":\"dsnet-run-v1\",\"tool\":\"wsn_serve\","
                 "\"job\":";
    appendU64(ws.record, job.id);
    ws.record += ',';
    appendConfig(ws.record, job);
    ws.record += ',';
    appendOutcome(ws.record, outcome);
    if (metered) {
      ws.record += ',';
      appendMetrics(ws.record, *jobMetrics);
    }
    if (options_.includeTiming) {
      obs::JsonWriter w;
      obs::writeTimingJson(w, *jobTiming);
      ws.record += ",\"timing\":";
      ws.record += w.str();
    }
    if (job.traceCapacity > 0) {
      ws.record += ',';
      appendTrace(ws.record, outcome.traceEvents);
    }
    ws.record += '}';
    return outcome.valid ? JobStatus::kOk : JobStatus::kInvalidOutcome;
  } catch (const std::exception& e) {
    ws.record.clear();
    appendErrorRecord(ws.record, job, e.what());
    return JobStatus::kFailed;
  }
}

ServeReport ServeEngine::serveJobs(
    const std::vector<ServeJob>& jobs,
    const std::function<void(std::string_view)>& emit) {
  const auto t0 = std::chrono::steady_clock::now();
  const WarmStateCache::Stats before = cache_.stats();
  ServeReport report;
  const std::size_t workers = exec::resolveJobs(options_.jobs);
  report.workers = workers;
  report.jobsRun = jobs.size();

  // Reused across calls (capacity retained) so a steady-state serve
  // call makes zero engine-side allocations at one worker.
  std::vector<JobStatus>& statuses = statuses_;
  statuses.assign(jobs.size(), JobStatus::kOk);
  if (workers <= 1) {
    // Inline: one scratch for the whole loop, records emitted straight
    // from the worker buffer — the zero-allocation serving path.
    auto ws = scratchPool_.acquire();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      statuses[i] = runJob(jobs[i], *ws);
      emit(ws->record);
    }
  } else {
    Sequencer sequencer(emit);
    exec::ThreadPool pool(workers);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      pool.submit([this, &jobs, &statuses, &sequencer, i] {
        auto ws = scratchPool_.acquire();
        statuses[i] = runJob(jobs[i], *ws);
        sequencer.deliver(i, ws->record);
      });
    }
    pool.wait();
  }

  for (const JobStatus s : statuses) {
    switch (s) {
      case JobStatus::kOk: break;
      case JobStatus::kInvalidOutcome: ++report.invalidOutcomes; break;
      case JobStatus::kParseError: ++report.parseErrors; break;
      case JobStatus::kFailed: ++report.jobsFailed; break;
    }
  }
  const WarmStateCache::Stats after = cache_.stats();
  report.cache.hits = after.hits - before.hits;
  report.cache.misses = after.misses - before.misses;
  report.cache.evictions = after.evictions - before.evictions;
  report.cache.csrFresh = after.csrFresh - before.csrFresh;
  report.cache.csrStale = after.csrStale - before.csrStale;
  const std::uint64_t lookups = report.cache.hits + report.cache.misses;
  report.cache.hitRate =
      lookups == 0 ? 0.0
                   : static_cast<double>(report.cache.hits) /
                         static_cast<double>(lookups);
  report.wallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return report;
}

ServeReport ServeEngine::serveStream(std::istream& in, std::ostream& out) {
  std::vector<ServeJob> jobs;
  std::string line;
  std::uint64_t lastId = 0;
  while (std::getline(in, line)) {
    // JSONL with operator affordances: blank lines and #-comments skip.
    std::size_t start = 0;
    while (start < line.size() &&
           (line[start] == ' ' || line[start] == '\t'))
      ++start;
    if (start == line.size() || line[start] == '#') continue;
    const std::size_t index = jobs.size();
    jobs.push_back(parseJobLine(line, index, index > 0 ? &lastId : nullptr));
    lastId = jobs.back().id;
  }
  return serveJobs(jobs, [&out](std::string_view record) {
    out << record << '\n';
  });
}

}  // namespace dsn::serve
