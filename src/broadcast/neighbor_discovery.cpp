#include "broadcast/neighbor_discovery.hpp"

#include <algorithm>
#include <memory>

#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {
namespace {

// Cycle layout (joiner-relative): round 0 = HELLO carrying the window
// size W; then W slot pairs — round 1+2j: neighbors contend in slot j,
// round 2+2j: the joiner ACKs the sender it heard (if any). Next cycle
// starts right after with W doubled, until a whole cycle stays silent.

class JoinerProtocol : public NodeProtocol {
 public:
  JoinerProtocol(NodeId self, const DiscoveryConfig& cfg)
      : self_(self), cfg_(cfg), window_(cfg.initialWindow) {
    DSN_REQUIRE(cfg.initialWindow >= 1, "window must be >= 1");
  }

  Action onRound(Round r) override {
    const Round offset = r - cycleStart_;
    if (offset == 0) {
      heardThisCycle_ = false;
      Message hello;
      hello.kind = MsgKind::kControl;
      hello.sender = self_;
      hello.windowSize = static_cast<TimeSlot>(window_);
      hello.sequence = 0;  // 0 = HELLO
      return Action::transmit(hello);
    }
    const Round cycleLen = 1 + 2 * static_cast<Round>(window_);
    if (offset < cycleLen) {
      const bool ackRound = (offset % 2) == 0;  // offsets 2,4,...
      if (ackRound) {
        if (pendingAck_ != kInvalidNode) {
          Message ack;
          ack.kind = MsgKind::kControl;
          ack.sender = self_;
          ack.target = pendingAck_;
          ack.sequence = 1;  // 1 = ACK
          pendingAck_ = kInvalidNode;
          return Action::transmit(ack);
        }
        return Action::sleep();
      }
      return Action::listen();
    }
    // Cycle finished. Without collision detection a fully-collided
    // window is indistinguishable from real silence, so:
    //  * while NOTHING has been discovered, silence never concludes —
    //    the window doubles until a "no one out there" cutoff (a large
    //    crowd cannot stay fully collided once W passes its size);
    //  * once responders have been heard, the window is evidently
    //    adequate: keep it on fruitful cycles, double it on silent ones,
    //    and conclude after a short silent streak.
    if (!heardThisCycle_) {
      if (discovered_.empty()) {
        if (window_ >= kEmptyCutoffWindow) {
          done_ = true;
          return Action::sleep();
        }
      } else if (window_ >= kConclusiveWindow &&
                 ++silentStreak_ >= kSilentCyclesToStop) {
        // Two all-collided cycles in a row at W >= 16 have probability
        // <= (2/W)^2 even for two stragglers — safe to conclude.
        done_ = true;
        return Action::sleep();
      }
      window_ = std::min(window_ * 2, cfg_.maxWindow);
    } else {
      silentStreak_ = 0;  // fruitful window: keep its size
    }
    cycleStart_ = r;
    return onRound(r);  // re-enter as the HELLO round of the new cycle
  }

  void onReceive(const Message& m, Round, Channel) override {
    if (m.kind != MsgKind::kControl || m.sequence != 2) return;
    heardThisCycle_ = true;
    pendingAck_ = m.sender;
    if (std::find(discovered_.begin(), discovered_.end(), m.sender) ==
        discovered_.end())
      discovered_.push_back(m.sender);
  }

  bool isDone() const override { return done_; }
  const std::vector<NodeId>& discovered() const { return discovered_; }

 private:
  static constexpr int kSilentCyclesToStop = 2;
  static constexpr int kEmptyCutoffWindow = 64;
  static constexpr int kConclusiveWindow = 16;

  NodeId self_;
  DiscoveryConfig cfg_;
  int window_;
  Round cycleStart_ = 0;
  int silentStreak_ = 0;
  bool heardThisCycle_ = false;
  NodeId pendingAck_ = kInvalidNode;
  std::vector<NodeId> discovered_;
  bool done_ = false;
};

class ResponderProtocol : public NodeProtocol {
 public:
  ResponderProtocol(NodeId self, NodeId joiner, std::uint64_t seed,
                    Round helloTimeout)
      : self_(self),
        joiner_(joiner),
        rng_(seed),
        helloTimeout_(helloTimeout) {}

  Action onRound(Round r) override {
    if (acked_ || gaveUp_) return Action::sleep();
    // The joiner concludes after one silent cycle; a responder it never
    // heard must eventually stop burning energy too.
    if (r - lastHello_ > helloTimeout_) {
      gaveUp_ = true;
      return Action::sleep();
    }
    if (replyRound_ >= 0 && r == replyRound_) {
      Message reply;
      reply.kind = MsgKind::kControl;
      reply.sender = self_;
      reply.target = joiner_;
      reply.sequence = 2;  // 2 = neighbor reply
      return Action::transmit(reply);
    }
    if (replyRound_ >= 0 && r == replyRound_ + 1) return Action::listen();
    // Stay awake for HELLOs until acknowledged.
    return Action::listen();
  }

  void onReceive(const Message& m, Round r, Channel) override {
    if (m.kind != MsgKind::kControl) return;
    if (m.sequence == 0 && m.sender == joiner_) {
      // HELLO: contend in a uniform slot of this cycle's window.
      const auto w = static_cast<std::uint64_t>(m.windowSize);
      const Round slot = static_cast<Round>(rng_.uniform(w));
      replyRound_ = r + 1 + 2 * slot;
    } else if (m.sequence == 1 && m.target == self_) {
      acked_ = true;
    }
    if (m.sequence == 0 && m.sender == joiner_) lastHello_ = r;
  }

  bool isDone() const override { return acked_ || gaveUp_; }
  bool acked() const { return acked_; }

 private:
  NodeId self_;
  NodeId joiner_;
  Rng rng_;
  Round helloTimeout_;
  Round replyRound_ = -1;
  Round lastHello_ = 0;
  bool acked_ = false;
  bool gaveUp_ = false;
};

}  // namespace

DiscoveryResult runNeighborDiscovery(const Graph& g, NodeId joiner,
                                     const DiscoveryConfig& config) {
  DSN_REQUIRE(g.isAlive(joiner), "joiner must be live");

  SimConfig cfg;
  cfg.maxRounds = config.maxRounds;

  RadioSimulator sim(g, cfg);
  auto joinProto = std::make_unique<JoinerProtocol>(joiner, config);
  auto* jp = joinProto.get();
  sim.setProtocol(joiner, std::move(joinProto));

  std::vector<ResponderProtocol*> responders;
  for (NodeId u : g.neighbors(joiner)) {
    const Round helloTimeout =
        2 * (1 + 2 * static_cast<Round>(config.maxWindow)) + 8;
    auto p = std::make_unique<ResponderProtocol>(
        u, joiner,
        config.seed ^ (static_cast<std::uint64_t>(u) * 0x9E3779B9ull),
        helloTimeout);
    responders.push_back(p.get());
    sim.setProtocol(u, std::move(p));
  }

  const SimResult simResult = sim.run();

  DiscoveryResult result;
  result.discovered = jp->discovered();
  result.rounds = simResult.rounds;
  result.transmissions = simResult.totalTransmissions;
  result.collisions = simResult.totalCollisions;
  result.complete =
      std::all_of(responders.begin(), responders.end(),
                  [](const ResponderProtocol* r) { return r->acked(); });
  return result;
}

}  // namespace dsn
