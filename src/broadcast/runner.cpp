#include "broadcast/runner.hpp"

#include <algorithm>
#include <string>

#include "broadcast/flooding_baseline.hpp"
#include "broadcast/gossip.hpp"
#include "broadcast/rlnc.hpp"
#include "broadcast/suppression.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace dsn {

namespace {

/// Per-protocol telemetry, flushed once per run. The delivery-latency
/// histogram feeds Fig. 8-style completion-time distributions; the awake
/// statistics (via RunningStats over per-node listen+transmit rounds)
/// feed the Fig. 9 energy story.
void flushBroadcastMetrics(BroadcastScheme scheme,
                           const BroadcastRun& run) {
  if (!obs::enabled()) return;
  auto& m = obs::globalMetrics();
  const std::string prefix = "broadcast.";
  const std::string scheme_tag(toString(scheme));
  m.counter(prefix + "runs").increment();
  m.counter(prefix + "runs." + scheme_tag).increment();
  m.counter(prefix + "intended").increment(run.intended);
  m.counter(prefix + "delivered").increment(run.delivered);
  if (!run.allDelivered()) m.counter(prefix + "incomplete").increment();
  if (run.decodeFailures > 0)
    m.counter(prefix + "decode_failures").increment(run.decodeFailures);

  auto& latency = m.histogram(prefix + "delivery_latency",
                              obs::Histogram::exponentialBounds(16));
  for (const Round r : run.deliveryRound)
    if (r >= 0) latency.observe(static_cast<double>(r) + 1.0);

  RunningStats awake;
  const std::size_t n =
      std::min(run.listenRounds.size(), run.transmitRounds.size());
  for (std::size_t v = 0; v < n; ++v)
    awake.add(static_cast<double>(run.listenRounds[v]) +
              static_cast<double>(run.transmitRounds[v]));
  if (awake.count() > 0) {
    m.gauge(prefix + "mean_awake_rounds").set(awake.mean());
    m.gauge(prefix + "max_awake_rounds").set(awake.max());
  }
}

constexpr obs::FrRunKind runKind(BroadcastScheme s) {
  switch (s) {
    case BroadcastScheme::kDfo:
      return obs::FrRunKind::kDfo;
    case BroadcastScheme::kCff:
      return obs::FrRunKind::kCff;
    case BroadcastScheme::kImprovedCff:
      return obs::FrRunKind::kIcff;
    case BroadcastScheme::kFlooding:
      return obs::FrRunKind::kFlooding;
    case BroadcastScheme::kGossip:
      return obs::FrRunKind::kGossip;
    case BroadcastScheme::kGossipAdaptive:
      return obs::FrRunKind::kGossipAdaptive;
    case BroadcastScheme::kCounter:
      return obs::FrRunKind::kCounter;
    case BroadcastScheme::kDistance:
      return obs::FrRunKind::kDistance;
    case BroadcastScheme::kRlnc:
      return obs::FrRunKind::kRlnc;
  }
  return obs::FrRunKind::kDfo;
}

constexpr std::string_view phaseName(BroadcastScheme s) {
  switch (s) {
    case BroadcastScheme::kDfo:
      return "broadcast.DFO";
    case BroadcastScheme::kCff:
      return "broadcast.CFF";
    case BroadcastScheme::kImprovedCff:
      return "broadcast.ICFF";
    case BroadcastScheme::kFlooding:
      return "broadcast.FLOOD";
    case BroadcastScheme::kGossip:
      return "broadcast.GOSSIP";
    case BroadcastScheme::kGossipAdaptive:
      return "broadcast.AGOSSIP";
    case BroadcastScheme::kCounter:
      return "broadcast.COUNTER";
    case BroadcastScheme::kDistance:
      return "broadcast.DISTANCE";
    case BroadcastScheme::kRlnc:
      return "broadcast.RLNC";
  }
  return "broadcast.?";
}

/// Dispatches a flat-graph rival with configs derived from
/// `options.arena`.
BroadcastRun runRival(BroadcastScheme scheme, const Graph& g, NodeId source,
                      std::uint64_t payload,
                      const ProtocolOptions& options) {
  const ArenaTuning& a = options.arena;
  switch (scheme) {
    case BroadcastScheme::kFlooding: {
      FloodingConfig fc;
      fc.gossipProbability = 1.0;
      fc.contentionWindow = a.contentionWindow;
      fc.seed = a.seed;
      return runFloodingBroadcast(g, source, payload, fc, options);
    }
    case BroadcastScheme::kGossip:
    case BroadcastScheme::kGossipAdaptive: {
      GossipConfig gc;
      gc.probability = a.gossipProbability;
      gc.adaptive = scheme == BroadcastScheme::kGossipAdaptive;
      gc.fanout = a.adaptiveFanout;
      gc.contentionWindow = a.contentionWindow;
      gc.seed = a.seed;
      return runGossipBroadcast(g, source, payload, gc, options);
    }
    case BroadcastScheme::kCounter: {
      CounterConfig cc;
      cc.counterThreshold = a.counterThreshold;
      cc.contentionWindow = a.contentionWindow;
      cc.seed = a.seed;
      return runCounterBroadcast(g, source, payload, cc, options);
    }
    case BroadcastScheme::kDistance: {
      DistanceConfig dc;
      dc.suppressRadius = a.suppressRadius;
      dc.contentionWindow = a.contentionWindow;
      dc.seed = a.seed;
      return runDistanceBroadcast(g, source, payload, dc, options);
    }
    case BroadcastScheme::kRlnc: {
      RlncConfig rc;
      rc.contentionWindow = a.contentionWindow;
      rc.sourceBudget = a.rlncSourceBudget;
      rc.relayBudget = a.rlncRelayBudget;
      rc.seed = a.seed;
      return runRlncBroadcast(g, source, payload, rc, options);
    }
    default:
      DSN_CHECK(false, "runRival called with a cluster scheme");
  }
  BroadcastRun empty;
  return empty;
}

}  // namespace

bool parseBroadcastScheme(std::string_view word, BroadcastScheme& out) {
  if (word == "dfo") out = BroadcastScheme::kDfo;
  else if (word == "cff") out = BroadcastScheme::kCff;
  else if (word == "icff") out = BroadcastScheme::kImprovedCff;
  else if (word == "flood") out = BroadcastScheme::kFlooding;
  else if (word == "gossip") out = BroadcastScheme::kGossip;
  else if (word == "agossip") out = BroadcastScheme::kGossipAdaptive;
  else if (word == "counter") out = BroadcastScheme::kCounter;
  else if (word == "distance") out = BroadcastScheme::kDistance;
  else if (word == "rlnc") out = BroadcastScheme::kRlnc;
  else return false;
  return true;
}

BroadcastRun runBroadcast(BroadcastScheme scheme, const ClusterNet& net,
                          NodeId source, std::uint64_t payload,
                          const ProtocolOptions& options) {
  DSN_TIMED_PHASE(phaseName(scheme));
  obs::recordRunBegin(runKind(scheme), source);
  BroadcastRun run;
  switch (scheme) {
    case BroadcastScheme::kDfo:
      run = runDfoBroadcast(net, source, payload, options);
      break;
    case BroadcastScheme::kCff:
      run = runCffBroadcast(net, source, payload, options);
      break;
    case BroadcastScheme::kImprovedCff:
      run = runImprovedCffBroadcast(net, source, payload, options);
      break;
    default:
      DSN_CHECK(isRandomizedScheme(scheme), "unknown broadcast scheme");
      run = runRival(scheme, net.graph(), source, payload, options);
      break;
  }
  obs::recordRunEnd(runKind(scheme),
                    static_cast<std::uint32_t>(run.delivered),
                    static_cast<std::uint32_t>(run.sim.rounds));
  flushBroadcastMetrics(scheme, run);
  return run;
}

}  // namespace dsn
