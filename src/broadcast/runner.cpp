#include "broadcast/runner.hpp"

#include <algorithm>
#include <string>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace dsn {

namespace {

/// Per-protocol telemetry, flushed once per run. The delivery-latency
/// histogram feeds Fig. 8-style completion-time distributions; the awake
/// statistics (via RunningStats over per-node listen+transmit rounds)
/// feed the Fig. 9 energy story.
void flushBroadcastMetrics(BroadcastScheme scheme,
                           const BroadcastRun& run) {
  if (!obs::enabled()) return;
  auto& m = obs::globalMetrics();
  const std::string prefix = "broadcast.";
  const std::string scheme_tag(toString(scheme));
  m.counter(prefix + "runs").increment();
  m.counter(prefix + "runs." + scheme_tag).increment();
  m.counter(prefix + "intended").increment(run.intended);
  m.counter(prefix + "delivered").increment(run.delivered);
  if (!run.allDelivered()) m.counter(prefix + "incomplete").increment();

  auto& latency = m.histogram(prefix + "delivery_latency",
                              obs::Histogram::exponentialBounds(16));
  for (const Round r : run.deliveryRound)
    if (r >= 0) latency.observe(static_cast<double>(r) + 1.0);

  RunningStats awake;
  const std::size_t n =
      std::min(run.listenRounds.size(), run.transmitRounds.size());
  for (std::size_t v = 0; v < n; ++v)
    awake.add(static_cast<double>(run.listenRounds[v]) +
              static_cast<double>(run.transmitRounds[v]));
  if (awake.count() > 0) {
    m.gauge(prefix + "mean_awake_rounds").set(awake.mean());
    m.gauge(prefix + "max_awake_rounds").set(awake.max());
  }
}

constexpr obs::FrRunKind runKind(BroadcastScheme s) {
  switch (s) {
    case BroadcastScheme::kDfo:
      return obs::FrRunKind::kDfo;
    case BroadcastScheme::kCff:
      return obs::FrRunKind::kCff;
    case BroadcastScheme::kImprovedCff:
      return obs::FrRunKind::kIcff;
  }
  return obs::FrRunKind::kDfo;
}

constexpr std::string_view phaseName(BroadcastScheme s) {
  switch (s) {
    case BroadcastScheme::kDfo:
      return "broadcast.DFO";
    case BroadcastScheme::kCff:
      return "broadcast.CFF";
    case BroadcastScheme::kImprovedCff:
      return "broadcast.ICFF";
  }
  return "broadcast.?";
}

}  // namespace

BroadcastRun runBroadcast(BroadcastScheme scheme, const ClusterNet& net,
                          NodeId source, std::uint64_t payload,
                          const ProtocolOptions& options) {
  DSN_TIMED_PHASE(phaseName(scheme));
  obs::recordRunBegin(runKind(scheme), source);
  BroadcastRun run;
  switch (scheme) {
    case BroadcastScheme::kDfo:
      run = runDfoBroadcast(net, source, payload, options);
      break;
    case BroadcastScheme::kCff:
      run = runCffBroadcast(net, source, payload, options);
      break;
    case BroadcastScheme::kImprovedCff:
      run = runImprovedCffBroadcast(net, source, payload, options);
      break;
    default:
      DSN_CHECK(false, "unknown broadcast scheme");
  }
  obs::recordRunEnd(runKind(scheme),
                    static_cast<std::uint32_t>(run.delivered),
                    static_cast<std::uint32_t>(run.sim.rounds));
  flushBroadcastMetrics(scheme, run);
  return run;
}

}  // namespace dsn
