#include "broadcast/runner.hpp"

#include "util/error.hpp"

namespace dsn {

BroadcastRun runBroadcast(BroadcastScheme scheme, const ClusterNet& net,
                          NodeId source, std::uint64_t payload,
                          const ProtocolOptions& options) {
  switch (scheme) {
    case BroadcastScheme::kDfo:
      return runDfoBroadcast(net, source, payload, options);
    case BroadcastScheme::kCff:
      return runCffBroadcast(net, source, payload, options);
    case BroadcastScheme::kImprovedCff:
      return runImprovedCffBroadcast(net, source, payload, options);
  }
  DSN_CHECK(false, "unknown broadcast scheme");
  return {};
}

}  // namespace dsn
