// Collision-Free Flooding broadcast — Algorithm 1 (paper Section 3.3).
//
// The message floods the whole CNet(G) depth by depth. Depth i's internal
// nodes transmit inside TDM window i at their unified time-slot (u-slot,
// Time-Slot Condition 1); every node at depth i+1 listens during window i
// and receives collision-free from some uniquely-slotted neighbor. A
// non-root source first relays the payload up the tree path to the root
// (depth(s) rounds).
//
// Completion: Δ·(h+1) (+ the source path) rounds; every node is awake at
// most ~2Δ rounds (Lemma 1). With k channels both shrink by 1/k
// (wide-band receivers, DESIGN.md §4(5)).
#pragma once

#include "broadcast/run_result.hpp"
#include "broadcast/tdm.hpp"
#include "cluster/cnet.hpp"
#include "radio/protocol.hpp"

namespace dsn {

/// Per-node static schedule knowledge for Algorithm 1 (DESIGN.md §4(8)).
struct CffNodeConfig {
  NodeId self = kInvalidNode;
  Depth depth = 0;
  /// This node's u-slot (kNoSlot for leaves / silent nodes).
  TimeSlot slot = kNoSlot;
  /// Δ — the root's known largest u-slot; defines the window length.
  TimeSlot window = 0;
  Channel channels = 1;
  /// Absolute round the depth-0 window opens (= depth of the source).
  Round floodStart = 0;
  /// Position on the source->root relay path (0 = source); -1 = not on
  /// the path.
  int pathIndex = -1;
  /// Next hop toward the root (for path relays).
  NodeId pathNext = kInvalidNode;
  bool isSource = false;
  std::uint64_t payload = 0;
};

/// The per-node state machine of Algorithm 1.
class CffNodeProtocol : public NodeProtocol, public BroadcastEndpoint {
 public:
  explicit CffNodeProtocol(const CffNodeConfig& cfg);

  Action onRound(Round r) override;
  void onReceive(const Message& m, Round r, Channel channel) override;
  bool isDone() const override;
  Round nextWake(Round now) const override;

  bool hasPayload() const override { return hasPayload_; }
  Round payloadRound() const override { return payloadRound_; }

 private:
  CffNodeConfig cfg_;
  TdmMap tdm_;
  bool hasPayload_;
  Round payloadRound_;
  bool pathSent_;
  bool floodSent_;
  bool missed_ = false;

  Round listenWindowStart() const;
  Round listenWindowEnd() const;
  Round floodTransmitRound() const;
};

/// Runs an Algorithm-1 broadcast of `payload` from `source` over `net`.
BroadcastRun runCffBroadcast(const ClusterNet& net, NodeId source,
                             std::uint64_t payload,
                             const ProtocolOptions& options = {});

}  // namespace dsn
