// Random linear network coding broadcast over GF(2^8) (Haas & Nikolov,
// "Towards Optimal Broadcast in Wireless Networks").
//
// The source expands the 64-bit payload into a generation of
// `kRlncGeneration` source symbols (s_0 = payload, s_i = splitmix(payload
// ^ i), so a decode is self-verifying) and injects `sourceBudget` random
// coded packets. Every relay that holds at least one innovative packet
// re-codes: it transmits `relayBudget` fresh random combinations of its
// own basis rows, spread over contention backoffs. A node is served once
// its decoder reaches full rank and the recovered generation passes the
// s_i = splitmix(s_0 ^ i) consistency check.
//
// Wire format: the 4 coding coefficients (over the source basis) ride in
// Message::sequence, one byte per source symbol; the coded 64-bit symbol
// rides in Message::payload. All coefficient and backoff draws come from
// per-node RNGs seeded off the shared scheme seed, so a run is a pure
// function of (graph, source, seed) — the seed-determinism oracle the
// fuzz battery checks.
#pragma once

#include "broadcast/gf256.hpp"
#include "broadcast/run_result.hpp"
#include "graph/graph.hpp"
#include "radio/protocol.hpp"
#include "util/rng.hpp"

namespace dsn {

/// Generation size: 4 coefficient bytes must fit Message::sequence.
inline constexpr int kRlncGeneration = 4;

struct RlncConfig {
  /// Backoff window between consecutive coded transmissions.
  int contentionWindow = 6;
  /// Coded packets the source injects.
  int sourceBudget = 12;
  /// Recoded packets each relay transmits once it holds innovative rows.
  int relayBudget = 6;
  std::uint64_t seed = 0x271C0DE5ull;
};

/// Derives source symbol i from the payload (splitmix64 finalizer); the
/// redundancy makes every decode internally verifiable.
constexpr std::uint64_t rlncSourceSymbol(std::uint64_t payload, int i) {
  if (i == 0) return payload;
  std::uint64_t z = payload ^ static_cast<std::uint64_t>(i);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

class RlncNodeProtocol : public NodeProtocol, public BroadcastEndpoint {
 public:
  RlncNodeProtocol(NodeId self, bool isSource, const RlncConfig& cfg,
                   std::uint64_t payload, Round maxListenRounds);

  Action onRound(Round r) override;
  void onReceive(const Message& m, Round r, Channel channel) override;
  bool isDone() const override;
  Round nextWake(Round now) const override;

  bool hasPayload() const override { return decoded_; }
  Round payloadRound() const override { return payloadRound_; }

  /// Full rank reached but the generation failed the consistency check
  /// (only a field/elimination bug can cause this).
  bool decodeFailed() const { return decodeFailed_; }
  std::uint64_t decodedPayload() const { return decodedPayload_; }
  int rank() const { return decoder_.rank(); }

 private:
  Action transmitCoded(Round r);
  void tryDecode(Round r);

  NodeId self_;
  RlncConfig cfg_;
  Rng rng_;
  gf256::Decoder decoder_{kRlncGeneration};
  bool decoded_;
  bool decodeFailed_ = false;
  Round payloadRound_;
  std::uint64_t decodedPayload_ = 0;
  Round txRound_ = -1;  ///< next scheduled coded transmission (-1 = none)
  int txRemaining_ = 0;
  Round maxListenRounds_;
};

BroadcastRun runRlncBroadcast(const Graph& g, NodeId source,
                              std::uint64_t payload,
                              const RlncConfig& config = {},
                              const ProtocolOptions& options = {});

}  // namespace dsn
