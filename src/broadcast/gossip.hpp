// Probabilistic gossip rivals (Mehta & Kwak; Haas/Halpern/Li gossip).
//
// Two variants of the classic storm tamer share one state machine:
//   - fixed p:            every served node relays once with probability p;
//   - density-adaptive:   p_v = min(1, fanout / deg(v)), so each relay
//                         expects to hand the payload to ~`fanout` new
//                         neighbors regardless of local density.
//
// Both keep flooding's contention backoff (uniform delay in [1, window])
// and its exact nextWake schedule: a served node sleeps out its backoff
// and wakes only for the relay round, so the protocol runs unmodified on
// the active-set and sharded schedulers. The relay coin is flipped ONCE,
// at first receipt, from a per-node RNG seeded `seed ^ f(self)` — which
// is what makes a gossip run a pure function of (graph, source, seed).
#pragma once

#include "broadcast/run_result.hpp"
#include "graph/graph.hpp"
#include "radio/protocol.hpp"
#include "util/rng.hpp"

namespace dsn {

struct GossipConfig {
  /// Fixed relay probability (ignored when adaptive is set).
  double probability = 0.65;
  /// Density-adaptive mode: relay with min(1, fanout / degree).
  bool adaptive = false;
  double fanout = 3.5;
  /// Backoff window: a relay picks a uniform delay in [1, window].
  int contentionWindow = 8;
  /// RNG seed for relay coins and backoff draws.
  std::uint64_t seed = 0x6055171Bull;
};

/// Per-node gossip state machine. `relayProbability` is this node's
/// resolved coin bias (the runner folds the adaptive rule into it).
class GossipNodeProtocol : public NodeProtocol, public BroadcastEndpoint {
 public:
  GossipNodeProtocol(NodeId self, bool isSource, double relayProbability,
                     const GossipConfig& cfg, std::uint64_t payload,
                     Round maxListenRounds);

  Action onRound(Round r) override;
  void onReceive(const Message& m, Round r, Channel channel) override;
  bool isDone() const override;
  Round nextWake(Round now) const override;

  bool hasPayload() const override { return hasPayload_; }
  Round payloadRound() const override { return payloadRound_; }

 private:
  NodeId self_;
  double relayProbability_;
  int contentionWindow_;
  Rng rng_;
  bool hasPayload_;
  Round payloadRound_;
  Round relayRound_ = -1;  ///< scheduled retransmission (-1 = none)
  bool relayed_ = false;
  Round maxListenRounds_;
  std::uint64_t payload_;
};

/// Runs a gossip broadcast of `payload` from `source` over the flat
/// graph `g` (only nodes reachable from the source are intended).
BroadcastRun runGossipBroadcast(const Graph& g, NodeId source,
                                std::uint64_t payload,
                                const GossipConfig& config = {},
                                const ProtocolOptions& options = {});

}  // namespace dsn
