// Improved Collision-Free Flooding — Algorithm 2 (paper Section 3.3) and
// the multicast variant built on it (Section 3.4).
//
// Two phases after the source->root relay:
//   Step 1 — flood only the backbone BT(G) depth by depth using b-slots
//            (window δ per depth, δ·(H+1) rounds, H = backbone height);
//   Step 2 — ONE shared window of Δ rounds in which every backbone node
//            transmits at its l-slot, delivering to all pure members.
// Completion δ·h + Δ (+ source path); backbone awake <= 2δ + 1, members
// awake <= Δ (Theorem 1). With k channels everything shrinks by 1/k.
//
// Multicast: nodes relay only when the group is in their relay-list
// (kPrunedRelay) — the paper's scheme, which can starve a receiver whose
// unique-slot provider was pruned (see DESIGN.md §4 and the T2 bench) —
// or everywhere (kFullFlood), which degenerates to a broadcast that only
// group members consume.
#pragma once

#include <optional>

#include "broadcast/run_result.hpp"
#include "broadcast/tdm.hpp"
#include "cluster/cnet.hpp"
#include "radio/protocol.hpp"

namespace dsn {

enum class MulticastMode : std::uint8_t {
  kPrunedRelay,  ///< paper-literal relay-list pruning
  kFullFlood,    ///< no pruning; group members just filter on receipt
};

/// Per-node static schedule knowledge for Algorithm 2.
struct IcffNodeConfig {
  NodeId self = kInvalidNode;
  Depth depth = 0;
  bool backbone = false;
  TimeSlot bSlot = kNoSlot;
  TimeSlot lSlot = kNoSlot;
  /// δ and Δ as known at the root.
  TimeSlot bWindow = 0;
  TimeSlot lWindow = 0;
  Channel channels = 1;
  /// Step-1 start (= depth of the source).
  Round backboneStart = 0;
  /// Backbone height H: step 2 starts at backboneStart + (H+1)·win(δ).
  int backboneHeight = 0;
  int pathIndex = -1;
  NodeId pathNext = kInvalidNode;
  bool isSource = false;
  /// Whether this node retransmits (multicast pruning: relay-list hit).
  bool relays = true;
  /// Whether this node wants the payload (broadcast: everyone; multicast:
  /// group members). Non-wanting, non-relaying nodes sleep throughout.
  bool wantsPayload = true;
  GroupId group = kNoGroup;
  std::uint64_t payload = 0;
};

/// The per-node state machine of Algorithm 2 (and multicast).
class IcffNodeProtocol : public NodeProtocol, public BroadcastEndpoint {
 public:
  explicit IcffNodeProtocol(const IcffNodeConfig& cfg);

  Action onRound(Round r) override;
  void onReceive(const Message& m, Round r, Channel channel) override;
  bool isDone() const override;
  Round nextWake(Round now) const override;

  bool hasPayload() const override { return hasPayload_; }
  Round payloadRound() const override { return payloadRound_; }

 private:
  IcffNodeConfig cfg_;
  TdmMap bTdm_;
  TdmMap lTdm_;
  bool hasPayload_;
  Round payloadRound_;
  bool pathSent_;
  bool bSent_;
  bool lSent_;
  bool missed_ = false;
  bool idle_;  ///< neither wants nor relays nor serves the path

  Round leafWindowStart() const;
  Round bListenStart() const;
  Round bListenEnd() const;
  Round bTransmitRound() const;
  Round lTransmitRound() const;
};

/// Algorithm-2 broadcast of `payload` from `source`.
BroadcastRun runImprovedCffBroadcast(const ClusterNet& net, NodeId source,
                                     std::uint64_t payload,
                                     const ProtocolOptions& options = {});

/// Multicast of `payload` to `group` from `source` (paper Section 3.4).
/// Intended receivers are the group members; relay pruning per `mode`.
BroadcastRun runMulticast(const ClusterNet& net, NodeId source,
                          GroupId group, std::uint64_t payload,
                          MulticastMode mode = MulticastMode::kPrunedRelay,
                          const ProtocolOptions& options = {});

}  // namespace dsn
