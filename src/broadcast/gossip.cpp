#include "broadcast/gossip.hpp"

#include <algorithm>
#include <memory>

#include "broadcast/runner_detail.hpp"
#include "graph/algorithms.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {

GossipNodeProtocol::GossipNodeProtocol(NodeId self, bool isSource,
                                       double relayProbability,
                                       const GossipConfig& cfg,
                                       std::uint64_t payload,
                                       Round maxListenRounds)
    : self_(self),
      relayProbability_(relayProbability),
      contentionWindow_(cfg.contentionWindow),
      rng_(cfg.seed ^ (static_cast<std::uint64_t>(self) * 0xA24BAED4963EE407ull)),
      hasPayload_(isSource),
      payloadRound_(isSource ? 0 : -1),
      maxListenRounds_(maxListenRounds),
      payload_(payload) {
  DSN_REQUIRE(cfg.contentionWindow >= 1, "contention window must be >= 1");
  if (isSource) relayRound_ = 0;  // the source always transmits, at round 0
}

Action GossipNodeProtocol::onRound(Round r) {
  if (relayRound_ >= 0 && r == relayRound_ && !relayed_) {
    relayed_ = true;
    Message m;
    m.kind = MsgKind::kData;
    m.sender = self_;
    m.payload = payload_;
    return Action::transmit(m);
  }
  if (!hasPayload_)
    return r >= maxListenRounds_ ? Action::sleep() : Action::listen();
  return Action::sleep();  // served: backoff (if any) is slept out
}

void GossipNodeProtocol::onReceive(const Message& m, Round r, Channel) {
  if (m.kind != MsgKind::kData) return;
  if (hasPayload_) return;  // duplicate: the coin was already flipped
  hasPayload_ = true;
  payloadRound_ = r;
  payload_ = m.payload;
  if (rng_.chance(relayProbability_)) {
    relayRound_ =
        r + 1 + static_cast<Round>(rng_.uniform(
                    static_cast<std::uint64_t>(contentionWindow_)));
  }
}

bool GossipNodeProtocol::isDone() const {
  if (!hasPayload_) return false;
  return relayRound_ < 0 || relayed_;
}

Round GossipNodeProtocol::nextWake(Round now) const {
  if (relayRound_ >= 0 && !relayed_)
    return relayRound_ > now ? relayRound_ : now + 1;
  if (!hasPayload_)
    return now + 1 < maxListenRounds_ ? now + 1 : kNoWake;
  return kNoWake;
}

BroadcastRun runGossipBroadcast(const Graph& g, NodeId source,
                                std::uint64_t payload,
                                const GossipConfig& config,
                                const ProtocolOptions& options) {
  DSN_REQUIRE(g.isAlive(source), "gossip source must be live");
  DSN_REQUIRE(config.probability >= 0.0 && config.probability <= 1.0,
              "gossip probability must be in [0,1]");
  DSN_REQUIRE(!config.adaptive || config.fanout > 0.0,
              "adaptive gossip fanout must be positive");

  const auto intended = reachableFrom(g, source);
  const Round maxListen =
      options.maxRounds > 0
          ? options.maxRounds
          : static_cast<Round>(g.liveCount()) *
                    (config.contentionWindow + 1) +
                16;

  SimConfig cfg;
  cfg.channelCount = 1;
  cfg.maxRounds = maxListen + 4;
  cfg.traceCapacity = options.traceCapacity;
  detail::applyScheduling(cfg, options);

  RadioSimulator sim(g, cfg);
  detail::applyFailures(sim, options);

  std::vector<BroadcastEndpoint*> endpoints(g.size(), nullptr);
  for (NodeId v : intended) {
    double p = config.probability;
    if (config.adaptive) {
      const auto deg = static_cast<double>(
          std::max<std::size_t>(1, g.degree(v)));
      p = std::min(1.0, config.fanout / deg);
    }
    auto proto = std::make_unique<GossipNodeProtocol>(
        v, v == source, p, config, payload, maxListen);
    endpoints[v] = proto.get();
    sim.setProtocol(v, std::move(proto));
  }

  BroadcastRun run;
  run.scheduleLength = maxListen;
  run.sim = sim.run();
  detail::collectDeliveryStats(sim, intended, endpoints, run);
  return run;
}

}  // namespace dsn
