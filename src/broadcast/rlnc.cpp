#include "broadcast/rlnc.hpp"

#include <algorithm>
#include <memory>

#include "broadcast/runner_detail.hpp"
#include "graph/algorithms.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

std::uint32_t packCoef(const gf256::CoefRow& coef) {
  std::uint32_t packed = 0;
  for (int i = 0; i < kRlncGeneration; ++i)
    packed |= static_cast<std::uint32_t>(coef[static_cast<std::size_t>(i)])
              << (8 * i);
  return packed;
}

gf256::CoefRow unpackCoef(std::uint32_t packed) {
  gf256::CoefRow coef{};
  for (int i = 0; i < kRlncGeneration; ++i)
    coef[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((packed >> (8 * i)) & 0xFF);
  return coef;
}

}  // namespace

RlncNodeProtocol::RlncNodeProtocol(NodeId self, bool isSource,
                                   const RlncConfig& cfg,
                                   std::uint64_t payload,
                                   Round maxListenRounds)
    : self_(self),
      cfg_(cfg),
      rng_(cfg.seed ^ (static_cast<std::uint64_t>(self) * 0xD6E8FEB86659FD93ull)),
      decoded_(isSource),
      payloadRound_(isSource ? 0 : -1),
      maxListenRounds_(maxListenRounds) {
  DSN_REQUIRE(cfg.contentionWindow >= 1, "contention window must be >= 1");
  DSN_REQUIRE(cfg.sourceBudget >= 1, "RLNC source budget must be >= 1");
  DSN_REQUIRE(cfg.relayBudget >= 0, "RLNC relay budget must be >= 0");
  if (isSource) {
    // The source holds the generation in the clear: identity rows.
    for (int i = 0; i < kRlncGeneration; ++i) {
      gf256::CoefRow e{};
      e[static_cast<std::size_t>(i)] = 1;
      decoder_.insert(e, rlncSourceSymbol(payload, i));
    }
    decodedPayload_ = payload;
    txRemaining_ = cfg.sourceBudget;
    txRound_ = 0;  // first coded packet goes out immediately
  }
}

Action RlncNodeProtocol::transmitCoded(Round r) {
  // Fresh random combination of the rows this node holds. The combined
  // coding vector is zero iff every weight is zero (the stored rows are
  // linearly independent), so force one weight when that happens.
  gf256::CoefRow coef{};
  std::uint64_t symbol = 0;
  bool anyWeight = false;
  int firstUsed = -1;
  for (int col = 0; col < kRlncGeneration; ++col) {
    if (!decoder_.pivotUsed(col)) continue;
    if (firstUsed < 0) firstUsed = col;
    const auto w = static_cast<std::uint8_t>(rng_.uniform(256));
    if (w == 0) continue;
    anyWeight = true;
    const gf256::CoefRow& row = decoder_.pivotCoef(col);
    for (int j = 0; j < kRlncGeneration; ++j)
      coef[static_cast<std::size_t>(j)] = gf256::add(
          coef[static_cast<std::size_t>(j)],
          gf256::mul(row[static_cast<std::size_t>(j)], w));
    symbol ^= gf256::scaleSymbol(decoder_.pivotSymbol(col), w);
  }
  if (!anyWeight && firstUsed >= 0) {
    coef = decoder_.pivotCoef(firstUsed);
    symbol = decoder_.pivotSymbol(firstUsed);
  }

  --txRemaining_;
  txRound_ = txRemaining_ > 0
                 ? r + 1 + static_cast<Round>(rng_.uniform(
                               static_cast<std::uint64_t>(
                                   cfg_.contentionWindow)))
                 : -1;

  Message m;
  m.kind = MsgKind::kData;
  m.sender = self_;
  m.sequence = packCoef(coef);
  m.payload = symbol;
  return Action::transmit(m);
}

void RlncNodeProtocol::tryDecode(Round r) {
  if (decoded_ || decodeFailed_ || !decoder_.complete()) return;
  std::array<std::uint64_t, gf256::kMaxGeneration> symbols{};
  decoder_.solve(symbols);
  for (int i = 1; i < kRlncGeneration; ++i) {
    if (symbols[static_cast<std::size_t>(i)] !=
        rlncSourceSymbol(symbols[0], i)) {
      decodeFailed_ = true;
      return;
    }
  }
  decoded_ = true;
  decodedPayload_ = symbols[0];
  payloadRound_ = r;
}

Action RlncNodeProtocol::onRound(Round r) {
  if (txRound_ >= 0 && r == txRound_) return transmitCoded(r);
  if (!decoded_ && !decodeFailed_)
    return r >= maxListenRounds_ ? Action::sleep() : Action::listen();
  return Action::sleep();
}

void RlncNodeProtocol::onReceive(const Message& m, Round r, Channel) {
  if (m.kind != MsgKind::kData) return;
  if (decoded_ || decodeFailed_) return;
  const bool innovative = decoder_.insert(unpackCoef(m.sequence), m.payload);
  if (!innovative) return;
  if (txRound_ < 0 && txRemaining_ == 0 && cfg_.relayBudget > 0 &&
      decoder_.rank() == 1) {
    // First innovative row: start this relay's recoding schedule.
    txRemaining_ = cfg_.relayBudget;
    txRound_ =
        r + 1 + static_cast<Round>(rng_.uniform(
                    static_cast<std::uint64_t>(cfg_.contentionWindow)));
  }
  tryDecode(r);
}

bool RlncNodeProtocol::isDone() const {
  return (decoded_ || decodeFailed_) && txRound_ < 0;
}

Round RlncNodeProtocol::nextWake(Round now) const {
  if (txRound_ >= 0) {
    Round wake = txRound_ > now ? txRound_ : now + 1;
    if (!decoded_ && !decodeFailed_ && now + 1 < maxListenRounds_)
      wake = std::min(wake, now + 1);  // still collecting rank: listen
    return wake;
  }
  if (!decoded_ && !decodeFailed_)
    return now + 1 < maxListenRounds_ ? now + 1 : kNoWake;
  return kNoWake;
}

BroadcastRun runRlncBroadcast(const Graph& g, NodeId source,
                              std::uint64_t payload,
                              const RlncConfig& config,
                              const ProtocolOptions& options) {
  DSN_REQUIRE(g.isAlive(source), "RLNC source must be live");

  const auto intended = reachableFrom(g, source);
  const Round maxListen =
      options.maxRounds > 0
          ? options.maxRounds
          : static_cast<Round>(g.liveCount()) *
                    (config.contentionWindow + 1) +
                16;

  SimConfig cfg;
  cfg.channelCount = 1;
  cfg.maxRounds = maxListen + 4;
  cfg.traceCapacity = options.traceCapacity;
  detail::applyScheduling(cfg, options);

  RadioSimulator sim(g, cfg);
  detail::applyFailures(sim, options);

  std::vector<BroadcastEndpoint*> endpoints(g.size(), nullptr);
  std::vector<RlncNodeProtocol*> nodes(g.size(), nullptr);
  for (NodeId v : intended) {
    auto proto = std::make_unique<RlncNodeProtocol>(
        v, v == source, config, payload, maxListen);
    endpoints[v] = proto.get();
    nodes[v] = proto.get();
    sim.setProtocol(v, std::move(proto));
  }

  BroadcastRun run;
  run.scheduleLength = maxListen;
  run.sim = sim.run();
  detail::collectDeliveryStats(sim, intended, endpoints, run);
  // Decode-completeness oracle input: a full-rank decode must yield the
  // injected generation. Any mismatch is a field/elimination bug, never
  // an acceptable lossy outcome.
  for (NodeId v : intended) {
    if (!nodes[v]) continue;
    if (nodes[v]->decodeFailed() ||
        (nodes[v]->hasPayload() && nodes[v]->decodedPayload() != payload))
      ++run.decodeFailures;
  }
  return run;
}

}  // namespace dsn
