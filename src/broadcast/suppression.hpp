// Counter- and distance-based suppression flooding (Ni et al., "The
// broadcast storm problem"; Mehta & Kwak's survey in PAPERS.md).
//
// Both rivals schedule a relay after a random backoff like flooding, but
// instead of sleeping the backoff out they LISTEN through it and use the
// duplicates they overhear to cancel redundant relays:
//   - counter-based:  count copies heard before the relay slot; if the
//     count reaches `counterThreshold`, the neighborhood is already
//     covered and the relay is suppressed;
//   - distance-based: a copy heard from a transmitter closer than
//     `suppressRadius` means the own retransmission would add too little
//     extra coverage area, so the relay is cancelled.
//
// The listen-through-backoff is the honest energy cost of suppression
// schemes and is exactly the nextWake contract: pending deciders wake
// every round (they may receive), everyone else follows flooding's
// schedule. Backoff draws come from a per-node RNG seeded off the
// shared scheme seed, so runs are pure functions of (graph, source,
// positions, seed) and scheduler-independent.
#pragma once

#include <vector>

#include "broadcast/run_result.hpp"
#include "graph/graph.hpp"
#include "radio/protocol.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace dsn {

struct CounterConfig {
  /// Suppress the relay once this many copies were heard before the slot.
  int counterThreshold = 3;
  /// Backoff window: a relay picks a uniform delay in [1, window].
  int contentionWindow = 8;
  std::uint64_t seed = 0xC0047E12ull;
};

struct DistanceConfig {
  /// Hearing a copy from a transmitter at distance <= this cancels the
  /// relay (the own disk adds too little area).
  double suppressRadius = 25.0;
  int contentionWindow = 8;
  std::uint64_t seed = 0xD157A4CEull;
};

/// Counter-based suppression state machine.
class CounterNodeProtocol : public NodeProtocol, public BroadcastEndpoint {
 public:
  CounterNodeProtocol(NodeId self, bool isSource, const CounterConfig& cfg,
                      std::uint64_t payload, Round maxListenRounds);

  Action onRound(Round r) override;
  void onReceive(const Message& m, Round r, Channel channel) override;
  bool isDone() const override;
  Round nextWake(Round now) const override;

  bool hasPayload() const override { return hasPayload_; }
  Round payloadRound() const override { return payloadRound_; }
  bool suppressed() const { return suppressed_; }

 private:
  NodeId self_;
  CounterConfig cfg_;
  Rng rng_;
  bool hasPayload_;
  Round payloadRound_;
  Round relayRound_ = -1;
  bool decided_ = false;  ///< the relay slot passed (sent or suppressed)
  bool suppressed_ = false;
  int copies_ = 0;  ///< duplicates heard before the relay slot
  Round maxListenRounds_;
  std::uint64_t payload_;
};

/// Distance-based suppression state machine. `positions` is borrowed and
/// must outlive the protocol (indexed by node id, one entry per node).
class DistanceNodeProtocol : public NodeProtocol, public BroadcastEndpoint {
 public:
  DistanceNodeProtocol(NodeId self, bool isSource, const DistanceConfig& cfg,
                       std::uint64_t payload, Round maxListenRounds,
                       const std::vector<Point2D>* positions);

  Action onRound(Round r) override;
  void onReceive(const Message& m, Round r, Channel channel) override;
  bool isDone() const override;
  Round nextWake(Round now) const override;

  bool hasPayload() const override { return hasPayload_; }
  Round payloadRound() const override { return payloadRound_; }
  bool suppressed() const { return suppressed_; }

 private:
  NodeId self_;
  DistanceConfig cfg_;
  Rng rng_;
  bool hasPayload_;
  Round payloadRound_;
  Round relayRound_ = -1;
  bool decided_ = false;
  bool suppressed_ = false;
  Round maxListenRounds_;
  std::uint64_t payload_;
  const std::vector<Point2D>* positions_;
};

BroadcastRun runCounterBroadcast(const Graph& g, NodeId source,
                                 std::uint64_t payload,
                                 const CounterConfig& config = {},
                                 const ProtocolOptions& options = {});

/// Distance-based suppression needs `options.nodePositions` filled for
/// every node (SensorNetwork::broadcast does this automatically).
BroadcastRun runDistanceBroadcast(const Graph& g, NodeId source,
                                  std::uint64_t payload,
                                  const DistanceConfig& config = {},
                                  const ProtocolOptions& options = {});

}  // namespace dsn
