// GF(2^8) field arithmetic and online Gaussian elimination for the RLNC
// broadcast rival (Haas & Nikolov, "Towards Optimal Broadcast").
//
// The field is GF(2)[x]/(x^8 + x^4 + x^3 + x + 1) — the AES polynomial
// 0x11B — with log/exp tables built at compile time from the generator 3.
// Coded symbols are 64-bit words treated as 8 parallel field elements
// (byte-wise scaling), so one u64 carries a whole payload word through
// the linear combinations.
//
// `Decoder` keeps received coding vectors in normalized row-echelon form
// (one pivot per source-symbol column) so each insert answers "was that
// packet innovative?" in O(G^2) and decoding is a back-substitution.
#pragma once

#include <array>
#include <cstdint>

#include "util/error.hpp"

namespace dsn::gf256 {

/// Upper bound on RLNC generation size supported by Decoder (one
/// coefficient byte per source symbol must fit a Message::sequence when
/// the generation is 4; the decoder itself handles up to 8).
inline constexpr int kMaxGeneration = 8;

namespace detail {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};
};

constexpr Tables makeTables() {
  Tables t{};
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    // x *= 3 over GF(2^8): xtime(x) ^ x, reduced by 0x11B.
    std::uint16_t doubled = static_cast<std::uint16_t>(x << 1);
    if (doubled & 0x100) doubled = static_cast<std::uint16_t>(doubled ^ 0x11B);
    x = static_cast<std::uint16_t>(doubled ^ x);
  }
  // Mirror the exp table so mul can index log[a]+log[b] without a mod.
  for (int i = 255; i < 512; ++i)
    t.exp[static_cast<std::size_t>(i)] =
        t.exp[static_cast<std::size_t>(i - 255)];
  return t;
}

inline constexpr Tables kTables = makeTables();

}  // namespace detail

/// Addition = subtraction = XOR in characteristic 2.
constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(a ^ b);
}

constexpr std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return detail::kTables
      .exp[static_cast<std::size_t>(detail::kTables.log[a]) +
           static_cast<std::size_t>(detail::kTables.log[b])];
}

inline std::uint8_t inv(std::uint8_t a) {
  DSN_REQUIRE(a != 0, "gf256: zero has no multiplicative inverse");
  return detail::kTables.exp[255 - detail::kTables.log[a]];
}

/// Scales a 64-bit symbol byte-wise: each of its 8 bytes is one field
/// element multiplied by `c`.
constexpr std::uint64_t scaleSymbol(std::uint64_t s, std::uint8_t c) {
  if (c == 0) return 0;
  if (c == 1) return s;
  std::uint64_t out = 0;
  for (int b = 0; b < 8; ++b) {
    const auto byte = static_cast<std::uint8_t>((s >> (8 * b)) & 0xFF);
    out |= static_cast<std::uint64_t>(mul(byte, c)) << (8 * b);
  }
  return out;
}

/// One coding vector over the source basis.
using CoefRow = std::array<std::uint8_t, kMaxGeneration>;

/// Online Gaussian elimination over GF(2^8). Rows arrive one at a time
/// as (coding vector, coded symbol); the decoder keeps at most one
/// normalized row per pivot column, eliminating incoming rows against
/// the basis. Rank invariants (tested property-style):
///   - rank never exceeds min(#inserts, generation);
///   - a row in the span of prior rows is never innovative;
///   - once rank == generation, solve() recovers the source symbols.
class Decoder {
 public:
  explicit Decoder(int generation) : generation_(generation) {
    DSN_REQUIRE(generation >= 1 && generation <= kMaxGeneration,
                "gf256::Decoder generation out of range");
  }

  int generation() const { return generation_; }
  int rank() const { return rank_; }
  bool complete() const { return rank_ == generation_; }

  /// Reduces (coef, symbol) against the stored basis. Returns true iff
  /// the row was innovative (rank grew) and was absorbed as a new pivot.
  bool insert(CoefRow coef, std::uint64_t symbol) {
    for (int col = 0; col < generation_; ++col) {
      const std::uint8_t c = coef[static_cast<std::size_t>(col)];
      if (c == 0) continue;
      if (!used_[static_cast<std::size_t>(col)]) {
        // New pivot: normalize so the leading coefficient is 1.
        const std::uint8_t scale = inv(c);
        for (int j = col; j < generation_; ++j)
          coef[static_cast<std::size_t>(j)] =
              mul(coef[static_cast<std::size_t>(j)], scale);
        rows_[static_cast<std::size_t>(col)] = coef;
        symbols_[static_cast<std::size_t>(col)] = scaleSymbol(symbol, scale);
        used_[static_cast<std::size_t>(col)] = true;
        ++rank_;
        return true;
      }
      // Eliminate against the existing (normalized) pivot row.
      const CoefRow& pivot = rows_[static_cast<std::size_t>(col)];
      for (int j = col; j < generation_; ++j)
        coef[static_cast<std::size_t>(j)] = add(
            coef[static_cast<std::size_t>(j)],
            mul(pivot[static_cast<std::size_t>(j)], c));
      symbol ^= scaleSymbol(symbols_[static_cast<std::size_t>(col)], c);
    }
    return false;  // fully eliminated: the row was in the span
  }

  bool pivotUsed(int col) const {
    return used_[static_cast<std::size_t>(col)];
  }
  const CoefRow& pivotCoef(int col) const {
    return rows_[static_cast<std::size_t>(col)];
  }
  std::uint64_t pivotSymbol(int col) const {
    return symbols_[static_cast<std::size_t>(col)];
  }

  /// Back-substitutes the echelon form into source symbols. Requires
  /// complete(); out[i] = source symbol i for i < generation().
  void solve(std::array<std::uint64_t, kMaxGeneration>& out) const {
    DSN_REQUIRE(complete(), "gf256::Decoder::solve before full rank");
    for (int col = generation_ - 1; col >= 0; --col) {
      std::uint64_t s = symbols_[static_cast<std::size_t>(col)];
      const CoefRow& row = rows_[static_cast<std::size_t>(col)];
      for (int j = col + 1; j < generation_; ++j)
        s ^= scaleSymbol(out[static_cast<std::size_t>(j)],
                         row[static_cast<std::size_t>(j)]);
      out[static_cast<std::size_t>(col)] = s;  // pivot coefficient is 1
    }
  }

 private:
  int generation_;
  int rank_ = 0;
  std::array<bool, kMaxGeneration> used_{};
  std::array<CoefRow, kMaxGeneration> rows_{};
  std::array<std::uint64_t, kMaxGeneration> symbols_{};
};

}  // namespace dsn::gf256
