// Reliable broadcast: NACK-driven repair rounds on top of CFF/iCFF
// (DESIGN.md §10).
//
// The paper's flooding schemes are one-shot: under the collision-freedom
// guarantee a single wave suffices, but under transient loss (drops,
// bursts, jamming) or a stale structure the wave leaves holes. Reliable
// mode runs the plain wave first, then up to `maxRepairRounds` repair
// rounds. Each repair round is its own simulator run in two phases:
//
//   NACK phase — per-depth sub-windows of the convergecast up-slot
//     window: an uncovered node at depth d transmits a kNack frame in
//     sub-window d at its up-slot offset, while every covered node
//     listens. Within a sub-window only same-depth nodes transmit, so the
//     up-slot condition guarantees every covered parent hears each of its
//     uncovered children collision-free.
//   Data phase — symmetric sub-windows: a covered node that heard at
//     least one NACK retransmits the payload in its depth's sub-window at
//     its up-slot offset; uncovered nodes listen throughout.
//
// Residual collisions among responders are possible (the up-slot
// condition does not cover arbitrary responder subsets); from the second
// repair round on, each responder backs off with a deterministic
// hash-based coin so any persistent collision pattern breaks without
// sacrificing bit-reproducibility across `--jobs` counts.
#pragma once

#include <cstdint>

#include "broadcast/run_result.hpp"
#include "util/types.hpp"

namespace dsn {

class ClusterNet;
enum class BroadcastScheme : std::uint8_t;

/// Knobs of a reliable broadcast run.
struct ReliableOptions {
  /// Failure injection + radio configuration, shared by the wave and
  /// every repair round (drop/burst seeds are re-derived per round;
  /// deaths and jam intervals shift with accumulated virtual time).
  ProtocolOptions base;
  /// Retry budget: repair rounds after the main wave.
  int maxRepairRounds = 8;
  /// Responder keep-probability for the hash-coin backoff applied from
  /// the second repair round on (1.0 disables the backoff).
  double responderKeepProbability = 0.7;
};

/// Outcome of a reliable broadcast (wave + repair rounds).
struct ReliableBroadcastRun {
  /// The plain wave (its per-node vectors are superseded by the merged
  /// fields below).
  BroadcastRun wave;
  /// Alive net nodes that were supposed to end up with the payload.
  std::size_t intended = 0;
  /// ... and how many actually did after all repair rounds.
  std::size_t delivered = 0;
  /// Repair rounds actually executed (0 = the wave already covered all).
  int repairRoundsUsed = 0;
  /// NACK frames transmitted across all repair rounds.
  std::size_t nacksSent = 0;
  /// Payload retransmissions across all repair rounds.
  std::size_t retransmissions = 0;
  /// Intended nodes still without the payload when the budget ran out.
  std::size_t residualUncovered = 0;
  /// Wave rounds + every repair-round simulation, end to end.
  Round totalRounds = 0;
  /// Per-node first-delivery round on the combined timeline (wave rounds
  /// count from 0; repair rounds continue the clock). -1 = never.
  std::vector<Round> deliveryRound;

  bool allDelivered() const { return delivered == intended; }
  double coverage() const {
    return intended == 0
               ? 1.0
               : static_cast<double>(delivered) /
                     static_cast<double>(intended);
  }
};

/// Runs the wave with `scheme` (kCff or kImprovedCff; the DFO token tour
/// has no slot structure to repair against) followed by NACK repair.
ReliableBroadcastRun runReliableBroadcast(BroadcastScheme scheme,
                                          const ClusterNet& net,
                                          NodeId source,
                                          std::uint64_t payload,
                                          const ReliableOptions& options = {});

}  // namespace dsn
