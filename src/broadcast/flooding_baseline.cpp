#include "broadcast/flooding_baseline.hpp"

#include <memory>

#include "broadcast/runner_detail.hpp"
#include "graph/algorithms.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {

FloodingNodeProtocol::FloodingNodeProtocol(NodeId self, bool isSource,
                                           const FloodingConfig& cfg,
                                           std::uint64_t payload,
                                           Round maxListenRounds)
    : self_(self),
      cfg_(cfg),
      rng_(cfg.seed ^ (static_cast<std::uint64_t>(self) * 0x9E37ull)),
      hasPayload_(isSource),
      payloadRound_(isSource ? 0 : -1),
      maxListenRounds_(maxListenRounds),
      payload_(payload) {
  DSN_REQUIRE(cfg.contentionWindow >= 1, "contention window must be >= 1");
  if (isSource) relayRound_ = 0;  // the source transmits immediately
}

Action FloodingNodeProtocol::onRound(Round r) {
  if (relayRound_ >= 0 && r == relayRound_ && !relayed_) {
    relayed_ = true;
    Message m;
    m.kind = MsgKind::kData;
    m.sender = self_;
    m.payload = payload_;
    return Action::transmit(m);
  }
  if (isDone()) return Action::sleep();
  // Not served yet, or waiting out the backoff: keep listening (naive
  // flooding has no schedule knowledge to sleep on).
  if (!hasPayload_ && r >= maxListenRounds_) return Action::sleep();
  if (!hasPayload_) return Action::listen();
  return Action::sleep();  // served, no relay duty pending
}

void FloodingNodeProtocol::onReceive(const Message& m, Round r, Channel) {
  if (m.kind != MsgKind::kData) return;
  if (hasPayload_) return;  // duplicate: already served/decided
  hasPayload_ = true;
  payloadRound_ = r;
  payload_ = m.payload;
  if (rng_.chance(cfg_.gossipProbability)) {
    relayRound_ =
        r + 1 + static_cast<Round>(rng_.uniform(
                    static_cast<std::uint64_t>(cfg_.contentionWindow)));
  }
}

bool FloodingNodeProtocol::isDone() const {
  if (!hasPayload_) return false;
  return relayRound_ < 0 || relayed_;
}

Round FloodingNodeProtocol::nextWake(Round now) const {
  if (relayRound_ >= 0 && !relayed_) {
    // Sleeps out the backoff, wakes exactly for the relay round.
    return relayRound_ > now ? relayRound_ : now + 1;
  }
  if (!hasPayload_) {
    // Unserved: listens every round until the listen budget runs out;
    // after that it sleeps forever (it can no longer receive anything).
    return now + 1 < maxListenRounds_ ? now + 1 : kNoWake;
  }
  return kNoWake;  // served, no relay duty pending
}

BroadcastRun runFloodingBroadcast(const Graph& g, NodeId source,
                                  std::uint64_t payload,
                                  const FloodingConfig& config,
                                  const ProtocolOptions& options) {
  DSN_REQUIRE(g.isAlive(source), "flood source must be live");

  const auto intended = reachableFrom(g, source);
  const Round maxListen =
      options.maxRounds > 0
          ? options.maxRounds
          : static_cast<Round>(g.liveCount()) *
                    (config.contentionWindow + 1) +
                16;

  SimConfig cfg;
  cfg.channelCount = 1;
  cfg.maxRounds = maxListen + 4;
  cfg.traceCapacity = options.traceCapacity;
  detail::applyScheduling(cfg, options);

  RadioSimulator sim(g, cfg);
  detail::applyFailures(sim, options);

  std::vector<BroadcastEndpoint*> endpoints(g.size(), nullptr);
  for (NodeId v : intended) {
    auto p = std::make_unique<FloodingNodeProtocol>(
        v, v == source, config, payload, maxListen);
    endpoints[v] = p.get();
    sim.setProtocol(v, std::move(p));
  }

  BroadcastRun run;
  run.scheduleLength = maxListen;
  run.sim = sim.run();
  detail::collectDeliveryStats(sim, intended, endpoints, run);
  return run;
}

}  // namespace dsn
