// Internal helpers shared by the protocol runners.
#pragma once

#include <vector>

#include "broadcast/run_result.hpp"
#include "radio/simulator.hpp"
#include "util/types.hpp"

namespace dsn::detail {

/// Applies the scheduling knobs of `options` to a SimConfig. `options`
/// must outlive the simulator run: the sharded scheduler borrows the
/// position vector for its tile partition.
inline void applyScheduling(SimConfig& cfg, const ProtocolOptions& options) {
  cfg.scheduling = options.scheduling;
  if (options.threads > 0) {
    cfg.scheduling = SimScheduling::kSharded;
    cfg.threads = options.threads;
  }
  if (!options.nodePositions.empty())
    cfg.nodePositions = &options.nodePositions;
  cfg.tileMinEdge = options.tileMinEdge;
  cfg.tileTarget = options.tileTarget;
  cfg.shardSerialThreshold = options.shardSerialThreshold;
  cfg.resolveScratch = options.resolveScratch;
}

/// Installs the failure plan of `options` into the simulator.
inline void applyFailures(RadioSimulator& sim,
                          const ProtocolOptions& options) {
  sim.failures() = FailureModel(options.failureSeed);
  sim.failures().setDropProbability(options.dropProbability);
  if (options.burst.active()) sim.failures().setBurstModel(options.burst);
  for (const JamZone& z : options.jamZones) sim.failures().addJamZone(z);
  if (!options.jamZones.empty() && !options.nodePositions.empty())
    sim.failures().setPositions(options.nodePositions);
  for (const auto& [node, round] : options.deaths)
    sim.failures().killAt(node, round);
}

/// Fills delivery/energy fields of `run` from the finished simulator.
/// `intended` = node ids that were supposed to receive; endpoints indexed
/// by node id (nullptr where the node has no endpoint).
inline void collectDeliveryStats(
    const RadioSimulator& sim, const std::vector<NodeId>& intended,
    const std::vector<BroadcastEndpoint*>& endpoints, BroadcastRun& run) {
  run.intended = intended.size();
  run.delivered = 0;
  run.lastDeliveryRound = -1;
  for (NodeId v : intended) {
    const BroadcastEndpoint* e = endpoints[v];
    if (e && e->hasPayload()) {
      ++run.delivered;
      run.lastDeliveryRound =
          std::max(run.lastDeliveryRound, e->payloadRound());
    }
  }
  run.maxAwakeRounds = sim.energy().maxAwakeRounds();
  run.meanAwakeRounds = sim.energy().meanAwakeRounds();
  run.transmissions = run.sim.totalTransmissions;
  run.collisions = run.sim.totalCollisions;

  if (sim.trace().enabled()) run.trace = sim.trace();

  run.deliveryRound.assign(endpoints.size(), -1);
  run.listenRounds.assign(endpoints.size(), 0);
  run.transmitRounds.assign(endpoints.size(), 0);
  for (NodeId v = 0; v < endpoints.size(); ++v) {
    if (endpoints[v] && endpoints[v]->hasPayload())
      run.deliveryRound[v] = endpoints[v]->payloadRound();
    if (v < sim.energy().nodeCount()) {
      run.listenRounds[v] =
          static_cast<std::uint32_t>(sim.energy().node(v).listenRounds);
      run.transmitRounds[v] =
          static_cast<std::uint32_t>(sim.energy().node(v).transmitRounds);
    }
  }
}

/// Swarm flavour of collectDeliveryStats: per-node delivery state is
/// queried from the one SoA protocol object (`view.hasPayload(v)` /
/// `view.payloadRound(v)`) instead of per-node endpoints.
template <typename DeliveryView>
inline void collectSwarmDeliveryStats(const RadioSimulator& sim,
                                      const std::vector<NodeId>& intended,
                                      const DeliveryView& view,
                                      BroadcastRun& run) {
  run.intended = intended.size();
  run.delivered = 0;
  run.lastDeliveryRound = -1;
  for (NodeId v : intended) {
    if (view.hasPayload(v)) {
      ++run.delivered;
      run.lastDeliveryRound =
          std::max(run.lastDeliveryRound, view.payloadRound(v));
    }
  }
  run.maxAwakeRounds = sim.energy().maxAwakeRounds();
  run.meanAwakeRounds = sim.energy().meanAwakeRounds();
  run.transmissions = run.sim.totalTransmissions;
  run.collisions = run.sim.totalCollisions;

  if (sim.trace().enabled()) run.trace = sim.trace();

  const std::size_t n = sim.energy().nodeCount();
  run.deliveryRound.assign(n, -1);
  run.listenRounds.assign(n, 0);
  run.transmitRounds.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (view.hasPayload(v)) run.deliveryRound[v] = view.payloadRound(v);
    run.listenRounds[v] =
        static_cast<std::uint32_t>(sim.energy().node(v).listenRounds);
    run.transmitRounds[v] =
        static_cast<std::uint32_t>(sim.energy().node(v).transmitRounds);
  }
}

}  // namespace dsn::detail
