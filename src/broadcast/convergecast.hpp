// Convergecast (data gathering) on CNet(G) — dsnet extension.
//
// The inverse of the CFF broadcast: per-depth TDM gather windows run from
// the deepest level up to the root; in the window of depth j every
// depth-j node transmits its partial aggregate (own value + everything
// its children reported) to its parent at its up-slot. The up-slot
// condition (ClusterNet::upConditionHolds) guarantees each parent hears
// every child collision-free, so with no failures the root's aggregate
// is exact in h·⌈W/k⌉ rounds with every node awake at most ~2W rounds
// (W = largest up-slot).
//
// The paper motivates data gathering as one of the three core WSN
// patterns (Section 1) but never designs the protocol; DESIGN.md §6
// records this as an engineered extension.
#pragma once

#include <vector>

#include "broadcast/run_result.hpp"
#include "broadcast/tdm.hpp"
#include "cluster/cnet.hpp"
#include "radio/protocol.hpp"

namespace dsn {

/// Result of one gather wave.
struct GatherResult {
  SimResult sim;
  /// Sum aggregated at the root (including the root's own value).
  std::uint64_t aggregate = 0;
  /// Number of nodes whose value reached the root.
  std::size_t contributors = 0;
  /// Nodes that were supposed to contribute (= net size).
  std::size_t expected = 0;
  Round scheduleLength = 0;
  std::size_t maxAwakeRounds = 0;
  double meanAwakeRounds = 0.0;
  std::size_t transmissions = 0;
  std::size_t collisions = 0;
  /// Event trace copy (enabled only when options.traceCapacity > 0).
  Trace trace;

  bool complete() const { return contributors == expected; }
  double yield() const {
    return expected == 0 ? 1.0
                         : static_cast<double>(contributors) /
                               static_cast<double>(expected);
  }
};

/// Per-node static schedule knowledge for the gather wave.
struct GatherNodeConfig {
  NodeId self = kInvalidNode;
  NodeId parent = kInvalidNode;  ///< invalid at the root
  Depth depth = 0;
  std::vector<NodeId> children;
  TimeSlot upSlot = kNoSlot;
  TimeSlot window = 0;  ///< W — the root's known largest up-slot
  Channel channels = 1;
  int maxDepth = 0;  ///< deepest level; its window runs first
  std::uint64_t value = 0;
};

/// State machine of one node in the gather wave.
class GatherNodeProtocol : public NodeProtocol {
 public:
  explicit GatherNodeProtocol(const GatherNodeConfig& cfg);

  Action onRound(Round r) override;
  void onReceive(const Message& m, Round r, Channel channel) override;
  bool isDone() const override;

  std::uint64_t partialSum() const { return sum_; }
  std::uint32_t contributors() const { return count_; }

 private:
  GatherNodeConfig cfg_;
  TdmMap tdm_;
  std::uint64_t sum_;
  std::uint32_t count_ = 1;  ///< self
  std::size_t childrenHeard_ = 0;
  bool sent_;
  bool windowClosed_ = false;

  Round childWindowStart() const;
  Round childWindowEnd() const;
  Round transmitRound() const;
};

/// Runs one gather wave: `values[v]` is node v's reading (ids outside
/// the net are ignored). Aggregation is summation; counts ride along so
/// the caller can also compute exact means.
GatherResult runConvergecast(const ClusterNet& net,
                             const std::vector<std::uint64_t>& values,
                             const ProtocolOptions& options = {});

}  // namespace dsn
