#include "broadcast/cff_swarm.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsn {

CffSwarm::CffSwarm(const CffSwarmConfig& cfg, std::size_t nodeCount)
    : cfg_(cfg),
      tdm_(cfg.window == 0 ? 1 : cfg.window, cfg.channels),
      flags_(nodeCount, 0),
      depth_(nodeCount, 0),
      slot_(nodeCount, kNoSlot),
      pathIndex_(nodeCount, -1),
      pathNext_(nodeCount, kInvalidNode),
      payload_(nodeCount, 0),
      payloadRound_(nodeCount, -1) {}

void CffSwarm::addMember(NodeId v, Depth depth, TimeSlot slot,
                         int pathIndex, NodeId pathNext, bool isSource) {
  DSN_REQUIRE(v < flags_.size(), "addMember: node id out of range");
  depth_[v] = depth;
  slot_[v] = slot;
  pathIndex_[v] = pathIndex;
  pathNext_[v] = pathNext;
  payload_[v] = isSource ? cfg_.payload : 0;
  payloadRound_[v] = isSource ? 0 : -1;
  std::uint8_t f = 0;
  if (isSource) f |= kHasPayload;
  // Mirrors the CffNodeProtocol constructor: off-path (or path-tail)
  // nodes have no relay duty; unslotted nodes have no flood duty.
  if (pathIndex < 0 || pathNext == kInvalidNode) f |= kPathSent;
  if (slot == kNoSlot) f |= kFloodSent;
  flags_[v] = f;
}

Round CffSwarm::listenWindowStart(NodeId v) const {
  return cfg_.floodStart +
         static_cast<Round>(depth_[v] - 1) * tdm_.windowLength();
}

Round CffSwarm::listenWindowEnd(NodeId v) const {
  if (depth_[v] == 0) return cfg_.floodStart;  // root: end of path phase
  return cfg_.floodStart +
         static_cast<Round>(depth_[v]) * tdm_.windowLength();
}

Round CffSwarm::floodTransmitRound(NodeId v) const {
  return cfg_.floodStart +
         static_cast<Round>(depth_[v]) * tdm_.windowLength() +
         tdm_.roundOffset(slot_[v]);
}

Action CffSwarm::onRound(NodeId v, Round r) {
  std::uint8_t& f = flags_[v];
  if (f & kMissed) return Action::sleep();

  if (!(f & kHasPayload)) {
    if (pathIndex_[v] > 0 && r == pathIndex_[v] - 1)
      return Action::listen();
    if (r >= listenWindowEnd(v)) {
      f |= kMissed;  // our receive window passed in silence
      return Action::sleep();
    }
    if (r >= listenWindowStart(v)) return Action::listen();
    return Action::sleep();
  }

  // Payload in hand: source->root relay duty first (rounds 0..R0-1).
  if (!(f & kPathSent)) {
    if (r == pathIndex_[v]) {
      f |= kPathSent;
      Message m;
      m.kind = MsgKind::kControl;
      m.sender = v;
      m.target = pathNext_[v];
      m.origin = v;
      m.payload = payload_[v];
      return Action::transmit(m, 0);
    }
    if (r < pathIndex_[v]) return Action::sleep();
    f |= kPathSent;  // path round passed before the payload arrived
  }

  // Flood duty: internal nodes relay once in their depth's window.
  if (!(f & kFloodSent)) {
    const Round tx = floodTransmitRound(v);
    if (r == tx) {
      f |= kFloodSent;
      Message m;
      m.kind = MsgKind::kData;
      m.sender = v;
      m.slot = slot_[v];
      m.windowSize = cfg_.window;
      m.depth = depth_[v];
      m.payload = payload_[v];
      return Action::transmit(m, tdm_.channelOf(slot_[v]));
    }
    if (r < tx) return Action::sleep();
    f |= kFloodSent;  // transmit round passed (late payload)
  }
  return Action::sleep();
}

void CffSwarm::onReceive(NodeId v, const Message& m, Round r, Channel) {
  if (m.kind != MsgKind::kData && m.kind != MsgKind::kControl) return;
  if (!(flags_[v] & kHasPayload)) {
    flags_[v] |= kHasPayload;
    payloadRound_[v] = r;
    payload_[v] = m.payload;
  }
}

bool CffSwarm::isDone(NodeId v) const {
  const std::uint8_t f = flags_[v];
  constexpr std::uint8_t all = kHasPayload | kPathSent | kFloodSent;
  return (f & kMissed) != 0 || (f & all) == all;
}

Round CffSwarm::nextWake(NodeId v, Round now) const {
  const std::uint8_t f = flags_[v];
  if (f & kMissed) return kNoWake;
  if (!(f & kHasPayload)) {
    Round next = kNoWake;
    if (pathIndex_[v] > 0 && static_cast<Round>(pathIndex_[v]) - 1 > now)
      next = pathIndex_[v] - 1;
    const Round w = std::max(now + 1, listenWindowStart(v));
    if (w <= listenWindowEnd(v)) next = std::min(next, w);
    return next;
  }
  if (!(f & kPathSent)) {
    const Round tx = pathIndex_[v];
    return tx > now ? tx : now + 1;
  }
  if (!(f & kFloodSent)) {
    const Round tx = floodTransmitRound(v);
    return tx > now ? tx : now + 1;
  }
  return kNoWake;  // done: sleeps forever
}

}  // namespace dsn
