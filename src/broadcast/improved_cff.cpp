#include "broadcast/improved_cff.hpp"

#include <algorithm>
#include <memory>

#include "broadcast/runner_detail.hpp"
#include "cluster/soa.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {

IcffNodeProtocol::IcffNodeProtocol(const IcffNodeConfig& cfg)
    : cfg_(cfg),
      bTdm_(cfg.bWindow == 0 ? 1 : cfg.bWindow, cfg.channels),
      lTdm_(cfg.lWindow == 0 ? 1 : cfg.lWindow, cfg.channels),
      hasPayload_(cfg.isSource),
      payloadRound_(cfg.isSource ? 0 : -1),
      pathSent_(cfg.pathIndex < 0 || cfg.pathNext == kInvalidNode),
      bSent_(!cfg.backbone || cfg.bSlot == kNoSlot || !cfg.relays),
      lSent_(!cfg.backbone || cfg.lSlot == kNoSlot || !cfg.relays),
      idle_(!cfg.wantsPayload && !cfg.relays && cfg.pathIndex < 0 &&
            !cfg.isSource) {}

Round IcffNodeProtocol::leafWindowStart() const {
  return cfg_.backboneStart +
         static_cast<Round>(cfg_.backboneHeight + 1) * bTdm_.windowLength();
}

Round IcffNodeProtocol::bListenStart() const {
  if (!cfg_.backbone) return leafWindowStart();
  return cfg_.backboneStart +
         static_cast<Round>(cfg_.depth - 1) * bTdm_.windowLength();
}

Round IcffNodeProtocol::bListenEnd() const {
  if (!cfg_.backbone)
    return leafWindowStart() + lTdm_.windowLength();  // the leaf window
  if (cfg_.depth == 0) return cfg_.backboneStart;     // root: path phase
  return cfg_.backboneStart +
         static_cast<Round>(cfg_.depth) * bTdm_.windowLength();
}

Round IcffNodeProtocol::bTransmitRound() const {
  return cfg_.backboneStart +
         static_cast<Round>(cfg_.depth) * bTdm_.windowLength() +
         bTdm_.roundOffset(cfg_.bSlot);
}

Round IcffNodeProtocol::lTransmitRound() const {
  return leafWindowStart() + lTdm_.roundOffset(cfg_.lSlot);
}

Action IcffNodeProtocol::onRound(Round r) {
  if (idle_ || missed_) return Action::sleep();

  if (!hasPayload_) {
    // Nodes that only relay (multicast: backbone on the relay tree that
    // is not itself a member) still need the payload to do their job;
    // pure members that don't want it are idle and never reach here.
    // Path relays wake exactly when their predecessor transmits.
    if (cfg_.pathIndex > 0 && r == cfg_.pathIndex - 1)
      return Action::listen();
    if (r >= bListenEnd()) {
      missed_ = true;
      return Action::sleep();
    }
    if (r >= bListenStart()) return Action::listen();
    return Action::sleep();
  }

  if (!pathSent_) {
    if (r == cfg_.pathIndex) {
      pathSent_ = true;
      Message m;
      m.kind = MsgKind::kControl;
      m.sender = cfg_.self;
      m.target = cfg_.pathNext;
      m.group = cfg_.group;
      m.payload = cfg_.payload;
      return Action::transmit(m, 0);
    }
    if (r < cfg_.pathIndex) return Action::sleep();
    pathSent_ = true;  // upstream break; duty lapsed
  }

  if (!bSent_) {
    const Round tx = bTransmitRound();
    if (r == tx) {
      bSent_ = true;
      Message m;
      m.kind = MsgKind::kData;
      m.sender = cfg_.self;
      m.slot = cfg_.bSlot;
      m.windowSize = cfg_.bWindow;
      m.depth = cfg_.depth;
      m.height = cfg_.backboneHeight;
      m.group = cfg_.group;
      m.payload = cfg_.payload;
      return Action::transmit(m, bTdm_.channelOf(cfg_.bSlot));
    }
    if (r < tx) return Action::sleep();
    bSent_ = true;
  }

  if (!lSent_) {
    const Round tx = lTransmitRound();
    if (r == tx) {
      lSent_ = true;
      Message m;
      m.kind = MsgKind::kData;
      m.sender = cfg_.self;
      m.slot = cfg_.lSlot;
      m.windowSize = cfg_.lWindow;
      m.depth = cfg_.depth;
      m.group = cfg_.group;
      m.payload = cfg_.payload;
      return Action::transmit(m, lTdm_.channelOf(cfg_.lSlot));
    }
    if (r < tx) return Action::sleep();
    lSent_ = true;
  }
  return Action::sleep();
}

void IcffNodeProtocol::onReceive(const Message& m, Round r, Channel) {
  if (m.kind != MsgKind::kData && m.kind != MsgKind::kControl) return;
  if (!hasPayload_) {
    hasPayload_ = true;
    payloadRound_ = r;
    cfg_.payload = m.payload;
  }
}

bool IcffNodeProtocol::isDone() const {
  return idle_ || missed_ || (hasPayload_ && pathSent_ && bSent_ && lSent_);
}

Round IcffNodeProtocol::nextWake(Round now) const {
  if (idle_ || missed_) return kNoWake;
  if (!hasPayload_) {
    // Path-listen round, the b-listen window, and the window-end round
    // where missed_ flips.
    Round next = kNoWake;
    if (cfg_.pathIndex > 0 && static_cast<Round>(cfg_.pathIndex) - 1 > now)
      next = cfg_.pathIndex - 1;
    const Round w = std::max(now + 1, bListenStart());
    if (w <= bListenEnd()) next = std::min(next, w);
    return next;
  }
  if (!pathSent_) {
    const Round tx = cfg_.pathIndex;
    return tx > now ? tx : now + 1;
  }
  if (!bSent_) {
    const Round tx = bTransmitRound();
    return tx > now ? tx : now + 1;
  }
  if (!lSent_) {
    const Round tx = lTransmitRound();
    return tx > now ? tx : now + 1;
  }
  return kNoWake;
}

namespace {

BroadcastRun runIcff(const ClusterNet& net, NodeId source,
                     std::optional<GroupId> group, std::uint64_t payload,
                     MulticastMode mode, const ProtocolOptions& options) {
  DSN_REQUIRE(net.contains(source), "broadcast source must be in the net");
  const Graph& g = net.graph();

  std::vector<NodeId> path;
  for (NodeId v = source; v != kInvalidNode; v = net.parent(v))
    path.push_back(v);
  const Round backboneStart = static_cast<Round>(path.size()) - 1;

  // Flat schedule columns: one pass over the knowledge table instead of a
  // per-field accessor chase for every member (matters at n >= 10^5).
  const ClusterScheduleView sched = ClusterScheduleView::build(net);

  int backboneHeight = 0;
  for (NodeId v : sched.members())
    if (sched.isBackbone(v))
      backboneHeight =
          std::max(backboneHeight, static_cast<int>(sched.depth(v)));

  const TimeSlot bWindow = net.rootMaxBSlot();
  const TimeSlot lWindow = net.rootMaxLSlot();
  const TdmMap bTdm(bWindow == 0 ? 1 : bWindow, options.channels);
  const TdmMap lTdm(lWindow == 0 ? 1 : lWindow, options.channels);
  const Round schedule =
      backboneStart +
      static_cast<Round>(backboneHeight + 1) * bTdm.windowLength() +
      lTdm.windowLength();

  SimConfig cfg;
  cfg.channelCount = options.channels;
  cfg.maxRounds = options.maxRounds > 0 ? options.maxRounds : schedule + 4;
  cfg.traceCapacity = options.traceCapacity;
  detail::applyScheduling(cfg, options);

  RadioSimulator sim(g, cfg);
  detail::applyFailures(sim, options);

  std::vector<BroadcastEndpoint*> endpoints(g.size(), nullptr);
  std::vector<NodeId> intended;

  // Path membership as a flat lookup instead of an O(|path|) scan per node.
  std::vector<int> pathIndexOf(g.size(), -1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    pathIndexOf[path[i]] = static_cast<int>(i);

  for (NodeId v : sched.members()) {
    // A stale structure (crashes not yet repaired) may reference dead
    // nodes; they neither act nor count as intended receivers.
    if (!g.isAlive(v)) continue;
    IcffNodeConfig nc;
    nc.self = v;
    nc.depth = sched.depth(v);
    nc.backbone = sched.isBackbone(v);
    nc.bSlot = nc.backbone ? sched.bSlot(v) : kNoSlot;
    nc.lSlot = nc.backbone ? sched.lSlot(v) : kNoSlot;
    nc.bWindow = bWindow;
    nc.lWindow = lWindow;
    nc.channels = options.channels;
    nc.backboneStart = backboneStart;
    nc.backboneHeight = backboneHeight;
    nc.isSource = v == source;
    nc.payload = payload;
    if (pathIndexOf[v] >= 0) {
      nc.pathIndex = pathIndexOf[v];
      nc.pathNext = path[static_cast<std::size_t>(nc.pathIndex) + 1];
    }
    if (group.has_value()) {
      nc.group = *group;
      nc.wantsPayload = net.inGroup(v, *group);
      nc.relays = nc.backbone &&
                  (mode == MulticastMode::kFullFlood ||
                   net.relaysGroup(v, *group));
      if (nc.wantsPayload) intended.push_back(v);
    } else {
      nc.wantsPayload = true;
      nc.relays = nc.backbone;
      intended.push_back(v);
    }
    auto p = std::make_unique<IcffNodeProtocol>(nc);
    endpoints[v] = p.get();
    sim.setProtocol(v, std::move(p));
  }

  BroadcastRun run;
  run.scheduleLength = schedule;
  run.sim = sim.run();
  detail::collectDeliveryStats(sim, intended, endpoints, run);
  return run;
}

}  // namespace

BroadcastRun runImprovedCffBroadcast(const ClusterNet& net, NodeId source,
                                     std::uint64_t payload,
                                     const ProtocolOptions& options) {
  return runIcff(net, source, std::nullopt, payload,
                 MulticastMode::kFullFlood, options);
}

BroadcastRun runMulticast(const ClusterNet& net, NodeId source,
                          GroupId group, std::uint64_t payload,
                          MulticastMode mode,
                          const ProtocolOptions& options) {
  return runIcff(net, source, group, payload, mode, options);
}

}  // namespace dsn
