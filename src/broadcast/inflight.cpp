#include "broadcast/inflight.hpp"

#include <algorithm>
#include <memory>

#include "broadcast/cff_swarm.hpp"
#include "broadcast/improved_cff.hpp"
#include "broadcast/runner_detail.hpp"
#include "broadcast/tdm.hpp"
#include "cluster/soa.hpp"
#include "graph/unit_disk.hpp"
#include "util/error.hpp"

namespace dsn {

InFlightBroadcast::InFlightBroadcast(const ClusterNet& net,
                                     BroadcastScheme scheme, NodeId source,
                                     std::uint64_t payload,
                                     const ProtocolOptions& options)
    : graph_(net.graph()), options_(options) {
  DSN_REQUIRE(net.contains(source),
              "in-flight broadcast source must be in the net");
  DSN_REQUIRE(isSlottedScheme(scheme),
              "in-flight waves require a slotted flooding scheme "
              "(CFF/iCFF): resyncTopology re-admits via the depth-indexed "
              "slot schedule, which DFO and the flat arena rivals lack");
  admitSize_ = graph_.size();
  displaced_.assign(admitSize_, 0);
  if (scheme == BroadcastScheme::kCff)
    admitCff(net, source, payload);
  else
    admitIcff(net, source, payload);
  // Start the engine at round 0 without executing anything, so the seam
  // (resyncTopology) is usable even before the first advance.
  lastResult_ = sim_->runUntil(0);
}

InFlightBroadcast::~InFlightBroadcast() = default;

void InFlightBroadcast::admitCff(const ClusterNet& net, NodeId source,
                                 std::uint64_t payload) {
  // Mirrors runCffBroadcast's admission exactly: the schedule an
  // in-flight wave carries is the one a one-shot run would compute.
  std::vector<NodeId> path;
  for (NodeId v = source; v != kInvalidNode; v = net.parent(v))
    path.push_back(v);
  const Round floodStart = static_cast<Round>(path.size()) - 1;

  const TimeSlot window = net.rootMaxUSlot();
  const TdmMap tdm(window == 0 ? 1 : window, options_.channels);
  schedule_ = floodStart +
              static_cast<Round>(net.height() + 1) * tdm.windowLength();

  SimConfig cfg;
  cfg.channelCount = options_.channels;
  cfg.maxRounds = options_.maxRounds > 0 ? options_.maxRounds : schedule_ + 4;
  cfg.traceCapacity = options_.traceCapacity;
  detail::applyScheduling(cfg, options_);
  horizon_ = cfg.maxRounds;

  sim_ = std::make_unique<RadioSimulator>(graph_, cfg);
  detail::applyFailures(*sim_, options_);

  CffSwarmConfig sc;
  sc.window = window;
  sc.channels = options_.channels;
  sc.floodStart = floodStart;
  sc.payload = payload;
  auto swarm = std::make_unique<CffSwarm>(sc, graph_.size());
  cffView_ = swarm.get();

  const ClusterScheduleView sched = ClusterScheduleView::build(net);

  std::vector<int> pathIndexOf(graph_.size(), -1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    pathIndexOf[path[i]] = static_cast<int>(i);

  intended_.reserve(sched.members().size());
  for (NodeId v : sched.members()) {
    if (!graph_.isAlive(v)) continue;
    intended_.push_back(v);
    const int pathIndex = pathIndexOf[v];
    const NodeId pathNext =
        pathIndex >= 0 ? path[static_cast<std::size_t>(pathIndex) + 1]
                       : kInvalidNode;
    swarm->addMember(v, sched.depth(v),
                     sched.isBackbone(v) ? sched.uSlot(v) : kNoSlot, pathIndex,
                     pathNext, v == source);
  }
  sim_->setSwarm(std::move(swarm), intended_);
}

void InFlightBroadcast::admitIcff(const ClusterNet& net, NodeId source,
                                  std::uint64_t payload) {
  // Mirrors runIcff's full-flood admission (no group filter).
  std::vector<NodeId> path;
  for (NodeId v = source; v != kInvalidNode; v = net.parent(v))
    path.push_back(v);
  const Round backboneStart = static_cast<Round>(path.size()) - 1;

  const ClusterScheduleView sched = ClusterScheduleView::build(net);

  int backboneHeight = 0;
  for (NodeId v : sched.members())
    if (sched.isBackbone(v))
      backboneHeight =
          std::max(backboneHeight, static_cast<int>(sched.depth(v)));

  const TimeSlot bWindow = net.rootMaxBSlot();
  const TimeSlot lWindow = net.rootMaxLSlot();
  const TdmMap bTdm(bWindow == 0 ? 1 : bWindow, options_.channels);
  const TdmMap lTdm(lWindow == 0 ? 1 : lWindow, options_.channels);
  schedule_ = backboneStart +
              static_cast<Round>(backboneHeight + 1) * bTdm.windowLength() +
              lTdm.windowLength();

  SimConfig cfg;
  cfg.channelCount = options_.channels;
  cfg.maxRounds = options_.maxRounds > 0 ? options_.maxRounds : schedule_ + 4;
  cfg.traceCapacity = options_.traceCapacity;
  detail::applyScheduling(cfg, options_);
  horizon_ = cfg.maxRounds;

  sim_ = std::make_unique<RadioSimulator>(graph_, cfg);
  detail::applyFailures(*sim_, options_);

  endpoints_.assign(graph_.size(), nullptr);

  std::vector<int> pathIndexOf(graph_.size(), -1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    pathIndexOf[path[i]] = static_cast<int>(i);

  for (NodeId v : sched.members()) {
    if (!graph_.isAlive(v)) continue;
    IcffNodeConfig nc;
    nc.self = v;
    nc.depth = sched.depth(v);
    nc.backbone = sched.isBackbone(v);
    nc.bSlot = nc.backbone ? sched.bSlot(v) : kNoSlot;
    nc.lSlot = nc.backbone ? sched.lSlot(v) : kNoSlot;
    nc.bWindow = bWindow;
    nc.lWindow = lWindow;
    nc.channels = options_.channels;
    nc.backboneStart = backboneStart;
    nc.backboneHeight = backboneHeight;
    nc.isSource = v == source;
    nc.payload = payload;
    if (pathIndexOf[v] >= 0) {
      nc.pathIndex = pathIndexOf[v];
      nc.pathNext = path[static_cast<std::size_t>(nc.pathIndex) + 1];
    }
    nc.wantsPayload = true;
    nc.relays = nc.backbone;
    intended_.push_back(v);
    auto p = std::make_unique<IcffNodeProtocol>(nc);
    endpoints_[v] = p.get();
    sim_->setProtocol(v, std::move(p));
  }
}

void InFlightBroadcast::advanceTo(Round stop) {
  if (sim_->finished()) return;
  lastResult_ = sim_->runUntil(std::min(stop, horizon_));
}

void InFlightBroadcast::noteDisplaced(NodeId v) {
  if (v < displaced_.size()) displaced_[v] = 1;
}

void InFlightBroadcast::refreshPositions(const UnitDiskIndex& index) {
  auto& pos = options_.nodePositions;
  if (pos.empty()) return;  // the wave runs without a position partition
  pos.resize(graph_.size());
  for (NodeId v = 0; v < graph_.size(); ++v)
    if (index.contains(v)) pos[v] = index.position(v);
}

void InFlightBroadcast::onTopologyChanged() {
  if (sim_->finished()) return;
  sim_->resyncTopology();
}

bool InFlightBroadcast::deliveredTo(NodeId v) const {
  if (v >= admitSize_) return false;
  if (cffView_) return cffView_->hasPayload(v);
  return endpoints_[v] != nullptr && endpoints_[v]->hasPayload();
}

InFlightReport InFlightBroadcast::finish() const {
  DSN_REQUIRE(sim_->finished(), "InFlightBroadcast::finish: wave not done");
  InFlightReport r;
  r.sim = lastResult_;
  r.scheduleLength = schedule_;
  r.intended = intended_.size();
  r.transmissions = lastResult_.totalTransmissions;
  r.collisions = lastResult_.totalCollisions;
  for (NodeId v : intended_) {
    const bool has = deliveredTo(v);
    if (!graph_.isAlive(v)) {
      ++r.departed;
      continue;
    }
    if (has) {
      ++r.delivered;
      if (cffView_)
        r.lastDeliveryRound =
            std::max(r.lastDeliveryRound, cffView_->payloadRound(v));
      else
        r.lastDeliveryRound =
            std::max(r.lastDeliveryRound, endpoints_[v]->payloadRound());
    }
    if (displaced_[v] != 0) {
      ++r.displaced;
    } else {
      ++r.settled;
      if (has) ++r.deliveredSettled;
    }
  }
  return r;
}

}  // namespace dsn
