#include "broadcast/dfo.hpp"

#include <algorithm>

#include "broadcast/runner_detail.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {

DfoBackboneProtocol::DfoBackboneProtocol(NodeId self,
                                         std::vector<NodeId> btNeighbors,
                                         bool isTourStart,
                                         std::uint64_t payload)
    : self_(self),
      pending_(std::move(btNeighbors)),
      // The tour start has no tour parent: a token returning to it must
      // not be mistaken for a first delivery (it would otherwise emit a
      // spurious final hand-back).
      hadToken_(isTourStart),
      holdsToken_(isTourStart),
      hasPayload_(isTourStart),
      payloadRound_(isTourStart ? 0 : -1),
      payload_(payload) {}

Message DfoBackboneProtocol::tokenFor(NodeId target) const {
  Message m;
  m.kind = MsgKind::kToken;
  m.sender = self_;
  m.target = target;
  m.payload = payload_;
  return m;
}

Action DfoBackboneProtocol::onRound(Round) {
  if (closed_) return Action::sleep();
  if (!holdsToken_) return Action::listen();

  holdsToken_ = false;
  if (!pending_.empty()) {
    const NodeId next = pending_.front();
    pending_.erase(pending_.begin());
    if (pending_.empty() && tourParent_ == kInvalidNode) closed_ = true;
    return Action::transmit(tokenFor(next));
  }
  if (tourParent_ != kInvalidNode) {
    // Subtree finished: hand the token back where it came from.
    const NodeId back = tourParent_;
    tourParent_ = kInvalidNode;
    closed_ = true;
    return Action::transmit(tokenFor(back));
  }
  // Lone backbone node (single-cluster network): one transmission serves
  // every member in range.
  closed_ = true;
  return Action::transmit(tokenFor(kInvalidNode));
}

void DfoBackboneProtocol::onReceive(const Message& m, Round r, Channel) {
  if (m.kind != MsgKind::kToken) return;
  if (!hasPayload_) {
    hasPayload_ = true;
    payloadRound_ = r;
    payload_ = m.payload;
  }
  if (m.target == self_ && !closed_) {
    if (!hadToken_) {
      // First time the token reaches us: remember who to return it to.
      hadToken_ = true;
      tourParent_ = m.sender;
    }
    // The sender is implicitly "sent to" — the Eulerian edge back to it
    // is covered by the final hand-back, so drop it from pending.
    pending_.erase(std::remove(pending_.begin(), pending_.end(), m.sender),
                   pending_.end());
    holdsToken_ = true;
  }
}

DfoMemberProtocol::DfoMemberProtocol(NodeId self, NodeId head,
                                     bool isSource, std::uint64_t payload)
    : self_(self),
      head_(head),
      isSource_(isSource),
      hasPayload_(isSource),
      payloadRound_(isSource ? 0 : -1),
      payload_(payload) {}

Action DfoMemberProtocol::onRound(Round r) {
  if (isSource_ && !sentToHead_) {
    DSN_CHECK(r == 0, "source member transmits in the first round");
    sentToHead_ = true;
    Message m;
    m.kind = MsgKind::kToken;
    m.sender = self_;
    m.target = head_;
    m.payload = payload_;
    return Action::transmit(m);
  }
  if (hasPayload_) return Action::sleep();
  return Action::listen();
}

void DfoMemberProtocol::onReceive(const Message& m, Round r, Channel) {
  if (m.kind != MsgKind::kToken) return;
  if (!hasPayload_) {
    hasPayload_ = true;
    payloadRound_ = r;
    payload_ = m.payload;
  }
}

bool DfoMemberProtocol::isDone() const {
  return hasPayload_ && (!isSource_ || sentToHead_);
}

BroadcastRun runDfoBroadcast(const ClusterNet& net, NodeId source,
                             std::uint64_t payload,
                             const ProtocolOptions& options) {
  DSN_REQUIRE(net.contains(source), "broadcast source must be in the net");
  const Graph& g = net.graph();

  const auto backbone = net.backboneNodes();
  const bool sourceIsMember =
      net.status(source) == NodeStatus::kPureMember;
  const NodeId tourStart = sourceIsMember ? net.parent(source) : source;

  SimConfig cfg;
  cfg.channelCount = 1;  // the DFO baseline is single-channel
  cfg.maxRounds = options.maxRounds > 0
                      ? options.maxRounds
                      : static_cast<Round>(4 * backbone.size() + 16);
  detail::applyScheduling(cfg, options);
  cfg.traceCapacity = options.traceCapacity;

  RadioSimulator sim(g, cfg);
  detail::applyFailures(sim, options);

  std::vector<BroadcastEndpoint*> endpoints(g.size(), nullptr);
  std::vector<NodeId> intended;
  for (NodeId v : net.netNodes()) {
    // Skip stale (crashed, unrepaired) entries.
    if (!g.isAlive(v)) continue;
    intended.push_back(v);
    if (net.isBackbone(v)) {
      std::vector<NodeId> btNeighbors;
      if (v != net.root()) btNeighbors.push_back(net.parent(v));
      for (NodeId c : net.children(v))
        if (net.isBackbone(c)) btNeighbors.push_back(c);
      // With a member source the tour start (its head) must wait for the
      // member's round-0 hand-off rather than transmit immediately.
      const bool startsWithToken = v == tourStart && !sourceIsMember;
      auto p = std::make_unique<DfoBackboneProtocol>(
          v, std::move(btNeighbors), startsWithToken, payload);
      endpoints[v] = p.get();
      sim.setProtocol(v, std::move(p));
    } else {
      auto p = std::make_unique<DfoMemberProtocol>(
          v, net.parent(v), v == source, payload);
      endpoints[v] = p.get();
      sim.setProtocol(v, std::move(p));
    }
  }

  BroadcastRun run;
  run.scheduleLength =
      static_cast<Round>(2 * (backbone.empty() ? 0 : backbone.size() - 1) +
                         (sourceIsMember ? 1 : 0) + 1);
  run.sim = sim.run();
  detail::collectDeliveryStats(sim, intended, endpoints, run);
  return run;
}

}  // namespace dsn
