// Umbrella header + protocol dispatch for the broadcast family.
#pragma once

#include <array>
#include <string_view>

#include "broadcast/cff_flooding.hpp"
#include "broadcast/dfo.hpp"
#include "broadcast/improved_cff.hpp"
#include "broadcast/run_result.hpp"

namespace dsn {

/// The paper's three structured schemes plus the classic rivals they are
/// raced against in the arena (DESIGN.md §16). The first three need a
/// ClusterNet (TDM slots over the cluster structure); the rest run on
/// the flat graph with randomized relay decisions.
enum class BroadcastScheme : std::uint8_t {
  kDfo,          ///< depth-first-order Eulerian tour ([19], baseline)
  kCff,          ///< Algorithm 1: flood the whole CNet
  kImprovedCff,  ///< Algorithm 2: backbone flood + leaf window
  kFlooding,        ///< blind flooding (relay probability 1)
  kGossip,          ///< fixed-p probabilistic gossip
  kGossipAdaptive,  ///< density-adaptive gossip (p = fanout/degree)
  kCounter,         ///< counter-based suppression (Ni et al.)
  kDistance,        ///< distance-based suppression (needs positions)
  kRlnc,            ///< random linear network coding over GF(2^8)
};

constexpr std::string_view toString(BroadcastScheme s) {
  switch (s) {
    case BroadcastScheme::kDfo:
      return "DFO";
    case BroadcastScheme::kCff:
      return "CFF";
    case BroadcastScheme::kImprovedCff:
      return "ICFF";
    case BroadcastScheme::kFlooding:
      return "FLOOD";
    case BroadcastScheme::kGossip:
      return "GOSSIP";
    case BroadcastScheme::kGossipAdaptive:
      return "AGOSSIP";
    case BroadcastScheme::kCounter:
      return "COUNTER";
    case BroadcastScheme::kDistance:
      return "DISTANCE";
    case BroadcastScheme::kRlnc:
      return "RLNC";
  }
  return "?";
}

/// True for the paper's structured schemes: they consume the ClusterNet
/// and drive the TDM slot machinery. The rivals only need the graph.
constexpr bool isClusterScheme(BroadcastScheme s) {
  return s == BroadcastScheme::kDfo || s == BroadcastScheme::kCff ||
         s == BroadcastScheme::kImprovedCff;
}

/// True for the schemes with a depth-indexed slot schedule — the only
/// ones the NACK-repair (reliable) and in-flight wave machinery can
/// drive. DFO's token tour and the flat rivals have no slot schedule.
constexpr bool isSlottedScheme(BroadcastScheme s) {
  return s == BroadcastScheme::kCff || s == BroadcastScheme::kImprovedCff;
}

/// True for schemes whose protocol draws randomized relay decisions
/// (coins, backoffs, coefficients) from ArenaTuning::seed. These get
/// seed-determinism + budget-superset oracles instead of exact-set
/// differential equality in the testkit.
constexpr bool isRandomizedScheme(BroadcastScheme s) {
  return !isClusterScheme(s);
}

/// Every scheme, in arena roster order (the tbl_arena row order).
inline constexpr std::array<BroadcastScheme, 9> kAllBroadcastSchemes = {
    BroadcastScheme::kDfo,      BroadcastScheme::kCff,
    BroadcastScheme::kImprovedCff, BroadcastScheme::kFlooding,
    BroadcastScheme::kGossip,   BroadcastScheme::kGossipAdaptive,
    BroadcastScheme::kCounter,  BroadcastScheme::kDistance,
    BroadcastScheme::kRlnc,
};

/// Parses the scenario grammar's lowercase scheme word
/// (dfo|cff|icff|flood|gossip|agossip|counter|distance|rlnc).
bool parseBroadcastScheme(std::string_view word, BroadcastScheme& out);

/// Uniform entry point used by benches and examples. Cluster schemes
/// run over `net`; rivals run over `net.graph()` with the knobs in
/// `options.arena` (kDistance additionally needs
/// `options.nodePositions`, which SensorNetwork::broadcast fills).
BroadcastRun runBroadcast(BroadcastScheme scheme, const ClusterNet& net,
                          NodeId source, std::uint64_t payload,
                          const ProtocolOptions& options = {});

}  // namespace dsn
