// Umbrella header + protocol dispatch for the broadcast family.
#pragma once

#include <string_view>

#include "broadcast/cff_flooding.hpp"
#include "broadcast/dfo.hpp"
#include "broadcast/improved_cff.hpp"
#include "broadcast/run_result.hpp"

namespace dsn {

/// The three broadcast schemes the paper evaluates against each other.
enum class BroadcastScheme : std::uint8_t {
  kDfo,          ///< depth-first-order Eulerian tour ([19], baseline)
  kCff,          ///< Algorithm 1: flood the whole CNet
  kImprovedCff,  ///< Algorithm 2: backbone flood + leaf window
};

constexpr std::string_view toString(BroadcastScheme s) {
  switch (s) {
    case BroadcastScheme::kDfo:
      return "DFO";
    case BroadcastScheme::kCff:
      return "CFF";
    case BroadcastScheme::kImprovedCff:
      return "ICFF";
  }
  return "?";
}

/// Uniform entry point used by benches and examples.
BroadcastRun runBroadcast(BroadcastScheme scheme, const ClusterNet& net,
                          NodeId source, std::uint64_t payload,
                          const ProtocolOptions& options = {});

}  // namespace dsn
