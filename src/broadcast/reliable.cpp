#include "broadcast/reliable.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "broadcast/runner.hpp"
#include "broadcast/runner_detail.hpp"
#include "broadcast/tdm.hpp"
#include "cluster/cnet.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

/// SplitMix64 finalizer — the same mixer the experiment seeding uses;
/// local copy because dsn_broadcast sits below dsn_core.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Deterministic coin in [0,1) from (seed, node, repair round); drives
/// the responder backoff without any shared RNG state.
double hashCoin(std::uint64_t seed, NodeId v, int repairRound) {
  const std::uint64_t h =
      mix64(mix64(seed ^ (0xBACC0FFull + v)) ^
            static_cast<std::uint64_t>(repairRound));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Per-node state machine for one repair round.
class RepairProtocol final : public NodeProtocol {
 public:
  struct Config {
    NodeId self = kInvalidNode;
    Depth depth = 0;
    /// Up-slot (root falls back to slot 1).
    TimeSlot slot = 1;
    TimeSlot window = 1;  ///< largest up-slot (TDM window basis)
    Channel channels = 1;
    int subWindows = 1;  ///< maxDepth + 1 per phase
    bool covered = false;
    bool eligible = true;  ///< responder backoff coin (covered nodes)
    std::uint64_t payload = 0;
  };

  explicit RepairProtocol(const Config& cfg)
      : cfg_(cfg), tdm_(cfg.window == 0 ? 1 : cfg.window, cfg.channels) {}

  Round nackPhaseLength() const {
    return static_cast<Round>(cfg_.subWindows) * tdm_.windowLength();
  }
  Round scheduleLength() const { return 2 * nackPhaseLength(); }

  Action onRound(Round r) override {
    const Round nackEnd = nackPhaseLength();
    if (cfg_.covered) {
      if (r < nackEnd) return Action::listen();
      if (!heardNack_ || !cfg_.eligible) {
        done_ = true;
        return Action::sleep();
      }
      const Round tx = nackEnd +
                       static_cast<Round>(cfg_.depth) * tdm_.windowLength() +
                       tdm_.roundOffset(cfg_.slot);
      if (r == tx) {
        done_ = true;
        responded_ = true;
        Message m;
        m.kind = MsgKind::kData;
        m.sender = cfg_.self;
        m.depth = cfg_.depth;
        m.slot = cfg_.slot;
        m.payload = cfg_.payload;
        return Action::transmit(m, tdm_.channelOf(cfg_.slot));
      }
      if (r > tx) done_ = true;
      return Action::sleep();
    }

    // Uncovered: one NACK in our depth's sub-window, then listen through
    // the whole data phase.
    if (hasPayload_) {
      done_ = true;
      return Action::sleep();
    }
    const Round nackTx = static_cast<Round>(cfg_.depth) * tdm_.windowLength() +
                         tdm_.roundOffset(cfg_.slot);
    if (r == nackTx) {
      nackSent_ = true;
      Message m;
      m.kind = MsgKind::kNack;
      m.sender = cfg_.self;
      m.depth = cfg_.depth;
      m.slot = cfg_.slot;
      return Action::transmit(m, tdm_.channelOf(cfg_.slot));
    }
    if (r >= nackEnd) return Action::listen();
    return Action::sleep();
  }

  void onReceive(const Message& m, Round r, Channel) override {
    if (cfg_.covered) {
      if (m.kind == MsgKind::kNack) heardNack_ = true;
      return;
    }
    if (m.kind == MsgKind::kData && !hasPayload_) {
      hasPayload_ = true;
      payloadRound_ = r;
    }
  }

  bool isDone() const override { return done_; }

  Round nextWake(Round now) const override {
    if (done_) return kNoWake;
    const Round nackEnd = nackPhaseLength();
    if (cfg_.covered) {
      if (now + 1 < nackEnd) return now + 1;  // NACK-phase listening
      if (!heardNack_ || !cfg_.eligible) return now + 1;  // done transition
      const Round tx = nackEnd +
                       static_cast<Round>(cfg_.depth) * tdm_.windowLength() +
                       tdm_.roundOffset(cfg_.slot);
      return tx > now ? tx : now + 1;
    }
    if (hasPayload_) return now + 1;  // done transition
    const Round nackTx =
        static_cast<Round>(cfg_.depth) * tdm_.windowLength() +
        tdm_.roundOffset(cfg_.slot);
    if (nackTx > now) return nackTx;  // our NACK sub-window slot
    if (now + 1 < nackEnd) return nackEnd;  // sleep out the NACK phase
    return now + 1;  // data-phase listening
  }

  bool hasPayload() const { return hasPayload_; }
  Round payloadRound() const { return payloadRound_; }
  bool nackSent() const { return nackSent_; }
  bool responded() const { return responded_; }

 private:
  Config cfg_;
  TdmMap tdm_;
  bool heardNack_ = false;
  bool hasPayload_ = false;
  Round payloadRound_ = -1;
  bool nackSent_ = false;
  bool responded_ = false;
  bool done_ = false;
};

/// Shifts the failure plan of `base` by `elapsed` virtual rounds so a
/// repair-round simulator (whose clock restarts at 0) sees deaths and
/// jam intervals at the right wall-clock moments. Drop/burst coins get a
/// per-round derived seed.
ProtocolOptions shiftedOptions(const ProtocolOptions& base, Round elapsed,
                               int repairRound) {
  ProtocolOptions out = base;
  const std::uint64_t salt =
      std::uint64_t{0x5EC0FDA7} + static_cast<std::uint64_t>(repairRound);
  out.failureSeed = mix64(base.failureSeed ^ salt);
  out.deaths.clear();
  for (const auto& [node, round] : base.deaths)
    out.deaths.emplace_back(node, std::max<Round>(0, round - elapsed));
  out.jamZones.clear();
  for (JamZone z : base.jamZones) {
    if (z.toRound != std::numeric_limits<Round>::max()) {
      if (z.toRound - elapsed <= 0) continue;  // interval already over
      z.toRound -= elapsed;
    }
    z.fromRound = std::max<Round>(0, z.fromRound - elapsed);
    out.jamZones.push_back(z);
  }
  return out;
}

void flushReliableMetrics(const ReliableBroadcastRun& run) {
  if (!obs::enabled()) return;
  auto& m = obs::globalMetrics();
  m.counter("broadcast.reliable.runs").increment();
  m.counter("broadcast.reliable.repair_rounds")
      .increment(static_cast<std::uint64_t>(run.repairRoundsUsed));
  m.counter("broadcast.reliable.nacks").increment(run.nacksSent);
  m.counter("broadcast.reliable.retransmissions")
      .increment(run.retransmissions);
  m.counter("broadcast.reliable.residual_uncovered")
      .increment(run.residualUncovered);
  m.histogram("broadcast.reliable.repair_rounds_used",
              obs::Histogram::exponentialBounds(6))
      .observe(static_cast<double>(run.repairRoundsUsed));
}

}  // namespace

ReliableBroadcastRun runReliableBroadcast(BroadcastScheme scheme,
                                          const ClusterNet& net,
                                          NodeId source,
                                          std::uint64_t payload,
                                          const ReliableOptions& options) {
  DSN_REQUIRE(isSlottedScheme(scheme),
              "reliable mode needs a slotted flooding scheme (CFF/iCFF): "
              "the NACK repair waves reuse the depth-indexed slot "
              "schedule, which the DFO token tour and the flat arena "
              "rivals do not have");
  DSN_REQUIRE(options.maxRepairRounds >= 0,
              "maxRepairRounds must be non-negative");
  DSN_REQUIRE(options.responderKeepProbability > 0.0 &&
                  options.responderKeepProbability <= 1.0,
              "responderKeepProbability must be in (0,1]");
  DSN_TIMED_PHASE("broadcast.reliable");
  obs::recordRunBegin(obs::FrRunKind::kReliable, source);

  const Graph& g = net.graph();
  ReliableBroadcastRun run;
  run.wave = runBroadcast(scheme, net, source, payload, options.base);

  // Intended = alive net nodes (a stale structure may still reference
  // crashed ones; they are not reachable and not counted).
  std::vector<NodeId> intended;
  Depth maxDepth = 0;
  for (NodeId v : net.netNodes()) {
    if (!g.isAlive(v)) continue;
    intended.push_back(v);
    maxDepth = std::max(maxDepth, net.depth(v));
  }
  run.intended = intended.size();

  run.deliveryRound = run.wave.deliveryRound;
  run.deliveryRound.resize(g.size(), -1);
  std::vector<char> covered(g.size(), 0);
  for (NodeId v : intended)
    if (run.deliveryRound[v] >= 0) covered[v] = 1;

  Round elapsed = run.wave.sim.rounds;

  const TimeSlot upWindow = net.rootMaxUpSlot();
  for (int k = 0; k < options.maxRepairRounds; ++k) {
    // A node already scheduled to be dead by now cannot be repaired;
    // exclude it from the active uncovered set so it does not burn the
    // remaining budget.
    std::vector<NodeId> uncovered;
    for (NodeId v : intended) {
      if (covered[v]) continue;
      bool deadNow = false;
      for (const auto& [node, round] : options.base.deaths)
        if (node == v && round <= elapsed) deadNow = true;
      if (!deadNow) uncovered.push_back(v);
    }
    if (uncovered.empty()) break;

    const ProtocolOptions opts = shiftedOptions(options.base, elapsed, k);
    RepairProtocol::Config proto;
    proto.window = upWindow == 0 ? 1 : upWindow;
    proto.channels = opts.channels;
    proto.subWindows = static_cast<int>(maxDepth) + 1;

    SimConfig cfg;
    cfg.channelCount = opts.channels;
    cfg.traceCapacity = 0;
    cfg.scheduling = opts.scheduling;
    cfg.resolveScratch = opts.resolveScratch;
    cfg.maxRounds = 2 * static_cast<Round>(proto.subWindows) *
                    TdmMap(proto.window, proto.channels).windowLength();

    RadioSimulator sim(g, cfg);
    detail::applyFailures(sim, opts);

    std::vector<RepairProtocol*> repairers(g.size(), nullptr);
    for (NodeId v : intended) {
      RepairProtocol::Config nc = proto;
      nc.self = v;
      nc.depth = net.depth(v);
      nc.slot = net.upSlot(v) == kNoSlot ? 1 : net.upSlot(v);
      nc.covered = covered[v] != 0;
      nc.eligible = k == 0 || options.responderKeepProbability >= 1.0 ||
                    hashCoin(options.base.failureSeed, v, k) <
                        options.responderKeepProbability;
      nc.payload = payload;
      auto p = std::make_unique<RepairProtocol>(nc);
      repairers[v] = p.get();
      sim.setProtocol(v, std::move(p));
    }

    const SimResult result = sim.run();
    ++run.repairRoundsUsed;

    for (NodeId v : intended) {
      const RepairProtocol* p = repairers[v];
      if (!p) continue;
      if (p->nackSent()) ++run.nacksSent;
      if (p->responded()) ++run.retransmissions;
      if (!covered[v] && p->hasPayload()) {
        covered[v] = 1;
        run.deliveryRound[v] = elapsed + p->payloadRound();
      }
    }
    elapsed += result.rounds;
  }

  run.delivered = 0;
  for (NodeId v : intended)
    if (covered[v]) ++run.delivered;
  run.residualUncovered = run.intended - run.delivered;
  run.totalRounds = elapsed;
  obs::recordRunEnd(obs::FrRunKind::kReliable,
                    static_cast<std::uint32_t>(run.delivered),
                    static_cast<std::uint32_t>(run.totalRounds));
  flushReliableMetrics(run);
  return run;
}

}  // namespace dsn
