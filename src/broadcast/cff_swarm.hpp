// Structure-of-arrays implementation of Algorithm 1 (CFF flooding).
//
// Exactly the CffNodeProtocol state machine, but ONE object drives every
// member node with per-node state held in flat arrays (a handful of
// bytes per node) instead of one ~100-byte heap object per node. The
// round-for-round behaviour — actions, wake hints, done transitions — is
// identical by construction: both implementations are ports of the same
// state machine, and the differential tests pin them to each other.
//
// Thread-safety (SwarmProtocol contract): the sharded scheduler calls
// onRound/onReceive/isDone/nextWake for *distinct* nodes concurrently.
// Every method here touches only node v's array slots — distinct memory
// locations — so no atomics are needed; nothing is shared mutable.
#pragma once

#include <cstdint>
#include <vector>

#include "broadcast/run_result.hpp"
#include "broadcast/tdm.hpp"
#include "radio/protocol.hpp"

namespace dsn {

/// Run-wide schedule constants of one Algorithm-1 broadcast.
struct CffSwarmConfig {
  /// Δ — the root's known largest u-slot; defines the window length.
  TimeSlot window = 0;
  Channel channels = 1;
  /// Absolute round the depth-0 window opens (= depth of the source).
  Round floodStart = 0;
  std::uint64_t payload = 0;
};

/// The whole network's Algorithm-1 state, keyed by node id.
class CffSwarm : public SwarmProtocol {
 public:
  CffSwarm(const CffSwarmConfig& cfg, std::size_t nodeCount);

  /// Registers node `v` with its static schedule knowledge (mirrors
  /// CffNodeConfig): depth, u-slot (kNoSlot = silent), position on the
  /// source->root relay path (-1 = off-path) and the next hop on it.
  void addMember(NodeId v, Depth depth, TimeSlot slot, int pathIndex,
                 NodeId pathNext, bool isSource);

  Action onRound(NodeId v, Round r) override;
  void onReceive(NodeId v, const Message& m, Round r,
                 Channel channel) override;
  bool isDone(NodeId v) const override;
  Round nextWake(NodeId v, Round now) const override;

  // Delivery accounting (the swarm-side BroadcastEndpoint equivalent).
  bool hasPayload(NodeId v) const { return (flags_[v] & kHasPayload) != 0; }
  Round payloadRound(NodeId v) const { return payloadRound_[v]; }

 private:
  static constexpr std::uint8_t kHasPayload = 1;
  static constexpr std::uint8_t kPathSent = 2;
  static constexpr std::uint8_t kFloodSent = 4;
  static constexpr std::uint8_t kMissed = 8;

  Round listenWindowStart(NodeId v) const;
  Round listenWindowEnd(NodeId v) const;
  Round floodTransmitRound(NodeId v) const;

  CffSwarmConfig cfg_;
  TdmMap tdm_;
  // Hot per-node state, indexed by node id.
  std::vector<std::uint8_t> flags_;
  std::vector<Depth> depth_;
  std::vector<TimeSlot> slot_;
  std::vector<std::int32_t> pathIndex_;
  std::vector<NodeId> pathNext_;
  std::vector<std::uint64_t> payload_;
  std::vector<Round> payloadRound_;
};

}  // namespace dsn
