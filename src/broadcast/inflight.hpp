// In-flight broadcasts over a reconfiguring network (DESIGN.md §15).
//
// InFlightBroadcast admits a CFF or iCFF wave exactly like the one-shot
// runners, but owns the simulator and exposes the reconfiguration seam:
// the wave advances in segments, and between segments the caller may
// mutate the deployment (moveSensor / crashSensor / addSensor /
// removeSensor, structure repairs) and then resync the paused run. The
// wave's schedule is the one computed at admission — reconfiguration
// never re-plans a wave in flight; it changes the radio field under it,
// and the accounting below reports the degradation honestly.
//
//   InFlightBroadcast wave(net.clusterNet(), BroadcastScheme::kCff,
//                          src, payload, options);
//   wave.advanceTo(64);              // first 64 rounds
//   net.moveSensor(v, elsewhere);    // topology changes under the wave
//   wave.noteDisplaced(v);
//   wave.refreshPositions(net);
//   wave.onTopologyChanged();        // resync the paused engines
//   wave.runToCompletion();
//   InFlightReport r = wave.finish();
#pragma once

#include <memory>
#include <vector>

#include "broadcast/run_result.hpp"
#include "broadcast/runner.hpp"
#include "cluster/cnet.hpp"
#include "radio/simulator.hpp"

namespace dsn {

class CffSwarm;
class UnitDiskIndex;

/// Outcome of one in-flight wave, with degraded-coverage accounting.
/// `intended` splits into three disjoint classes at completion time:
/// departed (no longer alive), displaced (alive but disrupted mid-wave —
/// moved, withdrawn, or re-homed by a repair), and settled (alive and
/// undisturbed, the nodes the admission-time schedule still serves).
struct InFlightReport {
  SimResult sim;
  Round scheduleLength = 0;
  std::size_t intended = 0;   ///< members alive at admission
  std::size_t departed = 0;   ///< intended, dead at completion
  std::size_t displaced = 0;  ///< intended, alive, disrupted mid-wave
  std::size_t settled = 0;    ///< intended - departed - displaced
  /// Payload holders among intended ∩ alive (displaced included).
  std::size_t delivered = 0;
  /// Payload holders among the settled class only.
  std::size_t deliveredSettled = 0;
  Round lastDeliveryRound = -1;
  std::size_t transmissions = 0;
  std::size_t collisions = 0;

  /// Delivered fraction of the still-alive intended receivers.
  double coverage() const {
    const std::size_t alive = intended - departed;
    return alive == 0 ? 1.0
                      : static_cast<double>(delivered) /
                            static_cast<double>(alive);
  }
  /// Delivered fraction of the settled class — the schedule's own
  /// receivers, net of churn casualties. This is the number the
  /// campaign-level ≥99% acceptance gate watches.
  double effectiveCoverage() const {
    return settled == 0 ? 1.0
                        : static_cast<double>(deliveredSettled) /
                              static_cast<double>(settled);
  }
};

/// A resumable CFF/iCFF broadcast wave. Supports kCff and kImprovedCff;
/// the token tour (kDfo) has no collision-free schedule to preserve and
/// is rejected. Bit-identical across scheduling modes and thread counts,
/// segment boundaries included (the engines' seam contract).
class InFlightBroadcast {
 public:
  /// Admits the wave against `net`'s schedule as of now. `options` is
  /// copied; the sharded scheduler's position borrow points into the
  /// copy, so the caller may update positions() as nodes move.
  InFlightBroadcast(const ClusterNet& net, BroadcastScheme scheme,
                    NodeId source, std::uint64_t payload,
                    const ProtocolOptions& options);
  ~InFlightBroadcast();

  InFlightBroadcast(const InFlightBroadcast&) = delete;
  InFlightBroadcast& operator=(const InFlightBroadcast&) = delete;

  /// Advances the paused run to round `stop` (clamped to horizon()).
  void advanceTo(Round stop);
  /// Runs the remaining rounds to the budget.
  void runToCompletion() { advanceTo(horizon()); }

  /// Marks an intended receiver as disrupted mid-wave (moved, withdrawn,
  /// crashed, or re-homed by a repair); it leaves the settled class.
  void noteDisplaced(NodeId v);

  /// The mutable position buffer the sharded engine partitions by.
  /// Refresh before onTopologyChanged() when nodes moved or joined.
  std::vector<Point2D>& positions() { return options_.nodePositions; }
  /// Convenience: re-fills positions() from the live deployment index
  /// (no-op when the wave runs without positions).
  void refreshPositions(const UnitDiskIndex& index);

  /// Re-syncs the paused engines after an external mutation of the
  /// graph, positions, or failure schedule.
  void onTopologyChanged();

  bool finished() const { return sim_->finished(); }
  Round cursor() const { return sim_->cursor(); }
  /// The wave's static TDM schedule length (rounds), fixed at admission.
  Round scheduleLength() const { return schedule_; }
  /// The round budget (scheduleLength + slack, or options.maxRounds).
  Round horizon() const { return horizon_; }

  /// Whether node `v` holds the payload (valid any time; dead nodes keep
  /// the delivery state they had when they died).
  bool deliveredTo(NodeId v) const;

  /// Whether noteDisplaced(v) was recorded for this wave.
  bool wasDisplaced(NodeId v) const {
    return v < displaced_.size() && displaced_[v] != 0;
  }

  const std::vector<NodeId>& intended() const { return intended_; }

  /// Final accounting; requires finished().
  InFlightReport finish() const;

 private:
  const Graph& graph_;
  ProtocolOptions options_;  // owned; sim borrows nodePositions
  Round schedule_ = 0;
  Round horizon_ = 0;
  std::vector<NodeId> intended_;
  std::vector<std::uint8_t> displaced_;     // indexed by id < admitSize_
  std::size_t admitSize_ = 0;               // graph size at admission
  const CffSwarm* cffView_ = nullptr;       // kCff delivery view
  std::vector<BroadcastEndpoint*> endpoints_;  // kImprovedCff delivery
  std::unique_ptr<RadioSimulator> sim_;
  SimResult lastResult_;

  void admitCff(const ClusterNet& net, NodeId source, std::uint64_t payload);
  void admitIcff(const ClusterNet& net, NodeId source, std::uint64_t payload);
};

}  // namespace dsn
