#include "broadcast/cff_flooding.hpp"

#include <algorithm>
#include <memory>

#include "broadcast/runner_detail.hpp"
#include "graph/algorithms.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {

CffNodeProtocol::CffNodeProtocol(const CffNodeConfig& cfg)
    : cfg_(cfg),
      tdm_(cfg.window == 0 ? 1 : cfg.window, cfg.channels),
      hasPayload_(cfg.isSource),
      payloadRound_(cfg.isSource ? 0 : -1),
      pathSent_(cfg.pathIndex < 0 || cfg.pathNext == kInvalidNode),
      floodSent_(cfg.slot == kNoSlot) {}

Round CffNodeProtocol::listenWindowStart() const {
  return cfg_.floodStart +
         static_cast<Round>(cfg_.depth - 1) * tdm_.windowLength();
}

Round CffNodeProtocol::listenWindowEnd() const {
  if (cfg_.depth == 0) return cfg_.floodStart;  // root: end of path phase
  return cfg_.floodStart +
         static_cast<Round>(cfg_.depth) * tdm_.windowLength();
}

Round CffNodeProtocol::floodTransmitRound() const {
  return cfg_.floodStart +
         static_cast<Round>(cfg_.depth) * tdm_.windowLength() +
         tdm_.roundOffset(cfg_.slot);
}

Action CffNodeProtocol::onRound(Round r) {
  if (missed_) return Action::sleep();

  if (!hasPayload_) {
    // Path relays know their position: they wake for exactly the round
    // their predecessor transmits the control frame.
    if (cfg_.pathIndex > 0 && r == cfg_.pathIndex - 1)
      return Action::listen();
    if (r >= listenWindowEnd()) {
      missed_ = true;  // our receive window passed in silence
      return Action::sleep();
    }
    if (r >= listenWindowStart()) return Action::listen();
    return Action::sleep();
  }

  // Payload in hand: source->root relay duty first (rounds 0..R0-1).
  if (!pathSent_) {
    if (r == cfg_.pathIndex) {
      pathSent_ = true;
      Message m;
      m.kind = MsgKind::kControl;
      m.sender = cfg_.self;
      m.target = cfg_.pathNext;
      m.origin = cfg_.self;
      m.payload = cfg_.payload;
      return Action::transmit(m, 0);
    }
    if (r < cfg_.pathIndex) return Action::sleep();
    // Our path round passed before we got the payload upstream; the
    // relay chain is broken — nothing more to do on the path.
    pathSent_ = true;
  }

  // Flood duty: internal nodes relay once in their depth's window.
  if (!floodSent_) {
    const Round tx = floodTransmitRound();
    if (r == tx) {
      floodSent_ = true;
      Message m;
      m.kind = MsgKind::kData;
      m.sender = cfg_.self;
      m.slot = cfg_.slot;
      m.windowSize = cfg_.window;
      m.depth = cfg_.depth;
      m.payload = cfg_.payload;
      return Action::transmit(m, tdm_.channelOf(cfg_.slot));
    }
    if (r < tx) return Action::sleep();
    floodSent_ = true;  // transmit round passed (late payload)
  }
  return Action::sleep();
}

void CffNodeProtocol::onReceive(const Message& m, Round r, Channel) {
  if (m.kind != MsgKind::kData && m.kind != MsgKind::kControl) return;
  if (!hasPayload_) {
    hasPayload_ = true;
    payloadRound_ = r;
    cfg_.payload = m.payload;
  }
}

bool CffNodeProtocol::isDone() const {
  return missed_ || (hasPayload_ && pathSent_ && floodSent_);
}

Round CffNodeProtocol::nextWake(Round now) const {
  if (missed_) return kNoWake;
  if (!hasPayload_) {
    // Wake for the dedicated path-listen round, every round of the listen
    // window, and the window-end round (where missed_ flips).
    Round next = kNoWake;
    if (cfg_.pathIndex > 0 && static_cast<Round>(cfg_.pathIndex) - 1 > now)
      next = cfg_.pathIndex - 1;
    const Round w = std::max(now + 1, listenWindowStart());
    if (w <= listenWindowEnd()) next = std::min(next, w);
    return next;
  }
  if (!pathSent_) {
    // Either transmit at pathIndex or process the lapsed-duty transition
    // (late payload) on the very next round.
    const Round tx = cfg_.pathIndex;
    return tx > now ? tx : now + 1;
  }
  if (!floodSent_) {
    const Round tx = floodTransmitRound();
    return tx > now ? tx : now + 1;
  }
  return kNoWake;  // done: sleeps forever
}

BroadcastRun runCffBroadcast(const ClusterNet& net, NodeId source,
                             std::uint64_t payload,
                             const ProtocolOptions& options) {
  DSN_REQUIRE(net.contains(source), "broadcast source must be in the net");
  const Graph& g = net.graph();

  // Source -> root tree path.
  std::vector<NodeId> path;
  for (NodeId v = source; v != kInvalidNode; v = net.parent(v))
    path.push_back(v);
  const Round floodStart = static_cast<Round>(path.size()) - 1;

  const TimeSlot window = net.rootMaxUSlot();
  const TdmMap tdm(window == 0 ? 1 : window, options.channels);
  const Round schedule =
      floodStart + static_cast<Round>(net.height() + 1) * tdm.windowLength();

  SimConfig cfg;
  cfg.channelCount = options.channels;
  cfg.maxRounds = options.maxRounds > 0 ? options.maxRounds : schedule + 4;
  cfg.traceCapacity = options.traceCapacity;
  cfg.scheduling = options.scheduling;

  RadioSimulator sim(g, cfg);
  detail::applyFailures(sim, options);

  std::vector<BroadcastEndpoint*> endpoints(g.size(), nullptr);
  std::vector<NodeId> intended;
  for (NodeId v : net.netNodes()) {
    // A stale structure (crashes not yet repaired) may reference dead
    // nodes; they neither act nor count as intended receivers.
    if (!g.isAlive(v)) continue;
    intended.push_back(v);
    CffNodeConfig nc;
    nc.self = v;
    nc.depth = net.depth(v);
    nc.slot = net.isBackbone(v) ? net.uSlot(v) : kNoSlot;
    nc.window = window;
    nc.channels = options.channels;
    nc.floodStart = floodStart;
    nc.isSource = v == source;
    nc.payload = payload;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (path[i] == v && i + 1 < path.size()) {
        nc.pathIndex = static_cast<int>(i);
        nc.pathNext = path[i + 1];
      }
    }
    auto p = std::make_unique<CffNodeProtocol>(nc);
    endpoints[v] = p.get();
    sim.setProtocol(v, std::move(p));
  }

  BroadcastRun run;
  run.scheduleLength = schedule;
  run.sim = sim.run();
  detail::collectDeliveryStats(sim, intended, endpoints, run);
  return run;
}

}  // namespace dsn
