#include "broadcast/cff_flooding.hpp"

#include "broadcast/cff_swarm.hpp"

#include <algorithm>
#include <memory>

#include "broadcast/runner_detail.hpp"
#include "cluster/soa.hpp"
#include "graph/algorithms.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {

CffNodeProtocol::CffNodeProtocol(const CffNodeConfig& cfg)
    : cfg_(cfg),
      tdm_(cfg.window == 0 ? 1 : cfg.window, cfg.channels),
      hasPayload_(cfg.isSource),
      payloadRound_(cfg.isSource ? 0 : -1),
      pathSent_(cfg.pathIndex < 0 || cfg.pathNext == kInvalidNode),
      floodSent_(cfg.slot == kNoSlot) {}

Round CffNodeProtocol::listenWindowStart() const {
  return cfg_.floodStart +
         static_cast<Round>(cfg_.depth - 1) * tdm_.windowLength();
}

Round CffNodeProtocol::listenWindowEnd() const {
  if (cfg_.depth == 0) return cfg_.floodStart;  // root: end of path phase
  return cfg_.floodStart +
         static_cast<Round>(cfg_.depth) * tdm_.windowLength();
}

Round CffNodeProtocol::floodTransmitRound() const {
  return cfg_.floodStart +
         static_cast<Round>(cfg_.depth) * tdm_.windowLength() +
         tdm_.roundOffset(cfg_.slot);
}

Action CffNodeProtocol::onRound(Round r) {
  if (missed_) return Action::sleep();

  if (!hasPayload_) {
    // Path relays know their position: they wake for exactly the round
    // their predecessor transmits the control frame.
    if (cfg_.pathIndex > 0 && r == cfg_.pathIndex - 1)
      return Action::listen();
    if (r >= listenWindowEnd()) {
      missed_ = true;  // our receive window passed in silence
      return Action::sleep();
    }
    if (r >= listenWindowStart()) return Action::listen();
    return Action::sleep();
  }

  // Payload in hand: source->root relay duty first (rounds 0..R0-1).
  if (!pathSent_) {
    if (r == cfg_.pathIndex) {
      pathSent_ = true;
      Message m;
      m.kind = MsgKind::kControl;
      m.sender = cfg_.self;
      m.target = cfg_.pathNext;
      m.origin = cfg_.self;
      m.payload = cfg_.payload;
      return Action::transmit(m, 0);
    }
    if (r < cfg_.pathIndex) return Action::sleep();
    // Our path round passed before we got the payload upstream; the
    // relay chain is broken — nothing more to do on the path.
    pathSent_ = true;
  }

  // Flood duty: internal nodes relay once in their depth's window.
  if (!floodSent_) {
    const Round tx = floodTransmitRound();
    if (r == tx) {
      floodSent_ = true;
      Message m;
      m.kind = MsgKind::kData;
      m.sender = cfg_.self;
      m.slot = cfg_.slot;
      m.windowSize = cfg_.window;
      m.depth = cfg_.depth;
      m.payload = cfg_.payload;
      return Action::transmit(m, tdm_.channelOf(cfg_.slot));
    }
    if (r < tx) return Action::sleep();
    floodSent_ = true;  // transmit round passed (late payload)
  }
  return Action::sleep();
}

void CffNodeProtocol::onReceive(const Message& m, Round r, Channel) {
  if (m.kind != MsgKind::kData && m.kind != MsgKind::kControl) return;
  if (!hasPayload_) {
    hasPayload_ = true;
    payloadRound_ = r;
    cfg_.payload = m.payload;
  }
}

bool CffNodeProtocol::isDone() const {
  return missed_ || (hasPayload_ && pathSent_ && floodSent_);
}

Round CffNodeProtocol::nextWake(Round now) const {
  if (missed_) return kNoWake;
  if (!hasPayload_) {
    // Wake for the dedicated path-listen round, every round of the listen
    // window, and the window-end round (where missed_ flips).
    Round next = kNoWake;
    if (cfg_.pathIndex > 0 && static_cast<Round>(cfg_.pathIndex) - 1 > now)
      next = cfg_.pathIndex - 1;
    const Round w = std::max(now + 1, listenWindowStart());
    if (w <= listenWindowEnd()) next = std::min(next, w);
    return next;
  }
  if (!pathSent_) {
    // Either transmit at pathIndex or process the lapsed-duty transition
    // (late payload) on the very next round.
    const Round tx = cfg_.pathIndex;
    return tx > now ? tx : now + 1;
  }
  if (!floodSent_) {
    const Round tx = floodTransmitRound();
    return tx > now ? tx : now + 1;
  }
  return kNoWake;  // done: sleeps forever
}

BroadcastRun runCffBroadcast(const ClusterNet& net, NodeId source,
                             std::uint64_t payload,
                             const ProtocolOptions& options) {
  DSN_REQUIRE(net.contains(source), "broadcast source must be in the net");
  const Graph& g = net.graph();

  // Source -> root tree path.
  std::vector<NodeId> path;
  for (NodeId v = source; v != kInvalidNode; v = net.parent(v))
    path.push_back(v);
  const Round floodStart = static_cast<Round>(path.size()) - 1;

  const TimeSlot window = net.rootMaxUSlot();
  const TdmMap tdm(window == 0 ? 1 : window, options.channels);
  const Round schedule =
      floodStart + static_cast<Round>(net.height() + 1) * tdm.windowLength();

  SimConfig cfg;
  cfg.channelCount = options.channels;
  cfg.maxRounds = options.maxRounds > 0 ? options.maxRounds : schedule + 4;
  cfg.traceCapacity = options.traceCapacity;
  detail::applyScheduling(cfg, options);

  RadioSimulator sim(g, cfg);
  detail::applyFailures(sim, options);

  // One structure-of-arrays swarm drives every member (DESIGN.md §14);
  // the per-object CffNodeProtocol remains as the differential oracle.
  CffSwarmConfig sc;
  sc.window = window;
  sc.channels = options.channels;
  sc.floodStart = floodStart;
  sc.payload = payload;
  auto swarm = std::make_unique<CffSwarm>(sc, g.size());
  const CffSwarm* view = swarm.get();

  // Flat schedule columns: one pass over the knowledge table instead of a
  // per-field accessor chase for every member (matters at n >= 10^5).
  const ClusterScheduleView sched = ClusterScheduleView::build(net);

  // Path membership as a flat lookup instead of an O(|path|) scan per node.
  std::vector<int> pathIndexOf(g.size(), -1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    pathIndexOf[path[i]] = static_cast<int>(i);

  std::vector<NodeId> intended;
  intended.reserve(sched.members().size());
  for (NodeId v : sched.members()) {
    // A stale structure (crashes not yet repaired) may reference dead
    // nodes; they neither act nor count as intended receivers.
    if (!g.isAlive(v)) continue;
    intended.push_back(v);
    const int pathIndex = pathIndexOf[v];
    const NodeId pathNext =
        pathIndex >= 0 ? path[static_cast<std::size_t>(pathIndex) + 1]
                       : kInvalidNode;
    swarm->addMember(v, sched.depth(v),
                     sched.isBackbone(v) ? sched.uSlot(v) : kNoSlot, pathIndex,
                     pathNext, v == source);
  }
  sim.setSwarm(std::move(swarm), intended);

  BroadcastRun run;
  run.scheduleLength = schedule;
  run.sim = sim.run();
  detail::collectSwarmDeliveryStats(sim, intended, *view, run);
  return run;
}

}  // namespace dsn
