// Depth-First-Order broadcast — the baseline of [19] (paper Section 3.2).
//
// The broadcast message tours the backbone BT(G) as an Eulerian walk
// driven by a token: exactly one node transmits per round, so every
// transmission is collision-free and every neighbor of the transmitter
// (including pure members) overhears the payload. The token is passed by
// addressing the frame to one node.
//
// Fragility (the paper's robustness argument): one lost token frame
// stalls the entire remaining tour.
#pragma once

#include <vector>

#include "cluster/cnet.hpp"
#include "radio/protocol.hpp"
#include "broadcast/run_result.hpp"

namespace dsn {

/// Protocol of a backbone node in the DFO tour.
class DfoBackboneProtocol : public NodeProtocol, public BroadcastEndpoint {
 public:
  /// `btNeighbors` = tree neighbors within BT(G) (backbone parent +
  /// backbone children). `isTourStart` marks the node that initiates the
  /// tour (the source, or the source's head when the source is a member).
  DfoBackboneProtocol(NodeId self, std::vector<NodeId> btNeighbors,
                      bool isTourStart, std::uint64_t payload);

  Action onRound(Round r) override;
  void onReceive(const Message& m, Round r, Channel channel) override;
  bool isDone() const override { return closed_; }
  /// Listens every round for the token until its tour part closes.
  Round nextWake(Round now) const override {
    return closed_ ? kNoWake : now + 1;
  }

  bool hasPayload() const override { return hasPayload_; }
  Round payloadRound() const override { return payloadRound_; }

  /// True once this node finished its part of the tour.
  bool closed() const { return closed_; }

 private:
  NodeId self_;
  std::vector<NodeId> pending_;  ///< BT neighbors not yet sent to
  NodeId tourParent_ = kInvalidNode;
  bool hadToken_ = false;
  bool holdsToken_;
  bool closed_ = false;
  bool hasPayload_;
  Round payloadRound_;
  std::uint64_t payload_;

  Message tokenFor(NodeId target) const;
};

/// Protocol of a pure member: listen until the payload is overheard.
/// When the member is the broadcast source it first hands the payload to
/// its head (one extra round, Section 3.2).
class DfoMemberProtocol : public NodeProtocol, public BroadcastEndpoint {
 public:
  DfoMemberProtocol(NodeId self, NodeId head, bool isSource,
                    std::uint64_t payload);

  Action onRound(Round r) override;
  void onReceive(const Message& m, Round r, Channel channel) override;
  bool isDone() const override;
  /// Source hand-off in round 0, then (without payload) listen every
  /// round; with payload in hand a member sleeps forever.
  Round nextWake(Round now) const override {
    if (isSource_ && !sentToHead_) return now < 0 ? 0 : now + 1;
    return hasPayload_ ? kNoWake : now + 1;
  }

  bool hasPayload() const override { return hasPayload_; }
  Round payloadRound() const override { return payloadRound_; }

 private:
  NodeId self_;
  NodeId head_;
  bool isSource_;
  bool sentToHead_ = false;
  bool hasPayload_;
  Round payloadRound_;
  std::uint64_t payload_;
};

/// Runs a full DFO broadcast of `payload` from `source` over `net`.
BroadcastRun runDfoBroadcast(const ClusterNet& net, NodeId source,
                             std::uint64_t payload,
                             const ProtocolOptions& options = {});

}  // namespace dsn
