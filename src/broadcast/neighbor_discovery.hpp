// Randomized neighbor discovery — the [19] attach handshake.
//
// node-move-in assumes the joining node can learn its neighborhood in
// O(d_new) *expected* rounds using a randomized protocol (paper
// Section 5.1 / Theorem 2(1), citing [19]). dsnet charges exactly d_new
// rounds per attach (DESIGN.md §2); this module implements the actual
// handshake on the radio simulator so that charge can be validated:
//
//   1. the joiner transmits HELLO;
//   2. every neighbor picks a uniform slot in a contention window and
//      replies, addressed to the joiner;
//   3. replies that collide are not acknowledged (the joiner piggybacks
//      the ids it heard on its next HELLO); unheard neighbors retry in
//      the next window, whose size doubles (binary exponential backoff);
//   4. the protocol ends when a HELLO round is followed by a window in
//      which every remaining neighbor got through.
//
// Expected rounds grow linearly in the true neighbor count — the
// `tbl_discovery` bench measures the constant.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dsn {

struct DiscoveryConfig {
  /// Initial contention window (doubles after each incomplete round).
  int initialWindow = 2;
  /// Hard cap on the window growth.
  int maxWindow = 1024;
  /// RNG seed for the neighbors' slot draws.
  std::uint64_t seed = 0xD15C0;
  /// Safety stop.
  Round maxRounds = 100000;
};

struct DiscoveryResult {
  /// Neighbor ids the joiner learned, in discovery order.
  std::vector<NodeId> discovered;
  /// Total rounds until the handshake closed.
  Round rounds = 0;
  /// True when every live neighbor was discovered.
  bool complete = false;
  std::size_t transmissions = 0;
  std::size_t collisions = 0;
};

/// Runs the discovery handshake for `joiner` on graph `g` (the joiner
/// and its radio edges must already exist).
DiscoveryResult runNeighborDiscovery(const Graph& g, NodeId joiner,
                                     const DiscoveryConfig& config = {});

}  // namespace dsn
