// TDM slot-to-(round, channel) mapping.
//
// Single channel: slot s transmits at in-window offset s-1.
// k channels (paper §3.3 "Multi-Channels"): slots i+1..i+k share one round
// on k different channels, so slot s maps to round offset (s-1)/k and
// channel (s-1)%k, and a window of Δ slots shrinks to ceil(Δ/k) rounds.
#pragma once

#include "util/error.hpp"
#include "util/types.hpp"

namespace dsn {

struct TdmMap {
  TimeSlot maxSlot = 0;   ///< Δ (or δ): largest slot in the window
  Channel channels = 1;   ///< k

  TdmMap(TimeSlot max, Channel k) : maxSlot(max), channels(k) {
    DSN_REQUIRE(k >= 1, "TDM needs at least one channel");
  }

  /// Rounds one window occupies: ceil(maxSlot / k). A window of zero
  /// slots (empty level) still takes zero rounds.
  Round windowLength() const {
    return (static_cast<Round>(maxSlot) + channels - 1) / channels;
  }

  /// In-window round offset of a slot (0-based). Slot must be assigned.
  Round roundOffset(TimeSlot s) const {
    DSN_REQUIRE(s != kNoSlot, "unassigned slot has no TDM position");
    return static_cast<Round>((s - 1) / channels);
  }

  Channel channelOf(TimeSlot s) const {
    DSN_REQUIRE(s != kNoSlot, "unassigned slot has no TDM channel");
    return (s - 1) % channels;
  }
};

}  // namespace dsn
