// Structure-free probabilistic flooding — the "broadcast storm" baseline.
//
// The paper's introduction motivates structured broadcast against naive
// flooding ([16] Ni et al., "The broadcast storm problem"): every node
// that hears the message retransmits it once, after a random backoff
// within a contention window, with a gossip probability p. No clustering,
// no TDM, no collision avoidance — just the flat graph and luck.
//
// This baseline makes the paper's comparison concrete: at small windows
// the storm collides itself to death; at large windows it is slow; CFF
// gets both speed and determinism from the structure.
#pragma once

#include "broadcast/run_result.hpp"
#include "graph/graph.hpp"
#include "radio/protocol.hpp"
#include "util/rng.hpp"

namespace dsn {

struct FloodingConfig {
  /// Retransmission probability (1.0 = plain flooding).
  double gossipProbability = 1.0;
  /// Backoff window: a relay picks a uniform delay in [1, window].
  int contentionWindow = 8;
  /// RNG seed for the backoff draws.
  std::uint64_t seed = 0xF100D;
  /// Stop listening after this many rounds of silence once served.
  Round idleShutdown = 16;
};

/// Per-node state machine of the storm.
class FloodingNodeProtocol : public NodeProtocol,
                             public BroadcastEndpoint {
 public:
  FloodingNodeProtocol(NodeId self, bool isSource,
                       const FloodingConfig& cfg, std::uint64_t payload,
                       Round maxListenRounds);

  Action onRound(Round r) override;
  void onReceive(const Message& m, Round r, Channel channel) override;
  bool isDone() const override;
  Round nextWake(Round now) const override;

  bool hasPayload() const override { return hasPayload_; }
  Round payloadRound() const override { return payloadRound_; }

 private:
  NodeId self_;
  FloodingConfig cfg_;
  Rng rng_;
  bool hasPayload_;
  Round payloadRound_;
  Round relayRound_ = -1;  ///< scheduled retransmission (-1 = none)
  bool relayed_ = false;
  Round maxListenRounds_;
  std::uint64_t payload_;
};

/// Runs a probabilistic flood of `payload` from `source` over the flat
/// graph `g` (only nodes reachable from the source are intended).
BroadcastRun runFloodingBroadcast(const Graph& g, NodeId source,
                                  std::uint64_t payload,
                                  const FloodingConfig& config = {},
                                  const ProtocolOptions& options = {});

}  // namespace dsn
