#include "broadcast/convergecast.hpp"

#include <algorithm>
#include <memory>

#include "broadcast/runner_detail.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {

GatherNodeProtocol::GatherNodeProtocol(const GatherNodeConfig& cfg)
    : cfg_(cfg),
      tdm_(cfg.window == 0 ? 1 : cfg.window, cfg.channels),
      sum_(cfg.value),
      sent_(cfg.depth == 0 || cfg.upSlot == kNoSlot) {}

Round GatherNodeProtocol::childWindowStart() const {
  // The window of depth j runs at index (maxDepth - j); children are at
  // depth + 1.
  return static_cast<Round>(cfg_.maxDepth - (cfg_.depth + 1)) *
         tdm_.windowLength();
}

Round GatherNodeProtocol::childWindowEnd() const {
  return childWindowStart() + tdm_.windowLength();
}

Round GatherNodeProtocol::transmitRound() const {
  return static_cast<Round>(cfg_.maxDepth - cfg_.depth) *
             tdm_.windowLength() +
         tdm_.roundOffset(cfg_.upSlot);
}

Action GatherNodeProtocol::onRound(Round r) {
  if (!cfg_.children.empty() && r >= childWindowEnd())
    windowClosed_ = true;
  // Listen through the children's window until every child reported.
  if (!cfg_.children.empty() && childrenHeard_ < cfg_.children.size() &&
      r >= childWindowStart() && r < childWindowEnd()) {
    return Action::listen();
  }
  if (!sent_) {
    const Round tx = transmitRound();
    if (r == tx) {
      sent_ = true;
      Message m;
      m.kind = MsgKind::kData;
      m.sender = cfg_.self;
      m.target = cfg_.parent;
      m.slot = cfg_.upSlot;
      m.windowSize = cfg_.window;
      m.depth = cfg_.depth;
      m.payload = sum_;
      m.sequence = count_;
      return Action::transmit(m, tdm_.channelOf(cfg_.upSlot));
    }
    if (r > tx) sent_ = true;  // schedule slipped past (defensive)
  }
  return Action::sleep();
}

void GatherNodeProtocol::onReceive(const Message& m, Round, Channel) {
  if (m.kind != MsgKind::kData || m.target != cfg_.self) return;
  // Only tree children address us; count each at most once.
  const bool isChild =
      std::find(cfg_.children.begin(), cfg_.children.end(), m.sender) !=
      cfg_.children.end();
  if (!isChild) return;
  sum_ += m.payload;
  count_ += m.sequence;
  ++childrenHeard_;
}

bool GatherNodeProtocol::isDone() const {
  if (!sent_) return false;
  return cfg_.children.empty() ||
         childrenHeard_ == cfg_.children.size() || windowClosed_;
}

GatherResult runConvergecast(const ClusterNet& net,
                             const std::vector<std::uint64_t>& values,
                             const ProtocolOptions& options) {
  DSN_REQUIRE(net.netSize() > 0, "convergecast on an empty net");
  const Graph& g = net.graph();

  int maxDepth = 0;
  for (NodeId v : net.netNodes())
    maxDepth = std::max(maxDepth, static_cast<int>(net.depth(v)));

  const TimeSlot window = net.rootMaxUpSlot();
  const TdmMap tdm(window == 0 ? 1 : window, options.channels);
  const Round schedule =
      static_cast<Round>(maxDepth) * tdm.windowLength() +
      tdm.windowLength();

  SimConfig cfg;
  cfg.channelCount = options.channels;
  cfg.maxRounds = options.maxRounds > 0 ? options.maxRounds : schedule + 4;
  cfg.traceCapacity = options.traceCapacity;
  detail::applyScheduling(cfg, options);

  RadioSimulator sim(g, cfg);
  detail::applyFailures(sim, options);

  GatherNodeProtocol* rootProtocol = nullptr;
  std::size_t aliveNodes = 0;
  for (NodeId v : net.netNodes()) {
    // Skip stale (crashed, unrepaired) entries.
    if (!g.isAlive(v)) continue;
    ++aliveNodes;
    GatherNodeConfig nc;
    nc.self = v;
    nc.parent = v == net.root() ? kInvalidNode : net.parent(v);
    nc.depth = net.depth(v);
    nc.children = net.children(v);
    nc.upSlot = v == net.root() ? kNoSlot : net.upSlot(v);
    nc.window = window;
    nc.channels = options.channels;
    nc.maxDepth = maxDepth;
    nc.value = v < values.size() ? values[v] : 0;
    auto p = std::make_unique<GatherNodeProtocol>(nc);
    if (v == net.root()) rootProtocol = p.get();
    sim.setProtocol(v, std::move(p));
  }
  DSN_CHECK(rootProtocol != nullptr, "root protocol missing");

  GatherResult result;
  result.expected = aliveNodes;
  result.scheduleLength = schedule;
  result.sim = sim.run();
  result.aggregate = rootProtocol->partialSum();
  result.contributors = rootProtocol->contributors();
  result.maxAwakeRounds = sim.energy().maxAwakeRounds();
  result.meanAwakeRounds = sim.energy().meanAwakeRounds();
  result.transmissions = result.sim.totalTransmissions;
  result.collisions = result.sim.totalCollisions;
  if (sim.trace().enabled()) result.trace = sim.trace();
  return result;
}

}  // namespace dsn
