#include "broadcast/suppression.hpp"

#include <memory>

#include "broadcast/runner_detail.hpp"
#include "graph/algorithms.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

/// Shared listen-budget rule (matches the flooding baseline).
Round listenBudget(const Graph& g, int window, const ProtocolOptions& o) {
  if (o.maxRounds > 0) return o.maxRounds;
  return static_cast<Round>(g.liveCount()) * (window + 1) + 16;
}

}  // namespace

// ---------------------------------------------------------------------
// Counter-based suppression.

CounterNodeProtocol::CounterNodeProtocol(NodeId self, bool isSource,
                                         const CounterConfig& cfg,
                                         std::uint64_t payload,
                                         Round maxListenRounds)
    : self_(self),
      cfg_(cfg),
      rng_(cfg.seed ^ (static_cast<std::uint64_t>(self) * 0x9FB21C651E98DF25ull)),
      hasPayload_(isSource),
      payloadRound_(isSource ? 0 : -1),
      maxListenRounds_(maxListenRounds),
      payload_(payload) {
  DSN_REQUIRE(cfg.contentionWindow >= 1, "contention window must be >= 1");
  DSN_REQUIRE(cfg.counterThreshold >= 1, "counter threshold must be >= 1");
  if (isSource) relayRound_ = 0;  // the source transmits immediately
}

Action CounterNodeProtocol::onRound(Round r) {
  if (relayRound_ >= 0 && r == relayRound_ && !decided_) {
    decided_ = true;
    if (copies_ < cfg_.counterThreshold) {
      Message m;
      m.kind = MsgKind::kData;
      m.sender = self_;
      m.payload = payload_;
      return Action::transmit(m);
    }
    suppressed_ = true;
    return Action::sleep();
  }
  if (!hasPayload_)
    return r >= maxListenRounds_ ? Action::sleep() : Action::listen();
  if (!decided_) return Action::listen();  // counting window: overhear
  return Action::sleep();
}

void CounterNodeProtocol::onReceive(const Message& m, Round r, Channel) {
  if (m.kind != MsgKind::kData) return;
  if (!hasPayload_) {
    hasPayload_ = true;
    payloadRound_ = r;
    payload_ = m.payload;
    copies_ = 1;
    relayRound_ =
        r + 1 + static_cast<Round>(rng_.uniform(
                    static_cast<std::uint64_t>(cfg_.contentionWindow)));
    return;
  }
  if (!decided_) ++copies_;  // duplicate heard during the backoff
}

bool CounterNodeProtocol::isDone() const {
  return hasPayload_ && decided_;
}

Round CounterNodeProtocol::nextWake(Round now) const {
  if (hasPayload_ && !decided_) return now + 1;  // counting every round
  if (!hasPayload_)
    return now + 1 < maxListenRounds_ ? now + 1 : kNoWake;
  return kNoWake;
}

BroadcastRun runCounterBroadcast(const Graph& g, NodeId source,
                                 std::uint64_t payload,
                                 const CounterConfig& config,
                                 const ProtocolOptions& options) {
  DSN_REQUIRE(g.isAlive(source), "counter-broadcast source must be live");

  const auto intended = reachableFrom(g, source);
  const Round maxListen = listenBudget(g, config.contentionWindow, options);

  SimConfig cfg;
  cfg.channelCount = 1;
  cfg.maxRounds = maxListen + 4;
  cfg.traceCapacity = options.traceCapacity;
  detail::applyScheduling(cfg, options);

  RadioSimulator sim(g, cfg);
  detail::applyFailures(sim, options);

  std::vector<BroadcastEndpoint*> endpoints(g.size(), nullptr);
  for (NodeId v : intended) {
    auto proto = std::make_unique<CounterNodeProtocol>(
        v, v == source, config, payload, maxListen);
    endpoints[v] = proto.get();
    sim.setProtocol(v, std::move(proto));
  }

  BroadcastRun run;
  run.scheduleLength = maxListen;
  run.sim = sim.run();
  detail::collectDeliveryStats(sim, intended, endpoints, run);
  return run;
}

// ---------------------------------------------------------------------
// Distance-based suppression.

DistanceNodeProtocol::DistanceNodeProtocol(
    NodeId self, bool isSource, const DistanceConfig& cfg,
    std::uint64_t payload, Round maxListenRounds,
    const std::vector<Point2D>* positions)
    : self_(self),
      cfg_(cfg),
      rng_(cfg.seed ^ (static_cast<std::uint64_t>(self) * 0xE703C6EF372109E5ull)),
      hasPayload_(isSource),
      payloadRound_(isSource ? 0 : -1),
      maxListenRounds_(maxListenRounds),
      payload_(payload),
      positions_(positions) {
  DSN_REQUIRE(cfg.contentionWindow >= 1, "contention window must be >= 1");
  DSN_REQUIRE(cfg.suppressRadius >= 0.0, "suppress radius must be >= 0");
  DSN_REQUIRE(positions != nullptr, "distance protocol needs positions");
  if (isSource) relayRound_ = 0;
}

Action DistanceNodeProtocol::onRound(Round r) {
  if (relayRound_ >= 0 && r == relayRound_ && !decided_) {
    decided_ = true;
    if (!suppressed_) {
      Message m;
      m.kind = MsgKind::kData;
      m.sender = self_;
      m.payload = payload_;
      return Action::transmit(m);
    }
    return Action::sleep();
  }
  if (!hasPayload_)
    return r >= maxListenRounds_ ? Action::sleep() : Action::listen();
  if (!decided_) return Action::listen();  // overhear for closer copies
  return Action::sleep();
}

void DistanceNodeProtocol::onReceive(const Message& m, Round r, Channel) {
  if (m.kind != MsgKind::kData) return;
  const double d =
      distance((*positions_)[self_], (*positions_)[m.sender]);
  if (!hasPayload_) {
    hasPayload_ = true;
    payloadRound_ = r;
    payload_ = m.payload;
    if (d <= cfg_.suppressRadius) {
      decided_ = true;  // already covered from close by: never relay
      suppressed_ = true;
      return;
    }
    relayRound_ =
        r + 1 + static_cast<Round>(rng_.uniform(
                    static_cast<std::uint64_t>(cfg_.contentionWindow)));
    return;
  }
  if (!decided_ && d <= cfg_.suppressRadius) suppressed_ = true;
}

bool DistanceNodeProtocol::isDone() const {
  return hasPayload_ && decided_;
}

Round DistanceNodeProtocol::nextWake(Round now) const {
  if (hasPayload_ && !decided_) return now + 1;  // overhearing window
  if (!hasPayload_)
    return now + 1 < maxListenRounds_ ? now + 1 : kNoWake;
  return kNoWake;
}

BroadcastRun runDistanceBroadcast(const Graph& g, NodeId source,
                                  std::uint64_t payload,
                                  const DistanceConfig& config,
                                  const ProtocolOptions& options) {
  DSN_REQUIRE(g.isAlive(source), "distance-broadcast source must be live");
  DSN_REQUIRE(options.nodePositions.size() >= g.size(),
              "distance-based suppression needs a position for every node "
              "(SensorNetwork::broadcast fills ProtocolOptions::"
              "nodePositions; direct graph callers must set it)");

  const auto intended = reachableFrom(g, source);
  const Round maxListen = listenBudget(g, config.contentionWindow, options);

  SimConfig cfg;
  cfg.channelCount = 1;
  cfg.maxRounds = maxListen + 4;
  cfg.traceCapacity = options.traceCapacity;
  detail::applyScheduling(cfg, options);

  RadioSimulator sim(g, cfg);
  detail::applyFailures(sim, options);

  std::vector<BroadcastEndpoint*> endpoints(g.size(), nullptr);
  for (NodeId v : intended) {
    auto proto = std::make_unique<DistanceNodeProtocol>(
        v, v == source, config, payload, maxListen,
        &options.nodePositions);
    endpoints[v] = proto.get();
    sim.setProtocol(v, std::move(proto));
  }

  BroadcastRun run;
  run.scheduleLength = maxListen;
  run.sim = sim.run();
  detail::collectDeliveryStats(sim, intended, endpoints, run);
  return run;
}

}  // namespace dsn
