// Options and result records shared by every broadcast/multicast run.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "radio/simulator.hpp"
#include "util/geometry.hpp"
#include "util/types.hpp"

namespace dsn {

/// Tuning knobs of the competitor ("arena") schemes — the flat-graph
/// rivals raced against CFF/iCFF/DFO (DESIGN.md §16). Grouped so the
/// scenario/fuzz/CLI layers can thread one seed-stream value through
/// every rival without enumerating per-scheme fields.
struct ArenaTuning {
  /// Fixed-p gossip relay probability.
  double gossipProbability = 0.65;
  /// Density-adaptive gossip: relay with min(1, fanout / degree).
  double adaptiveFanout = 3.5;
  /// Counter-based suppression threshold (copies heard => suppress).
  int counterThreshold = 3;
  /// Distance-based suppression radius (heard closer => suppress).
  double suppressRadius = 25.0;
  /// Contention backoff window shared by all rivals.
  int contentionWindow = 8;
  /// RLNC budgets: coded packets from the source / recoded per relay.
  int rlncSourceBudget = 12;
  int rlncRelayBudget = 6;
  /// Seed of every rival's per-node RNGs (relay coins, backoffs, RLNC
  /// coefficient draws). Runs are pure functions of it.
  std::uint64_t seed = 0xA12E5Aull;
};

/// Knobs of one protocol run (failure injection + radio configuration).
struct ProtocolOptions {
  /// Radio channels k (Theorem 1(3)).
  Channel channels = 1;
  /// 0 = derive a safe bound from the protocol's own schedule.
  Round maxRounds = 0;
  /// Transient relay-failure probability (each transmission silently
  /// dropped with this probability).
  double dropProbability = 0.0;
  /// Scheduled node deaths (node, firstDeadRound).
  std::vector<std::pair<NodeId, Round>> deaths;
  /// Gilbert–Elliott bursty loss; ignored unless burst.active().
  BurstLossParams burst;
  /// Spatial jamming zones. Require nodePositions to take effect.
  std::vector<JamZone> jamZones;
  /// Node positions (indexed by node id) for spatial jamming.
  /// SensorNetwork fills this automatically when jamZones is non-empty.
  std::vector<Point2D> nodePositions;
  /// Seed of the failure model's RNG (drop coin flips).
  std::uint64_t failureSeed = 0xFA11FA11ull;
  /// Event-trace capacity (0 = off).
  std::size_t traceCapacity = 0;
  /// Simulator scheduling strategy. All modes produce bit-identical
  /// runs; the full scan exists as a differential oracle and as the
  /// perf-bench reference (see DESIGN.md §12), kSharded spreads each
  /// round over a thread pool (DESIGN.md §14).
  SimScheduling scheduling = SimScheduling::kActiveSet;
  /// Worker threads. 0 leaves `scheduling` as given; >0 forces
  /// SimScheduling::kSharded with that many threads (1 = the sharded
  /// engine inline on the calling thread — useful for determinism
  /// tests and as the scale baseline).
  int threads = 0;
  /// kSharded tile-partition knobs (result-neutral; see SimConfig).
  /// tileMinEdge defaults to the radio range via
  /// SensorNetwork::withPositions; 0 with no positions falls back to
  /// id-block tiles.
  double tileMinEdge = 0.0;
  std::uint32_t tileTarget = 0;
  std::size_t shardSerialThreshold = 256;
  /// External resolve-scratch lease (borrowed, must outlive the run;
  /// see SimConfig::resolveScratch). The serve engine points every job
  /// at its worker's pooled scratch so repeated runs stop reallocating
  /// the O(V·k) resolve tables. Null = the engine's own scratch.
  ResolveScratch* resolveScratch = nullptr;
  /// Competitor-scheme knobs (ignored by the paper's cluster schemes).
  ArenaTuning arena;
};

/// Measured outcome of one run.
struct BroadcastRun {
  SimResult sim;
  /// Nodes that were supposed to end up with the payload.
  std::size_t intended = 0;
  /// Nodes that actually did (the source counts when it is intended).
  std::size_t delivered = 0;
  /// Round of the last first-delivery (-1 when nothing was delivered);
  /// the "time needed for the broadcast" of Fig. 8 is lastDelivery + 1.
  Round lastDeliveryRound = -1;
  /// The protocol's nominal schedule span in rounds.
  Round scheduleLength = 0;
  /// Fig. 9 metric: most rounds any single node spent awake.
  std::size_t maxAwakeRounds = 0;
  double meanAwakeRounds = 0.0;
  std::size_t transmissions = 0;
  std::size_t collisions = 0;
  /// RLNC only: full-rank decodes that failed the generation consistency
  /// check or recovered the wrong payload. Always 0 unless the field or
  /// elimination code is broken (decode-completeness oracle).
  std::size_t decodeFailures = 0;
  /// Per-node first-delivery round, indexed by node id (-1 = never got
  /// the payload or had no endpoint). The source reports round 0.
  std::vector<Round> deliveryRound;
  /// Per-node radio usage, indexed by node id (energy accounting for
  /// battery models; zero for nodes without a protocol).
  std::vector<std::uint32_t> listenRounds;
  std::vector<std::uint32_t> transmitRounds;
  /// Copy of the simulator's bounded event trace. Empty (disabled)
  /// unless ProtocolOptions::traceCapacity was set; lets callers export
  /// per-round event streams (JSONL) after the simulator is gone.
  Trace trace;

  bool allDelivered() const { return delivered == intended; }
  double coverage() const {
    return intended == 0
               ? 1.0
               : static_cast<double>(delivered) /
                     static_cast<double>(intended);
  }
  Round completionRounds() const { return lastDeliveryRound + 1; }
};

/// Interface runner uses to ask a protocol whether its node got the
/// payload (and when).
class BroadcastEndpoint {
 public:
  virtual ~BroadcastEndpoint() = default;
  virtual bool hasPayload() const = 0;
  virtual Round payloadRound() const = 0;
};

}  // namespace dsn
