// Optional per-round event trace.
//
// Tests assert on traces ("no collision ever happened", "node X slept
// after round Y"); examples print them to show protocol behaviour. The
// trace is off by default and bounded so benches are unaffected.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "radio/message.hpp"
#include "util/types.hpp"

namespace dsn {

enum class TraceEventType : std::uint8_t {
  kTransmit,
  kReceive,
  kCollision,
  kNodeDeath,
  kDroppedTransmit,
  kJammedTransmit,
};

struct TraceEvent {
  TraceEventType type{};
  Round round = 0;
  NodeId node = kInvalidNode;  ///< acting node (receiver for kReceive)
  NodeId peer = kInvalidNode;  ///< transmitter for kReceive, else unused
  Channel channel = 0;
  MsgKind msgKind = MsgKind::kData;
};

/// Bounded event recorder.
class Trace {
 public:
  /// `capacity` caps stored events; further events are counted but not
  /// stored. 0 disables recording entirely.
  explicit Trace(std::size_t capacity = 0) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }

  void record(const TraceEvent& e);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t droppedEvents() const { return dropped_; }

  std::size_t countOf(TraceEventType t) const;

  /// Human-readable one-line rendering of an event.
  static std::string describe(const TraceEvent& e);

  /// Writes every stored event as JSON-lines (one object per line; see
  /// traceEventJson for the schema). Dropped events are not replayable,
  /// so callers should also persist droppedEvents() when it matters.
  void writeJsonl(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
};

/// One event as a single-line JSON object (no trailing newline):
///   {"type":"transmit","round":3,"node":7,"peer":null,
///    "channel":0,"kind":"data"}
/// `peer` is null except for receive events.
std::string traceEventJson(const TraceEvent& e);

/// JSONL dump of an externally collected event stream (scenario runs
/// aggregate events across many simulator instances).
void writeTraceJsonl(std::ostream& os, const std::vector<TraceEvent>& events);

}  // namespace dsn
