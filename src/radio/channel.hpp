// Collision-resolution core of the radio model.
//
// Paper Section 3.1(4): nodes have no collision detection; a receiver
// gets a message in a round iff exactly one of its neighbors transmits in
// that round (per channel when k channels exist). This function is the
// single place that rule lives; the whole simulator and all protocol
// claims rest on it, so it is kept pure and exhaustively unit-tested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "radio/action.hpp"

namespace dsn {

/// One successful reception.
struct Delivery {
  NodeId receiver = kInvalidNode;
  NodeId transmitter = kInvalidNode;
  Channel channel = 0;
};

/// A (listener, channel) pair where >= 2 neighbors transmitted — the
/// listener hears noise and (no collision detection) cannot tell.
struct CollisionSite {
  NodeId listener = kInvalidNode;
  Channel channel = 0;
};

/// Outcome of resolving one round.
struct ChannelOutcome {
  std::vector<Delivery> deliveries;
  std::vector<CollisionSite> collisionSites;
  /// Number of transmissions that actually went on air this round.
  std::size_t transmissions = 0;

  std::size_t collisions() const { return collisionSites.size(); }
};

/// Resolves one synchronous round.
///
/// `actions[v]` is node v's action (index = node id; dead/absent nodes
/// must be kSleep). `channelCount` is k >= 1; a transmit action's channel
/// must be < k. Listeners tuned to kAllChannels are wide-band: they
/// resolve each channel independently and may receive up to k frames in
/// one round. A transmitting node never receives in the same round.
ChannelOutcome resolveRound(const Graph& g,
                            const std::vector<Action>& actions,
                            Channel channelCount);

class ResolveScratch;

/// Transmitter-driven variant of resolveRound for the active-set
/// simulator: instead of scanning every listener's neighborhood, it walks
/// the neighborhoods of the actual transmitters (`transmitters` must list
/// exactly the nodes whose action is kTransmit, ascending) and tallies
/// per-(listener, channel) counts in `scratch`. Output is bit-identical
/// to resolveRound — deliveries and collision sites in listener-ascending
/// then channel-ascending order — but the cost is O(sum of transmitter
/// degrees), not O(V + E), and the returned outcome lives in `scratch`,
/// so the steady state performs zero heap allocations per round.
const ChannelOutcome& resolveRoundActive(
    const CsrView& csr,
    const std::vector<Action>& actions,
    const std::vector<NodeId>& transmitters,
    Channel channelCount,
    ResolveScratch& scratch);

/// Reusable per-run buffers for resolveRoundActive. prepare() once per
/// (topology, channel-count) pair; every table is restored to its pristine
/// state at the end of each resolve, so rounds never re-zero O(V·k) data.
///
/// The tables grow on demand: a resolve over a snapshot with more node
/// ids than the last prepare() (e.g. a node-move-in mid-campaign when the
/// scratch is reused across runs) re-sizes instead of indexing out of
/// bounds. Growth is an allocation, so steady-state rounds stay
/// allocation-free only while the topology does not outgrow the tables —
/// which is exactly the steady state.
class ResolveScratch {
 public:
  /// Sizes the tables for `nodeCount` node ids and `channelCount`
  /// channels. Allocates here so resolve calls never do. Idempotent and
  /// never shrinks: preparing for fewer nodes keeps the larger tables.
  void prepare(std::size_t nodeCount, Channel channelCount);

  /// The outcome buffer of the most recent resolveRoundActive call.
  const ChannelOutcome& outcome() const { return outcome_; }

 private:
  friend const ChannelOutcome& resolveRoundActive(
      const CsrView&, const std::vector<Action>&,
      const std::vector<NodeId>&, Channel, ResolveScratch&);

  /// Transmitting-neighbor count per (listener * channelCount + channel).
  std::vector<std::uint32_t> count_;
  /// The transmitter that set count_ to 1 (valid while count_ == 1).
  std::vector<NodeId> unique_;
  /// Listeners adjacent to at least one transmitter this round.
  std::vector<NodeId> touched_;
  std::vector<std::uint8_t> touchedFlag_;
  ChannelOutcome outcome_;
  std::size_t nodeCount_ = 0;
  Channel channelCount_ = 0;
};

}  // namespace dsn
