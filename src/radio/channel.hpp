// Collision-resolution core of the radio model.
//
// Paper Section 3.1(4): nodes have no collision detection; a receiver
// gets a message in a round iff exactly one of its neighbors transmits in
// that round (per channel when k channels exist). This function is the
// single place that rule lives; the whole simulator and all protocol
// claims rest on it, so it is kept pure and exhaustively unit-tested.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "radio/action.hpp"

namespace dsn {

/// One successful reception.
struct Delivery {
  NodeId receiver = kInvalidNode;
  NodeId transmitter = kInvalidNode;
  Channel channel = 0;
};

/// A (listener, channel) pair where >= 2 neighbors transmitted — the
/// listener hears noise and (no collision detection) cannot tell.
struct CollisionSite {
  NodeId listener = kInvalidNode;
  Channel channel = 0;
};

/// Outcome of resolving one round.
struct ChannelOutcome {
  std::vector<Delivery> deliveries;
  std::vector<CollisionSite> collisionSites;
  /// Number of transmissions that actually went on air this round.
  std::size_t transmissions = 0;

  std::size_t collisions() const { return collisionSites.size(); }
};

/// Resolves one synchronous round.
///
/// `actions[v]` is node v's action (index = node id; dead/absent nodes
/// must be kSleep). `channelCount` is k >= 1; a transmit action's channel
/// must be < k. Listeners tuned to kAllChannels are wide-band: they
/// resolve each channel independently and may receive up to k frames in
/// one round. A transmitting node never receives in the same round.
ChannelOutcome resolveRound(const Graph& g,
                            const std::vector<Action>& actions,
                            Channel channelCount);

}  // namespace dsn
