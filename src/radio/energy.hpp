// Per-node energy/awake accounting.
//
// The paper's energy claims are phrased as "rounds a node needs to be
// awake" (Fig. 9, Theorem 1(2)). The meter counts, per node: rounds spent
// listening, rounds spent transmitting, frames received, and derives the
// awake-round total. A simple linear energy model (configurable per-round
// costs) converts the counts to abstract energy units for the examples.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace dsn {

/// Per-round energy cost model (abstract units; defaults follow the usual
/// WSN rule of thumb that transmitting costs somewhat more than listening
/// and sleeping is ~free).
struct EnergyModel {
  double transmitCost = 1.5;
  double listenCost = 1.0;
  double sleepCost = 0.0;
};

/// Counters for one node.
struct NodeEnergy {
  std::size_t listenRounds = 0;
  std::size_t transmitRounds = 0;
  std::size_t framesReceived = 0;

  std::size_t awakeRounds() const { return listenRounds + transmitRounds; }
  double energy(const EnergyModel& m, Round totalRounds) const {
    const double sleepRounds =
        static_cast<double>(totalRounds) - static_cast<double>(awakeRounds());
    return m.transmitCost * static_cast<double>(transmitRounds) +
           m.listenCost * static_cast<double>(listenRounds) +
           m.sleepCost * (sleepRounds > 0 ? sleepRounds : 0.0);
  }
};

/// Whole-network meter, indexed by node id.
class EnergyMeter {
 public:
  explicit EnergyMeter(std::size_t nodeCount) : nodes_(nodeCount) {}

  void recordListen(NodeId v) { ++nodes_.at(v).listenRounds; }
  void recordTransmit(NodeId v) { ++nodes_.at(v).transmitRounds; }
  void recordReceive(NodeId v) { ++nodes_.at(v).framesReceived; }

  const NodeEnergy& node(NodeId v) const { return nodes_.at(v); }
  std::size_t nodeCount() const { return nodes_.size(); }

  /// Extends the meter to cover `nodeCount` ids (new counters start at
  /// zero). Used when nodes join mid-run; never shrinks.
  void growTo(std::size_t nodeCount) {
    if (nodeCount > nodes_.size()) nodes_.resize(nodeCount);
  }

  /// Largest awake-round count over all nodes (the paper's Fig. 9 metric).
  std::size_t maxAwakeRounds() const;
  double meanAwakeRounds() const;
  std::size_t totalTransmissions() const;
  /// Sum of per-node energy under `model` for a run of `totalRounds`.
  double totalEnergy(const EnergyModel& model, Round totalRounds) const;

 private:
  std::vector<NodeEnergy> nodes_;
};

}  // namespace dsn
