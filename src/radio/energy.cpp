#include "radio/energy.hpp"

#include <algorithm>

namespace dsn {

std::size_t EnergyMeter::maxAwakeRounds() const {
  std::size_t best = 0;
  for (const auto& n : nodes_) best = std::max(best, n.awakeRounds());
  return best;
}

double EnergyMeter::meanAwakeRounds() const {
  if (nodes_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& n : nodes_) sum += static_cast<double>(n.awakeRounds());
  return sum / static_cast<double>(nodes_.size());
}

std::size_t EnergyMeter::totalTransmissions() const {
  std::size_t sum = 0;
  for (const auto& n : nodes_) sum += n.transmitRounds;
  return sum;
}

double EnergyMeter::totalEnergy(const EnergyModel& model,
                                Round totalRounds) const {
  double sum = 0.0;
  for (const auto& n : nodes_) sum += n.energy(model, totalRounds);
  return sum;
}

}  // namespace dsn
