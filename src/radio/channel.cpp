#include "radio/channel.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsn {

ChannelOutcome resolveRound(const Graph& g,
                            const std::vector<Action>& actions,
                            Channel channelCount) {
  DSN_REQUIRE(channelCount >= 1, "at least one radio channel required");
  DSN_REQUIRE(actions.size() == g.size(),
              "one action required per node id");

  ChannelOutcome out;
  for (NodeId v = 0; v < actions.size(); ++v) {
    if (actions[v].type == Action::Type::kTransmit) {
      DSN_REQUIRE(g.isAlive(v), "dead node cannot transmit");
      DSN_REQUIRE(actions[v].channel < channelCount,
                  "transmit channel out of range");
      ++out.transmissions;
    }
  }

  for (NodeId v = 0; v < actions.size(); ++v) {
    const Action& act = actions[v];
    if (act.type != Action::Type::kListen) continue;
    DSN_REQUIRE(g.isAlive(v), "dead node cannot listen");

    const Channel lo = act.channel == kAllChannels ? 0 : act.channel;
    const Channel hi =
        act.channel == kAllChannels ? channelCount : act.channel + 1;
    DSN_REQUIRE(act.channel == kAllChannels || act.channel < channelCount,
                "listen channel out of range");

    for (Channel c = lo; c < hi; ++c) {
      NodeId uniqueTransmitter = kInvalidNode;
      std::size_t transmitterCount = 0;
      for (NodeId u : g.neighbors(v)) {
        const Action& other = actions[u];
        if (other.type == Action::Type::kTransmit && other.channel == c) {
          ++transmitterCount;
          uniqueTransmitter = u;
          if (transmitterCount > 1) break;
        }
      }
      if (transmitterCount == 1) {
        out.deliveries.push_back(Delivery{v, uniqueTransmitter, c});
      } else if (transmitterCount > 1) {
        out.collisionSites.push_back(CollisionSite{v, c});
      }
    }
  }
  return out;
}

void ResolveScratch::prepare(std::size_t nodeCount, Channel channelCount) {
  DSN_REQUIRE(channelCount >= 1, "at least one radio channel required");
  if (nodeCount <= nodeCount_ && channelCount == channelCount_) return;
  // Grow-only: a shrinking snapshot keeps the larger (already zeroed)
  // tables, so ids below the old bound stay addressable.
  nodeCount_ = std::max(nodeCount_, nodeCount);
  channelCount_ = channelCount;
  count_.assign(nodeCount_ * channelCount, 0);
  unique_.resize(nodeCount_ * channelCount);
  touchedFlag_.assign(nodeCount_, 0);
  touched_.clear();
  touched_.reserve(nodeCount_);
}

const ChannelOutcome& resolveRoundActive(
    const CsrView& csr,
    const std::vector<Action>& actions,
    const std::vector<NodeId>& transmitters,
    Channel channelCount,
    ResolveScratch& s) {
  // Grow-on-demand: a node-move-in past the prepared bound (scratch
  // reused across runs of a growing campaign) must widen the tables, not
  // index out of bounds. No-op — and allocation-free — when the snapshot
  // fits.
  s.prepare(csr.nodeCount(), channelCount);
  const Channel k = channelCount;
  ChannelOutcome& out = s.outcome_;
  out.deliveries.clear();
  out.collisionSites.clear();
  out.transmissions = transmitters.size();

  // Tally transmitting neighbors per (listener, channel). Only cells
  // adjacent to a transmitter are written, so nothing needs re-zeroing
  // beyond the cleanup pass below.
  for (const NodeId u : transmitters) {
    const Action& a = actions[u];
    DSN_REQUIRE(a.type == Action::Type::kTransmit,
                "transmitter list entry is not transmitting");
    DSN_REQUIRE(a.channel < k, "transmit channel out of range");
    for (const NodeId v : csr.neighbors(u)) {
      const std::size_t idx = static_cast<std::size_t>(v) * k + a.channel;
      if (s.count_[idx]++ == 0) s.unique_[idx] = u;
      if (!s.touchedFlag_[v]) {
        s.touchedFlag_[v] = 1;
        s.touched_.push_back(v);
      }
    }
  }

  // Emit in the same listener-ascending / channel-ascending order as the
  // full scan. Listeners nobody transmitted near hear silence either way.
  std::sort(s.touched_.begin(), s.touched_.end());
  for (const NodeId v : s.touched_) {
    const Action& act = actions[v];
    if (act.type == Action::Type::kListen) {
      DSN_REQUIRE(act.channel == kAllChannels || act.channel < k,
                  "listen channel out of range");
      const Channel lo = act.channel == kAllChannels ? 0 : act.channel;
      const Channel hi = act.channel == kAllChannels ? k : act.channel + 1;
      for (Channel c = lo; c < hi; ++c) {
        const std::size_t idx = static_cast<std::size_t>(v) * k + c;
        const std::uint32_t n = s.count_[idx];
        if (n == 1) {
          out.deliveries.push_back(Delivery{v, s.unique_[idx], c});
        } else if (n > 1) {
          out.collisionSites.push_back(CollisionSite{v, c});
        }
      }
    }
    s.touchedFlag_[v] = 0;
  }
  s.touched_.clear();

  // Restore the count table to all-zero for the next round.
  for (const NodeId u : transmitters) {
    const Channel c = actions[u].channel;
    for (const NodeId v : csr.neighbors(u)) {
      s.count_[static_cast<std::size_t>(v) * k + c] = 0;
    }
  }
  return out;
}

}  // namespace dsn
