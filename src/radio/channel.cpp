#include "radio/channel.hpp"

#include "util/error.hpp"

namespace dsn {

ChannelOutcome resolveRound(const Graph& g,
                            const std::vector<Action>& actions,
                            Channel channelCount) {
  DSN_REQUIRE(channelCount >= 1, "at least one radio channel required");
  DSN_REQUIRE(actions.size() == g.size(),
              "one action required per node id");

  ChannelOutcome out;
  for (NodeId v = 0; v < actions.size(); ++v) {
    if (actions[v].type == Action::Type::kTransmit) {
      DSN_REQUIRE(g.isAlive(v), "dead node cannot transmit");
      DSN_REQUIRE(actions[v].channel < channelCount,
                  "transmit channel out of range");
      ++out.transmissions;
    }
  }

  for (NodeId v = 0; v < actions.size(); ++v) {
    const Action& act = actions[v];
    if (act.type != Action::Type::kListen) continue;
    DSN_REQUIRE(g.isAlive(v), "dead node cannot listen");

    const Channel lo = act.channel == kAllChannels ? 0 : act.channel;
    const Channel hi =
        act.channel == kAllChannels ? channelCount : act.channel + 1;
    DSN_REQUIRE(act.channel == kAllChannels || act.channel < channelCount,
                "listen channel out of range");

    for (Channel c = lo; c < hi; ++c) {
      NodeId uniqueTransmitter = kInvalidNode;
      std::size_t transmitterCount = 0;
      for (NodeId u : g.neighbors(v)) {
        const Action& other = actions[u];
        if (other.type == Action::Type::kTransmit && other.channel == c) {
          ++transmitterCount;
          uniqueTransmitter = u;
          if (transmitterCount > 1) break;
        }
      }
      if (transmitterCount == 1) {
        out.deliveries.push_back(Delivery{v, uniqueTransmitter, c});
      } else if (transmitterCount > 1) {
        out.collisionSites.push_back(CollisionSite{v, c});
      }
    }
  }
  return out;
}

}  // namespace dsn
