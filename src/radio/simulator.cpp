#include "radio/simulator.hpp"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

/// Folds one finished run into the global registry. Aggregates are
/// flushed once per run (not per round) so telemetry stays cheap even
/// when enabled; when disabled this is a single relaxed atomic load.
void flushRunMetrics(const SimResult& r) {
  if (!obs::enabled()) return;
  auto& m = obs::globalMetrics();
  m.counter("sim.runs").increment();
  m.counter("sim.transmissions").increment(r.totalTransmissions);
  m.counter("sim.deliveries").increment(r.totalDeliveries);
  m.counter("sim.collisions").increment(r.totalCollisions);
  m.counter("sim.dropped_transmissions").increment(r.droppedTransmissions);
  m.counter("sim.jammed_losses").increment(r.jammedLosses);
  m.counter("sim.rounds").increment(static_cast<std::uint64_t>(r.rounds));
  m.histogram("sim.rounds_executed",
              obs::Histogram::exponentialBounds(20))
      .observe(static_cast<double>(r.rounds));
  if (!r.completed) m.counter("sim.budget_exhausted").increment();
}

}  // namespace

RadioSimulator::RadioSimulator(const Graph& graph, SimConfig config)
    : graph_(graph),
      config_(config),
      protocols_(graph.size()),
      energy_(graph.size()),
      trace_(config.traceCapacity) {
  DSN_REQUIRE(config_.channelCount >= 1, "need at least one channel");
  DSN_REQUIRE(config_.maxRounds > 0, "maxRounds must be positive");
}

void RadioSimulator::setProtocol(NodeId v,
                                 std::unique_ptr<NodeProtocol> protocol) {
  DSN_REQUIRE(graph_.isAlive(v), "protocol target node must be live");
  DSN_REQUIRE(!ran_, "cannot install protocols after run()");
  protocols_[v] = std::move(protocol);
}

NodeProtocol* RadioSimulator::protocol(NodeId v) {
  DSN_REQUIRE(v < protocols_.size(), "protocol: node id out of range");
  return protocols_[v].get();
}

const NodeProtocol* RadioSimulator::protocol(NodeId v) const {
  DSN_REQUIRE(v < protocols_.size(), "protocol: node id out of range");
  return protocols_[v].get();
}

bool RadioSimulator::allDone(Round r) const {
  for (NodeId v = 0; v < protocols_.size(); ++v) {
    if (!protocols_[v]) continue;
    if (!graph_.isAlive(v) || failures_.isDead(v, r)) continue;
    if (!protocols_[v]->isDone()) return false;
  }
  return true;
}

SimResult RadioSimulator::run() {
  DSN_REQUIRE(!ran_, "run() may be called only once");
  ran_ = true;
  DSN_TIMED_PHASE("sim.run");
  return config_.scheduling == SimScheduling::kFullScan ? runFullScan()
                                                        : runActiveSet();
}

SimResult RadioSimulator::runFullScan() {
  SimResult result;
  std::vector<Action> actions(graph_.size());

  for (Round r = 0; r < config_.maxRounds; ++r) {
    if (allDone(r)) {
      result.completed = true;
      result.rounds = r;
      flushRunMetrics(result);
      return result;
    }

    // Phase 1: collect actions from live, non-failed protocol nodes.
    for (NodeId v = 0; v < protocols_.size(); ++v) {
      actions[v] = Action::sleep();
      if (!protocols_[v] || !graph_.isAlive(v)) continue;
      if (failures_.isDead(v, r)) continue;
      actions[v] = protocols_[v]->onRound(r);

      if (actions[v].type == Action::Type::kTransmit) {
        energy_.recordTransmit(v);
        if (failures_.isJammed(v, r)) {
          // Energy spent, frame smothered by the jammer.
          ++result.jammedLosses;
          trace_.record(TraceEvent{TraceEventType::kJammedTransmit, r, v,
                                   kInvalidNode, actions[v].channel,
                                   actions[v].message.kind});
          actions[v] = Action::sleep();
          continue;
        }
        if (failures_.hasTransientLoss() && failures_.dropsTransmission()) {
          // Energy spent, nothing on air.
          ++result.droppedTransmissions;
          trace_.record(TraceEvent{TraceEventType::kDroppedTransmit, r, v,
                                   kInvalidNode, actions[v].channel,
                                   actions[v].message.kind});
          actions[v] = Action::sleep();
          continue;
        }
        trace_.record(TraceEvent{TraceEventType::kTransmit, r, v,
                                 kInvalidNode, actions[v].channel,
                                 actions[v].message.kind});
      } else if (actions[v].type == Action::Type::kListen) {
        energy_.recordListen(v);
      }
    }

    // Phase 2: resolve the channel.
    const ChannelOutcome outcome =
        resolveRound(graph_, actions, config_.channelCount);
    result.totalTransmissions += outcome.transmissions;
    result.totalDeliveries += outcome.deliveries.size();
    result.totalCollisions += outcome.collisions();

    for (const auto& site : outcome.collisionSites) {
      trace_.record(TraceEvent{TraceEventType::kCollision, r, site.listener,
                               kInvalidNode, site.channel, MsgKind::kData});
    }

    // Phase 3: deliver.
    for (const auto& d : outcome.deliveries) {
      if (failures_.isDead(d.receiver, r)) continue;
      if (failures_.isJammed(d.receiver, r)) {
        // The jammer drowns out reception too.
        ++result.jammedLosses;
        continue;
      }
      energy_.recordReceive(d.receiver);
      const Message& m = actions[d.transmitter].message;
      trace_.record(TraceEvent{TraceEventType::kReceive, r, d.receiver,
                               d.transmitter, d.channel, m.kind});
      protocols_[d.receiver]->onReceive(m, r, d.channel);
    }

    result.rounds = r + 1;
  }

  result.completed = allDone(config_.maxRounds);
  flushRunMetrics(result);
  return result;
}

SimResult RadioSimulator::runActiveSet() {
  SimResult result;
  const CsrView& csr = graph_.csrView();
  const std::size_t n = graph_.size();

  std::vector<Action> actions(n);

  // pending = live protocol nodes that still block completion; a node is
  // `resolved` once it reports done or its scheduled death round passes
  // (allDone ignores dead nodes). isDone is monotone by contract, so a
  // node is counted out at most once.
  std::vector<std::uint8_t> resolved(n, 0);
  std::size_t pending = 0;

  // Min-heap of (wake round, node). std::greater pops ascending (round,
  // node), which preserves the full scan's node-id iteration order within
  // a round. Each node holds at most one entry (re-queued only after its
  // entry is processed).
  using WakeEntry = std::pair<Round, NodeId>;
  std::vector<WakeEntry> heapStore;
  heapStore.reserve(n + 1);
  std::priority_queue<WakeEntry, std::vector<WakeEntry>,
                      std::greater<WakeEntry>>
      wake(std::greater<WakeEntry>{}, std::move(heapStore));

  for (NodeId v = 0; v < protocols_.size(); ++v) {
    if (!protocols_[v] || !graph_.isAlive(v)) {
      resolved[v] = 1;
      continue;
    }
    if (protocols_[v]->isDone()) {
      resolved[v] = 1;
    } else {
      ++pending;
    }
    const Round nw = protocols_[v]->nextWake(-1);
    if (nw != kNoWake) {
      DSN_REQUIRE(nw >= 0, "nextWake(-1) must name a non-negative round");
      wake.emplace(nw, v);
    }
  }

  // Scheduled deaths as a sorted event list; processing an event retires
  // the node from the pending count exactly when isDead starts holding.
  std::vector<std::pair<Round, NodeId>> deaths;
  for (const auto& [v, dr] : failures_.deathSchedule()) {
    if (v < protocols_.size() && protocols_[v] && graph_.isAlive(v)) {
      deaths.emplace_back(dr, v);
    }
  }
  std::sort(deaths.begin(), deaths.end());
  std::size_t deathIdx = 0;

  ResolveScratch scratch;
  scratch.prepare(n, config_.channelCount);
  std::vector<NodeId> active;
  active.reserve(n);
  std::vector<NodeId> transmitters;
  transmitters.reserve(n);

  Round r = 0;
  while (r < config_.maxRounds) {
    while (deathIdx < deaths.size() && deaths[deathIdx].first <= r) {
      const NodeId v = deaths[deathIdx].second;
      if (!resolved[v]) {
        resolved[v] = 1;
        --pending;
      }
      ++deathIdx;
    }
    if (pending == 0) {
      // allDone(r) holds before round r runs — same exit as the scan.
      result.completed = true;
      result.rounds = r;
      flushRunMetrics(result);
      return result;
    }

    // Fast-forward over idle spans: rounds with no waker and no death are
    // all-sleep no-ops in the full scan; only the round counter moves.
    Round nextEvent = config_.maxRounds;
    if (!wake.empty()) nextEvent = std::min(nextEvent, wake.top().first);
    if (deathIdx < deaths.size()) {
      nextEvent = std::min(nextEvent, deaths[deathIdx].first);
    }
    if (nextEvent > r) {
      result.rounds = nextEvent;
      r = nextEvent;
      continue;
    }

    // Phase 1: this round's wakers, ascending node id.
    active.clear();
    transmitters.clear();
    while (!wake.empty() && wake.top().first == r) {
      active.push_back(wake.top().second);
      wake.pop();
    }
    for (const NodeId v : active) {
      if (failures_.isDead(v, r)) continue;  // dead: dropped, never re-queued
      actions[v] = protocols_[v]->onRound(r);

      if (actions[v].type == Action::Type::kTransmit) {
        energy_.recordTransmit(v);
        if (failures_.isJammed(v, r)) {
          // Energy spent, frame smothered by the jammer.
          ++result.jammedLosses;
          trace_.record(TraceEvent{TraceEventType::kJammedTransmit, r, v,
                                   kInvalidNode, actions[v].channel,
                                   actions[v].message.kind});
          actions[v] = Action::sleep();
          continue;
        }
        if (failures_.hasTransientLoss() && failures_.dropsTransmission()) {
          // Energy spent, nothing on air.
          ++result.droppedTransmissions;
          trace_.record(TraceEvent{TraceEventType::kDroppedTransmit, r, v,
                                   kInvalidNode, actions[v].channel,
                                   actions[v].message.kind});
          actions[v] = Action::sleep();
          continue;
        }
        trace_.record(TraceEvent{TraceEventType::kTransmit, r, v,
                                 kInvalidNode, actions[v].channel,
                                 actions[v].message.kind});
        transmitters.push_back(v);
      } else if (actions[v].type == Action::Type::kListen) {
        energy_.recordListen(v);
      }
    }

    // Phase 2: resolve only around actual transmitters.
    const ChannelOutcome& outcome = resolveRoundActive(
        csr, actions, transmitters, config_.channelCount, scratch);
    result.totalTransmissions += outcome.transmissions;
    result.totalDeliveries += outcome.deliveries.size();
    result.totalCollisions += outcome.collisions();

    for (const auto& site : outcome.collisionSites) {
      trace_.record(TraceEvent{TraceEventType::kCollision, r, site.listener,
                               kInvalidNode, site.channel, MsgKind::kData});
    }

    // Phase 3: deliver. Receivers are always listeners, hence active.
    for (const auto& d : outcome.deliveries) {
      if (failures_.isDead(d.receiver, r)) continue;
      if (failures_.isJammed(d.receiver, r)) {
        // The jammer drowns out reception too.
        ++result.jammedLosses;
        continue;
      }
      energy_.recordReceive(d.receiver);
      const Message& m = actions[d.transmitter].message;
      trace_.record(TraceEvent{TraceEventType::kReceive, r, d.receiver,
                               d.transmitter, d.channel, m.kind});
      protocols_[d.receiver]->onReceive(m, r, d.channel);
    }

    // Post-round: retire freshly-done nodes, re-queue the rest. Only
    // active nodes can have changed state (sleepers neither act nor
    // receive), so scanning the active set is exhaustive.
    for (const NodeId v : active) {
      actions[v] = Action::sleep();
      if (failures_.isDead(v, r)) continue;
      if (!resolved[v] && protocols_[v]->isDone()) {
        resolved[v] = 1;
        --pending;
      }
      const Round nw = protocols_[v]->nextWake(r);
      if (nw != kNoWake) {
        DSN_REQUIRE(nw > r, "nextWake must name a future round");
        wake.emplace(nw, v);
      }
    }

    result.rounds = r + 1;
    ++r;
  }

  // Budget exhausted: mirror allDone(maxRounds), whose isDead(v, maxRounds)
  // excludes every death scheduled at or before the budget round.
  while (deathIdx < deaths.size() &&
         deaths[deathIdx].first <= config_.maxRounds) {
    const NodeId v = deaths[deathIdx].second;
    if (!resolved[v]) {
      resolved[v] = 1;
      --pending;
    }
    ++deathIdx;
  }
  result.completed = pending == 0;
  result.rounds = config_.maxRounds;
  flushRunMetrics(result);
  return result;
}

}  // namespace dsn
