#include "radio/simulator.hpp"

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

/// Folds one finished run into the global registry. Aggregates are
/// flushed once per run (not per round) so telemetry stays cheap even
/// when enabled; when disabled this is a single relaxed atomic load.
void flushRunMetrics(const SimResult& r) {
  if (!obs::enabled()) return;
  auto& m = obs::globalMetrics();
  m.counter("sim.runs").increment();
  m.counter("sim.transmissions").increment(r.totalTransmissions);
  m.counter("sim.deliveries").increment(r.totalDeliveries);
  m.counter("sim.collisions").increment(r.totalCollisions);
  m.counter("sim.dropped_transmissions").increment(r.droppedTransmissions);
  m.counter("sim.jammed_losses").increment(r.jammedLosses);
  m.counter("sim.rounds").increment(static_cast<std::uint64_t>(r.rounds));
  m.histogram("sim.rounds_executed",
              obs::Histogram::exponentialBounds(20))
      .observe(static_cast<double>(r.rounds));
  if (!r.completed) m.counter("sim.budget_exhausted").increment();
}

}  // namespace

RadioSimulator::RadioSimulator(const Graph& graph, SimConfig config)
    : graph_(graph),
      config_(config),
      protocols_(graph.size()),
      energy_(graph.size()),
      trace_(config.traceCapacity) {
  DSN_REQUIRE(config_.channelCount >= 1, "need at least one channel");
  DSN_REQUIRE(config_.maxRounds > 0, "maxRounds must be positive");
}

void RadioSimulator::setProtocol(NodeId v,
                                 std::unique_ptr<NodeProtocol> protocol) {
  DSN_REQUIRE(graph_.isAlive(v), "protocol target node must be live");
  DSN_REQUIRE(!ran_, "cannot install protocols after run()");
  protocols_[v] = std::move(protocol);
}

NodeProtocol* RadioSimulator::protocol(NodeId v) {
  DSN_REQUIRE(v < protocols_.size(), "protocol: node id out of range");
  return protocols_[v].get();
}

const NodeProtocol* RadioSimulator::protocol(NodeId v) const {
  DSN_REQUIRE(v < protocols_.size(), "protocol: node id out of range");
  return protocols_[v].get();
}

bool RadioSimulator::allDone(Round r) const {
  for (NodeId v = 0; v < protocols_.size(); ++v) {
    if (!protocols_[v]) continue;
    if (!graph_.isAlive(v) || failures_.isDead(v, r)) continue;
    if (!protocols_[v]->isDone()) return false;
  }
  return true;
}

SimResult RadioSimulator::run() {
  DSN_REQUIRE(!ran_, "run() may be called only once");
  ran_ = true;
  DSN_TIMED_PHASE("sim.run");

  SimResult result;
  std::vector<Action> actions(graph_.size());

  for (Round r = 0; r < config_.maxRounds; ++r) {
    if (allDone(r)) {
      result.completed = true;
      result.rounds = r;
      flushRunMetrics(result);
      return result;
    }

    // Phase 1: collect actions from live, non-failed protocol nodes.
    for (NodeId v = 0; v < protocols_.size(); ++v) {
      actions[v] = Action::sleep();
      if (!protocols_[v] || !graph_.isAlive(v)) continue;
      if (failures_.isDead(v, r)) continue;
      actions[v] = protocols_[v]->onRound(r);

      if (actions[v].type == Action::Type::kTransmit) {
        energy_.recordTransmit(v);
        if (failures_.isJammed(v, r)) {
          // Energy spent, frame smothered by the jammer.
          ++result.jammedLosses;
          trace_.record(TraceEvent{TraceEventType::kJammedTransmit, r, v,
                                   kInvalidNode, actions[v].channel,
                                   actions[v].message.kind});
          actions[v] = Action::sleep();
          continue;
        }
        if (failures_.hasTransientLoss() && failures_.dropsTransmission()) {
          // Energy spent, nothing on air.
          ++result.droppedTransmissions;
          trace_.record(TraceEvent{TraceEventType::kDroppedTransmit, r, v,
                                   kInvalidNode, actions[v].channel,
                                   actions[v].message.kind});
          actions[v] = Action::sleep();
          continue;
        }
        trace_.record(TraceEvent{TraceEventType::kTransmit, r, v,
                                 kInvalidNode, actions[v].channel,
                                 actions[v].message.kind});
      } else if (actions[v].type == Action::Type::kListen) {
        energy_.recordListen(v);
      }
    }

    // Phase 2: resolve the channel.
    const ChannelOutcome outcome =
        resolveRound(graph_, actions, config_.channelCount);
    result.totalTransmissions += outcome.transmissions;
    result.totalDeliveries += outcome.deliveries.size();
    result.totalCollisions += outcome.collisions();

    for (const auto& site : outcome.collisionSites) {
      trace_.record(TraceEvent{TraceEventType::kCollision, r, site.listener,
                               kInvalidNode, site.channel, MsgKind::kData});
    }

    // Phase 3: deliver.
    for (const auto& d : outcome.deliveries) {
      if (failures_.isDead(d.receiver, r)) continue;
      if (failures_.isJammed(d.receiver, r)) {
        // The jammer drowns out reception too.
        ++result.jammedLosses;
        continue;
      }
      energy_.recordReceive(d.receiver);
      const Message& m = actions[d.transmitter].message;
      trace_.record(TraceEvent{TraceEventType::kReceive, r, d.receiver,
                               d.transmitter, d.channel, m.kind});
      protocols_[d.receiver]->onReceive(m, r, d.channel);
    }

    result.rounds = r + 1;
  }

  result.completed = allDone(config_.maxRounds);
  flushRunMetrics(result);
  return result;
}

}  // namespace dsn
