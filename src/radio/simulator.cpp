#include "radio/simulator.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

/// Builds a flight-recorder event from a radio-layer site. Round and
/// channel narrow to the record's fixed-width fields; both are bounded
/// far below the cast limits in practice (maxRounds, channelCount).
obs::FrEvent frEvent(obs::FrType t, Round r, std::uint32_t node,
                     std::uint32_t data = 0, Channel channel = 0,
                     std::uint16_t aux = 0) {
  obs::FrEvent e;
  e.round = static_cast<std::uint32_t>(r);
  e.node = node;
  e.data = data;
  e.type = static_cast<std::uint8_t>(t);
  e.channel = static_cast<std::uint8_t>(channel);
  e.aux = aux;
  return e;
}

std::uint16_t frKind(MsgKind k) {
  return static_cast<std::uint16_t>(k);
}

/// Folds one finished run into the global registry. Aggregates are
/// flushed once per run (not per round) so telemetry stays cheap even
/// when enabled; when disabled this is a single relaxed atomic load.
void flushRunMetrics(const SimResult& r) {
  if (!obs::enabled()) return;
  auto& m = obs::globalMetrics();
  m.counter("sim.runs").increment();
  m.counter("sim.transmissions").increment(r.totalTransmissions);
  m.counter("sim.deliveries").increment(r.totalDeliveries);
  m.counter("sim.collisions").increment(r.totalCollisions);
  m.counter("sim.dropped_transmissions").increment(r.droppedTransmissions);
  m.counter("sim.jammed_losses").increment(r.jammedLosses);
  m.counter("sim.rounds").increment(static_cast<std::uint64_t>(r.rounds));
  m.histogram("sim.rounds_executed",
              obs::Histogram::exponentialBounds(20))
      .observe(static_cast<double>(r.rounds));
  if (!r.completed) m.counter("sim.budget_exhausted").increment();
}

}  // namespace

RadioSimulator::RadioSimulator(const Graph& graph, SimConfig config)
    : graph_(graph),
      config_(config),
      protocols_(graph.size()),
      energy_(graph.size()),
      trace_(config.traceCapacity) {
  DSN_REQUIRE(config_.channelCount >= 1, "need at least one channel");
  DSN_REQUIRE(config_.maxRounds > 0, "maxRounds must be positive");
}

void RadioSimulator::setProtocol(NodeId v,
                                 std::unique_ptr<NodeProtocol> protocol) {
  DSN_REQUIRE(graph_.isAlive(v), "protocol target node must be live");
  DSN_REQUIRE(!ran_, "cannot install protocols after run()");
  DSN_REQUIRE(!swarm_, "setProtocol and setSwarm are mutually exclusive");
  protocols_[v] = std::move(protocol);
}

void RadioSimulator::setSwarm(std::unique_ptr<SwarmProtocol> swarm,
                              const std::vector<NodeId>& members) {
  DSN_REQUIRE(!ran_, "cannot install protocols after run()");
  DSN_REQUIRE(swarm != nullptr, "setSwarm: null swarm");
  for (const auto& p : protocols_)
    DSN_REQUIRE(!p, "setProtocol and setSwarm are mutually exclusive");
  swarm_ = std::move(swarm);
  swarmMember_.assign(graph_.size(), 0);
  for (const NodeId v : members) {
    DSN_REQUIRE(v < swarmMember_.size(), "swarm member id out of range");
    DSN_REQUIRE(graph_.isAlive(v), "swarm member node must be live");
    swarmMember_[v] = 1;
  }
}

NodeProtocol* RadioSimulator::protocol(NodeId v) {
  DSN_REQUIRE(v < protocols_.size(), "protocol: node id out of range");
  return protocols_[v].get();
}

const NodeProtocol* RadioSimulator::protocol(NodeId v) const {
  DSN_REQUIRE(v < protocols_.size(), "protocol: node id out of range");
  return protocols_[v].get();
}

bool RadioSimulator::allDone(Round r) const {
  for (NodeId v = 0; v < graph_.size(); ++v) {
    if (!nodePresent(v)) continue;
    if (!graph_.isAlive(v) || failures_.isDead(v, r)) continue;
    if (!nodeIsDone(v)) return false;
  }
  return true;
}

// ---- Engines ------------------------------------------------------------
//
// Each SimScheduling mode is one SimEngine subclass. The constructors
// seed from round 0; advanceTo(stop) executes [cursor, stop); resync()
// re-seeds at the paused cursor after an external mutation. The classic
// single-segment path (run()) traverses exactly the code the monolithic
// loops used to, in the same order — the engine split only moved the
// loop-carried state into members so the loop can pause.

/// The original full-scan loop: scan all V protocols every round. Kept
/// as the differential oracle; per-round state is just the action
/// buffer, so pausing is trivial.
class FullScanEngine : public SimEngine {
 public:
  explicit FullScanEngine(RadioSimulator& sim)
      : SimEngine(sim), actions_(sim.graph_.size()) {
    // Flight-recorder sites: the full scan is the differential oracle, so
    // it records only the radio-level categories (transmit/delivery,
    // collisions, per-transmit faults) — no round/sched events.
    frRadio_ = obs::recorderFor<obs::kFrCatRadio>();
    frColl_ = obs::recorderFor<obs::kFrCatCollision>();
    frFault_ = obs::recorderFor<obs::kFrCatFault>();
    frAny_ = frRadio_ ? frRadio_ : (frColl_ ? frColl_ : frFault_);
  }

  void advanceTo(Round stop) override;
  void resync() override { actions_.resize(sim_.graph_.size()); }
  void finish() override { flushRunMetrics(result_); }

 private:
  std::vector<Action> actions_;
  obs::FlightRecorder* frRadio_ = nullptr;
  obs::FlightRecorder* frColl_ = nullptr;
  obs::FlightRecorder* frFault_ = nullptr;
  const obs::FlightRecorder* frAny_ = nullptr;
};

void FullScanEngine::advanceTo(Round stop) {
  RadioSimulator& sim = sim_;
  SimResult& result = result_;
  const Channel k = sim.config_.channelCount;

  for (Round r = cursor_; r < stop; cursor_ = ++r) {
    const bool frSampled = frAny_ != nullptr && frAny_->roundSampled(r);
    if (sim.allDone(r)) {
      result.completed = true;
      result.rounds = r;
      done_ = true;
      return;
    }

    // Phase 1: collect actions from live, non-failed protocol nodes.
    for (NodeId v = 0; v < sim.graph_.size(); ++v) {
      actions_[v] = Action::sleep();
      if (!sim.nodePresent(v) || !sim.graph_.isAlive(v)) continue;
      if (sim.failures_.isDead(v, r)) continue;
      actions_[v] = sim.nodeOnRound(v, r);

      if (actions_[v].type == Action::Type::kTransmit) {
        sim.energy_.recordTransmit(v);
        if (sim.failures_.isJammed(v, r)) {
          // Energy spent, frame smothered by the jammer.
          ++result.jammedLosses;
          sim.trace_.record(TraceEvent{TraceEventType::kJammedTransmit, r, v,
                                       kInvalidNode, actions_[v].channel,
                                       actions_[v].message.kind});
          if (frFault_ && frSampled)
            frFault_->record(frEvent(obs::FrType::kJammedTransmit, r, v, 0,
                                     actions_[v].channel,
                                     frKind(actions_[v].message.kind)));
          actions_[v] = Action::sleep();
          continue;
        }
        if (sim.failures_.hasTransientLoss() &&
            sim.failures_.dropsTransmission()) {
          // Energy spent, nothing on air.
          ++result.droppedTransmissions;
          sim.trace_.record(TraceEvent{TraceEventType::kDroppedTransmit, r, v,
                                       kInvalidNode, actions_[v].channel,
                                       actions_[v].message.kind});
          if (frFault_ && frSampled)
            frFault_->record(frEvent(obs::FrType::kDroppedTransmit, r, v, 0,
                                     actions_[v].channel,
                                     frKind(actions_[v].message.kind)));
          actions_[v] = Action::sleep();
          continue;
        }
        sim.trace_.record(TraceEvent{TraceEventType::kTransmit, r, v,
                                     kInvalidNode, actions_[v].channel,
                                     actions_[v].message.kind});
        if (frRadio_ && frSampled)
          frRadio_->record(frEvent(obs::FrType::kTransmit, r, v, 0,
                                   actions_[v].channel,
                                   frKind(actions_[v].message.kind)));
      } else if (actions_[v].type == Action::Type::kListen) {
        sim.energy_.recordListen(v);
      }
    }

    // Phase 2: resolve the channel.
    const ChannelOutcome outcome = resolveRound(sim.graph_, actions_, k);
    result.totalTransmissions += outcome.transmissions;
    result.totalDeliveries += outcome.deliveries.size();
    result.totalCollisions += outcome.collisions();

    for (const auto& site : outcome.collisionSites) {
      sim.trace_.record(TraceEvent{TraceEventType::kCollision, r,
                                   site.listener, kInvalidNode, site.channel,
                                   MsgKind::kData});
      if (frColl_ && frSampled)
        frColl_->record(frEvent(obs::FrType::kCollision, r, site.listener, 0,
                                site.channel));
    }

    // Phase 3: deliver.
    for (const auto& d : outcome.deliveries) {
      if (sim.failures_.isDead(d.receiver, r)) continue;
      if (sim.failures_.isJammed(d.receiver, r)) {
        // The jammer drowns out reception too.
        ++result.jammedLosses;
        continue;
      }
      sim.energy_.recordReceive(d.receiver);
      const Message& m = actions_[d.transmitter].message;
      sim.trace_.record(TraceEvent{TraceEventType::kReceive, r, d.receiver,
                                   d.transmitter, d.channel, m.kind});
      if (frRadio_ && frSampled)
        frRadio_->record(frEvent(obs::FrType::kDelivery, r, d.receiver,
                                 d.transmitter, d.channel, frKind(m.kind)));
      sim.nodeOnReceive(d.receiver, m, r, d.channel);
    }

    result.rounds = r + 1;
  }

  if (stop >= sim.config_.maxRounds) {
    result.completed = sim.allDone(sim.config_.maxRounds);
    done_ = true;
  }
}

/// Wake-queue driven active-set loop (DESIGN.md §12).
class ActiveSetEngine : public SimEngine {
 public:
  explicit ActiveSetEngine(RadioSimulator& sim) : SimEngine(sim) {
    // Flight-recorder category pointers, fetched once per run (they all
    // alias the same per-thread recorder). Null when the category is
    // compiled out, recording is off, or the runtime mask excludes it —
    // each site below is then a dead branch. Inside the round loop every
    // record() is an indexed store: the zero-steady-state-allocation
    // guarantee is preserved with recording enabled.
    frRound_ = obs::recorderFor<obs::kFrCatRound>();
    frSched_ = obs::recorderFor<obs::kFrCatSched>();
    frRadio_ = obs::recorderFor<obs::kFrCatRadio>();
    frColl_ = obs::recorderFor<obs::kFrCatCollision>();
    frFault_ = obs::recorderFor<obs::kFrCatFault>();
    frAny_ = frRound_   ? frRound_
             : frSched_ ? frSched_
             : frRadio_ ? frRadio_
             : frColl_  ? frColl_
                        : frFault_;
    seed(0);
  }

  void advanceTo(Round stop) override;
  void resync() override { seed(cursor_); }
  void finish() override {
    profiler_.flushTo(obs::globalMetrics());
    flushRunMetrics(result_);
  }

 private:
  using WakeEntry = std::pair<Round, NodeId>;

  void seed(Round from);

  const CsrView* csr_ = nullptr;
  std::size_t n_ = 0;
  std::vector<Action> actions_;
  // pending = live protocol nodes that still block completion; a node is
  // `resolved` once it reports done or its scheduled death round passes
  // (allDone ignores dead nodes). isDone is monotone by contract, so a
  // node is counted out at most once per seed.
  std::vector<std::uint8_t> resolved_;
  std::size_t pending_ = 0;
  // Min-heap over (wake round, node); std::greater pops ascending (round,
  // node), which preserves the full scan's node-id iteration order within
  // a round. Each node holds at most one entry (re-queued only after its
  // entry is processed), so the pop sequence is a pure function of the
  // contents regardless of internal heap layout.
  std::vector<WakeEntry> wake_;
  // Scheduled deaths as a sorted event list; processing an event retires
  // the node from the pending count exactly when isDead starts holding.
  std::vector<std::pair<Round, NodeId>> deaths_;
  std::size_t deathIdx_ = 0;
  // Own scratch, used only when SimConfig::resolveScratch is null;
  // scr_ points at whichever is live for the current seed.
  ResolveScratch scratch_;
  ResolveScratch* scr_ = &scratch_;
  std::vector<NodeId> active_;
  std::vector<NodeId> transmitters_;
  obs::FlightRecorder* frRound_ = nullptr;
  obs::FlightRecorder* frSched_ = nullptr;
  obs::FlightRecorder* frRadio_ = nullptr;
  obs::FlightRecorder* frColl_ = nullptr;
  obs::FlightRecorder* frFault_ = nullptr;
  const obs::FlightRecorder* frAny_ = nullptr;
  obs::RoundProfiler profiler_;
};

void ActiveSetEngine::seed(Round from) {
  RadioSimulator& sim = sim_;
  csr_ = &sim.graph_.csrView();
  n_ = sim.graph_.size();
  actions_.assign(n_, Action::sleep());
  resolved_.assign(n_, 0);
  pending_ = 0;
  wake_.clear();
  wake_.reserve(n_ + 1);

  for (NodeId v = 0; v < n_; ++v) {
    if (!sim.nodePresent(v) || !sim.graph_.isAlive(v)) {
      resolved_[v] = 1;
      continue;
    }
    if (sim.failures_.isDead(v, from)) {
      // Stale-node quiescing: already dead at the seed round — resolved,
      // never queued (a queued entry would only be dropped on pop).
      resolved_[v] = 1;
      continue;
    }
    if (sim.nodeIsDone(v)) {
      resolved_[v] = 1;
    } else {
      ++pending_;
    }
    const Round nw = sim.nodeNextWake(v, from - 1);
    if (nw != kNoWake) {
      DSN_REQUIRE(nw >= from, "nextWake must not name a past round");
      wake_.emplace_back(nw, v);
    }
  }
  std::make_heap(wake_.begin(), wake_.end(), std::greater<WakeEntry>{});

  deaths_.clear();
  for (const auto& [v, dr] : sim.failures_.deathSchedule()) {
    if (v < n_ && dr > from && sim.nodePresent(v) && sim.graph_.isAlive(v)) {
      deaths_.emplace_back(dr, v);
    }
  }
  std::sort(deaths_.begin(), deaths_.end());
  deathIdx_ = 0;

  scr_ = sim.config_.resolveScratch != nullptr ? sim.config_.resolveScratch
                                               : &scratch_;
  scr_->prepare(n_, sim.config_.channelCount);
  active_.reserve(n_);
  transmitters_.reserve(n_);
}

void ActiveSetEngine::advanceTo(Round stop) {
  RadioSimulator& sim = sim_;
  SimResult& result = result_;
  const CsrView& csr = *csr_;
  auto& wake = wake_;
  auto& actions = actions_;
  auto& active = active_;
  auto& transmitters = transmitters_;

  Round r = cursor_;
  while (r < stop) {
    while (deathIdx_ < deaths_.size() && deaths_[deathIdx_].first <= r) {
      const NodeId v = deaths_[deathIdx_].second;
      if (!resolved_[v]) {
        resolved_[v] = 1;
        --pending_;
      }
      if (frFault_)  // deaths are rare: recorded regardless of sampling
        frFault_->record(
            frEvent(obs::FrType::kNodeDeath, deaths_[deathIdx_].first, v));
      ++deathIdx_;
    }
    if (pending_ == 0) {
      // allDone(r) holds before round r runs — same exit as the scan.
      result.completed = true;
      result.rounds = r;
      cursor_ = r;
      done_ = true;
      return;
    }

    // Fast-forward over idle spans: rounds with no waker and no death are
    // all-sleep no-ops in the full scan; only the round counter moves.
    // Clamped to the segment boundary so a pause lands exactly on `stop`.
    Round nextEvent = sim.config_.maxRounds;
    if (!wake.empty()) nextEvent = std::min(nextEvent, wake.front().first);
    if (deathIdx_ < deaths_.size()) {
      nextEvent = std::min(nextEvent, deaths_[deathIdx_].first);
    }
    if (nextEvent > r) {
      nextEvent = std::min(nextEvent, stop);
      if (frSched_ && frSched_->roundSampled(r))
        frSched_->record(frEvent(obs::FrType::kIdleSkip, r, 0,
                                 static_cast<std::uint32_t>(nextEvent)));
      result.rounds = nextEvent;
      r = nextEvent;
      cursor_ = r;
      continue;
    }

    // Round-scoped volume events obey the sampling setting; the flag is
    // computed once per executed round.
    const bool frSampled = frAny_ != nullptr && frAny_->roundSampled(r);
    profiler_.beginRound();

    // Phase 1: this round's wakers, ascending node id.
    active.clear();
    transmitters.clear();
    while (!wake.empty() && wake.front().first == r) {
      std::pop_heap(wake.begin(), wake.end(), std::greater<WakeEntry>{});
      active.push_back(wake.back().second);
      wake.pop_back();
    }
    if (frRound_ && frSampled)
      frRound_->record(frEvent(obs::FrType::kRoundBegin, r, 0,
                               static_cast<std::uint32_t>(active.size())));
    for (const NodeId v : active) {
      if (sim.failures_.isDead(v, r)) continue;  // dead: never re-queued
      if (frSched_ && frSampled)
        frSched_->record(frEvent(obs::FrType::kWakePop, r, v));
      actions[v] = sim.nodeOnRound(v, r);

      if (actions[v].type == Action::Type::kTransmit) {
        sim.energy_.recordTransmit(v);
        if (sim.failures_.isJammed(v, r)) {
          // Energy spent, frame smothered by the jammer.
          ++result.jammedLosses;
          sim.trace_.record(TraceEvent{TraceEventType::kJammedTransmit, r, v,
                                       kInvalidNode, actions[v].channel,
                                       actions[v].message.kind});
          if (frFault_ && frSampled)
            frFault_->record(frEvent(obs::FrType::kJammedTransmit, r, v, 0,
                                     actions[v].channel,
                                     frKind(actions[v].message.kind)));
          actions[v] = Action::sleep();
          continue;
        }
        if (sim.failures_.hasTransientLoss() &&
            sim.failures_.dropsTransmission()) {
          // Energy spent, nothing on air.
          ++result.droppedTransmissions;
          sim.trace_.record(TraceEvent{TraceEventType::kDroppedTransmit, r, v,
                                       kInvalidNode, actions[v].channel,
                                       actions[v].message.kind});
          if (frFault_ && frSampled)
            frFault_->record(frEvent(obs::FrType::kDroppedTransmit, r, v, 0,
                                     actions[v].channel,
                                     frKind(actions[v].message.kind)));
          actions[v] = Action::sleep();
          continue;
        }
        sim.trace_.record(TraceEvent{TraceEventType::kTransmit, r, v,
                                     kInvalidNode, actions[v].channel,
                                     actions[v].message.kind});
        if (frRadio_ && frSampled)
          frRadio_->record(frEvent(obs::FrType::kTransmit, r, v, 0,
                                   actions[v].channel,
                                   frKind(actions[v].message.kind)));
        transmitters.push_back(v);
      } else if (actions[v].type == Action::Type::kListen) {
        sim.energy_.recordListen(v);
      }
    }

    // Resolve work (Σ transmitter degrees) — the cost driver of phase 2.
    // Computed only when someone consumes it.
    std::uint64_t resolveWork = 0;
    if (profiler_.active() || (frRound_ && frSampled)) {
      for (const NodeId tx : transmitters) resolveWork += csr.degree(tx);
    }

    // Phase 2: resolve only around actual transmitters.
    const ChannelOutcome& outcome = resolveRoundActive(
        csr, actions, transmitters, sim.config_.channelCount, *scr_);
    result.totalTransmissions += outcome.transmissions;
    result.totalDeliveries += outcome.deliveries.size();
    result.totalCollisions += outcome.collisions();

    for (const auto& site : outcome.collisionSites) {
      sim.trace_.record(TraceEvent{TraceEventType::kCollision, r,
                                   site.listener, kInvalidNode, site.channel,
                                   MsgKind::kData});
      if (frColl_ && frSampled)
        frColl_->record(frEvent(obs::FrType::kCollision, r, site.listener, 0,
                                site.channel));
    }

    // Phase 3: deliver. Receivers are always listeners, hence active.
    std::uint32_t roundDeliveries = 0;
    for (const auto& d : outcome.deliveries) {
      if (sim.failures_.isDead(d.receiver, r)) continue;
      if (sim.failures_.isJammed(d.receiver, r)) {
        // The jammer drowns out reception too.
        ++result.jammedLosses;
        continue;
      }
      sim.energy_.recordReceive(d.receiver);
      const Message& m = actions[d.transmitter].message;
      sim.trace_.record(TraceEvent{TraceEventType::kReceive, r, d.receiver,
                                   d.transmitter, d.channel, m.kind});
      if (frRadio_ && frSampled)
        frRadio_->record(frEvent(obs::FrType::kDelivery, r, d.receiver,
                                 d.transmitter, d.channel, frKind(m.kind)));
      ++roundDeliveries;
      sim.nodeOnReceive(d.receiver, m, r, d.channel);
    }

    // Post-round: retire freshly-done nodes, re-queue the rest. Only
    // active nodes can have changed state (sleepers neither act nor
    // receive), so scanning the active set is exhaustive.
    for (const NodeId v : active) {
      actions[v] = Action::sleep();
      if (sim.failures_.isDead(v, r)) continue;
      if (!resolved_[v] && sim.nodeIsDone(v)) {
        resolved_[v] = 1;
        --pending_;
      }
      const Round nw = sim.nodeNextWake(v, r);
      if (nw != kNoWake) {
        DSN_REQUIRE(nw > r, "nextWake must name a future round");
        wake.emplace_back(nw, v);
        std::push_heap(wake.begin(), wake.end(), std::greater<WakeEntry>{});
      }
    }

    if (frRound_ && frSampled)
      frRound_->record(frEvent(
          obs::FrType::kRoundEnd, r, roundDeliveries,
          static_cast<std::uint32_t>(resolveWork), 0,
          static_cast<std::uint16_t>(
              std::min<std::size_t>(transmitters.size(), 65535))));
    profiler_.endRound(active.size(), resolveWork);

    result.rounds = r + 1;
    ++r;
    cursor_ = r;
  }

  if (stop < sim.config_.maxRounds) return;  // paused at a segment boundary

  // Budget exhausted: mirror allDone(maxRounds), whose isDead(v, maxRounds)
  // excludes every death scheduled at or before the budget round.
  while (deathIdx_ < deaths_.size() &&
         deaths_[deathIdx_].first <= sim.config_.maxRounds) {
    const NodeId v = deaths_[deathIdx_].second;
    if (!resolved_[v]) {
      resolved_[v] = 1;
      --pending_;
    }
    ++deathIdx_;
  }
  result.completed = pending_ == 0;
  result.rounds = sim.config_.maxRounds;
  done_ = true;
}

// ---- Run entry points ---------------------------------------------------

SimResult RadioSimulator::run() {
  DSN_REQUIRE(!ran_, "run() may be called only once");
  return runUntil(config_.maxRounds);
}

SimResult RadioSimulator::runUntil(Round stop) {
  if (stop > config_.maxRounds) stop = config_.maxRounds;
  if (!engine_) {
    DSN_REQUIRE(!ran_, "runUntil: cannot start a second run");
    ran_ = true;
    switch (config_.scheduling) {
      case SimScheduling::kFullScan:
        engine_ = std::make_unique<FullScanEngine>(*this);
        break;
      case SimScheduling::kSharded:
        engine_ = makeShardEngine(*this);
        break;
      case SimScheduling::kActiveSet:
        engine_ = std::make_unique<ActiveSetEngine>(*this);
        break;
    }
  }
  DSN_REQUIRE(!engine_->done(), "runUntil: the run already finished");
  {
    DSN_TIMED_PHASE("sim.run");
    engine_->advanceTo(stop);
  }
  if (engine_->done()) engine_->finish();
  return engine_->result();
}

void RadioSimulator::resyncTopology() {
  DSN_REQUIRE(engine_ != nullptr, "resyncTopology: run not started");
  DSN_REQUIRE(!engine_->done(), "resyncTopology: the run already finished");
  const std::size_t n = graph_.size();
  if (protocols_.size() < n) protocols_.resize(n);
  if (swarm_ && swarmMember_.size() < n) swarmMember_.resize(n, 0);
  energy_.growTo(n);
  // Refresh the CSR snapshot here, on the coordinating thread, so worker
  // threads in the sharded engine only ever read a fresh cache.
  graph_.csrView();
  engine_->resync();
}

}  // namespace dsn
