#include "radio/simulator.hpp"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

/// Builds a flight-recorder event from a radio-layer site. Round and
/// channel narrow to the record's fixed-width fields; both are bounded
/// far below the cast limits in practice (maxRounds, channelCount).
obs::FrEvent frEvent(obs::FrType t, Round r, std::uint32_t node,
                     std::uint32_t data = 0, Channel channel = 0,
                     std::uint16_t aux = 0) {
  obs::FrEvent e;
  e.round = static_cast<std::uint32_t>(r);
  e.node = node;
  e.data = data;
  e.type = static_cast<std::uint8_t>(t);
  e.channel = static_cast<std::uint8_t>(channel);
  e.aux = aux;
  return e;
}

std::uint16_t frKind(MsgKind k) {
  return static_cast<std::uint16_t>(k);
}

/// Folds one finished run into the global registry. Aggregates are
/// flushed once per run (not per round) so telemetry stays cheap even
/// when enabled; when disabled this is a single relaxed atomic load.
void flushRunMetrics(const SimResult& r) {
  if (!obs::enabled()) return;
  auto& m = obs::globalMetrics();
  m.counter("sim.runs").increment();
  m.counter("sim.transmissions").increment(r.totalTransmissions);
  m.counter("sim.deliveries").increment(r.totalDeliveries);
  m.counter("sim.collisions").increment(r.totalCollisions);
  m.counter("sim.dropped_transmissions").increment(r.droppedTransmissions);
  m.counter("sim.jammed_losses").increment(r.jammedLosses);
  m.counter("sim.rounds").increment(static_cast<std::uint64_t>(r.rounds));
  m.histogram("sim.rounds_executed",
              obs::Histogram::exponentialBounds(20))
      .observe(static_cast<double>(r.rounds));
  if (!r.completed) m.counter("sim.budget_exhausted").increment();
}

}  // namespace

RadioSimulator::RadioSimulator(const Graph& graph, SimConfig config)
    : graph_(graph),
      config_(config),
      protocols_(graph.size()),
      energy_(graph.size()),
      trace_(config.traceCapacity) {
  DSN_REQUIRE(config_.channelCount >= 1, "need at least one channel");
  DSN_REQUIRE(config_.maxRounds > 0, "maxRounds must be positive");
}

void RadioSimulator::setProtocol(NodeId v,
                                 std::unique_ptr<NodeProtocol> protocol) {
  DSN_REQUIRE(graph_.isAlive(v), "protocol target node must be live");
  DSN_REQUIRE(!ran_, "cannot install protocols after run()");
  DSN_REQUIRE(!swarm_, "setProtocol and setSwarm are mutually exclusive");
  protocols_[v] = std::move(protocol);
}

void RadioSimulator::setSwarm(std::unique_ptr<SwarmProtocol> swarm,
                              const std::vector<NodeId>& members) {
  DSN_REQUIRE(!ran_, "cannot install protocols after run()");
  DSN_REQUIRE(swarm != nullptr, "setSwarm: null swarm");
  for (const auto& p : protocols_)
    DSN_REQUIRE(!p, "setProtocol and setSwarm are mutually exclusive");
  swarm_ = std::move(swarm);
  swarmMember_.assign(graph_.size(), 0);
  for (const NodeId v : members) {
    DSN_REQUIRE(v < swarmMember_.size(), "swarm member id out of range");
    DSN_REQUIRE(graph_.isAlive(v), "swarm member node must be live");
    swarmMember_[v] = 1;
  }
}

NodeProtocol* RadioSimulator::protocol(NodeId v) {
  DSN_REQUIRE(v < protocols_.size(), "protocol: node id out of range");
  return protocols_[v].get();
}

const NodeProtocol* RadioSimulator::protocol(NodeId v) const {
  DSN_REQUIRE(v < protocols_.size(), "protocol: node id out of range");
  return protocols_[v].get();
}

bool RadioSimulator::allDone(Round r) const {
  for (NodeId v = 0; v < graph_.size(); ++v) {
    if (!nodePresent(v)) continue;
    if (!graph_.isAlive(v) || failures_.isDead(v, r)) continue;
    if (!nodeIsDone(v)) return false;
  }
  return true;
}

SimResult RadioSimulator::run() {
  DSN_REQUIRE(!ran_, "run() may be called only once");
  ran_ = true;
  DSN_TIMED_PHASE("sim.run");
  switch (config_.scheduling) {
    case SimScheduling::kFullScan:
      return runFullScan();
    case SimScheduling::kSharded:
      return runSharded();
    case SimScheduling::kActiveSet:
      break;
  }
  return runActiveSet();
}

SimResult RadioSimulator::runFullScan() {
  SimResult result;
  std::vector<Action> actions(graph_.size());

  // Flight-recorder sites: the full scan is the differential oracle, so
  // it records only the radio-level categories (transmit/delivery,
  // collisions, per-transmit faults) — no round/sched events.
  obs::FlightRecorder* frRadio = obs::recorderFor<obs::kFrCatRadio>();
  obs::FlightRecorder* frColl = obs::recorderFor<obs::kFrCatCollision>();
  obs::FlightRecorder* frFault = obs::recorderFor<obs::kFrCatFault>();
  const obs::FlightRecorder* frAny =
      frRadio ? frRadio : (frColl ? frColl : frFault);

  for (Round r = 0; r < config_.maxRounds; ++r) {
    const bool frSampled = frAny != nullptr && frAny->roundSampled(r);
    if (allDone(r)) {
      result.completed = true;
      result.rounds = r;
      flushRunMetrics(result);
      return result;
    }

    // Phase 1: collect actions from live, non-failed protocol nodes.
    for (NodeId v = 0; v < graph_.size(); ++v) {
      actions[v] = Action::sleep();
      if (!nodePresent(v) || !graph_.isAlive(v)) continue;
      if (failures_.isDead(v, r)) continue;
      actions[v] = nodeOnRound(v, r);

      if (actions[v].type == Action::Type::kTransmit) {
        energy_.recordTransmit(v);
        if (failures_.isJammed(v, r)) {
          // Energy spent, frame smothered by the jammer.
          ++result.jammedLosses;
          trace_.record(TraceEvent{TraceEventType::kJammedTransmit, r, v,
                                   kInvalidNode, actions[v].channel,
                                   actions[v].message.kind});
          if (frFault && frSampled)
            frFault->record(frEvent(obs::FrType::kJammedTransmit, r, v, 0,
                                    actions[v].channel,
                                    frKind(actions[v].message.kind)));
          actions[v] = Action::sleep();
          continue;
        }
        if (failures_.hasTransientLoss() && failures_.dropsTransmission()) {
          // Energy spent, nothing on air.
          ++result.droppedTransmissions;
          trace_.record(TraceEvent{TraceEventType::kDroppedTransmit, r, v,
                                   kInvalidNode, actions[v].channel,
                                   actions[v].message.kind});
          if (frFault && frSampled)
            frFault->record(frEvent(obs::FrType::kDroppedTransmit, r, v, 0,
                                    actions[v].channel,
                                    frKind(actions[v].message.kind)));
          actions[v] = Action::sleep();
          continue;
        }
        trace_.record(TraceEvent{TraceEventType::kTransmit, r, v,
                                 kInvalidNode, actions[v].channel,
                                 actions[v].message.kind});
        if (frRadio && frSampled)
          frRadio->record(frEvent(obs::FrType::kTransmit, r, v, 0,
                                  actions[v].channel,
                                  frKind(actions[v].message.kind)));
      } else if (actions[v].type == Action::Type::kListen) {
        energy_.recordListen(v);
      }
    }

    // Phase 2: resolve the channel.
    const ChannelOutcome outcome =
        resolveRound(graph_, actions, config_.channelCount);
    result.totalTransmissions += outcome.transmissions;
    result.totalDeliveries += outcome.deliveries.size();
    result.totalCollisions += outcome.collisions();

    for (const auto& site : outcome.collisionSites) {
      trace_.record(TraceEvent{TraceEventType::kCollision, r, site.listener,
                               kInvalidNode, site.channel, MsgKind::kData});
      if (frColl && frSampled)
        frColl->record(frEvent(obs::FrType::kCollision, r, site.listener, 0,
                               site.channel));
    }

    // Phase 3: deliver.
    for (const auto& d : outcome.deliveries) {
      if (failures_.isDead(d.receiver, r)) continue;
      if (failures_.isJammed(d.receiver, r)) {
        // The jammer drowns out reception too.
        ++result.jammedLosses;
        continue;
      }
      energy_.recordReceive(d.receiver);
      const Message& m = actions[d.transmitter].message;
      trace_.record(TraceEvent{TraceEventType::kReceive, r, d.receiver,
                               d.transmitter, d.channel, m.kind});
      if (frRadio && frSampled)
        frRadio->record(frEvent(obs::FrType::kDelivery, r, d.receiver,
                                d.transmitter, d.channel, frKind(m.kind)));
      nodeOnReceive(d.receiver, m, r, d.channel);
    }

    result.rounds = r + 1;
  }

  result.completed = allDone(config_.maxRounds);
  flushRunMetrics(result);
  return result;
}

SimResult RadioSimulator::runActiveSet() {
  SimResult result;
  const CsrView& csr = graph_.csrView();
  const std::size_t n = graph_.size();

  std::vector<Action> actions(n);

  // Flight-recorder category pointers, fetched once per run (they all
  // alias the same per-thread recorder). Null when the category is
  // compiled out, recording is off, or the runtime mask excludes it —
  // each site below is then a dead branch. Inside the round loop every
  // record() is an indexed store: the zero-steady-state-allocation
  // guarantee is preserved with recording enabled.
  obs::FlightRecorder* frRound = obs::recorderFor<obs::kFrCatRound>();
  obs::FlightRecorder* frSched = obs::recorderFor<obs::kFrCatSched>();
  obs::FlightRecorder* frRadio = obs::recorderFor<obs::kFrCatRadio>();
  obs::FlightRecorder* frColl = obs::recorderFor<obs::kFrCatCollision>();
  obs::FlightRecorder* frFault = obs::recorderFor<obs::kFrCatFault>();
  const obs::FlightRecorder* frAny = frRound ? frRound
                                     : frSched ? frSched
                                     : frRadio ? frRadio
                                     : frColl  ? frColl
                                               : frFault;
  obs::RoundProfiler profiler;

  // pending = live protocol nodes that still block completion; a node is
  // `resolved` once it reports done or its scheduled death round passes
  // (allDone ignores dead nodes). isDone is monotone by contract, so a
  // node is counted out at most once.
  std::vector<std::uint8_t> resolved(n, 0);
  std::size_t pending = 0;

  // Min-heap of (wake round, node). std::greater pops ascending (round,
  // node), which preserves the full scan's node-id iteration order within
  // a round. Each node holds at most one entry (re-queued only after its
  // entry is processed).
  using WakeEntry = std::pair<Round, NodeId>;
  std::vector<WakeEntry> heapStore;
  heapStore.reserve(n + 1);
  std::priority_queue<WakeEntry, std::vector<WakeEntry>,
                      std::greater<WakeEntry>>
      wake(std::greater<WakeEntry>{}, std::move(heapStore));

  for (NodeId v = 0; v < n; ++v) {
    if (!nodePresent(v) || !graph_.isAlive(v)) {
      resolved[v] = 1;
      continue;
    }
    if (nodeIsDone(v)) {
      resolved[v] = 1;
    } else {
      ++pending;
    }
    const Round nw = nodeNextWake(v, -1);
    if (nw != kNoWake) {
      DSN_REQUIRE(nw >= 0, "nextWake(-1) must name a non-negative round");
      wake.emplace(nw, v);
    }
  }

  // Scheduled deaths as a sorted event list; processing an event retires
  // the node from the pending count exactly when isDead starts holding.
  std::vector<std::pair<Round, NodeId>> deaths;
  for (const auto& [v, dr] : failures_.deathSchedule()) {
    if (v < n && nodePresent(v) && graph_.isAlive(v)) {
      deaths.emplace_back(dr, v);
    }
  }
  std::sort(deaths.begin(), deaths.end());
  std::size_t deathIdx = 0;

  ResolveScratch scratch;
  scratch.prepare(n, config_.channelCount);
  std::vector<NodeId> active;
  active.reserve(n);
  std::vector<NodeId> transmitters;
  transmitters.reserve(n);

  Round r = 0;
  while (r < config_.maxRounds) {
    while (deathIdx < deaths.size() && deaths[deathIdx].first <= r) {
      const NodeId v = deaths[deathIdx].second;
      if (!resolved[v]) {
        resolved[v] = 1;
        --pending;
      }
      if (frFault)  // deaths are rare: recorded regardless of sampling
        frFault->record(
            frEvent(obs::FrType::kNodeDeath, deaths[deathIdx].first, v));
      ++deathIdx;
    }
    if (pending == 0) {
      // allDone(r) holds before round r runs — same exit as the scan.
      result.completed = true;
      result.rounds = r;
      profiler.flushTo(obs::globalMetrics());
      flushRunMetrics(result);
      return result;
    }

    // Fast-forward over idle spans: rounds with no waker and no death are
    // all-sleep no-ops in the full scan; only the round counter moves.
    Round nextEvent = config_.maxRounds;
    if (!wake.empty()) nextEvent = std::min(nextEvent, wake.top().first);
    if (deathIdx < deaths.size()) {
      nextEvent = std::min(nextEvent, deaths[deathIdx].first);
    }
    if (nextEvent > r) {
      if (frSched && frSched->roundSampled(r))
        frSched->record(frEvent(obs::FrType::kIdleSkip, r, 0,
                                static_cast<std::uint32_t>(nextEvent)));
      result.rounds = nextEvent;
      r = nextEvent;
      continue;
    }

    // Round-scoped volume events obey the sampling setting; the flag is
    // computed once per executed round.
    const bool frSampled = frAny != nullptr && frAny->roundSampled(r);
    profiler.beginRound();

    // Phase 1: this round's wakers, ascending node id.
    active.clear();
    transmitters.clear();
    while (!wake.empty() && wake.top().first == r) {
      active.push_back(wake.top().second);
      wake.pop();
    }
    if (frRound && frSampled)
      frRound->record(frEvent(obs::FrType::kRoundBegin, r, 0,
                              static_cast<std::uint32_t>(active.size())));
    for (const NodeId v : active) {
      if (failures_.isDead(v, r)) continue;  // dead: dropped, never re-queued
      if (frSched && frSampled)
        frSched->record(frEvent(obs::FrType::kWakePop, r, v));
      actions[v] = nodeOnRound(v, r);

      if (actions[v].type == Action::Type::kTransmit) {
        energy_.recordTransmit(v);
        if (failures_.isJammed(v, r)) {
          // Energy spent, frame smothered by the jammer.
          ++result.jammedLosses;
          trace_.record(TraceEvent{TraceEventType::kJammedTransmit, r, v,
                                   kInvalidNode, actions[v].channel,
                                   actions[v].message.kind});
          if (frFault && frSampled)
            frFault->record(frEvent(obs::FrType::kJammedTransmit, r, v, 0,
                                    actions[v].channel,
                                    frKind(actions[v].message.kind)));
          actions[v] = Action::sleep();
          continue;
        }
        if (failures_.hasTransientLoss() && failures_.dropsTransmission()) {
          // Energy spent, nothing on air.
          ++result.droppedTransmissions;
          trace_.record(TraceEvent{TraceEventType::kDroppedTransmit, r, v,
                                   kInvalidNode, actions[v].channel,
                                   actions[v].message.kind});
          if (frFault && frSampled)
            frFault->record(frEvent(obs::FrType::kDroppedTransmit, r, v, 0,
                                    actions[v].channel,
                                    frKind(actions[v].message.kind)));
          actions[v] = Action::sleep();
          continue;
        }
        trace_.record(TraceEvent{TraceEventType::kTransmit, r, v,
                                 kInvalidNode, actions[v].channel,
                                 actions[v].message.kind});
        if (frRadio && frSampled)
          frRadio->record(frEvent(obs::FrType::kTransmit, r, v, 0,
                                  actions[v].channel,
                                  frKind(actions[v].message.kind)));
        transmitters.push_back(v);
      } else if (actions[v].type == Action::Type::kListen) {
        energy_.recordListen(v);
      }
    }

    // Resolve work (Σ transmitter degrees) — the cost driver of phase 2.
    // Computed only when someone consumes it.
    std::uint64_t resolveWork = 0;
    if (profiler.active() || (frRound && frSampled)) {
      for (const NodeId tx : transmitters) resolveWork += csr.degree(tx);
    }

    // Phase 2: resolve only around actual transmitters.
    const ChannelOutcome& outcome = resolveRoundActive(
        csr, actions, transmitters, config_.channelCount, scratch);
    result.totalTransmissions += outcome.transmissions;
    result.totalDeliveries += outcome.deliveries.size();
    result.totalCollisions += outcome.collisions();

    for (const auto& site : outcome.collisionSites) {
      trace_.record(TraceEvent{TraceEventType::kCollision, r, site.listener,
                               kInvalidNode, site.channel, MsgKind::kData});
      if (frColl && frSampled)
        frColl->record(frEvent(obs::FrType::kCollision, r, site.listener, 0,
                               site.channel));
    }

    // Phase 3: deliver. Receivers are always listeners, hence active.
    std::uint32_t roundDeliveries = 0;
    for (const auto& d : outcome.deliveries) {
      if (failures_.isDead(d.receiver, r)) continue;
      if (failures_.isJammed(d.receiver, r)) {
        // The jammer drowns out reception too.
        ++result.jammedLosses;
        continue;
      }
      energy_.recordReceive(d.receiver);
      const Message& m = actions[d.transmitter].message;
      trace_.record(TraceEvent{TraceEventType::kReceive, r, d.receiver,
                               d.transmitter, d.channel, m.kind});
      if (frRadio && frSampled)
        frRadio->record(frEvent(obs::FrType::kDelivery, r, d.receiver,
                                d.transmitter, d.channel, frKind(m.kind)));
      ++roundDeliveries;
      nodeOnReceive(d.receiver, m, r, d.channel);
    }

    // Post-round: retire freshly-done nodes, re-queue the rest. Only
    // active nodes can have changed state (sleepers neither act nor
    // receive), so scanning the active set is exhaustive.
    for (const NodeId v : active) {
      actions[v] = Action::sleep();
      if (failures_.isDead(v, r)) continue;
      if (!resolved[v] && nodeIsDone(v)) {
        resolved[v] = 1;
        --pending;
      }
      const Round nw = nodeNextWake(v, r);
      if (nw != kNoWake) {
        DSN_REQUIRE(nw > r, "nextWake must name a future round");
        wake.emplace(nw, v);
      }
    }

    if (frRound && frSampled)
      frRound->record(frEvent(
          obs::FrType::kRoundEnd, r, roundDeliveries,
          static_cast<std::uint32_t>(resolveWork), 0,
          static_cast<std::uint16_t>(
              std::min<std::size_t>(transmitters.size(), 65535))));
    profiler.endRound(active.size(), resolveWork);

    result.rounds = r + 1;
    ++r;
  }

  // Budget exhausted: mirror allDone(maxRounds), whose isDead(v, maxRounds)
  // excludes every death scheduled at or before the budget round.
  while (deathIdx < deaths.size() &&
         deaths[deathIdx].first <= config_.maxRounds) {
    const NodeId v = deaths[deathIdx].second;
    if (!resolved[v]) {
      resolved[v] = 1;
      --pending;
    }
    ++deathIdx;
  }
  result.completed = pending == 0;
  result.rounds = config_.maxRounds;
  profiler.flushTo(obs::globalMetrics());
  flushRunMetrics(result);
  return result;
}

}  // namespace dsn
