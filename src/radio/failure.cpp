#include "radio/failure.hpp"

#include "util/error.hpp"

namespace dsn {

void FailureModel::killAt(NodeId v, Round r) {
  DSN_REQUIRE(r >= 0, "death round must be non-negative");
  const auto it = deathRound_.find(v);
  if (it == deathRound_.end() || it->second > r) deathRound_[v] = r;
}

void FailureModel::setDropProbability(double p) {
  DSN_REQUIRE(p >= 0.0 && p <= 1.0, "drop probability must be in [0,1]");
  dropProb_ = p;
}

bool FailureModel::isDead(NodeId v, Round r) const {
  const auto it = deathRound_.find(v);
  return it != deathRound_.end() && r >= it->second;
}

bool FailureModel::dropsTransmission() {
  return rng_.chance(dropProb_);
}

}  // namespace dsn
