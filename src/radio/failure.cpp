#include "radio/failure.hpp"

#include <utility>

#include "util/error.hpp"

namespace dsn {

void FailureModel::scheduleDeath(NodeId v, Round r, bool crash) {
  DSN_REQUIRE(r >= 0, "death round must be non-negative");
  const auto it = deathRound_.find(v);
  if (it == deathRound_.end() || it->second > r) deathRound_[v] = r;
  if (crash) crashed_[v] = true;
}

void FailureModel::killAt(NodeId v, Round r) { scheduleDeath(v, r, false); }

void FailureModel::crashAt(NodeId v, Round r) { scheduleDeath(v, r, true); }

void FailureModel::setDropProbability(double p) {
  DSN_REQUIRE(p >= 0.0 && p <= 1.0, "drop probability must be in [0,1]");
  dropProb_ = p;
}

void FailureModel::setBurstModel(const BurstLossParams& params) {
  DSN_REQUIRE(params.pEnterBurst >= 0.0 && params.pEnterBurst <= 1.0,
              "burst enter probability must be in [0,1]");
  DSN_REQUIRE(params.pExitBurst > 0.0 && params.pExitBurst <= 1.0,
              "burst exit probability must be in (0,1]");
  DSN_REQUIRE(params.dropGood >= 0.0 && params.dropGood <= 1.0,
              "good-state drop probability must be in [0,1]");
  DSN_REQUIRE(params.dropBurst >= 0.0 && params.dropBurst <= 1.0,
              "burst-state drop probability must be in [0,1]");
  burst_ = params;
  inBurst_ = false;
}

void FailureModel::addJamZone(const JamZone& zone) {
  DSN_REQUIRE(zone.radius > 0.0, "jam zone radius must be positive");
  DSN_REQUIRE(zone.fromRound >= 0, "jam zone start round must be non-negative");
  DSN_REQUIRE(zone.toRound > zone.fromRound,
              "jam zone interval must be non-empty");
  zones_.push_back(zone);
}

void FailureModel::setPositions(std::vector<Point2D> positions) {
  positions_ = std::move(positions);
  hasPositions_ = true;
}

bool FailureModel::isDead(NodeId v, Round r) const {
  const auto it = deathRound_.find(v);
  return it != deathRound_.end() && r >= it->second;
}

bool FailureModel::isCrash(NodeId v) const {
  return crashed_.find(v) != crashed_.end();
}

bool FailureModel::isJammed(NodeId v, Round r) const {
  if (zones_.empty() || !hasPositions_ || v >= positions_.size()) return false;
  const Point2D& p = positions_[v];
  for (const JamZone& z : zones_) {
    if (z.activeAt(r) && z.covers(p)) return true;
  }
  return false;
}

bool FailureModel::dropsTransmission() {
  if (!burst_.active()) return rng_.chance(dropProb_);
  // Gilbert–Elliott: advance the chain, then draw the per-state coin.
  // Two draws per attempt, always, so the sequence is deterministic
  // regardless of which state transitions fire.
  const bool flip = rng_.chance(inBurst_ ? burst_.pExitBurst : burst_.pEnterBurst);
  if (flip) inBurst_ = !inBurst_;
  return rng_.chance(inBurst_ ? burst_.dropBurst : burst_.dropGood);
}

}  // namespace dsn
