// Per-round radio action of one node.
//
// Paper Section 3.1: "In each round, a node acts as either a transmitter
// or a receiver". We add explicit Sleep, which is how the energy claims
// (awake-round counts) are measured. With k channels a transmitter picks
// one channel; a listener is modeled as wide-band (hears every channel,
// collisions resolved per channel) — see DESIGN.md §4(5).
#pragma once

#include "radio/message.hpp"
#include "util/types.hpp"

namespace dsn {

/// Listen on all channels (wide-band receiver model).
inline constexpr Channel kAllChannels = std::numeric_limits<Channel>::max();

/// What one node does in one round.
struct Action {
  enum class Type : std::uint8_t { kSleep, kListen, kTransmit };

  Type type = Type::kSleep;
  /// Transmit: channel used. Listen: channel tuned (kAllChannels = all).
  Channel channel = 0;
  /// Valid only for kTransmit.
  Message message{};

  static Action sleep() { return Action{}; }

  static Action listen(Channel c = kAllChannels) {
    Action a;
    a.type = Type::kListen;
    a.channel = c;
    return a;
  }

  static Action transmit(const Message& m, Channel c = 0) {
    Action a;
    a.type = Type::kTransmit;
    a.channel = c;
    a.message = m;
    return a;
  }

  bool isAwake() const { return type != Type::kSleep; }
};

}  // namespace dsn
