// Sharded round execution (DESIGN.md §14).
//
// One round's phase-1 wake-ups and phase-2/3 collision-resolution are
// split across worker threads by spatial tile; everything order-sensitive
// (the global event trace, flight-recorder streams, the transient-loss
// RNG, result counters) is replayed on the coordinator at two per-round
// barriers in fixed global node order. The output is therefore
// bit-identical to runActiveSet at ANY thread count — including
// --threads 1, where the same tile code runs inline on the coordinator.
//
// Round structure (r = the executed round):
//   S0  coordinator: drain scheduled deaths, completion check, idle
//       fast-forward over the min of all tile heap tops.
//   S1  parallel per tile: pop this round's wakers (node-ascending per
//       tile), call onRound, meter energy, classify actions into a
//       per-tile op log. Transmit candidates speculatively enumerate the
//       destination tiles their neighborhood touches; the drop coin is
//       NOT drawn here.
//   B1  coordinator: k-way merge the tile op logs by node id — the
//       merged order equals the serial phase-1 order — recording
//       wake/jam/drop/transmit events and drawing each candidate's
//       dropsTransmission() coin exactly where runActiveSet would.
//   S2  parallel per tile: tally transmitting neighbors for the tile's
//       own members (per-tile scratch, localIndex-addressed), emit
//       deliveries/collisions in (listener, channel) order, run fused
//       phase 3 (energy, onReceive) for own members, and re-queue
//       wakers into the tile heap. Trace-worthy events are buffered.
//   B2  coordinator: merge collision then delivery buffers by
//       (listener, channel) — global sorted order, since tiles
//       partition the node ids — record them, fold counters.
//
// Why this is safe: workers touch disjoint per-node state (tiles
// partition nodes; onReceive targets are always own members), transmit
// actions are only read across tiles after the B1 barrier and are never
// reset mid-round (stale entries are invalidated by round stamps instead
// of writes), and every stateful shared object (trace, flight recorders,
// RNG, result, pending count) is coordinator-only.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "graph/tiling.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/timer.hpp"
#include "radio/simulator.hpp"
#include "util/error.hpp"

namespace dsn {

namespace {

obs::FrEvent frEvent(obs::FrType t, Round r, std::uint32_t node,
                     std::uint32_t data = 0, Channel channel = 0,
                     std::uint16_t aux = 0) {
  obs::FrEvent e;
  e.round = static_cast<std::uint32_t>(r);
  e.node = node;
  e.data = data;
  e.type = static_cast<std::uint8_t>(t);
  e.channel = static_cast<std::uint8_t>(channel);
  e.aux = aux;
  return e;
}

std::uint16_t frKind(MsgKind k) {
  return static_cast<std::uint16_t>(k);
}

void flushRunMetrics(const SimResult& r) {
  if (!obs::enabled()) return;
  auto& m = obs::globalMetrics();
  m.counter("sim.runs").increment();
  m.counter("sim.transmissions").increment(r.totalTransmissions);
  m.counter("sim.deliveries").increment(r.totalDeliveries);
  m.counter("sim.collisions").increment(r.totalCollisions);
  m.counter("sim.dropped_transmissions").increment(r.droppedTransmissions);
  m.counter("sim.jammed_losses").increment(r.jammedLosses);
  m.counter("sim.rounds").increment(static_cast<std::uint64_t>(r.rounds));
  m.histogram("sim.rounds_executed",
              obs::Histogram::exponentialBounds(20))
      .observe(static_cast<double>(r.rounds));
  if (!r.completed) m.counter("sim.budget_exhausted").increment();
}

/// What a popped-awake node did in phase 1 (per-tile op log entry).
enum class P1Kind : std::uint8_t {
  kSlept,       ///< onRound returned sleep
  kListened,    ///< listening; stamp + energy already applied in S1
  kTxCandidate, ///< wants to transmit; drop coin pending (B1)
  kTxJammed,    ///< transmit smothered by a jam zone (decided in S1)
};

struct P1Op {
  NodeId v = kInvalidNode;
  P1Kind kind = P1Kind::kSlept;
};

}  // namespace

class ShardEngine : public SimEngine {
 public:
  explicit ShardEngine(RadioSimulator& sim) : SimEngine(sim) { init(); }
  ~ShardEngine() override { stopWorkers(); }

  void advanceTo(Round stop) override;
  void resync() override;
  void finish() override;

 private:
  using WakeEntry = std::pair<Round, NodeId>;

  /// All mutable per-tile state. Buffers reach a high-water capacity and
  /// are then reused: steady-state rounds allocate nothing.
  struct Tile {
    // Min-heap over (wake round, node); std::greater pops ascending.
    std::vector<WakeEntry> heap;
    // This round's outputs (S1).
    std::size_t popped = 0;            ///< incl. dead pops (RoundBegin)
    std::vector<NodeId> active;        ///< alive pops, node-ascending
    std::vector<P1Op> ops;             ///< op log, node-ascending
    std::vector<std::pair<std::uint32_t, NodeId>> outbox;  ///< (tile, tx)
    std::uint64_t txSeq = 0;           ///< destSeen stamp source
    std::vector<std::uint64_t> destSeen;
    // This round's outputs (S2).
    std::vector<CollisionSite> collisions;  ///< (listener, ch) ascending
    std::vector<Delivery> rx;               ///< performed deliveries
    std::size_t deliveriesEmitted = 0;
    std::size_t collisionsEmitted = 0;
    std::size_t jammedRx = 0;
    std::uint32_t performedRx = 0;
    std::size_t newlyResolved = 0;
    // Tally scratch, localIndex-addressed (maxTileSize * channels).
    std::vector<std::uint32_t> count;
    std::vector<NodeId> unique;
    std::vector<std::uint32_t> touched;
    std::vector<std::uint8_t> touchedFlag;
  };

  void init();
  void rebuildTiles();
  void seed(Round from);
  void tileS1(Tile& t, Round r);
  void tileS2(std::uint32_t ti, Round r);
  void runPhase(int kind, Round r, bool parallel);
  void workerLoop();
  void claimTiles(Round roundHint);
  void stopWorkers();

  /// Merges the per-tile `recs` streams — each sorted by `key`, keys
  /// globally unique across tiles — calling `emit(rec)` in ascending key
  /// order. Uses the persistent heads_ buffer; allocation-free once warm.
  template <typename Rec, typename KeyFn, typename EmitFn>
  void mergeTileStreams(std::vector<Rec> Tile::* recs, KeyFn key,
                        EmitFn emit);

  TilePartition tiles_;
  Channel k_ = 1;
  std::vector<Tile> tile_;
  std::vector<Action> actions_;
  std::vector<Round> listenStamp_;  ///< round v last chose kListen
  std::vector<Round> dropStamp_;    ///< round v's transmit was dropped
  std::vector<std::uint8_t> resolved_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> heads_;
  std::vector<std::size_t> cursors_;
  std::size_t pending_ = 0;
  std::vector<std::pair<Round, NodeId>> deaths_;
  std::size_t deathIdx_ = 0;
  // Serial-vs-parallel is decided from the PREVIOUS round's pop count —
  // an output-invariant signal (both paths run the identical tile code).
  std::size_t prevPopped_ = 0;

  // Flight-recorder categories + profiler, coordinator-only (workers
  // never record; order-sensitive streams are replayed at the barriers).
  obs::FlightRecorder* frRound_ = nullptr;
  obs::FlightRecorder* frSched_ = nullptr;
  obs::FlightRecorder* frRadio_ = nullptr;
  obs::FlightRecorder* frColl_ = nullptr;
  obs::FlightRecorder* frFault_ = nullptr;
  const obs::FlightRecorder* frAny_ = nullptr;
  obs::RoundProfiler profiler_;

  // Worker pool. Claims are serialized through nextTile_: a worker reads
  // phaseKind_/round_ only after a successful claim, so a straggler from
  // the previous phase that steals a fresh claim still executes it as the
  // *current* phase (the acquire on nextTile_ orders the reads).
  // Phase hand-off spins briefly then parks on a condition variable —
  // pure spin-yield starves the coordinator when threads outnumber
  // cores (worst case: CI runners and the oversubscribed --threads 8
  // differential tests).
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<std::uint32_t> nextTile_{~0u};
  std::atomic<std::uint32_t> doneTiles_{0};
  std::atomic<int> phaseKind_{0};  ///< 1 = S1, 2 = S2, -1 = exit
  std::atomic<Round> round_{0};
  std::mutex phaseMutex_;
  std::condition_variable phaseCv_;  ///< workers: a new gen_ was published
  std::condition_variable doneCv_;   ///< coordinator: all tiles finished
  std::once_flag errorOnce_;
  std::exception_ptr error_;
};

void ShardEngine::tileS1(Tile& t, Round r) {
  t.popped = 0;
  t.active.clear();
  t.ops.clear();
  t.outbox.clear();
  const auto& failures = sim_.failures_;
  const CsrView& csr = sim_.graph_.csrView();
  while (!t.heap.empty() && t.heap.front().first == r) {
    std::pop_heap(t.heap.begin(), t.heap.end(), std::greater<WakeEntry>{});
    const NodeId v = t.heap.back().second;
    t.heap.pop_back();
    ++t.popped;
    if (failures.isDead(v, r)) continue;  // dead: dropped, never re-queued
    t.active.push_back(v);
    const Action a = sim_.nodeOnRound(v, r);
    if (a.type == Action::Type::kTransmit) {
      sim_.energy_.recordTransmit(v);
      DSN_REQUIRE(a.channel < k_, "transmit channel out of range");
      actions_[v] = a;
      if (failures.isJammed(v, r)) {
        t.ops.push_back(P1Op{v, P1Kind::kTxJammed});
        continue;
      }
      t.ops.push_back(P1Op{v, P1Kind::kTxCandidate});
      // Speculative routing: which tiles does this transmission touch?
      // Exact (derived from the actual neighbor list, not geometry), so
      // any partition is correct; a dropped candidate is filtered in S2
      // via dropStamp_.
      const std::uint64_t seq = ++t.txSeq;
      for (const NodeId w : csr.neighbors(v)) {
        const std::uint32_t dt = tiles_.tileOf(w);
        if (t.destSeen[dt] != seq) {
          t.destSeen[dt] = seq;
          t.outbox.emplace_back(dt, v);
        }
      }
    } else if (a.type == Action::Type::kListen) {
      sim_.energy_.recordListen(v);
      DSN_REQUIRE(a.channel == kAllChannels || a.channel < k_,
                  "listen channel out of range");
      actions_[v] = a;
      listenStamp_[v] = r;
      t.ops.push_back(P1Op{v, P1Kind::kListened});
    } else {
      t.ops.push_back(P1Op{v, P1Kind::kSlept});
    }
  }
}

void ShardEngine::tileS2(std::uint32_t ti, Round r) {
  Tile& t = tile_[ti];
  t.collisions.clear();
  t.rx.clear();
  t.deliveriesEmitted = 0;
  t.collisionsEmitted = 0;
  t.jammedRx = 0;
  t.performedRx = 0;
  t.newlyResolved = 0;
  const auto& failures = sim_.failures_;
  const CsrView& csr = sim_.graph_.csrView();
  const Channel k = k_;

  // Tally transmitting neighbors into the tile-local scratch. Sources
  // live anywhere; only arcs landing on this tile's members count.
  for (const Tile& src : tile_) {
    for (const auto& [dt, u] : src.outbox) {
      if (dt != ti) continue;
      if (dropStamp_[u] == r) continue;  // coin came up lost (B1)
      const Channel c = actions_[u].channel;
      for (const NodeId w : csr.neighbors(u)) {
        if (tiles_.tileOf(w) != ti) continue;
        const std::uint32_t li = tiles_.localIndex(w);
        const std::size_t idx = static_cast<std::size_t>(li) * k + c;
        if (t.count[idx]++ == 0) t.unique[idx] = u;
        if (!t.touchedFlag[li]) {
          t.touchedFlag[li] = 1;
          t.touched.push_back(li);
        }
      }
    }
  }

  // Emit in (listener, channel) order within the tile; localIndex is
  // node-ascending, so sorting local indices sorts by node id.
  std::sort(t.touched.begin(), t.touched.end());
  const TilePartition::Span members = tiles_.members(ti);
  for (const std::uint32_t li : t.touched) {
    const NodeId w = members.first[li];
    if (listenStamp_[w] == r) {
      const Action& act = actions_[w];
      const Channel lo = act.channel == kAllChannels ? 0 : act.channel;
      const Channel hi =
          act.channel == kAllChannels ? k : act.channel + 1;
      for (Channel c = lo; c < hi; ++c) {
        const std::size_t idx = static_cast<std::size_t>(li) * k + c;
        const std::uint32_t n = t.count[idx];
        if (n == 1) {
          ++t.deliveriesEmitted;
          // Fused phase 3: the receiver is ours, deliver now. The
          // cross-tile reads (transmitter action/message) are stable —
          // nothing writes actions_ between the B1 barrier and B2.
          if (!failures.isDead(w, r)) {
            if (failures.isJammed(w, r)) {
              ++t.jammedRx;  // the jammer drowns out reception too
            } else {
              const NodeId u = t.unique[idx];
              sim_.energy_.recordReceive(w);
              t.rx.push_back(Delivery{w, u, c});
              ++t.performedRx;
              sim_.nodeOnReceive(w, actions_[u].message, r, c);
            }
          }
        } else if (n > 1) {
          ++t.collisionsEmitted;
          t.collisions.push_back(CollisionSite{w, c});
        }
      }
    }
    t.touchedFlag[li] = 0;
    for (Channel c = 0; c < k; ++c)
      t.count[static_cast<std::size_t>(li) * k + c] = 0;
  }
  t.touched.clear();

  // Post-round: retire freshly-done members, re-queue the rest into the
  // tile heap. Identical to the serial post-round scan over `active`.
  for (const NodeId v : t.active) {
    if (failures.isDead(v, r)) continue;
    if (!resolved_[v] && sim_.nodeIsDone(v)) {
      resolved_[v] = 1;
      ++t.newlyResolved;
    }
    const Round nw = sim_.nodeNextWake(v, r);
    if (nw != kNoWake) {
      DSN_REQUIRE(nw > r, "nextWake must name a future round");
      t.heap.emplace_back(nw, v);
      std::push_heap(t.heap.begin(), t.heap.end(),
                     std::greater<WakeEntry>{});
    }
  }
}

void ShardEngine::claimTiles(Round roundHint) {
  (void)roundHint;
  const std::uint32_t tileCount = tiles_.tileCount();
  for (;;) {
    const std::uint32_t i = nextTile_.fetch_add(1, std::memory_order_acq_rel);
    if (i >= tileCount) return;
    // Read the phase descriptor AFTER the claim: the acquire above orders
    // these loads against the coordinator's phase publication, so even a
    // straggler that raced into a fresh phase executes it correctly.
    const int kind = phaseKind_.load(std::memory_order_relaxed);
    const Round r = round_.load(std::memory_order_relaxed);
    try {
      if (kind == 1)
        tileS1(tile_[i], r);
      else
        tileS2(i, r);
    } catch (...) {
      std::call_once(errorOnce_, [&] { error_ = std::current_exception(); });
    }
    const std::uint32_t done =
        doneTiles_.fetch_add(1, std::memory_order_release) + 1;
    if (done == tileCount) {
      // Hand-off fence: taking the mutex (even empty) guarantees a
      // coordinator that checked the predicate and decided to sleep has
      // reached the wait before this notify.
      { std::lock_guard<std::mutex> lock(phaseMutex_); }
      doneCv_.notify_one();
    }
  }
}

void ShardEngine::workerLoop() {
  // Baseline generation is pinned to the spawn-time value (0), NOT a
  // fresh load: on a loaded box this thread may first run after the
  // coordinator has already published phases — or stopWorkers — and a
  // late load would adopt that generation as "already seen", parking
  // forever while the coordinator blocks in join().
  std::uint64_t seen = 0;
  for (;;) {
    // Brief spin for the common phase-to-phase latency, then park: a
    // sleeping worker costs one futex wake per phase, a spinning one
    // costs a core the coordinator may need.
    std::uint64_t g = seen;
    for (int spins = 0; spins < 512; ++spins) {
      g = gen_.load(std::memory_order_acquire);
      if (g != seen) break;
    }
    if (g == seen) {
      std::unique_lock<std::mutex> lock(phaseMutex_);
      phaseCv_.wait(lock, [&] {
        return gen_.load(std::memory_order_acquire) != seen;
      });
      g = gen_.load(std::memory_order_acquire);
    }
    seen = g;
    if (phaseKind_.load(std::memory_order_acquire) < 0) return;
    claimTiles(round_.load(std::memory_order_relaxed));
  }
}

void ShardEngine::runPhase(int kind, Round r, bool parallel) {
  const std::uint32_t tileCount = tiles_.tileCount();
  if (!parallel || workers_.empty()) {
    for (std::uint32_t i = 0; i < tileCount; ++i) {
      if (kind == 1)
        tileS1(tile_[i], r);
      else
        tileS2(i, r);
    }
    return;
  }
  round_.store(r, std::memory_order_relaxed);
  phaseKind_.store(kind, std::memory_order_relaxed);
  doneTiles_.store(0, std::memory_order_relaxed);
  nextTile_.store(0, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(phaseMutex_);
    gen_.fetch_add(1, std::memory_order_release);
  }
  phaseCv_.notify_all();
  claimTiles(r);  // the coordinator is also a worker
  if (doneTiles_.load(std::memory_order_acquire) < tileCount) {
    std::unique_lock<std::mutex> lock(phaseMutex_);
    doneCv_.wait(lock, [&] {
      return doneTiles_.load(std::memory_order_acquire) >= tileCount;
    });
  }
  if (error_) {
    stopWorkers();
    std::rethrow_exception(error_);
  }
}

void ShardEngine::stopWorkers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(phaseMutex_);
    phaseKind_.store(-1, std::memory_order_release);
    gen_.fetch_add(1, std::memory_order_release);
  }
  phaseCv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

template <typename Rec, typename KeyFn, typename EmitFn>
void ShardEngine::mergeTileStreams(std::vector<Rec> Tile::* recs, KeyFn key,
                                   EmitFn emit) {
  heads_.clear();
  cursors_.assign(tile_.size(), 0);
  for (std::uint32_t ti = 0; ti < tile_.size(); ++ti) {
    const auto& stream = tile_[ti].*recs;
    if (!stream.empty()) heads_.emplace_back(key(stream.front()), ti);
  }
  std::make_heap(heads_.begin(), heads_.end(),
                 std::greater<std::pair<std::uint64_t, std::uint32_t>>{});
  while (!heads_.empty()) {
    std::pop_heap(heads_.begin(), heads_.end(),
                  std::greater<std::pair<std::uint64_t, std::uint32_t>>{});
    const std::uint32_t ti = heads_.back().second;
    heads_.pop_back();
    const auto& stream = tile_[ti].*recs;
    emit(stream[cursors_[ti]]);
    if (++cursors_[ti] < stream.size()) {
      heads_.emplace_back(key(stream[cursors_[ti]]), ti);
      std::push_heap(heads_.begin(), heads_.end(),
                     std::greater<std::pair<std::uint64_t, std::uint32_t>>{});
    }
  }
}

void ShardEngine::rebuildTiles() {
  const std::size_t n = sim_.graph_.size();
  const SimConfig& cfg = sim_.config_;

  // Tile partition: a pure function of topology inputs, NEVER of the
  // thread count — the per-tile buffers and their merge order must be
  // the same object at --threads 1 and --threads 64.
  const std::uint32_t target = cfg.tileTarget != 0 ? cfg.tileTarget : 64;
  if (cfg.nodePositions != nullptr && cfg.nodePositions->size() >= n &&
      cfg.tileMinEdge > 0.0 && n > 0) {
    tiles_ = TilePartition::spatial(*cfg.nodePositions, cfg.tileMinEdge,
                                    target);
  } else {
    tiles_ = TilePartition::blocked(n, target);
  }
  const std::uint32_t tileCount = tiles_.tileCount();

  actions_.assign(n, Action::sleep());
  listenStamp_.assign(n, Round{-1});
  dropStamp_.assign(n, Round{-1});
  resolved_.assign(n, 0);
  tile_.assign(tileCount, Tile{});
  for (Tile& t : tile_) {
    t.destSeen.assign(tileCount, 0);
    t.count.assign(static_cast<std::size_t>(tiles_.maxTileSize()) * k_, 0);
    t.unique.resize(t.count.size());
    t.touchedFlag.assign(tiles_.maxTileSize(), 0);
    t.touched.reserve(tiles_.maxTileSize());
  }
  heads_.reserve(tileCount);
  cursors_.assign(tileCount, 0);
}

void ShardEngine::seed(Round from) {
  RadioSimulator& sim = sim_;
  const std::size_t n = sim.graph_.size();

  // Seed the per-tile wake heaps + the pending count (same walk as the
  // serial scheduler, split by tileOf). Nodes already dead at the seed
  // round are quiesced: resolved, never queued.
  pending_ = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!sim.nodePresent(v) || !sim.graph_.isAlive(v)) {
      resolved_[v] = 1;
      continue;
    }
    if (sim.failures_.isDead(v, from)) {
      resolved_[v] = 1;
      continue;
    }
    if (sim.nodeIsDone(v)) {
      resolved_[v] = 1;
    } else {
      ++pending_;
    }
    const Round nw = sim.nodeNextWake(v, from - 1);
    if (nw != kNoWake) {
      DSN_REQUIRE(nw >= from, "nextWake must not name a past round");
      Tile& t = tile_[tiles_.tileOf(v)];
      t.heap.emplace_back(nw, v);
      std::push_heap(t.heap.begin(), t.heap.end(),
                     std::greater<WakeEntry>{});
    }
  }

  deaths_.clear();
  for (const auto& [v, dr] : sim.failures_.deathSchedule()) {
    if (v < n && dr > from && sim.nodePresent(v) && sim.graph_.isAlive(v)) {
      deaths_.emplace_back(dr, v);
    }
  }
  std::sort(deaths_.begin(), deaths_.end());
  deathIdx_ = 0;
}

void ShardEngine::init() {
  const SimConfig& cfg = sim_.config_;
  k_ = cfg.channelCount;
  // Build the CSR snapshot before any worker thread can race the
  // double-checked cache.
  sim_.graph_.csrView();
  rebuildTiles();

  frRound_ = obs::recorderFor<obs::kFrCatRound>();
  frSched_ = obs::recorderFor<obs::kFrCatSched>();
  frRadio_ = obs::recorderFor<obs::kFrCatRadio>();
  frColl_ = obs::recorderFor<obs::kFrCatCollision>();
  frFault_ = obs::recorderFor<obs::kFrCatFault>();
  frAny_ = frRound_   ? frRound_
           : frSched_ ? frSched_
           : frRadio_ ? frRadio_
           : frColl_  ? frColl_
                      : frFault_;

  seed(0);
  prevPopped_ = sim_.graph_.size();

  // Spin up the pool. threads counts the coordinator; tiny runs and
  // --threads 1 never pay for it. The pool persists across segments and
  // is parked between phases, so resync() can mutate tile state freely.
  const int extra = std::min(cfg.threads, 256) - 1;
  if (extra > 0 && tiles_.tileCount() > 1) {
    gen_.store(0, std::memory_order_relaxed);  // workers baseline seen = 0
    phaseKind_.store(0, std::memory_order_relaxed);
    workers_.reserve(static_cast<std::size_t>(extra));
    for (int i = 0; i < extra; ++i)
      workers_.emplace_back([this] { workerLoop(); });
  }
}

void ShardEngine::resync() {
  // Workers are parked between phases; only the coordinator runs here.
  // The tile partition is a pure function of the (possibly moved or
  // grown) positions, so it is rebuilt wholesale along with every
  // per-tile buffer, then re-seeded at the paused cursor.
  rebuildTiles();
  seed(cursor_);
  prevPopped_ = sim_.graph_.size();
}

void ShardEngine::finish() {
  stopWorkers();
  profiler_.flushTo(obs::globalMetrics());
  flushRunMetrics(result_);
}

void ShardEngine::advanceTo(Round stop) {
  RadioSimulator& sim = sim_;
  SimResult& result = result_;
  const CsrView& csr = sim.graph_.csrView();
  const SimConfig& cfg = sim.config_;
  const bool hasLoss = sim.failures_.hasTransientLoss();

  Round r = cursor_;
  while (r < stop) {
    // S0: deaths, completion, idle fast-forward.
    while (deathIdx_ < deaths_.size() && deaths_[deathIdx_].first <= r) {
      const NodeId v = deaths_[deathIdx_].second;
      if (!resolved_[v]) {
        resolved_[v] = 1;
        --pending_;
      }
      if (frFault_)  // deaths are rare: recorded regardless of sampling
        frFault_->record(
            frEvent(obs::FrType::kNodeDeath, deaths_[deathIdx_].first, v));
      ++deathIdx_;
    }
    if (pending_ == 0) {
      result.completed = true;
      result.rounds = r;
      cursor_ = r;
      done_ = true;
      return;
    }
    Round nextEvent = cfg.maxRounds;
    for (const Tile& t : tile_) {
      if (!t.heap.empty())
        nextEvent = std::min(nextEvent, t.heap.front().first);
    }
    if (deathIdx_ < deaths_.size())
      nextEvent = std::min(nextEvent, deaths_[deathIdx_].first);
    if (nextEvent > r) {
      nextEvent = std::min(nextEvent, stop);
      if (frSched_ && frSched_->roundSampled(r))
        frSched_->record(frEvent(obs::FrType::kIdleSkip, r, 0,
                                 static_cast<std::uint32_t>(nextEvent)));
      result.rounds = nextEvent;
      r = nextEvent;
      cursor_ = r;
      continue;
    }

    const bool frSampled = frAny_ != nullptr && frAny_->roundSampled(r);
    profiler_.beginRound();
    const bool parallel = prevPopped_ >= cfg.shardSerialThreshold;

    // S1: phase 1 per tile.
    runPhase(1, r, parallel);

    // B1: replay the op logs in global node order — wake events, jam and
    // drop accounting (the ONLY consumer of the shared RNG), transmit
    // confirmation.
    std::size_t poppedTotal = 0;
    for (const Tile& t : tile_) poppedTotal += t.popped;
    prevPopped_ = poppedTotal;
    if (frRound_ && frSampled)
      frRound_->record(frEvent(obs::FrType::kRoundBegin, r, 0,
                               static_cast<std::uint32_t>(poppedTotal)));
    std::size_t confirmedTx = 0;
    std::uint64_t resolveWork = 0;
    const bool needWork = profiler_.active() || (frRound_ && frSampled);
    mergeTileStreams(
        &Tile::ops,
        [](const P1Op& op) { return static_cast<std::uint64_t>(op.v); },
        [&](const P1Op& op) {
          const NodeId v = op.v;
          if (frSched_ && frSampled)
            frSched_->record(frEvent(obs::FrType::kWakePop, r, v));
          switch (op.kind) {
            case P1Kind::kTxJammed:
              ++result.jammedLosses;
              sim.trace_.record(TraceEvent{TraceEventType::kJammedTransmit,
                                           r, v, kInvalidNode,
                                           actions_[v].channel,
                                           actions_[v].message.kind});
              if (frFault_ && frSampled)
                frFault_->record(frEvent(obs::FrType::kJammedTransmit, r, v,
                                         0, actions_[v].channel,
                                         frKind(actions_[v].message.kind)));
              break;
            case P1Kind::kTxCandidate:
              if (hasLoss && sim.failures_.dropsTransmission()) {
                ++result.droppedTransmissions;
                dropStamp_[v] = r;
                sim.trace_.record(
                    TraceEvent{TraceEventType::kDroppedTransmit, r, v,
                               kInvalidNode, actions_[v].channel,
                               actions_[v].message.kind});
                if (frFault_ && frSampled)
                  frFault_->record(
                      frEvent(obs::FrType::kDroppedTransmit, r, v, 0,
                              actions_[v].channel,
                              frKind(actions_[v].message.kind)));
              } else {
                ++confirmedTx;
                if (needWork) resolveWork += csr.degree(v);
                sim.trace_.record(TraceEvent{TraceEventType::kTransmit, r,
                                             v, kInvalidNode,
                                             actions_[v].channel,
                                             actions_[v].message.kind});
                if (frRadio_ && frSampled)
                  frRadio_->record(
                      frEvent(obs::FrType::kTransmit, r, v, 0,
                              actions_[v].channel,
                              frKind(actions_[v].message.kind)));
              }
              break;
            case P1Kind::kListened:
            case P1Kind::kSlept:
              break;
          }
        });

    // S2: resolve + deliver + post-round per tile.
    runPhase(2, r, parallel);

    // B2: record collisions then deliveries in global (listener, channel)
    // order — the exact emission order of resolveRoundActive — and fold
    // the per-tile counters.
    mergeTileStreams(
        &Tile::collisions,
        [this](const CollisionSite& s) {
          return static_cast<std::uint64_t>(s.listener) * k_ + s.channel;
        },
        [&](const CollisionSite& site) {
          sim.trace_.record(TraceEvent{TraceEventType::kCollision, r,
                                       site.listener, kInvalidNode,
                                       site.channel, MsgKind::kData});
          if (frColl_ && frSampled)
            frColl_->record(frEvent(obs::FrType::kCollision, r,
                                    site.listener, 0, site.channel));
        });
    mergeTileStreams(
        &Tile::rx,
        [this](const Delivery& d) {
          return static_cast<std::uint64_t>(d.receiver) * k_ + d.channel;
        },
        [&](const Delivery& d) {
          const Message& m = actions_[d.transmitter].message;
          sim.trace_.record(TraceEvent{TraceEventType::kReceive, r,
                                       d.receiver, d.transmitter, d.channel,
                                       m.kind});
          if (frRadio_ && frSampled)
            frRadio_->record(frEvent(obs::FrType::kDelivery, r, d.receiver,
                                     d.transmitter, d.channel,
                                     frKind(m.kind)));
        });

    std::uint32_t roundDeliveries = 0;
    for (const Tile& t : tile_) {
      result.totalDeliveries += t.deliveriesEmitted;
      result.totalCollisions += t.collisionsEmitted;
      result.jammedLosses += t.jammedRx;
      roundDeliveries += t.performedRx;
      pending_ -= t.newlyResolved;
    }
    result.totalTransmissions += confirmedTx;

    if (frRound_ && frSampled)
      frRound_->record(frEvent(
          obs::FrType::kRoundEnd, r, roundDeliveries,
          static_cast<std::uint32_t>(resolveWork), 0,
          static_cast<std::uint16_t>(
              std::min<std::size_t>(confirmedTx, 65535))));
    profiler_.endRound(poppedTotal, resolveWork);

    result.rounds = r + 1;
    ++r;
    cursor_ = r;
  }

  if (stop < cfg.maxRounds) return;  // paused at a segment boundary

  // Budget exhausted: mirror allDone(maxRounds), whose isDead excludes
  // every death scheduled at or before the budget round.
  while (deathIdx_ < deaths_.size() &&
         deaths_[deathIdx_].first <= cfg.maxRounds) {
    const NodeId v = deaths_[deathIdx_].second;
    if (!resolved_[v]) {
      resolved_[v] = 1;
      --pending_;
    }
    ++deathIdx_;
  }
  result.completed = pending_ == 0;
  result.rounds = cfg.maxRounds;
  done_ = true;
}

std::unique_ptr<SimEngine> makeShardEngine(RadioSimulator& sim) {
  return std::make_unique<ShardEngine>(sim);
}

}  // namespace dsn
