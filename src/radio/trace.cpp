#include "radio/trace.hpp"

#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace dsn {

namespace {

const char* typeName(TraceEventType t) {
  switch (t) {
    case TraceEventType::kTransmit:
      return "transmit";
    case TraceEventType::kReceive:
      return "receive";
    case TraceEventType::kCollision:
      return "collision";
    case TraceEventType::kNodeDeath:
      return "node_death";
    case TraceEventType::kDroppedTransmit:
      return "dropped_transmit";
    case TraceEventType::kJammedTransmit:
      return "jammed_transmit";
  }
  return "?";
}

const char* kindName(MsgKind k) {
  switch (k) {
    case MsgKind::kData:
      return "data";
    case MsgKind::kToken:
      return "token";
    case MsgKind::kControl:
      return "control";
    case MsgKind::kNack:
      return "nack";
  }
  return "?";
}

}  // namespace

void Trace::record(const TraceEvent& e) {
  if (!enabled()) return;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

std::size_t Trace::countOf(TraceEventType t) const {
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.type == t) ++n;
  return n;
}

std::string Trace::describe(const TraceEvent& e) {
  std::ostringstream os;
  os << "r" << e.round << " ";
  switch (e.type) {
    case TraceEventType::kTransmit:
      os << "TX   node=" << e.node << " ch=" << e.channel;
      break;
    case TraceEventType::kReceive:
      os << "RX   node=" << e.node << " from=" << e.peer
         << " ch=" << e.channel;
      break;
    case TraceEventType::kCollision:
      os << "COLL node=" << e.node << " ch=" << e.channel;
      break;
    case TraceEventType::kNodeDeath:
      os << "DIE  node=" << e.node;
      break;
    case TraceEventType::kDroppedTransmit:
      os << "DROP node=" << e.node << " ch=" << e.channel;
      break;
    case TraceEventType::kJammedTransmit:
      os << "JAM  node=" << e.node << " ch=" << e.channel;
      break;
  }
  return os.str();
}

std::string traceEventJson(const TraceEvent& e) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("type", typeName(e.type));
  w.kv("round", static_cast<std::int64_t>(e.round));
  w.kv("node", static_cast<std::uint64_t>(e.node));
  if (e.peer == kInvalidNode) {
    w.key("peer").null();
  } else {
    w.kv("peer", static_cast<std::uint64_t>(e.peer));
  }
  w.kv("channel", static_cast<std::uint64_t>(e.channel));
  w.kv("kind", kindName(e.msgKind));
  w.endObject();
  return w.str();
}

void writeTraceJsonl(std::ostream& os,
                     const std::vector<TraceEvent>& events) {
  for (const auto& e : events) os << traceEventJson(e) << '\n';
}

void Trace::writeJsonl(std::ostream& os) const {
  writeTraceJsonl(os, events_);
}

}  // namespace dsn
