#include "radio/trace.hpp"

#include <sstream>

namespace dsn {

void Trace::record(const TraceEvent& e) {
  if (!enabled()) return;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

std::size_t Trace::countOf(TraceEventType t) const {
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.type == t) ++n;
  return n;
}

std::string Trace::describe(const TraceEvent& e) {
  std::ostringstream os;
  os << "r" << e.round << " ";
  switch (e.type) {
    case TraceEventType::kTransmit:
      os << "TX   node=" << e.node << " ch=" << e.channel;
      break;
    case TraceEventType::kReceive:
      os << "RX   node=" << e.node << " from=" << e.peer
         << " ch=" << e.channel;
      break;
    case TraceEventType::kCollision:
      os << "COLL node=" << e.node << " ch=" << e.channel;
      break;
    case TraceEventType::kNodeDeath:
      os << "DIE  node=" << e.node;
      break;
    case TraceEventType::kDroppedTransmit:
      os << "DROP node=" << e.node << " ch=" << e.channel;
      break;
  }
  return os.str();
}

}  // namespace dsn
