// Failure injection for robustness experiments (paper §3.3 "Robustness").
//
// Two orthogonal mechanisms:
//   * scheduled death — a node stops participating entirely from a given
//     round (battery exhaustion / crash);
//   * relay-drop probability — each transmission independently fails to
//     go on air with probability p (transient radio fault). The node
//     still spends the energy (it believes it transmitted).
#pragma once

#include <unordered_map>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace dsn {

/// Deterministic-given-seed failure model shared by a simulation run.
class FailureModel {
 public:
  FailureModel() = default;
  explicit FailureModel(std::uint64_t seed) : rng_(seed) {}

  /// Node `v` is dead from round `r` (inclusive) onward.
  void killAt(NodeId v, Round r);

  /// Every transmission is silently dropped with probability `p` in
  /// [0, 1].
  void setDropProbability(double p);
  double dropProbability() const { return dropProb_; }

  bool isDead(NodeId v, Round r) const;

  /// Draws the transient-fault coin for one transmission. Stateful (each
  /// call advances the RNG); call exactly once per transmission attempt.
  bool dropsTransmission();

  bool hasScheduledDeaths() const { return !deathRound_.empty(); }

 private:
  std::unordered_map<NodeId, Round> deathRound_;
  double dropProb_ = 0.0;
  Rng rng_{0xFA11FA11u};
};

}  // namespace dsn
