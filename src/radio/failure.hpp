// Failure injection for robustness experiments (paper §3.3 "Robustness").
//
// Four orthogonal mechanisms:
//   * scheduled death — a node stops participating entirely from a given
//     round (battery exhaustion); crashAt() additionally marks the death
//     as *uncooperative* so structure-level recovery can distinguish a
//     crash from a clean node-move-out;
//   * relay-drop probability — each transmission independently fails to
//     go on air with probability p (transient radio fault). The node
//     still spends the energy (it believes it transmitted);
//   * Gilbert–Elliott bursty loss — a two-state Markov channel (good /
//     burst) advanced once per transmission attempt, with a per-state
//     drop probability, so losses cluster the way real interference does
//     instead of arriving i.i.d.;
//   * spatial jamming — disk-shaped zones inside which every transmission
//     (and every reception) is lost for a round interval. Requires node
//     positions to be supplied via setPositions().
#pragma once

#include <limits>
#include <unordered_map>
#include <vector>

#include "util/geometry.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dsn {

/// Gilbert–Elliott two-state loss channel. Inactive (pure i.i.d. mode)
/// while `pEnterBurst` is 0.
struct BurstLossParams {
  /// Good -> burst transition probability per transmission attempt.
  double pEnterBurst = 0.0;
  /// Burst -> good transition probability per transmission attempt.
  double pExitBurst = 1.0;
  /// Drop probability while in the good state.
  double dropGood = 0.0;
  /// Drop probability while in the burst state.
  double dropBurst = 1.0;

  bool active() const { return pEnterBurst > 0.0; }
};

/// Disk-shaped jamming zone active over the round interval
/// [fromRound, toRound).
struct JamZone {
  Point2D center{};
  double radius = 0.0;
  Round fromRound = 0;
  Round toRound = std::numeric_limits<Round>::max();

  bool activeAt(Round r) const { return r >= fromRound && r < toRound; }
  bool covers(const Point2D& p) const {
    return squaredDistance(center, p) <= radius * radius;
  }
};

/// Deterministic-given-seed failure model shared by a simulation run.
class FailureModel {
 public:
  FailureModel() = default;
  explicit FailureModel(std::uint64_t seed) : rng_(seed) {}

  /// Node `v` is dead from round `r` (inclusive) onward. Repeated calls
  /// keep the earliest scheduled round.
  void killAt(NodeId v, Round r);

  /// Like killAt, but the death is an uncooperative *crash*: the node
  /// never announces its departure, so any structure that references it
  /// goes stale until a recovery pass prunes it.
  void crashAt(NodeId v, Round r);

  /// Every transmission is silently dropped with probability `p` in
  /// [0, 1].
  void setDropProbability(double p);
  double dropProbability() const { return dropProb_; }

  /// Installs a Gilbert–Elliott bursty-loss channel. While active it
  /// replaces the i.i.d. drop coin entirely.
  void setBurstModel(const BurstLossParams& params);
  const BurstLossParams& burstModel() const { return burst_; }

  /// Registers a jamming zone. Jamming only takes effect once node
  /// positions are known (setPositions).
  void addJamZone(const JamZone& zone);
  const std::vector<JamZone>& jamZones() const { return zones_; }

  /// Supplies node positions (indexed by node id) for spatial jamming.
  /// Ids at or beyond the vector are treated as unjammable.
  void setPositions(std::vector<Point2D> positions);

  bool isDead(NodeId v, Round r) const;

  /// True when the uncooperative-crash flavour of death was scheduled
  /// for `v` (regardless of round).
  bool isCrash(NodeId v) const;

  /// Node `v` sits inside an active jamming zone in round `r`.
  bool isJammed(NodeId v, Round r) const;

  /// Draws the transient-fault coin for one transmission. Stateful (each
  /// call advances the RNG — and the burst chain when one is configured);
  /// call exactly once per transmission attempt.
  bool dropsTransmission();

  bool hasScheduledDeaths() const { return !deathRound_.empty(); }

  /// Scheduled death rounds (earliest per node). The active-set simulator
  /// turns these into a sorted event list so node deaths update its
  /// pending-completion count without per-round scans.
  const std::unordered_map<NodeId, Round>& deathSchedule() const {
    return deathRound_;
  }

  /// True when dropsTransmission() can ever return true — the simulator
  /// only spends RNG draws when this holds, keeping failure-free runs
  /// bit-identical to the pre-fault-injection behaviour.
  bool hasTransientLoss() const {
    return dropProb_ > 0.0 || burst_.active();
  }

  /// True when the model is currently in the burst state (exposed for
  /// tests of the Gilbert–Elliott chain).
  bool inBurst() const { return inBurst_; }

 private:
  std::unordered_map<NodeId, Round> deathRound_;
  std::unordered_map<NodeId, bool> crashed_;
  double dropProb_ = 0.0;
  BurstLossParams burst_;
  bool inBurst_ = false;
  std::vector<JamZone> zones_;
  std::vector<Point2D> positions_;
  bool hasPositions_ = false;
  Rng rng_{0xFA11FA11u};

  void scheduleDeath(NodeId v, Round r, bool crash);
};

}  // namespace dsn
