// Interface every per-node protocol state machine implements.
//
// The simulator drives all nodes in lock-step rounds:
//   1. every live node's `onRound(r)` returns its Action for round r;
//   2. the channel resolves which transmissions are received where;
//   3. every successful reception is delivered via `onReceive`.
// A protocol signals local completion via `isDone()`; the simulator stops
// when every live node is done (or the round budget runs out).
#pragma once

#include "radio/action.hpp"
#include "radio/message.hpp"
#include "util/types.hpp"

namespace dsn {

/// Sentinel for NodeProtocol::nextWake: the node sleeps forever (no
/// further onRound calls, and — since a sleeping node never listens —
/// no further onReceive either).
inline constexpr Round kNoWake = std::numeric_limits<Round>::max();

/// One node's protocol logic. Implementations keep only *local* state —
/// the per-node knowledge the paper grants (Section 5, knowledge I/II).
class NodeProtocol {
 public:
  virtual ~NodeProtocol() = default;

  /// Decide this node's action for round `r`. Called for every round the
  /// node is scheduled awake (see nextWake) while it is alive.
  virtual Action onRound(Round r) = 0;

  /// A frame was received (exactly one neighbor transmitted on `channel`
  /// in a round where this node was listening).
  virtual void onReceive(const Message& m, Round r, Channel channel) = 0;

  /// True once this node will never transmit again and its protocol role
  /// is complete (it may still be reachable as a listener).
  virtual bool isDone() const = 0;

  /// Active-set scheduling hint: the earliest round > `now` at which
  /// onRound must be called again (kNoWake = never). The simulator is
  /// free to skip onRound for every round in (now, nextWake(now)), so an
  /// override promises that onRound would have returned a sleep action
  /// with NO internal state change on each skipped round — including
  /// deadline transitions (missed windows, lapsed duties), which count as
  /// state changes and must land on a wake round. `now` is the round just
  /// processed, or -1 before the first round. Called after the round's
  /// deliveries, so overrides may consult state updated by onReceive.
  /// The default wakes every round, reproducing the pre-hint schedule
  /// for protocols without an override.
  virtual Round nextWake(Round now) const { return now + 1; }
};

/// Structure-of-arrays counterpart of NodeProtocol: ONE object drives
/// every member node, keyed by node id. Implementations keep per-node
/// state in flat arrays instead of one heap object per node, which is
/// what makes million-node runs fit in cache (DESIGN.md §14).
///
/// Contracts are per-node NodeProtocol contracts verbatim (isDone
/// monotone, nextWake sleep-is-pure, etc.). Additionally, because the
/// sharded scheduler calls into the swarm from several threads at once
/// (always for *distinct* nodes; never the same node concurrently),
/// implementations must keep cross-node shared writes atomic — e.g. a
/// delivered bitset whose words span nodes needs atomic fetch_or.
class SwarmProtocol {
 public:
  virtual ~SwarmProtocol() = default;

  virtual Action onRound(NodeId v, Round r) = 0;
  virtual void onReceive(NodeId v, const Message& m, Round r,
                         Channel channel) = 0;
  virtual bool isDone(NodeId v) const = 0;
  virtual Round nextWake(NodeId /*v*/, Round now) const { return now + 1; }
};

}  // namespace dsn
