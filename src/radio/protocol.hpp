// Interface every per-node protocol state machine implements.
//
// The simulator drives all nodes in lock-step rounds:
//   1. every live node's `onRound(r)` returns its Action for round r;
//   2. the channel resolves which transmissions are received where;
//   3. every successful reception is delivered via `onReceive`.
// A protocol signals local completion via `isDone()`; the simulator stops
// when every live node is done (or the round budget runs out).
#pragma once

#include "radio/action.hpp"
#include "radio/message.hpp"
#include "util/types.hpp"

namespace dsn {

/// One node's protocol logic. Implementations keep only *local* state —
/// the per-node knowledge the paper grants (Section 5, knowledge I/II).
class NodeProtocol {
 public:
  virtual ~NodeProtocol() = default;

  /// Decide this node's action for round `r`. Called exactly once per
  /// round while the node is alive.
  virtual Action onRound(Round r) = 0;

  /// A frame was received (exactly one neighbor transmitted on `channel`
  /// in a round where this node was listening).
  virtual void onReceive(const Message& m, Round r, Channel channel) = 0;

  /// True once this node will never transmit again and its protocol role
  /// is complete (it may still be reachable as a listener).
  virtual bool isDone() const = 0;
};

}  // namespace dsn
