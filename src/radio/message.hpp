// The over-the-air message format.
//
// The paper's packages are tuples like (m, t, Δ, i) — a payload plus the
// transmitter's time-slot, the largest slot, and the current depth
// (Algorithm 1/2), or a payload plus a target id (the DFO token tour).
// `Message` is the superset of those fields; protocols fill the parts they
// use. Fixed size, trivially copyable — one radio frame.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace dsn {

/// No multicast group / plain broadcast.
inline constexpr GroupId kNoGroup = std::numeric_limits<GroupId>::max();

/// What a frame means to the receiving protocol.
enum class MsgKind : std::uint8_t {
  kData,     ///< broadcast/multicast payload being flooded
  kToken,    ///< DFO Eulerian token (payload rides along)
  kControl,  ///< structure/bookkeeping traffic (source-to-root relays)
  kNack,     ///< reliable-broadcast repair request (missing payload)
};

/// One radio frame.
struct Message {
  MsgKind kind = MsgKind::kData;
  /// Transmitting node (filled by the transmitter; receivers may use it).
  NodeId sender = kInvalidNode;
  /// Addressed node for token passing; kInvalidNode = everyone.
  NodeId target = kInvalidNode;
  /// Original broadcast source.
  NodeId origin = kInvalidNode;
  /// Sequence number distinguishing independent broadcasts.
  std::uint32_t sequence = 0;
  /// Transmitter's time-slot `t` within the current TDM window.
  TimeSlot slot = kNoSlot;
  /// Largest slot in use (Δ or δ) — defines the TDM window length.
  TimeSlot windowSize = 0;
  /// Depth index `i` the frame was transmitted from.
  Depth depth = kNoDepth;
  /// Height of CNet(G), carried by Algorithm 2's backbone flood.
  std::int32_t height = 0;
  /// Multicast group (kNoGroup for plain broadcast).
  GroupId group = kNoGroup;
  /// Opaque application payload (examples put sensor readings here).
  std::uint64_t payload = 0;
};

}  // namespace dsn
