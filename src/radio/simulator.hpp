// The synchronous round-based radio simulator.
//
// Drives one NodeProtocol per node over the flat WSN graph until every
// live node reports done (or a round budget is exhausted), resolving
// collisions per the paper's model each round and metering energy.
//
// Failure injection happens here: dead nodes neither act nor receive;
// dropped transmissions consume energy but never reach the air.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "radio/channel.hpp"
#include "radio/energy.hpp"
#include "radio/failure.hpp"
#include "radio/protocol.hpp"
#include "radio/trace.hpp"
#include "util/geometry.hpp"

namespace dsn {

/// How the simulator schedules per-round work. All modes produce
/// bit-identical results (traces, energy, RNG draws, round counts);
/// kFullScan is kept as the differential oracle and micro-bench baseline.
enum class SimScheduling {
  /// Wake-queue driven: onRound only runs for nodes whose nextWake hint
  /// names the round, channel resolution only touches neighbors of
  /// actual transmitters, and idle round spans are skipped outright.
  kActiveSet,
  /// The original loop: scan all V protocols every round and resolve the
  /// channel over the whole graph.
  kFullScan,
  /// Active-set semantics with one round's phase-1 + collision-resolve
  /// sharded across worker threads by spatial tile (DESIGN.md §14).
  /// Per-tile results merge at the round barrier in global node order,
  /// so the output is bit-identical to the two serial modes at any
  /// thread count.
  kSharded,
};

/// Static configuration of one simulation run.
struct SimConfig {
  /// Number of radio channels k (paper: 1 unless the k-channel variant).
  Channel channelCount = 1;
  /// Hard stop; a protocol bug cannot hang a test or bench.
  Round maxRounds = 1'000'000;
  /// Capacity of the event trace (0 = tracing off).
  std::size_t traceCapacity = 0;
  /// Round-loop strategy; see SimScheduling.
  SimScheduling scheduling = SimScheduling::kActiveSet;
  /// External resolve scratch lease (borrowed, must outlive the run).
  /// When set, the active-set engine resolves rounds into this scratch
  /// instead of its own member — a serve loop or parallel bench pools
  /// one per worker so back-to-back runs reuse warm O(V·k) tables
  /// instead of reallocating them per run. prepare() is called on it at
  /// seed time (idempotent, never shrinks). Ignored by kFullScan;
  /// kSharded keeps its per-tile scratch. Results are bit-identical
  /// with or without it.
  ResolveScratch* resolveScratch = nullptr;

  // ---- kSharded knobs (ignored by the serial modes). None of them
  // affect results, only how the identical work is laid out.

  /// Worker threads (including the coordinator); clamped to >= 1.
  int threads = 1;
  /// Node positions for the spatial tile partition; borrowed, must
  /// outlive run(). Null falls back to contiguous id-block tiles.
  const std::vector<Point2D>* nodePositions = nullptr;
  /// Tile edge lower bound for the spatial partition — use the radio
  /// range so a neighborhood spans at most one tile boundary per axis.
  double tileMinEdge = 0.0;
  /// Approximate tile count (0 = default). Fixed per run, never derived
  /// from `threads`: the tile structure must not change with the worker
  /// count.
  std::uint32_t tileTarget = 0;
  /// Rounds whose previous active count is below this run on the
  /// coordinator alone (worker wake-up costs more than the round).
  std::size_t shardSerialThreshold = 256;
};

/// Aggregate result of a run.
struct SimResult {
  /// Rounds executed (index of the first round after the last activity).
  Round rounds = 0;
  /// True when the run ended because every live node was done (as opposed
  /// to hitting maxRounds).
  bool completed = false;
  std::size_t totalTransmissions = 0;
  std::size_t totalDeliveries = 0;
  std::size_t totalCollisions = 0;
  std::size_t droppedTransmissions = 0;
  /// Transmissions and deliveries lost to active jamming zones.
  std::size_t jammedLosses = 0;
};

class RadioSimulator;

/// A resumable scheduling engine: executes rounds in [cursor, stop) and
/// pauses at the segment boundary so callers can mutate the topology,
/// failure schedule, or protocol state between segments (DESIGN.md §15).
/// One engine instance spans the whole run; a classic run() is a single
/// segment to maxRounds. Each SimScheduling mode provides one subclass,
/// and all of them produce bit-identical segment results.
class SimEngine {
 public:
  explicit SimEngine(RadioSimulator& sim) : sim_(sim) {}
  virtual ~SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Executes rounds while cursor < stop, unless the run completes
  /// first. A stop at maxRounds finishes the run, including the
  /// budget-exhaustion accounting.
  virtual void advanceTo(Round stop) = 0;
  /// Re-reads topology and protocol state after an external mutation at
  /// the current cursor: refreshed CSR snapshot, re-seeded wake queues
  /// (nextWake is pure given protocol state), re-derived pending count,
  /// stale (removed or already-dead) nodes quiesced.
  virtual void resync() = 0;
  /// End-of-run telemetry flush; called exactly once, after done().
  virtual void finish() = 0;

  const SimResult& result() const { return result_; }
  /// The next round advanceTo would execute.
  Round cursor() const { return cursor_; }
  bool done() const { return done_; }

 protected:
  RadioSimulator& sim_;
  SimResult result_;
  Round cursor_ = 0;
  bool done_ = false;
};

/// Factory for the kSharded engine (defined in shard.cpp).
std::unique_ptr<SimEngine> makeShardEngine(RadioSimulator& sim);

/// Owns the protocols and runs the round loop.
class RadioSimulator {
 public:
  /// The graph is borrowed and must outlive the simulator.
  RadioSimulator(const Graph& graph, SimConfig config);

  /// Installs node `v`'s protocol. Every live node that should act needs
  /// one; nodes without a protocol sleep forever (and count as done).
  void setProtocol(NodeId v, std::unique_ptr<NodeProtocol> protocol);

  /// Installs ONE structure-of-arrays protocol driving every node in
  /// `members`. Mutually exclusive with setProtocol; nodes outside
  /// `members` sleep forever. The simulator owns the swarm.
  void setSwarm(std::unique_ptr<SwarmProtocol> swarm,
                const std::vector<NodeId>& members);

  NodeProtocol* protocol(NodeId v);
  const NodeProtocol* protocol(NodeId v) const;
  SwarmProtocol* swarm() { return swarm_.get(); }
  const SwarmProtocol* swarm() const { return swarm_.get(); }

  FailureModel& failures() { return failures_; }
  const FailureModel& failures() const { return failures_; }

  /// Runs rounds until all live protocols are done or maxRounds is hit.
  /// Callable once per simulator instance (and not after runUntil).
  SimResult run();

  /// Segmented execution: advances the round loop to `stop` (clamped to
  /// maxRounds) and pauses there, returning the result so far. The first
  /// call starts the run. Between segments the caller may mutate the
  /// graph, failure schedule, or protocol completion state — it must
  /// then call resyncTopology() before resuming. A run segmented at any
  /// set of boundaries with no mutations is bit-identical to run(); with
  /// mutations the outcome is still deterministic and identical across
  /// all scheduling modes and thread counts (the reconfiguration seam's
  /// contract — DESIGN.md §15).
  SimResult runUntil(Round stop);
  /// True once the run has finished (completed or budget-exhausted).
  bool finished() const { return engine_ != nullptr && engine_->done(); }
  /// The next round a paused run would execute.
  Round cursor() const { return engine_ ? engine_->cursor() : 0; }
  /// Re-syncs a paused run after external mutation: grows per-node state
  /// for freshly added ids (which sleep forever unless they are swarm
  /// members), refreshes the CSR snapshot on this thread, and re-seeds
  /// the engine's wake structures from the protocols' nextWake hints.
  void resyncTopology();

  const EnergyMeter& energy() const { return energy_; }
  const Trace& trace() const { return trace_; }
  const SimConfig& config() const { return config_; }

 private:
  const Graph& graph_;
  SimConfig config_;
  std::vector<std::unique_ptr<NodeProtocol>> protocols_;
  std::unique_ptr<SwarmProtocol> swarm_;
  std::vector<std::uint8_t> swarmMember_;
  FailureModel failures_;
  EnergyMeter energy_;
  Trace trace_;
  bool ran_ = false;
  std::unique_ptr<SimEngine> engine_;

  // Node dispatch: one seam over the two protocol representations so
  // every scheduler drives object-per-node and swarm nodes identically.
  bool nodePresent(NodeId v) const {
    return swarm_ ? swarmMember_[v] != 0 : protocols_[v] != nullptr;
  }
  Action nodeOnRound(NodeId v, Round r) {
    return swarm_ ? swarm_->onRound(v, r) : protocols_[v]->onRound(r);
  }
  void nodeOnReceive(NodeId v, const Message& m, Round r, Channel c) {
    if (swarm_)
      swarm_->onReceive(v, m, r, c);
    else
      protocols_[v]->onReceive(m, r, c);
  }
  bool nodeIsDone(NodeId v) const {
    return swarm_ ? swarm_->isDone(v) : protocols_[v]->isDone();
  }
  Round nodeNextWake(NodeId v, Round now) const {
    return swarm_ ? swarm_->nextWake(v, now) : protocols_[v]->nextWake(now);
  }

  bool allDone(Round r) const;

  friend class ActiveSetEngine;
  friend class FullScanEngine;
  friend class ShardEngine;
};

}  // namespace dsn
