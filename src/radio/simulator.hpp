// The synchronous round-based radio simulator.
//
// Drives one NodeProtocol per node over the flat WSN graph until every
// live node reports done (or a round budget is exhausted), resolving
// collisions per the paper's model each round and metering energy.
//
// Failure injection happens here: dead nodes neither act nor receive;
// dropped transmissions consume energy but never reach the air.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "radio/channel.hpp"
#include "radio/energy.hpp"
#include "radio/failure.hpp"
#include "radio/protocol.hpp"
#include "radio/trace.hpp"

namespace dsn {

/// How the simulator schedules per-round work. Both modes produce
/// bit-identical results (traces, energy, RNG draws, round counts);
/// kFullScan is kept as the differential oracle and micro-bench baseline.
enum class SimScheduling {
  /// Wake-queue driven: onRound only runs for nodes whose nextWake hint
  /// names the round, channel resolution only touches neighbors of
  /// actual transmitters, and idle round spans are skipped outright.
  kActiveSet,
  /// The original loop: scan all V protocols every round and resolve the
  /// channel over the whole graph.
  kFullScan,
};

/// Static configuration of one simulation run.
struct SimConfig {
  /// Number of radio channels k (paper: 1 unless the k-channel variant).
  Channel channelCount = 1;
  /// Hard stop; a protocol bug cannot hang a test or bench.
  Round maxRounds = 1'000'000;
  /// Capacity of the event trace (0 = tracing off).
  std::size_t traceCapacity = 0;
  /// Round-loop strategy; see SimScheduling.
  SimScheduling scheduling = SimScheduling::kActiveSet;
};

/// Aggregate result of a run.
struct SimResult {
  /// Rounds executed (index of the first round after the last activity).
  Round rounds = 0;
  /// True when the run ended because every live node was done (as opposed
  /// to hitting maxRounds).
  bool completed = false;
  std::size_t totalTransmissions = 0;
  std::size_t totalDeliveries = 0;
  std::size_t totalCollisions = 0;
  std::size_t droppedTransmissions = 0;
  /// Transmissions and deliveries lost to active jamming zones.
  std::size_t jammedLosses = 0;
};

/// Owns the protocols and runs the round loop.
class RadioSimulator {
 public:
  /// The graph is borrowed and must outlive the simulator.
  RadioSimulator(const Graph& graph, SimConfig config);

  /// Installs node `v`'s protocol. Every live node that should act needs
  /// one; nodes without a protocol sleep forever (and count as done).
  void setProtocol(NodeId v, std::unique_ptr<NodeProtocol> protocol);

  NodeProtocol* protocol(NodeId v);
  const NodeProtocol* protocol(NodeId v) const;

  FailureModel& failures() { return failures_; }
  const FailureModel& failures() const { return failures_; }

  /// Runs rounds until all live protocols are done or maxRounds is hit.
  /// Callable once per simulator instance.
  SimResult run();

  const EnergyMeter& energy() const { return energy_; }
  const Trace& trace() const { return trace_; }
  const SimConfig& config() const { return config_; }

 private:
  const Graph& graph_;
  SimConfig config_;
  std::vector<std::unique_ptr<NodeProtocol>> protocols_;
  FailureModel failures_;
  EnergyMeter energy_;
  Trace trace_;
  bool ran_ = false;

  bool allDone(Round r) const;
  SimResult runFullScan();
  SimResult runActiveSet();
};

}  // namespace dsn
