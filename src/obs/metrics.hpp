// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms.
//
// Design constraints (DESIGN.md "Observability"):
//   * off-by-default-cheap — every instrumentation site in a hot layer
//     guards on `obs::enabled()` (one relaxed atomic load) and pays
//     nothing else when telemetry is off;
//   * cheap-when-on — instruments are plain atomics once a handle has
//     been obtained; registration (name lookup) takes a mutex and should
//     be done once per site, not per event;
//   * stable handles — references returned by the registry stay valid for
//     the registry's lifetime (instruments live in a std::deque).
//
// The registry is not a time series store: it holds the *current* values,
// and the exporter (obs/export.hpp) snapshots them to JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dsn::obs {

/// Global telemetry switch. Default off: instrumentation sites become a
/// single relaxed atomic load. Flip on before a run you want measured.
bool enabled();
void setEnabled(bool on);

/// Monotonically increasing event count.
class Counter {
 public:
  void increment(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (sizes, levels).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    // fetch_add on atomic<double> is C++20; keep a CAS loop for clarity
    // with older libstdc++ behaviour.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// `value <= upperBounds[i]` (and greater than the previous bound); one
/// implicit overflow bucket catches the rest. Bounds are strictly
/// increasing and fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double v);

  /// Accumulates every observation recorded in `other` (bucket counts,
  /// count, sum, min/max). Bounds must match exactly. Used by the
  /// deterministic telemetry merge of the parallel experiment engine.
  void mergeFrom(const Histogram& other);

  const std::vector<double>& upperBounds() const { return bounds_; }
  /// bounds().size() + 1 entries; last = overflow.
  std::vector<std::uint64_t> bucketCounts() const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Lowest / highest observed value; 0 when empty.
  double minValue() const;
  double maxValue() const;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket holding the target rank, clamped to [minValue, maxValue]
  /// so a single-bucket histogram reports exact observed extremes.
  /// Returns 0 when empty; ranks landing in the overflow bucket report
  /// maxValue().
  double percentile(double q) const;

  void reset();

  /// Power-of-two latency buckets 1, 2, 4, ... 2^(n-1) — the default
  /// shape for round-count distributions.
  static std::vector<double> exponentialBounds(std::size_t n,
                                               double first = 1.0,
                                               double factor = 2.0);

  /// HDR-style bounds: power-of-two decades from `first` up to `last`,
  /// each split into `subBuckets` linear steps — constant relative error
  /// of roughly 1/subBuckets across the whole range, the shape used for
  /// round wall-time / active-set / resolve-work distributions.
  static std::vector<double> hdrBounds(double first, double last,
                                       int subBuckets);

 private:
  std::vector<double> bounds_;
  std::deque<std::atomic<std::uint64_t>> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};

  void atomicAccumulate(std::atomic<double>& slot, double v, bool wantMin);
};

/// Name-keyed instrument registry. Registering the same name twice
/// returns the same instrument; re-registering a name as a different
/// instrument kind throws PreconditionError.
///
/// Besides the process-wide registry (globalMetrics()) the parallel
/// experiment engine creates one short-lived registry per (nodeCount,
/// trial) task, installs it as the calling thread's sink
/// (ScopedMetricsSink) and folds it back with mergeFrom() in a
/// deterministic order, so parallel runs export the same snapshot as
/// serial ones.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upperBounds` is consulted only on first registration.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upperBounds);

  /// Zeroes every registered instrument (names stay registered).
  void reset();

  /// Folds `other` into this registry: counters add, gauges take
  /// `other`'s value (last-write-wins, so merging scopes in trial order
  /// reproduces the serial final value), histograms accumulate via
  /// Histogram::mergeFrom. Instruments missing here are registered, so
  /// the merged registry exports the same name set as a serial run.
  /// Not self-merge safe; `other` must not be this registry.
  void mergeFrom(const MetricsRegistry& other);

  // ---- snapshot access (sorted by name for deterministic export) ----
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;
  std::size_t size() const;

  // ---- allocation-free iteration (sorted by name) ----
  // The serve-loop record emitter exports every job's registry without
  // touching the heap, so the snapshot vectors above are not an option
  // there. Visitors run under the registry mutex; keep them short and
  // never re-enter the registry from inside one.
  template <typename F>
  void visitCounters(F&& f) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_)
      if (e.kind == Kind::kCounter)
        f(std::string_view(e.name), e.counter->value());
  }
  template <typename F>
  void visitGauges(F&& f) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_)
      if (e.kind == Kind::kGauge)
        f(std::string_view(e.name), e.gauge->value());
  }
  template <typename F>
  void visitHistograms(F&& f) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_)
      if (e.kind == Kind::kHistogram)
        f(std::string_view(e.name),
          static_cast<const Histogram&>(*e.histogram));
  }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mu_;
  std::deque<Counter> counterStore_;
  std::deque<Gauge> gaugeStore_;
  std::deque<Histogram> histogramStore_;
  std::vector<Entry> entries_;  // kept sorted by name

  Entry* find(std::string_view name);
  Entry& insert(std::string_view name, Kind kind);
};

/// The registry used by the built-in instrumentation: the calling
/// thread's scoped sink when one is installed (ScopedMetricsSink),
/// otherwise the process-wide registry.
MetricsRegistry& globalMetrics();

/// The process-wide registry, ignoring any thread-local sink. Exporters
/// and merge steps use this to address the real registry even if the
/// calling thread is (unusually) inside a scope.
MetricsRegistry& processMetrics();

/// Redirects globalMetrics() on *this thread* to `sink` for the scope's
/// lifetime. Scopes nest; the innermost wins. The parallel experiment
/// engine wraps each worker task in one so instrumentation lands in a
/// task-local registry that is merged back deterministically.
class ScopedMetricsSink {
 public:
  explicit ScopedMetricsSink(MetricsRegistry& sink);
  ~ScopedMetricsSink();
  ScopedMetricsSink(const ScopedMetricsSink&) = delete;
  ScopedMetricsSink& operator=(const ScopedMetricsSink&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace dsn::obs
