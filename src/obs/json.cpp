#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace dsn::obs {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::beforeValue() {
  if (!stack_.empty() && stack_.back() == Scope::kObject) {
    DSN_CHECK(keyPending_, "JsonWriter: object member needs a key first");
    keyPending_ = false;
    return;  // key() already placed the comma
  }
  if (needComma_) os_ << ',';
}

JsonWriter& JsonWriter::key(std::string_view name) {
  DSN_CHECK(!stack_.empty() && stack_.back() == Scope::kObject,
            "JsonWriter: key() outside an object");
  DSN_CHECK(!keyPending_, "JsonWriter: consecutive keys");
  if (needComma_) os_ << ',';
  os_ << '"' << jsonEscape(name) << "\":";
  keyPending_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  needComma_ = false;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  DSN_CHECK(!stack_.empty() && stack_.back() == Scope::kObject,
            "JsonWriter: endObject without beginObject");
  DSN_CHECK(!keyPending_, "JsonWriter: dangling key at endObject");
  stack_.pop_back();
  os_ << '}';
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  needComma_ = false;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  DSN_CHECK(!stack_.empty() && stack_.back() == Scope::kArray,
            "JsonWriter: endArray without beginArray");
  stack_.pop_back();
  os_ << ']';
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  beforeValue();
  os_ << '"' << jsonEscape(s) << '"';
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  beforeValue();
  if (!std::isfinite(d)) {
    os_ << "null";
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    os_ << buf;
  }
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  beforeValue();
  os_ << (b ? "true" : "false");
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  os_ << v;
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  os_ << v;
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  os_ << "null";
  needComma_ = true;
  return *this;
}

}  // namespace dsn::obs
