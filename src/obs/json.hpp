// Minimal streaming JSON writer.
//
// The observability exporters (metrics snapshots, timing reports, trace
// JSONL, bench records) all emit JSON without a third-party dependency.
// The writer tracks nesting and comma placement; values are escaped per
// RFC 8259. Non-finite doubles are emitted as null (JSON has no NaN).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dsn::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string jsonEscape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter() = default;

  // ---- containers ----
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Emits the key of the next member (only valid inside an object).
  JsonWriter& key(std::string_view name);

  // ---- scalar values ----
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& null();

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// Finished document. Valid once every container has been closed.
  std::string str() const { return os_.str(); }
  /// Open container depth (0 = document complete).
  std::size_t depth() const { return stack_.size(); }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  std::ostringstream os_;
  std::vector<Scope> stack_;
  bool needComma_ = false;
  bool keyPending_ = false;

  void beforeValue();
};

}  // namespace dsn::obs
