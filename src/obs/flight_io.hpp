// .dsntrace binary serialization for flight-recorder event streams and
// the Chrome trace_event exporter.
//
// On-disk layout (all integers little-endian, independent of host
// endianness):
//   bytes 0..7    magic "DSNTRACE"
//   u32           version (currently 1)
//   u32           flags (reserved, 0)
//   u64           eventCount
//   u64           droppedEvents (lost to ring overflow before writing)
//   u32           categories (runtime mask the recorder ran with)
//   u32           sampleEvery
//   u64           seed
//   u64           nodes
//   eventCount x  16-byte FrEvent records {u32 round, u32 node, u32 data,
//                 u8 type, u8 channel, u16 aux}
//
// Events carry logical time only (round numbers), so a .dsntrace from a
// seeded run is bit-identical across --jobs counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/flight.hpp"

namespace dsn::obs {

inline constexpr std::uint32_t kDsnTraceVersion = 1;

/// Run-level metadata carried in the .dsntrace header.
struct FrTraceMeta {
  std::uint64_t seed = 0;
  std::uint64_t nodes = 0;
  std::uint32_t categories = kFrCatAll;
  std::uint32_t sampleEvery = 1;
  std::uint64_t droppedEvents = 0;
};

/// A parsed .dsntrace file.
struct FrTraceFile {
  FrTraceMeta meta;
  std::vector<FrEvent> events;
};

/// Writes a .dsntrace stream. Returns false when the stream errors.
bool writeDsnTrace(std::ostream& os, const FrTraceMeta& meta,
                   const std::vector<FrEvent>& events);

/// Convenience: snapshots `recorder`'s ordered events + drop count.
bool writeDsnTrace(std::ostream& os, const FlightRecorder& recorder,
                   std::uint64_t seed, std::uint64_t nodes);

/// Parses a .dsntrace stream. Throws std::runtime_error on bad magic,
/// unsupported version, or truncation.
FrTraceFile readDsnTrace(std::istream& is);

/// Emits Chrome trace_event JSON (load in about:tracing or Perfetto).
/// Rounds become "X" complete slices on tid 0 (1 round = 1000 synthetic
/// microseconds); protocol runs become nested slices; node-scoped events
/// become "i" instants on tid = node + 1. Each run's rounds restart at
/// 0, so the exporter advances a cumulative base offset at every kRunEnd
/// marker to lay runs out sequentially on the timeline.
bool writeChromeTrace(std::ostream& os, const FrTraceFile& trace);

}  // namespace dsn::obs
