// Structured export of telemetry: registry snapshots and timing trees to
// JSON. The writers emit a *value* at the writer's current position, so
// callers can embed them inside larger documents:
//
//   JsonWriter w;
//   w.beginObject();
//   w.key("metrics");
//   writeRegistryJson(w, obs::globalMetrics());
//   w.endObject();
//
// Schema (dsnet-metrics-v1):
//   {"counters": {name: n, ...},
//    "gauges": {name: x, ...},
//    "histograms": {name: {"bounds": [...], "counts": [...],
//                          "count": n, "sum": x, "mean": x,
//                          "min": x, "max": x}, ...}}
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace dsn::obs {

/// Snapshot of every instrument in `registry` as one JSON object value.
void writeRegistryJson(JsonWriter& w, const MetricsRegistry& registry);

/// One histogram as a JSON object value.
void writeHistogramJson(JsonWriter& w, const Histogram& h);

/// The phase tree as a JSON array value of
/// {"phase", "ms", "calls", "children": [...]}.
void writeTimingJson(JsonWriter& w, const TimingRegistry& timing);

/// Standalone document: {"schema": "dsnet-metrics-v1",
/// "metrics": {...}, "timing": [...]}.
std::string metricsDocumentJson(const MetricsRegistry& registry,
                                const TimingRegistry& timing);

}  // namespace dsn::obs
