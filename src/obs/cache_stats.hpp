// Cache hit/miss/evict counter families.
//
// A CacheCounters bundles the three counters every cache in the suite
// reports — `<prefix>.hit`, `<prefix>.miss`, `<prefix>.evict` — and
// resolves them once at construction, so the hot path is three atomic
// increments with no name lookups. The serve warm-state cache registers
// `serve.cache.*` and `serve.csr.*` (CSR snapshot freshness) through
// this; tests assert hit rates off the same counters.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace dsn::obs {

class CacheCounters {
 public:
  /// Registers `<prefix>.hit|miss|evict` in `registry`. The registry
  /// must outlive this object (instrument handles are stable for the
  /// registry's lifetime).
  CacheCounters(MetricsRegistry& registry, std::string_view prefix)
      : hit_(&registry.counter(std::string(prefix) + ".hit")),
        miss_(&registry.counter(std::string(prefix) + ".miss")),
        evict_(&registry.counter(std::string(prefix) + ".evict")) {}

  void hit() { hit_->increment(); }
  void miss() { miss_->increment(); }
  void evict() { evict_->increment(); }

  std::uint64_t hits() const { return hit_->value(); }
  std::uint64_t misses() const { return miss_->value(); }
  std::uint64_t evictions() const { return evict_->value(); }

  /// Hits over lookups; 0 when no lookups happened yet.
  double hitRate() const {
    const std::uint64_t total = hits() + misses();
    return total == 0 ? 0.0 : static_cast<double>(hits()) /
                                  static_cast<double>(total);
  }

 private:
  Counter* hit_;
  Counter* miss_;
  Counter* evict_;
};

}  // namespace dsn::obs
