// Scoped phase timers with a hierarchical timing report.
//
//   void buildNet(...) {
//     DSN_TIMED_PHASE("cnet.build");
//     ...
//     { DSN_TIMED_PHASE("cnet.build.slots"); ... }  // nests under parent
//   }
//
// When obs::enabled() is false a scoped timer is a no-op (one relaxed
// atomic load). When on, enters/exits maintain a tree of phases in the
// TimingRegistry keyed by *dynamic nesting*, so the same phase name shows
// up once per distinct call path. Timing uses the monotonic steady clock.
//
// The registry serializes entries/exits with a mutex; the nesting cursor
// is shared, so concurrent phases from multiple threads would interleave
// into one tree. The parallel experiment engine therefore never times
// into the shared registry from workers: each task installs a
// task-local registry as its thread's sink (ScopedTimingSink) and the
// driver grafts the finished trees back with mergeFrom() in
// deterministic task order.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dsn::obs {

class JsonWriter;

class TimingRegistry {
 public:
  struct Node {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t nanos = 0;
    std::vector<std::unique_ptr<Node>> children;
  };

  TimingRegistry() = default;
  TimingRegistry(const TimingRegistry&) = delete;
  TimingRegistry& operator=(const TimingRegistry&) = delete;

  /// Pushes a phase; returns an opaque handle for exit().
  Node* enter(std::string_view name);
  void exit(Node* node, std::uint64_t nanos);

  /// Drops all recorded phases (cursor must be at the root, i.e. no
  /// scoped timer alive).
  void reset();

  /// Folds `other`'s phase tree into this one, grafting at the current
  /// cursor position (so a merge performed inside an open phase nests
  /// the worker phases under it, exactly where the serial run would
  /// have recorded them). Matching phase names accumulate calls/nanos;
  /// new names are appended in `other`'s order. `other` must not be
  /// this registry.
  void mergeFrom(const TimingRegistry& other);

  bool empty() const;

  /// Indented human-readable tree:  name  total-ms  calls.
  std::string report() const;

  /// Deep copy of the phase tree roots for export.
  std::vector<std::unique_ptr<Node>> snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Node>> roots_;
  std::vector<Node*> cursor_;  // active nesting path

  Node* childOf(std::vector<std::unique_ptr<Node>>& siblings,
                std::string_view name);
};

/// The timing registry used by DSN_TIMED_PHASE: the calling thread's
/// scoped sink when one is installed, otherwise the process-wide tree.
TimingRegistry& globalTiming();

/// The process-wide timing tree, ignoring any thread-local sink.
TimingRegistry& processTiming();

/// Redirects globalTiming() on *this thread* to `sink` for the scope's
/// lifetime (mirror of ScopedMetricsSink).
class ScopedTimingSink {
 public:
  explicit ScopedTimingSink(TimingRegistry& sink);
  ~ScopedTimingSink();
  ScopedTimingSink(const ScopedTimingSink&) = delete;
  ScopedTimingSink& operator=(const ScopedTimingSink&) = delete;

 private:
  TimingRegistry* previous_;
};

/// RAII phase scope. Inactive (and free) when obs::enabled() is false at
/// construction time.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(std::string_view name);
  ~ScopedPhaseTimer();
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  TimingRegistry::Node* node_ = nullptr;  // null = inactive
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace dsn::obs

#define DSN_PHASE_CONCAT_INNER(a, b) a##b
#define DSN_PHASE_CONCAT(a, b) DSN_PHASE_CONCAT_INNER(a, b)
/// Times the enclosing scope as a phase named `name` (string literal or
/// std::string_view) in the global timing registry.
#define DSN_TIMED_PHASE(name)                 \
  ::dsn::obs::ScopedPhaseTimer DSN_PHASE_CONCAT(dsn_timed_phase_, \
                                                __LINE__)(name)
