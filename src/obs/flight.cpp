#include "obs/flight.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace dsn::obs {

std::uint32_t frCategoryOf(FrType t) {
  switch (t) {
    case FrType::kRoundBegin:
    case FrType::kRoundEnd:
      return kFrCatRound;
    case FrType::kWakePop:
    case FrType::kIdleSkip:
      return kFrCatSched;
    case FrType::kTransmit:
    case FrType::kDelivery:
      return kFrCatRadio;
    case FrType::kCollision:
      return kFrCatCollision;
    case FrType::kDroppedTransmit:
    case FrType::kJammedTransmit:
    case FrType::kNodeDeath:
    case FrType::kCrash:
      return kFrCatFault;
    case FrType::kRepair:
    case FrType::kSlotRecompute:
      return kFrCatCluster;
    case FrType::kRunBegin:
    case FrType::kRunEnd:
      return kFrCatRun;
  }
  return 0;
}

std::string_view frTypeName(FrType t) {
  switch (t) {
    case FrType::kRoundBegin:
      return "round_begin";
    case FrType::kRoundEnd:
      return "round_end";
    case FrType::kWakePop:
      return "wake_pop";
    case FrType::kIdleSkip:
      return "idle_skip";
    case FrType::kTransmit:
      return "transmit";
    case FrType::kDelivery:
      return "delivery";
    case FrType::kCollision:
      return "collision";
    case FrType::kDroppedTransmit:
      return "dropped_transmit";
    case FrType::kJammedTransmit:
      return "jammed_transmit";
    case FrType::kNodeDeath:
      return "node_death";
    case FrType::kCrash:
      return "crash";
    case FrType::kRepair:
      return "repair";
    case FrType::kSlotRecompute:
      return "slot_recompute";
    case FrType::kRunBegin:
      return "run_begin";
    case FrType::kRunEnd:
      return "run_end";
  }
  return "?";
}

std::string_view frRunKindName(FrRunKind k) {
  switch (k) {
    case FrRunKind::kDfo:
      return "DFO";
    case FrRunKind::kCff:
      return "CFF";
    case FrRunKind::kIcff:
      return "ICFF";
    case FrRunKind::kReliable:
      return "RELIABLE";
    case FrRunKind::kMulticast:
      return "MULTICAST";
    case FrRunKind::kGather:
      return "GATHER";
    case FrRunKind::kFlooding:
      return "FLOODING";
    case FrRunKind::kDiscovery:
      return "DISCOVERY";
    case FrRunKind::kGossip:
      return "GOSSIP";
    case FrRunKind::kGossipAdaptive:
      return "AGOSSIP";
    case FrRunKind::kCounter:
      return "COUNTER";
    case FrRunKind::kDistance:
      return "DISTANCE";
    case FrRunKind::kRlnc:
      return "RLNC";
  }
  return "?";
}

std::string_view frCategoryName(std::uint32_t categoryBit) {
  switch (categoryBit) {
    case kFrCatRound:
      return "round";
    case kFrCatSched:
      return "sched";
    case kFrCatRadio:
      return "radio";
    case kFrCatCollision:
      return "collision";
    case kFrCatFault:
      return "fault";
    case kFrCatCluster:
      return "cluster";
    case kFrCatRun:
      return "run";
  }
  return "?";
}

bool parseFrCategories(std::string_view list, std::uint32_t& mask) {
  if (list.empty()) {
    mask = kFrCatAll;
    return true;
  }
  std::uint32_t out = 0;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const std::string_view name = list.substr(pos, comma - pos);
    if (name == "all") {
      out |= kFrCatAll;
    } else {
      bool found = false;
      for (std::uint32_t bit = 1; bit <= kFrCatRun; bit <<= 1) {
        if (name == frCategoryName(bit)) {
          out |= bit;
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    if (comma == list.size()) break;
    pos = comma + 1;
  }
  mask = out;
  return true;
}

std::string describeFrEvent(const FrEvent& e) {
  std::ostringstream os;
  const FrType t = static_cast<FrType>(e.type);
  os << "r" << e.round << " " << frTypeName(t);
  switch (t) {
    case FrType::kRoundBegin:
      os << " active=" << e.data;
      break;
    case FrType::kRoundEnd:
      os << " deliveries=" << e.node << " work=" << e.data
         << " tx=" << e.aux;
      break;
    case FrType::kWakePop:
    case FrType::kNodeDeath:
    case FrType::kCrash:
      os << " node=" << e.node;
      break;
    case FrType::kIdleSkip:
      os << " -> r" << e.data;
      break;
    case FrType::kTransmit:
    case FrType::kDroppedTransmit:
    case FrType::kJammedTransmit:
      os << " node=" << e.node << " ch=" << static_cast<unsigned>(e.channel);
      break;
    case FrType::kDelivery:
      os << " node=" << e.node << " from=" << e.data
         << " ch=" << static_cast<unsigned>(e.channel);
      break;
    case FrType::kCollision:
      os << " node=" << e.node << " ch=" << static_cast<unsigned>(e.channel);
      break;
    case FrType::kRepair:
      os << " pruned=" << e.node << " reattached=" << e.data
         << " orphaned=" << e.aux;
      break;
    case FrType::kSlotRecompute:
      os << " node=" << e.node << " slot=" << e.data
         << " kind=" << e.aux;
      break;
    case FrType::kRunBegin:
      os << " " << frRunKindName(static_cast<FrRunKind>(e.aux))
         << " source=" << e.node;
      break;
    case FrType::kRunEnd:
      os << " " << frRunKindName(static_cast<FrRunKind>(e.aux))
         << " delivered=" << e.node << " rounds=" << e.data;
      break;
  }
  return os.str();
}

void FlightRecorder::configure(const FrConfig& cfg) {
  capacity_ = cfg.capacity;
  categories_ = cfg.categories;
  sampleEvery_ = std::max<std::uint32_t>(cfg.sampleEvery, 1);
  ring_.clear();
  ring_.shrink_to_fit();
  ring_.resize(capacity_);
  next_ = 0;
  total_ = 0;
  inheritedDropped_ = 0;
  flushedTotal_ = 0;
  flushedDropped_ = 0;
}

void FlightRecorder::resetEvents() {
  next_ = 0;
  total_ = 0;
  inheritedDropped_ = 0;
  flushedTotal_ = 0;
  flushedDropped_ = 0;
}

FrConfig FlightRecorder::config() const {
  FrConfig cfg;
  cfg.capacity = capacity_;
  cfg.categories = categories_;
  cfg.sampleEvery = sampleEvery_;
  return cfg;
}

std::vector<FrEvent> FlightRecorder::orderedEvents() const {
  std::vector<FrEvent> out;
  const std::size_t stored = storedEvents();
  out.reserve(stored);
  // When the ring has wrapped, next_ points at the oldest stored event.
  const std::size_t start = total_ > capacity_ ? next_ : 0;
  for (std::size_t i = 0; i < stored; ++i)
    out.push_back(ring_[(start + i) % capacity_]);
  return out;
}

void FlightRecorder::mergeFrom(const FlightRecorder& other) {
  inheritedDropped_ += other.droppedEvents();
  if (!configured()) {
    // Nowhere to put the stored events; account them as dropped rather
    // than losing them silently.
    inheritedDropped_ += other.storedEvents();
    return;
  }
  if (other.total_ == 0) return;
  for (const FrEvent& e : other.orderedEvents()) record(e);
}

namespace {

FlightRecorder& processRecorderStorage() {
  static FlightRecorder recorder;
  return recorder;
}

}  // namespace

FlightRecorder*& detail::tlsRecorderSlot() {
  thread_local FlightRecorder* slot = nullptr;
  return slot;
}

FlightRecorder& processRecorder() { return processRecorderStorage(); }

FlightRecorder& globalRecorder() {
  FlightRecorder* tls = detail::tlsRecorderSlot();
  return tls ? *tls : processRecorderStorage();
}

ScopedRecorderSink::ScopedRecorderSink(FlightRecorder& sink) {
  FlightRecorder*& slot = detail::tlsRecorderSlot();
  previous_ = slot;
  slot = &sink;
}

ScopedRecorderSink::~ScopedRecorderSink() {
  detail::tlsRecorderSlot() = previous_;
}

void recordRunBegin(FrRunKind kind, std::uint32_t source) {
  if (FlightRecorder* fr = recorderFor<kFrCatRun>()) {
    FrEvent e;
    e.type = static_cast<std::uint8_t>(FrType::kRunBegin);
    e.node = source;
    e.aux = static_cast<std::uint16_t>(kind);
    fr->record(e);
  }
}

void recordRunEnd(FrRunKind kind, std::uint32_t delivered,
                  std::uint32_t rounds) {
  if (FlightRecorder* fr = recorderFor<kFrCatRun>()) {
    FrEvent e;
    e.type = static_cast<std::uint8_t>(FrType::kRunEnd);
    e.node = delivered;
    e.data = rounds;
    e.aux = static_cast<std::uint16_t>(kind);
    fr->record(e);
  }
}

void flushRecorderTelemetry() {
  FlightRecorder& r = globalRecorder();
  if (!r.configured()) return;
  const std::uint64_t total = r.totalRecorded() + r.inheritedDropped_;
  const std::uint64_t dropped = r.droppedEvents();
  const std::uint64_t newTotal = total - r.flushedTotal_;
  const std::uint64_t newDropped = dropped - r.flushedDropped_;
  r.flushedTotal_ = total;
  r.flushedDropped_ = dropped;
  auto& m = globalMetrics();
  m.counter("trace.recorded_events").increment(newTotal);
  m.counter("trace.dropped_events").increment(newDropped);
  m.gauge("trace.stored_events")
      .set(static_cast<double>(r.storedEvents()));
  if (newDropped > 0) {
    DSN_LOG_WARN << "flight recorder overflow: " << newDropped
                 << " events dropped (ring capacity "
                 << r.config().capacity
                 << "; raise --trace-buffer or sample with "
                    "--trace-sample)";
  }
}

}  // namespace dsn::obs
