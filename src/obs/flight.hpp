// Flight-recorder tracing: a preallocated binary ring buffer of
// fixed-size event records that the active-set simulator can keep
// enabled at scale.
//
// Design constraints (DESIGN.md §13):
//   * zero steady-state allocations — configure() allocates the ring
//     once; record() is an indexed store plus two counter bumps, and
//     overflow wraps (flight-recorder semantics: the *latest* events
//     survive, overwritten ones are counted as dropped);
//   * compile-time category masks — sites guarded by recorderFor<Cat>()
//     vanish entirely when the category is excluded from
//     DSN_FR_COMPILED_CATEGORIES;
//   * runtime masks + sampling — categories can be toggled per run and
//     round-scoped volume events recorded every Nth round only, without
//     recompiling;
//   * deterministic streams — events carry logical time (round numbers),
//     never wall clocks, so the recorded stream of a seeded run is
//     bit-identical across thread counts when per-task recorders are
//     merged in task order (see exec/parallel_sweep.cpp).
//
// The recorder mirrors the metrics-registry sink idiom: globalRecorder()
// resolves to the calling thread's ScopedRecorderSink when one is
// installed, otherwise the process-wide recorder.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace dsn::obs {

// ---- event categories (bitmask) ----
inline constexpr std::uint32_t kFrCatRound = 1u << 0;      ///< round begin/end
inline constexpr std::uint32_t kFrCatSched = 1u << 1;      ///< wake pops, idle skips
inline constexpr std::uint32_t kFrCatRadio = 1u << 2;      ///< transmit/delivery
inline constexpr std::uint32_t kFrCatCollision = 1u << 3;  ///< collision sites
inline constexpr std::uint32_t kFrCatFault = 1u << 4;      ///< drop/jam/death/crash
inline constexpr std::uint32_t kFrCatCluster = 1u << 5;    ///< repair, slot recompute
inline constexpr std::uint32_t kFrCatRun = 1u << 6;        ///< protocol-run markers
inline constexpr std::uint32_t kFrCatAll = 0x7F;

/// Compile-time category mask. Instrumentation sites whose category is
/// not in this mask compile to nothing (recorderFor<Cat>() folds to
/// nullptr). Override with -DDSN_FR_COMPILED_CATEGORIES=<mask> to strip
/// categories from a build entirely.
#ifndef DSN_FR_COMPILED_CATEGORIES
#define DSN_FR_COMPILED_CATEGORIES ::dsn::obs::kFrCatAll
#endif

/// Flight-recorder event types. Field meaning per type (everything else
/// zero):
///   kRoundBegin       round, data = active-set size
///   kRoundEnd         round, node = deliveries, data = resolve work
///                     (Σ transmitter degrees), aux = transmitters
///                     (saturated at 65535)
///   kWakePop          round, node = woken node
///   kIdleSkip         round = first skipped round, data = resume round
///   kTransmit         round, node, channel, aux = message kind
///   kDelivery         round, node = receiver, data = transmitter,
///                     channel, aux = message kind
///   kCollision        round, node = listener, channel
///   kDroppedTransmit  round, node, channel, aux = message kind
///   kJammedTransmit   round, node, channel, aux = message kind
///   kNodeDeath        round, node (scheduled radio death takes effect)
///   kCrash            node (structural crash; no round context)
///   kRepair           node = stale pruned, data = reattached,
///                     aux = orphaned (saturated)
///   kSlotRecompute    node, data = assigned slot, aux = slot kind
///                     (0 = B, 1 = L, 2 = U, 3 = up)
///   kRunBegin         node = source, aux = run kind (FrRunKind)
///   kRunEnd           node = delivered count, data = rounds executed,
///                     aux = run kind
enum class FrType : std::uint8_t {
  kRoundBegin = 0,
  kRoundEnd = 1,
  kWakePop = 2,
  kIdleSkip = 3,
  kTransmit = 4,
  kDelivery = 5,
  kCollision = 6,
  kDroppedTransmit = 7,
  kJammedTransmit = 8,
  kNodeDeath = 9,
  kCrash = 10,
  kRepair = 11,
  kSlotRecompute = 12,
  kRunBegin = 13,
  kRunEnd = 14,
};
inline constexpr std::uint32_t kFrTypeCount = 15;

/// Which protocol run a kRunBegin/kRunEnd marker frames (aux field).
enum class FrRunKind : std::uint16_t {
  kDfo = 0,
  kCff = 1,
  kIcff = 2,
  kReliable = 3,
  kMulticast = 4,
  kGather = 5,
  kFlooding = 6,
  kDiscovery = 7,
  kGossip = 8,
  kGossipAdaptive = 9,
  kCounter = 10,
  kDistance = 11,
  kRlnc = 12,
};

/// The category an event type belongs to.
std::uint32_t frCategoryOf(FrType t);

/// Stable lower-snake names ("round_begin", "transmit", ...); "?" for
/// out-of-range values.
std::string_view frTypeName(FrType t);
std::string_view frRunKindName(FrRunKind k);
std::string_view frCategoryName(std::uint32_t categoryBit);

/// Parses a comma-separated category list ("radio,collision" or "all");
/// returns false on an unknown name. Empty string = kFrCatAll.
bool parseFrCategories(std::string_view list, std::uint32_t& mask);

/// One fixed-size binary event record. 16 bytes, trivially copyable —
/// the unit of the ring buffer and of the .dsntrace on-disk format.
struct FrEvent {
  std::uint32_t round = 0;
  std::uint32_t node = 0;
  std::uint32_t data = 0;
  std::uint8_t type = 0;
  std::uint8_t channel = 0;
  std::uint16_t aux = 0;
};
static_assert(sizeof(FrEvent) == 16, "FrEvent must stay 16 bytes");
static_assert(std::is_trivially_copyable_v<FrEvent>);

/// Human-readable one-line rendering (wsn_trace dump, debugging).
std::string describeFrEvent(const FrEvent& e);

/// Recorder configuration. capacity = 0 disables recording entirely.
struct FrConfig {
  std::size_t capacity = 0;
  std::uint32_t categories = kFrCatAll;
  /// Round-scoped volume events (round/sched/radio/collision + per-
  /// transmit faults) are recorded only in rounds where
  /// round % sampleEvery == 0. Rare events (deaths, crashes, repairs,
  /// run markers) are always recorded. 1 = record every round.
  std::uint32_t sampleEvery = 1;
};

/// Preallocated ring buffer of FrEvents with overflow accounting.
/// Single-writer: one recorder belongs to one thread at a time (the
/// sink discipline below guarantees it).
class FlightRecorder {
 public:
  /// Allocates the ring and resets all counters. configure({}) releases
  /// the storage and disables the recorder.
  void configure(const FrConfig& cfg);

  /// Drops recorded events and counters but keeps the configuration
  /// (and the allocation).
  void resetEvents();

  FrConfig config() const;
  bool configured() const { return capacity_ != 0; }

  /// True when recording is on and `cat` is in the runtime mask.
  bool wants(std::uint32_t cat) const {
    return capacity_ != 0 && (categories_ & cat) != 0;
  }

  /// True when round-scoped volume events of round `round` should be
  /// recorded under the sampling setting.
  bool roundSampled(std::int64_t round) const {
    return sampleEvery_ <= 1 ||
           round % static_cast<std::int64_t>(sampleEvery_) == 0;
  }

  /// Appends one event. Precondition: configured(). Never allocates;
  /// when the ring is full the oldest stored event is overwritten and
  /// counted as dropped.
  void record(const FrEvent& e) {
    ring_[next_] = e;
    ++total_;
    if (++next_ == capacity_) next_ = 0;
  }

  /// Events ever offered to record() (stored + dropped), excluding
  /// events inherited through mergeFrom.
  std::uint64_t totalRecorded() const { return total_; }
  /// Events currently held in the ring.
  std::size_t storedEvents() const {
    return total_ < capacity_ ? static_cast<std::size_t>(total_)
                              : capacity_;
  }
  /// Events lost to overflow (overwritten here + dropped upstream in
  /// merged recorders).
  std::uint64_t droppedEvents() const {
    const std::uint64_t overwritten =
        total_ > capacity_ ? total_ - capacity_ : 0;
    return overwritten + inheritedDropped_;
  }

  /// Copy of the stored events, oldest first.
  std::vector<FrEvent> orderedEvents() const;

  /// Appends `other`'s stored events (oldest first) and accumulates its
  /// dropped count. Merging per-task recorders back in deterministic
  /// task order reproduces the serial event stream exactly. `other`
  /// must not be this recorder.
  void mergeFrom(const FlightRecorder& other);

 private:
  std::vector<FrEvent> ring_;
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t inheritedDropped_ = 0;
  std::uint32_t categories_ = kFrCatAll;
  std::uint32_t sampleEvery_ = 1;
  std::uint64_t flushedTotal_ = 0;
  std::uint64_t flushedDropped_ = 0;

  friend void flushRecorderTelemetry();
};

/// The process-wide recorder, ignoring any thread-local sink.
FlightRecorder& processRecorder();

/// The recorder used by instrumentation: the calling thread's scoped
/// sink when one is installed, otherwise the process-wide recorder.
FlightRecorder& globalRecorder();

/// Redirects globalRecorder() on *this thread* to `sink` for the
/// scope's lifetime (mirror of ScopedMetricsSink). The parallel
/// experiment engine wraps each worker task in one so events land in a
/// task-local ring that is merged back deterministically.
class ScopedRecorderSink {
 public:
  explicit ScopedRecorderSink(FlightRecorder& sink);
  ~ScopedRecorderSink();
  ScopedRecorderSink(const ScopedRecorderSink&) = delete;
  ScopedRecorderSink& operator=(const ScopedRecorderSink&) = delete;

 private:
  FlightRecorder* previous_;
};

namespace detail {
FlightRecorder*& tlsRecorderSlot();
}  // namespace detail

/// The active recorder for category `Cat`, or nullptr when the category
/// is compiled out, recording is off, or the runtime mask excludes it.
/// Fetch once per run/operation, then guard each site on the pointer.
template <std::uint32_t Cat>
inline FlightRecorder* recorderFor() {
  if constexpr ((DSN_FR_COMPILED_CATEGORIES & Cat) == 0) {
    return nullptr;
  } else {
    FlightRecorder& r = globalRecorder();
    return r.wants(Cat) ? &r : nullptr;
  }
}

/// Records a protocol-run begin marker (no-op when kFrCatRun is off).
void recordRunBegin(FrRunKind kind, std::uint32_t source);
/// Records the matching end marker carrying the run's outcome.
void recordRunEnd(FrRunKind kind, std::uint32_t delivered,
                  std::uint32_t rounds);

/// Folds the active recorder's accounting into the metrics registry
/// (counters trace.recorded_events / trace.stored_events /
/// trace.dropped_events, delta since the last flush so repeated calls
/// do not double-count) and emits one warning log line when events were
/// lost to overflow since then. No-op when recording is off.
void flushRecorderTelemetry();

}  // namespace dsn::obs
