#include "obs/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsn::obs {

namespace {
std::atomic<bool> g_enabled{false};
thread_local MetricsRegistry* t_sink = nullptr;
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void setEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

// ---- Histogram ----

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)) {
  DSN_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket");
  DSN_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "histogram bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_.emplace_back(0);
}

void Histogram::atomicAccumulate(std::atomic<double>& slot, double v,
                                 bool wantMin) {
  double cur = slot.load(std::memory_order_relaxed);
  while ((wantMin ? v < cur : v > cur) &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow when end
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  } else {
    atomicAccumulate(min_, v, /*wantMin=*/true);
    atomicAccumulate(max_, v, /*wantMin=*/false);
  }
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_)
    out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::minValue() const {
  return min_.load(std::memory_order_relaxed);
}

double Histogram::maxValue() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = std::max(q * static_cast<double>(n), 1.0);
  const auto counts = bucketCounts();
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    if (static_cast<double>(cum) + static_cast<double>(c) >= target) {
      if (i == counts.size() - 1) return maxValue();  // overflow bucket
      const double hi = bounds_[i];
      const double lo = i == 0 ? std::min(minValue(), hi) : bounds_[i - 1];
      const double frac = std::clamp(
          (target - static_cast<double>(cum)) / static_cast<double>(c),
          0.0, 1.0);
      return std::clamp(lo + (hi - lo) * frac, minValue(), maxValue());
    }
    cum += c;
  }
  return maxValue();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

void Histogram::mergeFrom(const Histogram& other) {
  DSN_REQUIRE(bounds_ == other.bounds_,
              "Histogram::mergeFrom: bucket bounds differ");
  const std::uint64_t n = other.count();
  if (n == 0) return;
  const auto counts = other.bucketCounts();
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i].fetch_add(counts[i], std::memory_order_relaxed);
  if (count_.fetch_add(n, std::memory_order_relaxed) == 0) {
    min_.store(other.minValue(), std::memory_order_relaxed);
    max_.store(other.maxValue(), std::memory_order_relaxed);
  } else {
    atomicAccumulate(min_, other.minValue(), /*wantMin=*/true);
    atomicAccumulate(max_, other.maxValue(), /*wantMin=*/false);
  }
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + other.sum(),
                                     std::memory_order_relaxed)) {
  }
}

std::vector<double> Histogram::exponentialBounds(std::size_t n,
                                                 double first,
                                                 double factor) {
  DSN_REQUIRE(n >= 1 && first > 0.0 && factor > 1.0,
              "exponentialBounds: need n>=1, first>0, factor>1");
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = first;
  for (std::size_t i = 0; i < n; ++i, b *= factor) bounds.push_back(b);
  return bounds;
}

std::vector<double> Histogram::hdrBounds(double first, double last,
                                         int subBuckets) {
  DSN_REQUIRE(first > 0.0 && last > first && subBuckets >= 1,
              "hdrBounds: need 0 < first < last, subBuckets >= 1");
  std::vector<double> bounds;
  for (double lo = first; lo < last; lo *= 2.0) {
    const double hi = std::min(lo * 2.0, last);
    const double step = (hi - lo) / subBuckets;
    for (int i = 1; i <= subBuckets; ++i) {
      const double b = lo + step * static_cast<double>(i);
      if (!bounds.empty() && b <= bounds.back()) continue;
      bounds.push_back(b);
      if (b >= last) break;
    }
    if (!bounds.empty() && bounds.back() >= last) break;
  }
  return bounds;
}

// ---- MetricsRegistry ----

MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& e, std::string_view n) { return e.name < n; });
  if (it != entries_.end() && it->name == name) return &*it;
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::insert(std::string_view name,
                                                Kind kind) {
  Entry e;
  e.name = std::string(name);
  e.kind = kind;
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& x, std::string_view n) { return x.name < n; });
  return *entries_.insert(it, std::move(e));
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find(name)) {
    DSN_REQUIRE(e->kind == Kind::kCounter,
                "metric name already registered as a different kind: " +
                    std::string(name));
    return *e->counter;
  }
  counterStore_.emplace_back();
  insert(name, Kind::kCounter).counter = &counterStore_.back();
  return counterStore_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find(name)) {
    DSN_REQUIRE(e->kind == Kind::kGauge,
                "metric name already registered as a different kind: " +
                    std::string(name));
    return *e->gauge;
  }
  gaugeStore_.emplace_back();
  insert(name, Kind::kGauge).gauge = &gaugeStore_.back();
  return gaugeStore_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upperBounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find(name)) {
    DSN_REQUIRE(e->kind == Kind::kHistogram,
                "metric name already registered as a different kind: " +
                    std::string(name));
    return *e->histogram;
  }
  histogramStore_.emplace_back(std::move(upperBounds));
  insert(name, Kind::kHistogram).histogram = &histogramStore_.back();
  return histogramStore_.back();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counterStore_) c.reset();
  for (auto& g : gaugeStore_) g.reset();
  for (auto& h : histogramStore_) h.reset();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& e : entries_)
    if (e.kind == Kind::kCounter)
      out.emplace_back(e.name, e.counter->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& e : entries_)
    if (e.kind == Kind::kGauge) out.emplace_back(e.name, e.gauge->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  for (const auto& e : entries_)
    if (e.kind == Kind::kHistogram)
      out.emplace_back(e.name, e.histogram);
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricsRegistry::mergeFrom(const MetricsRegistry& other) {
  // Uses the public snapshot/registration API (no own lock held), so a
  // non-recursive mutex on either side cannot deadlock.
  for (const auto& [name, v] : other.counters()) counter(name).increment(v);
  for (const auto& [name, v] : other.gauges()) gauge(name).set(v);
  for (const auto& [name, h] : other.histograms())
    histogram(name, h->upperBounds()).mergeFrom(*h);
}

MetricsRegistry& processMetrics() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& globalMetrics() {
  if (t_sink != nullptr) return *t_sink;
  return processMetrics();
}

ScopedMetricsSink::ScopedMetricsSink(MetricsRegistry& sink)
    : previous_(t_sink) {
  t_sink = &sink;
}

ScopedMetricsSink::~ScopedMetricsSink() { t_sink = previous_; }

}  // namespace dsn::obs
