#include "obs/export.hpp"

namespace dsn::obs {

void writeHistogramJson(JsonWriter& w, const Histogram& h) {
  w.beginObject();
  w.key("bounds").beginArray();
  for (const double b : h.upperBounds()) w.value(b);
  w.endArray();
  w.key("counts").beginArray();
  for (const std::uint64_t c : h.bucketCounts()) w.value(c);
  w.endArray();
  w.kv("count", h.count());
  w.kv("sum", h.sum());
  w.kv("mean", h.mean());
  w.kv("min", h.minValue());
  w.kv("max", h.maxValue());
  w.kv("p50", h.percentile(0.50));
  w.kv("p95", h.percentile(0.95));
  w.kv("p99", h.percentile(0.99));
  w.endObject();
}

void writeRegistryJson(JsonWriter& w, const MetricsRegistry& registry) {
  w.beginObject();
  w.key("counters").beginObject();
  for (const auto& [name, v] : registry.counters()) w.kv(name, v);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, v] : registry.gauges()) w.kv(name, v);
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, h] : registry.histograms()) {
    w.key(name);
    writeHistogramJson(w, *h);
  }
  w.endObject();
  w.endObject();
}

namespace {

void writeTimingNode(JsonWriter& w, const TimingRegistry::Node& n) {
  w.beginObject();
  w.kv("phase", n.name);
  w.kv("ms", static_cast<double>(n.nanos) / 1e6);
  w.kv("calls", n.calls);
  w.key("children").beginArray();
  for (const auto& c : n.children) writeTimingNode(w, *c);
  w.endArray();
  w.endObject();
}

}  // namespace

void writeTimingJson(JsonWriter& w, const TimingRegistry& timing) {
  w.beginArray();
  for (const auto& root : timing.snapshot()) writeTimingNode(w, *root);
  w.endArray();
}

std::string metricsDocumentJson(const MetricsRegistry& registry,
                                const TimingRegistry& timing) {
  JsonWriter w;
  w.beginObject();
  w.kv("schema", "dsnet-metrics-v1");
  w.key("metrics");
  writeRegistryJson(w, registry);
  w.key("timing");
  writeTimingJson(w, timing);
  w.endObject();
  return w.str();
}

}  // namespace dsn::obs
