#include "obs/profile.hpp"

#include <atomic>

namespace dsn::obs {

namespace {
std::atomic<bool> g_roundProfiling{false};
}  // namespace

bool roundProfilingEnabled() {
  return g_roundProfiling.load(std::memory_order_relaxed);
}

void setRoundProfiling(bool on) {
  g_roundProfiling.store(on, std::memory_order_relaxed);
}

RoundProfiler::RoundProfiler() : active_(roundProfilingEnabled()) {
  if (!active_) return;
  // 256 ns .. 1 s for round wall time; up to 2^20 nodes active and 2^24
  // Σ degrees per round — 4 sub-buckets per power-of-two decade keeps
  // relative error ~25% while staying small enough to merge cheaply.
  roundNs_ = &local_.histogram("sim.round_ns",
                               Histogram::hdrBounds(256.0, 1e9, 4));
  roundActive_ = &local_.histogram(
      "sim.round_active",
      Histogram::hdrBounds(1.0, static_cast<double>(1u << 20), 4));
  resolveWork_ = &local_.histogram(
      "sim.round_resolve_work",
      Histogram::hdrBounds(1.0, static_cast<double>(1u << 24), 4));
}

void RoundProfiler::flushTo(MetricsRegistry& registry) const {
  if (!active_ || roundNs_->count() == 0) return;
  registry.mergeFrom(local_);
}

}  // namespace dsn::obs
