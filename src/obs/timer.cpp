#include "obs/timer.hpp"

#include <cstdio>
#include <functional>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dsn::obs {

TimingRegistry::Node* TimingRegistry::childOf(
    std::vector<std::unique_ptr<Node>>& siblings, std::string_view name) {
  for (auto& c : siblings)
    if (c->name == name) return c.get();
  siblings.push_back(std::make_unique<Node>());
  siblings.back()->name = std::string(name);
  return siblings.back().get();
}

TimingRegistry::Node* TimingRegistry::enter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  Node* node = cursor_.empty() ? childOf(roots_, name)
                               : childOf(cursor_.back()->children, name);
  cursor_.push_back(node);
  return node;
}

void TimingRegistry::exit(Node* node, std::uint64_t nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  DSN_CHECK(!cursor_.empty() && cursor_.back() == node,
            "TimingRegistry: phase exit out of order");
  cursor_.pop_back();
  node->calls += 1;
  node->nanos += nanos;
}

void TimingRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  DSN_REQUIRE(cursor_.empty(),
              "TimingRegistry::reset with a phase still open");
  roots_.clear();
}

void TimingRegistry::mergeFrom(const TimingRegistry& other) {
  // Snapshot first: taking both locks at once could deadlock if two
  // registries ever merged into each other concurrently.
  const auto theirs = other.snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  auto& graft = cursor_.empty() ? roots_ : cursor_.back()->children;
  std::function<void(std::vector<std::unique_ptr<Node>>&,
                     const std::vector<std::unique_ptr<Node>>&)>
      fold = [&](std::vector<std::unique_ptr<Node>>& into,
                 const std::vector<std::unique_ptr<Node>>& from) {
        for (const auto& src : from) {
          Node* dst = childOf(into, src->name);
          dst->calls += src->calls;
          dst->nanos += src->nanos;
          fold(dst->children, src->children);
        }
      };
  fold(graft, theirs);
}

bool TimingRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return roots_.empty();
}

namespace {

void appendReport(const TimingRegistry::Node& n, int depth,
                  std::string& out) {
  char line[160];
  std::snprintf(line, sizeof line, "%*s%-*s %10.3f ms  x%llu\n",
                depth * 2, "", 32 - depth * 2, n.name.c_str(),
                static_cast<double>(n.nanos) / 1e6,
                static_cast<unsigned long long>(n.calls));
  out += line;
  for (const auto& c : n.children) appendReport(*c, depth + 1, out);
}

std::unique_ptr<TimingRegistry::Node> cloneNode(
    const TimingRegistry::Node& n) {
  auto out = std::make_unique<TimingRegistry::Node>();
  out->name = n.name;
  out->calls = n.calls;
  out->nanos = n.nanos;
  for (const auto& c : n.children) out->children.push_back(cloneNode(*c));
  return out;
}

}  // namespace

std::string TimingRegistry::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& r : roots_) appendReport(*r, 0, out);
  return out;
}

std::vector<std::unique_ptr<TimingRegistry::Node>>
TimingRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::unique_ptr<Node>> out;
  for (const auto& r : roots_) out.push_back(cloneNode(*r));
  return out;
}

namespace {
thread_local TimingRegistry* t_sink = nullptr;
}  // namespace

TimingRegistry& processTiming() {
  static TimingRegistry registry;
  return registry;
}

TimingRegistry& globalTiming() {
  if (t_sink != nullptr) return *t_sink;
  return processTiming();
}

ScopedTimingSink::ScopedTimingSink(TimingRegistry& sink)
    : previous_(t_sink) {
  t_sink = &sink;
}

ScopedTimingSink::~ScopedTimingSink() { t_sink = previous_; }

ScopedPhaseTimer::ScopedPhaseTimer(std::string_view name) {
  if (!enabled()) return;
  node_ = globalTiming().enter(name);
  start_ = std::chrono::steady_clock::now();
}

ScopedPhaseTimer::~ScopedPhaseTimer() {
  if (!node_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  globalTiming().exit(
      node_, static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     elapsed)
                     .count()));
}

}  // namespace dsn::obs
