#include "obs/flight_io.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace dsn::obs {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'N', 'T', 'R', 'A', 'C', 'E'};

void putU16(std::ostream& os, std::uint16_t v) {
  const unsigned char b[2] = {static_cast<unsigned char>(v & 0xFF),
                              static_cast<unsigned char>(v >> 8)};
  os.write(reinterpret_cast<const char*>(b), 2);
}

void putU32(std::ostream& os, std::uint32_t v) {
  const unsigned char b[4] = {static_cast<unsigned char>(v & 0xFF),
                              static_cast<unsigned char>((v >> 8) & 0xFF),
                              static_cast<unsigned char>((v >> 16) & 0xFF),
                              static_cast<unsigned char>(v >> 24)};
  os.write(reinterpret_cast<const char*>(b), 4);
}

void putU64(std::ostream& os, std::uint64_t v) {
  putU32(os, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  putU32(os, static_cast<std::uint32_t>(v >> 32));
}

bool getBytes(std::istream& is, unsigned char* out, std::size_t n) {
  is.read(reinterpret_cast<char*>(out), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(is.gcount()) == n;
}

std::uint32_t loadU32(const unsigned char* b) {
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t loadU64(const unsigned char* b) {
  return static_cast<std::uint64_t>(loadU32(b)) |
         (static_cast<std::uint64_t>(loadU32(b + 4)) << 32);
}

[[noreturn]] void truncated() {
  throw std::runtime_error("truncated .dsntrace stream");
}

}  // namespace

bool writeDsnTrace(std::ostream& os, const FrTraceMeta& meta,
                   const std::vector<FrEvent>& events) {
  os.write(kMagic, sizeof(kMagic));
  putU32(os, kDsnTraceVersion);
  putU32(os, 0);  // flags
  putU64(os, events.size());
  putU64(os, meta.droppedEvents);
  putU32(os, meta.categories);
  putU32(os, meta.sampleEvery);
  putU64(os, meta.seed);
  putU64(os, meta.nodes);
  for (const FrEvent& e : events) {
    putU32(os, e.round);
    putU32(os, e.node);
    putU32(os, e.data);
    const unsigned char tc[2] = {e.type, e.channel};
    os.write(reinterpret_cast<const char*>(tc), 2);
    putU16(os, e.aux);
  }
  return static_cast<bool>(os);
}

bool writeDsnTrace(std::ostream& os, const FlightRecorder& recorder,
                   std::uint64_t seed, std::uint64_t nodes) {
  const FrConfig cfg = recorder.config();
  FrTraceMeta meta;
  meta.seed = seed;
  meta.nodes = nodes;
  meta.categories = cfg.categories;
  meta.sampleEvery = cfg.sampleEvery;
  meta.droppedEvents = recorder.droppedEvents();
  return writeDsnTrace(os, meta, recorder.orderedEvents());
}

FrTraceFile readDsnTrace(std::istream& is) {
  unsigned char hdr[8 + 4 + 4 + 8 + 8 + 4 + 4 + 8 + 8];
  if (!getBytes(is, hdr, sizeof(hdr))) truncated();
  if (std::memcmp(hdr, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("not a .dsntrace file (bad magic)");
  const std::uint32_t version = loadU32(hdr + 8);
  if (version != kDsnTraceVersion)
    throw std::runtime_error("unsupported .dsntrace version " +
                             std::to_string(version));
  const std::uint64_t eventCount = loadU64(hdr + 16);
  FrTraceFile out;
  out.meta.droppedEvents = loadU64(hdr + 24);
  out.meta.categories = loadU32(hdr + 32);
  out.meta.sampleEvery = loadU32(hdr + 36);
  out.meta.seed = loadU64(hdr + 40);
  out.meta.nodes = loadU64(hdr + 48);
  // Reserve incrementally so a corrupt count fails as "truncated" rather
  // than as a giant allocation.
  out.events.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(eventCount, 1u << 20)));
  for (std::uint64_t i = 0; i < eventCount; ++i) {
    unsigned char rec[16];
    if (!getBytes(is, rec, sizeof(rec))) truncated();
    FrEvent e;
    e.round = loadU32(rec);
    e.node = loadU32(rec + 4);
    e.data = loadU32(rec + 8);
    e.type = rec[12];
    e.channel = rec[13];
    e.aux = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(rec[14]) |
        (static_cast<std::uint16_t>(rec[15]) << 8));
    out.events.push_back(e);
  }
  return out;
}

namespace {

// One synthetic round = 1000 trace microseconds, so round boundaries land
// on millisecond gridlines in the viewer.
constexpr std::uint64_t kUsPerRound = 1000;

struct OpenRun {
  FrRunKind kind;
  std::uint32_t source;
  std::uint64_t absStart;  ///< cumulative round at kRunBegin
};

void writeArgsOpen(std::ostream& os) { os << ",\"args\":{"; }

}  // namespace

bool writeChromeTrace(std::ostream& os, const FrTraceFile& trace) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
     << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"dsnet\"}},\n"
     << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"rounds\"}}";

  std::uint64_t base = 0;      // cumulative round offset of the current run
  std::uint64_t frontier = 0;  // furthest cumulative round seen
  std::vector<OpenRun> runStack;

  auto emitInstant = [&](const FrEvent& e, std::uint64_t ts,
                         std::uint32_t tid) {
    os << ",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid
       << ",\"ts\":" << ts << ",\"name\":\""
       << frTypeName(static_cast<FrType>(e.type)) << "\"";
    writeArgsOpen(os);
    os << "\"round\":" << e.round << ",\"node\":" << e.node
       << ",\"data\":" << e.data
       << ",\"channel\":" << static_cast<unsigned>(e.channel)
       << ",\"aux\":" << e.aux << "}}";
  };

  for (const FrEvent& e : trace.events) {
    const FrType t = static_cast<FrType>(e.type);
    const std::uint64_t abs = base + e.round;
    const std::uint64_t ts = abs * kUsPerRound;
    frontier = std::max(frontier, abs + 1);
    switch (t) {
      case FrType::kRunBegin:
        runStack.push_back(
            {static_cast<FrRunKind>(e.aux), e.node, base});
        break;
      case FrType::kRunEnd: {
        const std::uint64_t end = std::max(base + e.data, frontier);
        std::uint64_t start = base;
        FrRunKind kind = static_cast<FrRunKind>(e.aux);
        std::uint32_t source = 0;
        if (!runStack.empty()) {
          start = runStack.back().absStart;
          kind = runStack.back().kind;
          source = runStack.back().source;
          runStack.pop_back();
        }
        os << ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":"
           << start * kUsPerRound << ",\"dur\":"
           << std::max<std::uint64_t>(end - start, 1) * kUsPerRound
           << ",\"name\":\"" << frRunKindName(kind) << "\"";
        writeArgsOpen(os);
        os << "\"source\":" << source << ",\"delivered\":" << e.node
           << ",\"rounds\":" << e.data << "}}";
        base = end;
        frontier = std::max(frontier, end);
        break;
      }
      case FrType::kRoundBegin:
        os << ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":" << ts
           << ",\"dur\":" << kUsPerRound << ",\"name\":\"round\"";
        writeArgsOpen(os);
        os << "\"round\":" << e.round << ",\"active\":" << e.data << "}}";
        break;
      case FrType::kRoundEnd:
        os << ",\n{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" << ts
           << ",\"name\":\"resolve\"";
        writeArgsOpen(os);
        os << "\"deliveries\":" << e.node << ",\"work\":" << e.data
           << ",\"transmitters\":" << e.aux << "}}";
        break;
      case FrType::kIdleSkip:
        emitInstant(e, ts, 0);
        frontier = std::max(frontier, base + e.data);
        break;
      default:
        emitInstant(e, ts, e.node + 1);
        break;
    }
  }
  os << "\n]}\n";
  return static_cast<bool>(os);
}

}  // namespace dsn::obs
