// Per-round profiler: feeds round wall-time, active-set size and
// resolve work (Σ transmitter degrees) into HDR-style histograms
// (sim.round_ns / sim.round_active / sim.round_resolve_work) exposed
// through the standard metrics export with p50/p95/p99.
//
// Profiling is opt-in (setRoundProfiling) and separate from
// obs::enabled() because round wall-times are nondeterministic: the
// tier-1 parallel-determinism smoke diffs full run documents across
// --jobs counts, so wall-clock histograms must never enter the default
// metrics snapshot. The deterministic distributions (active-set size,
// resolve work) ride the same flag to keep the exported name set stable.
//
// Zero steady-state allocations: the profiler owns three preallocated
// Histograms; beginRound/endRound are a steady-clock read plus three
// Histogram::observe calls (atomic adds). flushTo() folds the local
// histograms into a registry via mergeFrom at end of run.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace dsn::obs {

/// Global round-profiling switch (default off). Like obs::setEnabled,
/// flip before a run you want profiled.
bool roundProfilingEnabled();
void setRoundProfiling(bool on);

/// Collects per-round distributions for one simulator run. Construct
/// once per run (allocates the histogram buckets), then
/// beginRound/endRound per executed round, then flushTo(globalMetrics())
/// with the run's other telemetry. An instance constructed while
/// profiling is off stays inert and free.
class RoundProfiler {
 public:
  RoundProfiler();

  bool active() const { return active_; }

  void beginRound() {
    if (!active_) return;
    start_ = std::chrono::steady_clock::now();
  }

  /// `activeSize` = wake-heap pops + carried transmitters this round,
  /// `resolveWork` = Σ CSR degrees over this round's transmitters.
  void endRound(std::uint64_t activeSize, std::uint64_t resolveWork) {
    if (!active_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    roundNs_->observe(static_cast<double>(ns));
    roundActive_->observe(static_cast<double>(activeSize));
    resolveWork_->observe(static_cast<double>(resolveWork));
  }

  /// Merges the collected distributions into `registry` under
  /// sim.round_ns / sim.round_active / sim.round_resolve_work. No-op
  /// when inactive or no rounds were recorded.
  void flushTo(MetricsRegistry& registry) const;

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point start_{};
  // Owned via the registry idiom so bounds live in one place.
  MetricsRegistry local_;
  Histogram* roundNs_ = nullptr;
  Histogram* roundActive_ = nullptr;
  Histogram* resolveWork_ = nullptr;
};

}  // namespace dsn::obs
