// Emergency alert under fire: robustness of CFF vs DFO.
//
// An alert must reach the whole field while sensors are failing —
// transient radio faults (dropped transmissions) plus a spreading
// blackout that permanently kills nodes near an ignition point. The DFO
// token tour stalls at the first lost relay; collision-free flooding
// keeps serving every branch it can still reach (paper §3.3
// "Robustness").
//
//   $ ./examples/emergency_alert [drop-probability]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/sensor_network.hpp"

int main(int argc, char** argv) {
  using namespace dsn;

  const double drop = argc > 1 ? std::atof(argv[1]) : 0.05;

  NetworkConfig cfg;
  cfg.nodeCount = 250;
  cfg.seed = 1944;
  SensorNetwork net(cfg);
  Rng rng(7);

  // Blackout: the node closest to the field centre and everything within
  // 120 m of it dies at round 5 (mid-broadcast).
  const Point2D ignition{cfg.field.width / 2, cfg.field.height / 2};
  ProtocolOptions opts;
  opts.dropProbability = drop;
  std::size_t burned = 0;
  for (NodeId v : net.clusterNet().netNodes()) {
    if (distance(net.position(v), ignition) < 120.0) {
      opts.deaths.emplace_back(v, 5);
      ++burned;
    }
  }

  std::cout << "Field 1 km x 1 km, " << net.size() << " sensors, "
            << burned << " nodes burn out at round 5, transient drop "
            << drop * 100 << "%\n\n";

  const NodeId sink = net.clusterNet().root();
  std::cout << "protocol   coverage   rounds   transmissions\n";
  double cffCov = 0, dfoCov = 0;
  const int repeats = 10;
  for (int i = 0; i < repeats; ++i) {
    opts.failureSeed = rng.next();
    const auto cff =
        net.broadcast(BroadcastScheme::kImprovedCff, sink, 0xA1E87, opts);
    const auto dfo = net.broadcast(BroadcastScheme::kDfo, sink, 0xA1E87, opts);
    cffCov += cff.coverage();
    dfoCov += dfo.coverage();
    if (i == 0) {
      std::cout << "  CFF        " << std::fixed << std::setprecision(1)
                << cff.coverage() * 100 << "%      " << cff.sim.rounds
                << "       " << cff.transmissions << "\n"
                << "  DFO        " << dfo.coverage() * 100 << "%      "
                << dfo.sim.rounds << "       " << dfo.transmissions
                << "\n";
    }
  }
  std::cout << "\nAveraged over " << repeats
            << " failure draws:  CFF " << std::setprecision(1)
            << cffCov / repeats * 100 << "%   DFO "
            << dfoCov / repeats * 100 << "%\n";

  std::cout << "\nEvery CFF miss is a node whose only uniquely-slotted\n"
               "provider failed; every DFO miss after the stall is the\n"
               "rest of the Eulerian tour.\n";
  return 0;
}
