// Dynamic sensor network: battery-driven churn.
//
// The paper's motivating lifecycle (§1): sensors drain their batteries
// while relaying, withdraw from the network when the charge runs low
// (node-move-out), recharge while resting, and rejoin when recovered
// (node-move-in). The BatteryManager automates the whole cycle from the
// *measured* per-node radio usage of each broadcast; the structure must
// stay valid and every broadcast must keep covering the current net.
//
//   $ ./examples/dynamic_network [epochs]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/battery.hpp"
#include "core/sensor_network.hpp"

int main(int argc, char** argv) {
  using namespace dsn;

  const int epochs = argc > 1 ? std::atoi(argv[1]) : 30;

  NetworkConfig netCfg;
  netCfg.nodeCount = 200;
  netCfg.seed = 77;
  SensorNetwork net(netCfg);
  Rng rng(1234);

  BatteryConfig cfg;
  cfg.withdrawThreshold = 55.0;
  cfg.rejoinThreshold = 90.0;
  cfg.rechargePerTick = 18.0;
  cfg.idleDrainPerTick = 0.5;
  BatteryManager batteries(net, cfg);

  std::cout
      << "epoch  net  resting  out  back  mean-charge  bcast-coverage\n";
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // One broadcast per epoch; its real listen/transmit rounds drain the
    // batteries (backbone relays pay the most and tire first).
    const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                   net.randomNode(rng), 0xBEEF);
    batteries.drainFromRun(run);
    const auto report = batteries.tick();

    const auto validation = net.validate();
    if (!validation.ok()) {
      std::cerr << "INVARIANT VIOLATION at epoch " << epoch << ":\n"
                << validation.summary() << "\n";
      return 1;
    }

    std::cout << std::setw(5) << epoch << std::setw(5)
              << net.clusterNet().netSize() << std::setw(9)
              << report.resting << std::setw(5)
              << report.withdrawn.size() << std::setw(6)
              << report.rejoined.size() + report.orphansRecovered.size()
              << std::setw(13) << std::fixed << std::setprecision(1)
              << report.meanCharge << std::setw(16)
              << std::setprecision(3) << run.coverage() << "\n";
  }

  std::cout << "\nThe relay roles rotate as tired backbone nodes rest\n"
               "and recovered ones rejoin — the architecture heals\n"
               "itself through node-move-out / node-move-in.\n";
  return 0;
}
